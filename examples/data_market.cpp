// Data-marketplace scenario: the Table 1 vendor clauses, enforced over a
// composite database holding feeds from several (synthetic) providers —
// map tiles ("navteq"), business ratings ("yelp"), and a social firehose
// ("twitter"). Demonstrates:
//
//   P1  (Navteq): no overlaying map data with any other dataset
//   P4  (Twitter): rate limiting — 5 firehose queries per window
//   P7  (Yelp): ratings must not be blended into aggregates with other
//       providers, but plain joins/unions are fine
//
//   $ ./build/examples/data_market

#include <cstdio>
#include <random>

#include "core/datalawyer.h"

using namespace datalawyer;

namespace {

Status LoadVendorFeeds(Database* db) {
  std::mt19937_64 rng(7);
  DL_ASSIGN_OR_RETURN(
      Table * navteq,
      db->CreateTable("navteq_roads",
                      TableSchema()
                          .AddColumn("road_id", ValueType::kInt64)
                          .AddColumn("city", ValueType::kString)
                          .AddColumn("length_km", ValueType::kDouble)));
  DL_ASSIGN_OR_RETURN(
      Table * yelp,
      db->CreateTable("yelp_ratings",
                      TableSchema()
                          .AddColumn("business_id", ValueType::kInt64)
                          .AddColumn("city", ValueType::kString)
                          .AddColumn("stars", ValueType::kDouble)
                          .AddColumn("review_count", ValueType::kInt64)));
  DL_ASSIGN_OR_RETURN(
      Table * twitter,
      db->CreateTable("twitter_posts",
                      TableSchema()
                          .AddColumn("post_id", ValueType::kInt64)
                          .AddColumn("city", ValueType::kString)
                          .AddColumn("sentiment", ValueType::kDouble)));
  DL_ASSIGN_OR_RETURN(
      Table * internal,
      db->CreateTable("internal_stores",
                      TableSchema()
                          .AddColumn("store_id", ValueType::kInt64)
                          .AddColumn("city", ValueType::kString)
                          .AddColumn("revenue", ValueType::kDouble)));

  const char* kCities[] = {"seattle", "portland", "boise", "spokane"};
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (int64_t i = 0; i < 400; ++i) {
    DL_RETURN_NOT_OK(navteq
                         ->Append(Row{Value(i), Value(kCities[rng() % 4]),
                                      Value(unit(rng) * 12)})
                         .status());
    DL_RETURN_NOT_OK(yelp
                         ->Append(Row{Value(i), Value(kCities[rng() % 4]),
                                      Value(1.0 + unit(rng) * 4),
                                      Value(int64_t(rng() % 900))})
                         .status());
    DL_RETURN_NOT_OK(twitter
                         ->Append(Row{Value(i), Value(kCities[rng() % 4]),
                                      Value(unit(rng) * 2 - 1)})
                         .status());
  }
  for (int64_t i = 0; i < 40; ++i) {
    DL_RETURN_NOT_OK(internal
                         ->Append(Row{Value(i), Value(kCities[rng() % 4]),
                                      Value(unit(rng) * 1e6)})
                         .status());
  }
  return Status::OK();
}

void Run(DataLawyer* dl, const char* label, const std::string& sql) {
  QueryContext analyst;
  analyst.uid = 42;
  auto result = dl->Execute(sql, analyst);
  if (result.ok()) {
    std::printf("ALLOWED   %-28s (%zu rows)\n", label, result->NumRows());
  } else {
    std::printf("REJECTED  %-28s %s\n", label,
                result.status().message().c_str());
  }
}

}  // namespace

int main() {
  Database db;
  if (!LoadVendorFeeds(&db).ok()) {
    std::printf("failed to load vendor feeds\n");
    return 1;
  }

  DataLawyer dl(&db, UsageLog::WithStandardGenerators(),
                std::make_unique<ManualClock>(0, 10), {});

  // -- Navteq: "Overlaying Navteq data with any other data is prohibited".
  Status st = dl.AddPolicy("navteq-no-overlay", R"sql(
    SELECT DISTINCT 'Navteq terms: no overlaying navteq_roads with other data'
    FROM schema s1, schema s2
    WHERE s1.ts = s2.ts AND s1.irid = 'navteq_roads'
      AND s2.irid != 'navteq_roads'
  )sql");

  // -- Twitter: "350 requests per hour" scaled down to 5 queries per 200
  //    ticks for the demo.
  if (st.ok()) {
    st = dl.AddPolicy("twitter-rate-limit", R"sql(
      SELECT DISTINCT 'Twitter terms: firehose rate limit exceeded'
      FROM users u, schema s, clock c
      WHERE u.ts = s.ts AND s.irid = 'twitter_posts'
        AND u.ts > c.ts - 200
      HAVING COUNT(DISTINCT u.ts) > 5
    )sql");
  }

  // -- Yelp: "Don't aggregate or blend our star ratings with other
  //    providers" — an *aggregated* output column derived from
  //    yelp_ratings while another provider contributes is a violation;
  //    plain joins are fine (agg = FALSE rows are exempt).
  if (st.ok()) {
    st = dl.AddPolicy("yelp-no-blending", R"sql(
      SELECT DISTINCT 'Yelp terms: ratings may not be blended into aggregates with other providers'
      FROM schema s1, schema s2
      WHERE s1.ts = s2.ts AND s1.irid = 'yelp_ratings' AND s1.agg = TRUE
        AND s2.irid != 'yelp_ratings' AND s2.irid != 'internal_stores'
    )sql");
  }
  if (!st.ok()) {
    std::printf("policy registration failed: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("=== marketplace feeds under vendor terms of use ===\n\n");

  Run(&dl, "navteq alone",
      "SELECT city, SUM(length_km) FROM navteq_roads GROUP BY city");
  Run(&dl, "navteq x internal (P1)",
      "SELECT n.city, n.length_km, i.revenue FROM navteq_roads n, "
      "internal_stores i WHERE n.city = i.city");
  Run(&dl, "yelp join twitter (ok)",
      "SELECT y.city, y.stars, t.sentiment FROM yelp_ratings y, "
      "twitter_posts t WHERE y.city = t.city AND y.business_id = t.post_id");
  Run(&dl, "yelp blended agg (P7)",
      "SELECT y.city, AVG(y.stars + t.sentiment) FROM yelp_ratings y, "
      "twitter_posts t WHERE y.city = t.city AND y.business_id = t.post_id "
      "GROUP BY y.city");
  Run(&dl, "yelp agg with internal (ok)",
      "SELECT y.city, AVG(y.stars), SUM(i.revenue) FROM yelp_ratings y, "
      "internal_stores i WHERE y.city = i.city GROUP BY y.city");

  std::printf("\n-- Twitter rate limit: 5 queries per window --\n");
  for (int i = 0; i < 7; ++i) {
    Run(&dl, "firehose pull",
        "SELECT city, COUNT(*) FROM twitter_posts WHERE sentiment > 0 "
        "GROUP BY city");
  }
  return 0;
}
