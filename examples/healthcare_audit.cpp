// Healthcare audit scenario: the paper's own evaluation setting. A
// MIMIC-like ICU database is governed by the six policies of Table 2; a
// research assistant (uid 1, in the restricted group) and a staff scientist
// (uid 0) run the W1..W4 analysis queries, plus a few queries that trip the
// policies.
//
//   $ ./build/examples/healthcare_audit

#include <cstdio>

#include "core/datalawyer.h"
#include "workload/mimic.h"
#include "workload/paper_policies.h"
#include "workload/paper_queries.h"

using namespace datalawyer;

namespace {

void Run(DataLawyer* dl, const char* who, int64_t uid, const char* label,
         const std::string& sql) {
  QueryContext ctx;
  ctx.uid = uid;
  auto result = dl->Execute(sql, ctx);
  const ExecutionStats& stats = dl->last_stats();
  if (result.ok()) {
    std::printf("%-8s %-22s ALLOWED   %4zu rows   query %6.1fms  "
                "policy-check %6.1fms\n",
                who, label, result->NumRows(), stats.query_exec_ms,
                stats.overhead_ms());
  } else {
    std::printf("%-8s %-22s REJECTED  %s\n", who, label,
                result.status().message().c_str());
  }
}

}  // namespace

int main() {
  Database db;
  MimicConfig config;
  config.num_patients = 5000;
  config.num_chartevents = 90000;
  if (!LoadMimicData(&db, config).ok()) {
    std::printf("failed to generate dataset\n");
    return 1;
  }

  DataLawyer dl(&db, UsageLog::WithStandardGenerators(),
                std::make_unique<ManualClock>(0, 10), {});

  // The six Table 2 policies; P3's cap at 1000 output tuples and P5's at
  // 2500 distinct patients so the example can demonstrate rejections.
  if (!dl.AddPolicy("p1", PaperPolicies::P1()).ok() ||
      !dl.AddPolicy("p2", PaperPolicies::P2()).ok() ||
      !dl.AddPolicy("p3", PaperPolicies::P3(1, 1000)).ok() ||
      !dl.AddPolicy("p4", PaperPolicies::P4()).ok() ||
      !dl.AddPolicy("p5", PaperPolicies::P5(1, 3000, 2500)).ok() ||
      !dl.AddPolicy("p6", PaperPolicies::P6()).ok()) {
    std::printf("failed to register policies\n");
    return 1;
  }

  std::printf("=== ICU database under the Table 2 policies ===\n\n");

  // The paper's workload, for both users.
  for (auto& [name, sql] : PaperQueries::All()) {
    Run(&dl, "staff", 0, name.c_str(), sql);
    Run(&dl, "intern", 1, name.c_str(), sql);
  }

  std::printf("\n--- queries that violate the terms of use ---\n");

  // P2: the intern joins order data with patient demographics.
  Run(&dl, "intern", 1, "orders x patients",
      "SELECT o.medication, p.sex FROM poe_order o, d_patients p "
      "WHERE o.subject_id = p.subject_id");

  // P3: a bulk export of the patient table (more than 200 tuples out).
  Run(&dl, "intern", 1, "bulk export",
      "SELECT * FROM d_patients");

  // P4: a low-support aggregate over chartevents (re-identification risk:
  // output tuples derived from <= 3 readings).
  Run(&dl, "intern", 1, "low-support groups",
      "SELECT c.subject_id, COUNT(*) FROM chartevents c "
      "WHERE c.itemid = 212 AND c.subject_id < 40 "
      "GROUP BY c.subject_id HAVING COUNT(*) <= 2");

  // The same joins are fine for staff (uid 0): the policies bind uid 1.
  Run(&dl, "staff", 0, "orders x patients",
      "SELECT o.medication, p.sex FROM poe_order o, d_patients p "
      "WHERE o.subject_id = p.subject_id");

  std::printf("\n--- P5: aggregate usage cap across queries ---\n");
  // Successive cohort sweeps accumulate distinct d_patients tuples in the
  // 3000-tick window; the third sweep pushes past the 2500-tuple cap and
  // is rejected even though each sweep alone is harmless.
  for (int lo = 0; lo < 3000; lo += 1000) {
    char sql[512];
    std::snprintf(sql, sizeof(sql),
                  "SELECT p.sex, COUNT(*) FROM d_patients p, chartevents c "
                  "WHERE p.subject_id = c.subject_id AND c.subject_id >= %d "
                  "AND c.subject_id < %d AND c.itemid = 211 GROUP BY p.sex",
                  lo, lo + 1000);
    Run(&dl, "intern", 1, "cohort sweep", sql);
  }
  return 0;
}
