// Usage-based data pricing (§2): "DataLawyer can be used to compute the
// price of the data dynamically, e.g., based on how the data was used
// during the last billing period."
//
// A vendor sells a stock-quotes feed priced per tuple actually consumed
// (Factual-style usage pricing). The usage log's Provenance relation is the
// metering record: at the end of the billing period the vendor queries it
// to produce per-user invoices. A policy simultaneously enforces the plan's
// quota.
//
//   $ ./build/examples/usage_pricing

#include <cstdio>
#include <random>

#include "core/datalawyer.h"

using namespace datalawyer;

namespace {

Status LoadQuotes(Database* db) {
  std::mt19937_64 rng(11);
  DL_ASSIGN_OR_RETURN(
      Table * quotes,
      db->CreateTable("quotes", TableSchema()
                                    .AddColumn("quote_id", ValueType::kInt64)
                                    .AddColumn("symbol", ValueType::kString)
                                    .AddColumn("day", ValueType::kInt64)
                                    .AddColumn("price", ValueType::kDouble)));
  const char* kSymbols[] = {"aaa", "bbb", "ccc", "ddd", "eee"};
  std::uniform_real_distribution<double> px(5.0, 500.0);
  int64_t id = 0;
  for (int day = 0; day < 250; ++day) {
    for (const char* symbol : kSymbols) {
      DL_RETURN_NOT_OK(
          quotes->Append(Row{Value(id++), Value(symbol), Value(int64_t(day)),
                             Value(px(rng))})
              .status());
    }
  }
  return Status::OK();
}

}  // namespace

int main() {
  Database db;
  if (!LoadQuotes(&db).ok()) {
    std::printf("failed to load quotes\n");
    return 1;
  }

  DataLawyer dl(&db, UsageLog::WithStandardGenerators(),
                std::make_unique<ManualClock>(0, 1), {});

  // Plan quota: at most 600 quote tuples consumed per user per billing
  // window of 1000 ticks — the free tier (Table 1's P3, the MS Translator
  // clause, made per-customer).
  Status st = dl.AddPolicy("free-tier-quota", R"sql(
    SELECT DISTINCT 'free tier exhausted: more than 600 quote-tuples this period'
    FROM users u, provenance p, clock c
    WHERE u.ts = p.ts AND p.irid = 'quotes' AND p.ts > c.ts - 1000
    GROUP BY u.uid
    HAVING COUNT(p.itid) > 600
  )sql");
  if (!st.ok()) {
    std::printf("policy failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // Three customers consume different slices of the feed.
  struct Usage {
    int64_t uid;
    const char* sql;
    int repeats;
  };
  const Usage kWorkload[] = {
      {101, "SELECT * FROM quotes WHERE symbol = 'aaa' AND day < 30", 4},
      {102, "SELECT symbol, AVG(price) FROM quotes WHERE day < 100 "
            "GROUP BY symbol", 2},  // second run exceeds the quota
      {103, "SELECT * FROM quotes WHERE quote_id = 7", 25},
  };

  for (const Usage& usage : kWorkload) {
    QueryContext ctx;
    ctx.uid = usage.uid;
    for (int i = 0; i < usage.repeats; ++i) {
      auto result = dl.Execute(usage.sql, ctx);
      if (!result.ok()) {
        std::printf("uid %lld rejected: %s\n", (long long)usage.uid,
                    result.status().message().c_str());
      }
    }
  }

  // ---- end of billing period: meter from the usage log ----
  std::printf("=== invoice (price: $0.02 per quote-tuple consumed) ===\n");
  auto bill = dl.QueryUsageLog(R"sql(
    SELECT u.uid, COUNT(p.itid) AS tuples_used,
           COUNT(p.itid) * 0.02 AS amount_usd
    FROM users u, provenance p
    WHERE u.ts = p.ts AND p.irid = 'quotes'
    GROUP BY u.uid
    ORDER BY uid
  )sql");
  if (!bill.ok()) {
    std::printf("metering failed: %s\n", bill.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", bill->ToString().c_str());

  // Context-sensitive pricing (Factual prices ad usage differently from app
  // usage): aggregate consumption is billed at a discounted analytic rate.
  auto discounted = dl.QueryUsageLog(R"sql(
    SELECT s.irid, COUNT(s.ocid) AS aggregated_columns
    FROM schema s
    WHERE s.agg = TRUE AND s.irid = 'quotes'
    GROUP BY s.irid
  )sql");
  if (discounted.ok() && !discounted->empty()) {
    std::printf("analytic-rate usage detected:\n%s\n",
                discounted->ToString().c_str());
  }
  return 0;
}
