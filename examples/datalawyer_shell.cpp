// Interactive DataLawyer shell: SQL at the prompt, policies and usage-log
// inspection via meta-commands. Reads stdin, so it also works scripted:
//
//   $ ./build/examples/datalawyer_shell            # starts with MIMIC data
//   dl> \policy p6 SELECT DISTINCT 'too hot' FROM ...
//   dl> \user 1
//   dl> SELECT * FROM d_patients WHERE subject_id = 186
//   dl> \log SELECT COUNT(*) FROM provenance
//   dl> \quit

#include <cstdio>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "core/datalawyer.h"
#include "storage/persistence.h"
#include "storage/stats.h"
#include "workload/mimic.h"
#include "workload/paper_policies.h"

using namespace datalawyer;

namespace {

void PrintHelp() {
  std::printf(R"(Commands:
  <sql>                   run a SQL statement through policy enforcement;
                          telemetry is queryable as ordinary relations:
                          dl_decisions, dl_policy_stats, dl_slow_log
  EXPLAIN <select>        logical plan of a SELECT (database only, no policies)
  EXPLAIN ANALYZE <select>  run it profiled: per-operator rows and wall us
  \policy <name> <sql>    register a policy (SQL over the usage log)
  \guard <name> <sql>     attach an approximate guard to policy <name>
  \check <sql>            dry run: would this query be admitted?
  \policies               active policies + per-policy enforcement attribution
  \policies plan <name>   physical plan the enforcement fan-out re-executes
  \policies analyze <name>  profiled evaluation of that plan (rows, wall us)
  \drop <name>            remove a policy
  \user <uid>             switch the current user (default 0)
  \log <sql>              read-only query over database + usage log + clock
  \explain <sql>          show the execution plan for a SELECT (database only)
  \plan <sql>             physical plan over database + usage log + clock
  \stats                  phase breakdown of the last query
  \stats <table>          per-column statistics (rows, NDV, nulls, min..max)
  \trace on|off|clear     toggle span tracing (Chrome trace_event collection)
  \trace <file>           write the collected trace as Chrome JSON to <file>
  \metrics                phase-latency summary + Prometheus text exposition
  \top                    1s/10s/60s windowed rollups: QPS, reject rate, p50/p95
  \workers                per-worker scheduler stats: tasks, steals, queue
                          latency, busy/idle split, queue depth + watermark
  \sched                  scheduler watchdog verdict + adaptive morsel sizing
  \why [n]                witness tuples + per-policy outcomes of the last
                          n (default 1) rejected queries
  \why <decision-id>      the same, for one decision by id (see \decisions)
  \decisions [n]          last n (default 10) decision records
  \decisions json         dump the decision store as JSON
  \audit [n]              last n (default 10) admit/reject audit records
  \slow [n]               last n (default 10) slow-enforcement profiles
  \slow json              dump the slow-enforcement log as JSON
  \slow threshold <us>    set the slow threshold in microseconds (0 = off)
  \paper                  load the paper's six Table 2 policies
  \save <dir> / \load <dir>   snapshot / restore the database and usage log
  \help                   this text
  \quit                   exit
)");
}

std::string FormatMs(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fms", ms);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  Database db;
  MimicConfig config;
  config.num_patients = 2000;
  config.num_chartevents = 30000;
  if (argc > 1) {
    if (!LoadDatabase(&db, argv[1]).ok()) {
      std::printf("could not load database from %s\n", argv[1]);
      return 1;
    }
    std::printf("loaded database from %s\n", argv[1]);
  } else if (!LoadMimicData(&db, config).ok()) {
    return 1;
  }

  DataLawyerOptions options;
  options.enable_metrics = true;  // \metrics; one histogram update per query
  // Morsel-parallel execution (results stay byte-identical to serial) so
  // \workers and \sched have a live scheduler to report on.
  options.exec_threads = 4;
  (void)options.ClampThreadCounts();
  DataLawyer dl(&db, UsageLog::WithStandardGenerators(),
                std::make_unique<ManualClock>(0, 10), options);
  QueryContext ctx;
  ctx.uid = 0;
  std::map<std::string, std::string> policy_sql;  // for \guard re-registration

  bool interactive = isatty(fileno(stdin));
  if (interactive) {
    std::printf("DataLawyer shell — \\help for commands\n");
  }

  std::string line;
  while (true) {
    if (interactive) {
      std::printf("dl[uid=%lld]> ", (long long)ctx.uid);
      std::fflush(stdout);
    }
    if (!std::getline(std::cin, line)) break;
    if (line.empty()) continue;

    if (line[0] == '\\') {
      std::istringstream in(line.substr(1));
      std::string cmd;
      in >> cmd;
      std::string rest;
      std::getline(in, rest);
      while (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);

      if (cmd == "quit" || cmd == "q") break;
      if (cmd == "help") {
        PrintHelp();
      } else if (cmd == "user") {
        ctx.uid = std::strtoll(rest.c_str(), nullptr, 10);
      } else if (cmd == "policy") {
        size_t space = rest.find(' ');
        if (space == std::string::npos) {
          std::printf("usage: \\policy <name> <sql>\n");
          continue;
        }
        std::string name = rest.substr(0, space);
        std::string sql = rest.substr(space + 1);
        Status st = dl.AddPolicy(name, sql);
        if (st.ok()) policy_sql[name] = sql;
        std::printf("%s\n", st.ok() ? "registered" : st.ToString().c_str());
      } else if (cmd == "guard") {
        size_t space = rest.find(' ');
        if (space == std::string::npos) {
          std::printf("usage: \guard <name> <sql>\n");
          continue;
        }
        std::string name = rest.substr(0, space);
        auto it = policy_sql.find(name);
        if (it == policy_sql.end()) {
          std::printf("register %s with \policy first\n", name.c_str());
          continue;
        }
        Status st = dl.RemovePolicy(name);
        if (st.ok()) {
          st = dl.AddPolicyWithGuard(name, it->second, rest.substr(space + 1));
        }
        std::printf("%s\n", st.ok() ? "guarded" : st.ToString().c_str());
      } else if (cmd == "check") {
        Status st = dl.WouldAllow(rest, ctx);
        if (st.ok()) {
          std::printf("would be ADMITTED\n");
        } else if (st.IsPolicyViolation()) {
          std::printf("would be REJECTED: %s\n", st.message().c_str());
        } else {
          std::printf("error: %s\n", st.ToString().c_str());
        }
      } else if (cmd == "drop") {
        Status st = dl.RemovePolicy(rest);
        if (st.ok()) policy_sql.erase(rest);
        std::printf("%s\n", st.ok() ? "removed" : st.ToString().c_str());
      } else if (cmd == "policies") {
        if (rest.rfind("plan ", 0) == 0) {
          auto plan = dl.ExplainPolicy(rest.substr(5));
          std::printf("%s", plan.ok()
                                ? plan->c_str()
                                : (plan.status().ToString() + "\n").c_str());
          continue;
        }
        if (rest.rfind("analyze ", 0) == 0) {
          auto profile = dl.ExplainAnalyzePolicy(rest.substr(8));
          std::printf("%s",
                      profile.ok()
                          ? profile->c_str()
                          : (profile.status().ToString() + "\n").c_str());
          continue;
        }
        if (!dl.Prepare().ok()) {
          std::printf("prepare failed\n");
          continue;
        }
        for (const Policy& p : dl.active_policies()) {
          std::printf("%-24s monotone=%d time-independent=%d logs={",
                      p.name.c_str(), p.monotone, p.time_independent);
          for (size_t i = 0; i < p.log_relations.size(); ++i) {
            std::printf("%s%s", i ? "," : "", p.log_relations[i].c_str());
          }
          std::printf("}\n");
        }
        std::printf("%-24s %10s %8s %8s %12s %10s %12s %10s\n", "attribution",
                    "evals", "prunes", "rejects", "eval-us", "avg-us",
                    "incremental", "hits/fb");
        for (const PolicyStats& ps : dl.PolicyReport()) {
          std::string hits_fb = std::to_string(ps.incremental_hits) + "/" +
                                std::to_string(ps.incremental_fallbacks);
          std::printf("%-24s %10llu %8llu %8llu %12.0f %10.1f %12s %10s\n",
                      ps.name.c_str(), (unsigned long long)ps.evaluations,
                      (unsigned long long)ps.prunes,
                      (unsigned long long)ps.rejections, ps.eval_us,
                      ps.evaluations ? ps.eval_us / double(ps.evaluations)
                                     : 0.0,
                      ps.incremental_class.c_str(), hits_fb.c_str());
        }
      } else if (cmd == "trace") {
        if (rest == "on") {
          Tracer::Global().Clear();
          Tracer::Global().set_enabled(true);
          std::printf("tracing on\n");
        } else if (rest == "off") {
          Tracer::Global().set_enabled(false);
          std::printf("tracing off (%zu spans held)\n",
                      Tracer::Global().size());
        } else if (rest == "clear") {
          Tracer::Global().Clear();
          std::printf("trace cleared\n");
        } else if (rest.empty()) {
          std::printf("tracing %s, %zu spans (usage: \\trace on|off|clear|"
                      "<file>)\n",
                      Tracer::Global().enabled() ? "on" : "off",
                      Tracer::Global().size());
        } else {
          Status st = Tracer::Global().WriteChromeJson(rest);
          if (st.ok()) {
            std::printf("wrote %zu spans to %s (open in about:tracing or "
                        "ui.perfetto.dev)\n",
                        Tracer::Global().size(), rest.c_str());
          } else {
            std::printf("%s\n", st.ToString().c_str());
          }
        }
      } else if (cmd == "metrics") {
        std::printf("%s", MetricsRegistry::Global().SummaryText().c_str());
        std::string expo = MetricsRegistry::Global().ExposeText();
        RollupRegistry::Global().AppendExposition(&expo);
        if (dl.scheduler() != nullptr) {
          dl.scheduler()->AppendExposition(&expo);
        }
        std::printf("%s", expo.c_str());
      } else if (cmd == "top") {
        std::printf("%s", RollupRegistry::Global().SummaryText().c_str());
      } else if (cmd == "workers") {
        const TaskScheduler* sched = dl.scheduler();
        if (sched == nullptr) {
          std::printf("scheduler not started (exec_threads=%zu; runs after "
                      "the first checked query)\n",
                      dl.options().exec_threads);
          continue;
        }
        SchedulerSnapshot snap = sched->Snapshot();
        std::printf("%zu workers, telemetry %s\n", snap.workers.size(),
                    sched->telemetry_enabled() ? "on" : "off");
        std::printf("%-8s %10s %8s %8s %12s %12s %12s %6s %6s\n", "worker",
                    "executed", "stolen", "given", "qwait-us", "busy-us",
                    "idle-us", "depth", "hwm");
        for (const WorkerSnapshot& w : snap.workers) {
          std::printf("%-8zu %10llu %8llu %8llu %12llu %12llu %12llu %6llu "
                      "%6llu\n",
                      w.index, (unsigned long long)w.executed,
                      (unsigned long long)w.steals_taken,
                      (unsigned long long)w.steals_given,
                      (unsigned long long)w.queue_wait_us,
                      (unsigned long long)w.busy_us,
                      (unsigned long long)w.idle_us,
                      (unsigned long long)w.queue_depth,
                      (unsigned long long)w.queue_depth_hwm);
        }
        std::printf("%-8s %10llu %8llu %8s %12llu %12llu %12llu %6llu\n",
                    "total", (unsigned long long)snap.executed,
                    (unsigned long long)snap.steals, "",
                    (unsigned long long)snap.queue_wait_us,
                    (unsigned long long)snap.busy_us,
                    (unsigned long long)snap.idle_us,
                    (unsigned long long)snap.queued);
      } else if (cmd == "sched") {
        const TaskScheduler* sched = dl.scheduler();
        if (sched == nullptr) {
          std::printf("scheduler not started (exec_threads=%zu; runs after "
                      "the first checked query)\n",
                      dl.options().exec_threads);
        } else {
          SchedulerSnapshot snap = sched->Snapshot();
          std::printf("executed %llu | steals %llu | queued %llu (oldest "
                      "%lluus) | imbalance %.2f\n",
                      (unsigned long long)snap.executed,
                      (unsigned long long)snap.steals,
                      (unsigned long long)snap.queued,
                      (unsigned long long)snap.oldest_queued_age_us,
                      snap.imbalance);
          std::printf("watchdog: %llu starvation, %llu imbalance warnings\n",
                      (unsigned long long)snap.starvation_warnings,
                      (unsigned long long)snap.imbalance_warnings);
          for (const std::string& w : snap.warnings) {
            std::printf("  WARNING %s\n", w.c_str());
          }
        }
        std::printf("adaptive morsel sizing: %s\n",
                    dl.adaptive_morsel_enabled() ? "on" : "off");
        std::printf("%s", dl.morsel_feedback().Summary().c_str());
      } else if (cmd == "why") {
        const DecisionStore& decisions = dl.decision_store();
        if (!decisions.enabled()) {
          std::printf("decision store disabled\n");
          continue;
        }
        auto print_decision = [](const DecisionRecord& d) {
          std::printf("#%llu ts=%lld uid=%lld %s%s  %s\n",
                      (unsigned long long)d.id, (long long)d.ts,
                      (long long)d.uid,
                      d.admitted ? "ADMIT " : "REJECT", d.probe ? "?" : " ",
                      d.query_sql.c_str());
          if (!d.policy.empty()) {
            std::printf("  policy: %s\n", d.policy.c_str());
          }
          for (const std::string& m : d.messages) {
            std::printf("  message: %s\n", m.c_str());
          }
          for (const PolicyOutcome& o : d.outcomes) {
            std::printf("  %-24s %-9s evals=%llu prunes=%llu %.0fus\n",
                        o.policy.c_str(), o.outcome.c_str(),
                        (unsigned long long)o.evaluations,
                        (unsigned long long)o.prunes, o.eval_us);
          }
          for (const DecisionWitness& w : d.witnesses) {
            std::string values;
            for (size_t i = 0; i < w.values.size(); ++i) {
              if (i) values += ", ";
              values += w.values[i];
            }
            std::printf("  witness %s%s row=%lld ts=%lld  (%s)\n",
                        w.relation.c_str(), w.from_increment ? "+" : "",
                        (long long)w.row_id, (long long)w.ts, values.c_str());
          }
          if (d.witnesses_truncated > 0) {
            std::printf("  (+%llu more witness rows, truncated)\n",
                        (unsigned long long)d.witnesses_truncated);
          }
          std::printf(
              "  total %8.0fus | parse %.0f bind %.0f plan %.0f log-gen "
              "%.0f eval %.0f compact %.0f exec %.0f | plan-cache %zu/%zu\n",
              d.total_us(), d.parse_us, d.bind_us, d.plan_us, d.log_gen_us,
              d.policy_eval_us, d.compaction_us, d.user_exec_us,
              d.plan_cache_hits, d.plan_cache_hits + d.plan_cache_misses);
        };
        // \why <arg>: a decision id if one matches, otherwise a count of
        // recent rejections (ids grow without bound, counts stay small, so
        // a collision picks the id — the more specific reading).
        uint64_t arg = rest.empty() ? 0 : std::strtoull(rest.c_str(), nullptr, 10);
        const DecisionRecord* byid = arg > 0 ? decisions.FindById(arg) : nullptr;
        if (byid != nullptr) {
          print_decision(*byid);
          continue;
        }
        size_t want = arg > 0 ? size_t(arg) : 1;
        std::vector<const DecisionRecord*> rejected;
        const auto& records = decisions.records();
        for (auto it = records.rbegin();
             it != records.rend() && rejected.size() < want; ++it) {
          if (!it->admitted) rejected.push_back(&*it);
        }
        if (rejected.empty()) {
          std::printf("no rejected queries recorded\n");
          continue;
        }
        for (auto it = rejected.rbegin(); it != rejected.rend(); ++it) {
          print_decision(**it);
        }
      } else if (cmd == "decisions") {
        if (rest == "json") {
          std::printf("%s\n", dl.decision_store().ToJson().c_str());
        } else {
          size_t n =
              rest.empty() ? 10 : std::strtoull(rest.c_str(), nullptr, 10);
          const DecisionStore& decisions = dl.decision_store();
          if (decisions.dropped() > 0) {
            std::printf("(%llu older decisions evicted)\n",
                        (unsigned long long)decisions.dropped());
          }
          for (const DecisionRecord& d : decisions.Tail(n)) {
            std::printf("#%-6llu ts=%-8lld uid=%-4lld %s%s %8.0fus  %s%s%s\n",
                        (unsigned long long)d.id, (long long)d.ts,
                        (long long)d.uid,
                        d.admitted ? "ADMIT " : "REJECT", d.probe ? "?" : " ",
                        d.total_us(), d.query_sql.c_str(),
                        d.policy.empty() ? "" : "  [",
                        d.policy.empty() ? "" : (d.policy + "]").c_str());
          }
        }
      } else if (cmd == "slow") {
        if (rest == "json") {
          std::printf("%s\n", dl.slow_log().ToJson().c_str());
        } else if (rest.rfind("threshold ", 0) == 0) {
          DataLawyerOptions opts = dl.options();
          opts.slow_enforcement_threshold_us =
              std::strtod(rest.c_str() + 10, nullptr);
          dl.set_options(opts);
          std::printf("slow threshold = %.0fus\n",
                      opts.slow_enforcement_threshold_us);
        } else {
          const SlowLog& slow = dl.slow_log();
          if (dl.options().slow_enforcement_threshold_us <= 0) {
            std::printf("slow log disabled (\\slow threshold <us> to arm)\n");
          }
          if (slow.dropped() > 0) {
            std::printf("(%llu older profiles evicted)\n",
                        (unsigned long long)slow.dropped());
          }
          size_t n =
              rest.empty() ? 10 : std::strtoull(rest.c_str(), nullptr, 10);
          for (const EnforcementProfile& p : slow.Tail(n)) {
            std::printf(
                "ts=%-8lld uid=%-4lld %s%s total %8.0fus | parse %.0f bind "
                "%.0f plan %.0f log-gen %.0f eval %.0f compact %.0f exec "
                "%.0f | %s\n",
                (long long)p.ts, (long long)p.uid,
                p.rejected ? "REJECT" : "ADMIT ", p.probe ? "?" : " ",
                p.total_us(), p.parse_us, p.bind_us, p.plan_us, p.log_gen_us,
                p.policy_eval_us, p.compaction_us, p.user_exec_us,
                p.query_sql.c_str());
          }
        }
      } else if (cmd == "audit") {
        size_t n = rest.empty() ? 10 : std::strtoull(rest.c_str(), nullptr, 10);
        const AuditLog& audit = dl.audit_log();
        if (audit.dropped() > 0) {
          std::printf("(%llu older records evicted)\n",
                      (unsigned long long)audit.dropped());
        }
        for (const AuditRecord& r : audit.Tail(n)) {
          std::string policies;
          for (size_t i = 0; i < r.violated_policies.size(); ++i) {
            if (i) policies += ",";
            policies += r.violated_policies[i];
          }
          std::printf("ts=%-8lld uid=%-4lld %s%s %8.0fus  %s%s%s\n",
                      (long long)r.ts, (long long)r.uid,
                      r.admitted ? "ADMIT " : "REJECT", r.probe ? "?" : " ",
                      r.total_us, r.query_sql.c_str(),
                      policies.empty() ? "" : "  [",
                      policies.empty() ? "" : (policies + "]").c_str());
        }
      } else if (cmd == "explain") {
        auto plan = dl.engine()->ExplainSql(rest);
        std::printf("%s", plan.ok() ? plan->c_str()
                                    : (plan.status().ToString() + "\n").c_str());
      } else if (cmd == "plan") {
        auto plan = dl.ExplainLogQuery(rest);
        std::printf("%s", plan.ok() ? plan->c_str()
                                    : (plan.status().ToString() + "\n").c_str());
      } else if (cmd == "log") {
        auto result = dl.QueryUsageLog(rest);
        std::printf("%s\n", result.ok() ? result->ToString().c_str()
                                        : result.status().ToString().c_str());
      } else if (cmd == "stats" && !rest.empty()) {
        // \stats <table>: per-column statistics of a database table or a
        // usage-log main relation (row count, NDVs, null counts, min..max).
        const Table* table = db.FindTable(rest);
        if (table == nullptr) table = dl.usage_log()->main_table(rest);
        if (table == nullptr) {
          std::printf("no such table or log relation: %s\n", rest.c_str());
          continue;
        }
        TableStats stats = ComputeTableStats(*table);
        std::printf("%s", RenderTableStats(rest, table->schema(),
                                           stats).c_str());
      } else if (cmd == "stats") {
        const ExecutionStats& s = dl.last_stats();
        std::printf("query %s | log-gen %s | policy-eval %s | compaction %s"
                    " | policies evaluated %zu, pruned %zu\n",
                    FormatMs(s.query_exec_ms).c_str(),
                    FormatMs(s.log_gen_ms).c_str(),
                    FormatMs(s.policy_eval_ms()).c_str(),
                    FormatMs(s.compaction_ms()).c_str(),
                    s.policies_evaluated, s.policies_pruned_early);
        std::printf("policy wall %.0fus, cpu %.0fus | index probes %zu,"
                    " hits %zu | range probes %zu, hits %zu\n",
                    s.policy_wall_us, s.policy_cpu_us, s.index_probes,
                    s.index_hits, s.range_probes, s.range_hits);
      } else if (cmd == "paper") {
        for (const auto& [name, sql] : PaperPolicies::All()) {
          Status st = dl.AddPolicy(name, sql);
          if (!st.ok()) std::printf("%s: %s\n", name.c_str(),
                                    st.ToString().c_str());
        }
        std::printf("Table 2 policies loaded\n");
      } else if (cmd == "save") {
        Status st = SaveDatabase(db, rest);
        if (st.ok()) st = dl.usage_log()->SaveTo(rest);
        std::printf("%s\n", st.ok() ? "saved" : st.ToString().c_str());
      } else if (cmd == "load") {
        std::printf("restart the shell with the directory as argv[1]\n");
      } else {
        std::printf("unknown command \\%s (try \\help)\n", cmd.c_str());
      }
      continue;
    }

    auto result = dl.Execute(line, ctx);
    if (result.ok()) {
      std::printf("%s\n", result->ToString().c_str());
    } else if (result.status().IsPolicyViolation()) {
      std::printf("REJECTED: %s\n", result.status().message().c_str());
      for (const ViolationReport& report : dl.last_violations()) {
        std::printf("  policy %s\n", report.policy_name.c_str());
      }
    } else {
      std::printf("error: %s\n", result.status().ToString().c_str());
    }
  }
  return 0;
}
