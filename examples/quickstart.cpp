// Quickstart: create a database, attach DataLawyer, register a policy, and
// watch a violating query get rejected.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "core/datalawyer.h"

using namespace datalawyer;

int main() {
  // 1. A small product database.
  Database db;
  Engine setup(&db);
  auto loaded = setup.ExecuteScript(R"sql(
    CREATE TABLE listings (id INT, city TEXT, price DOUBLE);
    INSERT INTO listings VALUES
      (1, 'seattle', 420000.0), (2, 'seattle', 710000.0),
      (3, 'portland', 350000.0), (4, 'portland', 525000.0),
      (5, 'boise', 289000.0);
    CREATE TABLE competitor_data (city TEXT, avg_price DOUBLE);
    INSERT INTO competitor_data VALUES
      ('seattle', 565000.0), ('portland', 437500.0);
  )sql");
  if (!loaded.ok()) {
    std::printf("setup failed: %s\n", loaded.status().ToString().c_str());
    return 1;
  }

  // 2. DataLawyer wraps the database. The defaults give you the standard
  //    usage log (Users, Schema, Provenance) and all optimizations.
  DataLawyer dl(&db);

  // 3. A data-use policy, stated as SQL over the usage log: the `listings`
  //    feed's terms of use prohibit joining it with competitor data
  //    (Table 1's P1, the Navteq clause).
  Status added = dl.AddPolicy("no-overlay", R"sql(
    SELECT DISTINCT 'terms of use: listings may not be joined with other data'
    FROM schema s1, schema s2
    WHERE s1.ts = s2.ts
      AND s1.irid = 'listings' AND s2.irid != 'listings'
  )sql");
  if (!added.ok()) {
    std::printf("policy rejected: %s\n", added.ToString().c_str());
    return 1;
  }

  QueryContext alice;
  alice.uid = 1;

  // 4. Compliant query: runs normally.
  auto ok = dl.Execute(
      "SELECT city, COUNT(*) AS n, AVG(price) FROM listings GROUP BY city",
      alice);
  std::printf("-- compliant query --\n%s\n\n",
              ok.ok() ? ok->ToString().c_str() : ok.status().ToString().c_str());

  // 5. Violating query: rejected before execution, with the policy message.
  auto bad = dl.Execute(
      "SELECT l.city, l.price, c.avg_price FROM listings l, "
      "competitor_data c WHERE l.city = c.city",
      alice);
  std::printf("-- violating query --\n");
  if (bad.ok()) {
    std::printf("unexpectedly allowed!\n");
    return 1;
  }
  std::printf("rejected: %s\n", bad.status().ToString().c_str());
  return 0;
}
