
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/aggregates.cc" "src/exec/CMakeFiles/dl_exec.dir/aggregates.cc.o" "gcc" "src/exec/CMakeFiles/dl_exec.dir/aggregates.cc.o.d"
  "/root/repo/src/exec/engine.cc" "src/exec/CMakeFiles/dl_exec.dir/engine.cc.o" "gcc" "src/exec/CMakeFiles/dl_exec.dir/engine.cc.o.d"
  "/root/repo/src/exec/eval.cc" "src/exec/CMakeFiles/dl_exec.dir/eval.cc.o" "gcc" "src/exec/CMakeFiles/dl_exec.dir/eval.cc.o.d"
  "/root/repo/src/exec/executor.cc" "src/exec/CMakeFiles/dl_exec.dir/executor.cc.o" "gcc" "src/exec/CMakeFiles/dl_exec.dir/executor.cc.o.d"
  "/root/repo/src/exec/query_result.cc" "src/exec/CMakeFiles/dl_exec.dir/query_result.cc.o" "gcc" "src/exec/CMakeFiles/dl_exec.dir/query_result.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/dl_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/dl_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dl_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
