file(REMOVE_RECURSE
  "CMakeFiles/dl_exec.dir/aggregates.cc.o"
  "CMakeFiles/dl_exec.dir/aggregates.cc.o.d"
  "CMakeFiles/dl_exec.dir/engine.cc.o"
  "CMakeFiles/dl_exec.dir/engine.cc.o.d"
  "CMakeFiles/dl_exec.dir/eval.cc.o"
  "CMakeFiles/dl_exec.dir/eval.cc.o.d"
  "CMakeFiles/dl_exec.dir/executor.cc.o"
  "CMakeFiles/dl_exec.dir/executor.cc.o.d"
  "CMakeFiles/dl_exec.dir/query_result.cc.o"
  "CMakeFiles/dl_exec.dir/query_result.cc.o.d"
  "libdl_exec.a"
  "libdl_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dl_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
