# Empty dependencies file for dl_exec.
# This may be replaced when dependencies are built.
