file(REMOVE_RECURSE
  "libdl_exec.a"
)
