# Empty dependencies file for dl_common.
# This may be replaced when dependencies are built.
