file(REMOVE_RECURSE
  "CMakeFiles/dl_common.dir/clock.cc.o"
  "CMakeFiles/dl_common.dir/clock.cc.o.d"
  "CMakeFiles/dl_common.dir/status.cc.o"
  "CMakeFiles/dl_common.dir/status.cc.o.d"
  "CMakeFiles/dl_common.dir/strings.cc.o"
  "CMakeFiles/dl_common.dir/strings.cc.o.d"
  "CMakeFiles/dl_common.dir/value.cc.o"
  "CMakeFiles/dl_common.dir/value.cc.o.d"
  "libdl_common.a"
  "libdl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
