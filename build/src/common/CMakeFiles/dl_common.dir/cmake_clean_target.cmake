file(REMOVE_RECURSE
  "libdl_common.a"
)
