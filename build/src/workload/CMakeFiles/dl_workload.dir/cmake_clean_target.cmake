file(REMOVE_RECURSE
  "libdl_workload.a"
)
