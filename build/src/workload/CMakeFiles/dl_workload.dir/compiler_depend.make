# Empty compiler generated dependencies file for dl_workload.
# This may be replaced when dependencies are built.
