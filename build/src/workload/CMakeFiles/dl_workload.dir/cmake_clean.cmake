file(REMOVE_RECURSE
  "CMakeFiles/dl_workload.dir/mimic.cc.o"
  "CMakeFiles/dl_workload.dir/mimic.cc.o.d"
  "CMakeFiles/dl_workload.dir/paper_policies.cc.o"
  "CMakeFiles/dl_workload.dir/paper_policies.cc.o.d"
  "libdl_workload.a"
  "libdl_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dl_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
