file(REMOVE_RECURSE
  "CMakeFiles/dl_log.dir/log_generator.cc.o"
  "CMakeFiles/dl_log.dir/log_generator.cc.o.d"
  "CMakeFiles/dl_log.dir/usage_log.cc.o"
  "CMakeFiles/dl_log.dir/usage_log.cc.o.d"
  "libdl_log.a"
  "libdl_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dl_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
