# Empty dependencies file for dl_log.
# This may be replaced when dependencies are built.
