file(REMOVE_RECURSE
  "libdl_log.a"
)
