file(REMOVE_RECURSE
  "CMakeFiles/dl_storage.dir/catalog_view.cc.o"
  "CMakeFiles/dl_storage.dir/catalog_view.cc.o.d"
  "CMakeFiles/dl_storage.dir/database.cc.o"
  "CMakeFiles/dl_storage.dir/database.cc.o.d"
  "CMakeFiles/dl_storage.dir/persistence.cc.o"
  "CMakeFiles/dl_storage.dir/persistence.cc.o.d"
  "CMakeFiles/dl_storage.dir/schema.cc.o"
  "CMakeFiles/dl_storage.dir/schema.cc.o.d"
  "CMakeFiles/dl_storage.dir/table.cc.o"
  "CMakeFiles/dl_storage.dir/table.cc.o.d"
  "libdl_storage.a"
  "libdl_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dl_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
