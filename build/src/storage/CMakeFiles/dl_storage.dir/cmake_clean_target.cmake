file(REMOVE_RECURSE
  "libdl_storage.a"
)
