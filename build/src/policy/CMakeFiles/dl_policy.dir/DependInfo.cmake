
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policy/calibration.cc" "src/policy/CMakeFiles/dl_policy.dir/calibration.cc.o" "gcc" "src/policy/CMakeFiles/dl_policy.dir/calibration.cc.o.d"
  "/root/repo/src/policy/log_compactor.cc" "src/policy/CMakeFiles/dl_policy.dir/log_compactor.cc.o" "gcc" "src/policy/CMakeFiles/dl_policy.dir/log_compactor.cc.o.d"
  "/root/repo/src/policy/partial_policy.cc" "src/policy/CMakeFiles/dl_policy.dir/partial_policy.cc.o" "gcc" "src/policy/CMakeFiles/dl_policy.dir/partial_policy.cc.o.d"
  "/root/repo/src/policy/policy.cc" "src/policy/CMakeFiles/dl_policy.dir/policy.cc.o" "gcc" "src/policy/CMakeFiles/dl_policy.dir/policy.cc.o.d"
  "/root/repo/src/policy/policy_analyzer.cc" "src/policy/CMakeFiles/dl_policy.dir/policy_analyzer.cc.o" "gcc" "src/policy/CMakeFiles/dl_policy.dir/policy_analyzer.cc.o.d"
  "/root/repo/src/policy/templates.cc" "src/policy/CMakeFiles/dl_policy.dir/templates.cc.o" "gcc" "src/policy/CMakeFiles/dl_policy.dir/templates.cc.o.d"
  "/root/repo/src/policy/unification.cc" "src/policy/CMakeFiles/dl_policy.dir/unification.cc.o" "gcc" "src/policy/CMakeFiles/dl_policy.dir/unification.cc.o.d"
  "/root/repo/src/policy/witness.cc" "src/policy/CMakeFiles/dl_policy.dir/witness.cc.o" "gcc" "src/policy/CMakeFiles/dl_policy.dir/witness.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/log/CMakeFiles/dl_log.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/dl_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/dl_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/dl_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dl_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
