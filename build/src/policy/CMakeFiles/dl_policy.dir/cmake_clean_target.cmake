file(REMOVE_RECURSE
  "libdl_policy.a"
)
