# Empty dependencies file for dl_policy.
# This may be replaced when dependencies are built.
