file(REMOVE_RECURSE
  "CMakeFiles/dl_policy.dir/calibration.cc.o"
  "CMakeFiles/dl_policy.dir/calibration.cc.o.d"
  "CMakeFiles/dl_policy.dir/log_compactor.cc.o"
  "CMakeFiles/dl_policy.dir/log_compactor.cc.o.d"
  "CMakeFiles/dl_policy.dir/partial_policy.cc.o"
  "CMakeFiles/dl_policy.dir/partial_policy.cc.o.d"
  "CMakeFiles/dl_policy.dir/policy.cc.o"
  "CMakeFiles/dl_policy.dir/policy.cc.o.d"
  "CMakeFiles/dl_policy.dir/policy_analyzer.cc.o"
  "CMakeFiles/dl_policy.dir/policy_analyzer.cc.o.d"
  "CMakeFiles/dl_policy.dir/templates.cc.o"
  "CMakeFiles/dl_policy.dir/templates.cc.o.d"
  "CMakeFiles/dl_policy.dir/unification.cc.o"
  "CMakeFiles/dl_policy.dir/unification.cc.o.d"
  "CMakeFiles/dl_policy.dir/witness.cc.o"
  "CMakeFiles/dl_policy.dir/witness.cc.o.d"
  "libdl_policy.a"
  "libdl_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dl_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
