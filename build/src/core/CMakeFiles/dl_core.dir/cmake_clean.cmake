file(REMOVE_RECURSE
  "CMakeFiles/dl_core.dir/datalawyer.cc.o"
  "CMakeFiles/dl_core.dir/datalawyer.cc.o.d"
  "libdl_core.a"
  "libdl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
