file(REMOVE_RECURSE
  "libdl_sql.a"
)
