# Empty compiler generated dependencies file for dl_sql.
# This may be replaced when dependencies are built.
