file(REMOVE_RECURSE
  "CMakeFiles/dl_sql.dir/ast.cc.o"
  "CMakeFiles/dl_sql.dir/ast.cc.o.d"
  "CMakeFiles/dl_sql.dir/lexer.cc.o"
  "CMakeFiles/dl_sql.dir/lexer.cc.o.d"
  "CMakeFiles/dl_sql.dir/parser.cc.o"
  "CMakeFiles/dl_sql.dir/parser.cc.o.d"
  "libdl_sql.a"
  "libdl_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dl_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
