# Empty dependencies file for dl_analysis.
# This may be replaced when dependencies are built.
