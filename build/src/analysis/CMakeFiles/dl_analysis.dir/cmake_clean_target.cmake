file(REMOVE_RECURSE
  "libdl_analysis.a"
)
