file(REMOVE_RECURSE
  "CMakeFiles/dl_analysis.dir/binder.cc.o"
  "CMakeFiles/dl_analysis.dir/binder.cc.o.d"
  "CMakeFiles/dl_analysis.dir/join_graph.cc.o"
  "CMakeFiles/dl_analysis.dir/join_graph.cc.o.d"
  "CMakeFiles/dl_analysis.dir/schema_lineage.cc.o"
  "CMakeFiles/dl_analysis.dir/schema_lineage.cc.o.d"
  "libdl_analysis.a"
  "libdl_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dl_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
