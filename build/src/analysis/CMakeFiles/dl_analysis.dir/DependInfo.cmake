
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/binder.cc" "src/analysis/CMakeFiles/dl_analysis.dir/binder.cc.o" "gcc" "src/analysis/CMakeFiles/dl_analysis.dir/binder.cc.o.d"
  "/root/repo/src/analysis/join_graph.cc" "src/analysis/CMakeFiles/dl_analysis.dir/join_graph.cc.o" "gcc" "src/analysis/CMakeFiles/dl_analysis.dir/join_graph.cc.o.d"
  "/root/repo/src/analysis/schema_lineage.cc" "src/analysis/CMakeFiles/dl_analysis.dir/schema_lineage.cc.o" "gcc" "src/analysis/CMakeFiles/dl_analysis.dir/schema_lineage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sql/CMakeFiles/dl_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dl_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
