# Empty dependencies file for unification_test.
# This may be replaced when dependencies are built.
