file(REMOVE_RECURSE
  "CMakeFiles/datalawyer_integration_test.dir/datalawyer_integration_test.cc.o"
  "CMakeFiles/datalawyer_integration_test.dir/datalawyer_integration_test.cc.o.d"
  "datalawyer_integration_test"
  "datalawyer_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datalawyer_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
