# Empty dependencies file for datalawyer_integration_test.
# This may be replaced when dependencies are built.
