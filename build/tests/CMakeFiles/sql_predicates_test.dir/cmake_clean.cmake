file(REMOVE_RECURSE
  "CMakeFiles/sql_predicates_test.dir/sql_predicates_test.cc.o"
  "CMakeFiles/sql_predicates_test.dir/sql_predicates_test.cc.o.d"
  "sql_predicates_test"
  "sql_predicates_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_predicates_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
