file(REMOVE_RECURSE
  "CMakeFiles/usage_log_test.dir/usage_log_test.cc.o"
  "CMakeFiles/usage_log_test.dir/usage_log_test.cc.o.d"
  "usage_log_test"
  "usage_log_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usage_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
