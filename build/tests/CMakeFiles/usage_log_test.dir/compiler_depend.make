# Empty compiler generated dependencies file for usage_log_test.
# This may be replaced when dependencies are built.
