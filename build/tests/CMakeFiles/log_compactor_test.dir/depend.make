# Empty dependencies file for log_compactor_test.
# This may be replaced when dependencies are built.
