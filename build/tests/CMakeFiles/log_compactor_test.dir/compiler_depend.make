# Empty compiler generated dependencies file for log_compactor_test.
# This may be replaced when dependencies are built.
