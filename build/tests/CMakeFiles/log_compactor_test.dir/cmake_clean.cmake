file(REMOVE_RECURSE
  "CMakeFiles/log_compactor_test.dir/log_compactor_test.cc.o"
  "CMakeFiles/log_compactor_test.dir/log_compactor_test.cc.o.d"
  "log_compactor_test"
  "log_compactor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_compactor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
