# Empty dependencies file for join_graph_test.
# This may be replaced when dependencies are built.
