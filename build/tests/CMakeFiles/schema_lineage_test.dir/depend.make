# Empty dependencies file for schema_lineage_test.
# This may be replaced when dependencies are built.
