file(REMOVE_RECURSE
  "CMakeFiles/schema_lineage_test.dir/schema_lineage_test.cc.o"
  "CMakeFiles/schema_lineage_test.dir/schema_lineage_test.cc.o.d"
  "schema_lineage_test"
  "schema_lineage_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_lineage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
