file(REMOVE_RECURSE
  "CMakeFiles/union_policy_test.dir/union_policy_test.cc.o"
  "CMakeFiles/union_policy_test.dir/union_policy_test.cc.o.d"
  "union_policy_test"
  "union_policy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/union_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
