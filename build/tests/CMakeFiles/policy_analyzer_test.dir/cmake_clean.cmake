file(REMOVE_RECURSE
  "CMakeFiles/policy_analyzer_test.dir/policy_analyzer_test.cc.o"
  "CMakeFiles/policy_analyzer_test.dir/policy_analyzer_test.cc.o.d"
  "policy_analyzer_test"
  "policy_analyzer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_analyzer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
