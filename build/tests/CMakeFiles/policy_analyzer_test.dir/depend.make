# Empty dependencies file for policy_analyzer_test.
# This may be replaced when dependencies are built.
