# Empty dependencies file for datalawyer_extensions_test.
# This may be replaced when dependencies are built.
