file(REMOVE_RECURSE
  "CMakeFiles/datalawyer_extensions_test.dir/datalawyer_extensions_test.cc.o"
  "CMakeFiles/datalawyer_extensions_test.dir/datalawyer_extensions_test.cc.o.d"
  "datalawyer_extensions_test"
  "datalawyer_extensions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datalawyer_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
