# Empty compiler generated dependencies file for partial_policy_test.
# This may be replaced when dependencies are built.
