file(REMOVE_RECURSE
  "CMakeFiles/partial_policy_test.dir/partial_policy_test.cc.o"
  "CMakeFiles/partial_policy_test.dir/partial_policy_test.cc.o.d"
  "partial_policy_test"
  "partial_policy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partial_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
