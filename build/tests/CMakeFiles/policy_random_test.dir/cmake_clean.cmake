file(REMOVE_RECURSE
  "CMakeFiles/policy_random_test.dir/policy_random_test.cc.o"
  "CMakeFiles/policy_random_test.dir/policy_random_test.cc.o.d"
  "policy_random_test"
  "policy_random_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_random_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
