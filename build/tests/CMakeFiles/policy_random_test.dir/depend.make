# Empty dependencies file for policy_random_test.
# This may be replaced when dependencies are built.
