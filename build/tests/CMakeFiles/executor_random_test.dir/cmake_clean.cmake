file(REMOVE_RECURSE
  "CMakeFiles/executor_random_test.dir/executor_random_test.cc.o"
  "CMakeFiles/executor_random_test.dir/executor_random_test.cc.o.d"
  "executor_random_test"
  "executor_random_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/executor_random_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
