file(REMOVE_RECURSE
  "CMakeFiles/datalawyer_options_test.dir/datalawyer_options_test.cc.o"
  "CMakeFiles/datalawyer_options_test.dir/datalawyer_options_test.cc.o.d"
  "datalawyer_options_test"
  "datalawyer_options_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datalawyer_options_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
