# Empty dependencies file for datalawyer_options_test.
# This may be replaced when dependencies are built.
