# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_healthcare_audit "/root/repo/build/examples/healthcare_audit")
set_tests_properties(example_healthcare_audit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_data_market "/root/repo/build/examples/data_market")
set_tests_properties(example_data_market PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_usage_pricing "/root/repo/build/examples/usage_pricing")
set_tests_properties(example_usage_pricing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
