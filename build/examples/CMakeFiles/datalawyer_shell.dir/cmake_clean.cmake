file(REMOVE_RECURSE
  "CMakeFiles/datalawyer_shell.dir/datalawyer_shell.cpp.o"
  "CMakeFiles/datalawyer_shell.dir/datalawyer_shell.cpp.o.d"
  "datalawyer_shell"
  "datalawyer_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datalawyer_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
