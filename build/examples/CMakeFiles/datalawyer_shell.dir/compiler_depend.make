# Empty compiler generated dependencies file for datalawyer_shell.
# This may be replaced when dependencies are built.
