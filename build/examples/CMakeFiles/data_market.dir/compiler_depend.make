# Empty compiler generated dependencies file for data_market.
# This may be replaced when dependencies are built.
