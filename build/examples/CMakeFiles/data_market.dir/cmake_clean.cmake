file(REMOVE_RECURSE
  "CMakeFiles/data_market.dir/data_market.cpp.o"
  "CMakeFiles/data_market.dir/data_market.cpp.o.d"
  "data_market"
  "data_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
