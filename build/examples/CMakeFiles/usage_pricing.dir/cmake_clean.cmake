file(REMOVE_RECURSE
  "CMakeFiles/usage_pricing.dir/usage_pricing.cpp.o"
  "CMakeFiles/usage_pricing.dir/usage_pricing.cpp.o.d"
  "usage_pricing"
  "usage_pricing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usage_pricing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
