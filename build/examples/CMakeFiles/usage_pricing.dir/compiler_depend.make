# Empty compiler generated dependencies file for usage_pricing.
# This may be replaced when dependencies are built.
