
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table4.cc" "bench/CMakeFiles/bench_table4.dir/bench_table4.cc.o" "gcc" "bench/CMakeFiles/bench_table4.dir/bench_table4.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/dl_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/policy/CMakeFiles/dl_policy.dir/DependInfo.cmake"
  "/root/repo/build/src/log/CMakeFiles/dl_log.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/dl_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/dl_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/dl_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dl_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
