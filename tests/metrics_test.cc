#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include <atomic>
#include <future>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/task_scheduler.h"
#include "common/thread_pool.h"
#include "core/datalawyer.h"
#include "exec/engine.h"

namespace datalawyer {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(CounterTest, ConcurrentIncrementsAllLand) {
  Counter c;
  ThreadPool pool(4);
  pool.ParallelFor(1000, [&](size_t) { c.Increment(); });
  EXPECT_EQ(c.value(), 1000u);
}

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Percentile(0.5), 0.0);
}

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 holds values < 1; bucket b holds [2^(b-1), 2^b).
  Histogram h;
  h.Observe(0.0);
  h.Observe(0.5);
  EXPECT_EQ(h.bucket_count(0), 2u);
  h.Observe(1.0);  // [1, 2) -> bucket 1
  EXPECT_EQ(h.bucket_count(1), 1u);
  h.Observe(2.0);  // [2, 4) -> bucket 2
  h.Observe(3.9);
  EXPECT_EQ(h.bucket_count(2), 2u);
  h.Observe(1024.0);  // [1024, 2048) -> bucket 11
  EXPECT_EQ(h.bucket_count(11), 1u);
}

TEST(HistogramTest, SumMeanMinMax) {
  Histogram h;
  h.Observe(10.0);
  h.Observe(20.0);
  h.Observe(30.0);
  EXPECT_DOUBLE_EQ(h.sum(), 60.0);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
  EXPECT_DOUBLE_EQ(h.min(), 10.0);
  EXPECT_DOUBLE_EQ(h.max(), 30.0);
}

TEST(HistogramTest, PercentilesOnUniformSeries) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.Observe(double(i));
  // Log-scale buckets are coarse (power-of-two), so accept up to one
  // bucket's relative error.
  double p50 = h.Percentile(0.50);
  double p95 = h.Percentile(0.95);
  double p99 = h.Percentile(0.99);
  EXPECT_GT(p50, 250.0);
  EXPECT_LT(p50, 1000.0);
  EXPECT_GT(p95, 500.0);
  EXPECT_LE(p95, 1000.0);
  EXPECT_GE(p99, p95);
  EXPECT_LE(p99, 1000.0);
  // Extremes clamp to observed min/max regardless of bucket width.
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 1000.0);
}

TEST(HistogramTest, SingleValuePercentilesCollapse) {
  Histogram h;
  h.Observe(37.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 37.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.99), 37.0);
  // q = 0 and q = 1 are the observed extremes — here the same point.
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 37.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 37.0);
}

TEST(HistogramTest, EmptyPercentilesAreZeroAtEveryQuantile) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 0.0);
  // Out-of-range quantiles clamp rather than misbehave.
  EXPECT_DOUBLE_EQ(h.Percentile(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(2.0), 0.0);
}

TEST(HistogramTest, AllObservationsInOneBucket) {
  // Distinct values all landing in bucket [64, 128): interpolation stays
  // inside the observed [min, max] range, and every quantile is ordered.
  Histogram h;
  h.Observe(70.0);
  h.Observe(80.0);
  h.Observe(90.0);
  h.Observe(100.0);
  double p50 = h.Percentile(0.5);
  double p95 = h.Percentile(0.95);
  EXPECT_GE(p50, 70.0);
  EXPECT_LE(p50, 100.0);
  EXPECT_GE(p95, p50);
  EXPECT_LE(p95, 100.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 70.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 100.0);
}

TEST(HistogramTest, OutOfRangeQuantilesClampToExtremes) {
  Histogram h;
  h.Observe(5.0);
  h.Observe(500.0);
  EXPECT_DOUBLE_EQ(h.Percentile(-0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.5), 500.0);
}

TEST(HistogramTest, ConcurrentObserves) {
  Histogram h;
  ThreadPool pool(4);
  pool.ParallelFor(1000, [&](size_t i) { h.Observe(double(i % 64)); });
  EXPECT_EQ(h.count(), 1000u);
}

TEST(HistogramTest, Reset) {
  Histogram h;
  h.Observe(5.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  h.Observe(2.0);
  EXPECT_DOUBLE_EQ(h.min(), 2.0);
  EXPECT_DOUBLE_EQ(h.max(), 2.0);
}

TEST(MetricsRegistryTest, GetIsFindOrCreate) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("queries", "total queries");
  Counter* b = reg.GetCounter("queries");
  EXPECT_EQ(a, b);
  Histogram* h1 = reg.GetHistogram("latency_us");
  Histogram* h2 = reg.GetHistogram("latency_us");
  EXPECT_EQ(h1, h2);
  a->Increment(3);
  EXPECT_EQ(b->value(), 3u);
}

TEST(MetricsRegistryTest, ExposeTextFormat) {
  MetricsRegistry reg;
  reg.GetCounter("dl_queries_total", "queries executed")->Increment(7);
  Histogram* h = reg.GetHistogram("dl_eval_us", "evaluation time");
  h->Observe(3.0);
  h->Observe(100.0);
  std::string text = reg.ExposeText();

  EXPECT_NE(text.find("# HELP dl_queries_total queries executed"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE dl_queries_total counter"), std::string::npos);
  EXPECT_NE(text.find("dl_queries_total 7"), std::string::npos);

  EXPECT_NE(text.find("# TYPE dl_eval_us histogram"), std::string::npos);
  // Cumulative buckets: the bucket containing 3.0 has le="4" count 1, and
  // every bucket at or past 100.0 (le="128" onward) accumulates to 2.
  EXPECT_NE(text.find("dl_eval_us_bucket{le=\"4\"} 1"), std::string::npos);
  EXPECT_NE(text.find("dl_eval_us_bucket{le=\"128\"} 2"), std::string::npos);
  EXPECT_NE(text.find("dl_eval_us_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("dl_eval_us_sum 103"), std::string::npos);
  EXPECT_NE(text.find("dl_eval_us_count 2"), std::string::npos);
}

TEST(MetricsRegistryTest, ToJsonShape) {
  MetricsRegistry reg;
  reg.GetCounter("c")->Increment(2);
  reg.GetHistogram("h")->Observe(8.0);
  std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"c\":2"), std::string::npos);
  EXPECT_NE(json.find("\"h\":{\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

TEST(MetricsRegistryTest, ResetAllKeepsHandlesValid) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("c");
  Histogram* h = reg.GetHistogram("h");
  c->Increment(5);
  h->Observe(5.0);
  reg.ResetAll();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->count(), 0u);
  c->Increment();  // the old pointer still works
  EXPECT_EQ(reg.GetCounter("c")->value(), 1u);
}

// The plan-cache counters flow into the global registry only when
// enable_metrics is on, and in steady state (policies planned once at
// Prepare) every recorded evaluation is a hit.
TEST(PlanCacheMetricsTest, CountersRecordedAndGated) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* hits = reg.GetCounter("dl_plan_cache_hits_total");
  Counter* misses = reg.GetCounter("dl_plan_cache_misses_total");

  auto run_queries = [](DataLawyerOptions options) {
    Database db;
    Engine engine(&db);
    EXPECT_TRUE(engine
                    .ExecuteScript("CREATE TABLE t (a INT);"
                                   "INSERT INTO t VALUES (1), (2);")
                    .ok());
    DataLawyer dl(&db, nullptr, std::make_unique<ManualClock>(), options);
    EXPECT_TRUE(
        dl.AddPolicy("never", "SELECT DISTINCT 'no' FROM users u "
                              "WHERE u.uid = 999999")
            .ok());
    QueryContext ctx;
    ctx.uid = 1;
    for (int i = 0; i < 3; ++i) {
      EXPECT_TRUE(dl.Execute("SELECT * FROM t", ctx).ok());
    }
  };

  // Gated off: nothing lands in the registry.
  uint64_t hits_before = hits->value();
  uint64_t misses_before = misses->value();
  run_queries({});  // enable_metrics defaults off
  EXPECT_EQ(hits->value(), hits_before);
  EXPECT_EQ(misses->value(), misses_before);

  // Gated on: hits accumulate, and the steady-state miss count stays flat.
  DataLawyerOptions with_metrics;
  with_metrics.enable_metrics = true;
  run_queries(with_metrics);
  EXPECT_GT(hits->value(), hits_before);
  EXPECT_EQ(misses->value(), misses_before);
}

// An empty histogram renders explicit `-` placeholders, not stale or
// garbage numbers — registering a histogram must not fabricate latencies.
TEST(MetricsRegistryTest, SummaryTextRendersEmptyHistogramsAsDashes) {
  MetricsRegistry reg;
  reg.GetHistogram("dl_never_observed_us", "registered but never fed");
  Histogram* h = reg.GetHistogram("dl_fed_us");
  h->Observe(10.0);
  std::string text = reg.SummaryText();
  ASSERT_NE(text.find("dl_never_observed_us"), std::string::npos);
  std::string line = text.substr(text.find("dl_never_observed_us"));
  line = line.substr(0, line.find('\n'));
  EXPECT_NE(line.find(" 0 "), std::string::npos) << line;
  EXPECT_NE(line.find("-"), std::string::npos) << line;
  // The fed histogram still renders numbers.
  std::string fed = text.substr(text.find("dl_fed_us"));
  fed = fed.substr(0, fed.find('\n'));
  EXPECT_EQ(fed.find(" - "), std::string::npos) << fed;
}

TEST(MetricsRegistryTest, SummaryTextOmitsHistogramTableWhenNoneExist) {
  MetricsRegistry reg;
  reg.GetCounter("only_counters")->Increment();
  std::string text = reg.SummaryText();
  EXPECT_EQ(text.find("p50"), std::string::npos);
}

// Counters get their own table in the summary — the incremental-evaluation
// totals (`dl_incremental_*`) are plain counters, and `\metrics` is where
// operators look for them.
TEST(MetricsRegistryTest, SummaryTextListsCountersWithValues) {
  MetricsRegistry reg;
  reg.GetCounter("dl_incremental_hits_total")->Increment(7);
  reg.GetHistogram("dl_fed_us")->Observe(10.0);
  std::string text = reg.SummaryText();
  ASSERT_NE(text.find("counter"), std::string::npos);
  std::string line = text.substr(text.find("dl_incremental_hits_total"));
  line = line.substr(0, line.find('\n'));
  EXPECT_NE(line.find("7"), std::string::npos) << line;
  // Counters follow the histogram table, not the other way around.
  EXPECT_LT(text.find("dl_fed_us"), text.find("dl_incremental_hits_total"));
}

TEST(RollupRegistryTest, WindowsAggregateAndExpire) {
  RollupRegistry rollups;
  int64_t t0 = 1000 * 1000000;  // an arbitrary whole-second instant
  double phases[RollupRegistry::kNumPhases] = {100, 10, 50, 5, 35};
  rollups.RecordAt(t0, /*rejected=*/false, phases);
  rollups.RecordAt(t0, /*rejected=*/true, phases);
  // Five seconds later: outside the 1s window, inside 10s and 60s.
  int64_t t1 = t0 + 5 * 1000000;
  rollups.RecordAt(t1, /*rejected=*/false, phases);

  auto w1 = rollups.SnapshotAt(t1, 1);
  EXPECT_EQ(w1.queries, 1u);
  EXPECT_EQ(w1.rejected, 0u);

  auto w10 = rollups.SnapshotAt(t1, 10);
  EXPECT_EQ(w10.queries, 3u);
  EXPECT_EQ(w10.rejected, 1u);
  EXPECT_NEAR(w10.rejection_rate, 1.0 / 3.0, 1e-9);

  // Two minutes later everything has aged out of every window.
  auto stale = rollups.SnapshotAt(t1 + 120 * 1000000, 60);
  EXPECT_EQ(stale.queries, 0u);
  EXPECT_EQ(stale.rejection_rate, 0.0);
}

// Acceptance: rollup percentiles and Histogram percentiles share the same
// log2 bucketing and interpolation, so identical samples agree exactly.
TEST(RollupRegistryTest, PercentilesAgreeWithHistogram) {
  RollupRegistry rollups;
  Histogram hist;
  int64_t t0 = 2000 * 1000000;
  for (int i = 1; i <= 200; ++i) {
    double v = double(i) * 7.3;
    double phases[RollupRegistry::kNumPhases] = {v, 0, v / 2, 0, 0};
    rollups.RecordAt(t0 + (i % 10) * 1000000, i % 5 == 0, phases);
    hist.Observe(v);
  }
  auto w = rollups.SnapshotAt(t0 + 9 * 1000000, 10);
  ASSERT_EQ(w.queries, 200u);
  EXPECT_DOUBLE_EQ(w.p50[RollupRegistry::kTotal], hist.Percentile(0.5));
  EXPECT_DOUBLE_EQ(w.p95[RollupRegistry::kTotal], hist.Percentile(0.95));
}

TEST(RollupRegistryTest, ExpositionAndSummaryCoverEveryWindow) {
  RollupRegistry rollups;
  double phases[RollupRegistry::kNumPhases] = {100, 10, 50, 5, 35};
  rollups.Record(false, phases);
  std::string expo;
  rollups.AppendExposition(&expo);
  for (int w : {1, 10, 60}) {
    std::string label = "window=\"" + std::to_string(w) + "s\"";
    EXPECT_NE(expo.find("dl_rollup_queries{" + label + "} 1"),
              std::string::npos)
        << expo;
  }
  EXPECT_NE(expo.find("quantile=\"0.95\""), std::string::npos);
  std::string summary = rollups.SummaryText();
  EXPECT_NE(summary.find("60s"), std::string::npos);
}

TEST(RollupRegistryTest, SchedCountersAggregateAndExpire) {
  RollupRegistry rollups;
  int64_t t0 = 3000LL * 1000000;
  rollups.RecordSchedAt(t0, /*morsels=*/8, /*steals=*/2,
                        /*queue_wait_us=*/40, /*busy_us=*/500);
  rollups.RecordSchedAt(t0 + 5 * 1000000, 4, 1, 10, 250);

  auto w1 = rollups.SnapshotAt(t0 + 5 * 1000000, 1);
  EXPECT_EQ(w1.sched_morsels, 4u);
  EXPECT_EQ(w1.sched_steals, 1u);

  auto w10 = rollups.SnapshotAt(t0 + 5 * 1000000, 10);
  EXPECT_EQ(w10.sched_morsels, 12u);
  EXPECT_EQ(w10.sched_steals, 3u);
  EXPECT_EQ(w10.sched_queue_wait_us, 50u);
  EXPECT_EQ(w10.sched_busy_us, 750u);

  auto stale = rollups.SnapshotAt(t0 + 200 * 1000000, 60);
  EXPECT_EQ(stale.sched_morsels, 0u);

  std::string expo;
  rollups.AppendExposition(&expo);
  for (int w : {1, 10, 60}) {
    std::string label = "window=\"" + std::to_string(w) + "s\"";
    EXPECT_NE(expo.find("dl_rollup_sched_morsels{" + label + "}"),
              std::string::npos)
        << expo;
  }
}

// The rollup feed is serial on DataLawyer's API, but nothing stops an
// embedder (or the scheduler exposition path) from recording from worker
// threads — the registry takes one mutex per record, so concurrent feeds
// from scheduler workers must neither tear nor drop: every window count
// sums to the global task counter. Runs under TSan via the tsan CI leg.
TEST(RollupRegistryTest, ConcurrentFeedFromSchedulerWorkers) {
  RollupRegistry rollups;
  TaskScheduler scheduler(4);
  constexpr int kTasks = 256;
  std::atomic<uint64_t> fed{0};
  double phases[RollupRegistry::kNumPhases] = {10, 1, 5, 1, 3};
  std::vector<std::future<void>> futures;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(scheduler.Submit([&rollups, &phases, &fed] {
      rollups.Record(/*rejected=*/false, phases);
      rollups.RecordSched(/*morsels=*/1, /*steals=*/0, /*queue_wait_us=*/2,
                          /*busy_us=*/10);
      fed.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  for (auto& f : futures) f.get();

  ASSERT_EQ(fed.load(), uint64_t(kTasks));
  // All records landed within the last few wall-clock seconds, so the 60s
  // window must hold every one of them.
  auto w = rollups.Snapshot(60);
  EXPECT_EQ(w.queries, uint64_t(kTasks));
  EXPECT_EQ(w.sched_morsels, uint64_t(kTasks));
  EXPECT_EQ(w.sched_queue_wait_us, uint64_t(2 * kTasks));
  EXPECT_EQ(w.sched_busy_us, uint64_t(10 * kTasks));
}

// End to end: the per-query rollup feed agrees with the dl_total_us
// histogram the same queries populate (identical sample stream).
TEST(RollupMetricsIntegrationTest, RollupMatchesHistogramWithinBucket) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Histogram* total = reg.GetHistogram("dl_total_us");
  uint64_t count_before = total->count();
  RollupRegistry::Global().Reset();

  Database db;
  Engine engine(&db);
  ASSERT_TRUE(engine
                  .ExecuteScript("CREATE TABLE t (a INT);"
                                 "INSERT INTO t VALUES (1), (2);")
                  .ok());
  DataLawyerOptions options;
  options.enable_metrics = true;
  DataLawyer dl(&db, nullptr, std::make_unique<ManualClock>(), options);
  QueryContext ctx;
  ctx.uid = 1;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(dl.Execute("SELECT * FROM t", ctx).ok());
  }

  EXPECT_EQ(total->count(), count_before + 20);
  auto w = RollupRegistry::Global().Snapshot(60);
  ASSERT_EQ(w.queries, 20u);
  EXPECT_EQ(w.rejected, 0u);
  // Same bucketing ⇒ the rollup p50 can differ from the full-histogram p50
  // only through the histogram's extra history; both land in [min, max].
  EXPECT_GE(w.p95[RollupRegistry::kTotal], w.p50[RollupRegistry::kTotal]);
  EXPECT_GT(w.p50[RollupRegistry::kTotal], 0.0);
}

TEST(MetricsRegistryTest, NamesAreSorted) {
  MetricsRegistry reg;
  reg.GetCounter("b");
  reg.GetCounter("a");
  reg.GetHistogram("z");
  reg.GetHistogram("y");
  auto counters = reg.CounterNames();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0], "a");
  EXPECT_EQ(counters[1], "b");
  auto hists = reg.HistogramNames();
  ASSERT_EQ(hists.size(), 2u);
  EXPECT_EQ(hists[0], "y");
  EXPECT_EQ(hists[1], "z");
}

}  // namespace
}  // namespace datalawyer
