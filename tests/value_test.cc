#include <gtest/gtest.h>

#include "common/value.h"
#include "common/value_hash.h"

namespace datalawyer {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value().type(), ValueType::kNull);
  EXPECT_EQ(Value(int64_t{5}).type(), ValueType::kInt64);
  EXPECT_EQ(Value(2.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value("abc").type(), ValueType::kString);
  EXPECT_EQ(Value(true).type(), ValueType::kBool);

  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(int64_t{1}).is_numeric());
  EXPECT_TRUE(Value(1.0).is_numeric());
  EXPECT_FALSE(Value("1").is_numeric());
  EXPECT_EQ(Value(int64_t{7}).AsInt64(), 7);
  EXPECT_DOUBLE_EQ(Value(int64_t{7}).ToDouble(), 7.0);
  EXPECT_EQ(Value("xy").AsString(), "xy");
}

TEST(ValueTest, StructuralEquality) {
  EXPECT_EQ(Value(int64_t{3}), Value(int64_t{3}));
  EXPECT_NE(Value(int64_t{3}), Value(3.0));  // different types
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_NE(Value::Null(), Value(int64_t{0}));
  EXPECT_EQ(Value("a"), Value("a"));
  EXPECT_NE(Value("a"), Value("b"));
  EXPECT_NE(Value(true), Value(int64_t{1}));
}

TEST(ValueTest, HashConsistentWithJoinSemantics) {
  // 1 and 1.0 must meet in a hash join probe.
  EXPECT_EQ(Value(int64_t{1}).Hash(), Value(1.0).Hash());
  EXPECT_EQ(Value("k").Hash(), Value("k").Hash());
  EXPECT_NE(Value("k").Hash(), Value("K").Hash());
}

struct CompareCase {
  Value lhs;
  const char* op;
  Value rhs;
  Value expected;  // Null means SQL NULL
};

class ValueCompareTest : public ::testing::TestWithParam<CompareCase> {};

TEST_P(ValueCompareTest, Compare) {
  const CompareCase& c = GetParam();
  auto result = Value::Compare(c.lhs, c.op, c.rhs);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*result, c.expected)
      << c.lhs.ToString() << " " << c.op << " " << c.rhs.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Ints, ValueCompareTest,
    ::testing::Values(
        CompareCase{Value(int64_t{1}), "=", Value(int64_t{1}), Value(true)},
        CompareCase{Value(int64_t{1}), "=", Value(int64_t{2}), Value(false)},
        CompareCase{Value(int64_t{1}), "!=", Value(int64_t{2}), Value(true)},
        CompareCase{Value(int64_t{1}), "<", Value(int64_t{2}), Value(true)},
        CompareCase{Value(int64_t{2}), "<=", Value(int64_t{2}), Value(true)},
        CompareCase{Value(int64_t{3}), ">", Value(int64_t{2}), Value(true)},
        CompareCase{Value(int64_t{1}), ">=", Value(int64_t{2}),
                    Value(false)}));

INSTANTIATE_TEST_SUITE_P(
    MixedNumeric, ValueCompareTest,
    ::testing::Values(
        CompareCase{Value(int64_t{1}), "=", Value(1.0), Value(true)},
        CompareCase{Value(int64_t{1}), "<", Value(1.5), Value(true)},
        CompareCase{Value(2.5), ">", Value(int64_t{2}), Value(true)}));

INSTANTIATE_TEST_SUITE_P(
    StringsAndBools, ValueCompareTest,
    ::testing::Values(
        CompareCase{Value("abc"), "<", Value("abd"), Value(true)},
        CompareCase{Value("abc"), "=", Value("abc"), Value(true)},
        CompareCase{Value(""), "<", Value("a"), Value(true)},
        CompareCase{Value(false), "<", Value(true), Value(true)},
        CompareCase{Value(true), "=", Value(true), Value(true)}));

INSTANTIATE_TEST_SUITE_P(
    NullPropagation, ValueCompareTest,
    ::testing::Values(
        CompareCase{Value::Null(), "=", Value(int64_t{1}), Value::Null()},
        CompareCase{Value(int64_t{1}), "<", Value::Null(), Value::Null()},
        CompareCase{Value::Null(), "=", Value::Null(), Value::Null()}));

TEST(ValueTest, CompareTypeErrors) {
  EXPECT_FALSE(Value::Compare(Value(int64_t{1}), "=", Value("1")).ok());
  EXPECT_FALSE(Value::Compare(Value(true), "<", Value(int64_t{1})).ok());
  EXPECT_FALSE(Value::Compare(Value("a"), ">", Value(1.0)).ok());
}

struct ArithCase {
  Value lhs;
  const char* op;
  Value rhs;
  Value expected;
};

class ValueArithTest : public ::testing::TestWithParam<ArithCase> {};

TEST_P(ValueArithTest, Arithmetic) {
  const ArithCase& c = GetParam();
  auto result = Value::Arithmetic(c.lhs, c.op, c.rhs);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  if (c.expected.is_double()) {
    ASSERT_TRUE(result->is_double());
    EXPECT_DOUBLE_EQ(result->AsDouble(), c.expected.AsDouble());
  } else {
    EXPECT_EQ(*result, c.expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    IntegerOps, ValueArithTest,
    ::testing::Values(
        ArithCase{Value(int64_t{3}), "+", Value(int64_t{4}), Value(int64_t{7})},
        ArithCase{Value(int64_t{3}), "-", Value(int64_t{4}),
                  Value(int64_t{-1})},
        ArithCase{Value(int64_t{3}), "*", Value(int64_t{4}),
                  Value(int64_t{12})},
        ArithCase{Value(int64_t{9}), "/", Value(int64_t{2}), Value(int64_t{4})},
        ArithCase{Value(int64_t{9}), "%", Value(int64_t{4}),
                  Value(int64_t{1})}));

INSTANTIATE_TEST_SUITE_P(
    DoubleOps, ValueArithTest,
    ::testing::Values(
        ArithCase{Value(1.5), "+", Value(int64_t{1}), Value(2.5)},
        ArithCase{Value(int64_t{5}), "/", Value(2.0), Value(2.5)},
        ArithCase{Value(2.0), "*", Value(3.0), Value(6.0)}));

INSTANTIATE_TEST_SUITE_P(
    NullArith, ValueArithTest,
    ::testing::Values(
        ArithCase{Value::Null(), "+", Value(int64_t{1}), Value::Null()},
        ArithCase{Value(int64_t{1}), "*", Value::Null(), Value::Null()}));

TEST(ValueTest, ArithmeticErrors) {
  EXPECT_FALSE(Value::Arithmetic(Value(int64_t{1}), "/",
                                 Value(int64_t{0})).ok());
  EXPECT_FALSE(Value::Arithmetic(Value(int64_t{1}), "%",
                                 Value(int64_t{0})).ok());
  EXPECT_FALSE(Value::Arithmetic(Value("a"), "+", Value("b")).ok());
  EXPECT_FALSE(Value::Arithmetic(Value(true), "+", Value(int64_t{1})).ok());
}

TEST(ValueTest, TotalOrderAcrossTypes) {
  // NULL < BOOL < numeric < STRING; stable for sorting heterogeneous rows.
  EXPECT_TRUE(Value::Null() < Value(false));
  EXPECT_TRUE(Value(true) < Value(int64_t{0}));
  EXPECT_TRUE(Value(int64_t{5}) < Value("a"));
  EXPECT_TRUE(Value(int64_t{1}) < Value(1.5));
  EXPECT_FALSE(Value(int64_t{1}) < Value(int64_t{1}));
  EXPECT_FALSE(Value::Null() < Value::Null());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value("hi").ToString(), "'hi'");
  EXPECT_EQ(Value(true).ToString(), "TRUE");
  EXPECT_EQ(Value(false).ToString(), "FALSE");
}

TEST(ValueTest, RowHashAndToString) {
  Row a{Value(int64_t{1}), Value("x")};
  Row b{Value(int64_t{1}), Value("x")};
  Row c{Value(int64_t{2}), Value("x")};
  EXPECT_EQ(RowHash()(a), RowHash()(b));
  EXPECT_NE(RowHash()(a), RowHash()(c));
  EXPECT_EQ(RowToString(a), "(1, 'x')");
}

}  // namespace
}  // namespace datalawyer
