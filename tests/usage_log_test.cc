#include <gtest/gtest.h>

#include "analysis/binder.h"
#include "exec/engine.h"
#include "log/usage_log.h"
#include "sql/parser.h"

namespace datalawyer {
namespace {

class UsageLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<Engine>(&db_);
    ASSERT_TRUE(engine_
                    ->ExecuteScript(R"sql(
      CREATE TABLE items (id INT, name TEXT);
      INSERT INTO items VALUES (1, 'a'), (2, 'b'), (3, 'c');
    )sql")
                    .ok());
    log_ = UsageLog::WithStandardGenerators();
  }

  /// Parses + binds a user query and assembles the GenerationInput.
  GenerationInput InputFor(const std::string& sql) {
    auto parsed = Parser::ParseSelect(sql);
    EXPECT_TRUE(parsed.ok());
    stmts_.push_back(std::move(parsed).value());
    Binder binder(engine_->db_catalog());
    auto bound = binder.Bind(*stmts_.back());
    EXPECT_TRUE(bound.ok()) << bound.status().ToString();
    bounds_.push_back(std::move(bound).value());
    GenerationInput input;
    input.query = stmts_.back().get();
    input.bound = bounds_.back().get();
    input.db_catalog = engine_->db_catalog();
    input.context = &context_;
    return input;
  }

  Database db_;
  std::unique_ptr<Engine> engine_;
  std::unique_ptr<UsageLog> log_;
  QueryContext context_;
  std::vector<std::unique_ptr<SelectStmt>> stmts_;
  std::vector<std::unique_ptr<BoundQuery>> bounds_;
};

TEST_F(UsageLogTest, StandardRelationsRegisteredInCostOrder) {
  EXPECT_EQ(log_->RelationNamesInOrder(),
            (std::vector<std::string>{"users", "schema", "provenance"}));
  EXPECT_TRUE(log_->IsLogRelation("users"));
  EXPECT_TRUE(log_->IsLogRelation("USERS"));
  EXPECT_FALSE(log_->IsLogRelation("clock"));
  EXPECT_FALSE(log_->IsLogRelation("items"));
}

TEST_F(UsageLogTest, DuplicateAndReservedRegistrationRejected) {
  EXPECT_FALSE(log_->RegisterGenerator(std::make_unique<UsersLogGenerator>())
                   .ok());
  class ClockImpostor : public UsersLogGenerator {
   public:
    const std::string& relation_name() const override {
      static const std::string* kName = new std::string("clock");
      return *kName;
    }
  };
  EXPECT_FALSE(log_->RegisterGenerator(std::make_unique<ClockImpostor>()).ok());
}

TEST_F(UsageLogTest, UsersGeneratorRecordsUid) {
  context_.uid = 42;
  GenerationInput input = InputFor("SELECT * FROM items");
  auto staged = log_->EnsureGenerated("users", 7, input);
  ASSERT_TRUE(staged.ok());
  EXPECT_EQ(*staged, 1u);
  const Table* delta = log_->delta_table("users");
  ASSERT_EQ(delta->NumRows(), 1u);
  EXPECT_EQ(delta->RowAt(0)[0], Value(int64_t{7}));   // ts prefixed
  EXPECT_EQ(delta->RowAt(0)[1], Value(int64_t{42}));
}

TEST_F(UsageLogTest, GenerationIsOncePerQuery) {
  GenerationInput input = InputFor("SELECT * FROM items");
  ASSERT_TRUE(log_->EnsureGenerated("users", 7, input).ok());
  auto again = log_->EnsureGenerated("users", 7, input);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 0u);
  EXPECT_EQ(log_->delta_table("users")->NumRows(), 1u);
  EXPECT_TRUE(log_->IsGenerated("users"));
  EXPECT_FALSE(log_->IsGenerated("schema"));
}

TEST_F(UsageLogTest, SchemaGeneratorEmitsColumnDerivations) {
  GenerationInput input = InputFor("SELECT i.name AS n FROM items i");
  ASSERT_TRUE(log_->EnsureGenerated("schema", 3, input).ok());
  const Table* delta = log_->delta_table("schema");
  ASSERT_EQ(delta->NumRows(), 1u);
  // (ts, ocid, irid, icid, agg)
  EXPECT_EQ(delta->RowAt(0)[1], Value("n"));
  EXPECT_EQ(delta->RowAt(0)[2], Value("items"));
  EXPECT_EQ(delta->RowAt(0)[3], Value("name"));
  EXPECT_EQ(delta->RowAt(0)[4], Value(false));
}

TEST_F(UsageLogTest, ProvenanceGeneratorEmitsContributingTuples) {
  GenerationInput input = InputFor("SELECT i.name FROM items i WHERE i.id > 1");
  ASSERT_TRUE(log_->EnsureGenerated("provenance", 9, input).ok());
  const Table* delta = log_->delta_table("provenance");
  ASSERT_EQ(delta->NumRows(), 2u);  // rows 2 and 3 contribute
  // (ts, otid, irid, itid)
  EXPECT_EQ(delta->RowAt(0)[2], Value("items"));
  EXPECT_EQ(delta->RowAt(0)[1], Value(int64_t{0}));
  EXPECT_EQ(delta->RowAt(1)[1], Value(int64_t{1}));
}

TEST_F(UsageLogTest, CommitMovesDeltaToMain) {
  GenerationInput input = InputFor("SELECT * FROM items");
  ASSERT_TRUE(log_->EnsureGenerated("users", 1, input).ok());
  EXPECT_EQ(log_->CommitStaged(), 1u);
  EXPECT_EQ(log_->main_table("users")->NumRows(), 1u);
  EXPECT_EQ(log_->delta_table("users")->NumRows(), 0u);
  EXPECT_FALSE(log_->IsGenerated("users"));
}

TEST_F(UsageLogTest, DiscardDropsDelta) {
  GenerationInput input = InputFor("SELECT * FROM items");
  ASSERT_TRUE(log_->EnsureGenerated("users", 1, input).ok());
  log_->DiscardStaged();
  EXPECT_EQ(log_->main_table("users")->NumRows(), 0u);
  EXPECT_EQ(log_->delta_table("users")->NumRows(), 0u);
}

TEST_F(UsageLogTest, NonPersistedRelationsDropAtCommit) {
  log_->SetPersisted("users", false);
  EXPECT_FALSE(log_->IsPersisted("users"));
  GenerationInput input = InputFor("SELECT * FROM items");
  ASSERT_TRUE(log_->EnsureGenerated("users", 1, input).ok());
  ASSERT_TRUE(log_->EnsureGenerated("schema", 1, input).ok());
  log_->CommitStaged();
  EXPECT_EQ(log_->main_table("users")->NumRows(), 0u);
  EXPECT_GE(log_->main_table("schema")->NumRows(), 1u);
}

TEST_F(UsageLogTest, CatalogExposesLogUnionIncrementAndClock) {
  GenerationInput input = InputFor("SELECT * FROM items");
  ASSERT_TRUE(log_->EnsureGenerated("users", 1, input).ok());
  log_->CommitStaged();
  // One committed row; stage another at ts 2.
  GenerationInput input2 = InputFor("SELECT * FROM items");
  ASSERT_TRUE(log_->EnsureGenerated("users", 2, input2).ok());

  UsageLog::PolicyCatalog catalog =
      log_->MakeCatalog(engine_->db_catalog(), 2);
  const RelationData* users = catalog.view()->Find("users");
  ASSERT_NE(users, nullptr);
  EXPECT_EQ(users->NumRows(), 2u);  // main + delta
  const RelationData* clock = catalog.view()->Find("clock");
  ASSERT_NE(clock, nullptr);
  ASSERT_EQ(clock->NumRows(), 1u);
  EXPECT_EQ(clock->RowAt(0)[0], Value(int64_t{2}));
  // The database shows through.
  EXPECT_NE(catalog.view()->Find("items"), nullptr);
}

TEST_F(UsageLogTest, ExtensionGeneratorsFromSection6) {
  auto custom = std::make_unique<UsageLog>();
  ASSERT_TRUE(
      custom->RegisterGenerator(std::make_unique<DeviceLogGenerator>()).ok());
  ASSERT_TRUE(custom
                  ->RegisterGenerator(
                      std::make_unique<SystemLoadLogGenerator>())
                  .ok());
  context_.uid = 1;
  context_.extras["device"] = Value("mobile");
  context_.extras["system_load"] = Value(0.93);
  GenerationInput input = InputFor("SELECT * FROM items");
  ASSERT_TRUE(custom->EnsureGenerated("devices", 5, input).ok());
  ASSERT_TRUE(custom->EnsureGenerated("system_load", 5, input).ok());
  EXPECT_EQ(custom->delta_table("devices")->RowAt(0)[1], Value("mobile"));
  EXPECT_EQ(custom->delta_table("system_load")->RowAt(0)[1], Value(0.93));

  // Defaults when the context does not carry the extras.
  QueryContext bare;
  GenerationInput input2 = InputFor("SELECT * FROM items");
  input2.context = &bare;
  custom->DiscardStaged();
  ASSERT_TRUE(custom->EnsureGenerated("devices", 6, input2).ok());
  EXPECT_EQ(custom->delta_table("devices")->RowAt(0)[1], Value("unknown"));
}

TEST_F(UsageLogTest, UnknownRelationErrors) {
  GenerationInput input = InputFor("SELECT * FROM items");
  EXPECT_FALSE(log_->EnsureGenerated("nope", 1, input).ok());
  EXPECT_EQ(log_->main_table("nope"), nullptr);
  EXPECT_EQ(log_->generator("nope"), nullptr);
}

}  // namespace
}  // namespace datalawyer
