#include <gtest/gtest.h>

#include "analysis/join_graph.h"
#include "sql/parser.h"

namespace datalawyer {
namespace {

JoinGraph Build(const std::string& sql) {
  auto stmt = Parser::ParseSelect(sql);
  EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
  return JoinGraph::Build(**stmt);
}

QualifiedColumn QC(const std::string& q, const std::string& c) {
  return QualifiedColumn{q, c};
}

TEST(JoinGraphTest, DirectEquiJoin) {
  JoinGraph g = Build("SELECT 1 FROM a, b WHERE a.x = b.y");
  EXPECT_TRUE(g.SameClass(QC("a", "x"), QC("b", "y")));
  EXPECT_FALSE(g.SameClass(QC("a", "x"), QC("b", "z")));
}

TEST(JoinGraphTest, TransitiveClosure) {
  JoinGraph g = Build(
      "SELECT 1 FROM a, b, c WHERE a.ts = b.ts AND b.ts = c.ts");
  EXPECT_TRUE(g.SameClass(QC("a", "ts"), QC("c", "ts")));
  EXPECT_EQ(g.ClassMembers(QC("a", "ts")).size(), 3u);
}

TEST(JoinGraphTest, SeparateClasses) {
  JoinGraph g = Build(
      "SELECT 1 FROM a, b WHERE a.ts = b.ts AND a.id = b.id");
  EXPECT_TRUE(g.SameClass(QC("a", "ts"), QC("b", "ts")));
  EXPECT_TRUE(g.SameClass(QC("a", "id"), QC("b", "id")));
  EXPECT_FALSE(g.SameClass(QC("a", "ts"), QC("b", "id")));
  EXPECT_EQ(g.Classes().size(), 2u);
}

TEST(JoinGraphTest, NonEquiAndConstantPredicatesIgnored) {
  JoinGraph g = Build(
      "SELECT 1 FROM a, b WHERE a.ts > b.ts AND a.x = 5 AND a.y != b.y");
  EXPECT_FALSE(g.SameClass(QC("a", "ts"), QC("b", "ts")));
  EXPECT_TRUE(g.ClassMembers(QC("a", "x")).empty());
  EXPECT_TRUE(g.Classes().empty());
}

TEST(JoinGraphTest, DisjunctionsAreNotJoins) {
  // A join inside OR is not a guaranteed equi-join.
  JoinGraph g = Build("SELECT 1 FROM a, b WHERE a.x = b.x OR a.y = 1");
  EXPECT_FALSE(g.SameClass(QC("a", "x"), QC("b", "x")));
}

TEST(JoinGraphTest, ReflexiveAndUnknown) {
  JoinGraph g = Build("SELECT 1 FROM a, b WHERE a.ts = b.ts");
  EXPECT_TRUE(g.SameClass(QC("a", "ts"), QC("a", "ts")));  // identity
  EXPECT_TRUE(g.SameClass(QC("z", "q"), QC("z", "q")));
  EXPECT_FALSE(g.SameClass(QC("z", "q"), QC("a", "ts")));
}

TEST(JoinGraphTest, NoWhereClause) {
  JoinGraph g = Build("SELECT 1 FROM a, b");
  EXPECT_TRUE(g.Classes().empty());
}

TEST(JoinGraphTest, PaperExampleP2b) {
  // Example 3.2: Users/Schema joined on ts; uid joined with Groups.
  JoinGraph g = Build(
      "SELECT DISTINCT 'e' FROM users u, schema s, groups g, clock c "
      "WHERE u.ts = s.ts AND s.irid = 'patients' AND u.uid = g.uid "
      "AND g.gid = 'Students' AND u.ts > c.ts - 1209600");
  EXPECT_TRUE(g.SameClass(QC("u", "ts"), QC("s", "ts")));
  EXPECT_TRUE(g.SameClass(QC("u", "uid"), QC("g", "uid")));
  EXPECT_FALSE(g.SameClass(QC("u", "ts"), QC("c", "ts")));  // window, not join
}

}  // namespace
}  // namespace datalawyer
