#include <gtest/gtest.h>

#include "analysis/binder.h"
#include "analysis/eval.h"
#include "sql/parser.h"
#include "storage/catalog_view.h"
#include "storage/database.h"

namespace datalawyer {
namespace {

/// Binds an expression by parsing "SELECT <expr> FROM t" against a
/// one-table catalog and evaluates it over the supplied row.
class EvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateTable("t",
                                TableSchema()
                                    .AddColumn("i", ValueType::kInt64)
                                    .AddColumn("d", ValueType::kDouble)
                                    .AddColumn("s", ValueType::kString)
                                    .AddColumn("b", ValueType::kBool)
                                    .AddColumn("n", ValueType::kInt64))
                    .ok());
    catalog_ = std::make_unique<DatabaseCatalog>(&db_);
  }

  Result<Value> EvalExpr(const std::string& expr_sql, Row row) {
    auto parsed = Parser::ParseSelect("SELECT " + expr_sql + " FROM t");
    if (!parsed.ok()) return parsed.status();
    stmts_.push_back(std::move(parsed).value());
    Binder binder(catalog_.get());
    auto bound = binder.Bind(*stmts_.back());
    if (!bound.ok()) return bound.status();
    bounds_.push_back(std::move(bound).value());
    rows_.push_back(std::move(row));
    EvalContext ctx{bounds_.back().get(), &rows_.back(), nullptr};
    return Eval(*stmts_.back()->items[0].expr, ctx);
  }

  /// Default row: i=10, d=2.5, s='abc', b=true, n=NULL.
  Row DefaultRow() {
    return Row{Value(int64_t{10}), Value(2.5), Value("abc"), Value(true),
               Value::Null()};
  }

  Database db_;
  std::unique_ptr<DatabaseCatalog> catalog_;
  std::vector<std::unique_ptr<SelectStmt>> stmts_;
  std::vector<std::unique_ptr<BoundQuery>> bounds_;
  std::vector<Row> rows_;
};

TEST_F(EvalTest, ColumnAccessAndArithmetic) {
  EXPECT_EQ(*EvalExpr("i + 5", DefaultRow()), Value(int64_t{15}));
  EXPECT_EQ(*EvalExpr("i * d", DefaultRow()), Value(25.0));
  EXPECT_EQ(*EvalExpr("i % 3", DefaultRow()), Value(int64_t{1}));
  EXPECT_EQ(*EvalExpr("-i", DefaultRow()), Value(int64_t{-10}));
  EXPECT_EQ(*EvalExpr("i - d", DefaultRow()), Value(7.5));
}

TEST_F(EvalTest, Comparisons) {
  EXPECT_EQ(*EvalExpr("i > 5", DefaultRow()), Value(true));
  EXPECT_EQ(*EvalExpr("s = 'abc'", DefaultRow()), Value(true));
  EXPECT_EQ(*EvalExpr("s != 'abc'", DefaultRow()), Value(false));
  EXPECT_EQ(*EvalExpr("d <= 2.5", DefaultRow()), Value(true));
}

struct ThreeValuedCase {
  const char* expr;
  int expected;  // 1 true, 0 false, -1 null
};

class ThreeValuedLogicTest
    : public EvalTest,
      public ::testing::WithParamInterface<ThreeValuedCase> {};

TEST_P(ThreeValuedLogicTest, Matrix) {
  auto result = EvalExpr(GetParam().expr, DefaultRow());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  switch (GetParam().expected) {
    case 1:
      EXPECT_EQ(*result, Value(true)) << GetParam().expr;
      break;
    case 0:
      EXPECT_EQ(*result, Value(false)) << GetParam().expr;
      break;
    default:
      EXPECT_TRUE(result->is_null()) << GetParam().expr;
  }
}

// n is NULL in the default row, so `n = n` is NULL etc. (Kleene logic).
INSTANTIATE_TEST_SUITE_P(
    Kleene, ThreeValuedLogicTest,
    ::testing::Values(
        ThreeValuedCase{"TRUE AND TRUE", 1},
        ThreeValuedCase{"TRUE AND FALSE", 0},
        ThreeValuedCase{"TRUE AND n = 1", -1},
        ThreeValuedCase{"FALSE AND n = 1", 0},   // false dominates null
        ThreeValuedCase{"n = 1 AND FALSE", 0},
        ThreeValuedCase{"TRUE OR n = 1", 1},     // true dominates null
        ThreeValuedCase{"n = 1 OR TRUE", 1},
        ThreeValuedCase{"FALSE OR n = 1", -1},
        ThreeValuedCase{"NOT (n = 1)", -1},
        ThreeValuedCase{"NOT FALSE", 1},
        ThreeValuedCase{"n IS NULL", 1},
        ThreeValuedCase{"n IS NOT NULL", 0},
        ThreeValuedCase{"i IS NULL", 0},
        ThreeValuedCase{"n + 1 IS NULL", 1},     // null propagates through +
        ThreeValuedCase{"n = n", -1}));

TEST_F(EvalTest, TypeErrorsSurface) {
  EXPECT_FALSE(EvalExpr("s + 1", DefaultRow()).ok());
  EXPECT_FALSE(EvalExpr("i AND TRUE", DefaultRow()).ok());
  EXPECT_FALSE(EvalExpr("NOT i", DefaultRow()).ok());
  EXPECT_FALSE(EvalExpr("-s", DefaultRow()).ok());
  EXPECT_FALSE(EvalExpr("i = 'ten'", DefaultRow()).ok());
  EXPECT_FALSE(EvalExpr("i / 0", DefaultRow()).ok());
}

TEST_F(EvalTest, ShortCircuitSkipsErrors) {
  // FALSE AND <error> short-circuits before the bad comparison evaluates.
  auto result = EvalExpr("FALSE AND i = 'ten'", DefaultRow());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(*result, Value(false));
  auto or_result = EvalExpr("TRUE OR i = 'ten'", DefaultRow());
  ASSERT_TRUE(or_result.ok());
  EXPECT_EQ(*or_result, Value(true));
}

TEST_F(EvalTest, PredicateSemantics) {
  auto parsed = Parser::ParseSelect("SELECT 1 FROM t WHERE n = 1");
  ASSERT_TRUE(parsed.ok());
  stmts_.push_back(std::move(parsed).value());
  Binder binder(catalog_.get());
  auto bound = binder.Bind(*stmts_.back());
  ASSERT_TRUE(bound.ok());
  bounds_.push_back(std::move(bound).value());
  rows_.push_back(DefaultRow());
  EvalContext ctx{bounds_.back().get(), &rows_.back(), nullptr};
  // NULL predicate is "not true".
  auto keep = EvalPredicate(*stmts_.back()->where, ctx);
  ASSERT_TRUE(keep.ok());
  EXPECT_FALSE(*keep);
}

}  // namespace
}  // namespace datalawyer
