// Robustness: the parser must never crash, hang, or accept garbage — on
// random token soup, on truncations of valid queries, and on deep nesting.

#include <gtest/gtest.h>

#include <random>

#include "sql/parser.h"
#include "workload/paper_policies.h"
#include "workload/paper_queries.h"

namespace datalawyer {
namespace {

const char* kFragments[] = {
    "SELECT", "FROM",  "WHERE",  "GROUP",  "BY",    "HAVING", "DISTINCT",
    "ON",     "UNION", "ALL",    "AND",    "OR",    "NOT",    "COUNT",
    "(",      ")",     ",",      ".",      "*",     "=",      "!=",
    "<",      ">",     "<=",     ">=",     "+",     "-",      "/",
    "%",      "'s'",   "42",     "3.14",   "t",     "a",      "b",
    "users",  "ts",    "NULL",   "TRUE",   "FALSE", "AS",     "IN",
    "LIKE",   "BETWEEN", "IS",   ";",      "LIMIT", "ORDER",
};

TEST(ParserFuzzTest, RandomTokenSoupNeverCrashes) {
  std::mt19937_64 rng(2024);
  for (int round = 0; round < 3000; ++round) {
    std::string sql;
    int length = 1 + int(rng() % 30);
    for (int i = 0; i < length; ++i) {
      sql += kFragments[rng() % std::size(kFragments)];
      sql += " ";
    }
    // Must terminate and either parse or fail cleanly; never crash.
    auto result = Parser::Parse(sql);
    if (result.ok()) {
      // Whatever parsed must round-trip through its own printer.
      if (result->kind == StatementKind::kSelect) {
        std::string printed = result->select->ToString();
        auto again = Parser::ParseSelect(printed);
        EXPECT_TRUE(again.ok()) << "round-trip broke for: " << printed;
      }
    }
  }
}

TEST(ParserFuzzTest, TruncationsOfValidQueriesFailCleanly) {
  std::vector<std::string> bases;
  for (const auto& [name, sql] : PaperQueries::All()) bases.push_back(sql);
  for (const auto& [name, sql] : PaperPolicies::All()) bases.push_back(sql);
  for (const std::string& base : bases) {
    for (size_t cut = 0; cut < base.size(); cut += 7) {
      auto result = Parser::Parse(base.substr(0, cut));
      (void)result;  // any Status is fine; crashing/hanging is not
    }
  }
}

TEST(ParserFuzzTest, RandomBytesNeverCrashLexerOrParser) {
  std::mt19937_64 rng(7);
  for (int round = 0; round < 2000; ++round) {
    std::string sql;
    int length = int(rng() % 60);
    for (int i = 0; i < length; ++i) {
      sql += char(32 + rng() % 95);  // printable ASCII
    }
    auto result = Parser::Parse(sql);
    (void)result;
  }
}

TEST(ParserFuzzTest, DeepNestingParses) {
  // Deeply parenthesized arithmetic and nested subqueries: recursive
  // descent must handle reasonable depth without smashing the stack.
  std::string expr = "1";
  for (int i = 0; i < 200; ++i) expr = "(" + expr + " + 1)";
  EXPECT_TRUE(Parser::Parse("SELECT " + expr).ok());

  std::string nested = "SELECT 1 AS c0";
  for (int i = 0; i < 60; ++i) {
    nested = "SELECT q" + std::to_string(i) + ".c0 AS c0 FROM (" + nested +
             ") q" + std::to_string(i);
  }
  EXPECT_TRUE(Parser::Parse(nested).ok());
}

TEST(ParserFuzzTest, PaperPoliciesAllRoundTripThroughPrinter) {
  for (const auto& [name, sql] : PaperPolicies::All()) {
    auto first = Parser::ParseSelect(sql);
    ASSERT_TRUE(first.ok()) << name;
    std::string printed = (*first)->ToString();
    auto second = Parser::ParseSelect(printed);
    ASSERT_TRUE(second.ok()) << name << ": " << printed;
    EXPECT_EQ(printed, (*second)->ToString()) << name;
  }
}

}  // namespace
}  // namespace datalawyer
