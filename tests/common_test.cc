#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/result.h"
#include "common/status.h"
#include "common/strings.h"

namespace datalawyer {
namespace {

TEST(StatusTest, CodesAndMessages) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "OK");
  Status bad = Status::InvalidArgument("bad input");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(bad.message(), "bad input");
  EXPECT_EQ(bad.ToString(), "InvalidArgument: bad input");
  EXPECT_TRUE(Status::PolicyViolation("x").IsPolicyViolation());
  EXPECT_FALSE(bad.IsPolicyViolation());
}

TEST(StatusTest, AllCodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kAlreadyExists),
               "AlreadyExists");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kTypeError), "TypeError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnsupported), "Unsupported");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kPolicyViolation),
               "PolicyViolation");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  DL_ASSIGN_OR_RETURN(int half, Half(x));
  DL_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(ResultTest, ValueAndErrorPaths) {
  Result<int> ok = Half(10);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 5);
  EXPECT_TRUE(ok.status().ok());

  Result<int> err = Half(3);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnChains) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(Quarter(5).ok());
}

TEST(ResultTest, OkStatusDowngradedToInternal) {
  Result<int> bogus{Status::OK()};
  ASSERT_FALSE(bogus.ok());
  EXPECT_EQ(bogus.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> result(std::make_unique<int>(7));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 7);
}

TEST(ManualClockTest, DeterministicTicks) {
  ManualClock clock(100, 10);
  EXPECT_EQ(clock.Now(), 100);
  EXPECT_EQ(clock.Tick(), 110);
  EXPECT_EQ(clock.Tick(), 120);
  EXPECT_EQ(clock.Now(), 120);
  clock.AdvanceTo(500);
  EXPECT_EQ(clock.Now(), 500);
  clock.AdvanceTo(10);  // cannot go back
  EXPECT_EQ(clock.Now(), 500);
  clock.set_step(0);  // clamps to 1
  EXPECT_EQ(clock.Tick(), 501);
}

TEST(SystemClockTest, StrictlyIncreasingTicks) {
  SystemClock clock;
  int64_t a = clock.Tick();
  int64_t b = clock.Tick();
  int64_t c = clock.Tick();
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_GE(clock.Now(), 1600000000000LL);  // after 2020, in ms
}

TEST(StringsTest, Helpers) {
  EXPECT_EQ(ToLower("MiXeD_09"), "mixed_09");
  EXPECT_TRUE(EqualsIgnoreCase("Users", "USERS"));
  EXPECT_FALSE(EqualsIgnoreCase("Users", "User"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"solo"}, ", "), "solo");
}

}  // namespace
}  // namespace datalawyer
