// The worked examples of §3 and §4, transcribed as directly as the engine
// allows, behaving as the paper describes.

#include <gtest/gtest.h>

#include "core/datalawyer.h"
#include "policy/policy_analyzer.h"
#include "sql/parser.h"

namespace datalawyer {
namespace {

class PaperExamplesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // The MIMIC II patients table of Example 3.1, footnote 5:
    // "Its schema is patients(pid, dob, sex)".
    Engine setup(&db_);
    ASSERT_TRUE(setup.ExecuteScript(R"sql(
      CREATE TABLE patients (pid INT, dob INT, sex TEXT);
      CREATE TABLE groups (uid INT, gid TEXT);
      INSERT INTO groups VALUES (1, 'Students'), (2, 'Students'),
                                (3, 'Students'), (4, 'Faculty');
    )sql")
                    .ok());
    Table* patients = db_.FindTable("patients");
    for (int64_t pid = 0; pid < 200; ++pid) {
      ASSERT_TRUE(patients
                      ->Append(Row{Value(pid), Value(pid * 1000),
                                   Value(pid % 2 == 0 ? "m" : "f")})
                      .ok());
    }
    dl_ = std::make_unique<DataLawyer>(&db_,
                                       UsageLog::WithStandardGenerators(),
                                       std::make_unique<ManualClock>(0, 1),
                                       DataLawyerOptions{});
  }

  Database db_;
  std::unique_ptr<DataLawyer> dl_;
};

// Example 3.1 — P5b: "Stop queries where fewer than 10 patients contribute
// to any output tuple."
TEST_F(PaperExamplesTest, Example31_P5b) {
  ASSERT_TRUE(dl_->AddPolicy("p5b", R"sql(
    SELECT DISTINCT 'P5b violated: Fewer than 10 patients contribute to an answer'
      AS errormessage
    FROM provenance p
    WHERE p.irid = 'patients'
    GROUP BY p.ts, p.otid
    HAVING COUNT(DISTINCT p.itid) < 10
  )sql")
                  .ok());

  QueryContext ctx;
  ctx.uid = 1;
  // An aggregate over all 200 patients: every output tuple is supported by
  // >= 10 inputs.
  auto ok = dl_->Execute(
      "SELECT p.sex, COUNT(*) FROM patients p GROUP BY p.sex", ctx);
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();

  // A point query identifies an individual: one contributing tuple.
  auto bad = dl_->Execute("SELECT * FROM patients WHERE pid = 57", ctx);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("P5b violated"), std::string::npos);

  // Small-group aggregates are equally rejected.
  auto small = dl_->Execute(
      "SELECT p.sex, COUNT(*) FROM patients p WHERE pid < 6 GROUP BY p.sex",
      ctx);
  EXPECT_FALSE(small.ok());
}

// Example 3.2 — P2b: "At most 10 distinct users from the group 'Students'
// are allowed to query patients in any window of 14 days." (The paper's
// window constant 1209600 scaled to 100 ticks for the test.)
TEST_F(PaperExamplesTest, Example32_P2b) {
  ASSERT_TRUE(dl_->AddPolicy("p2b", R"sql(
    SELECT DISTINCT 'P2b violated: More than 2 users executed queries in the window.'
      AS errormessage
    FROM users u, schema s, groups g, clock c
    WHERE u.ts = s.ts AND s.irid = 'patients'
      AND u.uid = g.uid AND g.gid = 'Students'
      AND u.ts > c.ts - 100
    HAVING COUNT(DISTINCT u.uid) > 2
  )sql")
                  .ok());

  // Students 1 and 2 may query; the third distinct student trips it.
  for (int64_t uid : {1, 2}) {
    QueryContext ctx;
    ctx.uid = uid;
    EXPECT_TRUE(dl_->Execute("SELECT * FROM patients WHERE pid = 1", ctx).ok())
        << uid;
  }
  QueryContext third;
  third.uid = 3;
  EXPECT_FALSE(
      dl_->Execute("SELECT * FROM patients WHERE pid = 1", third).ok());
  // Faculty (uid 4) is not in the group: unaffected.
  QueryContext faculty;
  faculty.uid = 4;
  EXPECT_TRUE(
      dl_->Execute("SELECT * FROM patients WHERE pid = 1", faculty).ok());
  // Repeated queries by an already-counted student are fine (DISTINCT uid).
  QueryContext again;
  again.uid = 1;
  EXPECT_TRUE(
      dl_->Execute("SELECT * FROM patients WHERE pid = 2", again).ok());
}

// Example 4.1 — P1 and its time-independent rewrite P1_IND.
TEST_F(PaperExamplesTest, Example41_TimeIndependentRewrite) {
  auto log = UsageLog::WithStandardGenerators();
  PolicyAnalyzer analyzer(log.get());
  auto p1 = Policy::Parse("p1", R"sql(
    SELECT DISTINCT 'No external joins allowed'
    FROM schema p1, schema p2
    WHERE p1.ts = p2.ts AND p1.irid = 'navteq' AND p2.irid != 'navteq'
  )sql");
  ASSERT_TRUE(p1.ok());
  Policy policy = std::move(p1).value();
  ASSERT_TRUE(analyzer.Analyze(&policy).ok());
  // "it only depends on the current query and not the log history."
  EXPECT_TRUE(policy.time_independent);
  ASSERT_NE(policy.rewritten, nullptr);
  // P1_IND pins both occurrences to the current clock.
  std::string rewritten = policy.rewritten->ToString();
  EXPECT_NE(rewritten.find("(p1.ts = dl_ti_clock.ts)"), std::string::npos);
  EXPECT_NE(rewritten.find("(p2.ts = dl_ti_clock.ts)"), std::string::npos);
}

// Example 4.2/4.3 — log compaction keeps only windowed Student entries.
TEST_F(PaperExamplesTest, Example42_CompactionRetainsOnlyTheWindow) {
  ASSERT_TRUE(dl_->AddPolicy("p2b", R"sql(
    SELECT DISTINCT 'P2b violated' AS errormessage
    FROM users u, schema s, groups g, clock c
    WHERE u.ts = s.ts AND s.irid = 'patients'
      AND u.uid = g.uid AND g.gid = 'Students'
      AND u.ts > c.ts - 100
    HAVING COUNT(DISTINCT u.uid) > 10
  )sql")
                  .ok());

  // 30 queries by one Student, then 200 by Faculty: the log must retain
  // only the Student entries still inside the (sliding) 100-tick window —
  // and drop Faculty entries entirely.
  QueryContext student;
  student.uid = 1;
  QueryContext faculty;
  faculty.uid = 4;
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(
        dl_->Execute("SELECT * FROM patients WHERE pid = 1", student).ok());
  }
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        dl_->Execute("SELECT * FROM patients WHERE pid = 1", faculty).ok());
  }
  const Table* users = dl_->usage_log()->main_table("users");
  // All student entries have expired from the window; faculty entries were
  // never retained.
  EXPECT_EQ(users->NumRows(), 0u);

  // Fresh student activity is retained while in the window.
  ASSERT_TRUE(
      dl_->Execute("SELECT * FROM patients WHERE pid = 1", student).ok());
  EXPECT_EQ(users->NumRows(), 1u);
}

// §3.3 / Eq. (1): "if all return ∅ ... the query is executed ... otherwise
// the query is rejected and the log is reverted to L_{t-1}."
TEST_F(PaperExamplesTest, Equation1CommitRevertSemantics) {
  // P5b (rejects low-support answers) plus a windowed variant so the
  // provenance log is time-dependent and actually persists.
  ASSERT_TRUE(dl_->AddPolicy("p5b", R"sql(
    SELECT DISTINCT 'P5b violated' AS errormessage
    FROM provenance p
    WHERE p.irid = 'patients'
    GROUP BY p.ts, p.otid
    HAVING COUNT(DISTINCT p.itid) < 10
  )sql")
                  .ok());
  ASSERT_TRUE(dl_->AddPolicy("usage-cap", R"sql(
    SELECT DISTINCT 'usage cap' AS errormessage
    FROM provenance p, clock c
    WHERE p.irid = 'patients' AND p.ts > c.ts - 1000
    HAVING COUNT(DISTINCT p.itid) > 100000
  )sql")
                  .ok());
  QueryContext ctx;
  ctx.uid = 1;
  ASSERT_TRUE(
      dl_->Execute("SELECT p.sex, COUNT(*) FROM patients p GROUP BY p.sex",
                   ctx)
          .ok());
  size_t after_commit =
      dl_->usage_log()->main_table("provenance")->NumRows();
  EXPECT_GT(after_commit, 0u);

  ASSERT_FALSE(dl_->Execute("SELECT * FROM patients WHERE pid = 3", ctx).ok());
  // Revert: the rejected query contributed nothing.
  EXPECT_EQ(dl_->usage_log()->main_table("provenance")->NumRows(),
            after_commit);
  EXPECT_EQ(dl_->usage_log()->delta_table("provenance")->NumRows(), 0u);
}

}  // namespace
}  // namespace datalawyer
