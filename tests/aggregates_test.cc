#include <gtest/gtest.h>

#include "exec/aggregates.h"

namespace datalawyer {
namespace {

FuncCallExpr MakeSpec(const std::string& name, bool distinct = false,
                      bool star = false) {
  std::vector<ExprPtr> args;
  if (!star) {
    args.push_back(std::make_unique<ColumnRefExpr>("t", "x"));
  }
  return FuncCallExpr(name, distinct, star, std::move(args));
}

TEST(AggregatesTest, CountStar) {
  FuncCallExpr spec = MakeSpec("count", false, true);
  AggregateAccumulator acc(&spec);
  for (int i = 0; i < 5; ++i) acc.AddStarRow();
  auto result = acc.Finish();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, Value(int64_t{5}));
}

TEST(AggregatesTest, CountSkipsNulls) {
  FuncCallExpr spec = MakeSpec("count");
  AggregateAccumulator acc(&spec);
  ASSERT_TRUE(acc.Add(Value(int64_t{1})).ok());
  ASSERT_TRUE(acc.Add(Value::Null()).ok());
  ASSERT_TRUE(acc.Add(Value(int64_t{2})).ok());
  EXPECT_EQ(*acc.Finish(), Value(int64_t{2}));
}

TEST(AggregatesTest, CountDistinct) {
  FuncCallExpr spec = MakeSpec("count", /*distinct=*/true);
  AggregateAccumulator acc(&spec);
  for (int64_t v : {1, 2, 2, 3, 1, 3, 3}) {
    ASSERT_TRUE(acc.Add(Value(v)).ok());
  }
  EXPECT_EQ(*acc.Finish(), Value(int64_t{3}));
}

TEST(AggregatesTest, DistinctWorksAcrossTypes) {
  FuncCallExpr spec = MakeSpec("count", true);
  AggregateAccumulator acc(&spec);
  ASSERT_TRUE(acc.Add(Value("a")).ok());
  ASSERT_TRUE(acc.Add(Value("a")).ok());
  ASSERT_TRUE(acc.Add(Value("b")).ok());
  EXPECT_EQ(*acc.Finish(), Value(int64_t{2}));
}

TEST(AggregatesTest, SumIntStaysInt) {
  FuncCallExpr spec = MakeSpec("sum");
  AggregateAccumulator acc(&spec);
  ASSERT_TRUE(acc.Add(Value(int64_t{2})).ok());
  ASSERT_TRUE(acc.Add(Value(int64_t{3})).ok());
  auto result = acc.Finish();
  ASSERT_TRUE(result->is_int64());
  EXPECT_EQ(*result, Value(int64_t{5}));
}

TEST(AggregatesTest, SumWidensOnDouble) {
  FuncCallExpr spec = MakeSpec("sum");
  AggregateAccumulator acc(&spec);
  ASSERT_TRUE(acc.Add(Value(int64_t{2})).ok());
  ASSERT_TRUE(acc.Add(Value(0.5)).ok());
  auto result = acc.Finish();
  ASSERT_TRUE(result->is_double());
  EXPECT_DOUBLE_EQ(result->AsDouble(), 2.5);
}

TEST(AggregatesTest, SumRejectsNonNumeric) {
  FuncCallExpr spec = MakeSpec("sum");
  AggregateAccumulator acc(&spec);
  EXPECT_FALSE(acc.Add(Value("oops")).ok());
}

TEST(AggregatesTest, AvgIsAlwaysDouble) {
  FuncCallExpr spec = MakeSpec("avg");
  AggregateAccumulator acc(&spec);
  ASSERT_TRUE(acc.Add(Value(int64_t{1})).ok());
  ASSERT_TRUE(acc.Add(Value(int64_t{2})).ok());
  auto result = acc.Finish();
  ASSERT_TRUE(result->is_double());
  EXPECT_DOUBLE_EQ(result->AsDouble(), 1.5);
}

TEST(AggregatesTest, MinMaxOverStrings) {
  FuncCallExpr min_spec = MakeSpec("min");
  FuncCallExpr max_spec = MakeSpec("max");
  AggregateAccumulator mn(&min_spec), mx(&max_spec);
  for (const char* s : {"pear", "apple", "zebra", "fig"}) {
    ASSERT_TRUE(mn.Add(Value(s)).ok());
    ASSERT_TRUE(mx.Add(Value(s)).ok());
  }
  EXPECT_EQ(*mn.Finish(), Value("apple"));
  EXPECT_EQ(*mx.Finish(), Value("zebra"));
}

TEST(AggregatesTest, EmptyGroupSemantics) {
  FuncCallExpr count_spec = MakeSpec("count");
  FuncCallExpr sum_spec = MakeSpec("sum");
  FuncCallExpr min_spec = MakeSpec("min");
  FuncCallExpr avg_spec = MakeSpec("avg");
  EXPECT_EQ(*AggregateAccumulator(&count_spec).Finish(), Value(int64_t{0}));
  EXPECT_TRUE(AggregateAccumulator(&sum_spec).Finish()->is_null());
  EXPECT_TRUE(AggregateAccumulator(&min_spec).Finish()->is_null());
  EXPECT_TRUE(AggregateAccumulator(&avg_spec).Finish()->is_null());
}

TEST(AggregatesTest, AllNullInputBehavesLikeEmpty) {
  FuncCallExpr spec = MakeSpec("min");
  AggregateAccumulator acc(&spec);
  ASSERT_TRUE(acc.Add(Value::Null()).ok());
  ASSERT_TRUE(acc.Add(Value::Null()).ok());
  EXPECT_TRUE(acc.Finish()->is_null());
}

TEST(AggregatesTest, SumDistinct) {
  FuncCallExpr spec = MakeSpec("sum", true);
  AggregateAccumulator acc(&spec);
  for (int64_t v : {5, 5, 7}) {
    ASSERT_TRUE(acc.Add(Value(v)).ok());
  }
  EXPECT_EQ(*acc.Finish(), Value(int64_t{12}));
}

}  // namespace
}  // namespace datalawyer
