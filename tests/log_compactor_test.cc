#include <gtest/gtest.h>

#include "exec/engine.h"
#include "policy/log_compactor.h"
#include "policy/witness.h"
#include "sql/parser.h"

namespace datalawyer {
namespace {

class LogCompactorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<Engine>(&db_);
    ASSERT_TRUE(engine_
                    ->ExecuteScript(R"sql(
      CREATE TABLE groups (uid INT, gid TEXT);
      INSERT INTO groups VALUES (1, 'X'), (2, 'X'), (3, 'Y');
    )sql")
                    .ok());
    log_ = UsageLog::WithStandardGenerators();
  }

  /// Appends a (ts, uid) row directly to the users main table.
  void SeedUsersMain(int64_t ts, int64_t uid) {
    ASSERT_TRUE(
        log_->main_table("users")->Append(Row{Value(ts), Value(uid)}).ok());
  }
  void StageUsersDelta(int64_t ts, int64_t uid) {
    ASSERT_TRUE(
        log_->delta_table("users")->Append(Row{Value(ts), Value(uid)}).ok());
  }

  WitnessSet BuildWitness(const std::string& policy_sql) {
    auto stmt = Parser::ParseSelect(policy_sql);
    EXPECT_TRUE(stmt.ok());
    stmts_.push_back(std::move(stmt).value());
    WitnessBuilder builder(log_.get());
    auto result = builder.Build(*stmts_.back());
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  }

  Database db_;
  std::unique_ptr<Engine> engine_;
  std::unique_ptr<UsageLog> log_;
  std::vector<std::unique_ptr<SelectStmt>> stmts_;
};

TEST_F(LogCompactorTest, WindowedPolicyPrunesExpiredRows) {
  // Policy: users in group X within a 100-tick window.
  WitnessSet witness = BuildWitness(
      "SELECT DISTINCT 'e' FROM users u, groups g, clock c "
      "WHERE u.uid = g.uid AND g.gid = 'X' AND u.ts > c.ts - 100 "
      "HAVING COUNT(DISTINCT u.uid) > 10");
  // History: ts 5 (expired by now=200), ts 150 (in window), uid 3 (not X).
  SeedUsersMain(5, 1);
  SeedUsersMain(150, 1);
  SeedUsersMain(150, 3);
  StageUsersDelta(200, 2);

  LogCompactor compactor(log_.get());
  auto stats = compactor.CompactAndFlush({&witness}, engine_->db_catalog(),
                                         /*now=*/200);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->rows_deleted, 2u);   // expired + non-X
  EXPECT_EQ(stats->rows_inserted, 1u);  // staged row survives

  const Table* main = log_->main_table("users");
  ASSERT_EQ(main->NumRows(), 2u);
  EXPECT_EQ(main->RowAt(0)[0], Value(int64_t{150}));
  EXPECT_EQ(main->RowAt(1)[0], Value(int64_t{200}));
  EXPECT_EQ(log_->delta_table("users")->NumRows(), 0u);
}

TEST_F(LogCompactorTest, FullFallbackKeepsEverything) {
  WitnessSet witness =
      BuildWitness("SELECT DISTINCT 'e' FROM users u WHERE uid = 1");
  ASSERT_TRUE(witness.per_relation.at("users").full_fallback);
  SeedUsersMain(1, 1);
  SeedUsersMain(2, 9);
  StageUsersDelta(3, 9);
  LogCompactor compactor(log_.get());
  auto stats =
      compactor.CompactAndFlush({&witness}, engine_->db_catalog(), 3);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->rows_deleted, 0u);
  EXPECT_EQ(stats->rows_inserted, 1u);
  EXPECT_EQ(log_->main_table("users")->NumRows(), 3u);
}

TEST_F(LogCompactorTest, UnreferencedRelationIsWiped) {
  // No policy references provenance: nothing of it needs to persist.
  WitnessSet witness =
      BuildWitness("SELECT DISTINCT 'e' FROM users u WHERE u.uid = 1");
  ASSERT_TRUE(log_->main_table("provenance")
                  ->Append(Row{Value(int64_t{1}), Value(int64_t{0}),
                               Value("t"), Value(int64_t{0})})
                  .ok());
  SeedUsersMain(1, 1);
  LogCompactor compactor(log_.get());
  ASSERT_TRUE(
      compactor.CompactAndFlush({&witness}, engine_->db_catalog(), 5).ok());
  EXPECT_EQ(log_->main_table("provenance")->NumRows(), 0u);
  EXPECT_EQ(log_->main_table("users")->NumRows(), 1u);  // uid=1 retained
}

TEST_F(LogCompactorTest, SkipRetentionBypassesWitnessQueries) {
  WitnessSet witness = BuildWitness(
      "SELECT DISTINCT 'e' FROM users u, clock c WHERE u.ts = c.ts "
      "AND u.uid = 1");
  log_->SetPersisted("users", false);
  SeedUsersMain(1, 1);
  StageUsersDelta(2, 1);
  LogCompactor compactor(log_.get());
  auto stats = compactor.CompactAndFlush({&witness}, engine_->db_catalog(), 2,
                                         {"users"});
  ASSERT_TRUE(stats.ok());
  // Delta dropped (not persisted), main wiped (skip_retention: no policy
  // needs history).
  EXPECT_EQ(stats->rows_dropped_from_delta, 1u);
  EXPECT_EQ(log_->main_table("users")->NumRows(), 0u);
}

TEST_F(LogCompactorTest, UnionOfWitnessesAcrossPolicies) {
  // Policy A needs uid=1 rows, policy B needs uid=3 rows: both survive.
  WitnessSet a =
      BuildWitness("SELECT DISTINCT 'a' FROM users u WHERE u.uid = 1");
  WitnessSet b =
      BuildWitness("SELECT DISTINCT 'b' FROM users u WHERE u.uid = 3");
  SeedUsersMain(1, 1);
  SeedUsersMain(2, 2);
  SeedUsersMain(3, 3);
  LogCompactor compactor(log_.get());
  auto stats =
      compactor.CompactAndFlush({&a, &b}, engine_->db_catalog(), 10);
  ASSERT_TRUE(stats.ok());
  const Table* main = log_->main_table("users");
  ASSERT_EQ(main->NumRows(), 2u);
  EXPECT_EQ(main->RowAt(0)[1], Value(int64_t{1}));
  EXPECT_EQ(main->RowAt(1)[1], Value(int64_t{3}));
}

TEST_F(LogCompactorTest, DistinctOnWitnessKeepsOneRepresentative) {
  // Boolean, aggregate-free policy on uid: one row per distinct uid value
  // suffices (Lemma 4.2).
  WitnessSet witness = BuildWitness(
      "SELECT DISTINCT 'e' FROM users u, groups g WHERE u.uid = g.uid");
  for (int i = 0; i < 5; ++i) SeedUsersMain(i, 1);  // five uid=1 rows
  SeedUsersMain(10, 3);
  LogCompactor compactor(log_.get());
  ASSERT_TRUE(
      compactor.CompactAndFlush({&witness}, engine_->db_catalog(), 20).ok());
  const Table* main = log_->main_table("users");
  // One representative for uid=1 plus the uid=3 row.
  EXPECT_EQ(main->NumRows(), 2u);
}

TEST_F(LogCompactorTest, MarkPhaseExposesKeepSets) {
  WitnessSet witness = BuildWitness(
      "SELECT DISTINCT 'e' FROM users u, groups g "
      "WHERE u.uid = g.uid AND g.gid = 'Y'");
  SeedUsersMain(1, 1);  // X, not retained
  SeedUsersMain(2, 3);  // Y, retained
  LogCompactor compactor(log_.get());
  std::set<std::string> keep_all;
  auto keep = compactor.Mark({&witness}, engine_->db_catalog(), 5, &keep_all);
  ASSERT_TRUE(keep.ok());
  EXPECT_TRUE(keep_all.empty());
  ASSERT_EQ(keep->at("users").size(), 1u);
  EXPECT_EQ(*keep->at("users").begin(), 1);  // row id of the uid=3 row
  EXPECT_TRUE(keep->at("provenance").empty());
}

}  // namespace
}  // namespace datalawyer
