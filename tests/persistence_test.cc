#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/datalawyer.h"
#include "storage/persistence.h"
#include "workload/mimic.h"
#include "workload/paper_policies.h"
#include "workload/paper_queries.h"

namespace datalawyer {
namespace {

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dl_persist_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(PersistenceTest, TableRoundTripPreservesValuesAndTypes) {
  Table table(TableSchema()
                  .AddColumn("i", ValueType::kInt64)
                  .AddColumn("d", ValueType::kDouble)
                  .AddColumn("s", ValueType::kString)
                  .AddColumn("b", ValueType::kBool));
  ASSERT_TRUE(table
                  .Append(Row{Value(int64_t{-42}), Value(3.141592653589793),
                              Value("plain"), Value(true)})
                  .ok());
  ASSERT_TRUE(table
                  .Append(Row{Value::Null(), Value::Null(), Value::Null(),
                              Value::Null()})
                  .ok());
  ASSERT_TRUE(table
                  .Append(Row{Value(int64_t{0}), Value(-0.5),
                              Value("tab\tnewline\nback\\slash"),
                              Value(false)})
                  .ok());

  std::string path = (dir_ / "t.dltab").string();
  ASSERT_TRUE(SaveTable(table, path).ok());

  Table loaded(table.schema());
  ASSERT_TRUE(LoadTableInto(&loaded, path).ok());
  ASSERT_EQ(loaded.NumRows(), table.NumRows());
  for (size_t r = 0; r < table.NumRows(); ++r) {
    EXPECT_EQ(loaded.RowAt(r), table.RowAt(r)) << "row " << r;
  }

  auto schema = LoadSchema(path);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->ToString(), table.schema().ToString());
}

TEST_F(PersistenceTest, DatabaseRoundTrip) {
  Database db;
  ASSERT_TRUE(LoadMimicData(&db, MimicConfig::Tiny()).ok());
  ASSERT_TRUE(SaveDatabase(db, dir_.string()).ok());

  Database restored;
  ASSERT_TRUE(LoadDatabase(&restored, dir_.string()).ok());
  EXPECT_EQ(restored.TableNames(), db.TableNames());
  for (const std::string& name : db.TableNames()) {
    const Table* a = db.FindTable(name);
    const Table* b = restored.FindTable(name);
    ASSERT_EQ(a->NumRows(), b->NumRows()) << name;
    for (size_t r = 0; r < std::min<size_t>(a->NumRows(), 20); ++r) {
      EXPECT_EQ(a->RowAt(r), b->RowAt(r)) << name << " row " << r;
    }
  }
}

TEST_F(PersistenceTest, LoadErrors) {
  Table table(TableSchema().AddColumn("a", ValueType::kInt64));
  EXPECT_EQ(LoadTableInto(&table, (dir_ / "missing.dltab").string()).code(),
            StatusCode::kNotFound);
  Database db;
  EXPECT_FALSE(LoadDatabase(&db, (dir_ / "nodir").string()).ok());

  // Arity mismatch between file and table schema.
  Table two(TableSchema()
                .AddColumn("a", ValueType::kInt64)
                .AddColumn("b", ValueType::kInt64));
  ASSERT_TRUE(SaveTable(two, (dir_ / "two.dltab").string()).ok());
  EXPECT_FALSE(LoadTableInto(&table, (dir_ / "two.dltab").string()).ok());
}

TEST_F(PersistenceTest, EnforcementSurvivesRestart) {
  Database db;
  ASSERT_TRUE(LoadMimicData(&db, MimicConfig::Tiny()).ok());

  // Session 1: user 7 consumes 3 of the 4 queries its rate limit allows
  // per 10000-tick window, then the "server" persists and shuts down.
  {
    DataLawyer dl(&db, UsageLog::WithStandardGenerators(),
                  std::make_unique<ManualClock>(0, 10), {});
    ASSERT_TRUE(
        dl.AddPolicy("rate", PaperPolicies::RateLimitForUser(7, 10000, 4))
            .ok());
    QueryContext ctx;
    ctx.uid = 7;
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(dl.Execute(PaperQueries::W1(), ctx).ok());
    }
    ASSERT_TRUE(dl.usage_log()->SaveTo(dir_.string()).ok());
  }

  // Session 2: the restored log still counts the earlier queries — the
  // 5th overall query trips the limit.
  {
    auto log = UsageLog::WithStandardGenerators();
    ASSERT_TRUE(log->LoadFrom(dir_.string()).ok());
    EXPECT_EQ(log->main_table("users")->NumRows(), 3u);
    DataLawyer dl(&db, std::move(log), std::make_unique<ManualClock>(30, 10),
                  {});
    // Re-registering after a restart: keep the original registration time
    // so the restored history still counts toward the limit.
    ASSERT_TRUE(
        dl.AddPolicy("rate", PaperPolicies::RateLimitForUser(7, 10000, 4),
                     /*active_from=*/0)
            .ok());
    QueryContext ctx;
    ctx.uid = 7;
    EXPECT_TRUE(dl.Execute(PaperQueries::W1(), ctx).ok());   // 4th: allowed
    EXPECT_FALSE(dl.Execute(PaperQueries::W1(), ctx).ok());  // 5th: rejected
  }
}

TEST_F(PersistenceTest, MissingLogSnapshotsAreEmptyNotErrors) {
  auto log = UsageLog::WithStandardGenerators();
  ASSERT_TRUE(log->LoadFrom(dir_.string()).ok());
  EXPECT_EQ(log->main_table("users")->NumRows(), 0u);
}

}  // namespace
}  // namespace datalawyer
