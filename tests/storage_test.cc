#include <gtest/gtest.h>

#include "storage/catalog_view.h"
#include "storage/database.h"
#include "storage/table.h"

namespace datalawyer {
namespace {

TableSchema TwoCols() {
  return TableSchema()
      .AddColumn("a", ValueType::kInt64)
      .AddColumn("b", ValueType::kString);
}

TEST(SchemaTest, LookupIsCaseInsensitive) {
  TableSchema schema = TwoCols();
  EXPECT_EQ(schema.FindColumn("a"), 0u);
  EXPECT_EQ(schema.FindColumn("A"), 0u);
  EXPECT_EQ(schema.FindColumn("B"), 1u);
  EXPECT_FALSE(schema.FindColumn("c").has_value());
  EXPECT_EQ(schema.ToString(), "a INT64, b STRING");
}

TEST(TableTest, AppendAssignsStableRowIds) {
  Table table(TwoCols());
  auto id0 = table.Append(Row{Value(int64_t{1}), Value("x")});
  auto id1 = table.Append(Row{Value(int64_t{2}), Value("y")});
  auto id2 = table.Append(Row{Value(int64_t{3}), Value("z")});
  ASSERT_TRUE(id0.ok() && id1.ok() && id2.ok());
  EXPECT_EQ(*id0, 0);
  EXPECT_EQ(*id2, 2);

  // Remove the middle row: ids of survivors are unchanged; new rows get
  // fresh ids.
  EXPECT_EQ(table.RemoveIds({*id1}), 1u);
  ASSERT_EQ(table.NumRows(), 2u);
  EXPECT_EQ(table.RowIdAt(0), 0);
  EXPECT_EQ(table.RowIdAt(1), 2);
  auto id3 = table.Append(Row{Value(int64_t{4}), Value("w")});
  EXPECT_EQ(*id3, 3);
}

TEST(TableTest, AppendRejectsWrongArity) {
  Table table(TwoCols());
  EXPECT_FALSE(table.Append(Row{Value(int64_t{1})}).ok());
  EXPECT_FALSE(
      table.Append(Row{Value(int64_t{1}), Value("x"), Value(true)}).ok());
}

TEST(TableTest, RetainOnlyKeepsExactlyTheWitness) {
  Table table(TwoCols());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(table.Append(Row{Value(int64_t(i)), Value("r")}).ok());
  }
  EXPECT_EQ(table.RetainOnly({1, 3, 5}), 7u);
  ASSERT_EQ(table.NumRows(), 3u);
  EXPECT_EQ(table.RowAt(0)[0], Value(int64_t{1}));
  EXPECT_EQ(table.RowAt(2)[0], Value(int64_t{5}));
  // Retaining an empty set wipes the table.
  EXPECT_EQ(table.RetainOnly({}), 3u);
  EXPECT_EQ(table.NumRows(), 0u);
}

TEST(TableTest, IndexProbeAndInvalidation) {
  Table table(TwoCols());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        table.Append(Row{Value(int64_t(i % 10)), Value("r")}).ok());
  }
  ASSERT_TRUE(table.BuildIndex("a").ok());
  std::vector<size_t> hits;
  ASSERT_TRUE(table.IndexLookup(0, Value(int64_t{3}), &hits));
  EXPECT_EQ(hits.size(), 10u);
  for (size_t pos : hits) {
    EXPECT_EQ(table.RowAt(pos)[0], Value(int64_t{3}));
  }
  // Miss answers true (the index is authoritative) with no positions.
  std::vector<size_t> miss;
  ASSERT_TRUE(table.IndexLookup(0, Value(int64_t{99}), &miss));
  EXPECT_TRUE(miss.empty());
  // No index on column 1.
  std::vector<size_t> none;
  EXPECT_FALSE(table.IndexLookup(1, Value("r"), &none));

  // Appends maintain the index incrementally (the usage log grows by
  // appends on every committed query).
  ASSERT_TRUE(table.Append(Row{Value(int64_t{3}), Value("new")}).ok());
  hits.clear();
  ASSERT_TRUE(table.IndexLookup(0, Value(int64_t{3}), &hits));
  EXPECT_EQ(hits.size(), 11u);
  EXPECT_EQ(hits.back(), 100u);

  // Deletions invalidate (falls back to scans, never stale results);
  // RefreshIndexes restores the probe path.
  EXPECT_EQ(table.RemoveIds({0}), 1u);
  hits.clear();
  EXPECT_FALSE(table.IndexLookup(0, Value(int64_t{3}), &hits));
  EXPECT_FALSE(table.HasValidIndex(0));
  table.RefreshIndexes();
  ASSERT_TRUE(table.HasValidIndex(0));
  hits.clear();
  ASSERT_TRUE(table.IndexLookup(0, Value(int64_t{3}), &hits));
  EXPECT_EQ(hits.size(), 11u);
  for (size_t pos : hits) {
    EXPECT_EQ(table.RowAt(pos)[0], Value(int64_t{3}));
  }

  EXPECT_FALSE(table.BuildIndex("nope").ok());
}

TEST(DatabaseTest, CatalogOperations) {
  Database db;
  ASSERT_TRUE(db.CreateTable("T1", TwoCols()).ok());
  EXPECT_TRUE(db.HasTable("t1"));
  EXPECT_TRUE(db.HasTable("T1"));
  EXPECT_FALSE(db.CreateTable("t1", TwoCols()).ok());  // duplicate
  ASSERT_TRUE(db.CreateTable("t2", TwoCols()).ok());
  EXPECT_EQ(db.TableNames(), (std::vector<std::string>{"t1", "t2"}));
  EXPECT_TRUE(db.GetTable("t1").ok());
  EXPECT_FALSE(db.GetTable("zzz").ok());
  EXPECT_EQ(db.FindTable("zzz"), nullptr);
  ASSERT_TRUE(db.DropTable("t1").ok());
  EXPECT_FALSE(db.HasTable("t1"));
  EXPECT_FALSE(db.DropTable("t1").ok());
}

TEST(ConcatRelationTest, RowIdsDistinguishParts) {
  Table main(TwoCols());
  Table delta(TwoCols());
  ASSERT_TRUE(main.Append(Row{Value(int64_t{1}), Value("m")}).ok());
  ASSERT_TRUE(main.Append(Row{Value(int64_t{2}), Value("m")}).ok());
  ASSERT_TRUE(delta.Append(Row{Value(int64_t{3}), Value("d")}).ok());

  ConcatRelation view(&main, &delta);
  ASSERT_EQ(view.NumRows(), 3u);
  EXPECT_EQ(view.RowAt(0)[1], Value("m"));
  EXPECT_EQ(view.RowAt(2)[1], Value("d"));
  EXPECT_FALSE(ConcatRelation::IsFromSecond(view.RowIdAt(0)));
  EXPECT_TRUE(ConcatRelation::IsFromSecond(view.RowIdAt(2)));
  EXPECT_EQ(ConcatRelation::SecondRowId(view.RowIdAt(2)), 0);
}

TEST(OverlayCatalogTest, OverridesWinAndFallThrough) {
  Database db;
  ASSERT_TRUE(db.CreateTable("base", TwoCols()).ok());
  DatabaseCatalog base(&db);

  OwnedRelation owned(TwoCols(), {Row{Value(int64_t{9}), Value("o")}});
  OverlayCatalog overlay(&base);
  overlay.Add("extra", &owned);
  EXPECT_NE(overlay.Find("base"), nullptr);
  EXPECT_EQ(overlay.Find("extra"), &owned);
  EXPECT_EQ(overlay.Find("EXTRA"), &owned);
  EXPECT_EQ(overlay.Find("missing"), nullptr);

  // Shadowing a base table.
  overlay.Add("base", &owned);
  EXPECT_EQ(overlay.Find("base"), &owned);

  // Overlay without a base catalog.
  OverlayCatalog bare(nullptr);
  bare.Add("only", &owned);
  EXPECT_EQ(bare.Find("only"), &owned);
  EXPECT_EQ(bare.Find("base"), nullptr);
}

}  // namespace
}  // namespace datalawyer
