#include <gtest/gtest.h>

#include <set>

#include "exec/engine.h"
#include "storage/database.h"

namespace datalawyer {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<Engine>(&db_);
    ASSERT_TRUE(engine_
                    ->ExecuteScript(R"sql(
      CREATE TABLE r (k INT, v TEXT, w DOUBLE);
      INSERT INTO r VALUES (1, 'a', 1.5), (2, 'b', 2.5), (3, 'a', 3.5),
                           (4, 'c', 4.5), (5, 'b', 5.5), (2, 'b', 0.5);
      CREATE TABLE s (k INT, tag TEXT);
      INSERT INTO s VALUES (1, 'one'), (2, 'two'), (2, 'dos'), (9, 'nine');
      CREATE TABLE tiny (x INT);
      INSERT INTO tiny VALUES (10), (20);
      CREATE TABLE withnull (k INT, v TEXT);
      INSERT INTO withnull VALUES (1, 'p'), (NULL, 'q'), (2, NULL);
    )sql")
                    .ok());
  }

  QueryResult Q(const std::string& sql, ExecOptions options = {}) {
    auto result = engine_->ExecuteSql(sql, options);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
    return result.ok() ? std::move(result).value() : QueryResult{};
  }

  Database db_;
  std::unique_ptr<Engine> engine_;
};

TEST_F(ExecutorTest, HashJoinMatchesExpectedPairs) {
  QueryResult r = Q("SELECT r.k, s.tag FROM r, s WHERE r.k = s.k ORDER BY k");
  // r has k=1 once, k=2 twice; s has k=1 once, k=2 twice → 1 + 2*2 = 5.
  ASSERT_EQ(r.NumRows(), 5u);
  EXPECT_EQ(r.rows[0][1], Value("one"));
}

TEST_F(ExecutorTest, CrossJoin) {
  QueryResult r = Q("SELECT r.k, tiny.x FROM r, tiny");
  EXPECT_EQ(r.NumRows(), 12u);  // 6 × 2
}

TEST_F(ExecutorTest, NestedLoopWithInequality) {
  QueryResult r = Q("SELECT r.k, tiny.x FROM r, tiny WHERE r.k * 10 > tiny.x");
  // k*10 > 10 for k>=2 (5 rows); k*10 > 20 for k>=3 (3 rows): 8 rows.
  EXPECT_EQ(r.NumRows(), 8u);
}

TEST_F(ExecutorTest, JoinOnExpression) {
  QueryResult r = Q("SELECT r.k FROM r, tiny WHERE r.k * 10 = tiny.x");
  ASSERT_EQ(r.NumRows(), 3u);  // k=1 → 10, k=2 twice → 20
}

TEST_F(ExecutorTest, NullsNeverJoin) {
  QueryResult r = Q("SELECT w.k FROM withnull w, r WHERE w.k = r.k");
  // NULL key joins nothing; k=1 matches once, k=2 matches the two k=2 rows.
  EXPECT_EQ(r.NumRows(), 3u);
}

TEST_F(ExecutorTest, ThreeValuedWhere) {
  // v = NULL row: predicate NULL → filtered out (not an error).
  QueryResult r = Q("SELECT w.k FROM withnull w WHERE w.v != 'p'");
  EXPECT_EQ(r.NumRows(), 1u);
  QueryResult isnull = Q("SELECT w.v FROM withnull w WHERE w.k IS NULL");
  ASSERT_EQ(isnull.NumRows(), 1u);
  EXPECT_EQ(isnull.rows[0][0], Value("q"));
  QueryResult notnull = Q("SELECT w.v FROM withnull w WHERE w.k IS NOT NULL");
  EXPECT_EQ(notnull.NumRows(), 2u);
}

TEST_F(ExecutorTest, AggregatesPerGroup) {
  QueryResult r = Q(
      "SELECT v, COUNT(*) AS n, SUM(k) AS sk, MIN(w) AS mn, MAX(w) AS mx, "
      "AVG(k) AS ak FROM r GROUP BY v ORDER BY v");
  ASSERT_EQ(r.NumRows(), 3u);
  // group 'a': rows (1,a,1.5), (3,a,3.5)
  EXPECT_EQ(r.rows[0][1], Value(int64_t{2}));
  EXPECT_EQ(r.rows[0][2], Value(int64_t{4}));
  EXPECT_EQ(r.rows[0][3], Value(1.5));
  EXPECT_EQ(r.rows[0][4], Value(3.5));
  EXPECT_EQ(r.rows[0][5], Value(2.0));
  // group 'b': rows (2,b,2.5), (5,b,5.5), (2,b,0.5)
  EXPECT_EQ(r.rows[1][1], Value(int64_t{3}));
  EXPECT_EQ(r.rows[1][2], Value(int64_t{9}));
}

TEST_F(ExecutorTest, CountDistinctAndNullSkipping) {
  QueryResult r = Q(
      "SELECT COUNT(*) AS stars, COUNT(w.k) AS ks, "
      "COUNT(DISTINCT w.k) AS dk, COUNT(w.v) AS vs FROM withnull w");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.rows[0][0], Value(int64_t{3}));  // COUNT(*) counts NULLs
  EXPECT_EQ(r.rows[0][1], Value(int64_t{2}));  // k NULL skipped
  EXPECT_EQ(r.rows[0][2], Value(int64_t{2}));
  EXPECT_EQ(r.rows[0][3], Value(int64_t{2}));

  QueryResult dups = Q("SELECT COUNT(DISTINCT r.k) FROM r");
  EXPECT_EQ(dups.rows[0][0], Value(int64_t{5}));  // k=2 twice
}

TEST_F(ExecutorTest, EmptyInputAggregates) {
  QueryResult r = Q(
      "SELECT COUNT(*), SUM(r.k), MIN(r.k), AVG(r.k) FROM r WHERE r.k > 99");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.rows[0][0], Value(int64_t{0}));
  EXPECT_TRUE(r.rows[0][1].is_null());
  EXPECT_TRUE(r.rows[0][2].is_null());
  EXPECT_TRUE(r.rows[0][3].is_null());

  // With GROUP BY, an empty input yields zero groups instead.
  QueryResult grouped =
      Q("SELECT r.v, COUNT(*) FROM r WHERE r.k > 99 GROUP BY r.v");
  EXPECT_EQ(grouped.NumRows(), 0u);
}

TEST_F(ExecutorTest, HavingFiltersGroups) {
  QueryResult r =
      Q("SELECT v FROM r GROUP BY v HAVING COUNT(*) >= 2 ORDER BY v");
  ASSERT_EQ(r.NumRows(), 2u);
  EXPECT_EQ(r.rows[0][0], Value("a"));
  EXPECT_EQ(r.rows[1][0], Value("b"));
}

TEST_F(ExecutorTest, HavingOverGlobalEmptyGroup) {
  QueryResult violated = Q(
      "SELECT 1 FROM r WHERE r.k > 99 HAVING COUNT(*) < 5");
  EXPECT_EQ(violated.NumRows(), 1u);  // count 0 < 5
  QueryResult ok = Q("SELECT 1 FROM r WHERE r.k > 99 HAVING COUNT(*) > 0");
  EXPECT_EQ(ok.NumRows(), 0u);
}

TEST_F(ExecutorTest, DistinctOnKeepsOnePerKey) {
  QueryResult r = Q("SELECT DISTINCT ON (r.v) r.* FROM r");
  EXPECT_EQ(r.NumRows(), 3u);
  std::set<std::string> keys;
  for (const Row& row : r.rows) keys.insert(row[1].AsString());
  EXPECT_EQ(keys.size(), 3u);

  // Constant key: exactly one row survives.
  QueryResult one = Q("SELECT DISTINCT ON (1) r.* FROM r");
  EXPECT_EQ(one.NumRows(), 1u);
}

TEST_F(ExecutorTest, DistinctDeduplicatesOutput) {
  QueryResult r = Q("SELECT DISTINCT r.v FROM r");
  EXPECT_EQ(r.NumRows(), 3u);
  QueryResult k = Q("SELECT DISTINCT r.k FROM r");
  EXPECT_EQ(k.NumRows(), 5u);
}

TEST_F(ExecutorTest, UnionSemantics) {
  QueryResult dedup = Q("SELECT r.k FROM r UNION SELECT s.k FROM s");
  EXPECT_EQ(dedup.NumRows(), 6u);  // {1,2,3,4,5,9}
  QueryResult all = Q("SELECT r.k FROM r UNION ALL SELECT s.k FROM s");
  EXPECT_EQ(all.NumRows(), 10u);  // 6 + 4
}

TEST_F(ExecutorTest, OrderByDirectionsAndPositions) {
  QueryResult r = Q("SELECT r.k, r.w FROM r ORDER BY k DESC, w ASC");
  ASSERT_EQ(r.NumRows(), 6u);
  EXPECT_EQ(r.rows[0][0], Value(int64_t{5}));
  // k=2 appears twice: w ascending breaks the tie.
  EXPECT_EQ(r.rows[3][1], Value(0.5));
  EXPECT_EQ(r.rows[4][1], Value(2.5));

  QueryResult pos = Q("SELECT r.k FROM r ORDER BY 1 LIMIT 2");
  ASSERT_EQ(pos.NumRows(), 2u);
  EXPECT_EQ(pos.rows[0][0], Value(int64_t{1}));
}

TEST_F(ExecutorTest, LimitWithoutOrder) {
  EXPECT_EQ(Q("SELECT r.k FROM r LIMIT 4").NumRows(), 4u);
  EXPECT_EQ(Q("SELECT r.k FROM r LIMIT 0").NumRows(), 0u);
  EXPECT_EQ(Q("SELECT r.k FROM r LIMIT 100").NumRows(), 6u);
}

TEST_F(ExecutorTest, SelectWithoutFrom) {
  QueryResult r = Q("SELECT 1 + 2 AS three, 'x'");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.rows[0][0], Value(int64_t{3}));
}

TEST_F(ExecutorTest, ConstantFalseWhereShortCircuits) {
  EXPECT_EQ(Q("SELECT r.k FROM r WHERE 1 = 2").NumRows(), 0u);
  EXPECT_EQ(Q("SELECT r.k FROM r WHERE 1 = 1 AND r.k = 1").NumRows(), 1u);
}

TEST_F(ExecutorTest, SubqueryPipelines) {
  QueryResult r = Q(
      "SELECT agg.v, agg.n FROM "
      "(SELECT r.v AS v, COUNT(*) AS n FROM r GROUP BY r.v) agg "
      "WHERE agg.n > 1 ORDER BY v");
  ASSERT_EQ(r.NumRows(), 2u);
  EXPECT_EQ(r.rows[0][0], Value("a"));
  EXPECT_EQ(r.rows[0][1], Value(int64_t{2}));

  // Nested two levels.
  QueryResult nested = Q(
      "SELECT x.n FROM (SELECT inner2.n AS n FROM "
      "(SELECT COUNT(*) AS n FROM r) inner2) x");
  ASSERT_EQ(nested.NumRows(), 1u);
  EXPECT_EQ(nested.rows[0][0], Value(int64_t{6}));
}

// ---------------------------------------------------------------------------
// Lineage properties
// ---------------------------------------------------------------------------

ExecOptions Capture() {
  ExecOptions options;
  options.capture_lineage = true;
  return options;
}

TEST_F(ExecutorTest, SelectionLineageIsExactlyTheMatchingRow) {
  QueryResult r = Q("SELECT r.v FROM r WHERE r.k = 4", Capture());
  ASSERT_EQ(r.NumRows(), 1u);
  ASSERT_TRUE(r.has_lineage);
  ASSERT_EQ(r.lineage[0].size(), 1u);
  EXPECT_EQ(r.base_relations[r.lineage[0][0].rel], "r");
  EXPECT_EQ(r.lineage[0][0].row_id, 3);  // 4th inserted row
}

TEST_F(ExecutorTest, JoinLineageHasBothSides) {
  QueryResult r =
      Q("SELECT r.v FROM r, s WHERE r.k = s.k AND s.tag = 'one'", Capture());
  ASSERT_EQ(r.NumRows(), 1u);
  ASSERT_EQ(r.lineage[0].size(), 2u);
  std::set<std::string> rels;
  for (const LineageEntry& e : r.lineage[0]) {
    rels.insert(r.base_relations[e.rel]);
  }
  EXPECT_EQ(rels, (std::set<std::string>{"r", "s"}));
}

TEST_F(ExecutorTest, GroupLineageIsUnionOfMembers) {
  QueryResult r = Q(
      "SELECT r.v, COUNT(*) FROM r GROUP BY r.v HAVING COUNT(*) = 3",
      Capture());
  ASSERT_EQ(r.NumRows(), 1u);  // group 'b' with 3 rows
  EXPECT_EQ(r.lineage[0].size(), 3u);
}

TEST_F(ExecutorTest, DistinctLineageMergesDuplicates) {
  QueryResult r = Q("SELECT DISTINCT r.v FROM r", Capture());
  ASSERT_EQ(r.NumRows(), 3u);
  size_t total = 0;
  for (const LineageSet& l : r.lineage) total += l.size();
  EXPECT_EQ(total, 6u);  // every input row contributes to some output
}

TEST_F(ExecutorTest, SubqueryLineageReachesBaseTables) {
  QueryResult r = Q(
      "SELECT agg.n FROM (SELECT COUNT(*) AS n FROM r WHERE r.v = 'a') agg",
      Capture());
  ASSERT_EQ(r.NumRows(), 1u);
  ASSERT_EQ(r.lineage[0].size(), 2u);  // the two 'a' rows
  for (const LineageEntry& e : r.lineage[0]) {
    EXPECT_EQ(r.base_relations[e.rel], "r");
  }
}

TEST_F(ExecutorTest, LineageDisabledByDefault) {
  QueryResult r = Q("SELECT r.k FROM r");
  EXPECT_FALSE(r.has_lineage);
  EXPECT_TRUE(r.lineage.empty());
}

// Exhaustive consistency sweep: every query must return identical rows with
// and without lineage capture, and captured lineage must reference valid
// base rows.
class LineageConsistencyTest
    : public ExecutorTest,
      public ::testing::WithParamInterface<const char*> {};

TEST_P(LineageConsistencyTest, SameResultsAndValidLineage) {
  // ExecutorTest::SetUp already populated db_ via the fixture.
  std::string sql = GetParam();
  auto plain = engine_->ExecuteSql(sql);
  auto traced = engine_->ExecuteSql(sql, Capture());
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  ASSERT_TRUE(traced.ok()) << traced.status().ToString();
  ASSERT_EQ(plain->NumRows(), traced->NumRows()) << sql;
  ASSERT_EQ(traced->lineage.size(), traced->NumRows());
  for (const LineageSet& lineage : traced->lineage) {
    for (const LineageEntry& entry : lineage) {
      ASSERT_LT(entry.rel, traced->base_relations.size());
      const Table* table =
          db_.FindTable(traced->base_relations[entry.rel]);
      ASSERT_NE(table, nullptr);
      bool found = false;
      for (size_t i = 0; i < table->NumRows(); ++i) {
        if (table->RowIdAt(i) == entry.row_id) found = true;
      }
      EXPECT_TRUE(found) << "dangling lineage id in " << sql;
    }
    // Normalized: sorted, unique.
    for (size_t i = 1; i < lineage.size(); ++i) {
      EXPECT_TRUE(lineage[i - 1] < lineage[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LineageConsistencyTest,
    ::testing::Values(
        "SELECT * FROM r",
        "SELECT r.k + 1 FROM r WHERE r.w > 2.0",
        "SELECT r.v, s.tag FROM r, s WHERE r.k = s.k",
        "SELECT r.v, COUNT(*) FROM r GROUP BY r.v",
        "SELECT DISTINCT r.v FROM r, s WHERE r.k = s.k",
        "SELECT DISTINCT ON (r.v) r.k FROM r",
        "SELECT r.k FROM r UNION SELECT s.k FROM s",
        "SELECT a.n FROM (SELECT COUNT(*) AS n FROM r GROUP BY r.v) a "
        "WHERE a.n > 1",
        "SELECT r.v, COUNT(DISTINCT r.k) FROM r, tiny "
        "WHERE r.k * 10 = tiny.x GROUP BY r.v",
        "SELECT 1 FROM r HAVING COUNT(*) > 100"));

}  // namespace
}  // namespace datalawyer
