#include <gtest/gtest.h>

#include "analysis/binder.h"
#include "sql/parser.h"
#include "storage/catalog_view.h"
#include "storage/database.h"

namespace datalawyer {
namespace {

class BinderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateTable("t",
                                TableSchema()
                                    .AddColumn("a", ValueType::kInt64)
                                    .AddColumn("b", ValueType::kString)
                                    .AddColumn("c", ValueType::kDouble))
                    .ok());
    ASSERT_TRUE(db_.CreateTable("u",
                                TableSchema()
                                    .AddColumn("a", ValueType::kInt64)
                                    .AddColumn("d", ValueType::kBool))
                    .ok());
    catalog_ = std::make_unique<DatabaseCatalog>(&db_);
  }

  Result<std::unique_ptr<BoundQuery>> Bind(const std::string& sql) {
    auto parsed = Parser::ParseSelect(sql);
    if (!parsed.ok()) return parsed.status();
    stmts_.push_back(std::move(parsed).value());
    Binder binder(catalog_.get());
    return binder.Bind(*stmts_.back());
  }

  std::unique_ptr<BoundQuery> BindOk(const std::string& sql) {
    auto result = Bind(sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
    return result.ok() ? std::move(result).value() : nullptr;
  }

  Database db_;
  std::unique_ptr<DatabaseCatalog> catalog_;
  std::vector<std::unique_ptr<SelectStmt>> stmts_;  // keep ASTs alive
};

TEST_F(BinderTest, SlotLayoutFollowsFromOrder) {
  auto bq = BindOk("SELECT t.a, u.d FROM t, u WHERE t.a = u.a");
  ASSERT_NE(bq, nullptr);
  ASSERT_EQ(bq->relations.size(), 2u);
  EXPECT_EQ(bq->slot_offsets[0], 0u);
  EXPECT_EQ(bq->slot_offsets[1], 3u);
  EXPECT_EQ(bq->total_slots, 5u);
  // t.a → slot 0, u.d → slot 4.
  EXPECT_EQ(bq->column_slots.at(bq->stmt->items[0].expr.get()), 0u);
  EXPECT_EQ(bq->column_slots.at(bq->stmt->items[1].expr.get()), 4u);
}

TEST_F(BinderTest, UnqualifiedResolution) {
  auto bq = BindOk("SELECT b, d FROM t, u");
  ASSERT_NE(bq, nullptr);
  EXPECT_EQ(bq->output_schema.column(0).name, "b");
  EXPECT_EQ(bq->output_schema.column(0).type, ValueType::kString);
  EXPECT_EQ(bq->output_schema.column(1).type, ValueType::kBool);
}

TEST_F(BinderTest, AmbiguousUnqualifiedRejected) {
  auto result = Bind("SELECT a FROM t, u");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("ambiguous"), std::string::npos);
}

TEST_F(BinderTest, UnknownNamesRejected) {
  EXPECT_FALSE(Bind("SELECT x FROM t").ok());
  EXPECT_FALSE(Bind("SELECT t.x FROM t").ok());
  EXPECT_FALSE(Bind("SELECT z.a FROM t").ok());
  EXPECT_FALSE(Bind("SELECT 1 FROM nonexistent").ok());
  EXPECT_FALSE(Bind("SELECT nope.* FROM t").ok());
}

TEST_F(BinderTest, DuplicateAliasRejected) {
  EXPECT_FALSE(Bind("SELECT 1 FROM t x, u x").ok());
  EXPECT_FALSE(Bind("SELECT 1 FROM t, t").ok());
  // Self-join with distinct aliases is fine.
  EXPECT_TRUE(Bind("SELECT 1 FROM t t1, t t2 WHERE t1.a = t2.a").ok());
}

TEST_F(BinderTest, StarExpansion) {
  auto bq = BindOk("SELECT * FROM t, u");
  ASSERT_NE(bq, nullptr);
  EXPECT_EQ(bq->output_columns.size(), 5u);
  EXPECT_EQ(bq->output_schema.column(3).name, "a");  // u.a

  auto qualified = BindOk("SELECT u.*, t.b FROM t, u");
  ASSERT_NE(qualified, nullptr);
  ASSERT_EQ(qualified->output_columns.size(), 3u);
  EXPECT_EQ(qualified->output_columns[0].slot, 3u);
  EXPECT_EQ(qualified->output_columns[2].expr != nullptr, true);
}

TEST_F(BinderTest, OutputNamingAndTypes) {
  auto bq = BindOk(
      "SELECT t.a AS renamed, t.a + t.c, COUNT(*) AS n, 'lit' FROM t");
  ASSERT_NE(bq, nullptr);
  EXPECT_EQ(bq->output_schema.column(0).name, "renamed");
  EXPECT_EQ(bq->output_schema.column(0).type, ValueType::kInt64);
  EXPECT_EQ(bq->output_schema.column(1).type, ValueType::kDouble);
  EXPECT_EQ(bq->output_schema.column(2).name, "n");
  EXPECT_EQ(bq->output_schema.column(2).type, ValueType::kInt64);
  EXPECT_EQ(bq->output_schema.column(3).type, ValueType::kString);
}

TEST_F(BinderTest, AggregateValidation) {
  EXPECT_FALSE(Bind("SELECT 1 FROM t WHERE COUNT(*) > 1").ok());
  EXPECT_FALSE(Bind("SELECT 1 FROM t GROUP BY COUNT(*)").ok());
  EXPECT_FALSE(Bind("SELECT COUNT(COUNT(*)) FROM t").ok());
  auto bq = BindOk("SELECT COUNT(t.a) FROM t HAVING COUNT(t.a) > 1");
  ASSERT_NE(bq, nullptr);
  EXPECT_TRUE(bq->has_aggregates);
  EXPECT_TRUE(bq->is_grouped);
  EXPECT_EQ(bq->aggregates.size(), 2u);  // one per call site
}

TEST_F(BinderTest, GroupingFlags) {
  auto plain = BindOk("SELECT t.a FROM t");
  EXPECT_FALSE(plain->is_grouped);
  auto grouped = BindOk("SELECT t.b FROM t GROUP BY t.b");
  EXPECT_TRUE(grouped->is_grouped);
  EXPECT_FALSE(grouped->has_aggregates);
}

TEST_F(BinderTest, SubqueryScoping) {
  auto bq = BindOk(
      "SELECT s.n, u.d FROM (SELECT t.b, COUNT(*) AS n FROM t GROUP BY t.b) "
      "s, u WHERE s.n = u.a");
  ASSERT_NE(bq, nullptr);
  ASSERT_EQ(bq->relations.size(), 2u);
  EXPECT_NE(bq->relations[0].subquery, nullptr);
  EXPECT_EQ(bq->relations[0].schema.NumColumns(), 2u);
  EXPECT_EQ(bq->relations[0].schema.column(1).name, "n");
  // The inner table's columns are not visible outside.
  EXPECT_FALSE(Bind("SELECT t.a FROM (SELECT t.a FROM t) s").ok());
}

TEST_F(BinderTest, UnionArityChecked) {
  EXPECT_TRUE(Bind("SELECT t.a FROM t UNION SELECT u.a FROM u").ok());
  auto bad = Bind("SELECT t.a, t.b FROM t UNION SELECT u.a FROM u");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("arities"), std::string::npos);
}

TEST_F(BinderTest, DistinctOnWithGroupingRejected) {
  EXPECT_FALSE(
      Bind("SELECT DISTINCT ON (t.a) COUNT(*) FROM t GROUP BY t.a").ok());
}

TEST_F(BinderTest, FindRelationHelper) {
  auto bq = BindOk("SELECT 1 FROM t alias1, u");
  EXPECT_EQ(bq->FindRelation("alias1"), 0);
  EXPECT_EQ(bq->FindRelation("u"), 1);
  EXPECT_EQ(bq->FindRelation("ALIAS1"), 0);
  EXPECT_EQ(bq->FindRelation("t"), -1);  // aliased away
  EXPECT_EQ(bq->FindRelation("nope"), -1);
}

}  // namespace
}  // namespace datalawyer
