// Differential testing of the equality hash indexes: randomized insert /
// delete interleavings against an indexed table and an identical unindexed
// twin must produce identical rows for every probe and every executed
// query — the index is an access path, never a semantics change.

#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "exec/engine.h"
#include "sql/parser.h"
#include "storage/database.h"

namespace datalawyer {
namespace {

std::string RowsToString(const std::vector<Row>& rows) {
  std::ostringstream out;
  for (const Row& row : rows) {
    for (const Value& v : row) out << v.ToString() << ",";
    out << "\n";
  }
  return out.str();
}

/// Linear-scan reference for one equality probe.
std::vector<size_t> ReferenceLookup(const Table& table, size_t col,
                                    const Value& v) {
  std::vector<size_t> out;
  for (size_t i = 0; i < table.NumRows(); ++i) {
    if (table.RowAt(i)[col] == v) out.push_back(i);
  }
  return out;
}

TEST(IndexCorrectnessTest, RandomInsertsAndDeletesAgainstLinearScan) {
  std::mt19937_64 rng(2024);
  Table table(TableSchema()
                  .AddColumn("a", ValueType::kInt64)
                  .AddColumn("b", ValueType::kString));
  ASSERT_TRUE(table.BuildIndex("a").ok());
  ASSERT_TRUE(table.BuildIndex("b").ok());

  const char* kTexts[] = {"x", "y", "z", "w"};
  for (int round = 0; round < 60; ++round) {
    // A batch of random appends (index maintained incrementally)...
    size_t appends = rng() % 8;
    for (size_t i = 0; i < appends; ++i) {
      ASSERT_TRUE(table
                      .Append(Row{Value(int64_t(rng() % 10)),
                                  Value(std::string(kTexts[rng() % 4]))})
                      .ok());
    }
    // ...sometimes followed by a random deletion (index invalidated,
    // rebuilt by RefreshIndexes).
    if (rng() % 3 == 0 && table.NumRows() > 0) {
      std::unordered_set<int64_t> remove;
      for (size_t i = 0; i < table.NumRows(); ++i) {
        if (rng() % 4 == 0) remove.insert(table.RowIdAt(i));
      }
      table.RemoveIds(remove);
      EXPECT_FALSE(table.HasValidIndex(0));
      std::vector<size_t> unused;
      EXPECT_FALSE(table.IndexLookup(0, Value(int64_t(1)), &unused));
      table.RefreshIndexes();
    }
    ASSERT_TRUE(table.HasValidIndex(0));
    ASSERT_TRUE(table.HasValidIndex(1));

    // Every probeable value, both columns, must match the linear scan
    // exactly — same positions, same (ascending) order.
    for (int64_t a = 0; a < 10; ++a) {
      std::vector<size_t> via_index;
      ASSERT_TRUE(table.IndexLookup(0, Value(a), &via_index));
      EXPECT_EQ(via_index, ReferenceLookup(table, 0, Value(a)))
          << "round " << round << " a=" << a;
    }
    for (const char* text : kTexts) {
      std::vector<size_t> via_index;
      ASSERT_TRUE(table.IndexLookup(1, Value(std::string(text)), &via_index));
      EXPECT_EQ(via_index, ReferenceLookup(table, 1, Value(std::string(text))))
          << "round " << round << " b=" << text;
    }
  }
}

TEST(IndexCorrectnessTest, ExecutorResultsIdenticalWithAndWithoutIndexes) {
  std::mt19937_64 rng(7);

  // Twin databases: identical contents, only one has indexes.
  Database indexed_db;
  Database plain_db;
  for (Database* db : {&indexed_db, &plain_db}) {
    ASSERT_TRUE(db->CreateTable("r", TableSchema()
                                         .AddColumn("a", ValueType::kInt64)
                                         .AddColumn("b", ValueType::kInt64)
                                         .AddColumn("c", ValueType::kString))
                    .ok());
    ASSERT_TRUE(db->CreateTable("s", TableSchema()
                                         .AddColumn("a", ValueType::kInt64)
                                         .AddColumn("d", ValueType::kInt64))
                    .ok());
  }
  const char* kTexts[] = {"x", "y", "z"};
  auto append_everywhere = [&](const std::string& name, const Row& row) {
    for (Database* db : {&indexed_db, &plain_db}) {
      ASSERT_TRUE(db->GetTable(name).value()->Append(row).ok());
    }
  };
  for (int i = 0; i < 200; ++i) {
    append_everywhere("r", Row{Value(int64_t(rng() % 6)),
                               Value(int64_t(rng() % 10)),
                               Value(std::string(kTexts[rng() % 3]))});
  }
  for (int i = 0; i < 80; ++i) {
    append_everywhere("s", Row{Value(int64_t(rng() % 6)),
                               Value(int64_t(rng() % 10))});
  }
  Table* r = indexed_db.GetTable("r").value();
  Table* s = indexed_db.GetTable("s").value();
  ASSERT_TRUE(r->BuildIndex("a").ok());
  ASSERT_TRUE(r->BuildIndex("b").ok());
  ASSERT_TRUE(r->BuildIndex("c").ok());
  ASSERT_TRUE(s->BuildIndex("a").ok());

  Engine indexed(&indexed_db);
  Engine plain(&plain_db);

  std::vector<std::string> queries;
  for (int i = 0; i < 40; ++i) {
    int64_t a = int64_t(rng() % 6);
    int64_t b = int64_t(rng() % 10);
    std::string c = kTexts[rng() % 3];
    switch (rng() % 5) {
      case 0:
        queries.push_back("SELECT * FROM r WHERE a = " + std::to_string(a));
        break;
      case 1:  // literal-first orientation
        queries.push_back("SELECT * FROM r WHERE " + std::to_string(b) +
                          " = b");
        break;
      case 2:  // conjunctive equalities: most selective probe wins
        queries.push_back("SELECT * FROM r WHERE a = " + std::to_string(a) +
                          " AND b = " + std::to_string(b) + " AND c = '" + c +
                          "'");
        break;
      case 3:  // probe + non-equality residual
        queries.push_back("SELECT * FROM r WHERE c = '" + c +
                          "' AND b < " + std::to_string(b));
        break;
      default:  // join with per-relation pushdowns
        queries.push_back("SELECT r.b, s.d FROM r, s WHERE r.a = s.a AND "
                          "r.c = '" + c + "' AND s.a = " + std::to_string(a));
        break;
    }
  }

  size_t probes_seen = 0;
  for (const std::string& sql : queries) {
    auto with_index = indexed.ExecuteSql(sql);
    auto without = plain.ExecuteSql(sql);
    ASSERT_TRUE(with_index.ok()) << sql;
    ASSERT_TRUE(without.ok()) << sql;
    // Exact equality, order included: an index probe emits positions in
    // ascending order, i.e. the same order a full scan produces.
    EXPECT_EQ(RowsToString(with_index->rows), RowsToString(without->rows))
        << sql;

    Executor executor(indexed.db_catalog());
    auto parsed = Parser::Parse(sql);
    ASSERT_TRUE(parsed.ok());
    ASSERT_TRUE(executor.Execute(*parsed->select).ok());
    probes_seen += executor.scan_stats().index_probes;
    EXPECT_GT(executor.scan_stats().index_probes, 0u) << sql;
    EXPECT_GT(executor.scan_stats().index_hits, 0u) << sql;
  }
  EXPECT_GT(probes_seen, 0u);

  // Mutate both copies identically through the engine (DELETE invalidates,
  // the next query falls back to scans — results must still agree).
  for (Engine* e : {&indexed, &plain}) {
    ASSERT_TRUE(e->ExecuteSql("DELETE FROM r WHERE b = 3").ok());
  }
  for (const std::string& sql : queries) {
    auto with_index = indexed.ExecuteSql(sql);
    auto without = plain.ExecuteSql(sql);
    ASSERT_TRUE(with_index.ok()) << sql;
    ASSERT_TRUE(without.ok()) << sql;
    EXPECT_EQ(RowsToString(with_index->rows), RowsToString(without->rows))
        << sql;
  }
  // After a refresh the probes serve again, still with identical results.
  r->RefreshIndexes();
  for (const std::string& sql : queries) {
    auto with_index = indexed.ExecuteSql(sql);
    auto without = plain.ExecuteSql(sql);
    ASSERT_TRUE(with_index.ok() && without.ok()) << sql;
    EXPECT_EQ(RowsToString(with_index->rows), RowsToString(without->rows))
        << sql;
  }
}

}  // namespace
}  // namespace datalawyer
