#include <gtest/gtest.h>

#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "common/clock.h"
#include "common/trace.h"
#include "core/datalawyer.h"
#include "exec/engine.h"
#include "exec/executor.h"
#include "policy/templates.h"
#include "sql/parser.h"

namespace datalawyer {
namespace {

// Every SQL feature the planner touches: pushdown, constant folding, equi
// vs. nested-loop joins, 3-way joins (reordered), subqueries, grouping,
// HAVING, DISTINCT / DISTINCT ON, UNION / UNION ALL, ORDER BY, LIMIT.
const char* kWorkload[] = {
    "SELECT * FROM users",
    "SELECT users.name FROM users WHERE users.uid = 2",
    "SELECT users.name FROM users WHERE users.uid = 1 + 1",
    "SELECT users.name FROM users WHERE 1 = 1",
    "SELECT users.name FROM users WHERE 1 = 2",
    "SELECT users.name FROM users WHERE 1 = 2 AND users.uid = 1",
    "SELECT users.name, orders.item FROM users, orders "
    "WHERE users.uid = orders.uid",
    "SELECT users.name, orders.item FROM orders, users "
    "WHERE users.uid = orders.uid",
    "SELECT users.name, orders.item FROM users, orders "
    "WHERE users.uid < orders.uid",
    "SELECT users.name, orders.item, prices.amount "
    "FROM users, orders, prices "
    "WHERE users.uid = orders.uid AND orders.item = prices.item",
    "SELECT prices.amount, orders.item, users.name "
    "FROM prices, orders, users "
    "WHERE users.uid = orders.uid AND orders.item = prices.item "
    "AND prices.amount > 1",
    "SELECT users.uid, COUNT(*) FROM users, orders "
    "WHERE users.uid = orders.uid GROUP BY users.uid",
    "SELECT orders.uid, COUNT(*), SUM(prices.amount) FROM orders, prices "
    "WHERE orders.item = prices.item GROUP BY orders.uid "
    "HAVING COUNT(*) > 1",
    "SELECT COUNT(*) FROM orders WHERE orders.uid = 99",
    "SELECT DISTINCT orders.uid FROM orders",
    "SELECT DISTINCT ON (orders.uid) orders.item FROM orders",
    "SELECT users.uid FROM users UNION SELECT orders.uid FROM orders",
    "SELECT users.uid FROM users UNION ALL SELECT orders.uid FROM orders",
    "SELECT s.n FROM (SELECT COUNT(*) AS n FROM orders) s",
    "SELECT s.uid, users.name "
    "FROM (SELECT DISTINCT orders.uid AS uid FROM orders) s, users "
    "WHERE s.uid = users.uid",
    "SELECT users.name FROM users ORDER BY name",
    "SELECT orders.item, orders.uid FROM orders ORDER BY 2 DESC, 1 LIMIT 3",
    "SELECT users.name FROM users WHERE users.uid = 1 OR users.uid = 3",
    "SELECT 1 + 2",
    // Range predicates: servable from the ordered index (or not), with the
    // cost model free to pick either path — rows and lineage must not move.
    "SELECT users.name FROM users WHERE users.uid > 2",
    "SELECT users.name FROM users WHERE users.uid >= 2 AND users.uid <= 3",
    "SELECT users.name FROM users WHERE users.uid BETWEEN 2 AND 3",
    "SELECT users.name FROM users WHERE users.uid BETWEEN 3 AND 2",
    "SELECT orders.item FROM orders WHERE orders.uid BETWEEN 1 AND 2 "
    "ORDER BY orders.item",
    "SELECT users.name FROM users WHERE users.uid > 1 + 1",
    "SELECT users.name, orders.item FROM users, orders "
    "WHERE orders.uid >= users.uid AND users.uid = 3",
    "SELECT users.name, orders.item FROM users, orders "
    "WHERE orders.uid > users.uid - 2 AND orders.uid < users.uid + 1 "
    "AND users.uid = 2",
    "SELECT COUNT(*) FROM orders WHERE orders.uid >= 2 AND orders.uid = 3",
    "SELECT users.name FROM users WHERE users.uid > 'x'",
};

// (relation name, row id) pairs — comparable across executors whose
// base_relations interning order differs with the scan order.
std::set<std::pair<std::string, int64_t>> ResolvedLineage(
    const QueryResult& result, size_t row) {
  std::set<std::pair<std::string, int64_t>> out;
  for (const LineageEntry& e : result.lineage[row]) {
    out.insert({result.base_relations[e.rel], e.row_id});
  }
  return out;
}

class OptimizerDifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<Engine>(&db_);
    ASSERT_TRUE(engine_
                    ->ExecuteScript(R"sql(
      CREATE TABLE users (uid INT, name TEXT);
      INSERT INTO users VALUES (1, 'ann'), (2, 'bob'), (3, 'cat'),
                               (4, 'dan');
      CREATE TABLE orders (uid INT, item TEXT);
      INSERT INTO orders VALUES (1, 'pen'), (1, 'ink'), (2, 'pen'),
                                (3, 'pad'), (3, 'pen'), (3, 'ink');
      CREATE TABLE prices (item TEXT, amount DOUBLE);
      INSERT INTO prices VALUES ('pen', 1.5), ('ink', 4.0), ('pad', 2.0);
    )sql")
                    .ok());
    ASSERT_TRUE(db_.FindTable("orders")->BuildIndex("uid").ok());
    // Ordered indexes and statistics make every access path — and the cost
    // model that picks between them — reachable for the workload above.
    ASSERT_TRUE(db_.FindTable("users")->BuildOrderedIndex("uid").ok());
    ASSERT_TRUE(db_.FindTable("orders")->BuildOrderedIndex("uid").ok());
    for (const char* t : {"users", "orders", "prices"}) {
      db_.FindTable(t)->EnableStats();
    }
  }

  Database db_;
  std::unique_ptr<Engine> engine_;
};

// The tentpole guarantee: the optimized pipeline returns byte-identical
// rows (including order) and identical lineage to the naive plan for the
// whole workload.
TEST_F(OptimizerDifferentialTest, RowsAndLineageIdentical) {
  for (const char* sql : kWorkload) {
    for (bool costing : {true, false}) {
      SCOPED_TRACE(std::string(sql) +
                   (costing ? " [costing on]" : " [costing off]"));
      auto stmt = Parser::ParseSelect(sql);
      ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();

      ExecOptions naive_opts;
      naive_opts.capture_lineage = true;
      naive_opts.enable_optimizer = false;
      Executor naive(engine_->db_catalog(), naive_opts);
      auto naive_result = naive.Execute(**stmt);

      ExecOptions opt_opts;
      opt_opts.capture_lineage = true;
      opt_opts.enable_optimizer = true;
      opt_opts.enable_stats_costing = costing;
      Executor optimized(engine_->db_catalog(), opt_opts);
      auto opt_result = optimized.Execute(**stmt);

      ASSERT_EQ(naive_result.ok(), opt_result.ok())
          << naive_result.status().ToString() << " vs "
          << opt_result.status().ToString();
      if (!naive_result.ok()) continue;

      ASSERT_EQ(naive_result->rows, opt_result->rows);
      ASSERT_EQ(naive_result->lineage.size(), opt_result->lineage.size());
      for (size_t i = 0; i < naive_result->lineage.size(); ++i) {
        EXPECT_EQ(ResolvedLineage(*naive_result, i),
                  ResolvedLineage(*opt_result, i));
      }
    }
  }
}

// Policy verdicts must agree between the cached-plan path and the one-shot
// bind-and-plan path, query by query, including the violation messages.
TEST(PlanCacheDifferentialTest, VerdictsIdentical) {
  auto make = [](bool cached) {
    auto db = std::make_unique<Database>();
    Engine engine(db.get());
    EXPECT_TRUE(engine
                    .ExecuteScript(R"sql(
      CREATE TABLE patients (pid INT, name TEXT, hiv_status TEXT);
      INSERT INTO patients VALUES (1, 'ann', 'neg'), (2, 'bob', 'pos');
    )sql")
                    .ok());
    DataLawyerOptions options;
    options.enable_plan_cache = cached;
    auto dl = std::make_unique<DataLawyer>(
        db.get(), nullptr, std::make_unique<ManualClock>(), options);
    // P4: at most 2 queries per 100-tick window for uid 7 — history-
    // dependent, so the verdict flips as the usage log accumulates.
    EXPECT_TRUE(
        dl->AddPolicy("cap", PolicyTemplates::RateLimit(100, 2, 7)).ok());
    return std::make_pair(std::move(db), std::move(dl));
  };

  auto [db_a, with_cache] = make(true);
  auto [db_b, without_cache] = make(false);

  for (int i = 0; i < 5; ++i) {
    QueryContext ctx;
    ctx.uid = 7;
    auto a = with_cache->Execute("SELECT * FROM patients", ctx);
    auto b = without_cache->Execute("SELECT * FROM patients", ctx);
    ASSERT_EQ(a.ok(), b.ok()) << "query " << i;
    ASSERT_EQ(a.status().IsPolicyViolation(), b.status().IsPolicyViolation());
    if (!a.ok()) {
      EXPECT_EQ(a.status().message(), b.status().message());
    } else {
      EXPECT_EQ(a->rows, b->rows);
    }
  }
  // The cap fires from the 4th read on; both sides must agree it did.
  QueryContext ctx;
  ctx.uid = 7;
  EXPECT_TRUE(with_cache->Execute("SELECT * FROM patients", ctx)
                  .status()
                  .IsPolicyViolation());

  // Steady state: every policy evaluation after warm-up is a cache hit.
  EXPECT_GT(with_cache->last_stats().plan_cache_hits, 0u);
  EXPECT_EQ(with_cache->last_stats().plan_cache_misses, 0u);
  EXPECT_EQ(without_cache->last_stats().plan_cache_hits, 0u);
}

// The cache's acceptance bar: a steady-state query emits exactly one
// "planning" span — for the user's ad-hoc SQL — while the policy fan-out
// plans nothing. Without the cache every policy evaluation plans again.
TEST(PlanCacheDifferentialTest, SteadyStateDoesNoPolicyPlanning) {
  auto planning_spans_per_query = [](bool cached) {
    Database db;
    Engine engine(&db);
    EXPECT_TRUE(engine
                    .ExecuteScript("CREATE TABLE t (a INT);"
                                   "INSERT INTO t VALUES (1);")
                    .ok());
    DataLawyerOptions options;
    options.enable_plan_cache = cached;
    options.enable_tracing = true;
    // Compaction plans its own witness query; keep it out of the count so
    // the spans measured here belong to the user query and policy fan-out.
    options.enable_log_compaction = false;
    DataLawyer dl(&db, nullptr, std::make_unique<ManualClock>(), options);
    EXPECT_TRUE(
        dl.AddPolicy("cap", PolicyTemplates::RateLimit(100, 5, 7)).ok());
    QueryContext ctx;
    ctx.uid = 1;  // never rate-limited, so the query itself always runs
    // First Execute prepares the policies (and warms the cache).
    EXPECT_TRUE(dl.Execute("SELECT * FROM t", ctx).ok());
    Tracer::Global().Clear();
    EXPECT_TRUE(dl.Execute("SELECT * FROM t", ctx).ok());
    size_t planning = 0;
    for (const TraceEvent& e : Tracer::Global().Snapshot()) {
      if (e.name == "planning") ++planning;
    }
    Tracer::Global().set_enabled(false);
    Tracer::Global().Clear();
    return planning;
  };

  size_t with_cache = planning_spans_per_query(true);
  size_t without_cache = planning_spans_per_query(false);
  EXPECT_EQ(with_cache, 1u);
  EXPECT_GT(without_cache, with_cache);
}

}  // namespace
}  // namespace datalawyer
