#include <gtest/gtest.h>

#include "policy/calibration.h"
#include "workload/mimic.h"
#include "workload/paper_queries.h"

namespace datalawyer {
namespace {

/// A deliberately slow generator whose built-in rank claims it is cheapest.
class SlowLiarGenerator : public UsersLogGenerator {
 public:
  const std::string& relation_name() const override {
    static const std::string* kName = new std::string("slow_liar");
    return *kName;
  }
  int cost_rank() const override { return -1; }  // claims cheapest
  Result<std::vector<Row>> Generate(const GenerationInput& input) override {
    // Burn measurable time.
    volatile double sink = 0;
    for (int i = 0; i < 2000000; ++i) sink += i * 0.5;
    (void)sink;
    return UsersLogGenerator::Generate(input);
  }
};

TEST(CalibrationTest, MeasuredOrderOverridesDeclaredRanks) {
  Database db;
  ASSERT_TRUE(LoadMimicData(&db, MimicConfig::Tiny()).ok());
  Engine engine(&db);

  auto log = UsageLog::WithStandardGenerators();
  ASSERT_TRUE(
      log->RegisterGenerator(std::make_unique<SlowLiarGenerator>()).ok());
  // Declared order puts the liar first.
  EXPECT_EQ(log->RelationNamesInOrder()[0], "slow_liar");

  QueryContext ctx;
  ctx.uid = 1;
  auto result = CalibrateGenerationOrder(
      log.get(), &engine, {PaperQueries::W1(), PaperQueries::W2()}, ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->costs_ms.size(), 4u);
  // Costs are reported ascending.
  for (size_t i = 1; i < result->costs_ms.size(); ++i) {
    EXPECT_LE(result->costs_ms[i - 1].second, result->costs_ms[i].second);
  }
  // The measured order demotes the liar behind the genuinely cheap logs.
  std::vector<std::string> order = log->RelationNamesInOrder();
  EXPECT_NE(order[0], "slow_liar");
  EXPECT_EQ(order.back() == "slow_liar" || order[2] == "slow_liar", true);
  // Calibration leaves no staged rows behind.
  for (const std::string& name : order) {
    EXPECT_EQ(log->delta_table(name)->NumRows(), 0u) << name;
  }
}

TEST(CalibrationTest, EmptyWorkloadRejected) {
  Database db;
  Engine engine(&db);
  auto log = UsageLog::WithStandardGenerators();
  QueryContext ctx;
  EXPECT_FALSE(CalibrateGenerationOrder(log.get(), &engine, {}, ctx).ok());
}

TEST(CalibrationTest, SetCostRankReordersDirectly) {
  auto log = UsageLog::WithStandardGenerators();
  log->SetCostRank("provenance", -5.0);
  EXPECT_EQ(log->RelationNamesInOrder()[0], "provenance");
  log->SetCostRank("users", -10.0);
  EXPECT_EQ(log->RelationNamesInOrder()[0], "users");
}

}  // namespace
}  // namespace datalawyer
