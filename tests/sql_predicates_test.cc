// Coverage for the IN / BETWEEN / LIKE predicates, end-to-end through the
// engine and within policies.

#include <gtest/gtest.h>

#include "core/datalawyer.h"
#include "exec/engine.h"
#include "sql/parser.h"

namespace datalawyer {
namespace {

class SqlPredicatesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<Engine>(&db_);
    ASSERT_TRUE(engine_
                    ->ExecuteScript(R"sql(
      CREATE TABLE t (k INT, name TEXT);
      INSERT INTO t VALUES (1, 'alpha'), (2, 'beta'), (3, 'gamma'),
                           (4, 'alphabet'), (5, NULL), (NULL, 'nil');
    )sql")
                    .ok());
  }

  size_t Count(const std::string& where) {
    auto result = engine_->ExecuteSql("SELECT t.k FROM t WHERE " + where);
    EXPECT_TRUE(result.ok()) << where << " -> "
                             << result.status().ToString();
    return result.ok() ? result->NumRows() : size_t(-1);
  }

  Database db_;
  std::unique_ptr<Engine> engine_;
};

TEST_F(SqlPredicatesTest, InList) {
  EXPECT_EQ(Count("t.k IN (1, 3, 99)"), 2u);
  EXPECT_EQ(Count("t.k NOT IN (1, 3)"), 3u);  // 2, 4, 5 (NULL k filtered)
  EXPECT_EQ(Count("t.name IN ('alpha', 'beta')"), 2u);
  EXPECT_EQ(Count("t.k IN (99)"), 0u);
}

TEST_F(SqlPredicatesTest, InListNullSemantics) {
  // NULL operand → NULL → filtered out.
  EXPECT_EQ(Count("t.name IN ('zzz')"), 0u);
  // x NOT IN (..., NULL): never TRUE when unmatched (NULL contaminates).
  EXPECT_EQ(Count("t.k NOT IN (1, NULL)"), 0u);
  // ... but a positive match still wins over the NULL.
  EXPECT_EQ(Count("t.k IN (2, NULL)"), 1u);
}

TEST_F(SqlPredicatesTest, Between) {
  EXPECT_EQ(Count("t.k BETWEEN 2 AND 4"), 3u);
  EXPECT_EQ(Count("t.k NOT BETWEEN 2 AND 4"), 2u);  // 1, 5
  EXPECT_EQ(Count("t.k BETWEEN 4 AND 2"), 0u);      // empty range
  // Desugaring check: BETWEEN becomes >= / <= conjuncts.
  auto stmt = Parser::ParseSelect("SELECT 1 FROM t WHERE t.k BETWEEN 2 AND 4");
  ASSERT_TRUE(stmt.ok());
  std::string text = (*stmt)->ToString();
  EXPECT_NE(text.find("(t.k >= 2)"), std::string::npos);
  EXPECT_NE(text.find("(t.k <= 4)"), std::string::npos);
}

TEST_F(SqlPredicatesTest, Like) {
  EXPECT_EQ(Count("t.name LIKE 'alpha'"), 1u);
  EXPECT_EQ(Count("t.name LIKE 'alpha%'"), 2u);  // alpha, alphabet
  EXPECT_EQ(Count("t.name LIKE '%a'"), 3u);      // alpha, beta, gamma
  EXPECT_EQ(Count("t.name LIKE '%am%'"), 1u);    // gamma
  EXPECT_EQ(Count("t.name LIKE '_eta'"), 1u);    // beta
  EXPECT_EQ(Count("t.name LIKE '%'"), 5u);       // everything non-null
  EXPECT_EQ(Count("t.name NOT LIKE '%a%'"), 1u); // nil
  EXPECT_EQ(Count("t.name LIKE ''"), 0u);
}

TEST_F(SqlPredicatesTest, LikeErrors) {
  EXPECT_FALSE(engine_->ExecuteSql("SELECT 1 FROM t WHERE t.k LIKE 'x'")
                   .ok());  // non-string operand
  EXPECT_FALSE(
      Parser::Parse("SELECT 1 FROM t WHERE t.name LIKE t.name").ok());
  EXPECT_FALSE(Parser::Parse("SELECT 1 FROM t WHERE t.k NOT 5").ok());
}

TEST_F(SqlPredicatesTest, RoundTripAndClone) {
  auto stmt = Parser::ParseSelect(
      "SELECT 1 FROM t WHERE t.k IN (1, 2) AND t.name NOT LIKE 'a%'");
  ASSERT_TRUE(stmt.ok());
  std::string printed = (*stmt)->ToString();
  auto again = Parser::ParseSelect(printed);
  ASSERT_TRUE(again.ok()) << printed;
  EXPECT_EQ(printed, (*again)->ToString());
  EXPECT_EQ((*stmt)->Clone()->ToString(), printed);
}

TEST_F(SqlPredicatesTest, PolicyWithInListEnforced) {
  // The paper's P2 written with NOT IN: poe_order may only meet poe_med.
  Database db;
  Engine setup(&db);
  ASSERT_TRUE(setup.ExecuteScript(R"sql(
    CREATE TABLE poe_order (order_id INT, subject_id INT);
    INSERT INTO poe_order VALUES (1, 10);
    CREATE TABLE poe_med (order_id INT);
    INSERT INTO poe_med VALUES (1);
    CREATE TABLE d_patients (subject_id INT);
    INSERT INTO d_patients VALUES (10);
  )sql")
                  .ok());
  DataLawyer dl(&db, UsageLog::WithStandardGenerators(),
                std::make_unique<ManualClock>(0, 10), {});
  ASSERT_TRUE(dl.AddPolicy("p2-in", R"sql(
    SELECT DISTINCT 'no external joins with poe_order'
    FROM schema s1, schema s2
    WHERE s1.ts = s2.ts AND s1.irid = 'poe_order'
      AND s2.irid NOT IN ('poe_order', 'poe_med')
  )sql")
                  .ok());
  QueryContext ctx;
  ctx.uid = 1;
  EXPECT_TRUE(dl.Execute("SELECT o.order_id, m.order_id FROM poe_order o, "
                         "poe_med m WHERE o.order_id = m.order_id",
                         ctx)
                  .ok());
  auto bad = dl.Execute(
      "SELECT o.order_id, p.subject_id FROM poe_order o, d_patients p "
      "WHERE o.subject_id = p.subject_id",
      ctx);
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsPolicyViolation());
}

TEST_F(SqlPredicatesTest, PolicyWithLikeEnforced) {
  // Attribution-style policy (Table 1 P6 flavor): internal staging tables
  // (prefix 'tmp_') must never feed query answers.
  Database db;
  Engine setup(&db);
  ASSERT_TRUE(setup.ExecuteScript(R"sql(
    CREATE TABLE tmp_scratch (x INT);
    INSERT INTO tmp_scratch VALUES (1);
    CREATE TABLE public_data (x INT);
    INSERT INTO public_data VALUES (2);
  )sql")
                  .ok());
  DataLawyer dl(&db, UsageLog::WithStandardGenerators(),
                std::make_unique<ManualClock>(0, 10), {});
  ASSERT_TRUE(dl.AddPolicy("no-staging", R"sql(
    SELECT DISTINCT 'staging tables are not queryable'
    FROM schema s WHERE s.irid LIKE 'tmp_%'
  )sql")
                  .ok());
  QueryContext ctx;
  ctx.uid = 1;
  EXPECT_TRUE(dl.Execute("SELECT * FROM public_data", ctx).ok());
  EXPECT_FALSE(dl.Execute("SELECT * FROM tmp_scratch", ctx).ok());
}

TEST_F(SqlPredicatesTest, ScalarFunctions) {
  auto q = [&](const std::string& sql) {
    auto result = engine_->ExecuteSql(sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
    return result.ok() && !result->rows.empty() ? result->rows[0][0]
                                                : Value::Null();
  };
  EXPECT_EQ(q("SELECT UPPER(t.name) FROM t WHERE t.k = 1"), Value("ALPHA"));
  EXPECT_EQ(q("SELECT LOWER('MiXeD')"), Value("mixed"));
  EXPECT_EQ(q("SELECT LENGTH(t.name) FROM t WHERE t.k = 2"),
            Value(int64_t{4}));
  EXPECT_EQ(q("SELECT ABS(0 - 7)"), Value(int64_t{7}));
  EXPECT_EQ(q("SELECT ABS(-2.5)"), Value(2.5));
  // NULL propagation and nesting.
  EXPECT_TRUE(q("SELECT UPPER(t.name) FROM t WHERE t.k = 5").is_null());
  EXPECT_EQ(q("SELECT LENGTH(UPPER(t.name)) FROM t WHERE t.k = 3"),
            Value(int64_t{5}));
  // Usable in predicates: alpha(5), gamma(5), alphabet(8).
  EXPECT_EQ(Count("LENGTH(t.name) > 4"), 3u);
}

TEST_F(SqlPredicatesTest, ScalarFunctionErrors) {
  EXPECT_FALSE(engine_->ExecuteSql("SELECT LENGTH(t.k) FROM t").ok());
  EXPECT_FALSE(engine_->ExecuteSql("SELECT ABS(t.name) FROM t").ok());
  EXPECT_FALSE(engine_->ExecuteSql("SELECT LOWER(t.name, t.name) FROM t").ok());
  EXPECT_FALSE(engine_->ExecuteSql("SELECT MEDIAN(t.k) FROM t").ok());
}

TEST_F(SqlPredicatesTest, JoinOnSyntax) {
  ASSERT_TRUE(engine_
                  ->ExecuteScript(R"sql(
    CREATE TABLE u (k INT, extra TEXT);
    INSERT INTO u VALUES (1, 'one'), (3, 'three'), (9, 'nine');
  )sql")
                  .ok());
  // JOIN ... ON desugars to the comma form: same results.
  auto joined = engine_->ExecuteSql(
      "SELECT t.name, u.extra FROM t JOIN u ON t.k = u.k ORDER BY name");
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  ASSERT_EQ(joined->NumRows(), 2u);
  EXPECT_EQ(joined->rows[0][1], Value("one"));

  auto comma = engine_->ExecuteSql(
      "SELECT t.name, u.extra FROM t, u WHERE t.k = u.k ORDER BY name");
  ASSERT_TRUE(comma.ok());
  EXPECT_EQ(joined->rows, comma->rows);

  // INNER JOIN keyword, chained joins, ON with extra predicates, and
  // interaction with WHERE.
  auto inner = engine_->ExecuteSql(
      "SELECT t.k FROM t INNER JOIN u ON t.k = u.k AND u.extra != 'one' "
      "WHERE t.k > 0");
  ASSERT_TRUE(inner.ok()) << inner.status().ToString();
  EXPECT_EQ(inner->NumRows(), 1u);  // only k=3

  auto cross = engine_->ExecuteSql("SELECT t.k FROM t CROSS JOIN u");
  ASSERT_TRUE(cross.ok());
  EXPECT_EQ(cross->NumRows(), 18u);  // 6 × 3

  // The desugared join participates in hash-join planning.
  auto plan = engine_->ExplainSql(
      "SELECT t.name FROM t JOIN u ON t.k = u.k");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("hash join"), std::string::npos);
}

TEST_F(SqlPredicatesTest, OuterJoinsRejectedClearly) {
  auto result =
      engine_->ExecuteSql("SELECT 1 FROM t LEFT JOIN t t2 ON t.k = t2.k");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnsupported);
  EXPECT_FALSE(
      engine_->ExecuteSql("SELECT 1 FROM t JOIN t t2").ok());  // missing ON
}

}  // namespace
}  // namespace datalawyer
