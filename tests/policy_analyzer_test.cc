#include <gtest/gtest.h>

#include "policy/policy.h"
#include "policy/policy_analyzer.h"
#include "workload/paper_policies.h"

namespace datalawyer {
namespace {

class PolicyAnalyzerTest : public ::testing::Test {
 protected:
  void SetUp() override { log_ = UsageLog::WithStandardGenerators(); }

  Policy Analyze(const std::string& sql) {
    auto policy = Policy::Parse("p", sql);
    EXPECT_TRUE(policy.ok()) << policy.status().ToString();
    Policy out = std::move(policy).value();
    PolicyAnalyzer analyzer(log_.get());
    EXPECT_TRUE(analyzer.Analyze(&out).ok());
    return out;
  }

  std::unique_ptr<UsageLog> log_;
};

TEST_F(PolicyAnalyzerTest, FootprintCollection) {
  Policy p = Analyze(
      "SELECT DISTINCT 'e' FROM users u, provenance p "
      "WHERE u.ts = p.ts AND u.uid = 1");
  EXPECT_EQ(p.log_relations,
            (std::vector<std::string>{"users", "provenance"}));
  EXPECT_FALSE(p.references_clock);

  Policy db_only = Analyze("SELECT DISTINCT 'e' FROM groups g "
                           "WHERE g.gid = 'X'");
  EXPECT_TRUE(db_only.log_relations.empty());

  Policy nested = Analyze(
      "SELECT DISTINCT 'e' FROM (SELECT s.ts AS ts FROM schema s) q, clock c "
      "WHERE q.ts = c.ts");
  EXPECT_EQ(nested.log_relations, (std::vector<std::string>{"schema"}));
  EXPECT_TRUE(nested.references_clock);
}

// ---- time-independence (§4.1.1) ----

struct TiCase {
  const char* name;
  const char* sql;
  bool time_independent;
};

class TimeIndependenceTest
    : public PolicyAnalyzerTest,
      public ::testing::WithParamInterface<TiCase> {};

TEST_P(TimeIndependenceTest, Classification) {
  Policy p = Analyze(GetParam().sql);
  EXPECT_EQ(p.time_independent, GetParam().time_independent)
      << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TimeIndependenceTest,
    ::testing::Values(
        // (a) holds, no aggregates.
        TiCase{"joined_ts_no_agg",
               "SELECT DISTINCT 'e' FROM users u, schema s "
               "WHERE u.ts = s.ts AND u.uid = 1",
               true},
        // ts attributes not joined.
        TiCase{"unjoined_ts",
               "SELECT DISTINCT 'e' FROM users u, schema s WHERE u.uid = 1",
               false},
        // (b): aggregate grouped by ts.
        TiCase{"agg_grouped_by_ts",
               "SELECT DISTINCT 'e' FROM users u, provenance p "
               "WHERE u.ts = p.ts GROUP BY p.ts "
               "HAVING COUNT(DISTINCT p.otid) > 10",
               true},
        // (b): group by a column in the ts join class (u.ts works too).
        TiCase{"agg_grouped_by_equivalent_ts",
               "SELECT DISTINCT 'e' FROM users u, provenance p "
               "WHERE u.ts = p.ts GROUP BY u.ts "
               "HAVING COUNT(DISTINCT p.otid) > 10",
               true},
        // aggregate without ts in the group-by.
        TiCase{"agg_without_ts_group",
               "SELECT DISTINCT 'e' FROM users u "
               "HAVING COUNT(DISTINCT u.uid) > 10",
               false},
        TiCase{"agg_grouped_by_non_ts",
               "SELECT DISTINCT 'e' FROM provenance p GROUP BY p.itid "
               "HAVING COUNT(p.itid) > 5",
               false},
        // single log relation, no aggregates: increment check suffices.
        TiCase{"single_relation_selection",
               "SELECT DISTINCT 'e' FROM schema s WHERE s.irid = 'navteq'",
               true},
        // no log relations at all.
        TiCase{"db_only", "SELECT DISTINCT 'e' FROM groups g", true},
        // subquery must satisfy the criterion too.
        TiCase{"bad_subquery",
               "SELECT DISTINCT 'e' FROM (SELECT COUNT(DISTINCT u.uid) AS n "
               "FROM users u) q WHERE q.n > 10",
               false}));

TEST_F(PolicyAnalyzerTest, PaperPoliciesClassification) {
  // §5.3: "Policies 2, 3, and 4 are time independent."
  EXPECT_FALSE(Analyze(PaperPolicies::P1()).time_independent);
  EXPECT_TRUE(Analyze(PaperPolicies::P2()).time_independent);
  EXPECT_TRUE(Analyze(PaperPolicies::P3()).time_independent);
  EXPECT_TRUE(Analyze(PaperPolicies::P4()).time_independent);
  EXPECT_FALSE(Analyze(PaperPolicies::P5()).time_independent);
  EXPECT_FALSE(Analyze(PaperPolicies::P6()).time_independent);
}

TEST_F(PolicyAnalyzerTest, TimeIndependentRewriteAddsClockPin) {
  Policy p = Analyze(PaperPolicies::P2());
  ASSERT_NE(p.rewritten, nullptr);
  std::string rewritten = p.rewritten->ToString();
  // π_ind joins every log alias's ts with the injected clock item.
  EXPECT_NE(rewritten.find("dl_ti_clock"), std::string::npos);
  EXPECT_NE(rewritten.find("(u.ts = dl_ti_clock.ts)"), std::string::npos);
  EXPECT_NE(rewritten.find("(s1.ts = dl_ti_clock.ts)"), std::string::npos);
  EXPECT_NE(rewritten.find("(s2.ts = dl_ti_clock.ts)"), std::string::npos);

  // Time-dependent policies get no rewrite.
  EXPECT_EQ(Analyze(PaperPolicies::P5()).rewritten, nullptr);
  // A db-only policy needs no pin either.
  EXPECT_EQ(Analyze("SELECT DISTINCT 'e' FROM groups g").rewritten, nullptr);
}

TEST_F(PolicyAnalyzerTest, RewriteAvoidsAliasCollisions) {
  Policy p = Analyze(
      "SELECT DISTINCT 'e' FROM users dl_ti_clock "
      "WHERE dl_ti_clock.uid = 1");
  ASSERT_NE(p.rewritten, nullptr);
  EXPECT_NE(p.rewritten->ToString().find("dl_ti_clock0"), std::string::npos);
}

// ---- monotonicity (§4.2.1) ----

struct MonoCase {
  const char* name;
  const char* sql;
  bool monotone;
};

class MonotonicityTest : public PolicyAnalyzerTest,
                         public ::testing::WithParamInterface<MonoCase> {};

TEST_P(MonotonicityTest, Classification) {
  Policy p = Analyze(GetParam().sql);
  EXPECT_EQ(p.monotone, GetParam().monotone) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MonotonicityTest,
    ::testing::Values(
        MonoCase{"spj", "SELECT DISTINCT 'e' FROM users u WHERE u.uid = 1",
                 true},
        MonoCase{"union",
                 "SELECT DISTINCT 'e' FROM users u UNION "
                 "SELECT DISTINCT 'e' FROM schema s",
                 true},
        MonoCase{"count_gt",
                 "SELECT DISTINCT 'e' FROM users u "
                 "HAVING COUNT(DISTINCT u.uid) > 10",
                 true},
        MonoCase{"count_ge",
                 "SELECT DISTINCT 'e' FROM users u HAVING COUNT(*) >= 10",
                 true},
        MonoCase{"count_flipped",
                 "SELECT DISTINCT 'e' FROM users u WHERE 1 = 1 "
                 "HAVING 10 < COUNT(u.uid)",
                 true},
        MonoCase{"count_lt",
                 "SELECT DISTINCT 'e' FROM users u HAVING COUNT(*) < 10",
                 false},
        MonoCase{"count_le",
                 "SELECT DISTINCT 'e' FROM users u HAVING COUNT(*) <= 10",
                 false},
        MonoCase{"count_eq",
                 "SELECT DISTINCT 'e' FROM users u HAVING COUNT(*) = 10",
                 false},
        MonoCase{"sum_gt",
                 "SELECT DISTINCT 'e' FROM users u HAVING SUM(u.uid) > 10",
                 false},
        MonoCase{"threshold_not_literal",
                 "SELECT DISTINCT 'e' FROM users u, groups g "
                 "GROUP BY g.uid HAVING COUNT(u.uid) > g.uid",
                 false},
        MonoCase{"mixed_conjunct",
                 "SELECT DISTINCT 'e' FROM users u "
                 "HAVING COUNT(*) > 1 AND COUNT(*) < 50",
                 false},
        MonoCase{"group_selection_in_having",
                 "SELECT DISTINCT 'e' FROM users u GROUP BY u.uid "
                 "HAVING u.uid > 3 AND COUNT(*) > 2",
                 true},
        MonoCase{"nonmono_subquery",
                 "SELECT DISTINCT 'e' FROM (SELECT u.ts AS ts FROM users u "
                 "HAVING COUNT(*) < 5) q",
                 false}));

TEST_F(PolicyAnalyzerTest, PaperPoliciesMonotonicity) {
  EXPECT_TRUE(Analyze(PaperPolicies::P1()).monotone);
  EXPECT_TRUE(Analyze(PaperPolicies::P2()).monotone);
  EXPECT_TRUE(Analyze(PaperPolicies::P3()).monotone);
  EXPECT_FALSE(Analyze(PaperPolicies::P4()).monotone);  // count <= k
  EXPECT_TRUE(Analyze(PaperPolicies::P5()).monotone);
  EXPECT_TRUE(Analyze(PaperPolicies::P6()).monotone);
}

TEST_F(PolicyAnalyzerTest, PolicyParseRequiresSelect) {
  EXPECT_FALSE(Policy::Parse("p", "DELETE FROM users").ok());
  EXPECT_FALSE(Policy::Parse("p", "not sql at all").ok());
}

TEST_F(PolicyAnalyzerTest, CloneCopiesAnalysis) {
  Policy p = Analyze(PaperPolicies::P2());
  Policy clone = p.Clone();
  EXPECT_EQ(clone.name, p.name);
  EXPECT_EQ(clone.time_independent, p.time_independent);
  EXPECT_EQ(clone.log_relations, p.log_relations);
  ASSERT_NE(clone.rewritten, nullptr);
  EXPECT_EQ(clone.rewritten->ToString(), p.rewritten->ToString());
  EXPECT_NE(clone.stmt.get(), p.stmt.get());
}

}  // namespace
}  // namespace datalawyer
