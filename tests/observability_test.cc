// The enforcement-audit trail and per-policy attribution: every Execute /
// WouldAllow verdict lands in the audit log with its phase timings, and
// PolicyReport's per-policy evaluation time accounts for the cumulative
// policy CPU time.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/audit.h"
#include "core/datalawyer.h"
#include "workload/mimic.h"
#include "workload/paper_policies.h"

namespace datalawyer {
namespace {

AuditRecord MakeRecord(int64_t ts, const std::string& sql, bool admitted) {
  AuditRecord r;
  r.ts = ts;
  r.uid = ts % 3;
  r.query_sql = sql;
  r.admitted = admitted;
  r.total_us = double(ts) * 10;
  return r;
}

TEST(AuditLogTest, RingEvictsOldestAndCountsDrops) {
  AuditLog log(3);
  for (int i = 0; i < 5; ++i) {
    log.Append(MakeRecord(i, "q" + std::to_string(i), true));
  }
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.total_appended(), 5u);
  EXPECT_EQ(log.dropped(), 2u);
  EXPECT_EQ(log.records().front().query_sql, "q2");
  EXPECT_EQ(log.records().back().query_sql, "q4");
}

TEST(AuditLogTest, TailReturnsMostRecentOldestFirst) {
  AuditLog log(10);
  for (int i = 0; i < 6; ++i) {
    log.Append(MakeRecord(i, "q" + std::to_string(i), true));
  }
  auto tail = log.Tail(2);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].query_sql, "q4");
  EXPECT_EQ(tail[1].query_sql, "q5");
  EXPECT_EQ(log.Tail(100).size(), 6u);
}

TEST(AuditLogTest, SaveLoadRoundTripsEscapedFields) {
  AuditLog log(10);
  AuditRecord r = MakeRecord(42, "SELECT 'tab\there'\nFROM \\weird", false);
  r.probe = true;
  r.violated_policies = {"p1", "p,with,commas"};
  r.policy_eval_us = 123.456;
  log.Append(r);
  log.Append(MakeRecord(43, "plain", true));

  std::string path = ::testing::TempDir() + "/audit_roundtrip.tsv";
  ASSERT_TRUE(log.SaveTo(path).ok());

  AuditLog restored(10);
  ASSERT_TRUE(restored.LoadFrom(path).ok());
  ASSERT_EQ(restored.size(), 2u);
  const AuditRecord& back = restored.records().front();
  EXPECT_EQ(back.ts, 42);
  EXPECT_EQ(back.query_sql, "SELECT 'tab\there'\nFROM \\weird");
  EXPECT_FALSE(back.admitted);
  EXPECT_TRUE(back.probe);
  ASSERT_EQ(back.violated_policies.size(), 2u);
  EXPECT_EQ(back.violated_policies[0], "p1");
  EXPECT_EQ(back.violated_policies[1], "p,with,commas");
  EXPECT_NEAR(back.policy_eval_us, 123.456, 0.001);
  EXPECT_TRUE(restored.records().back().admitted);
  std::remove(path.c_str());
}

// Regression: fields containing a carriage return, a literal backslash
// followed by 't' (which must NOT round-trip to a tab), or a trailing
// backslash used to corrupt the TSV framing. The shared escaping helpers
// in common/strings must keep every such record intact.
TEST(AuditLogTest, SaveLoadHandlesHostileEscapeSequences) {
  AuditLog log(10);
  const std::vector<std::string> hostile = {
      "line1\r\nline2",      // carriage return + newline
      "literal \\t not tab",  // backslash-t as two characters
      "ends with backslash \\",
      "\t\n\r\\",  // every special, adjacent
  };
  for (size_t i = 0; i < hostile.size(); ++i) {
    AuditRecord r = MakeRecord(int64_t(i), hostile[i], i % 2 == 0);
    r.violated_policies = {hostile[i]};
    log.Append(std::move(r));
  }
  std::string path = ::testing::TempDir() + "/audit_hostile.tsv";
  ASSERT_TRUE(log.SaveTo(path).ok());
  AuditLog restored(10);
  ASSERT_TRUE(restored.LoadFrom(path).ok());
  ASSERT_EQ(restored.size(), hostile.size());
  for (size_t i = 0; i < hostile.size(); ++i) {
    EXPECT_EQ(restored.records()[i].query_sql, hostile[i]) << i;
    ASSERT_EQ(restored.records()[i].violated_policies.size(), 1u);
    EXPECT_EQ(restored.records()[i].violated_policies[0], hostile[i]) << i;
  }
  std::remove(path.c_str());
}

TEST(AuditLogTest, DecisionIdRoundTripsInV2Format) {
  AuditLog log(10);
  AuditRecord r = MakeRecord(1, "SELECT 1", true);
  r.decision_id = 42;
  log.Append(std::move(r));
  std::string path = ::testing::TempDir() + "/audit_v2.tsv";
  ASSERT_TRUE(log.SaveTo(path).ok());
  AuditLog restored(10);
  ASSERT_TRUE(restored.LoadFrom(path).ok());
  ASSERT_EQ(restored.size(), 1u);
  EXPECT_EQ(restored.records()[0].decision_id, 42u);
  std::remove(path.c_str());
}

// A v1 trail (no decision_id column) still loads; the link reads as 0.
TEST(AuditLogTest, LoadsV1FilesWithoutDecisionIds) {
  std::string path = ::testing::TempDir() + "/audit_v1.tsv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("dl-audit-v1\n", f);
  std::fputs("10\t3\t1\t0\t12.500\t1.000\t2.000\t3.000\t0.000\t\tSELECT 1\n",
             f);
  std::fclose(f);
  AuditLog restored(10);
  ASSERT_TRUE(restored.LoadFrom(path).ok());
  ASSERT_EQ(restored.size(), 1u);
  const AuditRecord& r = restored.records()[0];
  EXPECT_EQ(r.ts, 10);
  EXPECT_EQ(r.uid, 3);
  EXPECT_TRUE(r.admitted);
  EXPECT_EQ(r.decision_id, 0u);
  EXPECT_EQ(r.query_sql, "SELECT 1");
  std::remove(path.c_str());
}

TEST(AuditLogTest, LoadRejectsGarbage) {
  std::string path = ::testing::TempDir() + "/audit_garbage.tsv";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("not-an-audit-file\n", f);
  std::fclose(f);
  AuditLog log(10);
  EXPECT_FALSE(log.LoadFrom(path).ok());
  std::remove(path.c_str());
}

class ObservabilityIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(LoadMimicData(&db_, MimicConfig::Tiny()).ok());
  }

  std::unique_ptr<DataLawyer> Make(DataLawyerOptions options) {
    auto dl = std::make_unique<DataLawyer>(
        &db_, UsageLog::WithStandardGenerators(),
        std::make_unique<ManualClock>(0, 10), options);
    for (const auto& [name, sql] : PaperPolicies::All()) {
      EXPECT_TRUE(dl->AddPolicy(name, sql).ok());
    }
    return dl;
  }

  Database db_;
  // Admitted for uid 0; trips P2 for uid 1 (medication joined with sex).
  const std::string join_sql_ =
      "SELECT o.medication, p.sex FROM poe_order o, "
      "d_patients p WHERE o.subject_id = p.subject_id";
};

TEST_F(ObservabilityIntegrationTest, AuditRecordsVerdictsAndTimings) {
  auto dl = Make({});
  QueryContext ctx;
  ctx.uid = 0;
  ASSERT_TRUE(dl->Execute(join_sql_, ctx).ok());
  ctx.uid = 1;
  auto rejected = dl->Execute(join_sql_, ctx);
  ASSERT_TRUE(rejected.status().IsPolicyViolation());
  ASSERT_TRUE(dl->WouldAllow(join_sql_, ctx).IsPolicyViolation());

  const AuditLog& audit = dl->audit_log();
  ASSERT_EQ(audit.size(), 3u);

  const AuditRecord& admit = audit.records()[0];
  EXPECT_TRUE(admit.admitted);
  EXPECT_FALSE(admit.probe);
  EXPECT_EQ(admit.uid, 0);
  EXPECT_EQ(admit.query_sql, join_sql_);
  EXPECT_TRUE(admit.violated_policies.empty());
  EXPECT_GT(admit.total_us, 0.0);
  EXPECT_GT(admit.policy_eval_us, 0.0);

  const AuditRecord& reject = audit.records()[1];
  EXPECT_FALSE(reject.admitted);
  EXPECT_FALSE(reject.probe);
  EXPECT_EQ(reject.uid, 1);
  ASSERT_FALSE(reject.violated_policies.empty());
  EXPECT_EQ(reject.violated_policies[0], "p2");

  const AuditRecord& probe = audit.records()[2];
  EXPECT_FALSE(probe.admitted);
  EXPECT_TRUE(probe.probe);
}

TEST_F(ObservabilityIntegrationTest, AuditDisabledByOption) {
  DataLawyerOptions options;
  options.enable_audit = false;
  auto dl = Make(options);
  QueryContext ctx;
  ctx.uid = 0;
  ASSERT_TRUE(dl->Execute(join_sql_, ctx).ok());
  EXPECT_EQ(dl->audit_log().size(), 0u);
}

TEST_F(ObservabilityIntegrationTest, AuditSkipsNonVerdictStatuses) {
  auto dl = Make({});
  QueryContext ctx;
  ctx.uid = 0;
  EXPECT_FALSE(dl->Execute("SELECT nonsense FROM nowhere", ctx).ok());
  EXPECT_EQ(dl->audit_log().size(), 0u);  // parse/bind errors are not verdicts
}

TEST_F(ObservabilityIntegrationTest, AuditCapacityOptionBoundsTheRing) {
  DataLawyerOptions options;
  options.audit_capacity = 2;
  auto dl = Make(options);
  QueryContext ctx;
  ctx.uid = 0;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(dl->Execute(join_sql_, ctx).ok());
  }
  EXPECT_EQ(dl->audit_log().size(), 2u);
  EXPECT_EQ(dl->audit_log().dropped(), 2u);
  EXPECT_EQ(dl->audit_log().total_appended(), 4u);
}

TEST_F(ObservabilityIntegrationTest, PolicyReportAccountsForPolicyCpuTime) {
  auto dl = Make({});
  QueryContext ctx;
  double cumulative_cpu_us = 0;
  for (int i = 0; i < 6; ++i) {
    ctx.uid = i % 2;
    auto result = dl->Execute(join_sql_, ctx);
    ASSERT_TRUE(result.ok() || result.status().IsPolicyViolation());
    cumulative_cpu_us += dl->last_stats().policy_cpu_us;
  }

  std::vector<PolicyStats> report = dl->PolicyReport();
  ASSERT_FALSE(report.empty());
  // Active policies lead, in registration order.
  EXPECT_EQ(report[0].name, dl->active_policies()[0].name);

  double attributed_us = 0;
  uint64_t evaluations = 0, rejections = 0;
  for (const PolicyStats& ps : report) {
    attributed_us += ps.eval_us;
    evaluations += ps.evaluations;
    rejections += ps.rejections;
  }
  EXPECT_GT(evaluations, 0u);
  EXPECT_GT(rejections, 0u);  // uid 1 queries trip p2
  // The per-policy attribution must account for the cumulative policy CPU
  // time within 5% (the ISSUE's acceptance bound).
  EXPECT_GT(cumulative_cpu_us, 0.0);
  EXPECT_NEAR(attributed_us, cumulative_cpu_us, cumulative_cpu_us * 0.05);

  dl->ResetPolicyStats();
  for (const PolicyStats& ps : dl->PolicyReport()) {
    EXPECT_EQ(ps.evaluations, 0u);
    EXPECT_EQ(ps.eval_us, 0.0);
  }
}

TEST_F(ObservabilityIntegrationTest, MetricsRecordedWhenEnabled) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter* queries = reg.GetCounter("dl_queries_total");
  Counter* rejected = reg.GetCounter("dl_queries_rejected_total");
  Histogram* total = reg.GetHistogram("dl_total_us");
  uint64_t queries_before = queries->value();
  uint64_t rejected_before = rejected->value();
  uint64_t observed_before = total->count();

  DataLawyerOptions options;
  options.enable_metrics = true;
  auto dl = Make(options);
  QueryContext ctx;
  ctx.uid = 0;
  ASSERT_TRUE(dl->Execute(join_sql_, ctx).ok());
  ctx.uid = 1;
  ASSERT_TRUE(dl->Execute(join_sql_, ctx).status().IsPolicyViolation());

  EXPECT_EQ(queries->value(), queries_before + 2);
  EXPECT_EQ(rejected->value(), rejected_before + 1);
  EXPECT_EQ(total->count(), observed_before + 2);
}

// The slow-enforcement log is queryable as the dl_slow_log relation and
// agrees row-for-row with the in-memory ring.
TEST_F(ObservabilityIntegrationTest, SlowLogQueryableAsSystemRelation) {
  DataLawyerOptions options;
  options.slow_enforcement_threshold_us = 0.001;  // everything is "slow"
  auto dl = Make(options);
  QueryContext ctx;
  ctx.uid = 0;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(dl->Execute(join_sql_, ctx).ok());
  }
  auto rows = dl->QueryUsageLog(
      "SELECT uid, rejected, query, total_us FROM dl_slow_log");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  const SlowLog& slow = dl->slow_log();
  ASSERT_EQ(rows->rows.size(), slow.size());
  for (size_t i = 0; i < slow.size(); ++i) {
    const EnforcementProfile& p = slow.records()[i];
    EXPECT_EQ(rows->rows[i][0].AsInt64(), p.uid);
    EXPECT_EQ(rows->rows[i][1].AsBool(), p.rejected);
    EXPECT_EQ(rows->rows[i][2].AsString(), p.query_sql);
    EXPECT_NEAR(rows->rows[i][3].AsDouble(), p.total_us(), 1e-6);
  }
}

TEST_F(ObservabilityIntegrationTest, MetricsSilentWhenDisabled) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  uint64_t before = reg.GetCounter("dl_queries_total")->value();
  auto dl = Make({});  // enable_metrics defaults off
  QueryContext ctx;
  ctx.uid = 0;
  ASSERT_TRUE(dl->Execute(join_sql_, ctx).ok());
  EXPECT_EQ(reg.GetCounter("dl_queries_total")->value(), before);
}

}  // namespace
}  // namespace datalawyer
