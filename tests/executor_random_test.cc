// Differential testing of the SQL substrate: randomly generated
// select-project-join-aggregate queries are executed by the engine and by a
// brute-force reference evaluator written directly against the stored
// tables; results must be identical (as multisets, modulo order).

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <map>
#include <set>
#include <random>
#include <sstream>

#include "exec/engine.h"
#include "storage/database.h"

namespace datalawyer {
namespace {

struct Dataset {
  // r(a INT, b INT, c TEXT), s(a INT, d INT)
  std::vector<std::array<int64_t, 2>> r_nums;  // (a, b)
  std::vector<std::string> r_text;             // c
  std::vector<std::array<int64_t, 2>> s_rows;  // (a, d)
};

Dataset MakeDataset(std::mt19937_64* rng, int r_rows, int s_rows) {
  Dataset data;
  const char* kTexts[] = {"x", "y", "z"};
  for (int i = 0; i < r_rows; ++i) {
    data.r_nums.push_back({int64_t((*rng)() % 6), int64_t((*rng)() % 10)});
    data.r_text.push_back(kTexts[(*rng)() % 3]);
  }
  for (int i = 0; i < s_rows; ++i) {
    data.s_rows.push_back({int64_t((*rng)() % 6), int64_t((*rng)() % 10)});
  }
  return data;
}

void Load(Database* db, const Dataset& data) {
  Table* r = db->CreateTable("r", TableSchema()
                                      .AddColumn("a", ValueType::kInt64)
                                      .AddColumn("b", ValueType::kInt64)
                                      .AddColumn("c", ValueType::kString))
                 .value();
  for (size_t i = 0; i < data.r_nums.size(); ++i) {
    ASSERT_TRUE(r->Append(Row{Value(data.r_nums[i][0]),
                              Value(data.r_nums[i][1]),
                              Value(data.r_text[i])})
                    .ok());
  }
  Table* s = db->CreateTable("s", TableSchema()
                                      .AddColumn("a", ValueType::kInt64)
                                      .AddColumn("d", ValueType::kInt64))
                 .value();
  for (const auto& row : data.s_rows) {
    ASSERT_TRUE(s->Append(Row{Value(row[0]), Value(row[1])}).ok());
  }
}

/// A random query drawn from the grammar the policy language uses,
/// together with its reference answer computed by brute force.
struct GeneratedCase {
  std::string sql;
  std::vector<Row> expected;
};

/// Canonical multiset form for comparison.
std::multiset<std::string> Canon(const std::vector<Row>& rows) {
  std::multiset<std::string> out;
  for (const Row& row : rows) out.insert(RowToString(row));
  return out;
}

GeneratedCase Generate(std::mt19937_64* rng, const Dataset& data) {
  GeneratedCase out;
  int64_t a_const = int64_t((*rng)() % 6);
  int64_t b_const = int64_t((*rng)() % 10);
  bool join = ((*rng)() & 1) != 0;
  bool filter_a = ((*rng)() & 1) != 0;
  bool filter_b = ((*rng)() & 1) != 0;
  int shape = int((*rng)() % 4);  // 0 plain, 1 distinct, 2 group, 3 global agg

  std::ostringstream sql;
  std::string where;
  auto add_pred = [&](const std::string& pred) {
    where += where.empty() ? " WHERE " + pred : " AND " + pred;
  };

  // Row source shared by engine and reference: (a, b, c [, d]).
  struct SourceRow {
    int64_t a, b;
    std::string c;
    int64_t d = 0;
  };
  std::vector<SourceRow> source;
  if (join) {
    for (size_t i = 0; i < data.r_nums.size(); ++i) {
      for (const auto& s_row : data.s_rows) {
        if (data.r_nums[i][0] == s_row[0]) {
          source.push_back(SourceRow{data.r_nums[i][0], data.r_nums[i][1],
                                     data.r_text[i], s_row[1]});
        }
      }
    }
  } else {
    for (size_t i = 0; i < data.r_nums.size(); ++i) {
      source.push_back(SourceRow{data.r_nums[i][0], data.r_nums[i][1],
                                 data.r_text[i], 0});
    }
  }

  std::vector<SourceRow> filtered;
  for (const SourceRow& row : source) {
    if (filter_a && !(row.a == a_const)) continue;
    if (filter_b && !(row.b < b_const)) continue;
    filtered.push_back(row);
  }

  std::string from = join ? "r, s" : "r";
  if (join) add_pred("r.a = s.a");
  if (filter_a) add_pred("r.a = " + std::to_string(a_const));
  if (filter_b) add_pred("r.b < " + std::to_string(b_const));

  switch (shape) {
    case 0: {  // projection
      sql << "SELECT r.b, r.c FROM " << from << where;
      for (const SourceRow& row : filtered) {
        out.expected.push_back(Row{Value(row.b), Value(row.c)});
      }
      break;
    }
    case 1: {  // distinct projection
      sql << "SELECT DISTINCT r.c FROM " << from << where;
      std::set<std::string> seen;
      for (const SourceRow& row : filtered) seen.insert(row.c);
      for (const std::string& c : seen) out.expected.push_back(Row{Value(c)});
      break;
    }
    case 2: {  // group by + count + having
      int64_t threshold = int64_t((*rng)() % 3);
      sql << "SELECT r.c, COUNT(*) FROM " << from << where
          << " GROUP BY r.c HAVING COUNT(*) > " << threshold;
      std::map<std::string, int64_t> counts;
      for (const SourceRow& row : filtered) ++counts[row.c];
      for (const auto& [c, n] : counts) {
        if (n > threshold) out.expected.push_back(Row{Value(c), Value(n)});
      }
      break;
    }
    default: {  // global aggregates
      sql << "SELECT COUNT(*), SUM(r.b), COUNT(DISTINCT r.a) FROM " << from
          << where;
      int64_t count = int64_t(filtered.size());
      int64_t sum = 0;
      std::set<int64_t> distinct_a;
      for (const SourceRow& row : filtered) {
        sum += row.b;
        distinct_a.insert(row.a);
      }
      Row result{Value(count),
                 count == 0 ? Value::Null() : Value(sum),
                 Value(int64_t(distinct_a.size()))};
      out.expected.push_back(std::move(result));
      break;
    }
  }
  out.sql = sql.str();
  return out;
}

class RandomQueryTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomQueryTest, EngineMatchesBruteForce) {
  std::mt19937_64 rng(GetParam());
  Database db;
  Dataset data = MakeDataset(&rng, 40, 25);
  Load(&db, data);
  Engine engine(&db);

  for (int round = 0; round < 40; ++round) {
    GeneratedCase test_case = Generate(&rng, data);
    auto result = engine.ExecuteSql(test_case.sql);
    ASSERT_TRUE(result.ok())
        << test_case.sql << " -> " << result.status().ToString();
    EXPECT_EQ(Canon(result->rows), Canon(test_case.expected))
        << "seed " << GetParam() << " round " << round << "\n  "
        << test_case.sql;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomQueryTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

// The same sweep with lineage capture on: results must not change, and
// replaying any output row's lineage through the query must reproduce it
// (lineage completeness for SPJ queries).
TEST_P(RandomQueryTest, LineageCaptureNeverChangesResults) {
  std::mt19937_64 rng(GetParam() * 1000003);
  Database db;
  Dataset data = MakeDataset(&rng, 30, 20);
  Load(&db, data);
  Engine engine(&db);
  ExecOptions traced;
  traced.capture_lineage = true;

  for (int round = 0; round < 25; ++round) {
    GeneratedCase test_case = Generate(&rng, data);
    auto plain = engine.ExecuteSql(test_case.sql);
    auto with_lineage = engine.ExecuteSql(test_case.sql, traced);
    ASSERT_TRUE(plain.ok() && with_lineage.ok()) << test_case.sql;
    EXPECT_EQ(Canon(plain->rows), Canon(with_lineage->rows))
        << test_case.sql;
    // Lineage sets are normalized (sorted, unique) and reference the base
    // tables; a lineage set may only be empty for the synthesized global
    // aggregate group over empty input.
    for (size_t i = 0; i < with_lineage->lineage.size(); ++i) {
      const LineageSet& lineage = with_lineage->lineage[i];
      for (size_t j = 1; j < lineage.size(); ++j) {
        EXPECT_TRUE(lineage[j - 1] < lineage[j]) << test_case.sql;
      }
      for (const LineageEntry& entry : lineage) {
        ASSERT_LT(entry.rel, with_lineage->base_relations.size());
      }
    }
  }
}

}  // namespace
}  // namespace datalawyer
