#include <gtest/gtest.h>

#include "core/datalawyer.h"
#include "policy/policy_analyzer.h"
#include "policy/templates.h"
#include "workload/mimic.h"

namespace datalawyer {
namespace {

class TemplatesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(LoadMimicData(&db_, MimicConfig::Tiny()).ok());
    dl_ = std::make_unique<DataLawyer>(&db_,
                                       UsageLog::WithStandardGenerators(),
                                       std::make_unique<ManualClock>(0, 10),
                                       DataLawyerOptions{});
  }

  bool Allowed(int64_t uid, const std::string& sql) {
    QueryContext ctx;
    ctx.uid = uid;
    auto result = dl_->Execute(sql, ctx);
    EXPECT_TRUE(result.ok() || result.status().IsPolicyViolation())
        << result.status().ToString();
    return result.ok();
  }

  Database db_;
  std::unique_ptr<DataLawyer> dl_;
};

TEST_F(TemplatesTest, EveryTemplateParsesAndAnalyzes) {
  auto log = UsageLog::WithStandardGenerators();
  PolicyAnalyzer analyzer(log.get());
  const std::vector<std::string> sqls = {
      PolicyTemplates::JoinProhibition("d_patients", {"chartevents"}),
      PolicyTemplates::JoinProhibition("d_patients", {}, 3),
      PolicyTemplates::RateLimit(500, 10),
      PolicyTemplates::RateLimit(500, 10, 7, "chartevents"),
      PolicyTemplates::OutputRowCap("d_patients", 100),
      PolicyTemplates::OutputRowCap("d_patients", 100, 7),
      PolicyTemplates::MinimumSupport("chartevents", 3),
      PolicyTemplates::MinimumSupport("chartevents", 3, 7),
      PolicyTemplates::AggregationBan("chartevents", {"d_patients"}),
      PolicyTemplates::WindowedDistinctTupleCap("d_patients", 500, 50),
      PolicyTemplates::TupleReuseCap("d_patients", 500, 5, 7),
      PolicyTemplates::GroupLicense("X", "d_patients", 500, 2),
  };
  for (const std::string& sql : sqls) {
    auto policy = Policy::Parse("t", sql);
    ASSERT_TRUE(policy.ok()) << sql << "\n" << policy.status().ToString();
    Policy p = std::move(policy).value();
    EXPECT_TRUE(analyzer.Analyze(&p).ok()) << sql;
  }
}

TEST_F(TemplatesTest, TemplateClassificationsMatchPaperPolicies) {
  auto log = UsageLog::WithStandardGenerators();
  PolicyAnalyzer analyzer(log.get());
  auto analyze = [&](const std::string& sql) {
    Policy p = std::move(Policy::Parse("t", sql)).value();
    EXPECT_TRUE(analyzer.Analyze(&p).ok());
    return p;
  };
  // Join prohibition ≈ P2: time-independent, monotone.
  Policy join = analyze(PolicyTemplates::JoinProhibition("d_patients"));
  EXPECT_TRUE(join.time_independent);
  EXPECT_TRUE(join.monotone);
  // Output cap ≈ P3: time-independent.
  Policy cap = analyze(PolicyTemplates::OutputRowCap("d_patients", 100, 1));
  EXPECT_TRUE(cap.time_independent);
  EXPECT_TRUE(cap.monotone);
  // Minimum support ≈ P4: time-independent, non-monotone.
  Policy support = analyze(PolicyTemplates::MinimumSupport("chartevents", 3));
  EXPECT_TRUE(support.time_independent);
  EXPECT_FALSE(support.monotone);
  // Rate limit ≈ P1-family: time-dependent, monotone.
  Policy rate = analyze(PolicyTemplates::RateLimit(500, 10, 7));
  EXPECT_FALSE(rate.time_independent);
  EXPECT_TRUE(rate.monotone);
}

TEST_F(TemplatesTest, JoinProhibitionEnforced) {
  ASSERT_TRUE(dl_->AddPolicy("nojoin", PolicyTemplates::JoinProhibition(
                                           "poe_order", {"poe_med"}))
                  .ok());
  EXPECT_TRUE(Allowed(1, "SELECT * FROM poe_order WHERE order_id = 1"));
  EXPECT_TRUE(Allowed(1,
                      "SELECT o.medication, m.dose FROM poe_order o, "
                      "poe_med m WHERE o.order_id = m.order_id"));
  EXPECT_FALSE(Allowed(1,
                       "SELECT o.medication, p.sex FROM poe_order o, "
                       "d_patients p WHERE o.subject_id = p.subject_id"));
}

TEST_F(TemplatesTest, ScopedJoinProhibitionBindsOneUser) {
  ASSERT_TRUE(
      dl_->AddPolicy("nojoin",
                     PolicyTemplates::JoinProhibition("poe_order", {}, 1))
          .ok());
  std::string join =
      "SELECT o.medication, p.sex FROM poe_order o, d_patients p "
      "WHERE o.subject_id = p.subject_id";
  EXPECT_FALSE(Allowed(1, join));
  EXPECT_TRUE(Allowed(0, join));
}

TEST_F(TemplatesTest, RateLimitEnforced) {
  ASSERT_TRUE(
      dl_->AddPolicy("rate", PolicyTemplates::RateLimit(100, 3, 5)).ok());
  int allowed = 0;
  for (int i = 0; i < 6; ++i) {
    if (Allowed(5, "SELECT * FROM d_patients WHERE subject_id = 1")) {
      ++allowed;
    }
  }
  EXPECT_EQ(allowed, 3);  // window 100 at step 10 covers all six attempts
  // Another user is unaffected.
  EXPECT_TRUE(Allowed(6, "SELECT * FROM d_patients WHERE subject_id = 1"));
}

TEST_F(TemplatesTest, RelationScopedRateLimit) {
  ASSERT_TRUE(dl_->AddPolicy("rate", PolicyTemplates::RateLimit(
                                         1000, 2, 5, "chartevents"))
                  .ok());
  // Queries not touching chartevents never count.
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(Allowed(5, "SELECT * FROM d_patients WHERE subject_id = 1"));
  }
  EXPECT_TRUE(Allowed(5, "SELECT COUNT(*) FROM chartevents"));
  EXPECT_TRUE(Allowed(5, "SELECT COUNT(*) FROM chartevents"));
  EXPECT_FALSE(Allowed(5, "SELECT COUNT(*) FROM chartevents"));
}

TEST_F(TemplatesTest, OutputRowCapEnforced) {
  ASSERT_TRUE(
      dl_->AddPolicy("cap", PolicyTemplates::OutputRowCap("d_patients", 20))
          .ok());
  EXPECT_TRUE(Allowed(1, "SELECT * FROM d_patients WHERE subject_id < 10"));
  EXPECT_FALSE(Allowed(1, "SELECT * FROM d_patients"));
}

TEST_F(TemplatesTest, MinimumSupportEnforced) {
  ASSERT_TRUE(dl_->AddPolicy("support",
                             PolicyTemplates::MinimumSupport("chartevents", 2))
                  .ok());
  // Tiny config: every patient has 4 heart-rate events → groups of 4 pass.
  EXPECT_TRUE(Allowed(1,
                      "SELECT c.subject_id, COUNT(*) FROM chartevents c "
                      "WHERE c.itemid = 211 GROUP BY c.subject_id"));
  // Selecting single tuples (support 1) violates.
  EXPECT_FALSE(Allowed(1,
                       "SELECT c.charttime FROM chartevents c "
                       "WHERE c.subject_id = 3 AND c.itemid = 211"));
}

TEST_F(TemplatesTest, GroupLicenseEnforced) {
  // groups: uid 1 is in 'X'; let two more users in for this test.
  ASSERT_TRUE(db_.FindTable("groups")
                  ->Append(Row{Value(int64_t{21}), Value("X")})
                  .ok());
  ASSERT_TRUE(db_.FindTable("groups")
                  ->Append(Row{Value(int64_t{22}), Value("X")})
                  .ok());
  ASSERT_TRUE(dl_->AddPolicy("license", PolicyTemplates::GroupLicense(
                                            "X", "d_patients", 1000, 2))
                  .ok());
  std::string q = "SELECT * FROM d_patients WHERE subject_id = 1";
  EXPECT_TRUE(Allowed(1, q));
  EXPECT_TRUE(Allowed(21, q));
  EXPECT_FALSE(Allowed(22, q));  // third distinct member in the window
  EXPECT_TRUE(Allowed(9, q));    // non-member unaffected
}

}  // namespace
}  // namespace datalawyer
