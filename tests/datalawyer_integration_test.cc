#include <gtest/gtest.h>

#include "core/datalawyer.h"
#include "workload/mimic.h"
#include "workload/paper_policies.h"
#include "workload/paper_queries.h"

namespace datalawyer {
namespace {

class DataLawyerIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(LoadMimicData(&db_, MimicConfig::Tiny()).ok());
  }

  std::unique_ptr<DataLawyer> Make(DataLawyerOptions options = {}) {
    return std::make_unique<DataLawyer>(
        &db_, UsageLog::WithStandardGenerators(),
        std::make_unique<ManualClock>(0, 10), options);
  }

  Database db_;
};

TEST_F(DataLawyerIntegrationTest, CompliantQueryPasses) {
  auto dl = Make();
  ASSERT_TRUE(dl->AddPolicy("p2", PaperPolicies::P2()).ok());
  QueryContext ctx;
  ctx.uid = 1;
  auto result = dl->Execute(PaperQueries::W1(), ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->NumRows(), 1u);
}

TEST_F(DataLawyerIntegrationTest, JoinProhibitionRejects) {
  auto dl = Make();
  ASSERT_TRUE(dl->AddPolicy("p2", PaperPolicies::P2()).ok());
  QueryContext ctx;
  ctx.uid = 1;
  // poe_order joined with d_patients: forbidden for uid 1.
  auto result = dl->Execute(
      "SELECT o.medication, p.sex FROM poe_order o, d_patients p "
      "WHERE o.subject_id = p.subject_id",
      ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsPolicyViolation())
      << result.status().ToString();

  // The same join is fine for uid 0.
  ctx.uid = 0;
  auto ok = dl->Execute(
      "SELECT o.medication, p.sex FROM poe_order o, d_patients p "
      "WHERE o.subject_id = p.subject_id",
      ctx);
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();

  // poe_order joined with poe_med is always allowed.
  ctx.uid = 1;
  auto allowed = dl->Execute(
      "SELECT o.medication, m.dose FROM poe_order o, poe_med m "
      "WHERE o.order_id = m.order_id",
      ctx);
  EXPECT_TRUE(allowed.ok()) << allowed.status().ToString();
}

TEST_F(DataLawyerIntegrationTest, OutputSizeLimitRejects) {
  auto dl = Make();
  ASSERT_TRUE(dl->AddPolicy("p3", PaperPolicies::P3(1, 50)).ok());
  QueryContext ctx;
  ctx.uid = 1;
  // Returns all 200 tiny-config patients: above the 50-tuple limit.
  auto result = dl->Execute("SELECT * FROM d_patients", ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsPolicyViolation());

  // A selective query passes.
  auto ok = dl->Execute(PaperQueries::W1(), ctx);
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST_F(DataLawyerIntegrationTest, RejectedQueryLeavesNoLogTrace) {
  auto dl = Make();
  ASSERT_TRUE(dl->AddPolicy("p3", PaperPolicies::P3(1, 50)).ok());
  QueryContext ctx;
  ctx.uid = 1;
  ASSERT_FALSE(dl->Execute("SELECT * FROM d_patients", ctx).ok());
  // Eq. 1: on violation the log reverts to L_{t-1}.
  EXPECT_EQ(dl->usage_log()->main_table("users")->NumRows(), 0u);
  EXPECT_EQ(dl->usage_log()->main_table("provenance")->NumRows(), 0u);
  EXPECT_EQ(dl->usage_log()->delta_table("users")->NumRows(), 0u);
}

TEST_F(DataLawyerIntegrationTest, SlidingWindowRateLimit) {
  auto dl = Make();
  // At most 3 queries per 100 ticks for user 7 (clock steps 10/query).
  ASSERT_TRUE(
      dl->AddPolicy("rate", PaperPolicies::RateLimitForUser(7, 100, 3)).ok());
  QueryContext ctx;
  ctx.uid = 7;
  int rejected_at = -1;
  for (int i = 0; i < 6; ++i) {
    auto result = dl->Execute(PaperQueries::W1(), ctx);
    if (!result.ok()) {
      EXPECT_TRUE(result.status().IsPolicyViolation());
      rejected_at = i;
      break;
    }
  }
  // Queries land at ts 10,20,30,40: the 4th brings the window count to 4>3.
  EXPECT_EQ(rejected_at, 3);

  // After the window slides past, the user can query again.
  for (int i = 0; i < 12; ++i) dl->clock()->Tick();
  auto later = dl->Execute(PaperQueries::W1(), ctx);
  EXPECT_TRUE(later.ok()) << later.status().ToString();
}

TEST_F(DataLawyerIntegrationTest, AllSixPaperPoliciesCompliantWorkload) {
  auto dl = Make();
  for (const auto& [name, sql] : PaperPolicies::All()) {
    ASSERT_TRUE(dl->AddPolicy(name, sql).ok()) << name;
  }
  for (int64_t uid : {0, 1}) {
    QueryContext ctx;
    ctx.uid = uid;
    for (const auto& [name, sql] : PaperQueries::All()) {
      auto result = dl->Execute(sql, ctx);
      EXPECT_TRUE(result.ok())
          << "uid=" << uid << " " << name << ": " << result.status().ToString();
    }
  }
}

TEST_F(DataLawyerIntegrationTest, PolicyAnalysisMatchesPaperTable) {
  auto dl = Make();
  for (const auto& [name, sql] : PaperPolicies::All()) {
    ASSERT_TRUE(dl->AddPolicy(name, sql).ok());
  }
  DataLawyerOptions opts;
  opts.enable_unification = false;  // inspect the raw six policies
  dl->set_options(opts);
  ASSERT_TRUE(dl->Prepare().ok());

  std::map<std::string, const Policy*> by_name;
  for (const Policy& p : dl->active_policies()) by_name[p.name] = &p;
  ASSERT_EQ(by_name.size(), 6u);

  // §5.3: policies 2, 3, 4 are time-independent; 1, 5, 6 are not.
  EXPECT_FALSE(by_name["p1"]->time_independent);
  EXPECT_TRUE(by_name["p2"]->time_independent);
  EXPECT_TRUE(by_name["p3"]->time_independent);
  EXPECT_TRUE(by_name["p4"]->time_independent);
  EXPECT_FALSE(by_name["p5"]->time_independent);
  EXPECT_FALSE(by_name["p6"]->time_independent);

  // §4.2.1: only P4's HAVING (count <= k) is non-monotone.
  EXPECT_TRUE(by_name["p1"]->monotone);
  EXPECT_TRUE(by_name["p2"]->monotone);
  EXPECT_TRUE(by_name["p3"]->monotone);
  EXPECT_FALSE(by_name["p4"]->monotone);
  EXPECT_TRUE(by_name["p5"]->monotone);
  EXPECT_TRUE(by_name["p6"]->monotone);

  // Log footprints (Table 2's description).
  EXPECT_EQ(by_name["p1"]->log_relations,
            (std::vector<std::string>{"users"}));
  EXPECT_EQ(by_name["p2"]->log_relations,
            (std::vector<std::string>{"users", "schema"}));
  EXPECT_EQ(by_name["p6"]->log_relations,
            (std::vector<std::string>{"users", "provenance"}));
}

TEST_F(DataLawyerIntegrationTest, NoOptAndOptimizedAgreeOnVerdicts) {
  // The optimizations must never change accept/reject decisions.
  for (int64_t uid : {0, 1}) {
    auto optimized = Make(DataLawyerOptions::AllOptimizations());
    auto baseline = Make(DataLawyerOptions::NoOpt());
    for (const auto& [name, sql] : PaperPolicies::All()) {
      ASSERT_TRUE(optimized->AddPolicy(name, sql).ok());
      ASSERT_TRUE(baseline->AddPolicy(name, sql).ok());
    }
    // A rate limit tight enough to trip mid-run.
    ASSERT_TRUE(optimized
                    ->AddPolicy("rate",
                                PaperPolicies::RateLimitForUser(uid, 200, 8))
                    .ok());
    ASSERT_TRUE(baseline
                    ->AddPolicy("rate",
                                PaperPolicies::RateLimitForUser(uid, 200, 8))
                    .ok());

    QueryContext ctx;
    ctx.uid = uid;
    auto queries = PaperQueries::All();
    for (int round = 0; round < 12; ++round) {
      const std::string& sql = queries[round % queries.size()].second;
      auto opt_result = optimized->Execute(sql, ctx);
      auto base_result = baseline->Execute(sql, ctx);
      EXPECT_EQ(opt_result.ok(), base_result.ok())
          << "uid=" << uid << " round=" << round
          << " optimized=" << opt_result.status().ToString()
          << " baseline=" << base_result.status().ToString();
      if (opt_result.ok() && base_result.ok()) {
        EXPECT_EQ(opt_result->NumRows(), base_result->NumRows());
      }
    }
  }
}

TEST_F(DataLawyerIntegrationTest, LogCompactionBoundsLogSize) {
  auto dl = Make();
  ASSERT_TRUE(dl->AddPolicy("p6", PaperPolicies::P6(1, 300, 1000)).ok());
  QueryContext ctx;
  ctx.uid = 1;
  size_t max_provenance = 0;
  for (int i = 0; i < 100; ++i) {
    auto result = dl->Execute(PaperQueries::W1(), ctx);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    max_provenance = std::max(
        max_provenance, dl->usage_log()->main_table("provenance")->NumRows());
  }
  // The 300-tick window at 10 ticks/query covers 30 queries; W1's
  // provenance is 1 row per query. Compaction must keep the log near the
  // window size instead of the 100 rows NoOpt would accumulate.
  EXPECT_LE(max_provenance, 35u);

  auto noopt = Make(DataLawyerOptions::NoOpt());
  ASSERT_TRUE(noopt->AddPolicy("p6", PaperPolicies::P6(1, 300, 1000)).ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(noopt->Execute(PaperQueries::W1(), ctx).ok());
  }
  EXPECT_EQ(noopt->usage_log()->main_table("provenance")->NumRows(), 100u);
}

TEST_F(DataLawyerIntegrationTest, TimeIndependentPoliciesPersistNothing) {
  auto dl = Make();
  ASSERT_TRUE(dl->AddPolicy("p3", PaperPolicies::P3()).ok());
  ASSERT_TRUE(dl->AddPolicy("p4", PaperPolicies::P4()).ok());
  QueryContext ctx;
  ctx.uid = 1;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(dl->Execute(PaperQueries::W2(), ctx).ok());
  }
  // Both policies are time-independent: the log never grows (§5.3).
  EXPECT_EQ(dl->usage_log()->main_table("users")->NumRows(), 0u);
  EXPECT_EQ(dl->usage_log()->main_table("provenance")->NumRows(), 0u);
}

TEST_F(DataLawyerIntegrationTest, InterleavedPrunesForOutOfScopeUser) {
  auto dl = Make();
  for (const auto& [name, sql] : PaperPolicies::All()) {
    ASSERT_TRUE(dl->AddPolicy(name, sql).ok());
  }
  QueryContext ctx;
  ctx.uid = 0;  // none of the uid=1 policies apply
  ASSERT_TRUE(dl->Execute(PaperQueries::W4(), ctx).ok());
  const ExecutionStats& stats = dl->last_stats();
  // For user 0, Users suffices to dismiss every policy: the expensive
  // Provenance log is neither generated for checking nor for compaction.
  EXPECT_GE(stats.policies_pruned_early, 4u);
  EXPECT_FALSE(dl->usage_log()->IsGenerated("provenance"));
  EXPECT_EQ(dl->usage_log()->main_table("provenance")->NumRows(), 0u);
}

TEST_F(DataLawyerIntegrationTest, UnificationMergesRateLimitFamily) {
  auto dl = Make();
  for (int64_t uid = 0; uid < 20; ++uid) {
    ASSERT_TRUE(dl->AddPolicy("rate" + std::to_string(uid),
                              PaperPolicies::RateLimitForUser(uid, 1000, 350))
                    .ok());
  }
  ASSERT_TRUE(dl->Prepare().ok());
  EXPECT_EQ(dl->active_policies().size(), 1u);

  QueryContext ctx;
  ctx.uid = 3;
  EXPECT_TRUE(dl->Execute(PaperQueries::W1(), ctx).ok());

  // The unified policy still enforces each member: trip user 5's limit.
  auto strict = Make();
  for (int64_t uid = 0; uid < 20; ++uid) {
    ASSERT_TRUE(strict
                    ->AddPolicy("rate" + std::to_string(uid),
                                PaperPolicies::RateLimitForUser(uid, 1000, 2))
                    .ok());
  }
  QueryContext five;
  five.uid = 5;
  int rejected_at = -1;
  for (int i = 0; i < 5; ++i) {
    if (!strict->Execute(PaperQueries::W1(), five).ok()) {
      rejected_at = i;
      break;
    }
  }
  EXPECT_EQ(rejected_at, 2);
}

TEST_F(DataLawyerIntegrationTest, DdlBypassesPolicies) {
  auto dl = Make();
  ASSERT_TRUE(dl->AddPolicy("p3", PaperPolicies::P3(1, 1)).ok());
  QueryContext ctx;
  ctx.uid = 1;
  auto result = dl->Execute("CREATE TABLE scratch (x INT)", ctx);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(dl->Execute("INSERT INTO scratch VALUES (1)", ctx).ok());
}

}  // namespace
}  // namespace datalawyer
