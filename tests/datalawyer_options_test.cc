// Property: no combination of DataLawyer's optimizations may change the
// accept/reject verdict of any query — the optimizations are performance
// transformations, not semantics changes.

#include <gtest/gtest.h>

#include <random>
#include <thread>

#include "core/datalawyer.h"
#include "workload/mimic.h"
#include "workload/paper_policies.h"
#include "workload/paper_queries.h"

namespace datalawyer {
namespace {

struct OptionCombo {
  bool compaction;
  bool time_independent;
  bool unification;
  bool preemptive;
  bool improved_partial;
  EvalStrategy strategy;

  std::string Label() const {
    std::string s;
    s += compaction ? "C" : "-";
    s += time_independent ? "T" : "-";
    s += unification ? "U" : "-";
    s += preemptive ? "P" : "-";
    s += improved_partial ? "I" : "-";
    s += strategy == EvalStrategy::kInterleaved ? "i"
         : strategy == EvalStrategy::kSerial    ? "s"
                                                : "u";
    return s;
  }
};

std::vector<OptionCombo> AllCombos() {
  std::vector<OptionCombo> combos;
  for (bool c : {false, true}) {
    for (bool t : {false, true}) {
      for (bool u : {false, true}) {
        for (bool p : {false, true}) {
          for (bool i : {false, true}) {
            for (EvalStrategy s :
                 {EvalStrategy::kInterleaved, EvalStrategy::kSerial,
                  EvalStrategy::kUnion}) {
              // Preemptive compaction and improved partials only modify
              // behaviour under their parent features; prune redundant rows
              // to keep the matrix affordable.
              if (p && !c) continue;
              if (i && s != EvalStrategy::kInterleaved) continue;
              combos.push_back(OptionCombo{c, t, u, p, i, s});
            }
          }
        }
      }
    }
  }
  return combos;
}

/// One scripted scenario exercising accepts and rejects across all six
/// paper policies plus a tight rate limit.
struct Step {
  int64_t uid;
  std::string sql;
};

std::vector<Step> Scenario(uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<Step> steps;
  auto queries = PaperQueries::All();
  for (int i = 0; i < 25; ++i) {
    steps.push_back(
        Step{int64_t(rng() % 2), queries[rng() % queries.size()].second});
  }
  // A join that trips P2 for uid 1.
  steps.push_back(Step{1,
                       "SELECT o.medication, p.sex FROM poe_order o, "
                       "d_patients p WHERE o.subject_id = p.subject_id"});
  steps.push_back(Step{0,
                       "SELECT o.medication, p.sex FROM poe_order o, "
                       "d_patients p WHERE o.subject_id = p.subject_id"});
  return steps;
}

TEST(DataLawyerOptionsMatrixTest, AllCombosAgreeOnEveryVerdict) {
  Database db;
  ASSERT_TRUE(LoadMimicData(&db, MimicConfig::Tiny()).ok());
  std::vector<Step> steps = Scenario(7);

  // Reference run: NoOpt.
  std::vector<bool> reference;
  {
    DataLawyer dl(&db, UsageLog::WithStandardGenerators(),
                  std::make_unique<ManualClock>(0, 10),
                  DataLawyerOptions::NoOpt());
    for (const auto& [name, sql] : PaperPolicies::All()) {
      ASSERT_TRUE(dl.AddPolicy(name, sql).ok());
    }
    ASSERT_TRUE(
        dl.AddPolicy("rate", PaperPolicies::RateLimitForUser(1, 500, 10))
            .ok());
    for (const Step& step : steps) {
      QueryContext ctx;
      ctx.uid = step.uid;
      reference.push_back(dl.Execute(step.sql, ctx).ok());
    }
  }
  // Both outcomes must occur or the property is vacuous.
  EXPECT_NE(std::count(reference.begin(), reference.end(), false), 0);
  EXPECT_NE(std::count(reference.begin(), reference.end(), true), 0);

  for (const OptionCombo& combo : AllCombos()) {
    DataLawyerOptions options;
    options.enable_log_compaction = combo.compaction;
    options.enable_time_independent = combo.time_independent;
    options.enable_unification = combo.unification;
    options.enable_preemptive_compaction = combo.preemptive;
    options.enable_improved_partial = combo.improved_partial;
    options.strategy = combo.strategy;

    DataLawyer dl(&db, UsageLog::WithStandardGenerators(),
                  std::make_unique<ManualClock>(0, 10), options);
    for (const auto& [name, sql] : PaperPolicies::All()) {
      ASSERT_TRUE(dl.AddPolicy(name, sql).ok());
    }
    ASSERT_TRUE(
        dl.AddPolicy("rate", PaperPolicies::RateLimitForUser(1, 500, 10))
            .ok());
    for (size_t i = 0; i < steps.size(); ++i) {
      QueryContext ctx;
      ctx.uid = steps[i].uid;
      auto result = dl.Execute(steps[i].sql, ctx);
      ASSERT_EQ(result.ok(), reference[i])
          << "combo " << combo.Label() << " step " << i << " uid "
          << steps[i].uid << ": " << result.status().ToString();
    }
  }
}

TEST(DataLawyerOptionsTest, StatsReportPhases) {
  Database db;
  ASSERT_TRUE(LoadMimicData(&db, MimicConfig::Tiny()).ok());
  DataLawyer dl(&db, UsageLog::WithStandardGenerators(),
                std::make_unique<ManualClock>(0, 10), {});
  ASSERT_TRUE(dl.AddPolicy("p6", PaperPolicies::P6()).ok());
  QueryContext ctx;
  ctx.uid = 1;
  ASSERT_TRUE(dl.Execute(PaperQueries::W2(), ctx).ok());
  const ExecutionStats& stats = dl.last_stats();
  EXPECT_GT(stats.ts, 0);
  EXPECT_GT(stats.query_exec_ms, 0.0);
  EXPECT_EQ(stats.logs_generated, 2u);  // users + provenance
  EXPECT_GT(stats.log_rows_staged, 0u);
  EXPECT_GT(stats.policies_evaluated, 0u);
  EXPECT_FALSE(stats.rejected);
  EXPECT_GE(stats.total_ms(), stats.overhead_ms());
}

TEST(DataLawyerOptionsTest, RejectionStatsCarryViolations) {
  Database db;
  ASSERT_TRUE(LoadMimicData(&db, MimicConfig::Tiny()).ok());
  DataLawyer dl(&db, UsageLog::WithStandardGenerators(),
                std::make_unique<ManualClock>(0, 10), {});
  ASSERT_TRUE(dl.AddPolicy("p3", PaperPolicies::P3(1, 10)).ok());
  QueryContext ctx;
  ctx.uid = 1;
  auto result = dl.Execute("SELECT * FROM d_patients", ctx);
  ASSERT_FALSE(result.ok());
  const ExecutionStats& stats = dl.last_stats();
  EXPECT_TRUE(stats.rejected);
  ASSERT_EQ(stats.violations.size(), 1u);
  EXPECT_NE(stats.violations[0].find("P3 violated"), std::string::npos);
}

TEST(DataLawyerOptionsTest, PerCallOverheadIsObservable) {
  Database db;
  ASSERT_TRUE(LoadMimicData(&db, MimicConfig::Tiny()).ok());
  DataLawyerOptions slow;
  slow.per_call_overhead_us = 2000;
  slow.strategy = EvalStrategy::kSerial;
  slow.enable_unification = false;  // keep 4 separate policy statements
  DataLawyer dl(&db, UsageLog::WithStandardGenerators(),
                std::make_unique<ManualClock>(0, 10), slow);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(dl.AddPolicy("rate" + std::to_string(i),
                             PaperPolicies::RateLimitForUser(i + 10))
                    .ok());
  }
  QueryContext ctx;
  ctx.uid = 0;
  ASSERT_TRUE(dl.Execute(PaperQueries::W1(), ctx).ok());
  // 4 serial policy statements × 2ms of simulated dispatch each.
  EXPECT_GE(dl.last_stats().policy_eval_ms(), 8.0);
}

TEST(DataLawyerOptionsTest, AddRemovePolicyLifecycle) {
  Database db;
  ASSERT_TRUE(LoadMimicData(&db, MimicConfig::Tiny()).ok());
  DataLawyer dl(&db);
  ASSERT_TRUE(dl.AddPolicy("p2", PaperPolicies::P2()).ok());
  EXPECT_EQ(dl.AddPolicy("p2", PaperPolicies::P2()).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(dl.NumPolicies(), 1u);

  QueryContext ctx;
  ctx.uid = 1;
  std::string join =
      "SELECT o.medication, p.sex FROM poe_order o, d_patients p "
      "WHERE o.subject_id = p.subject_id";
  EXPECT_FALSE(dl.Execute(join, ctx).ok());
  ASSERT_TRUE(dl.RemovePolicy("p2").ok());
  EXPECT_TRUE(dl.Execute(join, ctx).ok());
  EXPECT_FALSE(dl.RemovePolicy("p2").ok());

  // Policies that do not bind are rejected at registration.
  EXPECT_FALSE(dl.AddPolicy("bad", "SELECT x FROM no_such_table").ok());
  EXPECT_FALSE(dl.AddPolicy("notsql", "DROP TABLE users").ok());
}

TEST(DataLawyerOptionsTest, Section6DevicePolicy) {
  // §6: "a policy that restricts queries from 'mobile' devices to output
  // sizes of 10 tuples" — a new log-generating function plus a SQL policy.
  Database db;
  ASSERT_TRUE(LoadMimicData(&db, MimicConfig::Tiny()).ok());
  auto log = UsageLog::WithStandardGenerators();
  ASSERT_TRUE(log->RegisterGenerator(std::make_unique<DeviceLogGenerator>())
                  .ok());
  DataLawyer dl(&db, std::move(log), std::make_unique<ManualClock>(0, 10),
                {});
  ASSERT_TRUE(dl.AddPolicy("mobile-cap", R"sql(
    SELECT DISTINCT 'mobile queries may return at most 10 tuples'
    FROM devices d, provenance p
    WHERE d.ts = p.ts AND d.device = 'mobile'
    GROUP BY p.ts HAVING COUNT(DISTINCT p.otid) > 10
  )sql")
                  .ok());

  QueryContext mobile;
  mobile.uid = 1;
  mobile.extras["device"] = Value("mobile");
  QueryContext desktop;
  desktop.uid = 1;
  desktop.extras["device"] = Value("desktop");

  std::string broad = "SELECT * FROM d_patients WHERE subject_id < 50";
  EXPECT_FALSE(dl.Execute(broad, mobile).ok());
  EXPECT_TRUE(dl.Execute(broad, desktop).ok());
  EXPECT_TRUE(dl.Execute(PaperQueries::W1(), mobile).ok());
}

// Regression: negative or absurd thread counts are misconfigurations, not
// crashes. ClampThreadCounts repairs the fields in place and reports every
// adjustment; DataLawyer applies the same clamp on construction and
// set_options, so a pool can never be sized from a negative int converted
// to size_t.
TEST(DataLawyerOptionsTest, ThreadCountsAreClamped) {
  unsigned hw = std::thread::hardware_concurrency();
  int max_threads = int(hw == 0 ? 1 : hw);

  // Direct call: every out-of-range field is named in the warning.
  DataLawyerOptions bad;
  bad.policy_threads = -3;
  bad.exec_threads = 1 << 20;  // a likely unit error, far past any machine
  bad.morsel_size = 0;
  Status warn = bad.ClampThreadCounts();
  EXPECT_FALSE(warn.ok());
  EXPECT_NE(warn.ToString().find("policy_threads"), std::string::npos);
  EXPECT_NE(warn.ToString().find("exec_threads"), std::string::npos);
  EXPECT_NE(warn.ToString().find("morsel_size"), std::string::npos);
  EXPECT_EQ(bad.policy_threads, 0);
  EXPECT_EQ(bad.exec_threads, max_threads);
  EXPECT_EQ(bad.morsel_size, size_t(1));

  // In-range values pass through untouched with an OK status.
  DataLawyerOptions good;
  good.policy_threads = max_threads;
  good.exec_threads = 0;
  EXPECT_TRUE(good.ClampThreadCounts().ok());
  EXPECT_EQ(good.policy_threads, max_threads);
  EXPECT_EQ(good.exec_threads, 0);

  // Construction clamps silently and the instance still enforces.
  Database db;
  ASSERT_TRUE(LoadMimicData(&db, MimicConfig::Tiny()).ok());
  DataLawyerOptions absurd;
  absurd.policy_threads = -7;
  absurd.exec_threads = 1 << 20;
  absurd.morsel_size = 0;
  DataLawyer dl(&db, UsageLog::WithStandardGenerators(),
                std::make_unique<ManualClock>(0, 10), absurd);
  EXPECT_EQ(dl.options().policy_threads, 0);
  EXPECT_EQ(dl.options().exec_threads, max_threads);
  EXPECT_EQ(dl.options().morsel_size, size_t(1));
  ASSERT_TRUE(dl.AddPolicy("p2", PaperPolicies::P2()).ok());
  QueryContext ctx;
  ctx.uid = 1;
  EXPECT_TRUE(dl.Execute(PaperQueries::W1(), ctx).ok());

  // set_options re-applies the clamp.
  absurd.policy_threads = 1 << 20;
  absurd.exec_threads = -1;
  dl.set_options(absurd);
  EXPECT_EQ(dl.options().policy_threads, max_threads);
  EXPECT_EQ(dl.options().exec_threads, 0);
}

}  // namespace
}  // namespace datalawyer
