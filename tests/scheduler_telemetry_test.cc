// TaskScheduler runtime telemetry: per-worker stat slots, task-group
// attribution, the pull-based starvation/overload watchdog, and the
// dl_worker_*/dl_sched_* Prometheus exposition. Everything here is
// deterministic by construction (gate tasks + explicit thresholds), not
// timing-lucky: blocked workers are *held* blocked while assertions run.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/task_scheduler.h"

namespace datalawyer {
namespace {

/// A task's future becomes ready inside the body; the worker folds its
/// stat slot (executed, busy_us) just after the body returns. Joining
/// futures therefore races a few final counter updates — spin briefly
/// until the executed total settles at `n`.
void WaitForExecuted(const TaskScheduler& scheduler, uint64_t n) {
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (scheduler.Snapshot().executed < n &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
}

TEST(SchedulerTelemetryTest, GroupAttributionIsExact) {
  TaskScheduler scheduler(2);
  TaskGroupStats group;
  std::vector<std::future<void>> futures;
  {
    ScopedTaskGroup scoped(&group);
    for (int i = 0; i < 10; ++i) {
      futures.push_back(scheduler.Submit([] {}));
    }
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(group.tasks.load(), 10u);

  // Work submitted while detached (the background-compaction discipline)
  // must not leak into the group.
  futures.clear();
  {
    ScopedTaskGroup detached(nullptr);
    for (int i = 0; i < 5; ++i) {
      futures.push_back(scheduler.Submit([] {}));
    }
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(group.tasks.load(), 10u);

  // Steals charged to the group never exceed its own task count, and the
  // scheduler-wide steal counter equals the per-worker steals_taken sum.
  EXPECT_LE(group.steals.load(), group.tasks.load());
  SchedulerSnapshot snap = scheduler.Snapshot();
  EXPECT_EQ(snap.steals, scheduler.steals());
}

TEST(SchedulerTelemetryTest, NestedSubmissionsInheritTheGroup) {
  TaskScheduler scheduler(2);
  TaskGroupStats group;
  {
    ScopedTaskGroup scoped(&group);
    std::promise<std::future<void>> inner_promise;
    std::future<void> outer = scheduler.Submit([&scheduler, &inner_promise] {
      // A task spawning a task: the worker installed this task's group
      // around the body, so the nested submission is charged to it too.
      inner_promise.set_value(scheduler.Submit([] {}));
    });
    outer.get();
    inner_promise.get_future().get().get();
  }
  EXPECT_EQ(group.tasks.load(), 2u);
}

TEST(SchedulerTelemetryTest, SnapshotTotalsMatchPerWorkerSlots) {
  TaskScheduler scheduler(2);
  scheduler.set_telemetry_enabled(true);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(scheduler.Submit(
        [] { std::this_thread::sleep_for(std::chrono::microseconds(50)); }));
  }
  for (auto& f : futures) f.get();
  WaitForExecuted(scheduler, 32);

  SchedulerSnapshot snap = scheduler.Snapshot();
  ASSERT_EQ(snap.workers.size(), 2u);
  uint64_t executed = 0, steals = 0, busy = 0, wait_us = 0;
  for (const WorkerSnapshot& w : snap.workers) {
    executed += w.executed;
    steals += w.steals_taken;
    busy += w.busy_us;
    wait_us += w.queue_wait_us;
  }
  EXPECT_EQ(executed, 32u);
  EXPECT_EQ(snap.executed, executed);
  EXPECT_EQ(snap.steals, steals);
  EXPECT_EQ(snap.busy_us, busy);
  EXPECT_EQ(snap.queue_wait_us, wait_us);
  EXPECT_EQ(snap.queued, 0u);  // everything joined
  EXPECT_GT(snap.busy_us, 0u);  // 32 x 50us of timed work
  EXPECT_GE(snap.imbalance, 1.0);
}

TEST(SchedulerTelemetryTest, TelemetryClockIsGated) {
  TaskScheduler scheduler(1);
  ASSERT_FALSE(scheduler.telemetry_enabled());  // off by default
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(scheduler.Submit(
        [] { std::this_thread::sleep_for(std::chrono::microseconds(200)); }));
  }
  for (auto& f : futures) f.get();
  WaitForExecuted(scheduler, 8);
  SchedulerSnapshot snap = scheduler.Snapshot();
  EXPECT_EQ(snap.executed, 8u);  // counters are always on
  EXPECT_EQ(snap.busy_us, 0u);   // the wall-clock half is not
  EXPECT_EQ(snap.queue_wait_us, 0u);
  EXPECT_EQ(snap.queue_waits, 0u);
}

TEST(SchedulerTelemetryTest, DepthHighWatermarkAndQueueWait) {
  TaskScheduler scheduler(1);
  scheduler.set_telemetry_enabled(true);
  // Hold the only worker inside a gate task, then pile tasks behind it.
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::future<void> blocked = scheduler.Submit([gate] { gate.wait(); });
  std::vector<std::future<void>> queued;
  for (int i = 0; i < 4; ++i) {
    queued.push_back(scheduler.Submit([] {}));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  SchedulerSnapshot held = scheduler.Snapshot();
  EXPECT_GE(held.queued, 1u);  // the gate may or may not have started yet
  EXPECT_GT(held.oldest_queued_age_us, 0u);

  release.set_value();
  blocked.get();
  for (auto& f : queued) f.get();
  WaitForExecuted(scheduler, 5);

  SchedulerSnapshot snap = scheduler.Snapshot();
  ASSERT_EQ(snap.workers.size(), 1u);
  EXPECT_EQ(snap.executed, 5u);
  EXPECT_EQ(snap.queued, 0u);
  EXPECT_GE(snap.workers[0].queue_depth_hwm, 4u);
  // The piled-up tasks waited milliseconds behind the gate.
  EXPECT_GE(snap.queue_waits, 4u);
  EXPECT_GT(snap.queue_wait_us, 0u);
}

TEST(SchedulerTelemetryTest, StarvationWatchdogFires) {
  TaskScheduler scheduler(1);
  scheduler.set_telemetry_enabled(true);
  // Any queued task older than 1us trips starvation; imbalance disabled.
  scheduler.set_watchdog_thresholds(/*starvation_us=*/1,
                                    /*imbalance_ratio=*/0.0);
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::future<void> blocked = scheduler.Submit([gate] { gate.wait(); });
  std::future<void> starved = scheduler.Submit([] {});
  std::this_thread::sleep_for(std::chrono::milliseconds(2));

  SchedulerSnapshot snap = scheduler.Snapshot();
  ASSERT_GE(snap.warnings.size(), 1u);
  EXPECT_NE(snap.warnings[0].find("starvation"), std::string::npos);
  EXPECT_GE(snap.starvation_warnings, 1u);
  EXPECT_EQ(snap.imbalance_warnings, 0u);

  release.set_value();
  blocked.get();
  starved.get();

  // Drained: the condition clears but the cumulative counter survives.
  SchedulerSnapshot after = scheduler.Snapshot();
  EXPECT_TRUE(after.warnings.empty());
  EXPECT_GE(after.starvation_warnings, 1u);
}

TEST(SchedulerTelemetryTest, ImbalanceWatchdogRespectsFloorAndThreshold) {
  TaskScheduler scheduler(2);
  // Below the 64-task floor nothing fires no matter the threshold.
  scheduler.set_watchdog_thresholds(/*starvation_us=*/0,
                                    /*imbalance_ratio=*/0.5);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(scheduler.Submit([] {}));
  for (auto& f : futures) f.get();
  SchedulerSnapshot below = scheduler.Snapshot();
  EXPECT_TRUE(below.warnings.empty());
  EXPECT_EQ(below.imbalance_warnings, 0u);

  // Past the floor, max/mean >= 1.0 > 0.5 always holds, so the mechanism
  // demonstrably fires (real imbalance is scheduler-timing dependent; the
  // threshold is what we can pin).
  futures.clear();
  for (int i = 0; i < 64; ++i) futures.push_back(scheduler.Submit([] {}));
  for (auto& f : futures) f.get();
  WaitForExecuted(scheduler, 72);
  SchedulerSnapshot past = scheduler.Snapshot();
  ASSERT_GE(past.warnings.size(), 1u);
  EXPECT_NE(past.warnings[0].find("imbalance"), std::string::npos);
  EXPECT_GE(past.imbalance_warnings, 1u);
}

TEST(SchedulerTelemetryTest, ZeroThreadSchedulerSnapshots) {
  TaskScheduler scheduler(0);
  TaskGroupStats group;
  {
    ScopedTaskGroup scoped(&group);
    scheduler.Submit([] {}).get();  // inline fallback
  }
  SchedulerSnapshot snap = scheduler.Snapshot();
  EXPECT_TRUE(snap.workers.empty());
  EXPECT_EQ(snap.executed, 0u);  // inline tasks never enter a deque
  EXPECT_EQ(group.tasks.load(), 0u);
  std::string expo;
  scheduler.AppendExposition(&expo);
  EXPECT_NE(expo.find("dl_sched_tasks_total 0"), std::string::npos);
}

TEST(SchedulerTelemetryTest, ExpositionNamesEverySeries) {
  TaskScheduler scheduler(2);
  scheduler.set_telemetry_enabled(true);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 6; ++i) futures.push_back(scheduler.Submit([] {}));
  for (auto& f : futures) f.get();
  WaitForExecuted(scheduler, 6);

  std::string expo;
  scheduler.AppendExposition(&expo);
  for (const char* series :
       {"dl_worker_tasks_total{worker=\"0\"}",
        "dl_worker_tasks_total{worker=\"1\"}",
        "dl_worker_steals_taken_total{worker=\"0\"}",
        "dl_worker_steals_given_total{worker=\"0\"}",
        "dl_worker_queue_wait_us_total{worker=\"0\"}",
        "dl_worker_busy_us_total{worker=\"0\"}",
        "dl_worker_idle_us_total{worker=\"0\"}",
        "dl_worker_queue_depth{worker=\"0\"}",
        "dl_worker_queue_depth_hwm{worker=\"0\"}", "dl_sched_tasks_total ",
        "dl_sched_steals_total ", "dl_sched_queue_wait_us_total ",
        "dl_sched_busy_us_total ", "dl_sched_idle_us_total ",
        "dl_sched_queued ", "dl_sched_oldest_queued_age_us ",
        "dl_sched_imbalance_ratio ", "dl_sched_starvation_warnings_total ",
        "dl_sched_imbalance_warnings_total "}) {
    EXPECT_NE(expo.find(series), std::string::npos) << series;
  }

  // The per-worker executed series sum to the dl_sched total by
  // construction (same snapshot): spot-check the total line's value.
  SchedulerSnapshot snap = scheduler.Snapshot();
  uint64_t sum = 0;
  for (const WorkerSnapshot& w : snap.workers) sum += w.executed;
  EXPECT_EQ(snap.executed, sum);
  EXPECT_NE(expo.find("dl_sched_tasks_total " + std::to_string(sum)),
            std::string::npos);
}

}  // namespace
}  // namespace datalawyer
