// End-to-end coverage for UNION policies — one registered policy whose
// members guard different clauses — through analysis, interleaved
// evaluation, witnesses, and compaction.

#include <gtest/gtest.h>

#include "core/datalawyer.h"
#include "workload/mimic.h"
#include "workload/paper_queries.h"

namespace datalawyer {
namespace {

class UnionPolicyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(LoadMimicData(&db_, MimicConfig::Tiny()).ok());
    dl_ = std::make_unique<DataLawyer>(&db_,
                                       UsageLog::WithStandardGenerators(),
                                       std::make_unique<ManualClock>(0, 10),
                                       DataLawyerOptions{});
  }

  bool Allowed(int64_t uid, const std::string& sql) {
    QueryContext ctx;
    ctx.uid = uid;
    auto result = dl_->Execute(sql, ctx);
    EXPECT_TRUE(result.ok() || result.status().IsPolicyViolation())
        << result.status().ToString();
    return result.ok();
  }

  Database db_;
  std::unique_ptr<DataLawyer> dl_;
};

TEST_F(UnionPolicyTest, EitherMemberTriggersRejection) {
  // Two vendor clauses in one policy: poe_order may not be joined with
  // d_patients, and chartevents may never be aggregated by uid 1.
  ASSERT_TRUE(dl_->AddPolicy("combined", R"sql(
    SELECT DISTINCT 'clause A: poe_order x d_patients prohibited'
    FROM schema s1, schema s2
    WHERE s1.ts = s2.ts AND s1.irid = 'poe_order'
      AND s2.irid = 'd_patients'
    UNION
    SELECT DISTINCT 'clause B: no aggregates over chartevents for uid 1'
    FROM users u, schema s
    WHERE u.ts = s.ts AND u.uid = 1 AND s.irid = 'chartevents'
      AND s.agg = TRUE
  )sql")
                  .ok());

  EXPECT_TRUE(Allowed(1, PaperQueries::W1()));
  // Clause A fires regardless of user.
  EXPECT_FALSE(Allowed(0,
                       "SELECT o.medication, p.sex FROM poe_order o, "
                       "d_patients p WHERE o.subject_id = p.subject_id"));
  // Clause B fires only for uid 1.
  std::string agg =
      "SELECT c.subject_id, COUNT(*) FROM chartevents c "
      "WHERE c.subject_id < 10 GROUP BY c.subject_id";
  EXPECT_FALSE(Allowed(1, agg));
  EXPECT_TRUE(Allowed(0, agg));
  // The violation message names the clause that fired.
  QueryContext ctx;
  ctx.uid = 1;
  auto result = dl_->Execute(agg, ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("clause B"), std::string::npos);
}

TEST_F(UnionPolicyTest, UnionPolicyIsTimeIndependentWhenMembersAre) {
  ASSERT_TRUE(dl_->AddPolicy("combined", R"sql(
    SELECT DISTINCT 'a' FROM schema s1, schema s2
    WHERE s1.ts = s2.ts AND s1.irid = 'poe_order' AND s2.irid = 'd_patients'
    UNION
    SELECT DISTINCT 'b' FROM schema s WHERE s.irid = 'groups'
  )sql")
                  .ok());
  ASSERT_TRUE(dl_->Prepare().ok());
  ASSERT_EQ(dl_->active_policies().size(), 1u);
  EXPECT_TRUE(dl_->active_policies()[0].time_independent);
  EXPECT_TRUE(dl_->active_policies()[0].monotone);

  // Time-independent union policy → nothing persists.
  QueryContext ctx;
  ctx.uid = 1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(dl_->Execute(PaperQueries::W1(), ctx).ok());
  }
  EXPECT_EQ(dl_->usage_log()->main_table("schema")->NumRows(), 0u);
}

TEST_F(UnionPolicyTest, MixedWindowUnionCompactsPerMember) {
  // One windowed member + one time-independent member: the windowed
  // member's witness bounds the log.
  ASSERT_TRUE(dl_->AddPolicy("mixed", R"sql(
    SELECT DISTINCT 'rate' FROM users u, clock c
    WHERE u.uid = 1 AND u.ts > c.ts - 200
    HAVING COUNT(DISTINCT u.ts) > 50
    UNION
    SELECT DISTINCT 'join ban' FROM schema s1, schema s2
    WHERE s1.ts = s2.ts AND s1.irid = 'poe_order' AND s2.irid = 'd_patients'
  )sql")
                  .ok());
  QueryContext ctx;
  ctx.uid = 1;
  size_t max_users = 0;
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(dl_->Execute(PaperQueries::W1(), ctx).ok());
    max_users =
        std::max(max_users, dl_->usage_log()->main_table("users")->NumRows());
  }
  // Window of 200 ticks at 10/query = at most ~20 live entries.
  EXPECT_LE(max_users, 25u);
  EXPECT_GT(max_users, 5u);
}

TEST_F(UnionPolicyTest, VerdictsMatchNoOptBaseline) {
  DataLawyer baseline(&db_, UsageLog::WithStandardGenerators(),
                      std::make_unique<ManualClock>(0, 10),
                      DataLawyerOptions::NoOpt());
  const char* policy = R"sql(
    SELECT DISTINCT 'w' FROM users u, clock c
    WHERE u.uid = 1 AND u.ts > c.ts - 300
    HAVING COUNT(DISTINCT u.ts) > 5
    UNION
    SELECT DISTINCT 'j' FROM schema s1, schema s2
    WHERE s1.ts = s2.ts AND s1.irid = 'poe_order'
      AND s2.irid != 'poe_order' AND s2.irid != 'poe_med'
  )sql";
  ASSERT_TRUE(dl_->AddPolicy("u", policy).ok());
  ASSERT_TRUE(baseline.AddPolicy("u", policy).ok());

  const char* queries[] = {
      "SELECT * FROM d_patients WHERE subject_id = 1",
      "SELECT o.medication, p.sex FROM poe_order o, d_patients p "
      "WHERE o.subject_id = p.subject_id",
      "SELECT o.medication, m.dose FROM poe_order o, poe_med m "
      "WHERE o.order_id = m.order_id",
  };
  int rejections = 0;
  for (int i = 0; i < 30; ++i) {
    QueryContext ctx;
    ctx.uid = i % 2;
    const char* sql = queries[i % 3];
    bool a = dl_->Execute(sql, ctx).ok();
    bool b = baseline.Execute(sql, ctx).ok();
    ASSERT_EQ(a, b) << "step " << i;
    if (!a) ++rejections;
  }
  EXPECT_GT(rejections, 0);
}

}  // namespace
}  // namespace datalawyer
