#include <gtest/gtest.h>

#include <random>

#include "core/datalawyer.h"
#include "policy/witness.h"
#include "sql/parser.h"
#include "workload/mimic.h"
#include "workload/paper_policies.h"
#include "workload/paper_queries.h"

namespace datalawyer {
namespace {

class WitnessBuilderTest : public ::testing::Test {
 protected:
  void SetUp() override { log_ = UsageLog::WithStandardGenerators(); }

  WitnessSet Build(const std::string& sql) {
    auto stmt = Parser::ParseSelect(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    stmts_.push_back(std::move(stmt).value());
    WitnessBuilder builder(log_.get());
    auto result = builder.Build(*stmts_.back());
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? std::move(result).value() : WitnessSet{};
  }

  std::unique_ptr<UsageLog> log_;
  std::vector<std::unique_ptr<SelectStmt>> stmts_;
};

TEST_F(WitnessBuilderTest, PaperExample43_P2bUsersWitness) {
  // Example 4.3: P2b's witness for Users keeps windowed Student queries on
  // patients. Our P2b has HAVING → the Eq. (2) full-query witness.
  WitnessSet set = Build(
      "SELECT DISTINCT 'e' FROM users u, schema s, groups g, clock c "
      "WHERE u.ts = s.ts AND s.irid = 'patients' AND u.uid = g.uid "
      "AND g.gid = 'Student' AND u.ts > c.ts - 1209600 "
      "HAVING COUNT(DISTINCT u.uid) > 10");
  ASSERT_TRUE(set.per_relation.count("users"));
  const RelationWitness& users = set.per_relation.at("users");
  EXPECT_FALSE(users.full_fallback);
  ASSERT_EQ(users.queries.size(), 1u);
  std::string q = users.queries[0]->ToString();
  // SELECT DISTINCT u.* over u, its ts-neighborhood s, and groups.
  EXPECT_NE(q.find("SELECT DISTINCT u.*"), std::string::npos);
  EXPECT_NE(q.find("users u"), std::string::npos);
  EXPECT_NE(q.find("schema s"), std::string::npos);
  EXPECT_NE(q.find("groups g"), std::string::npos);
  EXPECT_EQ(q.find("clock"), std::string::npos);  // transformed away
  // The window u.ts > c.ts - W becomes dl_now.ts + 1 < u.ts + W.
  EXPECT_NE(q.find("dl_now"), std::string::npos);
  EXPECT_NE(q.find("((dl_now.ts + 1) < (u.ts + 1209600))"),
            std::string::npos);
  // Schema's witness exists symmetrically.
  ASSERT_TRUE(set.per_relation.count("schema"));
  std::string sq = set.per_relation.at("schema").queries[0]->ToString();
  EXPECT_NE(sq.find("SELECT DISTINCT s.*"), std::string::npos);
}

TEST_F(WitnessBuilderTest, PaperExample44_SelfJoinYieldsUnionOfOccurrences) {
  // P1_IND-style: self-join of Schema pinned to the current clock.
  WitnessSet set = Build(
      "SELECT DISTINCT 'e' FROM schema p1, schema p2, clock c "
      "WHERE p1.ts = c.ts AND p2.ts = c.ts AND p1.ts = p2.ts "
      "AND p1.irid = 'navteq' AND p2.irid != 'navteq'");
  ASSERT_TRUE(set.per_relation.count("schema"));
  const RelationWitness& witness = set.per_relation.at("schema");
  EXPECT_FALSE(witness.full_fallback);
  // One witness query per occurrence.
  ASSERT_EQ(witness.queries.size(), 2u);
  std::string q0 = witness.queries[0]->ToString();
  std::string q1 = witness.queries[1]->ToString();
  EXPECT_NE(q0.find("p1.*"), std::string::npos);
  EXPECT_NE(q1.find("p2.*"), std::string::npos);
  // Boolean aggregate-free policy → DISTINCT ON witnesses (Eq. 3).
  EXPECT_NE(q0.find("DISTINCT ON"), std::string::npos);
  // The clock equality became dl_now.ts + 1 <= p1.ts, false for every
  // current tuple — this witness retains nothing, as the paper notes.
  EXPECT_NE(q0.find("((dl_now.ts + 1) <= p1.ts)"), std::string::npos);
}

TEST_F(WitnessBuilderTest, NoClockNoHavingUsesDistinctOnJoinAttrs) {
  WitnessSet set = Build(
      "SELECT DISTINCT 'e' FROM users u, groups g "
      "WHERE u.uid = g.uid AND g.gid = 'X'");
  const RelationWitness& users = set.per_relation.at("users");
  ASSERT_EQ(users.queries.size(), 1u);
  std::string q = users.queries[0]->ToString();
  EXPECT_NE(q.find("DISTINCT ON (u.uid)"), std::string::npos);
  EXPECT_NE(q.find("(g.gid = 'X')"), std::string::npos);
}

TEST_F(WitnessBuilderTest, NoJoinAttrsFallsBackToConstantDistinctOn) {
  WitnessSet set = Build(
      "SELECT DISTINCT 'e' FROM users u WHERE u.uid = 7");
  std::string q = set.per_relation.at("users").queries[0]->ToString();
  // Any single satisfying tuple witnesses the policy.
  EXPECT_NE(q.find("DISTINCT ON (1)"), std::string::npos);
}

TEST_F(WitnessBuilderTest, NeighborhoodExcludesUnjoinedLogRelations) {
  // users and provenance do NOT join on ts here: each witness stands alone.
  WitnessSet set = Build(
      "SELECT DISTINCT 'e' FROM users u, provenance p "
      "WHERE u.uid = 1 AND p.irid = 'x'");
  std::string uq = set.per_relation.at("users").queries[0]->ToString();
  EXPECT_EQ(uq.find("provenance"), std::string::npos);
  std::string pq = set.per_relation.at("provenance").queries[0]->ToString();
  EXPECT_EQ(pq.find("users"), std::string::npos);
}

TEST_F(WitnessBuilderTest, ClockInequalityForcesFullFallback) {
  WitnessSet set = Build(
      "SELECT DISTINCT 'e' FROM users u, clock c WHERE u.ts != c.ts");
  EXPECT_TRUE(set.per_relation.at("users").full_fallback);
}

TEST_F(WitnessBuilderTest, UnsupportedClockShapeForcesFullFallback) {
  WitnessSet set = Build(
      "SELECT DISTINCT 'e' FROM users u, clock c WHERE u.ts > c.ts * 2");
  EXPECT_TRUE(set.per_relation.at("users").full_fallback);
}

TEST_F(WitnessBuilderTest, UnqualifiedColumnsForceFullFallback) {
  WitnessSet set = Build("SELECT DISTINCT 'e' FROM users u WHERE uid = 1");
  EXPECT_TRUE(set.per_relation.at("users").full_fallback);
}

TEST_F(WitnessBuilderTest, ClockArithmeticIsolation) {
  // u.ts > c.ts - W and W + c.ts <= u.ts exercise term motion both ways.
  WitnessSet set = Build(
      "SELECT DISTINCT 'e' FROM users u, clock c "
      "WHERE u.ts > c.ts - 100 AND 50 + c.ts <= u.ts AND u.uid = 1");
  const RelationWitness& users = set.per_relation.at("users");
  ASSERT_FALSE(users.full_fallback);
  std::string q = users.queries[0]->ToString();
  // c.ts < u.ts + 100 → dl_now+1 < u.ts + 100
  EXPECT_NE(q.find("((dl_now.ts + 1) < (u.ts + 100))"), std::string::npos);
  // 50 + c.ts <= u.ts ⇒ c.ts <= u.ts - 50 → dl_now+1 <= u.ts - 50
  EXPECT_NE(q.find("((dl_now.ts + 1) <= (u.ts - 50))"), std::string::npos);
}

TEST_F(WitnessBuilderTest, DroppedLowerBoundStillCountsAsJoinAttr) {
  // c.ts > u.ts - W is dropped by Lemma 4.3, but u.ts still lands in the
  // DISTINCT ON attributes (conservatively).
  WitnessSet set = Build(
      "SELECT DISTINCT 'e' FROM users u, clock c WHERE c.ts > u.ts - 100");
  const RelationWitness& users = set.per_relation.at("users");
  ASSERT_FALSE(users.full_fallback);
  std::string q = users.queries[0]->ToString();
  EXPECT_NE(q.find("DISTINCT ON (u.ts)"), std::string::npos);
  EXPECT_EQ(q.find("dl_now"), std::string::npos);  // predicate dropped
}

TEST_F(WitnessBuilderTest, SubqueriesCompactedSeparately) {
  WitnessSet set = Build(
      "SELECT DISTINCT 'e' FROM (SELECT p.itid AS itid FROM provenance p "
      "WHERE p.irid = 'd_patients') q, users u WHERE u.uid = 1");
  // The subquery contributes a provenance witness; the outer query a users
  // witness.
  ASSERT_TRUE(set.per_relation.count("provenance"));
  ASSERT_TRUE(set.per_relation.count("users"));
  std::string pq = set.per_relation.at("provenance").queries[0]->ToString();
  EXPECT_NE(pq.find("(p.irid = 'd_patients')"), std::string::npos);
}

TEST_F(WitnessBuilderTest, MergeFromUnionsQueriesAndFallbacks) {
  WitnessSet a = Build("SELECT DISTINCT 'e' FROM users u WHERE u.uid = 1");
  WitnessSet b = Build("SELECT DISTINCT 'e' FROM users u WHERE uid = 2");
  ASSERT_FALSE(a.per_relation.at("users").full_fallback);
  a.MergeFrom(std::move(b));
  EXPECT_TRUE(a.per_relation.at("users").full_fallback);
  EXPECT_EQ(a.per_relation.at("users").queries.size(), 1u);
}

// ---------------------------------------------------------------------------
// Soundness property: under any mix of time-dependent policies and any query
// stream, the compacting system must produce exactly the same accept/reject
// verdicts as the non-compacting baseline — now and for every future query
// (absolute witnesses, Def. 4.1).
// ---------------------------------------------------------------------------

struct SoundnessCase {
  uint64_t seed;
  int rate_window;
  int rate_threshold;
};

class CompactionSoundnessTest
    : public ::testing::TestWithParam<SoundnessCase> {};

TEST_P(CompactionSoundnessTest, VerdictsMatchNonCompactingBaseline) {
  const SoundnessCase& param = GetParam();
  Database db;
  ASSERT_TRUE(LoadMimicData(&db, MimicConfig::Tiny()).ok());

  DataLawyerOptions compacting = DataLawyerOptions::AllOptimizations();
  DataLawyerOptions baseline = DataLawyerOptions::AllOptimizations();
  baseline.enable_log_compaction = false;

  auto make = [&](DataLawyerOptions options) {
    auto dl = std::make_unique<DataLawyer>(
        &db, UsageLog::WithStandardGenerators(),
        std::make_unique<ManualClock>(0, 10), options);
    EXPECT_TRUE(dl->AddPolicy("p1", PaperPolicies::P1(200, "X", 1)).ok());
    EXPECT_TRUE(dl->AddPolicy("p5", PaperPolicies::P5(1, 500, 150)).ok());
    EXPECT_TRUE(dl->AddPolicy("p6", PaperPolicies::P6(1, 300, 40)).ok());
    EXPECT_TRUE(dl->AddPolicy("rate",
                              PaperPolicies::RateLimitForUser(
                                  2, param.rate_window, param.rate_threshold))
                    .ok());
    return dl;
  };
  auto with_compaction = make(compacting);
  auto without_compaction = make(baseline);

  std::mt19937_64 rng(param.seed);
  auto queries = PaperQueries::All();
  int rejections = 0;
  for (int step = 0; step < 60; ++step) {
    QueryContext ctx;
    ctx.uid = int64_t(rng() % 3);
    const std::string& sql = queries[rng() % queries.size()].second;
    auto a = with_compaction->Execute(sql, ctx);
    auto b = without_compaction->Execute(sql, ctx);
    ASSERT_EQ(a.ok(), b.ok())
        << "step " << step << " uid " << ctx.uid << "\n  compacted: "
        << a.status().ToString() << "\n  baseline:  "
        << b.status().ToString();
    if (!a.ok()) {
      ++rejections;
      EXPECT_TRUE(a.status().IsPolicyViolation());
    }
  }
  // The scenario is tuned so both paths (accept and reject) are exercised.
  EXPECT_GT(rejections, 0);

  // The compacted log must actually be smaller than the full history.
  size_t compacted_rows = 0, full_rows = 0;
  for (const char* rel : {"users", "schema", "provenance"}) {
    compacted_rows += with_compaction->usage_log()->main_table(rel)->NumRows();
    full_rows += without_compaction->usage_log()->main_table(rel)->NumRows();
  }
  EXPECT_LT(compacted_rows, full_rows);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, CompactionSoundnessTest,
    ::testing::Values(SoundnessCase{1, 400, 5}, SoundnessCase{2, 400, 5},
                      SoundnessCase{3, 200, 3}, SoundnessCase{4, 600, 8},
                      SoundnessCase{5, 300, 4}, SoundnessCase{99, 500, 6}));

}  // namespace
}  // namespace datalawyer
