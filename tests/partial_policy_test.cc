#include <gtest/gtest.h>

#include "policy/partial_policy.h"
#include "sql/parser.h"
#include "workload/paper_policies.h"

namespace datalawyer {
namespace {

class PartialPolicyTest : public ::testing::Test {
 protected:
  void SetUp() override { log_ = UsageLog::WithStandardGenerators(); }

  std::string Partial(const std::string& sql,
                      const std::set<std::string>& available) {
    auto stmt = Parser::ParseSelect(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    return BuildPartialPolicy(**stmt, *log_, available)->ToString();
  }

  std::unique_ptr<UsageLog> log_;
};

TEST_F(PartialPolicyTest, PaperExample45) {
  // P2b reduced to S = {} and S = {users}: the P2d / P2c ladder.
  std::string p2b =
      "SELECT DISTINCT 1 FROM users u, schema s, groups g, clock c "
      "WHERE u.ts = s.ts AND s.irid = 'patients' AND u.uid = g.uid "
      "AND g.gid = 'Student' AND u.ts > c.ts - 1209600 "
      "HAVING COUNT(DISTINCT u.uid) > 10";

  // S = {}: only Groups and Clock remain; HAVING (references u) dropped.
  std::string p2d = Partial(p2b, {});
  EXPECT_EQ(p2d.find("users"), std::string::npos);
  EXPECT_EQ(p2d.find("schema"), std::string::npos);
  EXPECT_NE(p2d.find("groups"), std::string::npos);
  EXPECT_NE(p2d.find("clock"), std::string::npos);
  EXPECT_NE(p2d.find("(g.gid = 'Student')"), std::string::npos);
  EXPECT_EQ(p2d.find("HAVING"), std::string::npos);

  // S = {users}: schema dropped; user-side predicates and HAVING kept.
  std::string p2c = Partial(p2b, {"users"});
  EXPECT_NE(p2c.find("users"), std::string::npos);
  EXPECT_EQ(p2c.find("schema"), std::string::npos);
  EXPECT_NE(p2c.find("(u.uid = g.uid)"), std::string::npos);
  EXPECT_NE(p2c.find("HAVING"), std::string::npos);
  EXPECT_NE(p2c.find("count(DISTINCT u.uid)"), std::string::npos);
  EXPECT_EQ(p2c.find("s.irid"), std::string::npos);
  EXPECT_EQ(p2c.find("(u.ts = s.ts)"), std::string::npos);

  // S covers everything: unchanged.
  std::string full = Partial(p2b, {"users", "schema"});
  EXPECT_NE(full.find("schema"), std::string::npos);
  EXPECT_NE(full.find("(u.ts = s.ts)"), std::string::npos);
}

TEST_F(PartialPolicyTest, SelectItemsNeverEmpty) {
  std::string partial = Partial(
      "SELECT DISTINCT p.itid FROM provenance p WHERE p.irid = 'x'", {});
  // Everything referenced p; a probe literal takes the select list's place.
  EXPECT_NE(partial.find("SELECT DISTINCT 1 AS probe"), std::string::npos);
  EXPECT_EQ(partial.find("provenance"), std::string::npos);
}

TEST_F(PartialPolicyTest, GroupByAndDistinctOnPruned) {
  std::string partial = Partial(
      "SELECT DISTINCT ON (p.ts, u.uid) u.uid FROM users u, provenance p "
      "WHERE u.ts = p.ts GROUP BY p.ts, u.uid",
      {"users"});
  EXPECT_EQ(partial.find("p.ts"), std::string::npos);
  EXPECT_NE(partial.find("u.uid"), std::string::npos);

  // All DISTINCT ON keys removed → plain DISTINCT.
  std::string degraded = Partial(
      "SELECT DISTINCT ON (p.ts) u.uid FROM users u, provenance p "
      "WHERE u.ts = p.ts",
      {"users"});
  EXPECT_NE(degraded.find("SELECT DISTINCT "), std::string::npos);
  EXPECT_EQ(degraded.find("DISTINCT ON"), std::string::npos);
}

TEST_F(PartialPolicyTest, SubqueryWithUnavailableLogDroppedWhole) {
  std::string partial = Partial(
      "SELECT DISTINCT 'e' FROM users u, "
      "(SELECT p.ts AS ts FROM provenance p) q WHERE u.ts = q.ts",
      {"users"});
  EXPECT_EQ(partial.find("provenance"), std::string::npos);
  EXPECT_EQ(partial.find("q.ts"), std::string::npos);
  EXPECT_NE(partial.find("users"), std::string::npos);

  // With provenance available the subquery survives.
  std::string kept = Partial(
      "SELECT DISTINCT 'e' FROM users u, "
      "(SELECT p.ts AS ts FROM provenance p) q WHERE u.ts = q.ts",
      {"users", "provenance"});
  EXPECT_NE(kept.find("provenance"), std::string::npos);
}

TEST_F(PartialPolicyTest, UnqualifiedRefsDroppedConservatively) {
  // `uid` is unqualified; once anything is removed we cannot attribute it,
  // so the conjunct is dropped (enlarging the result is sound).
  std::string partial = Partial(
      "SELECT DISTINCT 'e' FROM users u, provenance p "
      "WHERE u.ts = p.ts AND uid = 5",
      {});
  EXPECT_EQ(partial.find("uid"), std::string::npos);
}

TEST_F(PartialPolicyTest, UnionMembersRewrittenIndependently) {
  std::string partial = Partial(
      "SELECT DISTINCT 'a' FROM users u WHERE u.uid = 1 "
      "UNION SELECT DISTINCT 'b' FROM provenance p WHERE p.irid = 'x'",
      {"users"});
  EXPECT_NE(partial.find("'a'"), std::string::npos);
  EXPECT_NE(partial.find("(u.uid = 1)"), std::string::npos);
  EXPECT_EQ(partial.find("provenance"), std::string::npos);
  EXPECT_NE(partial.find("UNION"), std::string::npos);
}

TEST_F(PartialPolicyTest, NoChangeWhenAllAvailable) {
  for (const auto& [name, sql] :
       std::vector<std::pair<std::string, std::string>>{
           {"p1", PaperPolicies::P1()},
           {"p5", PaperPolicies::P5()},
           {"p6", PaperPolicies::P6()}}) {
    auto stmt = Parser::ParseSelect(sql);
    ASSERT_TRUE(stmt.ok());
    std::string partial =
        BuildPartialPolicy(**stmt, *log_, {"users", "schema", "provenance"})
            ->ToString();
    EXPECT_EQ(partial, (*stmt)->ToString()) << name;
  }
}

}  // namespace
}  // namespace datalawyer
