// Decision provenance: every checked query leaves a DecisionRecord — the
// verdict, per-policy outcomes diffed from the attribution map, the witness
// tuples behind a rejection, phase timings, and plan-cache behaviour — in a
// ring-bounded DecisionStore, queryable as the dl_decisions relation.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/datalawyer.h"
#include "core/decision.h"
#include "workload/mimic.h"
#include "workload/paper_policies.h"

namespace datalawyer {
namespace {

DecisionRecord MakeRecord(uint64_t id, const std::string& sql,
                          bool admitted) {
  DecisionRecord r;
  r.id = id;
  r.ts = int64_t(id) * 10;
  r.query_sql = sql;
  r.admitted = admitted;
  return r;
}

TEST(DecisionStoreTest, RingEvictsOldestAndCountsDrops) {
  DecisionStore store(3);
  for (uint64_t i = 1; i <= 5; ++i) {
    store.Append(MakeRecord(i, "q" + std::to_string(i), true));
  }
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.total_appended(), 5u);
  EXPECT_EQ(store.dropped(), 2u);
  EXPECT_EQ(store.records().front().query_sql, "q3");
  EXPECT_EQ(store.records().back().query_sql, "q5");
}

TEST(DecisionStoreTest, NextIdIsMonotonicFromOne) {
  DecisionStore store(4);
  EXPECT_EQ(store.NextId(), 1u);
  EXPECT_EQ(store.NextId(), 2u);
  EXPECT_EQ(store.NextId(), 3u);
}

TEST(DecisionStoreTest, FindByIdResolvesLiveAndEvictedIds) {
  DecisionStore store(2);
  for (uint64_t i = 1; i <= 4; ++i) {
    store.Append(MakeRecord(i, "q" + std::to_string(i), true));
  }
  ASSERT_NE(store.FindById(3), nullptr);
  EXPECT_EQ(store.FindById(3)->query_sql, "q3");
  EXPECT_EQ(store.FindById(1), nullptr);  // evicted
  EXPECT_EQ(store.FindById(99), nullptr);
}

TEST(DecisionStoreTest, TailReturnsMostRecentOldestFirst) {
  DecisionStore store(10);
  for (uint64_t i = 1; i <= 6; ++i) {
    store.Append(MakeRecord(i, "q" + std::to_string(i), true));
  }
  auto tail = store.Tail(2);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].query_sql, "q5");
  EXPECT_EQ(tail[1].query_sql, "q6");
}

TEST(DecisionStoreTest, ToJsonEscapesAndStructures) {
  DecisionStore store(4);
  DecisionRecord r = MakeRecord(1, "SELECT 'tab\there'", false);
  r.policy = "p2";
  r.messages = {"no \"mixing\""};
  DecisionWitness w;
  w.relation = "provenance";
  w.row_id = 7;
  w.from_increment = true;
  w.ts = 30;
  w.values = {"30", "1"};
  r.witnesses.push_back(w);
  store.Append(std::move(r));
  std::string json = store.ToJson();
  EXPECT_NE(json.find("\"verdict\":\"reject\""), std::string::npos);
  EXPECT_NE(json.find("\\t"), std::string::npos);
  EXPECT_NE(json.find("\\\"mixing\\\""), std::string::npos);
  EXPECT_NE(json.find("\"relation\":\"provenance\""), std::string::npos);
  EXPECT_NE(json.find("\"from_increment\":true"), std::string::npos);
}

class DecisionIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(LoadMimicData(&db_, MimicConfig::Tiny()).ok());
  }

  std::unique_ptr<DataLawyer> Make(DataLawyerOptions options) {
    auto dl = std::make_unique<DataLawyer>(
        &db_, UsageLog::WithStandardGenerators(),
        std::make_unique<ManualClock>(0, 10), options);
    for (const auto& [name, sql] : PaperPolicies::All()) {
      EXPECT_TRUE(dl->AddPolicy(name, sql).ok());
    }
    return dl;
  }

  Database db_;
  // Admitted for uid 0; trips P2 for uid 1 (medication joined with sex).
  const std::string join_sql_ =
      "SELECT o.medication, p.sex FROM poe_order o, "
      "d_patients p WHERE o.subject_id = p.subject_id";
};

TEST_F(DecisionIntegrationTest, RecordsVerdictOutcomesAndTimings) {
  auto dl = Make({});
  QueryContext ctx;
  ctx.uid = 0;
  ASSERT_TRUE(dl->Execute(join_sql_, ctx).ok());
  ctx.uid = 1;
  ASSERT_TRUE(dl->Execute(join_sql_, ctx).status().IsPolicyViolation());
  ASSERT_TRUE(dl->WouldAllow(join_sql_, ctx).IsPolicyViolation());

  const DecisionStore& store = dl->decision_store();
  ASSERT_EQ(store.size(), 3u);

  const DecisionRecord& admit = store.records()[0];
  EXPECT_EQ(admit.id, 1u);
  EXPECT_TRUE(admit.admitted);
  EXPECT_FALSE(admit.probe);
  EXPECT_STREQ(admit.verdict(), "accept");
  EXPECT_EQ(admit.query_sql, join_sql_);
  EXPECT_NE(admit.query_hash, 0u);
  EXPECT_TRUE(admit.policy.empty());
  EXPECT_TRUE(admit.witnesses.empty());
  EXPECT_GT(admit.total_us(), 0.0);
  EXPECT_GT(admit.policy_eval_us, 0.0);
  // Every active policy reports an outcome; none rejected this query.
  ASSERT_GE(admit.outcomes.size(), dl->active_policies().size());
  for (const PolicyOutcome& o : admit.outcomes) {
    EXPECT_NE(o.outcome, "violated") << o.policy;
  }

  const DecisionRecord& reject = store.records()[1];
  EXPECT_EQ(reject.id, 2u);
  EXPECT_FALSE(reject.admitted);
  EXPECT_EQ(reject.policy, "p2");
  EXPECT_FALSE(reject.messages.empty());
  bool saw_violated = false;
  for (const PolicyOutcome& o : reject.outcomes) {
    if (o.policy == "p2") {
      EXPECT_EQ(o.outcome, "violated");
      EXPECT_GT(o.evaluations, 0u);
      saw_violated = true;
    }
  }
  EXPECT_TRUE(saw_violated);
  EXPECT_FALSE(reject.witnesses.empty());

  const DecisionRecord& probe = store.records()[2];
  EXPECT_EQ(probe.id, 3u);
  EXPECT_TRUE(probe.probe);
  EXPECT_FALSE(probe.admitted);
}

TEST_F(DecisionIntegrationTest, WitnessRowsComeFromTheUsageLog) {
  auto dl = Make({});
  QueryContext ctx;
  ctx.uid = 1;
  ASSERT_TRUE(dl->Execute(join_sql_, ctx).status().IsPolicyViolation());

  const DecisionRecord& reject = dl->decision_store().records().back();
  ASSERT_FALSE(reject.witnesses.empty());
  for (const DecisionWitness& w : reject.witnesses) {
    EXPECT_TRUE(dl->usage_log()->IsLogRelation(w.relation)) << w.relation;
    EXPECT_FALSE(w.values.empty());
    // The rejection was caused by this query's own accesses, so its
    // witnesses must include increment rows stamped with this query's ts.
  }
  bool any_increment = false;
  for (const DecisionWitness& w : reject.witnesses) {
    any_increment = any_increment || w.from_increment;
  }
  EXPECT_TRUE(any_increment);
}

// Acceptance: the witness set computed through the optimized pipeline
// (plan cache, optimizer, stats costing) is byte-identical to a naive full
// re-evaluation with every optimization disabled in the capture executor.
TEST_F(DecisionIntegrationTest, WitnessesMatchNaiveReEvaluationExactly) {
  auto run = [&](bool naive) {
    DataLawyerOptions options = DataLawyerOptions::AllOptimizations();
    options.decision_witness_naive = naive;
    options.decision_witness_limit = 1000000;  // no truncation
    auto dl = Make(options);
    QueryContext ctx;
    ctx.uid = 0;
    EXPECT_TRUE(dl->Execute(join_sql_, ctx).ok());
    ctx.uid = 1;
    EXPECT_TRUE(dl->Execute(join_sql_, ctx).status().IsPolicyViolation());
    const DecisionRecord& reject = dl->decision_store().records().back();
    std::string dump;
    for (const DecisionWitness& w : reject.witnesses) {
      dump += w.relation + "|" + std::to_string(w.row_id) + "|" +
              (w.from_increment ? "i" : "m") + "|" + std::to_string(w.ts);
      for (const std::string& v : w.values) dump += "|" + v;
      dump += "\n";
    }
    EXPECT_FALSE(dump.empty());
    return dump;
  };
  EXPECT_EQ(run(/*naive=*/false), run(/*naive=*/true));
}

TEST_F(DecisionIntegrationTest, WitnessLimitTruncatesAndCounts) {
  DataLawyerOptions options;
  options.decision_witness_limit = 2;
  auto dl = Make(options);
  QueryContext ctx;
  ctx.uid = 1;
  ASSERT_TRUE(dl->Execute(join_sql_, ctx).status().IsPolicyViolation());
  const DecisionRecord& reject = dl->decision_store().records().back();
  EXPECT_EQ(reject.witnesses.size(), 2u);
  EXPECT_GT(reject.witnesses_truncated, 0u);
}

TEST_F(DecisionIntegrationTest, DlDecisionsAggregatesMatchAttribution) {
  auto dl = Make({});
  QueryContext ctx;
  for (int i = 0; i < 6; ++i) {
    ctx.uid = i % 2;
    auto result = dl->Execute(join_sql_, ctx);
    ASSERT_TRUE(result.ok() || result.status().IsPolicyViolation());
  }

  // Aggregate the telemetry relation with ordinary SQL and compare against
  // the attribution surfaces it must agree with.
  auto rejected = dl->QueryUsageLog(
      "SELECT policy, COUNT(*) FROM dl_decisions "
      "WHERE verdict = 'reject' GROUP BY policy");
  ASSERT_TRUE(rejected.ok()) << rejected.status().ToString();
  std::map<std::string, int64_t> sql_rejections;
  for (const Row& row : rejected->rows) {
    sql_rejections[row[0].AsString()] = row[1].AsInt64();
  }
  std::map<std::string, int64_t> report_rejections;
  for (const PolicyStats& ps : dl->PolicyReport()) {
    if (ps.rejections > 0) {
      report_rejections[ps.name] += int64_t(ps.rejections);
    }
  }
  EXPECT_EQ(sql_rejections, report_rejections);

  // dl_policy_stats is PolicyReport verbatim.
  auto stats = dl->QueryUsageLog(
      "SELECT policy, evaluations, prunes, rejections FROM dl_policy_stats");
  ASSERT_TRUE(stats.ok());
  std::vector<PolicyStats> report = dl->PolicyReport();
  ASSERT_EQ(stats->rows.size(), report.size());
  for (size_t i = 0; i < report.size(); ++i) {
    EXPECT_EQ(stats->rows[i][0].AsString(), report[i].name);
    EXPECT_EQ(stats->rows[i][1].AsInt64(), int64_t(report[i].evaluations));
    EXPECT_EQ(stats->rows[i][2].AsInt64(), int64_t(report[i].prunes));
    EXPECT_EQ(stats->rows[i][3].AsInt64(), int64_t(report[i].rejections));
  }

  // The audit trail and the decision store describe the same verdicts,
  // cross-linked one-to-one by decision id.
  const AuditLog& audit = dl->audit_log();
  const DecisionStore& store = dl->decision_store();
  ASSERT_EQ(audit.size(), store.size());
  for (size_t i = 0; i < audit.size(); ++i) {
    const AuditRecord& a = audit.records()[i];
    const DecisionRecord* d = store.FindById(a.decision_id);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->admitted, a.admitted);
    EXPECT_EQ(d->query_sql, a.query_sql);
    EXPECT_EQ(d->ts, a.ts);
  }
}

// Snapshot semantics: a query over dl_decisions is itself checked and
// recorded, but it can never observe its own record — the snapshot is
// materialized before the verdict lands.
TEST_F(DecisionIntegrationTest, TelemetryQueryDoesNotSeeItself) {
  auto dl = Make({});
  QueryContext ctx;
  ctx.uid = 0;
  ASSERT_TRUE(dl->Execute(join_sql_, ctx).ok());

  auto count = dl->Execute("SELECT COUNT(*) FROM dl_decisions", ctx);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(count->rows[0][0].AsInt64(), 1);  // not 2: excludes itself
  EXPECT_EQ(dl->decision_store().size(), 2u);  // but it was recorded

  // The next query's snapshot includes it.
  auto again = dl->Execute("SELECT COUNT(*) FROM dl_decisions", ctx);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->rows[0][0].AsInt64(), 2);
}

TEST_F(DecisionIntegrationTest, RealTableShadowsSystemRelation) {
  ASSERT_TRUE(db_.CreateTable("dl_decisions", TableSchema().AddColumn(
                                                  "x", ValueType::kInt64))
                  .ok());
  auto dl = Make({});
  QueryContext ctx;
  ctx.uid = 0;
  auto result = dl->Execute("SELECT x FROM dl_decisions", ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 0u);  // the real (empty) table won
}

TEST_F(DecisionIntegrationTest, DisabledStoreRecordsNothing) {
  DataLawyerOptions options;
  options.enable_decisions = false;
  auto dl = Make(options);
  QueryContext ctx;
  ctx.uid = 0;
  ASSERT_TRUE(dl->Execute(join_sql_, ctx).ok());
  ctx.uid = 1;
  ASSERT_TRUE(dl->Execute(join_sql_, ctx).status().IsPolicyViolation());
  EXPECT_EQ(dl->decision_store().size(), 0u);
  EXPECT_EQ(dl->decision_store().total_appended(), 0u);
  // Audit still works, with the null decision link.
  ASSERT_EQ(dl->audit_log().size(), 2u);
  EXPECT_EQ(dl->audit_log().records()[0].decision_id, 0u);
}

TEST_F(DecisionIntegrationTest, CapacityOptionBoundsTheRing) {
  DataLawyerOptions options;
  options.decision_capacity = 2;
  auto dl = Make(options);
  QueryContext ctx;
  ctx.uid = 0;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(dl->Execute(join_sql_, ctx).ok());
  }
  EXPECT_EQ(dl->decision_store().size(), 2u);
  EXPECT_EQ(dl->decision_store().dropped(), 2u);
  // Ids keep counting across evictions.
  EXPECT_EQ(dl->decision_store().records().back().id, 4u);
}

TEST_F(DecisionIntegrationTest, ParseErrorsAreNotDecisions) {
  auto dl = Make({});
  QueryContext ctx;
  ctx.uid = 0;
  EXPECT_FALSE(dl->Execute("SELECT nonsense FROM nowhere", ctx).ok());
  EXPECT_EQ(dl->decision_store().size(), 0u);
}

}  // namespace
}  // namespace datalawyer
