// Planner-choice regression suite: the cost model must pick a full scan on
// tiny usage logs and switch to ordered-index range scans for the paper's
// sliding-window policies (P1/P5/P6 shapes) once the log is large — with
// the switch driven end-to-end through the stats-drift rewarm, not a
// manual replan.

#include <gtest/gtest.h>

#include <string>

#include "core/datalawyer.h"
#include "plan/optimizer.h"
#include "workload/paper_policies.h"

namespace datalawyer {
namespace {

class PlannerChoiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (OptimizerDisabledByEnv() || StatsCostingDisabledByEnv()) {
      GTEST_SKIP() << "cost-based planning disabled by environment";
    }
    ASSERT_TRUE(db_.CreateTable("t", TableSchema().AddColumn(
                                         "x", ValueType::kInt64))
                    .ok());
    ASSERT_TRUE(db_.GetTable("t").value()->Append(Row{Value(int64_t(1))})
                    .ok());
    // Incremental evaluation would answer the window policies from
    // maintained state and never exercise the access paths this suite
    // asserts on; pin it off so the planner's choices stay observable.
    DataLawyerOptions options;
    options.enable_incremental_eval = false;
    dl_ = std::make_unique<DataLawyer>(&db_,
                                       UsageLog::WithStandardGenerators(),
                                       std::make_unique<ManualClock>(0, 10),
                                       options);
    // P1 shape (window over users), P5/P6 verbatim from the paper, all
    // with thresholds high enough that nothing ever rejects.
    ASSERT_TRUE(dl_->AddPolicy("p1",
                               "SELECT DISTINCT 'p1' FROM users u, clock c "
                               "WHERE u.ts > c.ts - 30 "
                               "HAVING COUNT(DISTINCT u.uid) > 1000000")
                    .ok());
    ASSERT_TRUE(dl_->AddPolicy("p5", PaperPolicies::P5(0, 30, 1000000)).ok());
    ASSERT_TRUE(dl_->AddPolicy("p6", PaperPolicies::P6(0, 30, 1000000)).ok());
  }

  /// One admitted query (ticks the clock; head of the check revalidates
  /// the plan cache, including the stats-drift rewarm).
  void RunQuery() {
    QueryContext ctx;
    ASSERT_TRUE(dl_->Execute("SELECT x FROM t", ctx).ok());
  }

  /// Bulk-grows a log main relation with timestamps spread over [0, 1000).
  void GrowLog(const std::string& name, size_t rows) {
    Table* main = dl_->usage_log()->main_table(name);
    ASSERT_NE(main, nullptr);
    for (size_t i = 0; i < rows; ++i) {
      int64_t ts = int64_t(i % 1000);
      if (name == "users") {
        ASSERT_TRUE(main->Append(Row{Value(ts), Value(int64_t(i % 7))}).ok());
      } else {
        ASSERT_TRUE(main->Append(Row{Value(ts), Value(int64_t(i)),
                                     Value(std::string(
                                         i % 2 == 0 ? "d_patients" : "other")),
                                     Value(int64_t(i % 50))})
                        .ok());
      }
    }
  }

  Database db_;
  std::unique_ptr<DataLawyer> dl_;
};

TEST_F(PlannerChoiceTest, SmallLogsPlanFullScansWithEstimates) {
  RunQuery();  // Prepare + warm against empty logs
  for (const char* name : {"p1", "p5", "p6"}) {
    auto plan = dl_->ExplainPolicy(name);
    ASSERT_TRUE(plan.ok()) << name;
    // Nothing to win at size ~0: no range scan, but the cost model is live
    // and annotates its cardinality estimates.
    EXPECT_EQ(plan->find("range scan"), std::string::npos) << *plan;
    EXPECT_NE(plan->find("est_rows="), std::string::npos) << *plan;
  }
}

TEST_F(PlannerChoiceTest, LargeLogsSwitchWindowPoliciesToRangeScans) {
  RunQuery();
  GrowLog("users", 4000);
  GrowLog("provenance", 4000);
  // Move "now" past the data so the 30ms window is selective, as it is in
  // steady state (log timestamps never exceed the clock).
  static_cast<ManualClock*>(dl_->clock())->AdvanceTo(1000);
  // The next checked query detects the drift (0 -> 4000 rows), bumps the
  // epoch, and rewarms the plan cache against the grown statistics.
  RunQuery();

  for (const char* name : {"p1", "p5", "p6"}) {
    auto plan = dl_->ExplainPolicy(name);
    ASSERT_TRUE(plan.ok()) << name;
    EXPECT_NE(plan->find("range scan"), std::string::npos) << name << "\n"
                                                           << *plan;
    EXPECT_NE(plan->find("est_rows="), std::string::npos) << *plan;
  }
  // The window predicate names the log's ts column in every plan.
  auto p5 = dl_->ExplainPolicy("p5");
  ASSERT_TRUE(p5.ok());
  EXPECT_NE(p5->find("range scan (p.ts >"), std::string::npos) << *p5;

  // The evaluations themselves went through the ordered index.
  RunQuery();
  EXPECT_GT(dl_->last_stats().range_probes, 0u);
  EXPECT_GT(dl_->last_stats().range_hits, 0u);
}

TEST_F(PlannerChoiceTest, CostingKnobForcesAdaptiveChoice) {
  // With costing off the planner attaches probes but pins no path; the
  // adaptive executor still answers through whichever index helps, so
  // results and counters keep working — only the EXPLAIN annotation
  // (est_rows) disappears.
  DataLawyerOptions options;
  options.enable_stats_costing = false;
  Database db;
  ASSERT_TRUE(
      db.CreateTable("t", TableSchema().AddColumn("x", ValueType::kInt64))
          .ok());
  ASSERT_TRUE(db.GetTable("t").value()->Append(Row{Value(int64_t(1))}).ok());
  DataLawyer dl(&db, UsageLog::WithStandardGenerators(),
                std::make_unique<ManualClock>(0, 10), options);
  ASSERT_TRUE(dl.AddPolicy("p5", PaperPolicies::P5(0, 30, 1000000)).ok());
  QueryContext ctx;
  ASSERT_TRUE(dl.Execute("SELECT x FROM t", ctx).ok());

  Table* main = dl.usage_log()->main_table("provenance");
  ASSERT_NE(main, nullptr);
  for (size_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(main->Append(Row{Value(int64_t(i % 1000)), Value(int64_t(i)),
                                 Value(std::string("d_patients")),
                                 Value(int64_t(i % 50))})
                    .ok());
  }
  ASSERT_TRUE(dl.Execute("SELECT x FROM t", ctx).ok());
  auto plan = dl.ExplainPolicy("p5");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->find("est_rows="), std::string::npos) << *plan;
}

}  // namespace
}  // namespace datalawyer
