#include <gtest/gtest.h>

#include "sql/lexer.h"

namespace datalawyer {
namespace {

std::vector<Token> Lex(const std::string& sql) {
  Lexer lexer(sql);
  auto result = lexer.Tokenize();
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? std::move(result).value() : std::vector<Token>{};
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  auto tokens = Lex("SELECT Select sElEcT");
  ASSERT_EQ(tokens.size(), 4u);  // 3 + kEnd
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(tokens[i].type, TokenType::kKeyword);
    EXPECT_EQ(tokens[i].text, "select");
  }
}

TEST(LexerTest, IdentifiersLowercased) {
  auto tokens = Lex("MyTable my_col _x a1");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].text, "mytable");
  EXPECT_EQ(tokens[1].text, "my_col");
  EXPECT_EQ(tokens[2].text, "_x");
  EXPECT_EQ(tokens[3].text, "a1");
}

TEST(LexerTest, QuotedIdentifier) {
  auto tokens = Lex("\"Weird Name\"");
  ASSERT_GE(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].text, "weird name");
}

TEST(LexerTest, IntegerAndDoubleLiterals) {
  auto tokens = Lex("42 3.14 0.5 1e3 2.5e-2 7");
  EXPECT_EQ(tokens[0].type, TokenType::kIntLiteral);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].type, TokenType::kDoubleLiteral);
  EXPECT_DOUBLE_EQ(tokens[1].double_value, 3.14);
  EXPECT_EQ(tokens[2].type, TokenType::kDoubleLiteral);
  EXPECT_EQ(tokens[3].type, TokenType::kDoubleLiteral);
  EXPECT_DOUBLE_EQ(tokens[3].double_value, 1000.0);
  EXPECT_DOUBLE_EQ(tokens[4].double_value, 0.025);
  EXPECT_EQ(tokens[5].type, TokenType::kIntLiteral);
}

TEST(LexerTest, StringLiteralsWithEscapes) {
  auto tokens = Lex("'hello' 'it''s' ''");
  EXPECT_EQ(tokens[0].type, TokenType::kStringLiteral);
  EXPECT_EQ(tokens[0].text, "hello");
  EXPECT_EQ(tokens[1].text, "it's");
  EXPECT_EQ(tokens[2].text, "");
}

TEST(LexerTest, StringsPreserveCase) {
  auto tokens = Lex("'MiXeD CaSe'");
  EXPECT_EQ(tokens[0].text, "MiXeD CaSe");
}

TEST(LexerTest, Operators) {
  auto tokens = Lex("= != <> < <= > >= + - * / %");
  std::vector<std::string> expected = {"=", "!=", "!=", "<", "<=", ">",
                                       ">=", "+", "-", "*", "/", "%"};
  ASSERT_EQ(tokens.size(), expected.size() + 1);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(tokens[i].type, TokenType::kOperator) << i;
    EXPECT_EQ(tokens[i].text, expected[i]) << i;
  }
}

TEST(LexerTest, Punctuation) {
  auto tokens = Lex("( ) , . ;");
  EXPECT_EQ(tokens[0].type, TokenType::kLParen);
  EXPECT_EQ(tokens[1].type, TokenType::kRParen);
  EXPECT_EQ(tokens[2].type, TokenType::kComma);
  EXPECT_EQ(tokens[3].type, TokenType::kDot);
  EXPECT_EQ(tokens[4].type, TokenType::kSemicolon);
}

TEST(LexerTest, LineComments) {
  auto tokens = Lex("SELECT -- the select list\n1");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "select");
  EXPECT_EQ(tokens[1].int_value, 1);
}

TEST(LexerTest, BlockComments) {
  auto tokens = Lex("SELECT /* multi\nline */ 1 /* unclosed at end ok? */");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].int_value, 1);
}

TEST(LexerTest, ErrorsReportBytePosition) {
  Lexer bad("SELECT 'unterminated");
  auto result = bad.Tokenize();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("unterminated"), std::string::npos);

  Lexer bang("a ! b");
  EXPECT_FALSE(bang.Tokenize().ok());

  Lexer weird("a # b");
  EXPECT_FALSE(weird.Tokenize().ok());
}

TEST(LexerTest, EmptyInput) {
  auto tokens = Lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEnd);
  auto spaces = Lex("   \n\t  -- only a comment");
  ASSERT_EQ(spaces.size(), 1u);
}

TEST(LexerTest, AggregateNamesAreKeywords) {
  for (const char* kw : {"count", "sum", "avg", "min", "max"}) {
    EXPECT_TRUE(Lexer::IsKeyword(kw)) << kw;
  }
  EXPECT_FALSE(Lexer::IsKeyword("median"));
}

}  // namespace
}  // namespace datalawyer
