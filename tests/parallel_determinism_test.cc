// Property: the worker-pool evaluation path is invisible in every
// observable output. For policy_threads in {0, 1, 4, 8} and every
// evaluation strategy, a scripted workload must produce identical
// admit/reject decisions, identical rejection messages, an identical
// last_violations() sequence (order included), and byte-identical
// usage-log contents after Flush().

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "common/task_scheduler.h"
#include "core/datalawyer.h"
#include "exec/plan_executor.h"
#include "policy/incremental.h"
#include "workload/mimic.h"
#include "workload/paper_policies.h"
#include "workload/paper_queries.h"

namespace datalawyer {
namespace {

struct Step {
  int64_t uid;
  std::string sql;
};

std::vector<Step> Scenario(uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<Step> steps;
  auto queries = PaperQueries::All();
  for (int i = 0; i < 20; ++i) {
    steps.push_back(
        Step{int64_t(rng() % 3), queries[rng() % queries.size()].second});
  }
  // A join that trips P2 for uid 1.
  steps.push_back(Step{1,
                       "SELECT o.medication, p.sex FROM poe_order o, "
                       "d_patients p WHERE o.subject_id = p.subject_id"});
  steps.push_back(Step{0, "SELECT * FROM d_patients"});
  return steps;
}

/// Everything a run exposes, flattened to one comparable string.
struct Trace {
  std::vector<std::string> decisions;  // one entry per step
  std::string log_dump;                // all persisted log rows after Flush
  std::string decision_dump;           // decision store, timing-free fields
  uint64_t incremental_hits = 0;       // verdicts served from state
  uint64_t morsels = 0;                // plan morsels dispatched
};

/// Deterministic projection of the decision store: everything except wall
/// times, which legitimately vary run to run. Witness rows are part of the
/// projection — their order and content must not depend on thread count.
std::string DumpDecisions(const DecisionStore& store) {
  std::string out;
  for (const DecisionRecord& d : store.records()) {
    out += std::to_string(d.id) + "|" + std::to_string(d.ts) + "|" +
           std::to_string(d.uid) + "|" + d.verdict() + "|" +
           (d.probe ? "p" : "-") + "|" + d.policy;
    for (const std::string& m : d.messages) out += ";" + m;
    for (const PolicyOutcome& o : d.outcomes) {
      out += "/" + o.policy + "=" + o.outcome + ":" +
             std::to_string(o.evaluations) + ":" + std::to_string(o.prunes);
    }
    for (const DecisionWitness& w : d.witnesses) {
      out += "/w:" + w.relation + ":" + std::to_string(w.row_id) + ":" +
             (w.from_increment ? "i" : "m") + ":" + std::to_string(w.ts);
      for (const std::string& v : w.values) out += "," + v;
    }
    out += "/trunc=" + std::to_string(d.witnesses_truncated) + "\n";
  }
  return out;
}

Trace RunScenario(DataLawyerOptions options, const std::vector<Step>& steps) {
  // Each run gets its own copy of the data so log state cannot leak.
  Database db;
  EXPECT_TRUE(LoadMimicData(&db, MimicConfig::Tiny()).ok());

  DataLawyer dl(&db, UsageLog::WithStandardGenerators(),
                std::make_unique<ManualClock>(0, 10), options);
  for (const auto& [name, sql] : PaperPolicies::All()) {
    EXPECT_TRUE(dl.AddPolicy(name, sql).ok());
  }
  EXPECT_TRUE(
      dl.AddPolicy("rate", PaperPolicies::RateLimitForUser(1, 500, 10)).ok());
  // A guarded policy (guard == policy: containment trivially holds)
  // exercises the two-wave guard/precise parallel phases.
  EXPECT_TRUE(dl.AddPolicyWithGuard("p3guarded", PaperPolicies::P3(2, 40),
                                    PaperPolicies::P3(2, 40))
                  .ok());

  Trace trace;
  for (const Step& step : steps) {
    QueryContext ctx;
    ctx.uid = step.uid;
    auto result = dl.Execute(step.sql, ctx);
    std::string decision = result.ok() ? "admit" : result.status().ToString();
    for (const ViolationReport& report : dl.last_violations()) {
      decision += "|" + report.policy_name;
      for (const std::string& m : report.messages) decision += ";" + m;
    }
    trace.decisions.push_back(std::move(decision));
    trace.incremental_hits += dl.last_stats().incremental_hits;
    trace.morsels += dl.last_stats().morsels;
  }

  trace.decision_dump = DumpDecisions(dl.decision_store());

  EXPECT_TRUE(dl.Flush().ok());
  for (const std::string& name : dl.usage_log()->RelationNamesInOrder()) {
    const Table* main = dl.usage_log()->main_table(name);
    trace.log_dump += name + ":\n";
    for (size_t i = 0; i < main->NumRows(); ++i) {
      for (const Value& v : main->RowAt(i)) trace.log_dump += v.ToString() + ",";
      trace.log_dump += "\n";
    }
  }
  return trace;
}

TEST(ParallelDeterminismTest, ThreadCountIsInvisible) {
  std::vector<Step> steps = Scenario(11);

  for (EvalStrategy strategy : {EvalStrategy::kInterleaved,
                                EvalStrategy::kSerial, EvalStrategy::kUnion}) {
    DataLawyerOptions options = DataLawyerOptions::AllOptimizations();
    options.strategy = strategy;
    options.enable_unification = false;  // several independent statements
    options.policy_threads = 0;
    Trace serial = RunScenario(options, steps);

    // The scenario must exercise both verdicts or the property is vacuous.
    size_t rejects = 0;
    for (const std::string& d : serial.decisions) {
      if (d.rfind("admit", 0) != 0) ++rejects;
    }
    EXPECT_GT(rejects, 0u);
    EXPECT_LT(rejects, serial.decisions.size());

    for (int threads : {1, 4, 8}) {
      options.policy_threads = threads;
      Trace parallel = RunScenario(options, steps);
      ASSERT_EQ(parallel.decisions.size(), serial.decisions.size());
      for (size_t i = 0; i < serial.decisions.size(); ++i) {
        EXPECT_EQ(parallel.decisions[i], serial.decisions[i])
            << "strategy " << int(strategy) << " threads " << threads
            << " step " << i;
      }
      EXPECT_EQ(parallel.log_dump, serial.log_dump)
          << "strategy " << int(strategy) << " threads " << threads;
      // Decision records (witness rows included) are assembled in serial
      // sections, so they too must be invisible to the thread count.
      EXPECT_EQ(parallel.decision_dump, serial.decision_dump)
          << "strategy " << int(strategy) << " threads " << threads;
    }
  }
}

// Incremental evaluation maintains its state in the serial head and serves
// verdicts from const reads in the fan-out, so it too must be invisible:
// the same scenario with incremental on must match every thread count, and
// must match the incremental-off run byte-for-byte (the decision-dump
// projection excludes timings and the per-policy "incremental" tag, which
// are the only fields allowed to differ).
TEST(ParallelDeterminismTest, IncrementalStateIsThreadInvisible) {
  std::vector<Step> steps = Scenario(17);

  DataLawyerOptions options = DataLawyerOptions::AllOptimizations();
  options.strategy = EvalStrategy::kSerial;
  options.enable_unification = false;
  // Compaction's steady-state deletions keep invalidating incremental
  // state; pin it off so the fast path demonstrably serves verdicts.
  options.enable_log_compaction = false;
  options.enable_preemptive_compaction = false;
  options.enable_incremental_eval = true;
  options.policy_threads = 0;
  Trace serial = RunScenario(options, steps);
  // Under DL_DISABLE_INCREMENTAL=1 both runs take the full path and the
  // equalities below check the full path against itself — still valid,
  // but the non-vacuity expectation does not apply.
  if (!IncrementalDisabledByEnv()) {
    EXPECT_GT(serial.incremental_hits, 0u);
  }

  for (int threads : {1, 4, 8}) {
    options.policy_threads = threads;
    Trace parallel = RunScenario(options, steps);
    EXPECT_EQ(parallel.decisions, serial.decisions) << "threads " << threads;
    EXPECT_EQ(parallel.log_dump, serial.log_dump) << "threads " << threads;
    EXPECT_EQ(parallel.decision_dump, serial.decision_dump)
        << "threads " << threads;
    EXPECT_EQ(parallel.incremental_hits, serial.incremental_hits)
        << "threads " << threads;
  }

  options.policy_threads = 0;
  options.enable_incremental_eval = false;
  Trace full = RunScenario(options, steps);
  EXPECT_EQ(full.incremental_hits, 0u);
  EXPECT_EQ(full.decisions, serial.decisions);
  EXPECT_EQ(full.log_dump, serial.log_dump);
  EXPECT_EQ(full.decision_dump, serial.decision_dump);
}

// Morsel-driven plan execution must be invisible too: for every
// exec_threads x morsel_size combination, decisions, messages, persisted
// log bytes, and the decision-store projection (witness rows included)
// must match the serial run. Incremental evaluation is pinned off so
// every policy verdict actually runs its plan (otherwise most statements
// would be answered from state and the property would be near-vacuous).
TEST(ParallelDeterminismTest, MorselExecutionIsInvisible) {
  std::vector<Step> steps = Scenario(29);

  DataLawyerOptions base = DataLawyerOptions::AllOptimizations();
  base.strategy = EvalStrategy::kSerial;
  base.enable_unification = false;
  base.enable_incremental_eval = false;
  base.policy_threads = 0;
  base.exec_threads = 0;
  Trace serial = RunScenario(base, steps);
  EXPECT_EQ(serial.morsels, 0u);  // no scheduler, no dispatch

  for (int threads : {1, 4, 8}) {
    for (size_t morsel_size : {size_t(1), size_t(64), size_t(1024)}) {
      DataLawyerOptions options = base;
      options.exec_threads = threads;
      options.morsel_size = morsel_size;
      Trace morsel = RunScenario(options, steps);
      EXPECT_EQ(morsel.decisions, serial.decisions)
          << "exec_threads " << threads << " morsel_size " << morsel_size;
      EXPECT_EQ(morsel.log_dump, serial.log_dump)
          << "exec_threads " << threads << " morsel_size " << morsel_size;
      EXPECT_EQ(morsel.decision_dump, serial.decision_dump)
          << "exec_threads " << threads << " morsel_size " << morsel_size;
      // Single-row morsels force even the tiny workload tables to split,
      // so the path demonstrably ran (unless the kill switch is set, in
      // which case the equalities above checked serial against serial).
      if (morsel_size == 1 && !MorselExecutionDisabledByEnv()) {
        EXPECT_GT(morsel.morsels, 0u) << "exec_threads " << threads;
      }
    }
  }

  // Policy fan-out and morsel execution composed: policy tasks split
  // their own plans into morsels on the same scheduler.
  DataLawyerOptions both = base;
  both.policy_threads = 4;
  both.exec_threads = 4;
  both.morsel_size = 1;
  Trace composed = RunScenario(both, steps);
  EXPECT_EQ(composed.decisions, serial.decisions);
  EXPECT_EQ(composed.log_dump, serial.log_dump);
  EXPECT_EQ(composed.decision_dump, serial.decision_dump);
}

// Adaptive morsel sizing changes how fragments are split, never what they
// compute: suggestions update only at the serial head (between queries)
// and every fragment merges in deterministic morsel order, so the full
// observable trace must be byte-identical with the feedback loop on, off,
// and against the serial run — even as the suggested sizes drift across
// the workload.
TEST(ParallelDeterminismTest, AdaptiveMorselSizingIsInvisible) {
  std::vector<Step> steps = Scenario(37);

  DataLawyerOptions base = DataLawyerOptions::AllOptimizations();
  base.strategy = EvalStrategy::kSerial;
  base.enable_unification = false;
  base.enable_incremental_eval = false;
  base.policy_threads = 0;
  base.exec_threads = 0;
  Trace serial = RunScenario(base, steps);

  for (int threads : {1, 4}) {
    for (size_t morsel_size : {size_t(1), size_t(1024)}) {
      for (bool adaptive : {false, true}) {
        DataLawyerOptions options = base;
        options.exec_threads = threads;
        options.morsel_size = morsel_size;
        options.adaptive_morsel_size = adaptive;
        Trace run = RunScenario(options, steps);
        EXPECT_EQ(run.decisions, serial.decisions)
            << "threads " << threads << " morsel_size " << morsel_size
            << " adaptive " << adaptive;
        EXPECT_EQ(run.log_dump, serial.log_dump)
            << "threads " << threads << " morsel_size " << morsel_size
            << " adaptive " << adaptive;
        EXPECT_EQ(run.decision_dump, serial.decision_dump)
            << "threads " << threads << " morsel_size " << morsel_size
            << " adaptive " << adaptive;
      }
    }
  }
}

// Non-vacuity for the test above: with adaptive sizing on, the feedback
// loop demonstrably engages — single-row morsels force even the tiny
// workload tables to split and feed timings, and the serial-head Roll()
// publishes a clamped suggestion for the scan class.
TEST(ParallelDeterminismTest, AdaptiveFeedbackPublishesSuggestions) {
  Database db;
  ASSERT_TRUE(LoadMimicData(&db, MimicConfig::Tiny()).ok());
  DataLawyerOptions options = DataLawyerOptions::AllOptimizations();
  options.exec_threads = 1;
  options.morsel_size = 1;  // split everything: feedback on every fragment
  options.adaptive_morsel_size = true;
  DataLawyer dl(&db, UsageLog::WithStandardGenerators(),
                std::make_unique<ManualClock>(0, 10), options);
  for (const auto& [name, sql] : PaperPolicies::All()) {
    ASSERT_TRUE(dl.AddPolicy(name, sql).ok());
  }
  QueryContext ctx;
  ctx.uid = 0;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(dl.Execute("SELECT * FROM d_patients", ctx).ok());
  }
  if (MorselExecutionDisabledByEnv() || AdaptiveMorselSizingDisabledByEnv()) {
    EXPECT_FALSE(dl.adaptive_morsel_enabled());
    EXPECT_EQ(dl.morsel_feedback().SuggestedSize(MorselClass::kScan), 0u);
    return;
  }
  EXPECT_TRUE(dl.adaptive_morsel_enabled());
  size_t suggested = dl.morsel_feedback().SuggestedSize(MorselClass::kScan);
  EXPECT_GE(suggested, MorselFeedback::kMinSize);
  EXPECT_LE(suggested, MorselFeedback::kMaxSize);
  // The summary renders the observed class.
  EXPECT_NE(dl.morsel_feedback().Summary().find("scan"), std::string::npos);
}

// A task already running on a worker can itself call ParallelFor — the
// nested loop's helpers go onto the worker's own deque (stolen by idle
// peers) and the claim-counter design means whoever calls ParallelFor
// participates, so the nesting can never deadlock even with one worker.
TEST(ParallelDeterminismTest, NestedParallelForInsideTask) {
  TaskScheduler scheduler(2);
  constexpr size_t kOuter = 8;
  constexpr size_t kInner = 64;
  std::vector<std::vector<int>> cells(kOuter, std::vector<int>(kInner, 0));
  std::vector<std::future<void>> tasks;
  for (size_t o = 0; o < kOuter; ++o) {
    tasks.push_back(scheduler.Submit([&scheduler, &cells, o] {
      scheduler.ParallelFor(
          kInner, [&cells, o](size_t i) { cells[o][i] = int(o * kInner + i); });
    }));
  }
  for (std::future<void>& t : tasks) t.get();
  for (size_t o = 0; o < kOuter; ++o) {
    for (size_t i = 0; i < kInner; ++i) {
      ASSERT_EQ(cells[o][i], int(o * kInner + i));
    }
  }
  EXPECT_GE(scheduler.tasks_executed(0) + scheduler.tasks_executed(1),
            kOuter);  // the outer tasks all ran on workers
}

// A zero-thread scheduler is a valid serial executor: Submit runs inline,
// ParallelFor degrades to a plain loop, and an executor handed such a
// scheduler keeps every operator serial (MorselsEnabled is false).
TEST(ParallelDeterminismTest, ZeroThreadSchedulerRunsInline) {
  TaskScheduler scheduler(0);
  EXPECT_EQ(scheduler.num_threads(), 0u);
  std::future<int> f = scheduler.Submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
  std::vector<int> marks(100, 0);
  scheduler.ParallelFor(marks.size(), [&](size_t i) { marks[i] = 1; });
  for (int m : marks) EXPECT_EQ(m, 1);
  EXPECT_EQ(scheduler.steals(), 0u);
}

TEST(ParallelDeterminismTest, ParallelAndAsyncCompactionAgree) {
  std::vector<Step> steps = Scenario(23);

  DataLawyerOptions options = DataLawyerOptions::AllOptimizations();
  options.strategy = EvalStrategy::kSerial;
  options.enable_unification = false;
  Trace serial = RunScenario(options, steps);

  options.policy_threads = 4;
  options.async_compaction = true;  // compaction shares the same pool
  Trace parallel = RunScenario(options, steps);

  EXPECT_EQ(parallel.decisions, serial.decisions);
  EXPECT_EQ(parallel.log_dump, serial.log_dump);
  EXPECT_EQ(parallel.decision_dump, serial.decision_dump);
}

TEST(ParallelDeterminismTest, WallCpuSplitIsReported) {
  Database db;
  ASSERT_TRUE(LoadMimicData(&db, MimicConfig::Tiny()).ok());
  DataLawyerOptions options;
  options.strategy = EvalStrategy::kSerial;
  options.enable_unification = false;
  options.policy_threads = 4;
  options.per_call_overhead_us = 500;
  options.per_call_overhead_sleep = true;
  DataLawyer dl(&db, UsageLog::WithStandardGenerators(),
                std::make_unique<ManualClock>(0, 10), options);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(dl.AddPolicy("rate" + std::to_string(i),
                             PaperPolicies::RateLimitForUser(i + 10))
                    .ok());
  }
  QueryContext ctx;
  ctx.uid = 0;
  ASSERT_TRUE(dl.Execute(PaperQueries::W1(), ctx).ok());
  const ExecutionStats& stats = dl.last_stats();
  EXPECT_GT(stats.policy_wall_us, 0.0);
  // 4 statements sleeping 500us each: at least 2ms of aggregate CPU...
  EXPECT_GE(stats.policy_cpu_us, 2000.0);
  // ...overlapped into clearly less wall time than the serial sum.
  EXPECT_LT(stats.policy_wall_us, stats.policy_cpu_us);
}

}  // namespace
}  // namespace datalawyer
