// DDL/DML coverage for the Engine facade beyond the smoke test.

#include <gtest/gtest.h>

#include "exec/engine.h"
#include "sql/parser.h"

namespace datalawyer {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  Database db_;
  Engine engine_{&db_};
};

TEST_F(EngineTest, CreateInsertSelectRoundTrip) {
  ASSERT_TRUE(engine_.ExecuteSql("CREATE TABLE t (a INT, b TEXT)").ok());
  ASSERT_TRUE(
      engine_.ExecuteSql("INSERT INTO t VALUES (1, 'x'), (2, 'y')").ok());
  auto result = engine_.ExecuteSql("SELECT * FROM t ORDER BY a");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->NumRows(), 2u);
  EXPECT_EQ(result->rows[1][1], Value("y"));
}

TEST_F(EngineTest, InsertWithColumnList) {
  ASSERT_TRUE(engine_.ExecuteSql("CREATE TABLE t (a INT, b TEXT, c INT)").ok());
  ASSERT_TRUE(engine_.ExecuteSql("INSERT INTO t (c, a) VALUES (30, 3)").ok());
  auto result = engine_.ExecuteSql("SELECT * FROM t");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->NumRows(), 1u);
  EXPECT_EQ(result->rows[0][0], Value(int64_t{3}));
  EXPECT_TRUE(result->rows[0][1].is_null());  // unlisted column → NULL
  EXPECT_EQ(result->rows[0][2], Value(int64_t{30}));
}

TEST_F(EngineTest, InsertCoercesIntToDouble) {
  ASSERT_TRUE(engine_.ExecuteSql("CREATE TABLE t (d DOUBLE)").ok());
  ASSERT_TRUE(engine_.ExecuteSql("INSERT INTO t VALUES (3)").ok());
  auto result = engine_.ExecuteSql("SELECT * FROM t");
  ASSERT_TRUE(result->rows[0][0].is_double());
  EXPECT_DOUBLE_EQ(result->rows[0][0].AsDouble(), 3.0);
}

TEST_F(EngineTest, InsertTypeMismatchRejected) {
  ASSERT_TRUE(engine_.ExecuteSql("CREATE TABLE t (a INT)").ok());
  EXPECT_FALSE(engine_.ExecuteSql("INSERT INTO t VALUES ('str')").ok());
  EXPECT_FALSE(engine_.ExecuteSql("INSERT INTO t VALUES (1.5)").ok());
  EXPECT_TRUE(engine_.ExecuteSql("INSERT INTO t VALUES (NULL)").ok());
}

TEST_F(EngineTest, InsertArityErrors) {
  ASSERT_TRUE(engine_.ExecuteSql("CREATE TABLE t (a INT, b INT)").ok());
  EXPECT_FALSE(engine_.ExecuteSql("INSERT INTO t VALUES (1)").ok());
  EXPECT_FALSE(engine_.ExecuteSql("INSERT INTO t (a) VALUES (1, 2)").ok());
  EXPECT_FALSE(engine_.ExecuteSql("INSERT INTO t (a, zz) VALUES (1, 2)").ok());
  EXPECT_FALSE(engine_.ExecuteSql("INSERT INTO missing VALUES (1)").ok());
}

TEST_F(EngineTest, InsertConstantExpressions) {
  ASSERT_TRUE(engine_.ExecuteSql("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(engine_.ExecuteSql("INSERT INTO t VALUES (2 + 3 * 4)").ok());
  auto result = engine_.ExecuteSql("SELECT * FROM t");
  EXPECT_EQ(result->rows[0][0], Value(int64_t{14}));
  // Column references are not constants.
  EXPECT_FALSE(engine_.ExecuteSql("INSERT INTO t VALUES (a)").ok());
}

TEST_F(EngineTest, DeleteVariants) {
  ASSERT_TRUE(engine_
                  .ExecuteScript("CREATE TABLE t (a INT);"
                                 "INSERT INTO t VALUES (1), (2), (3), (4)")
                  .ok());
  ASSERT_TRUE(engine_.ExecuteSql("DELETE FROM t WHERE a % 2 = 0").ok());
  EXPECT_EQ(engine_.ExecuteSql("SELECT * FROM t")->NumRows(), 2u);
  ASSERT_TRUE(engine_.ExecuteSql("DELETE FROM t").ok());
  EXPECT_EQ(engine_.ExecuteSql("SELECT * FROM t")->NumRows(), 0u);
  EXPECT_FALSE(engine_.ExecuteSql("DELETE FROM missing").ok());
}

TEST_F(EngineTest, DropTable) {
  ASSERT_TRUE(engine_.ExecuteSql("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(engine_.ExecuteSql("DROP TABLE t").ok());
  EXPECT_FALSE(engine_.ExecuteSql("SELECT * FROM t").ok());
  EXPECT_FALSE(engine_.ExecuteSql("DROP TABLE t").ok());
  // Recreate after drop works.
  EXPECT_TRUE(engine_.ExecuteSql("CREATE TABLE t (b TEXT)").ok());
}

TEST_F(EngineTest, DuplicateCreateRejected) {
  ASSERT_TRUE(engine_.ExecuteSql("CREATE TABLE t (a INT)").ok());
  EXPECT_FALSE(engine_.ExecuteSql("CREATE TABLE t (a INT)").ok());
  EXPECT_FALSE(engine_.ExecuteSql("CREATE TABLE T (x TEXT)").ok());
}

TEST_F(EngineTest, ScriptStopsAtFirstError) {
  auto result = engine_.ExecuteScript(
      "CREATE TABLE t (a INT); INSERT INTO nope VALUES (1); "
      "CREATE TABLE u (b INT)");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(db_.HasTable("t"));
  EXPECT_FALSE(db_.HasTable("u"));  // never reached
}

TEST_F(EngineTest, SelectAgainstExtraCatalog) {
  ASSERT_TRUE(engine_.ExecuteSql("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(engine_.ExecuteSql("INSERT INTO t VALUES (1)").ok());
  OwnedRelation extra(TableSchema().AddColumn("x", ValueType::kInt64),
                      {Row{Value(int64_t{42})}});
  OverlayCatalog overlay(engine_.db_catalog());
  overlay.Add("extra", &extra);
  auto stmt = Parser::ParseSelect("SELECT t.a, e.x FROM t, extra e");
  ASSERT_TRUE(stmt.ok());
  auto result = engine_.ExecuteSelect(**stmt, &overlay);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->NumRows(), 1u);
  EXPECT_EQ(result->rows[0][1], Value(int64_t{42}));
}

}  // namespace
}  // namespace datalawyer
