#include <gtest/gtest.h>

#include <string>

#include "common/clock.h"
#include "common/metrics.h"
#include "core/datalawyer.h"
#include "exec/engine.h"
#include "plan/optimizer.h"

namespace datalawyer {
namespace {

// The global dl_plan_cache_misses_total counter ticks exactly once per
// cache-stamp change after the initial warm: a DDL statement bumps the
// schema version, and toggling enable_log_indexes flips the index bit of
// the stamp. Steady-state queries add nothing, and verdicts are identical
// across every rewarm.
TEST(PlanCacheInvalidationTest, MissCounterTicksOncePerStampChange) {
  Database db;
  Engine engine(&db);
  ASSERT_TRUE(engine
                  .ExecuteScript("CREATE TABLE t (v INT);"
                                 "INSERT INTO t VALUES (1), (2);")
                  .ok());

  DataLawyerOptions options;
  options.enable_metrics = true;
  DataLawyer dl(&db, nullptr, std::make_unique<ManualClock>(), options);
  ASSERT_TRUE(dl.AddPolicy("never",
                           "SELECT DISTINCT 'no' FROM users u "
                           "WHERE u.uid = 999999")
                  .ok());
  QueryContext ctx;
  ctx.uid = 1;
  auto run = [&]() {
    auto result = dl.Execute("SELECT * FROM t", ctx);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->rows.size(), 2u);
  };

  Counter* misses =
      MetricsRegistry::Global().GetCounter("dl_plan_cache_misses_total");

  // First query: Prepare populates the cache. The initial warm is not an
  // invalidation, so it never counts.
  run();
  uint64_t base = misses->value();

  // Steady state: no stamp movement, no misses.
  run();
  run();
  EXPECT_EQ(misses->value(), base);

  // DDL bumps the database schema version -> exactly one rewarm.
  ASSERT_TRUE(dl.Execute("CREATE TABLE other (w INT)", ctx).ok());
  run();
  EXPECT_EQ(misses->value(), base + 1);
  run();
  EXPECT_EQ(misses->value(), base + 1);

  // Toggling the log-index optimization flips the stamp's index bit ->
  // exactly one more rewarm.
  DataLawyerOptions no_indexes = options;
  no_indexes.enable_log_indexes = false;
  dl.set_options(no_indexes);
  run();
  EXPECT_EQ(misses->value(), base + 2);
  run();
  EXPECT_EQ(misses->value(), base + 2);

  // And back on again.
  dl.set_options(options);
  run();
  EXPECT_EQ(misses->value(), base + 3);

  // The ordered-index bit of the stamp moves independently of the hash
  // bit: toggling it off and back on is one rewarm each way.
  DataLawyerOptions no_ordered = options;
  no_ordered.enable_ordered_log_indexes = false;
  dl.set_options(no_ordered);
  run();
  EXPECT_EQ(misses->value(), base + 4);
  run();
  EXPECT_EQ(misses->value(), base + 4);
  dl.set_options(options);
  run();
  EXPECT_EQ(misses->value(), base + 5);

  // So does the stats bit: costed plans may not outlive a stats toggle.
  // (When the environment already forces costing off the bit never moves.)
  if (!StatsCostingDisabledByEnv()) {
    DataLawyerOptions no_stats = options;
    no_stats.enable_stats_costing = false;
    dl.set_options(no_stats);
    run();
    EXPECT_EQ(misses->value(), base + 6);
    run();
    EXPECT_EQ(misses->value(), base + 6);
  }

  // Per-query stats never saw a steady-state miss: every evaluated
  // statement after each rewarm ran from the cache.
  EXPECT_EQ(dl.last_stats().plan_cache_misses, 0u);
  EXPECT_GT(dl.last_stats().plan_cache_hits, 0u);
}

// Stats drift is itself a stamp change: once a log main table has grown 2x
// past the 256-row floor since the cached plans were costed, the next
// checked query rewarms (one miss tick), and steady state after the rewarm
// is quiet again. Compaction is disabled so the grown log persists.
TEST(PlanCacheInvalidationTest, StatsDriftRewarmsExactlyOnce) {
  if (StatsCostingDisabledByEnv()) {
    GTEST_SKIP() << "stats-based costing disabled by environment";
  }
  Database db;
  Engine engine(&db);
  ASSERT_TRUE(engine
                  .ExecuteScript("CREATE TABLE t (v INT);"
                                 "INSERT INTO t VALUES (1), (2);")
                  .ok());

  DataLawyerOptions options;
  options.enable_metrics = true;
  options.enable_log_compaction = false;
  options.enable_preemptive_compaction = false;
  DataLawyer dl(&db, nullptr, std::make_unique<ManualClock>(), options);
  ASSERT_TRUE(dl.AddPolicy("never",
                           "SELECT DISTINCT 'no' FROM users u "
                           "WHERE u.uid = 999999")
                  .ok());
  QueryContext ctx;
  ctx.uid = 1;
  auto run = [&]() {
    auto result = dl.Execute("SELECT * FROM t", ctx);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  };

  Counter* misses =
      MetricsRegistry::Global().GetCounter("dl_plan_cache_misses_total");
  run();
  run();
  uint64_t base = misses->value();

  // Below the 256-row floor nothing reacts, however large the ratio.
  Table* users = dl.usage_log()->main_table("users");
  ASSERT_NE(users, nullptr);
  while (users->NumRows() < 100) {
    ASSERT_TRUE(
        users->Append(Row{Value(int64_t(0)), Value(int64_t(1))}).ok());
  }
  run();
  EXPECT_EQ(misses->value(), base);

  // Past the floor and past 2x: exactly one rewarm, then quiet.
  while (users->NumRows() < 1000) {
    ASSERT_TRUE(
        users->Append(Row{Value(int64_t(0)), Value(int64_t(1))}).ok());
  }
  run();
  EXPECT_EQ(misses->value(), base + 1);
  run();
  run();
  EXPECT_EQ(misses->value(), base + 1);
}

}  // namespace
}  // namespace datalawyer
