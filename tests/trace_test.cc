#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <string>
#include <vector>

#include "common/task_scheduler.h"
#include "common/thread_pool.h"
#include "common/trace.h"

namespace datalawyer {
namespace {

// The tracer is process-global; every test starts from a clean, enabled
// timeline and leaves tracing off for whoever runs next in this binary.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Global().Clear();
    Tracer::Global().set_enabled(true);
  }
  void TearDown() override {
    Tracer::Global().set_enabled(false);
    Tracer::Global().Clear();
  }
};

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  Tracer::Global().set_enabled(false);
  { DL_TRACE_SPAN("should.not.appear", "test"); }
  EXPECT_EQ(Tracer::Global().size(), 0u);
}

TEST_F(TraceTest, SpanLatchesEnabledStateAtConstruction) {
  Tracer::Global().set_enabled(false);
  {
    DL_TRACE_SPAN("opened.while.off", "test");
    Tracer::Global().set_enabled(true);  // mid-span enable must not record
  }
  EXPECT_EQ(Tracer::Global().size(), 0u);
}

TEST_F(TraceTest, NestedSpansGetIncreasingDepths) {
  {
    DL_TRACE_SPAN("outer", "test");
    {
      DL_TRACE_SPAN("middle", "test");
      { DL_TRACE_SPAN("inner", "test"); }
    }
  }
  std::vector<TraceEvent> events = Tracer::Global().Snapshot();
  ASSERT_EQ(events.size(), 3u);
  // Spans complete innermost-first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 2);
  EXPECT_EQ(events[1].name, "middle");
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[2].name, "outer");
  EXPECT_EQ(events[2].depth, 0);
  // Time containment: each child starts no earlier and ends no later than
  // its parent — this is what makes Chrome's viewer nest them.
  EXPECT_GE(events[0].ts_us, events[1].ts_us);
  EXPECT_LE(events[0].ts_us + events[0].dur_us,
            events[1].ts_us + events[1].dur_us + 1e-6);
  EXPECT_GE(events[1].ts_us, events[2].ts_us);
  EXPECT_LE(events[1].ts_us + events[1].dur_us,
            events[2].ts_us + events[2].dur_us + 1e-6);
  // All on the same thread lane.
  EXPECT_EQ(events[0].tid, events[1].tid);
  EXPECT_EQ(events[1].tid, events[2].tid);
}

TEST_F(TraceTest, SequentialSpansShareDepthZero) {
  { DL_TRACE_SPAN("first", "test"); }
  { DL_TRACE_SPAN("second", "test"); }
  std::vector<TraceEvent> events = Tracer::Global().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_EQ(events[1].depth, 0);
  EXPECT_GE(events[1].ts_us, events[0].ts_us);
}

TEST_F(TraceTest, ThreadPoolWorkersGetOwnLanesAndDepths) {
  constexpr size_t kTasks = 64;
  ThreadPool pool(4);
  pool.ParallelFor(kTasks, [](size_t i) {
    ScopedSpan outer("task:" + std::to_string(i), "test");
    DL_TRACE_SPAN("task.inner", "test");
  });
  std::vector<TraceEvent> events = Tracer::Global().Snapshot();
  ASSERT_EQ(events.size(), 2 * kTasks);
  size_t inner = 0, outer = 0;
  for (const TraceEvent& e : events) {
    if (e.name == "task.inner") {
      EXPECT_EQ(e.depth, 1);
      ++inner;
    } else {
      EXPECT_EQ(e.depth, 0);
      ++outer;
    }
  }
  EXPECT_EQ(inner, kTasks);
  EXPECT_EQ(outer, kTasks);
}

TEST_F(TraceTest, ClearResetsTimelineOrigin) {
  { DL_TRACE_SPAN("before.clear", "test"); }
  Tracer::Global().Clear();
  EXPECT_EQ(Tracer::Global().size(), 0u);
  { DL_TRACE_SPAN("after.clear", "test"); }
  std::vector<TraceEvent> events = Tracer::Global().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  // A fresh origin means the new span starts near zero (well under a
  // second, even on a loaded machine).
  EXPECT_LT(events[0].ts_us, 1e6);
}

TEST_F(TraceTest, ChromeJsonShapeAndEscaping) {
  {
    ScopedSpan span("weird \"name\"\twith\\escapes", "test");
  }
  std::string json = Tracer::Global().ToChromeJson();
  // Structural markers of the trace_event format.
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"test\""), std::string::npos);
  // The name must come out escaped, never as a raw quote/tab/backslash.
  EXPECT_NE(json.find("weird \\\"name\\\"\\twith\\\\escapes"),
            std::string::npos);
  // Balanced braces/brackets — cheap structural validity check.
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip the escaped character
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

TEST_F(TraceTest, InstantEventsRenderAsTicks) {
  Tracer::Global().RecordInstant("steal:w0", "sched",
                                 Tracer::Global().NowUs());
  { DL_TRACE_SPAN("work", "test"); }
  std::string json = Tracer::Global().ToChromeJson();
  // The instant comes out as ph:"i" with thread scope; the span as ph:"X".
  EXPECT_NE(json.find("\"name\":\"steal:w0\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST_F(TraceTest, ThreadNameMetadataComesFirst) {
  Tracer::Global().SetCurrentThreadName("main-lane");
  { DL_TRACE_SPAN("named.lane", "test"); }
  // Lane names are process-lifetime (keyed by tid, which outlives Clear),
  // so look this thread's entry up rather than assuming an empty map.
  int self = Tracer::CurrentThreadId();
  auto names = Tracer::Global().thread_names();
  ASSERT_TRUE(names.count(self));
  EXPECT_EQ(names[self], "main-lane");

  std::string json = Tracer::Global().ToChromeJson();
  size_t meta = json.find("\"ph\":\"M\"");
  size_t span = json.find("\"ph\":\"X\"");
  ASSERT_NE(meta, std::string::npos);
  ASSERT_NE(span, std::string::npos);
  // Metadata records lead the event array so viewers label lanes before
  // any event lands in them.
  EXPECT_LT(meta, span);
  EXPECT_NE(json.find("\"name\":\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"main-lane\""), std::string::npos);
  // The metadata's tid matches the lane the span rendered into.
  std::string tid = "\"tid\":" + std::to_string(self);
  EXPECT_NE(json.find(tid), std::string::npos);
}

TEST_F(TraceTest, SchedulerWorkersNameTheirLanes) {
  auto before = Tracer::Global().thread_names();
  {
    TaskScheduler scheduler(2);
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 4; ++i) {
      futures.push_back(scheduler.Submit([] {}));
    }
    for (auto& f : futures) f.get();
  }  // join the workers so every registration has landed
  // Exactly the two fresh worker threads registered lanes (earlier tests'
  // pool workers keep theirs — names are process-lifetime).
  auto names = Tracer::Global().thread_names();
  std::vector<std::string> fresh;
  for (const auto& [tid, name] : names) {
    if (!before.count(tid)) fresh.push_back(name);
  }
  std::sort(fresh.begin(), fresh.end());
  ASSERT_EQ(fresh.size(), 2u);
  EXPECT_EQ(fresh[0], "worker-0");
  EXPECT_EQ(fresh[1], "worker-1");
  std::string json = Tracer::Global().ToChromeJson();
  EXPECT_NE(json.find("\"name\":\"worker-0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"worker-1\""), std::string::npos);
}

TEST_F(TraceTest, WriteChromeJsonRejectsBadPath) {
  { DL_TRACE_SPAN("span", "test"); }
  Status st =
      Tracer::Global().WriteChromeJson("/nonexistent-dir/trace.json");
  EXPECT_FALSE(st.ok());
}

}  // namespace
}  // namespace datalawyer
