#include "common/value_hash.h"

#include <gtest/gtest.h>

#include "exec/engine.h"
#include "storage/table.h"

namespace datalawyer {
namespace {

// The shared functor's contract (see Value::Hash): hash is consistent with
// operator==, and additionally int64/double holding the same number hash
// alike. Every equality container in the engine — the usage-log hash
// indexes and the executor's hash joins — keys on this one functor.
TEST(ValueHashTest, HashConsistentWithEquality) {
  EXPECT_EQ(ValueHash()(Value(int64_t{7})), ValueHash()(Value(int64_t{7})));
  EXPECT_EQ(ValueHash()(Value("abc")), ValueHash()(Value("abc")));
  EXPECT_EQ(ValueHash()(Value::Null()), ValueHash()(Value::Null()));
  // The documented extra: integral doubles collide with their int64 twin
  // (required so a future Compare-based equal_to could match them).
  EXPECT_EQ(ValueHash()(Value(int64_t{7})), ValueHash()(Value(7.0)));
}

TEST(ValueHashTest, RowHashMixesValueHash) {
  Row a = {Value(int64_t{1}), Value("x")};
  Row b = {Value(int64_t{1}), Value("x")};
  EXPECT_EQ(RowHash()(a), RowHash()(b));
  // Cross-representation rows hash alike (per-value collision carries
  // through the mixing), even though operator== is type-strict.
  Row c = {Value(1.0), Value("x")};
  EXPECT_EQ(RowHash()(a), RowHash()(c));
  Row d = {Value("x"), Value(int64_t{1})};  // order matters
  EXPECT_NE(RowHash()(a), RowHash()(d));
}

// Pins hash equality across the two call sites that used to carry private
// copies of the functor: a key that matches through the table's hash index
// matches through the executor's hash join, and a key that the index
// rejects (type-strict equal_to) the join rejects too. The two sites must
// never drift apart.
TEST(ValueHashTest, IndexProbeAndHashJoinAgree) {
  Database db;
  Engine engine(&db);
  ASSERT_TRUE(engine
                  .ExecuteScript(R"sql(
    CREATE TABLE ints (k INT, tag TEXT);
    INSERT INTO ints VALUES (1, 'one'), (2, 'two');
    CREATE TABLE more_ints (k INT, tag TEXT);
    INSERT INTO more_ints VALUES (1, 'uno'), (3, 'tres');
    CREATE TABLE doubles (k DOUBLE, tag TEXT);
    INSERT INTO doubles VALUES (1.0, 'ein'), (3.0, 'drei');
  )sql")
                  .ok());
  Table* ints = db.FindTable("ints");
  ASSERT_TRUE(ints->BuildIndex("k").ok());

  // Same-type key: the index finds it, and so does the join.
  std::vector<size_t> hits;
  ASSERT_TRUE(ints->IndexLookup(0, Value(int64_t{1}), &hits));
  EXPECT_EQ(hits.size(), 1u);
  auto joined = engine.ExecuteSql(
      "SELECT ints.tag, more_ints.tag FROM ints, more_ints "
      "WHERE ints.k = more_ints.k");
  ASSERT_TRUE(joined.ok()) << joined.status().ToString();
  ASSERT_EQ(joined->rows.size(), 1u);
  EXPECT_EQ(joined->rows[0][1].AsString(), "uno");

  // Cross-representation key: both sites make the same (type-strict)
  // equality decision — the index probe comes back empty and the int/double
  // hash join matches nothing.
  hits.clear();
  ints->IndexLookup(0, Value(1.0), &hits);
  EXPECT_TRUE(hits.empty());
  auto cross = engine.ExecuteSql(
      "SELECT ints.tag, doubles.tag FROM ints, doubles "
      "WHERE ints.k = doubles.k");
  ASSERT_TRUE(cross.ok()) << cross.status().ToString();
  EXPECT_TRUE(cross->rows.empty());
}

}  // namespace
}  // namespace datalawyer
