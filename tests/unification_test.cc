#include <gtest/gtest.h>

#include "policy/unification.h"
#include "workload/paper_policies.h"

namespace datalawyer {
namespace {

Policy P(const std::string& name, const std::string& sql) {
  auto result = Policy::Parse(name, sql);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(UnificationTest, PaperExample46) {
  // Example 4.6: per-group policies differing only in the group constant.
  std::vector<Policy> policies;
  for (const char* group : {"Student", "Postdoc", "Faculty"}) {
    policies.push_back(
        P(group, std::string("SELECT DISTINCT 'Error' FROM users u, groups g "
                             "WHERE u.uid = g.uid AND g.gid = '") +
                     group + "' HAVING COUNT(DISTINCT u.uid) > 10"));
  }
  auto result = UnifyPolicies(policies);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->groups_unified, 1u);
  EXPECT_EQ(result->policies_absorbed, 2u);
  ASSERT_EQ(result->policies.size(), 1u);
  ASSERT_EQ(result->constants.size(), 1u);

  // Constants table: one row per policy, columns = lifted literals
  // ('Error' message and the group name).
  const Table* constants = result->constants[0].second.get();
  EXPECT_EQ(constants->NumRows(), 3u);
  EXPECT_EQ(constants->schema().NumColumns(), 2u);
  EXPECT_EQ(constants->RowAt(0)[0], Value("Error"));
  EXPECT_EQ(constants->RowAt(0)[1], Value("Student"));
  EXPECT_EQ(constants->RowAt(2)[1], Value("Faculty"));

  std::string sql = result->policies[0].sql;
  // The constants join and the per-constant GROUP BY (paper: GROUP BY
  // c.const); the count threshold stays a literal.
  EXPECT_NE(sql.find("dl_constants_0 dlc"), std::string::npos);
  EXPECT_NE(sql.find("(g.gid = dlc.c1)"), std::string::npos);
  EXPECT_NE(sql.find("GROUP BY dlc.c0, dlc.c1"), std::string::npos);
  EXPECT_NE(sql.find("> 10"), std::string::npos);
}

TEST(UnificationTest, RateLimitFamilyUnifies) {
  std::vector<Policy> policies;
  for (int64_t uid = 0; uid < 50; ++uid) {
    policies.push_back(P("rate" + std::to_string(uid),
                         PaperPolicies::RateLimitForUser(uid, 1000, 350)));
  }
  auto result = UnifyPolicies(policies);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->policies.size(), 1u);
  EXPECT_EQ(result->constants[0].second->NumRows(), 50u);
}

TEST(UnificationTest, DifferentStructuresStaySeparate) {
  std::vector<Policy> policies;
  policies.push_back(P("a", PaperPolicies::RateLimitForUser(1)));
  policies.push_back(P("b", PaperPolicies::P2()));
  policies.push_back(P("c", PaperPolicies::P6()));
  auto result = UnifyPolicies(policies);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->policies.size(), 3u);
  EXPECT_EQ(result->groups_unified, 0u);
  EXPECT_TRUE(result->constants.empty());
}

TEST(UnificationTest, DifferentHavingThresholdsDoNotUnify) {
  // Thresholds are deliberately NOT lifted (monotonicity preservation), so
  // policies with different limits keep separate groups.
  std::vector<Policy> policies;
  policies.push_back(P("a", PaperPolicies::RateLimitForUser(1, 1000, 350)));
  policies.push_back(P("b", PaperPolicies::RateLimitForUser(2, 1000, 100)));
  auto result = UnifyPolicies(policies);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->policies.size(), 2u);
}

TEST(UnificationTest, TypeMismatchedConstantsDoNotUnify) {
  std::vector<Policy> policies;
  policies.push_back(
      P("int", "SELECT DISTINCT 'e' FROM users u WHERE u.uid = 5"));
  policies.push_back(
      P("str", "SELECT DISTINCT 'e' FROM users u WHERE u.uid = 'five'"));
  auto result = UnifyPolicies(policies);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->policies.size(), 2u);
}

TEST(UnificationTest, SingletonGroupsPassThroughUnchanged) {
  std::vector<Policy> policies;
  policies.push_back(P("only", PaperPolicies::P6()));
  auto result = UnifyPolicies(policies);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->policies.size(), 1u);
  EXPECT_EQ(result->policies[0].name, "only");
  EXPECT_EQ(result->policies[0].stmt->ToString(),
            policies[0].stmt->ToString());
}

TEST(UnificationTest, MixedFamiliesPartition) {
  std::vector<Policy> policies;
  for (int64_t uid = 0; uid < 5; ++uid) {
    policies.push_back(P("rate" + std::to_string(uid),
                         PaperPolicies::RateLimitForUser(uid)));
  }
  policies.push_back(P("p2", PaperPolicies::P2()));
  policies.push_back(P("p2b", PaperPolicies::P2(7)));  // same family as p2!
  policies.push_back(P("p6", PaperPolicies::P6()));
  auto result = UnifyPolicies(policies);
  ASSERT_TRUE(result.ok());
  // rate-family unified (5→1), P2 family unified (2→1), P6 alone: 3 total.
  EXPECT_EQ(result->policies.size(), 3u);
  EXPECT_EQ(result->groups_unified, 2u);
  EXPECT_EQ(result->policies_absorbed, 5u);
}

TEST(UnificationTest, NoAggregatesMeansNoGroupByInjected) {
  std::vector<Policy> policies;
  policies.push_back(
      P("a", "SELECT DISTINCT 'msg a' FROM schema s WHERE s.irid = 'x'"));
  policies.push_back(
      P("b", "SELECT DISTINCT 'msg b' FROM schema s WHERE s.irid = 'y'"));
  auto result = UnifyPolicies(policies);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->policies.size(), 1u);
  EXPECT_EQ(result->policies[0].sql.find("GROUP BY"), std::string::npos);
}

TEST(UnificationTest, EmptyInput) {
  auto result = UnifyPolicies({});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->policies.empty());
}

}  // namespace
}  // namespace datalawyer
