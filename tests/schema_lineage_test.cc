#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/binder.h"
#include "analysis/schema_lineage.h"
#include "sql/parser.h"
#include "storage/catalog_view.h"
#include "storage/database.h"

namespace datalawyer {
namespace {

class SchemaLineageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateTable("t",
                                TableSchema()
                                    .AddColumn("a", ValueType::kInt64)
                                    .AddColumn("b", ValueType::kInt64)
                                    .AddColumn("c", ValueType::kInt64))
                    .ok());
    ASSERT_TRUE(db_.CreateTable("u",
                                TableSchema()
                                    .AddColumn("a", ValueType::kInt64)
                                    .AddColumn("d", ValueType::kInt64))
                    .ok());
    catalog_ = std::make_unique<DatabaseCatalog>(&db_);
  }

  std::vector<SchemaLogRow> Analyze(const std::string& sql) {
    auto parsed = Parser::ParseSelect(sql);
    EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
    stmts_.push_back(std::move(parsed).value());
    Binder binder(catalog_.get());
    auto bound = binder.Bind(*stmts_.back());
    EXPECT_TRUE(bound.ok()) << bound.status().ToString();
    bounds_.push_back(std::move(bound).value());
    return ComputeSchemaLineage(*bounds_.back());
  }

  static bool Has(const std::vector<SchemaLogRow>& rows, const char* ocid,
                  const char* irid, const char* icid, bool agg) {
    return std::any_of(rows.begin(), rows.end(), [&](const SchemaLogRow& r) {
      return r.ocid == ocid && r.irid == irid && r.icid == icid &&
             r.agg == agg;
    });
  }

  Database db_;
  std::unique_ptr<DatabaseCatalog> catalog_;
  std::vector<std::unique_ptr<SelectStmt>> stmts_;
  std::vector<std::unique_ptr<BoundQuery>> bounds_;
};

TEST_F(SchemaLineageTest, PaperExample33) {
  // "SELECT T.A AS K, (T.B + T.C) AS L FROM T" generates three rows.
  auto rows = Analyze("SELECT t.a AS k, t.b + t.c AS l FROM t");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_TRUE(Has(rows, "k", "t", "a", false));
  EXPECT_TRUE(Has(rows, "l", "t", "b", false));
  EXPECT_TRUE(Has(rows, "l", "t", "c", false));
}

TEST_F(SchemaLineageTest, AggregateFlag) {
  auto rows = Analyze("SELECT SUM(t.a) AS s, t.b FROM t GROUP BY t.b");
  EXPECT_TRUE(Has(rows, "s", "t", "a", true));
  EXPECT_TRUE(Has(rows, "b", "t", "b", false));
}

TEST_F(SchemaLineageTest, CountStarDerivesFromAllRelations) {
  auto rows = Analyze("SELECT COUNT(*) AS n FROM t, u WHERE t.a = u.a");
  EXPECT_TRUE(Has(rows, "n", "t", "", true));
  EXPECT_TRUE(Has(rows, "n", "u", "", true));
}

TEST_F(SchemaLineageTest, StarExpansion) {
  auto rows = Analyze("SELECT u.* FROM u");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_TRUE(Has(rows, "a", "u", "a", false));
  EXPECT_TRUE(Has(rows, "d", "u", "d", false));
}

TEST_F(SchemaLineageTest, FilterOnlyRelationGetsMarkerRow) {
  // u contributes nothing to the output but is joined: policies like P1/P2
  // must still see it.
  auto rows = Analyze("SELECT t.b FROM t, u WHERE t.a = u.a");
  EXPECT_TRUE(Has(rows, "b", "t", "b", false));
  EXPECT_TRUE(Has(rows, "", "u", "", false));
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(SchemaLineageTest, LineageThroughSubquery) {
  auto rows = Analyze(
      "SELECT s.x FROM (SELECT t.a + t.b AS x FROM t) s");
  EXPECT_TRUE(Has(rows, "x", "t", "a", false));
  EXPECT_TRUE(Has(rows, "x", "t", "b", false));
}

TEST_F(SchemaLineageTest, AggregateInsideSubqueryPropagatesFlag) {
  auto rows = Analyze(
      "SELECT s.n FROM (SELECT COUNT(t.a) AS n FROM t) s");
  EXPECT_TRUE(Has(rows, "n", "t", "a", true));
}

TEST_F(SchemaLineageTest, UnionMembersAllContribute) {
  auto rows = Analyze("SELECT t.a FROM t UNION SELECT u.d FROM u");
  // Output column named after the first member.
  EXPECT_TRUE(Has(rows, "a", "t", "a", false));
  EXPECT_TRUE(Has(rows, "a", "u", "d", false));
}

TEST_F(SchemaLineageTest, LiteralOnlyOutputStillMarksRelations) {
  auto rows = Analyze("SELECT 'const' FROM t WHERE t.a = 1");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(Has(rows, "", "t", "", false));
}

TEST_F(SchemaLineageTest, DeduplicatesRepeatedDerivations) {
  auto rows = Analyze("SELECT t.a + t.a AS s FROM t");
  EXPECT_EQ(rows.size(), 1u);
  EXPECT_TRUE(Has(rows, "s", "t", "a", false));
}

}  // namespace
}  // namespace datalawyer
