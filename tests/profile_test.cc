#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/clock.h"
#include "core/datalawyer.h"
#include "core/profile.h"
#include "exec/engine.h"
#include "exec/plan_executor.h"

namespace datalawyer {
namespace {

std::string PlanText(const QueryResult& result) {
  std::string out;
  for (const Row& row : result.rows) {
    out += row[0].AsString();
    out += "\n";
  }
  return out;
}

// Parses every "<x>.<y> us" operator annotation plus the trailer's depth-0
// sum and wall time out of a rendered profile.
struct ParsedProfile {
  std::vector<double> op_us;
  double depth0_sum = 0;
  double wall_us = 0;
};

ParsedProfile ParseProfile(const std::string& text) {
  ParsedProfile parsed;
  size_t pos = 0;
  while ((pos = text.find(" us", pos)) != std::string::npos) {
    size_t start = pos;
    while (start > 0 && (std::isdigit(text[start - 1]) ||
                         text[start - 1] == '.')) {
      --start;
    }
    double v = std::strtod(text.substr(start, pos - start).c_str(), nullptr);
    size_t line_start = text.rfind('\n', pos);
    line_start = line_start == std::string::npos ? 0 : line_start + 1;
    bool trailer = text.compare(line_start, 8, "  total:") == 0;
    if (trailer) {
      if (parsed.depth0_sum == 0) {
        parsed.depth0_sum = v;
      } else {
        parsed.wall_us = v;
      }
    } else {
      parsed.op_us.push_back(v);
    }
    pos += 3;
  }
  return parsed;
}

class ExplainAnalyzeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Engine engine(&db_);
    ASSERT_TRUE(engine
                    .ExecuteScript(
                        "CREATE TABLE a (x INT);"
                        "CREATE TABLE b (x INT, y INT);"
                        "CREATE TABLE c (y INT, z INT);"
                        "INSERT INTO a VALUES (1), (2), (3);"
                        "INSERT INTO b VALUES (1, 10), (2, 20), (3, 30);"
                        "INSERT INTO c VALUES (10, 100), (20, 200);")
                    .ok());
  }

  Database db_;
};

TEST_F(ExplainAnalyzeTest, ThreeWayJoinShowsPerOperatorRowsAndTime) {
  DataLawyer dl(&db_, nullptr, std::make_unique<ManualClock>(), {});
  QueryContext ctx;
  auto result = dl.Execute(
      "EXPLAIN ANALYZE SELECT a.x, c.z FROM a, b, c "
      "WHERE a.x = b.x AND b.y = c.y",
      ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::string plan = PlanText(*result);

  // All three base relations scanned, folded into two joins, plus the
  // projection — every operator annotated with its row flow.
  EXPECT_NE(plan.find("scan a (3 rows)"), std::string::npos) << plan;
  EXPECT_NE(plan.find("scan b (3 rows)"), std::string::npos) << plan;
  EXPECT_NE(plan.find("scan c (2 rows)"), std::string::npos) << plan;
  EXPECT_NE(plan.find("hash join"), std::string::npos) << plan;
  EXPECT_NE(plan.find("project 2 columns"), std::string::npos) << plan;
  EXPECT_NE(plan.find("result: 2 rows"), std::string::npos) << plan;

  ParsedProfile parsed = ParseProfile(plan);
  ASSERT_GE(parsed.op_us.size(), 5u) << plan;
  // The rendered depth-0 sum matches the per-operator numbers (no subquery
  // here, so every operator is depth 0)...
  double sum = 0;
  for (double v : parsed.op_us) sum += v;
  EXPECT_NEAR(parsed.depth0_sum, sum, 0.1 * double(parsed.op_us.size()))
      << plan;
  // ...and operators cannot account for more time than the measured wall
  // (glue between operators is real work the wall includes).
  EXPECT_GT(parsed.wall_us, 0.0) << plan;
  EXPECT_LE(parsed.depth0_sum, parsed.wall_us * 1.05 + 5.0) << plan;
}

TEST_F(ExplainAnalyzeTest, PlainExplainHasNoTimings) {
  DataLawyer dl(&db_, nullptr, std::make_unique<ManualClock>(), {});
  QueryContext ctx;
  auto result = dl.Execute(
      "EXPLAIN SELECT a.x FROM a, b WHERE a.x = b.x", ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::string plan = PlanText(*result);
  EXPECT_NE(plan.find("scan a"), std::string::npos) << plan;
  EXPECT_EQ(plan.find(" us"), std::string::npos) << plan;
}

TEST_F(ExplainAnalyzeTest, ExplainStaysUsableAsIdentifier) {
  Engine engine(&db_);
  ASSERT_TRUE(engine
                  .ExecuteScript("CREATE TABLE explain (x INT);"
                                 "INSERT INTO explain VALUES (7);")
                  .ok());
  DataLawyer dl(&db_, nullptr, std::make_unique<ManualClock>(), {});
  QueryContext ctx;
  auto result = dl.Execute("SELECT e.x FROM explain e", ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 1u);
}

TEST_F(ExplainAnalyzeTest, ExplainAnalyzePolicyProfilesCachedPlan) {
  DataLawyer dl(&db_, nullptr, std::make_unique<ManualClock>(), {});
  ASSERT_TRUE(dl.AddPolicy("never",
                           "SELECT DISTINCT 'no' FROM users u "
                           "WHERE u.uid = 999999")
                  .ok());
  auto profile = dl.ExplainAnalyzePolicy("never");
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_NE(profile->find("scan users"), std::string::npos) << *profile;
  EXPECT_NE(profile->find(" us"), std::string::npos) << *profile;
  EXPECT_NE(profile->find("total:"), std::string::npos) << *profile;
  EXPECT_NE(profile->find("result: 0 rows"), std::string::npos) << *profile;

  EXPECT_EQ(dl.ExplainAnalyzePolicy("no-such-policy").status().code(),
            StatusCode::kNotFound);
}

TEST_F(ExplainAnalyzeTest, MorselTimingPercentilesRendered) {
  DataLawyerOptions options;
  options.exec_threads = 1;
  options.morsel_size = 1;  // split the three-row scans into morsels
  options.adaptive_morsel_size = false;  // pin the split to morsel_size
  DataLawyer dl(&db_, nullptr, std::make_unique<ManualClock>(), options);
  QueryContext ctx;
  auto result = dl.Execute(
      "EXPLAIN ANALYZE SELECT a.x, b.y FROM a, b WHERE a.x = b.x", ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::string plan = PlanText(*result);
  if (MorselExecutionDisabledByEnv()) {
    EXPECT_EQ(plan.find("morsels"), std::string::npos) << plan;
    return;
  }
  // Every split fragment renders its per-morsel wall-time distribution.
  EXPECT_NE(plan.find("morsels"), std::string::npos) << plan;
  EXPECT_NE(plan.find("morsel min"), std::string::npos) << plan;
  EXPECT_NE(plan.find("p50"), std::string::npos) << plan;
  EXPECT_NE(plan.find("p95"), std::string::npos) << plan;
}

TEST(RenderOperatorProfileTest, IndentsByDepthAndSumsDepthZeroOnly) {
  std::vector<OperatorProfile> ops(2);
  ops[0].label = "scan t (10 rows) as t";
  ops[0].rows_in = 10;
  ops[0].rows_out = 5;
  ops[0].wall_us = 2.0;
  ops[1].label = "project 1 columns";
  ops[1].depth = 1;
  ops[1].rows_in = 5;
  ops[1].rows_out = 5;
  ops[1].wall_us = 1.0;
  std::string text = RenderOperatorProfile(ops, 5.0);
  EXPECT_NE(text.find("  scan t (10 rows) as t  (rows 10 -> 5, 2.0 us)"),
            std::string::npos)
      << text;
  // Depth-1 operators indent one extra level.
  EXPECT_NE(text.find("      project 1 columns"), std::string::npos) << text;
  // The depth-1 operator's time is already inside its parent's, so the
  // trailer sums depth 0 only.
  EXPECT_NE(text.find("total: 2 operators, 2.0 us (wall 5.0 us)"),
            std::string::npos)
      << text;
}

class SlowLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Engine engine(&db_);
    ASSERT_TRUE(engine
                    .ExecuteScript("CREATE TABLE t (v INT);"
                                   "INSERT INTO t VALUES (1), (2);")
                    .ok());
  }

  Database db_;
};

TEST_F(SlowLogTest, DisabledByDefault) {
  DataLawyer dl(&db_, nullptr, std::make_unique<ManualClock>(), {});
  QueryContext ctx;
  ASSERT_TRUE(dl.Execute("SELECT * FROM t", ctx).ok());
  EXPECT_EQ(dl.slow_log().size(), 0u);
}

TEST_F(SlowLogTest, PhasePartsSumToStatementTotal) {
  DataLawyerOptions options;
  options.slow_enforcement_threshold_us = 0.001;  // everything is "slow"
  DataLawyer dl(&db_, nullptr, std::make_unique<ManualClock>(), options);
  ASSERT_TRUE(dl.AddPolicy("never",
                           "SELECT DISTINCT 'no' FROM users u "
                           "WHERE u.uid = 999999")
                  .ok());
  QueryContext ctx;
  ctx.uid = 1;
  ASSERT_TRUE(dl.Execute("SELECT * FROM t", ctx).ok());
  ASSERT_EQ(dl.slow_log().size(), 1u);

  const EnforcementProfile& p = dl.slow_log().records().back();
  double parts = p.parse_us + p.bind_us + p.plan_us + p.log_gen_us +
                 p.policy_eval_us + p.compaction_us + p.user_exec_us;
  EXPECT_DOUBLE_EQ(p.total_us(), parts);
  // total_ms() was defined so an EnforcementProfile's seven phases
  // reconstruct it exactly.
  double stats_total_us = dl.last_stats().total_ms() * 1000.0;
  EXPECT_NEAR(p.total_us(), stats_total_us,
              1e-6 * std::max(1.0, stats_total_us));
  EXPECT_FALSE(p.rejected);
  EXPECT_FALSE(p.probe);
  EXPECT_EQ(p.uid, 1);
  EXPECT_EQ(p.query_sql, "SELECT * FROM t");
}

TEST_F(SlowLogTest, RingEvictsOldestAndCountsDrops) {
  DataLawyerOptions options;
  options.slow_enforcement_threshold_us = 0.001;
  options.slow_log_capacity = 2;
  DataLawyer dl(&db_, nullptr, std::make_unique<ManualClock>(), options);
  QueryContext ctx;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(dl.Execute("SELECT * FROM t", ctx).ok());
  }
  EXPECT_EQ(dl.slow_log().size(), 2u);
  EXPECT_EQ(dl.slow_log().total_appended(), 3u);
  EXPECT_EQ(dl.slow_log().dropped(), 1u);
  EXPECT_EQ(dl.slow_log().Tail(1).size(), 1u);
}

TEST(EnforcementProfileTest, ToJsonEscapesSql) {
  EnforcementProfile p;
  p.query_sql = "SELECT \"x\"\nFROM t";
  p.parse_us = 1.5;
  std::string json = p.ToJson();
  EXPECT_NE(json.find("\\\"x\\\""), std::string::npos) << json;
  EXPECT_NE(json.find("\\n"), std::string::npos) << json;
  EXPECT_NE(json.find("\"parse_us\":1.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"total_us\":1.5"), std::string::npos) << json;
  EXPECT_EQ(json.back(), '}');
}

TEST(SlowLogUnitTest, JsonDumpIsAnArray) {
  SlowLog log(4);
  EnforcementProfile p;
  p.query_sql = "q1";
  log.Append(p);
  p.query_sql = "q2";
  log.Append(p);
  std::string json = log.ToJson();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"q1\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"q2\""), std::string::npos) << json;
  log.Clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.total_appended(), 0u);
}

}  // namespace
}  // namespace datalawyer
