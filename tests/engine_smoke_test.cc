#include <gtest/gtest.h>

#include "exec/engine.h"
#include "storage/database.h"

namespace datalawyer {
namespace {

class EngineSmokeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<Engine>(&db_);
    auto st = engine_->ExecuteScript(R"sql(
      CREATE TABLE t (a INT, b INT, c TEXT);
      INSERT INTO t VALUES (1, 10, 'x'), (2, 20, 'y'), (3, 30, 'x'), (4, 40, 'z');
      CREATE TABLE u (a INT, d TEXT);
      INSERT INTO u VALUES (1, 'one'), (2, 'two'), (5, 'five');
    )sql");
    ASSERT_TRUE(st.ok()) << st.status().ToString();
  }

  QueryResult Query(const std::string& sql) {
    auto result = engine_->ExecuteSql(sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
    return result.ok() ? std::move(result).value() : QueryResult{};
  }

  Database db_;
  std::unique_ptr<Engine> engine_;
};

TEST_F(EngineSmokeTest, SimpleSelect) {
  QueryResult r = Query("SELECT a, b FROM t WHERE a >= 2 ORDER BY a");
  ASSERT_EQ(r.NumRows(), 3u);
  EXPECT_EQ(r.rows[0][0], Value(int64_t{2}));
  EXPECT_EQ(r.rows[2][1], Value(int64_t{40}));
}

TEST_F(EngineSmokeTest, SelectStar) {
  QueryResult r = Query("SELECT * FROM t WHERE c = 'x'");
  ASSERT_EQ(r.NumRows(), 2u);
  EXPECT_EQ(r.schema.NumColumns(), 3u);
}

TEST_F(EngineSmokeTest, Join) {
  QueryResult r = Query(
      "SELECT t.b, u.d FROM t, u WHERE t.a = u.a ORDER BY b");
  ASSERT_EQ(r.NumRows(), 2u);
  EXPECT_EQ(r.rows[0][1], Value("one"));
  EXPECT_EQ(r.rows[1][1], Value("two"));
}

TEST_F(EngineSmokeTest, GroupByHaving) {
  QueryResult r = Query(
      "SELECT c, COUNT(*) AS n, SUM(b) AS s FROM t GROUP BY c "
      "HAVING COUNT(*) > 1");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.rows[0][0], Value("x"));
  EXPECT_EQ(r.rows[0][1], Value(int64_t{2}));
  EXPECT_EQ(r.rows[0][2], Value(int64_t{40}));
}

TEST_F(EngineSmokeTest, GlobalAggregateOverEmpty) {
  QueryResult r = Query("SELECT COUNT(*) FROM t WHERE a > 100");
  ASSERT_EQ(r.NumRows(), 1u);
  EXPECT_EQ(r.rows[0][0], Value(int64_t{0}));
}

TEST_F(EngineSmokeTest, DistinctAndUnion) {
  QueryResult r = Query("SELECT c FROM t UNION SELECT d FROM u");
  EXPECT_EQ(r.NumRows(), 6u);  // x,y,z,one,two,five
  QueryResult r2 = Query("SELECT DISTINCT c FROM t");
  EXPECT_EQ(r2.NumRows(), 3u);
}

TEST_F(EngineSmokeTest, Subquery) {
  QueryResult r = Query(
      "SELECT s.c, s.n FROM (SELECT c, COUNT(*) AS n FROM t GROUP BY c) s "
      "WHERE s.n = 1 ORDER BY c");
  ASSERT_EQ(r.NumRows(), 2u);
  EXPECT_EQ(r.rows[0][0], Value("y"));
}

TEST_F(EngineSmokeTest, DeleteWhere) {
  auto st = engine_->ExecuteSql("DELETE FROM t WHERE c = 'x'");
  ASSERT_TRUE(st.ok()) << st.status().ToString();
  EXPECT_EQ(Query("SELECT * FROM t").NumRows(), 2u);
}

TEST_F(EngineSmokeTest, PolicyShapedQuery) {
  // The paper's P2b shape: global HAVING with no GROUP BY over a join.
  QueryResult r = Query(
      "SELECT DISTINCT 'violation' AS msg FROM t, u WHERE t.a = u.a "
      "HAVING COUNT(DISTINCT t.a) > 10");
  EXPECT_EQ(r.NumRows(), 0u);
  QueryResult r2 = Query(
      "SELECT DISTINCT 'violation' AS msg FROM t, u WHERE t.a = u.a "
      "HAVING COUNT(DISTINCT t.a) > 1");
  ASSERT_EQ(r2.NumRows(), 1u);
  EXPECT_EQ(r2.rows[0][0], Value("violation"));
}

TEST_F(EngineSmokeTest, LineageCapture) {
  ExecOptions opts;
  opts.capture_lineage = true;
  auto result = engine_->ExecuteSql(
      "SELECT t.b FROM t, u WHERE t.a = u.a AND t.a = 1", opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->NumRows(), 1u);
  ASSERT_TRUE(result->has_lineage);
  // One tuple from t and one from u contribute.
  EXPECT_EQ(result->lineage[0].size(), 2u);
}

}  // namespace
}  // namespace datalawyer
