// Differential testing of the ordered (sorted-run) timestamp indexes:
// randomized insert / delete interleavings, with every range probe checked
// against a std::multimap oracle and a linear scan — across the unsorted
// tail, the threshold-triggered merges, and post-compaction rebuilds. The
// range probe is an access path, never a semantics change.

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <unordered_set>
#include <vector>

#include "storage/stats.h"
#include "storage/table.h"

namespace datalawyer {
namespace {

/// Linear-scan reference for one range probe.
std::vector<size_t> ReferenceRange(const Table& table, size_t col,
                                   const int64_t* lo, bool lo_inc,
                                   const int64_t* hi, bool hi_inc) {
  std::vector<size_t> out;
  for (size_t i = 0; i < table.NumRows(); ++i) {
    int64_t v = table.RowAt(i)[col].AsInt64();
    if (lo != nullptr && (lo_inc ? v < *lo : v <= *lo)) continue;
    if (hi != nullptr && (hi_inc ? v > *hi : v >= *hi)) continue;
    out.push_back(i);
  }
  return out;
}

TEST(OrderedIndexTest, RandomInsertsAndDeletesAgainstOracle) {
  std::mt19937_64 rng(4242);
  Table table(TableSchema()
                  .AddColumn("ts", ValueType::kInt64)
                  .AddColumn("uid", ValueType::kInt64));
  ASSERT_TRUE(table.BuildOrderedIndex("ts").ok());

  // The oracle mirrors the table's ts column as a sorted multiset.
  std::multimap<int64_t, int64_t> oracle;  // ts -> uid (values unused)

  for (int round = 0; round < 80; ++round) {
    // Appends past the tail-merge threshold exercise the sort+merge path;
    // bursts of 300 guarantee at least one merge during the test.
    size_t appends = round % 10 == 0 ? 300 : rng() % 8;
    for (size_t i = 0; i < appends; ++i) {
      int64_t ts = int64_t(rng() % 500);
      ASSERT_TRUE(table.Append(Row{Value(ts), Value(int64_t(rng() % 7))})
                      .ok());
      oracle.emplace(ts, 0);
    }
    if (rng() % 3 == 0 && table.NumRows() > 0) {
      // Deletion invalidates; probes must refuse until the refresh.
      std::unordered_set<int64_t> remove;
      std::multimap<int64_t, int64_t> surviving;
      for (size_t i = 0; i < table.NumRows(); ++i) {
        if (rng() % 4 == 0) {
          remove.insert(table.RowIdAt(i));
        } else {
          surviving.emplace(table.RowAt(i)[0].AsInt64(), 0);
        }
      }
      table.RemoveIds(remove);
      oracle = std::move(surviving);
      if (!remove.empty()) {
        EXPECT_FALSE(table.HasValidOrderedIndex(0));
        std::vector<size_t> unused;
        int64_t zero = 0;
        Value lo(zero);
        EXPECT_FALSE(table.RangeLookup(0, &lo, true, nullptr, true, &unused));
      }
      table.RefreshIndexes();
    }
    ASSERT_TRUE(table.HasValidOrderedIndex(0));

    // A batch of random intervals — open, half-open, closed, empty,
    // inverted — each checked against both references.
    for (int probe = 0; probe < 12; ++probe) {
      int64_t a = int64_t(rng() % 520) - 10;
      int64_t b = int64_t(rng() % 520) - 10;
      bool use_lo = rng() % 4 != 0;
      bool use_hi = rng() % 4 != 0;
      bool lo_inc = rng() % 2 == 0;
      bool hi_inc = rng() % 2 == 0;
      if (!use_lo && !use_hi) use_lo = true;

      std::vector<size_t> hits;
      Value lo(a), hi(b);
      ASSERT_TRUE(table.RangeLookup(0, use_lo ? &lo : nullptr, lo_inc,
                                    use_hi ? &hi : nullptr, hi_inc, &hits));
      std::vector<size_t> expect =
          ReferenceRange(table, 0, use_lo ? &a : nullptr, lo_inc,
                         use_hi ? &b : nullptr, hi_inc);
      EXPECT_EQ(hits, expect) << "round " << round << " [" << a << "," << b
                              << "] lo=" << use_lo << " hi=" << use_hi;

      // Cross-check the total count against the oracle for closed
      // intervals (the multimap's equal_range arithmetic is independent
      // of the table's positions).
      if (use_lo && use_hi && lo_inc && hi_inc && a <= b) {
        size_t count = 0;
        for (auto it = oracle.lower_bound(a);
             it != oracle.end() && it->first <= b; ++it) {
          ++count;
        }
        EXPECT_EQ(hits.size(), count);
      }
    }
  }
}

TEST(OrderedIndexTest, MixedTypeColumnRefusesProbes) {
  // A column that mixes strings and ints has no consistent sort order
  // under Value::Compare; the index must decline so the executor falls
  // back to a scan (which surfaces the comparison TypeError exactly as an
  // unindexed table would).
  Table table(TableSchema().AddColumn("k", ValueType::kInt64));
  ASSERT_TRUE(table.Append(Row{Value(int64_t(1))}).ok());
  ASSERT_TRUE(table.Append(Row{Value(std::string("x"))}).ok());
  ASSERT_TRUE(table.BuildOrderedIndex("k").ok());
  std::vector<size_t> hits;
  Value lo(int64_t(0));
  EXPECT_FALSE(table.RangeLookup(0, &lo, true, nullptr, true, &hits));
}

TEST(OrderedIndexTest, NullBoundMatchesNothing) {
  Table table(TableSchema().AddColumn("ts", ValueType::kInt64));
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(table.Append(Row{Value(i)}).ok());
  }
  ASSERT_TRUE(table.BuildOrderedIndex("ts").ok());
  // SQL comparison against NULL never holds: the probe answers (it is
  // exact) with zero hits.
  std::vector<size_t> hits{99};
  Value null = Value::Null();
  ASSERT_TRUE(table.RangeLookup(0, &null, true, nullptr, true, &hits));
  EXPECT_TRUE(hits.empty());
}

TEST(OrderedIndexTest, StatsTrackAppendsAndRebuilds) {
  Table table(TableSchema()
                  .AddColumn("ts", ValueType::kInt64)
                  .AddColumn("uid", ValueType::kInt64));
  table.EnableStats();
  ASSERT_NE(table.Stats(), nullptr);
  EXPECT_EQ(table.Stats()->row_count, 0u);

  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(table.Append(Row{Value(i), Value(i % 5)}).ok());
  }
  const TableStats* stats = table.Stats();
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->row_count, 100u);
  EXPECT_EQ(stats->columns[0].ndv, 100u);
  EXPECT_EQ(stats->columns[1].ndv, 5u);
  ASSERT_TRUE(stats->columns[0].has_range);
  EXPECT_EQ(stats->columns[0].min, 0.0);
  EXPECT_EQ(stats->columns[0].max, 99.0);

  // Deletion invalidates the snapshot; RefreshIndexes rebuilds it.
  std::unordered_set<int64_t> remove;
  for (size_t i = 0; i < table.NumRows(); ++i) {
    if (table.RowAt(i)[0].AsInt64() >= 50) remove.insert(table.RowIdAt(i));
  }
  table.RemoveIds(remove);
  EXPECT_EQ(table.Stats(), nullptr);
  table.RefreshIndexes();
  stats = table.Stats();
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->row_count, 50u);
  EXPECT_EQ(stats->columns[0].ndv, 50u);
  EXPECT_EQ(stats->columns[0].max, 49.0);
}

}  // namespace
}  // namespace datalawyer
