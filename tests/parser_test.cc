#include <gtest/gtest.h>

#include "sql/parser.h"

namespace datalawyer {
namespace {

std::unique_ptr<SelectStmt> ParseOk(const std::string& sql) {
  auto result = Parser::ParseSelect(sql);
  EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
  return result.ok() ? std::move(result).value() : nullptr;
}

TEST(ParserTest, MinimalSelect) {
  auto stmt = ParseOk("SELECT 1");
  ASSERT_NE(stmt, nullptr);
  ASSERT_EQ(stmt->items.size(), 1u);
  EXPECT_EQ(stmt->items[0].expr->kind(), ExprKind::kLiteral);
  EXPECT_TRUE(stmt->from.empty());
}

TEST(ParserTest, FullClauseSet) {
  auto stmt = ParseOk(
      "SELECT DISTINCT a.x AS col, COUNT(DISTINCT b.y) FROM t1 a, t2 b "
      "WHERE a.id = b.id AND a.x > 5 GROUP BY a.x "
      "HAVING COUNT(DISTINCT b.y) > 2 ORDER BY col DESC LIMIT 10");
  ASSERT_NE(stmt, nullptr);
  EXPECT_TRUE(stmt->distinct);
  EXPECT_EQ(stmt->items.size(), 2u);
  EXPECT_EQ(stmt->items[0].alias, "col");
  EXPECT_EQ(stmt->from.size(), 2u);
  EXPECT_EQ(stmt->from[0].table_name, "t1");
  EXPECT_EQ(stmt->from[0].alias, "a");
  ASSERT_NE(stmt->where, nullptr);
  EXPECT_EQ(stmt->group_by.size(), 1u);
  ASSERT_NE(stmt->having, nullptr);
  ASSERT_EQ(stmt->order_by.size(), 1u);
  EXPECT_FALSE(stmt->order_by[0].ascending);
  EXPECT_EQ(stmt->limit, 10);
}

TEST(ParserTest, DistinctOn) {
  auto stmt = ParseOk("SELECT DISTINCT ON (r.a, r.b) r.* FROM r");
  ASSERT_NE(stmt, nullptr);
  EXPECT_FALSE(stmt->distinct);
  EXPECT_EQ(stmt->distinct_on.size(), 2u);
  EXPECT_EQ(stmt->items.size(), 1u);
  EXPECT_EQ(stmt->items[0].expr->kind(), ExprKind::kStar);

  // The paper writes "DISTINCT ON (p1.ts), p1.*" with a comma: tolerated.
  auto paper = ParseOk("SELECT DISTINCT ON (p1.ts), p1.* FROM schema p1");
  ASSERT_NE(paper, nullptr);
  EXPECT_EQ(paper->distinct_on.size(), 1u);
  EXPECT_EQ(paper->items.size(), 1u);
}

TEST(ParserTest, OperatorPrecedence) {
  auto stmt = ParseOk("SELECT a + b * c - d FROM t");
  // ((a + (b*c)) - d)
  EXPECT_EQ(stmt->items[0].expr->ToString(), "((a + (b * c)) - d)");

  auto logic = ParseOk("SELECT 1 FROM t WHERE a = 1 OR b = 2 AND NOT c = 3");
  EXPECT_EQ(logic->where->ToString(),
            "((a = 1) OR ((b = 2) AND (not (c = 3))))");

  auto paren = ParseOk("SELECT (a + b) * c FROM t");
  EXPECT_EQ(paren->items[0].expr->ToString(), "((a + b) * c)");
}

TEST(ParserTest, UnaryMinusFoldsLiterals) {
  auto stmt = ParseOk("SELECT -5, -2.5, -x FROM t");
  ASSERT_EQ(stmt->items.size(), 3u);
  EXPECT_EQ(stmt->items[0].expr->kind(), ExprKind::kLiteral);
  EXPECT_EQ(static_cast<const LiteralExpr&>(*stmt->items[0].expr).value,
            Value(int64_t{-5}));
  EXPECT_EQ(stmt->items[1].expr->kind(), ExprKind::kLiteral);
  EXPECT_EQ(stmt->items[2].expr->kind(), ExprKind::kUnary);
}

TEST(ParserTest, NullBooleansAndIsNull) {
  auto stmt = ParseOk(
      "SELECT NULL, TRUE, FALSE FROM t WHERE a IS NULL AND b IS NOT NULL");
  EXPECT_EQ(static_cast<const LiteralExpr&>(*stmt->items[0].expr).value,
            Value::Null());
  EXPECT_EQ(stmt->where->ToString(), "((a IS NULL) AND (b IS NOT NULL))");
}

TEST(ParserTest, Aggregates) {
  auto stmt = ParseOk(
      "SELECT COUNT(*), COUNT(x), COUNT(DISTINCT x), SUM(x), AVG(x), "
      "MIN(x), MAX(x) FROM t");
  ASSERT_EQ(stmt->items.size(), 7u);
  const auto& star = static_cast<const FuncCallExpr&>(*stmt->items[0].expr);
  EXPECT_TRUE(star.star);
  EXPECT_TRUE(star.IsAggregate());
  const auto& distinct = static_cast<const FuncCallExpr&>(*stmt->items[2].expr);
  EXPECT_TRUE(distinct.distinct);
}

TEST(ParserTest, SubqueryInFrom) {
  auto stmt = ParseOk(
      "SELECT s.n FROM (SELECT COUNT(*) AS n FROM t GROUP BY x) s "
      "WHERE s.n > 3");
  ASSERT_EQ(stmt->from.size(), 1u);
  ASSERT_TRUE(stmt->from[0].IsSubquery());
  EXPECT_EQ(stmt->from[0].alias, "s");
  EXPECT_EQ(stmt->from[0].subquery->group_by.size(), 1u);
}

TEST(ParserTest, SubqueryRequiresAlias) {
  EXPECT_FALSE(Parser::ParseSelect("SELECT 1 FROM (SELECT 2)").ok());
}

TEST(ParserTest, UnionChain) {
  auto stmt = ParseOk("SELECT a FROM t UNION SELECT b FROM u UNION ALL "
                      "SELECT c FROM v");
  ASSERT_NE(stmt->union_next, nullptr);
  EXPECT_FALSE(stmt->union_all);
  ASSERT_NE(stmt->union_next->union_next, nullptr);
  EXPECT_TRUE(stmt->union_next->union_all);
}

TEST(ParserTest, ParenthesizedUnionMembers) {
  auto stmt = ParseOk("(SELECT a FROM t) UNION (SELECT b FROM u)");
  ASSERT_NE(stmt, nullptr);
  ASSERT_NE(stmt->union_next, nullptr);
}

TEST(ParserTest, RoundTripThroughToString) {
  const char* queries[] = {
      "SELECT 1",
      "SELECT DISTINCT a.x FROM t a WHERE a.y = 'z'",
      "SELECT COUNT(DISTINCT u.uid) FROM users u GROUP BY u.ts "
      "HAVING COUNT(DISTINCT u.uid) > 10",
      "SELECT DISTINCT ON (p.ts) p.* FROM provenance p",
      "SELECT a FROM t UNION ALL SELECT b FROM u",
  };
  for (const char* sql : queries) {
    auto first = ParseOk(sql);
    ASSERT_NE(first, nullptr) << sql;
    std::string printed = first->ToString();
    auto second = ParseOk(printed);
    ASSERT_NE(second, nullptr) << printed;
    EXPECT_EQ(printed, second->ToString()) << sql;
  }
}

TEST(ParserTest, CloneIsDeepAndEqual) {
  auto stmt = ParseOk(
      "SELECT DISTINCT a.x FROM t a, (SELECT y FROM u) s "
      "WHERE a.x = s.y GROUP BY a.x HAVING COUNT(*) > 1 "
      "UNION SELECT b FROM v");
  auto clone = stmt->Clone();
  EXPECT_EQ(stmt->ToString(), clone->ToString());
  // Mutating the clone must not affect the original.
  clone->items.clear();
  EXPECT_EQ(stmt->items.size(), 1u);
}

TEST(ParserTest, InsertStatement) {
  auto result = Parser::Parse(
      "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->kind, StatementKind::kInsert);
  EXPECT_EQ(result->insert->columns.size(), 2u);
  EXPECT_EQ(result->insert->rows.size(), 2u);
}

TEST(ParserTest, CreateTableStatement) {
  auto result = Parser::Parse(
      "CREATE TABLE t (a INT, b BIGINT, c DOUBLE, d TEXT, e VARCHAR, "
      "f BOOLEAN)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->kind, StatementKind::kCreateTable);
  const TableSchema& schema = result->create_table->schema;
  ASSERT_EQ(schema.NumColumns(), 6u);
  EXPECT_EQ(schema.column(0).type, ValueType::kInt64);
  EXPECT_EQ(schema.column(2).type, ValueType::kDouble);
  EXPECT_EQ(schema.column(3).type, ValueType::kString);
  EXPECT_EQ(schema.column(5).type, ValueType::kBool);
}

TEST(ParserTest, DeleteAndDrop) {
  auto del = Parser::Parse("DELETE FROM t WHERE a = 1");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del->kind, StatementKind::kDelete);
  auto drop = Parser::Parse("DROP TABLE t");
  ASSERT_TRUE(drop.ok());
  EXPECT_EQ(drop->kind, StatementKind::kDropTable);
}

TEST(ParserTest, Script) {
  auto script = Parser::ParseScript(
      "CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  EXPECT_EQ(script->size(), 3u);
}

struct BadSql {
  const char* sql;
};

class ParserErrorTest : public ::testing::TestWithParam<BadSql> {};

TEST_P(ParserErrorTest, Rejected) {
  EXPECT_FALSE(Parser::Parse(GetParam().sql).ok()) << GetParam().sql;
}

INSTANTIATE_TEST_SUITE_P(
    Syntax, ParserErrorTest,
    ::testing::Values(BadSql{"SELECT"}, BadSql{"SELECT FROM t"},
                      BadSql{"SELECT 1 FROM"}, BadSql{"SELECT 1 WHERE"},
                      BadSql{"SELECT 1 FROM t WHERE"},
                      BadSql{"SELECT 1 GROUP BY"},
                      BadSql{"SELECT 1 trailing junk ,"},
                      BadSql{"SELECT COUNT(1, 2) FROM t"},
                      BadSql{"INSERT INTO VALUES (1)"},
                      BadSql{"CREATE TABLE t (a UNKNOWNTYPE)"},
                      BadSql{"SELECT 1 FROM t LIMIT x"},
                      BadSql{"SELECT (1 FROM t"},
                      BadSql{"UPDATE t SET a = 1"}));

TEST(ParserTest, ConjunctHelpers) {
  auto stmt = ParseOk("SELECT 1 FROM t WHERE a = 1 AND b = 2 AND (c = 3 OR "
                      "d = 4)");
  auto conjuncts = SplitConjuncts(*stmt->where);
  EXPECT_EQ(conjuncts.size(), 3u);
  auto ptrs = ConjunctPtrs(*stmt->where);
  EXPECT_EQ(ptrs.size(), 3u);
  // AndTogether reassembles an equivalent tree.
  ExprPtr rebuilt = AndTogether(std::move(conjuncts));
  auto again = SplitConjuncts(*rebuilt);
  EXPECT_EQ(again.size(), 3u);
  EXPECT_EQ(AndTogether({}), nullptr);
}

}  // namespace
}  // namespace datalawyer
