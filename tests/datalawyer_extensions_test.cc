// Tests for the extensions beyond the paper's core: approximate policy
// guards, violation reports, periodic compaction, and usage-log queries.

#include <gtest/gtest.h>

#include "core/datalawyer.h"
#include "workload/mimic.h"
#include "workload/paper_policies.h"
#include "workload/paper_queries.h"

namespace datalawyer {
namespace {

class ExtensionsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(LoadMimicData(&db_, MimicConfig::Tiny()).ok());
  }

  std::unique_ptr<DataLawyer> Make(DataLawyerOptions options = {}) {
    return std::make_unique<DataLawyer>(
        &db_, UsageLog::WithStandardGenerators(),
        std::make_unique<ManualClock>(0, 10), options);
  }

  Database db_;
};

// ---- approximate policy guards (§6 future work) ----

TEST_F(ExtensionsTest, GuardSkipsPreciseCheckWhenClean) {
  auto dl = Make();
  // Precise: P6-style provenance policy. Guard: "did uid 1 query at all?"
  // — Users-only, far cheaper, and a sound over-approximation.
  ASSERT_TRUE(dl->AddPolicyWithGuard(
                    "p6", PaperPolicies::P6(1, 300, 1000),
                    "SELECT DISTINCT 'suspicious' FROM users u, clock c "
                    "WHERE u.uid = 1 AND u.ts > c.ts - 300")
                  .ok());
  QueryContext other;
  other.uid = 0;
  ASSERT_TRUE(dl->Execute(PaperQueries::W1(), other).ok());
  // Guard empty for uid 0: the provenance log never materializes.
  EXPECT_FALSE(dl->usage_log()->IsGenerated("provenance"));
  EXPECT_GE(dl->last_stats().policies_pruned_early, 1u);

  QueryContext suspect;
  suspect.uid = 1;
  ASSERT_TRUE(dl->Execute(PaperQueries::W1(), suspect).ok());
  // Guard fires for uid 1: the precise check ran, and the d_patients
  // provenance row is retained by P6's witness for the sliding window.
  EXPECT_GT(dl->usage_log()->main_table("provenance")->NumRows(), 0u);
}

TEST_F(ExtensionsTest, GuardedPolicyStillRejectsViolations) {
  auto dl = Make();
  ASSERT_TRUE(dl->AddPolicyWithGuard(
                    "p3", PaperPolicies::P3(1, 50),
                    "SELECT DISTINCT 'suspicious' FROM users u, clock c "
                    "WHERE u.uid = 1 AND u.ts > c.ts - 20")
                  .ok());
  QueryContext ctx;
  ctx.uid = 1;
  auto result = dl->Execute("SELECT * FROM d_patients", ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsPolicyViolation());
  QueryContext clean;
  clean.uid = 0;
  EXPECT_TRUE(dl->Execute("SELECT * FROM d_patients", clean).ok());
}

TEST_F(ExtensionsTest, GuardRegistrationValidatesBothStatements) {
  auto dl = Make();
  EXPECT_FALSE(dl->AddPolicyWithGuard("bad", PaperPolicies::P6(),
                                      "SELECT nonsense FROM nowhere")
                   .ok());
  EXPECT_EQ(dl->NumPolicies(), 0u);  // rolled back
  EXPECT_FALSE(
      dl->AddPolicyWithGuard("bad2", "SELECT x FROM nope", "SELECT 1").ok());
  EXPECT_EQ(dl->NumPolicies(), 0u);
}

TEST_F(ExtensionsTest, GuardWorksUnderSerialStrategy) {
  DataLawyerOptions options;
  options.strategy = EvalStrategy::kSerial;
  auto dl = Make(options);
  ASSERT_TRUE(dl->AddPolicyWithGuard(
                    "p6", PaperPolicies::P6(1, 300, 1000),
                    "SELECT DISTINCT 's' FROM users u, clock c "
                    "WHERE u.uid = 1 AND u.ts > c.ts - 300")
                  .ok());
  QueryContext ctx;
  ctx.uid = 0;
  ASSERT_TRUE(dl->Execute(PaperQueries::W1(), ctx).ok());
  EXPECT_GE(dl->last_stats().policies_pruned_early, 1u);
  ctx.uid = 1;
  ASSERT_TRUE(dl->Execute(PaperQueries::W1(), ctx).ok());
}

// ---- violation reports (§6 debugging) ----

TEST_F(ExtensionsTest, ViolationReportNamesThePolicy) {
  auto dl = Make();
  for (const auto& [name, sql] : PaperPolicies::All()) {
    ASSERT_TRUE(dl->AddPolicy(name, sql).ok());
  }
  QueryContext ctx;
  ctx.uid = 1;
  auto result = dl->Execute(
      "SELECT o.medication, p.sex FROM poe_order o, d_patients p "
      "WHERE o.subject_id = p.subject_id",
      ctx);
  ASSERT_FALSE(result.ok());
  ASSERT_EQ(dl->last_violations().size(), 1u);
  const ViolationReport& report = dl->last_violations()[0];
  EXPECT_EQ(report.policy_name, "p2");
  EXPECT_FALSE(report.policy_sql.empty());
  ASSERT_EQ(report.messages.size(), 1u);
  EXPECT_NE(report.messages[0].find("P2 violated"), std::string::npos);

  // The report clears on the next compliant query.
  ASSERT_TRUE(dl->Execute(PaperQueries::W1(), ctx).ok());
  EXPECT_TRUE(dl->last_violations().empty());
}

TEST_F(ExtensionsTest, UnionStrategyAttributesViolations) {
  DataLawyerOptions options = DataLawyerOptions::NoOpt();
  auto dl = Make(options);
  ASSERT_TRUE(dl->AddPolicy("p2", PaperPolicies::P2()).ok());
  ASSERT_TRUE(dl->AddPolicy("p3", PaperPolicies::P3(1, 50)).ok());
  QueryContext ctx;
  ctx.uid = 1;
  // Violates P3 only.
  auto result = dl->Execute("SELECT * FROM d_patients", ctx);
  ASSERT_FALSE(result.ok());
  ASSERT_EQ(dl->last_violations().size(), 1u);
  EXPECT_EQ(dl->last_violations()[0].policy_name, "p3");
}

// ---- periodic compaction (§5.2) ----

TEST_F(ExtensionsTest, PeriodicCompactionStillBoundsTheLog) {
  DataLawyerOptions options;
  options.compaction_period = 10;
  auto dl = Make(options);
  ASSERT_TRUE(dl->AddPolicy("p6", PaperPolicies::P6(1, 300, 1000)).ok());
  QueryContext ctx;
  ctx.uid = 1;
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(dl->Execute(PaperQueries::W1(), ctx).ok());
  }
  // Window covers 30 queries; with lazy pruning the log may briefly exceed
  // it by up to one period, never more.
  EXPECT_LE(dl->usage_log()->main_table("provenance")->NumRows(), 45u);
  EXPECT_GT(dl->usage_log()->main_table("provenance")->NumRows(), 10u);
}

TEST_F(ExtensionsTest, PeriodicCompactionMatchesEagerVerdicts) {
  DataLawyerOptions eager;
  DataLawyerOptions lazy;
  lazy.compaction_period = 7;
  auto a = Make(eager);
  auto b = Make(lazy);
  for (auto* dl : {a.get(), b.get()}) {
    ASSERT_TRUE(dl->AddPolicy("p6", PaperPolicies::P6(1, 300, 25)).ok());
    ASSERT_TRUE(
        dl->AddPolicy("rate", PaperPolicies::RateLimitForUser(1, 400, 20))
            .ok());
  }
  QueryContext ctx;
  ctx.uid = 1;
  int disagreements = 0, rejections = 0;
  for (int i = 0; i < 50; ++i) {
    bool ra = a->Execute(PaperQueries::W1(), ctx).ok();
    bool rb = b->Execute(PaperQueries::W1(), ctx).ok();
    if (ra != rb) ++disagreements;
    if (!ra) ++rejections;
  }
  EXPECT_EQ(disagreements, 0);
  EXPECT_GT(rejections, 0);
}

// ---- asynchronous compaction (§5.1's multi-threaded remark) ----

TEST_F(ExtensionsTest, AsyncCompactionMatchesSyncVerdictsAndLog) {
  DataLawyerOptions sync_options;
  DataLawyerOptions async_options;
  async_options.async_compaction = true;
  auto sync_dl = Make(sync_options);
  auto async_dl = Make(async_options);
  for (auto* dl : {sync_dl.get(), async_dl.get()}) {
    ASSERT_TRUE(dl->AddPolicy("p6", PaperPolicies::P6(1, 300, 28)).ok());
    ASSERT_TRUE(
        dl->AddPolicy("rate", PaperPolicies::RateLimitForUser(1, 400, 25))
            .ok());
  }
  QueryContext ctx;
  ctx.uid = 1;
  int rejections = 0;
  for (int i = 0; i < 60; ++i) {
    bool a = sync_dl->Execute(PaperQueries::W1(), ctx).ok();
    bool b = async_dl->Execute(PaperQueries::W1(), ctx).ok();
    ASSERT_EQ(a, b) << "step " << i;
    if (!a) ++rejections;
  }
  EXPECT_GT(rejections, 0);

  // After draining the worker, both logs hold identical row counts.
  ASSERT_TRUE(async_dl->Flush().ok());
  for (const char* rel : {"users", "provenance"}) {
    EXPECT_EQ(async_dl->usage_log()->main_table(rel)->NumRows(),
              sync_dl->usage_log()->main_table(rel)->NumRows())
        << rel;
  }
  // The completed compaction's stats are retrievable.
  EXPECT_GE(async_dl->last_compaction_stats().mark_ms, 0.0);
}

TEST_F(ExtensionsTest, AsyncCompactionKeepsUserLatencyFree) {
  DataLawyerOptions options;
  options.async_compaction = true;
  auto dl = Make(options);
  ASSERT_TRUE(dl->AddPolicy("p6", PaperPolicies::P6(1, 300, 1000)).ok());
  QueryContext ctx;
  ctx.uid = 1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(dl->Execute(PaperQueries::W1(), ctx).ok());
    // The per-query stats never include compaction time in async mode.
    EXPECT_EQ(dl->last_stats().compact_mark_ms, 0.0);
  }
  ASSERT_TRUE(dl->Flush().ok());
}

// ---- footnote 7: policies only see history from their registration ----

TEST_F(ExtensionsTest, LateAddedPolicyIgnoresOlderHistory) {
  auto dl = Make();
  // An unrelated policy keeps the Users log populated from the start.
  ASSERT_TRUE(
      dl->AddPolicy("keepalive", PaperPolicies::RateLimitForUser(1, 100000, 50))
          .ok());
  QueryContext ctx;
  ctx.uid = 1;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(dl->Execute(PaperQueries::W1(), ctx).ok());
  }
  ASSERT_EQ(dl->usage_log()->main_table("users")->NumRows(), 6u);

  // Register a strict limit now: 3 queries per huge window. The 6 earlier
  // queries must not count (footnote 7), so 3 more are admitted.
  ASSERT_TRUE(
      dl->AddPolicy("strict", PaperPolicies::RateLimitForUser(1, 100000, 3))
          .ok());
  int admitted = 0;
  for (int i = 0; i < 5; ++i) {
    if (dl->Execute(PaperQueries::W1(), ctx).ok()) ++admitted;
  }
  EXPECT_EQ(admitted, 3);
}

TEST_F(ExtensionsTest, HistoryRestrictionAppearsInActivePolicySql) {
  auto dl = Make();
  for (int i = 0; i < 4; ++i) dl->clock()->Tick();  // now = 40
  ASSERT_TRUE(
      dl->AddPolicy("late", PaperPolicies::RateLimitForUser(1, 500, 3)).ok());
  ASSERT_TRUE(dl->Prepare().ok());
  ASSERT_EQ(dl->active_policies().size(), 1u);
  EXPECT_NE(dl->active_policies()[0].sql.find("(u.ts > 40)"),
            std::string::npos)
      << dl->active_policies()[0].sql;
}

// ---- WouldAllow dry runs ----

TEST_F(ExtensionsTest, WouldAllowPredictsWithoutSideEffects) {
  auto dl = Make();
  ASSERT_TRUE(dl->AddPolicy("p3", PaperPolicies::P3(1, 50)).ok());
  QueryContext ctx;
  ctx.uid = 1;

  int64_t before = dl->clock()->Now();
  EXPECT_TRUE(dl->WouldAllow(PaperQueries::W1(), ctx).ok());
  Status rejected = dl->WouldAllow("SELECT * FROM d_patients", ctx);
  EXPECT_TRUE(rejected.IsPolicyViolation());
  ASSERT_EQ(dl->last_violations().size(), 1u);
  EXPECT_EQ(dl->last_violations()[0].policy_name, "p3");

  // No side effects: clock unchanged, log untouched.
  EXPECT_EQ(dl->clock()->Now(), before);
  EXPECT_EQ(dl->usage_log()->main_table("users")->NumRows(), 0u);
  EXPECT_EQ(dl->usage_log()->delta_table("users")->NumRows(), 0u);

  // The predictions match what Execute then does.
  EXPECT_TRUE(dl->Execute(PaperQueries::W1(), ctx).ok());
  EXPECT_FALSE(dl->Execute("SELECT * FROM d_patients", ctx).ok());
}

TEST_F(ExtensionsTest, WouldAllowSeesAccumulatedHistory) {
  auto dl = Make();
  ASSERT_TRUE(
      dl->AddPolicy("rate", PaperPolicies::RateLimitForUser(1, 1000, 2)).ok());
  QueryContext ctx;
  ctx.uid = 1;
  EXPECT_TRUE(dl->WouldAllow(PaperQueries::W1(), ctx).ok());
  ASSERT_TRUE(dl->Execute(PaperQueries::W1(), ctx).ok());
  ASSERT_TRUE(dl->Execute(PaperQueries::W1(), ctx).ok());
  // A third query would exceed the limit; the probe predicts it.
  EXPECT_TRUE(dl->WouldAllow(PaperQueries::W1(), ctx).IsPolicyViolation());
  // Probing did not consume anything: a different user is still fine.
  QueryContext other;
  other.uid = 2;
  EXPECT_TRUE(dl->WouldAllow(PaperQueries::W1(), other).ok());
  EXPECT_FALSE(dl->Execute(PaperQueries::W1(), ctx).ok());
}

TEST_F(ExtensionsTest, WouldAllowHandlesDdlAndBadSql) {
  auto dl = Make();
  ASSERT_TRUE(dl->AddPolicy("p2", PaperPolicies::P2()).ok());
  QueryContext ctx;
  EXPECT_TRUE(dl->WouldAllow("CREATE TABLE z (a INT)", ctx).ok());
  EXPECT_FALSE(db_.HasTable("z"));  // probe does not execute DDL either
  Status bad = dl->WouldAllow("SELECT nope FROM nowhere", ctx);
  EXPECT_FALSE(bad.ok());
  EXPECT_FALSE(bad.IsPolicyViolation());
}

// ---- usage-log queries ----

TEST_F(ExtensionsTest, QueryUsageLogSeesHistoryAndClock) {
  auto dl = Make();
  // A rate limit on uid 3 keeps that user's windowed history in the log.
  ASSERT_TRUE(
      dl->AddPolicy("rate", PaperPolicies::RateLimitForUser(3, 1000, 50))
          .ok());
  ASSERT_TRUE(dl->AddPolicy("p6", PaperPolicies::P6()).ok());
  QueryContext ctx;
  ctx.uid = 3;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(dl->Execute(PaperQueries::W1(), ctx).ok());
  }
  auto count = dl->QueryUsageLog("SELECT COUNT(*) FROM users");
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(count->rows[0][0], Value(int64_t{4}));
  auto clock = dl->QueryUsageLog("SELECT c.ts FROM clock c");
  ASSERT_TRUE(clock.ok());
  EXPECT_EQ(clock->rows[0][0], Value(int64_t{40}));
  // Joining log and database relations works.
  auto joined = dl->QueryUsageLog(
      "SELECT COUNT(*) FROM provenance p, d_patients d "
      "WHERE p.itid = d.subject_id");
  ASSERT_TRUE(joined.ok());
  // Writes are rejected.
  EXPECT_FALSE(dl->QueryUsageLog("DELETE FROM users").ok());
}

}  // namespace
}  // namespace datalawyer
