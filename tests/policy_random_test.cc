// End-to-end randomized property: policy sets drawn from the template
// families, enforced over random query streams, must produce identical
// verdict sequences under the fully optimized system and the NoOpt
// baseline — and the optimized system's log must stay bounded.

#include <gtest/gtest.h>

#include <random>

#include "core/datalawyer.h"
#include "policy/templates.h"
#include "workload/mimic.h"
#include "workload/paper_queries.h"

namespace datalawyer {
namespace {

struct RandomScenario {
  uint64_t seed;
};

class RandomPolicyScenarioTest
    : public ::testing::TestWithParam<RandomScenario> {};

std::vector<std::pair<std::string, std::string>> DrawPolicies(
    std::mt19937_64* rng) {
  std::vector<std::pair<std::string, std::string>> out;
  int n = 2 + int((*rng)() % 4);
  for (int i = 0; i < n; ++i) {
    std::string name = "rp" + std::to_string(i);
    switch ((*rng)() % 6) {
      case 0:
        out.emplace_back(name, PolicyTemplates::RateLimit(
                                   100 + int64_t((*rng)() % 400),
                                   2 + int64_t((*rng)() % 6),
                                   int64_t((*rng)() % 3)));
        break;
      case 1:
        out.emplace_back(name,
                         PolicyTemplates::JoinProhibition(
                             "poe_order", {"poe_med"}, int64_t((*rng)() % 3)));
        break;
      case 2:
        out.emplace_back(name, PolicyTemplates::OutputRowCap(
                                   "d_patients",
                                   20 + int64_t((*rng)() % 300)));
        break;
      case 3:
        out.emplace_back(name, PolicyTemplates::WindowedDistinctTupleCap(
                                   "d_patients",
                                   200 + int64_t((*rng)() % 600),
                                   30 + int64_t((*rng)() % 300),
                                   int64_t((*rng)() % 3)));
        break;
      case 4:
        out.emplace_back(name, PolicyTemplates::TupleReuseCap(
                                   "d_patients",
                                   200 + int64_t((*rng)() % 400),
                                   3 + int64_t((*rng)() % 20)));
        break;
      default:
        out.emplace_back(name, PolicyTemplates::GroupLicense(
                                   "X", "d_patients",
                                   300 + int64_t((*rng)() % 500), 1));
        break;
    }
  }
  return out;
}

std::string DrawQuery(std::mt19937_64* rng) {
  switch ((*rng)() % 6) {
    case 0:
      return PaperQueries::W1();
    case 1:
      return "SELECT * FROM d_patients WHERE subject_id < " +
             std::to_string(5 + (*rng)() % 120);
    case 2:
      return "SELECT o.medication, m.dose FROM poe_order o, poe_med m "
             "WHERE o.order_id = m.order_id AND o.order_id = " +
             std::to_string((*rng)() % 100);
    case 3:
      return "SELECT o.medication, p.sex FROM poe_order o, d_patients p "
             "WHERE o.subject_id = p.subject_id AND o.order_id = " +
             std::to_string((*rng)() % 100);
    case 4:
      return "SELECT c.subject_id, COUNT(*) FROM chartevents c "
             "WHERE c.subject_id < 30 AND c.itemid = 211 "
             "GROUP BY c.subject_id";
    default:
      return "SELECT p.sex, COUNT(*) FROM d_patients p GROUP BY p.sex";
  }
}

TEST_P(RandomPolicyScenarioTest, OptimizedAgreesWithNoOptEverywhere) {
  std::mt19937_64 rng(GetParam().seed);
  Database db;
  ASSERT_TRUE(LoadMimicData(&db, MimicConfig::Tiny()).ok());

  auto policies = DrawPolicies(&rng);
  DataLawyer optimized(&db, UsageLog::WithStandardGenerators(),
                       std::make_unique<ManualClock>(0, 10),
                       DataLawyerOptions::AllOptimizations());
  DataLawyer baseline(&db, UsageLog::WithStandardGenerators(),
                      std::make_unique<ManualClock>(0, 10),
                      DataLawyerOptions::NoOpt());
  for (const auto& [name, sql] : policies) {
    ASSERT_TRUE(optimized.AddPolicy(name, sql).ok()) << sql;
    ASSERT_TRUE(baseline.AddPolicy(name, sql).ok()) << sql;
  }

  int rejections = 0;
  for (int step = 0; step < 50; ++step) {
    QueryContext ctx;
    ctx.uid = int64_t(rng() % 3);
    std::string sql = DrawQuery(&rng);
    auto a = optimized.Execute(sql, ctx);
    auto b = baseline.Execute(sql, ctx);
    ASSERT_EQ(a.ok(), b.ok())
        << "seed " << GetParam().seed << " step " << step << " uid "
        << ctx.uid << "\n  query: " << sql
        << "\n  optimized: " << a.status().ToString()
        << "\n  baseline:  " << b.status().ToString();
    if (a.ok()) {
      ASSERT_EQ(a->NumRows(), b->NumRows());
    } else {
      ++rejections;
    }
  }

  // The optimized log never exceeds the baseline's full history.
  size_t optimized_rows = 0, baseline_rows = 0;
  for (const char* rel : {"users", "schema", "provenance"}) {
    optimized_rows += optimized.usage_log()->main_table(rel)->NumRows();
    baseline_rows += baseline.usage_log()->main_table(rel)->NumRows();
  }
  EXPECT_LE(optimized_rows, baseline_rows);
  (void)rejections;  // some seeds reject, some don't — both fine
}

// Differential property for incremental evaluation: the same random
// workload, run with incremental evaluation on and off, must agree on
// every verdict, violation message, and captured witness — the incremental
// path either reproduces the full evaluation byte-for-byte or falls back
// to it. Compaction and unification are pinned off on both sides so the
// states survive long enough to actually serve verdicts (compaction's
// steady-state deletions would otherwise keep invalidating them).
TEST_P(RandomPolicyScenarioTest, IncrementalAgreesWithFullEverywhere) {
  std::mt19937_64 rng(GetParam().seed);
  Database db;
  ASSERT_TRUE(LoadMimicData(&db, MimicConfig::Tiny()).ok());

  auto policies = DrawPolicies(&rng);
  DataLawyerOptions with = DataLawyerOptions::AllOptimizations();
  with.enable_unification = false;
  with.enable_log_compaction = false;
  with.enable_preemptive_compaction = false;
  DataLawyerOptions without = with;
  without.enable_incremental_eval = false;

  DataLawyer incremental(&db, UsageLog::WithStandardGenerators(),
                         std::make_unique<ManualClock>(0, 10), with);
  DataLawyer full(&db, UsageLog::WithStandardGenerators(),
                  std::make_unique<ManualClock>(0, 10), without);
  for (const auto& [name, sql] : policies) {
    ASSERT_TRUE(incremental.AddPolicy(name, sql).ok()) << sql;
    ASSERT_TRUE(full.AddPolicy(name, sql).ok()) << sql;
  }

  uint64_t hits = 0;
  for (int step = 0; step < 50; ++step) {
    QueryContext ctx;
    ctx.uid = int64_t(rng() % 3);
    std::string sql = DrawQuery(&rng);
    auto a = incremental.Execute(sql, ctx);
    auto b = full.Execute(sql, ctx);
    ASSERT_EQ(a.status().ToString(), b.status().ToString())
        << "seed " << GetParam().seed << " step " << step << " uid "
        << ctx.uid << "\n  query: " << sql;
    if (a.ok()) {
      ASSERT_EQ(a->NumRows(), b->NumRows());
    }
    ASSERT_EQ(incremental.last_stats().violations,
              full.last_stats().violations)
        << "seed " << GetParam().seed << " step " << step;
    hits += incremental.last_stats().incremental_hits;
    ASSERT_EQ(full.last_stats().incremental_hits, 0u);

    // Witness capture rides the unchanged full re-evaluation at rejection
    // time, so the decision records' witness sets must match row-for-row.
    const auto& ra = incremental.decision_store().records();
    const auto& rb = full.decision_store().records();
    ASSERT_EQ(ra.empty(), rb.empty());
    if (!ra.empty()) {
      const DecisionRecord& da = ra.back();
      const DecisionRecord& db_rec = rb.back();
      ASSERT_EQ(std::string(da.verdict()), std::string(db_rec.verdict()));
      ASSERT_EQ(da.messages, db_rec.messages);
      ASSERT_EQ(da.witnesses.size(), db_rec.witnesses.size());
      for (size_t w = 0; w < da.witnesses.size(); ++w) {
        EXPECT_EQ(da.witnesses[w].relation, db_rec.witnesses[w].relation);
        EXPECT_EQ(da.witnesses[w].row_id, db_rec.witnesses[w].row_id);
        EXPECT_EQ(da.witnesses[w].ts, db_rec.witnesses[w].ts);
        EXPECT_EQ(da.witnesses[w].values, db_rec.witnesses[w].values);
      }
    }
  }

  // If any policy classified as incrementalizable, the fast path must have
  // actually served verdicts (otherwise this differential proves nothing).
  bool any_incremental = false;
  for (const PolicyStats& s : incremental.PolicyReport()) {
    if (s.incremental_class == "incremental") any_incremental = true;
  }
  if (any_incremental) {
    EXPECT_GT(hits, 0u) << "seed " << GetParam().seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RandomPolicyScenarioTest,
    ::testing::Values(RandomScenario{101}, RandomScenario{202},
                      RandomScenario{303}, RandomScenario{404},
                      RandomScenario{505}, RandomScenario{606},
                      RandomScenario{707}, RandomScenario{808},
                      RandomScenario{909}, RandomScenario{1010}));

}  // namespace
}  // namespace datalawyer
