#include <gtest/gtest.h>

#include "exec/engine.h"
#include "plan/optimizer.h"

namespace datalawyer {
namespace {

class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<Engine>(&db_);
    ASSERT_TRUE(engine_
                    ->ExecuteScript(R"sql(
      CREATE TABLE big (k INT, v TEXT);
      INSERT INTO big VALUES (1, 'a'), (2, 'b'), (3, 'c');
      CREATE TABLE small (k INT, w DOUBLE);
      INSERT INTO small VALUES (1, 0.5), (2, 1.5);
    )sql")
                    .ok());
  }

  std::string Plan(const std::string& sql) {
    auto result = engine_->ExplainSql(sql);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? *result : "";
  }

  Database db_;
  std::unique_ptr<Engine> engine_;
};

TEST_F(ExplainTest, FullScanWithoutIndex) {
  std::string plan = Plan("SELECT * FROM big WHERE big.k = 2");
  EXPECT_NE(plan.find("scan big (3 rows)"), std::string::npos);
  EXPECT_NE(plan.find("[full scan]"), std::string::npos);
  EXPECT_NE(plan.find("pushdown: (big.k = 2)"), std::string::npos);
  EXPECT_NE(plan.find("project 2 columns"), std::string::npos);
}

TEST_F(ExplainTest, IndexProbeAfterBuildIndex) {
  ASSERT_TRUE(db_.FindTable("big")->BuildIndex("k").ok());
  std::string plan = Plan("SELECT * FROM big WHERE big.k = 2");
  EXPECT_NE(plan.find("[index probe (big.k = 2)]"), std::string::npos);
  // Range predicates cannot use the hash index.
  std::string range = Plan("SELECT * FROM big WHERE big.k > 1");
  EXPECT_NE(range.find("[full scan]"), std::string::npos);
}

TEST_F(ExplainTest, JoinAlgorithms) {
  // With small listed first, FROM order and the size-ordered plan coincide,
  // so the expectations hold with the optimizer on or off.
  std::string hash =
      Plan("SELECT big.v FROM small, big WHERE big.k = small.k");
  EXPECT_NE(hash.find("hash join big (3 rows)"), std::string::npos);
  EXPECT_NE(hash.find("on (big.k = small.k)"), std::string::npos);

  std::string loop =
      Plan("SELECT big.v FROM small, big WHERE big.k < small.k");
  EXPECT_NE(loop.find("nested loop join big"), std::string::npos);
  EXPECT_NE(loop.find("residual: (big.k < small.k)"), std::string::npos);
}

TEST_F(ExplainTest, JoinReorderedSmallestFirst) {
  if (OptimizerDisabledByEnv()) GTEST_SKIP() << "optimizer disabled";
  // big listed first, but the optimizer builds the join from the smaller
  // relation, so small (2 rows) becomes the outer scan.
  std::string plan =
      Plan("SELECT big.v FROM big, small WHERE big.k = small.k");
  EXPECT_NE(plan.find("scan small (2 rows)"), std::string::npos);
  EXPECT_NE(plan.find("hash join big (3 rows)"), std::string::npos);
}

TEST_F(ExplainTest, ConstantFoldingShowsProvablyEmpty) {
  if (OptimizerDisabledByEnv()) GTEST_SKIP() << "optimizer disabled";
  std::string plan = Plan("SELECT big.v FROM big WHERE 1 = 2");
  EXPECT_NE(plan.find("[provably empty]"), std::string::npos);
  // A true constant folds away entirely.
  std::string kept = Plan("SELECT big.v FROM big WHERE 1 = 1");
  EXPECT_EQ(kept.find("pushdown"), std::string::npos);
}

TEST_F(ExplainTest, AggregateDistinctOnUnionStages) {
  std::string agg = Plan(
      "SELECT big.v, COUNT(*) FROM big GROUP BY big.v HAVING COUNT(*) > 1");
  EXPECT_NE(agg.find("aggregate [1 group keys, 2 aggregates]"),
            std::string::npos);
  EXPECT_NE(agg.find("having (count(*) > 1)"), std::string::npos);

  std::string don = Plan("SELECT DISTINCT ON (big.v) big.* FROM big");
  EXPECT_NE(don.find("distinct on (1 keys)"), std::string::npos);

  std::string uni =
      Plan("SELECT big.k FROM big UNION SELECT small.k FROM small");
  EXPECT_NE(uni.find("UNION"), std::string::npos);

  std::string sorted = Plan("SELECT big.k FROM big ORDER BY k LIMIT 2");
  EXPECT_NE(sorted.find("sort 1 keys"), std::string::npos);
  EXPECT_NE(sorted.find("limit 2"), std::string::npos);

  std::string constant = Plan("SELECT 1");
  EXPECT_NE(constant.find("constant row"), std::string::npos);
}

TEST_F(ExplainTest, SubqueryShown) {
  std::string plan = Plan(
      "SELECT s.n FROM (SELECT COUNT(*) AS n FROM big) s WHERE s.n > 1");
  EXPECT_NE(plan.find("scan subquery s"), std::string::npos);
}

TEST_F(ExplainTest, Errors) {
  EXPECT_FALSE(engine_->ExplainSql("DROP TABLE big").ok());
  EXPECT_FALSE(engine_->ExplainSql("SELECT zzz FROM big").ok());
}

}  // namespace
}  // namespace datalawyer
