#ifndef DATALAWYER_ANALYSIS_JOIN_GRAPH_H_
#define DATALAWYER_ANALYSIS_JOIN_GRAPH_H_

#include <string>
#include <vector>

#include "sql/ast.h"

namespace datalawyer {

/// A column identified by its FROM-item alias (both lowercase).
struct QualifiedColumn {
  std::string qualifier;
  std::string column;

  bool operator==(const QualifiedColumn& other) const {
    return qualifier == other.qualifier && column == other.column;
  }
};

/// Equivalence classes of columns connected by `a.x = b.y` conjuncts in a
/// query's WHERE clause (transitively closed via union-find).
///
/// Used by:
///  * §4.1.1 time-independence — "all timestamp attributes from all
///    relations are joined" means all log relations' ts columns share a class
///  * §4.1.2 witnesses — a log relation's *neighborhood* N(Ri) is the set of
///    log relations whose ts is in the same class as Ri.ts.
class JoinGraph {
 public:
  /// Analyzes the WHERE clause of `stmt` (top level only; subqueries get
  /// their own graphs).
  static JoinGraph Build(const SelectStmt& stmt);

  /// True if both columns appear in some equi-join chain together.
  bool SameClass(const QualifiedColumn& a, const QualifiedColumn& b) const;

  /// All members of the class containing `col` (including `col` itself if
  /// it participates in any equi-join); empty if it does not.
  std::vector<QualifiedColumn> ClassMembers(const QualifiedColumn& col) const;

  /// The distinct equivalence classes (each with >= 2 members).
  std::vector<std::vector<QualifiedColumn>> Classes() const;

 private:
  int Find(int i) const;
  void Union(int a, int b);
  int InternId(const QualifiedColumn& col) const;

  std::vector<QualifiedColumn> columns_;
  mutable std::vector<int> parent_;
};

}  // namespace datalawyer

#endif  // DATALAWYER_ANALYSIS_JOIN_GRAPH_H_
