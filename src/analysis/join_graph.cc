#include "analysis/join_graph.h"

#include "common/strings.h"

namespace datalawyer {

namespace {

/// Extracts (qualifier, column) if `e` is a column reference.
bool AsQualifiedColumn(const Expr& e, QualifiedColumn* out) {
  if (e.kind() != ExprKind::kColumnRef) return false;
  const auto& c = static_cast<const ColumnRefExpr&>(e);
  out->qualifier = ToLower(c.qualifier);
  out->column = ToLower(c.column);
  return true;
}

}  // namespace

JoinGraph JoinGraph::Build(const SelectStmt& stmt) {
  JoinGraph graph;
  if (!stmt.where) return graph;
  std::vector<ExprPtr> conjuncts = SplitConjuncts(*stmt.where);
  for (const ExprPtr& conj : conjuncts) {
    if (conj->kind() != ExprKind::kBinary) continue;
    const auto& b = static_cast<const BinaryExpr&>(*conj);
    if (b.op != "=") continue;
    QualifiedColumn lhs, rhs;
    if (!AsQualifiedColumn(*b.lhs, &lhs) || !AsQualifiedColumn(*b.rhs, &rhs)) {
      continue;
    }
    int li = graph.InternId(lhs);
    if (li < 0) {
      graph.columns_.push_back(lhs);
      graph.parent_.push_back(int(graph.parent_.size()));
      li = int(graph.columns_.size()) - 1;
    }
    int ri = graph.InternId(rhs);
    if (ri < 0) {
      graph.columns_.push_back(rhs);
      graph.parent_.push_back(int(graph.parent_.size()));
      ri = int(graph.columns_.size()) - 1;
    }
    graph.Union(li, ri);
  }
  return graph;
}

int JoinGraph::InternId(const QualifiedColumn& col) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == col) return int(i);
  }
  return -1;
}

int JoinGraph::Find(int i) const {
  while (parent_[i] != i) {
    parent_[i] = parent_[parent_[i]];
    i = parent_[i];
  }
  return i;
}

void JoinGraph::Union(int a, int b) { parent_[Find(a)] = Find(b); }

bool JoinGraph::SameClass(const QualifiedColumn& a,
                          const QualifiedColumn& b) const {
  if (a == b) return true;
  int ai = InternId(a), bi = InternId(b);
  if (ai < 0 || bi < 0) return false;
  return Find(ai) == Find(bi);
}

std::vector<QualifiedColumn> JoinGraph::ClassMembers(
    const QualifiedColumn& col) const {
  std::vector<QualifiedColumn> out;
  int id = InternId(col);
  if (id < 0) return out;
  int root = Find(id);
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (Find(int(i)) == root) out.push_back(columns_[i]);
  }
  return out;
}

std::vector<std::vector<QualifiedColumn>> JoinGraph::Classes() const {
  std::vector<std::vector<QualifiedColumn>> out;
  std::vector<int> roots;
  for (size_t i = 0; i < columns_.size(); ++i) {
    int root = Find(int(i));
    size_t idx = 0;
    for (; idx < roots.size(); ++idx) {
      if (roots[idx] == root) break;
    }
    if (idx == roots.size()) {
      roots.push_back(root);
      out.emplace_back();
    }
    out[idx].push_back(columns_[i]);
  }
  return out;
}

}  // namespace datalawyer
