#include "analysis/schema_lineage.h"

#include <set>

namespace datalawyer {

namespace {

struct BaseColumn {
  std::string irid;
  std::string icid;
  bool agg;
};

void CollectExprBase(const BoundQuery& bq, const Expr& expr, bool agg_context,
                     std::vector<BaseColumn>* out);

/// Resolves a flat slot of `bq` to base-table columns, looking through
/// subquery FROM items.
void CollectSlotBase(const BoundQuery& bq, size_t slot, bool agg_context,
                     std::vector<BaseColumn>* out) {
  for (size_t i = 0; i < bq.relations.size(); ++i) {
    size_t lo = bq.slot_offsets[i];
    size_t hi = lo + bq.relations[i].schema.NumColumns();
    if (slot < lo || slot >= hi) continue;
    const BoundRelation& rel = bq.relations[i];
    size_t col = slot - lo;
    if (rel.relation != nullptr) {
      out->push_back(BaseColumn{rel.table_name, rel.schema.column(col).name,
                                agg_context});
      return;
    }
    // Subquery: follow the corresponding output column of the inner query
    // (and, for UNION chains, of every member).
    for (const BoundQuery* member = rel.subquery.get(); member != nullptr;
         member = member->union_next.get()) {
      if (col >= member->output_columns.size()) break;
      const OutputColumn& inner = member->output_columns[col];
      if (inner.expr != nullptr) {
        CollectExprBase(*member, *inner.expr, agg_context, out);
      } else {
        CollectSlotBase(*member, inner.slot, agg_context, out);
      }
    }
    return;
  }
}

/// Names of every base table reachable under `bq`'s FROM items.
void CollectBaseRelations(const BoundQuery& bq, std::set<std::string>* out) {
  for (const BoundQuery* member = &bq; member != nullptr;
       member = member->union_next.get()) {
    for (const BoundRelation& rel : member->relations) {
      if (rel.relation != nullptr) {
        out->insert(rel.table_name);
      } else if (rel.subquery) {
        CollectBaseRelations(*rel.subquery, out);
      }
    }
  }
}

void CollectExprBase(const BoundQuery& bq, const Expr& expr, bool agg_context,
                     std::vector<BaseColumn>* out) {
  switch (expr.kind()) {
    case ExprKind::kLiteral:
      return;
    case ExprKind::kColumnRef: {
      auto it = bq.column_slots.find(&expr);
      if (it == bq.column_slots.end()) return;
      CollectSlotBase(bq, it->second, agg_context, out);
      return;
    }
    case ExprKind::kStar: {
      // Appears inside COUNT(*): derived from every FROM relation.
      std::set<std::string> rels;
      CollectBaseRelations(bq, &rels);
      for (const std::string& r : rels) {
        out->push_back(BaseColumn{r, "", agg_context});
      }
      return;
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(expr);
      CollectExprBase(bq, *b.lhs, agg_context, out);
      CollectExprBase(bq, *b.rhs, agg_context, out);
      return;
    }
    case ExprKind::kUnary:
      CollectExprBase(bq, *static_cast<const UnaryExpr&>(expr).operand,
                      agg_context, out);
      return;
    case ExprKind::kIsNull:
      CollectExprBase(bq, *static_cast<const IsNullExpr&>(expr).operand,
                      agg_context, out);
      return;
    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(expr);
      CollectExprBase(bq, *in.operand, agg_context, out);
      for (const ExprPtr& item : in.items) {
        CollectExprBase(bq, *item, agg_context, out);
      }
      return;
    }
    case ExprKind::kLike:
      CollectExprBase(bq, *static_cast<const LikeExpr&>(expr).operand,
                      agg_context, out);
      return;
    case ExprKind::kFuncCall: {
      const auto& f = static_cast<const FuncCallExpr&>(expr);
      bool inner_agg = agg_context || f.IsAggregate();
      if (f.star) {
        StarExpr star;
        CollectExprBase(bq, star, inner_agg, out);
      }
      for (const ExprPtr& arg : f.args) {
        CollectExprBase(bq, *arg, inner_agg, out);
      }
      return;
    }
  }
}

}  // namespace

std::vector<SchemaLogRow> ComputeSchemaLineage(const BoundQuery& bq) {
  std::vector<SchemaLogRow> rows;
  // (ocid, irid, icid, agg) dedup across UNION members.
  std::set<std::tuple<std::string, std::string, std::string, bool>> seen;

  for (const BoundQuery* member = &bq; member != nullptr;
       member = member->union_next.get()) {
    for (size_t i = 0; i < member->output_columns.size(); ++i) {
      // Output column names come from the first UNION member.
      const std::string& ocid = bq.output_columns[i].name;
      const OutputColumn& col = member->output_columns[i];
      std::vector<BaseColumn> bases;
      if (col.expr != nullptr) {
        CollectExprBase(*member, *col.expr, /*agg_context=*/false, &bases);
      } else {
        CollectSlotBase(*member, col.slot, /*agg_context=*/false, &bases);
      }
      for (const BaseColumn& base : bases) {
        auto key = std::make_tuple(ocid, base.irid, base.icid, base.agg);
        if (seen.insert(key).second) {
          rows.push_back(SchemaLogRow{ocid, base.irid, base.icid, base.agg});
        }
      }
    }
  }

  // Marker rows for relations that never reach the output (join/filter
  // partners) so join-prohibition policies can still see them.
  std::set<std::string> all_relations;
  CollectBaseRelations(bq, &all_relations);
  std::set<std::string> derived;
  for (const SchemaLogRow& r : rows) derived.insert(r.irid);
  for (const std::string& rel : all_relations) {
    if (!derived.count(rel)) {
      rows.push_back(SchemaLogRow{"", rel, "", false});
    }
  }
  return rows;
}

}  // namespace datalawyer
