#ifndef DATALAWYER_ANALYSIS_BOUND_QUERY_H_
#define DATALAWYER_ANALYSIS_BOUND_QUERY_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sql/ast.h"
#include "storage/table.h"

namespace datalawyer {

struct BoundQuery;

/// One resolved FROM item.
struct BoundRelation {
  std::string binding_name;  ///< alias in scope (lowercase)
  std::string table_name;    ///< base table name; empty for subqueries
  const RelationData* relation = nullptr;  ///< set for base tables
  std::unique_ptr<BoundQuery> subquery;    ///< set for subqueries
  TableSchema schema;  ///< visible schema of this FROM item
};

/// One column of the query's output.
struct OutputColumn {
  std::string name;
  ValueType type = ValueType::kNull;
  /// The select-item expression this column projects; nullptr when the
  /// column came from a `*` / `t.*` expansion, in which case `slot` holds
  /// the input slot to copy.
  const Expr* expr = nullptr;
  size_t slot = 0;
};

/// Result of binding one SELECT (per UNION member): resolved FROM items,
/// a flat slot layout for the joined row (relation i occupies
/// [slot_offsets[i], slot_offsets[i] + relations[i].schema.NumColumns())),
/// slot assignments for every column reference, the aggregate calls, and
/// the output schema.
struct BoundQuery {
  const SelectStmt* stmt = nullptr;  ///< not owned; must outlive the binding

  std::vector<BoundRelation> relations;
  std::vector<size_t> slot_offsets;
  size_t total_slots = 0;

  /// ColumnRefExpr* → flat slot in the joined row. Keyed by node pointer:
  /// a BoundQuery is only valid for the exact AST it was built from.
  std::unordered_map<const Expr*, size_t> column_slots;

  /// Distinct aggregate call sites in select items / HAVING / ORDER BY.
  std::vector<const FuncCallExpr*> aggregates;

  std::vector<OutputColumn> output_columns;
  TableSchema output_schema;

  bool has_aggregates = false;
  /// True if the query groups (explicit GROUP BY, or a global aggregate).
  bool is_grouped = false;

  std::unique_ptr<BoundQuery> union_next;

  /// Index of the FROM item binding `name`, or -1.
  int FindRelation(const std::string& name) const;
};

}  // namespace datalawyer

#endif  // DATALAWYER_ANALYSIS_BOUND_QUERY_H_
