#include "analysis/binder.h"

#include "common/strings.h"
#include "common/trace.h"

namespace datalawyer {

int BoundQuery::FindRelation(const std::string& name) const {
  for (size_t i = 0; i < relations.size(); ++i) {
    if (EqualsIgnoreCase(relations[i].binding_name, name)) return int(i);
  }
  return -1;
}

Result<std::unique_ptr<BoundQuery>> Binder::Bind(const SelectStmt& stmt) {
  DL_TRACE_SPAN("analysis.bind", "analysis");
  DL_ASSIGN_OR_RETURN(std::unique_ptr<BoundQuery> bq, BindOne(stmt));
  if (stmt.union_next) {
    DL_ASSIGN_OR_RETURN(bq->union_next, Bind(*stmt.union_next));
    if (bq->union_next->output_columns.size() != bq->output_columns.size()) {
      return Status::InvalidArgument(
          "UNION members have different arities (" +
          std::to_string(bq->output_columns.size()) + " vs " +
          std::to_string(bq->union_next->output_columns.size()) + ")");
    }
  }
  return bq;
}

Result<std::unique_ptr<BoundQuery>> Binder::BindOne(const SelectStmt& stmt) {
  auto bq = std::make_unique<BoundQuery>();
  bq->stmt = &stmt;

  // FROM items and slot layout.
  for (const TableRef& ref : stmt.from) {
    DL_RETURN_NOT_OK(BindFromItem(ref, bq.get()));
  }
  bq->slot_offsets.resize(bq->relations.size());
  size_t offset = 0;
  for (size_t i = 0; i < bq->relations.size(); ++i) {
    bq->slot_offsets[i] = offset;
    offset += bq->relations[i].schema.NumColumns();
  }
  bq->total_slots = offset;

  // Clause expressions.
  for (const SelectItem& item : stmt.items) {
    DL_RETURN_NOT_OK(BindExpr(*item.expr, bq.get(), /*allow_aggregates=*/true));
  }
  for (const ExprPtr& e : stmt.distinct_on) {
    DL_RETURN_NOT_OK(BindExpr(*e, bq.get(), /*allow_aggregates=*/false));
  }
  if (stmt.where) {
    if (ContainsAggregate(*stmt.where)) {
      return Status::InvalidArgument("aggregates are not allowed in WHERE");
    }
    DL_RETURN_NOT_OK(BindExpr(*stmt.where, bq.get(), false));
  }
  for (const ExprPtr& e : stmt.group_by) {
    if (ContainsAggregate(*e)) {
      return Status::InvalidArgument("aggregates are not allowed in GROUP BY");
    }
    DL_RETURN_NOT_OK(BindExpr(*e, bq.get(), false));
  }
  if (stmt.having) {
    DL_RETURN_NOT_OK(BindExpr(*stmt.having, bq.get(), true));
  }
  for (const OrderByItem& o : stmt.order_by) {
    // ORDER BY may name an output alias instead of an input column; such
    // refs are resolved by the executor against the output schema, so a
    // failed input binding here is tolerated for bare column refs.
    if (o.expr->kind() == ExprKind::kColumnRef &&
        static_cast<const ColumnRefExpr&>(*o.expr).qualifier.empty()) {
      Status st = BindExpr(*o.expr, bq.get(), true);
      (void)st;  // executor falls back to output-column lookup
    } else {
      DL_RETURN_NOT_OK(BindExpr(*o.expr, bq.get(), true));
    }
  }

  bq->has_aggregates = !bq->aggregates.empty();
  bq->is_grouped = !stmt.group_by.empty() || bq->has_aggregates;

  if (!stmt.distinct_on.empty() && bq->is_grouped) {
    return Status::Unsupported("DISTINCT ON cannot be combined with grouping");
  }

  DL_RETURN_NOT_OK(BuildOutputColumns(stmt, bq.get()));
  return bq;
}

Status Binder::BindFromItem(const TableRef& ref, BoundQuery* bq) {
  BoundRelation rel;
  rel.binding_name = ToLower(ref.BindingName());
  if (bq->FindRelation(rel.binding_name) >= 0) {
    return Status::InvalidArgument("duplicate FROM alias: " +
                                   rel.binding_name);
  }
  if (ref.IsSubquery()) {
    Binder sub_binder(catalog_);
    DL_ASSIGN_OR_RETURN(rel.subquery, sub_binder.Bind(*ref.subquery));
    rel.schema = rel.subquery->output_schema;
  } else {
    const RelationData* data = catalog_->Find(ref.table_name);
    if (data == nullptr) {
      return Status::NotFound("no such table: " + ref.table_name);
    }
    rel.table_name = ToLower(ref.table_name);
    rel.relation = data;
    rel.schema = data->schema();
  }
  bq->relations.push_back(std::move(rel));
  return Status::OK();
}

Status Binder::BindExpr(const Expr& expr, BoundQuery* bq,
                        bool allow_aggregates) {
  switch (expr.kind()) {
    case ExprKind::kLiteral:
      return Status::OK();
    case ExprKind::kColumnRef:
      return ResolveColumnRef(static_cast<const ColumnRefExpr&>(expr), bq);
    case ExprKind::kStar:
      // Bare stars are only meaningful in select lists / COUNT(*); they are
      // expanded by BuildOutputColumns and counted whole by COUNT(*).
      return Status::OK();
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(expr);
      DL_RETURN_NOT_OK(BindExpr(*b.lhs, bq, allow_aggregates));
      return BindExpr(*b.rhs, bq, allow_aggregates);
    }
    case ExprKind::kUnary:
      return BindExpr(*static_cast<const UnaryExpr&>(expr).operand, bq,
                      allow_aggregates);
    case ExprKind::kIsNull:
      return BindExpr(*static_cast<const IsNullExpr&>(expr).operand, bq,
                      allow_aggregates);
    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(expr);
      DL_RETURN_NOT_OK(BindExpr(*in.operand, bq, allow_aggregates));
      for (const ExprPtr& item : in.items) {
        DL_RETURN_NOT_OK(BindExpr(*item, bq, allow_aggregates));
      }
      return Status::OK();
    }
    case ExprKind::kLike:
      return BindExpr(*static_cast<const LikeExpr&>(expr).operand, bq,
                      allow_aggregates);
    case ExprKind::kFuncCall: {
      const auto& f = static_cast<const FuncCallExpr&>(expr);
      if (f.IsAggregate()) {
        if (!allow_aggregates) {
          return Status::InvalidArgument("aggregate not allowed here: " +
                                         f.ToString());
        }
        bq->aggregates.push_back(&f);
        // Aggregate arguments see the input row; nested aggregates are
        // rejected.
        for (const ExprPtr& arg : f.args) {
          if (ContainsAggregate(*arg)) {
            return Status::InvalidArgument("nested aggregate: " +
                                           f.ToString());
          }
          DL_RETURN_NOT_OK(BindExpr(*arg, bq, false));
        }
        return Status::OK();
      }
      // Scalar functions.
      if (f.name == "lower" || f.name == "upper" || f.name == "length" ||
          f.name == "abs") {
        if (f.star || f.args.size() != 1) {
          return Status::InvalidArgument(f.name +
                                         " takes exactly one argument");
        }
        return BindExpr(*f.args[0], bq, allow_aggregates);
      }
      return Status::Unsupported("unknown function: " + f.name);
    }
  }
  return Status::Internal("unhandled expression kind");
}

Status Binder::ResolveColumnRef(const ColumnRefExpr& ref, BoundQuery* bq) {
  if (!ref.qualifier.empty()) {
    int rel_idx = bq->FindRelation(ref.qualifier);
    if (rel_idx < 0) {
      return Status::NotFound("unknown table alias: " + ref.qualifier);
    }
    const BoundRelation& rel = bq->relations[rel_idx];
    auto col = rel.schema.FindColumn(ref.column);
    if (!col.has_value()) {
      return Status::NotFound("no column " + ref.column + " in " +
                              rel.binding_name);
    }
    bq->column_slots[&ref] = bq->slot_offsets[rel_idx] + *col;
    return Status::OK();
  }

  // Unqualified: must match exactly one column across all FROM items.
  int found_rel = -1;
  size_t found_col = 0;
  for (size_t i = 0; i < bq->relations.size(); ++i) {
    auto col = bq->relations[i].schema.FindColumn(ref.column);
    if (col.has_value()) {
      if (found_rel >= 0) {
        return Status::InvalidArgument("ambiguous column: " + ref.column);
      }
      found_rel = int(i);
      found_col = *col;
    }
  }
  if (found_rel < 0) {
    return Status::NotFound("no such column: " + ref.column);
  }
  bq->column_slots[&ref] = bq->slot_offsets[found_rel] + found_col;
  return Status::OK();
}

Status Binder::BuildOutputColumns(const SelectStmt& stmt, BoundQuery* bq) {
  int anon_counter = 0;
  for (const SelectItem& item : stmt.items) {
    if (item.expr->kind() == ExprKind::kStar) {
      const auto& star = static_cast<const StarExpr&>(*item.expr);
      bool matched = false;
      for (size_t i = 0; i < bq->relations.size(); ++i) {
        const BoundRelation& rel = bq->relations[i];
        if (!star.qualifier.empty() &&
            !EqualsIgnoreCase(star.qualifier, rel.binding_name)) {
          continue;
        }
        matched = true;
        for (size_t c = 0; c < rel.schema.NumColumns(); ++c) {
          OutputColumn out;
          out.name = rel.schema.column(c).name;
          out.type = rel.schema.column(c).type;
          out.expr = nullptr;
          out.slot = bq->slot_offsets[i] + c;
          bq->output_columns.push_back(std::move(out));
        }
      }
      if (!matched) {
        return Status::NotFound("unknown table alias in star: " +
                                star.qualifier);
      }
      continue;
    }

    OutputColumn out;
    out.expr = item.expr.get();
    if (!item.alias.empty()) {
      out.name = ToLower(item.alias);
    } else if (item.expr->kind() == ExprKind::kColumnRef) {
      out.name = ToLower(static_cast<const ColumnRefExpr&>(*item.expr).column);
    } else {
      out.name = "col" + std::to_string(anon_counter++);
    }
    out.type = InferType(*item.expr, *bq);
    bq->output_columns.push_back(std::move(out));
  }

  std::vector<ColumnDef> defs;
  defs.reserve(bq->output_columns.size());
  for (const OutputColumn& c : bq->output_columns) {
    defs.push_back(ColumnDef{c.name, c.type});
  }
  bq->output_schema = TableSchema(std::move(defs));
  return Status::OK();
}

ValueType Binder::InferType(const Expr& expr, const BoundQuery& bq) const {
  switch (expr.kind()) {
    case ExprKind::kLiteral:
      return static_cast<const LiteralExpr&>(expr).value.type();
    case ExprKind::kColumnRef: {
      auto it = bq.column_slots.find(&expr);
      if (it == bq.column_slots.end()) return ValueType::kNull;
      size_t slot = it->second;
      for (size_t i = 0; i < bq.relations.size(); ++i) {
        size_t lo = bq.slot_offsets[i];
        size_t hi = lo + bq.relations[i].schema.NumColumns();
        if (slot >= lo && slot < hi) {
          return bq.relations[i].schema.column(slot - lo).type;
        }
      }
      return ValueType::kNull;
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(expr);
      if (b.op == "and" || b.op == "or" || b.op == "=" || b.op == "!=" ||
          b.op == "<" || b.op == "<=" || b.op == ">" || b.op == ">=") {
        return ValueType::kBool;
      }
      ValueType lt = InferType(*b.lhs, bq), rt = InferType(*b.rhs, bq);
      if (lt == ValueType::kDouble || rt == ValueType::kDouble) {
        return ValueType::kDouble;
      }
      return ValueType::kInt64;
    }
    case ExprKind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(expr);
      if (u.op == "not") return ValueType::kBool;
      return InferType(*u.operand, bq);
    }
    case ExprKind::kIsNull:
    case ExprKind::kInList:
    case ExprKind::kLike:
      return ValueType::kBool;
    case ExprKind::kFuncCall: {
      const auto& f = static_cast<const FuncCallExpr&>(expr);
      if (f.name == "count" || f.name == "length") return ValueType::kInt64;
      if (f.name == "avg") return ValueType::kDouble;
      if (f.name == "lower" || f.name == "upper") return ValueType::kString;
      if (!f.args.empty()) return InferType(*f.args[0], bq);
      return ValueType::kNull;
    }
    case ExprKind::kStar:
      return ValueType::kNull;
  }
  return ValueType::kNull;
}

}  // namespace datalawyer
