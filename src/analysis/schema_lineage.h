#ifndef DATALAWYER_ANALYSIS_SCHEMA_LINEAGE_H_
#define DATALAWYER_ANALYSIS_SCHEMA_LINEAGE_H_

#include <string>
#include <vector>

#include "analysis/bound_query.h"

namespace datalawyer {

/// One row of the paper's Schema usage log (§3.2, minus the ts column):
/// "the answer ... contains a column ocid, which stores a value derived from
/// the input column icid from the input relation irid; agg indicates whether
/// an aggregate was used."
struct SchemaLogRow {
  std::string ocid;
  std::string irid;
  std::string icid;
  bool agg = false;
};

/// Static analysis behind the fSchema log-generating function: derives, for
/// every output column of the (bound) query, the base-table columns it is
/// computed from, looking through subqueries and UNION members.
///
/// Extension beyond the paper's example: a FROM relation none of whose
/// columns reach the output (e.g. it is only used as a filter/join partner)
/// still yields one marker row (ocid='', icid='') so that join-prohibition
/// policies like P1/P2 observe every relation the query touched.
std::vector<SchemaLogRow> ComputeSchemaLineage(const BoundQuery& bq);

}  // namespace datalawyer

#endif  // DATALAWYER_ANALYSIS_SCHEMA_LINEAGE_H_
