#include "analysis/eval.h"

#include <cctype>

namespace datalawyer {

namespace {

/// Three-valued AND/OR. Operands must be BOOL or NULL.
Result<Value> EvalLogical(const BinaryExpr& b, const EvalContext& ctx) {
  DL_ASSIGN_OR_RETURN(Value lhs, Eval(*b.lhs, ctx));
  // Short-circuit where the result is determined by one side.
  if (b.op == "and") {
    if (lhs.is_bool() && !lhs.AsBool()) return Value(false);
  } else {
    if (lhs.is_bool() && lhs.AsBool()) return Value(true);
  }
  DL_ASSIGN_OR_RETURN(Value rhs, Eval(*b.rhs, ctx));
  auto check = [](const Value& v) -> Status {
    if (!v.is_bool() && !v.is_null()) {
      return Status::TypeError("boolean operator over non-boolean value");
    }
    return Status::OK();
  };
  DL_RETURN_NOT_OK(check(lhs));
  DL_RETURN_NOT_OK(check(rhs));
  if (b.op == "and") {
    if (rhs.is_bool() && !rhs.AsBool()) return Value(false);
    if (lhs.is_null() || rhs.is_null()) return Value::Null();
    return Value(true);
  }
  if (rhs.is_bool() && rhs.AsBool()) return Value(true);
  if (lhs.is_null() || rhs.is_null()) return Value::Null();
  return Value(false);
}

/// SQL LIKE with % (any sequence) and _ (any single character);
/// case-sensitive, iterative two-pointer matcher.
bool LikeMatch(const std::string& text, const std::string& pattern) {
  size_t t = 0, p = 0;
  size_t star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

}  // namespace

Result<Value> Eval(const Expr& expr, const EvalContext& ctx) {
  switch (expr.kind()) {
    case ExprKind::kLiteral:
      return static_cast<const LiteralExpr&>(expr).value;
    case ExprKind::kColumnRef: {
      if (ctx.bq == nullptr) {
        return Status::InvalidArgument(
            "column reference in a constant-only context: " + expr.ToString());
      }
      auto it = ctx.bq->column_slots.find(&expr);
      if (it == ctx.bq->column_slots.end()) {
        return Status::Internal("unbound column reference: " +
                                expr.ToString());
      }
      if (ctx.row == nullptr || it->second >= ctx.row->size()) {
        return Status::Internal("evaluation row too narrow for " +
                                expr.ToString());
      }
      return (*ctx.row)[it->second];
    }
    case ExprKind::kStar:
      return Status::InvalidArgument("'*' is not a value expression");
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(expr);
      if (b.op == "and" || b.op == "or") return EvalLogical(b, ctx);
      DL_ASSIGN_OR_RETURN(Value lhs, Eval(*b.lhs, ctx));
      DL_ASSIGN_OR_RETURN(Value rhs, Eval(*b.rhs, ctx));
      if (b.op == "=" || b.op == "!=" || b.op == "<" || b.op == "<=" ||
          b.op == ">" || b.op == ">=") {
        return Value::Compare(lhs, b.op, rhs);
      }
      return Value::Arithmetic(lhs, b.op, rhs);
    }
    case ExprKind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(expr);
      DL_ASSIGN_OR_RETURN(Value v, Eval(*u.operand, ctx));
      if (u.op == "not") {
        if (v.is_null()) return Value::Null();
        if (!v.is_bool()) return Status::TypeError("NOT over non-boolean");
        return Value(!v.AsBool());
      }
      // Unary minus.
      if (v.is_null()) return Value::Null();
      if (v.is_int64()) return Value(-v.AsInt64());
      if (v.is_double()) return Value(-v.AsDouble());
      return Status::TypeError("unary '-' over non-numeric value");
    }
    case ExprKind::kIsNull: {
      const auto& n = static_cast<const IsNullExpr&>(expr);
      DL_ASSIGN_OR_RETURN(Value v, Eval(*n.operand, ctx));
      return Value(n.negated ? !v.is_null() : v.is_null());
    }
    case ExprKind::kInList: {
      // SQL semantics: x IN (a, b) ≡ x = a OR x = b, with three-valued
      // logic (an unmatched NULL item makes the answer NULL, not FALSE).
      const auto& in = static_cast<const InListExpr&>(expr);
      DL_ASSIGN_OR_RETURN(Value operand, Eval(*in.operand, ctx));
      if (operand.is_null()) return Value::Null();
      bool saw_null = false;
      for (const ExprPtr& item : in.items) {
        DL_ASSIGN_OR_RETURN(Value v, Eval(*item, ctx));
        DL_ASSIGN_OR_RETURN(Value eq, Value::Compare(operand, "=", v));
        if (eq.is_null()) {
          saw_null = true;
        } else if (eq.AsBool()) {
          return Value(!in.negated);
        }
      }
      if (saw_null) return Value::Null();
      return Value(in.negated);
    }
    case ExprKind::kLike: {
      const auto& like = static_cast<const LikeExpr&>(expr);
      DL_ASSIGN_OR_RETURN(Value v, Eval(*like.operand, ctx));
      if (v.is_null()) return Value::Null();
      if (!v.is_string()) {
        return Status::TypeError("LIKE requires a string operand, got " +
                                 v.ToString());
      }
      bool matched = LikeMatch(v.AsString(), like.pattern);
      return Value(like.negated ? !matched : matched);
    }
    case ExprKind::kFuncCall: {
      const auto& f = static_cast<const FuncCallExpr&>(expr);
      if (f.IsAggregate()) {
        if (ctx.agg_values == nullptr) {
          return Status::Internal("aggregate evaluated outside a group: " +
                                  f.ToString());
        }
        auto it = ctx.agg_values->find(&expr);
        if (it == ctx.agg_values->end()) {
          return Status::Internal("aggregate value missing for " +
                                  f.ToString());
        }
        return it->second;
      }
      // Scalar functions (validated to one argument by the binder).
      if (f.name == "lower" || f.name == "upper" || f.name == "length" ||
          f.name == "abs") {
        DL_ASSIGN_OR_RETURN(Value v, Eval(*f.args[0], ctx));
        if (v.is_null()) return Value::Null();
        if (f.name == "abs") {
          if (v.is_int64()) {
            int64_t x = v.AsInt64();
            return Value(x < 0 ? -x : x);
          }
          if (v.is_double()) {
            double x = v.AsDouble();
            return Value(x < 0 ? -x : x);
          }
          return Status::TypeError("abs over non-numeric value");
        }
        if (!v.is_string()) {
          return Status::TypeError(f.name + " over non-string value " +
                                   v.ToString());
        }
        if (f.name == "length") return Value(int64_t(v.AsString().size()));
        std::string out = v.AsString();
        for (char& c : out) {
          c = f.name == "lower"
                  ? char(std::tolower(static_cast<unsigned char>(c)))
                  : char(std::toupper(static_cast<unsigned char>(c)));
        }
        return Value(std::move(out));
      }
      return Status::Unsupported("unknown function: " + f.name);
    }
  }
  return Status::Internal("unhandled expression kind");
}

Result<bool> EvalPredicate(const Expr& expr, const EvalContext& ctx) {
  DL_ASSIGN_OR_RETURN(Value v, Eval(expr, ctx));
  if (v.is_bool()) return v.AsBool();
  if (v.is_null()) return false;
  return Status::TypeError("predicate did not evaluate to a boolean: " +
                           expr.ToString());
}

}  // namespace datalawyer
