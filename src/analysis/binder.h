#ifndef DATALAWYER_ANALYSIS_BINDER_H_
#define DATALAWYER_ANALYSIS_BINDER_H_

#include <memory>

#include "analysis/bound_query.h"
#include "common/result.h"
#include "sql/ast.h"
#include "storage/catalog_view.h"

namespace datalawyer {

/// Resolves names in a SELECT against a catalog and produces a BoundQuery.
///
/// Checks performed:
///  * every base table exists; duplicate binding names are rejected
///  * every column reference resolves, unambiguously when unqualified
///  * aggregates do not appear in WHERE or GROUP BY
///  * UNION members have matching arity
class Binder {
 public:
  explicit Binder(const CatalogView* catalog) : catalog_(catalog) {}

  /// Binds `stmt` (and its UNION chain). The statement must outlive the
  /// returned BoundQuery.
  Result<std::unique_ptr<BoundQuery>> Bind(const SelectStmt& stmt);

 private:
  Result<std::unique_ptr<BoundQuery>> BindOne(const SelectStmt& stmt);
  Status BindFromItem(const TableRef& ref, BoundQuery* bq);
  Status BindExpr(const Expr& expr, BoundQuery* bq, bool allow_aggregates);
  Status ResolveColumnRef(const ColumnRefExpr& ref, BoundQuery* bq);
  Status BuildOutputColumns(const SelectStmt& stmt, BoundQuery* bq);
  /// Infers the value type of a bound expression.
  ValueType InferType(const Expr& expr, const BoundQuery& bq) const;

  const CatalogView* catalog_;
};

}  // namespace datalawyer

#endif  // DATALAWYER_ANALYSIS_BINDER_H_
