#ifndef DATALAWYER_ANALYSIS_EVAL_H_
#define DATALAWYER_ANALYSIS_EVAL_H_

#include <unordered_map>

#include "analysis/bound_query.h"
#include "common/result.h"
#include "common/value.h"
#include "sql/ast.h"

namespace datalawyer {

/// Evaluation environment for one (joined) input row.
struct EvalContext {
  const BoundQuery* bq = nullptr;
  /// Combined row laid out by the binder's slot assignment.
  const Row* row = nullptr;
  /// Computed aggregate values for the current group, keyed by the
  /// FuncCallExpr call site; null when evaluating non-grouped expressions.
  const std::unordered_map<const Expr*, Value>* agg_values = nullptr;
};

/// Evaluates a bound expression. Comparisons and boolean connectives follow
/// SQL three-valued logic (NULLs propagate; see Value::Compare).
Result<Value> Eval(const Expr& expr, const EvalContext& ctx);

/// SQL condition truth: TRUE is true; FALSE and NULL are not. Non-boolean,
/// non-null values are a type error.
Result<bool> EvalPredicate(const Expr& expr, const EvalContext& ctx);

}  // namespace datalawyer

#endif  // DATALAWYER_ANALYSIS_EVAL_H_
