#include "log/log_generator.h"

#include "analysis/schema_lineage.h"
#include "exec/executor.h"

namespace datalawyer {

namespace {

TableSchema WithTs(TableSchema rest) {
  TableSchema out;
  out.AddColumn("ts", ValueType::kInt64);
  for (const ColumnDef& c : rest.columns()) out.AddColumn(c.name, c.type);
  return out;
}

}  // namespace

// ----------------------------- Users ---------------------------------------

const std::string& UsersLogGenerator::relation_name() const {
  static const std::string* kName = new std::string("users");
  return *kName;
}

const TableSchema& UsersLogGenerator::schema() const {
  static const TableSchema* kSchema = new TableSchema(
      WithTs(TableSchema().AddColumn("uid", ValueType::kInt64)));
  return *kSchema;
}

Result<std::vector<Row>> UsersLogGenerator::Generate(
    const GenerationInput& input) {
  return std::vector<Row>{{Value(input.context->uid)}};
}

// ----------------------------- Schema --------------------------------------

const std::string& SchemaLogGenerator::relation_name() const {
  static const std::string* kName = new std::string("schema");
  return *kName;
}

const TableSchema& SchemaLogGenerator::schema() const {
  static const TableSchema* kSchema =
      new TableSchema(WithTs(TableSchema()
                                 .AddColumn("ocid", ValueType::kString)
                                 .AddColumn("irid", ValueType::kString)
                                 .AddColumn("icid", ValueType::kString)
                                 .AddColumn("agg", ValueType::kBool)));
  return *kSchema;
}

Result<std::vector<Row>> SchemaLogGenerator::Generate(
    const GenerationInput& input) {
  if (input.bound == nullptr) {
    return Status::Internal("SchemaLogGenerator requires a bound query");
  }
  std::vector<SchemaLogRow> lineage = ComputeSchemaLineage(*input.bound);
  std::vector<Row> rows;
  rows.reserve(lineage.size());
  for (const SchemaLogRow& r : lineage) {
    rows.push_back(
        Row{Value(r.ocid), Value(r.irid), Value(r.icid), Value(r.agg)});
  }
  return rows;
}

// --------------------------- Provenance ------------------------------------

const std::string& ProvenanceLogGenerator::relation_name() const {
  static const std::string* kName = new std::string("provenance");
  return *kName;
}

const TableSchema& ProvenanceLogGenerator::schema() const {
  static const TableSchema* kSchema =
      new TableSchema(WithTs(TableSchema()
                                 .AddColumn("otid", ValueType::kInt64)
                                 .AddColumn("irid", ValueType::kString)
                                 .AddColumn("itid", ValueType::kInt64)));
  return *kSchema;
}

Result<std::vector<Row>> ProvenanceLogGenerator::Generate(
    const GenerationInput& input) {
  if (input.query == nullptr || input.db_catalog == nullptr) {
    return Status::Internal("ProvenanceLogGenerator requires query + catalog");
  }
  ExecOptions options;
  options.capture_lineage = true;
  Executor executor(input.db_catalog, options);
  DL_ASSIGN_OR_RETURN(QueryResult result, executor.Execute(*input.query));

  std::vector<Row> rows;
  for (size_t otid = 0; otid < result.rows.size(); ++otid) {
    for (const LineageEntry& entry : result.lineage[otid]) {
      rows.push_back(Row{Value(int64_t(otid)),
                         Value(result.base_relations[entry.rel]),
                         Value(entry.row_id)});
    }
  }
  return rows;
}

// ----------------------------- Device --------------------------------------

const std::string& DeviceLogGenerator::relation_name() const {
  static const std::string* kName = new std::string("devices");
  return *kName;
}

const TableSchema& DeviceLogGenerator::schema() const {
  static const TableSchema* kSchema = new TableSchema(
      WithTs(TableSchema().AddColumn("device", ValueType::kString)));
  return *kSchema;
}

Result<std::vector<Row>> DeviceLogGenerator::Generate(
    const GenerationInput& input) {
  auto it = input.context->extras.find("device");
  Value device = it != input.context->extras.end() ? it->second
                                                   : Value("unknown");
  return std::vector<Row>{{std::move(device)}};
}

// --------------------------- SystemLoad ------------------------------------

const std::string& SystemLoadLogGenerator::relation_name() const {
  static const std::string* kName = new std::string("system_load");
  return *kName;
}

const TableSchema& SystemLoadLogGenerator::schema() const {
  static const TableSchema* kSchema = new TableSchema(
      WithTs(TableSchema().AddColumn("load", ValueType::kDouble)));
  return *kSchema;
}

Result<std::vector<Row>> SystemLoadLogGenerator::Generate(
    const GenerationInput& input) {
  auto it = input.context->extras.find("system_load");
  Value load =
      it != input.context->extras.end() ? it->second : Value(0.0);
  return std::vector<Row>{{std::move(load)}};
}

}  // namespace datalawyer
