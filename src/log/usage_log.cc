#include "log/usage_log.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "common/trace.h"
#include "storage/persistence.h"

namespace datalawyer {

const std::string& UsageLog::ClockRelationName() {
  static const std::string* kName = new std::string("clock");
  return *kName;
}

std::unique_ptr<UsageLog> UsageLog::WithStandardGenerators() {
  auto log = std::make_unique<UsageLog>();
  // Registration failures are impossible here (fresh log, distinct names).
  (void)log->RegisterGenerator(std::make_unique<UsersLogGenerator>());
  (void)log->RegisterGenerator(std::make_unique<SchemaLogGenerator>());
  (void)log->RegisterGenerator(std::make_unique<ProvenanceLogGenerator>());
  return log;
}

Status UsageLog::RegisterGenerator(std::unique_ptr<LogGenerator> generator) {
  std::string name = ToLower(generator->relation_name());
  if (name == ClockRelationName()) {
    return Status::InvalidArgument("'clock' is reserved");
  }
  if (relations_.count(name)) {
    return Status::AlreadyExists("log relation already registered: " + name);
  }
  LogRelation rel;
  rel.main = std::make_unique<Table>(generator->schema());
  rel.delta = std::make_unique<Table>(generator->schema());
  rel.generator = std::move(generator);
  relations_.emplace(std::move(name), std::move(rel));
  return Status::OK();
}

std::vector<std::string> UsageLog::RelationNamesInOrder() const {
  std::vector<std::string> names;
  for (const auto& [name, _] : relations_) names.push_back(name);
  auto rank_of = [this](const std::string& name) {
    const LogRelation& rel = relations_.at(name);
    return std::isnan(rel.rank_override)
               ? double(rel.generator->cost_rank())
               : rel.rank_override;
  };
  std::sort(names.begin(), names.end(),
            [&](const std::string& a, const std::string& b) {
              double ra = rank_of(a), rb = rank_of(b);
              return ra != rb ? ra < rb : a < b;
            });
  return names;
}

void UsageLog::SetCostRank(const std::string& name, double rank) {
  LogRelation* rel = Find(name);
  if (rel != nullptr) rel->rank_override = rank;
}

bool UsageLog::IsLogRelation(const std::string& name) const {
  return relations_.count(ToLower(name)) > 0;
}

const LogGenerator* UsageLog::generator(const std::string& name) const {
  const LogRelation* rel = Find(name);
  return rel != nullptr ? rel->generator.get() : nullptr;
}

UsageLog::LogRelation* UsageLog::Find(const std::string& name) {
  auto it = relations_.find(ToLower(name));
  return it == relations_.end() ? nullptr : &it->second;
}

const UsageLog::LogRelation* UsageLog::Find(const std::string& name) const {
  auto it = relations_.find(ToLower(name));
  return it == relations_.end() ? nullptr : &it->second;
}

Result<size_t> UsageLog::EnsureGenerated(const std::string& name, int64_t ts,
                                         const GenerationInput& input) {
  LogRelation* rel = Find(name);
  if (rel == nullptr) return Status::NotFound("no such log relation: " + name);
  if (rel->generated) return size_t{0};
  ScopedSpan span(Tracer::Global().enabled() ? "log.generate:" + name
                                             : std::string(),
                  "log");
  DL_ASSIGN_OR_RETURN(std::vector<Row> features,
                      rel->generator->Generate(input));
  size_t count = features.size();
  for (Row& feature : features) {
    Row row;
    row.reserve(feature.size() + 1);
    row.push_back(Value(ts));
    for (Value& v : feature) row.push_back(std::move(v));
    DL_RETURN_NOT_OK(rel->delta->Append(std::move(row)).status());
  }
  rel->generated = true;
  return count;
}

bool UsageLog::IsGenerated(const std::string& name) const {
  const LogRelation* rel = Find(name);
  return rel != nullptr && rel->generated;
}

void UsageLog::SetPersisted(const std::string& name, bool persisted) {
  LogRelation* rel = Find(name);
  if (rel != nullptr) rel->persisted = persisted;
}

bool UsageLog::IsPersisted(const std::string& name) const {
  const LogRelation* rel = Find(name);
  return rel != nullptr && rel->persisted;
}

Table* UsageLog::main_table(const std::string& name) {
  LogRelation* rel = Find(name);
  return rel != nullptr ? rel->main.get() : nullptr;
}

Table* UsageLog::delta_table(const std::string& name) {
  LogRelation* rel = Find(name);
  return rel != nullptr ? rel->delta.get() : nullptr;
}

const Table* UsageLog::main_table(const std::string& name) const {
  const LogRelation* rel = Find(name);
  return rel != nullptr ? rel->main.get() : nullptr;
}

const Table* UsageLog::delta_table(const std::string& name) const {
  const LogRelation* rel = Find(name);
  return rel != nullptr ? rel->delta.get() : nullptr;
}

void UsageLog::EnableIndexes() {
  indexes_enabled_ = true;
  for (auto& [name, rel] : relations_) {
    const TableSchema& schema = rel.main->schema();
    for (size_t c = 0; c < schema.NumColumns(); ++c) {
      // Cannot fail: the column names come from the schema itself.
      (void)rel.main->BuildIndex(schema.column(c).name);
    }
  }
}

void UsageLog::DisableIndexes() {
  indexes_enabled_ = false;
  for (auto& [name, rel] : relations_) rel.main->DropIndexes();
}

void UsageLog::EnableOrderedIndexes() {
  ordered_indexes_enabled_ = true;
  for (auto& [name, rel] : relations_) {
    const TableSchema& schema = rel.main->schema();
    for (size_t c = 0; c < schema.NumColumns(); ++c) {
      if (schema.column(c).name != "ts") continue;
      // Cannot fail: the column name comes from the schema itself.
      (void)rel.main->BuildOrderedIndex(schema.column(c).name);
    }
  }
}

void UsageLog::DisableOrderedIndexes() {
  ordered_indexes_enabled_ = false;
  for (auto& [name, rel] : relations_) rel.main->DropOrderedIndexes();
}

void UsageLog::EnableStats() {
  stats_enabled_ = true;
  for (auto& [name, rel] : relations_) rel.main->EnableStats();
}

void UsageLog::DisableStats() {
  stats_enabled_ = false;
  for (auto& [name, rel] : relations_) rel.main->DisableStats();
}

void UsageLog::RefreshIndexes() {
  if (!indexes_enabled_ && !ordered_indexes_enabled_ && !stats_enabled_) {
    return;
  }
  for (auto& [name, rel] : relations_) rel.main->RefreshIndexes();
}

size_t UsageLog::CommitStaged() {
  size_t flushed = 0;
  for (auto& [name, rel] : relations_) {
    if (rel.persisted) {
      for (size_t i = 0; i < rel.delta->NumRows(); ++i) {
        // Append cannot fail: delta and main share a schema.
        (void)rel.main->Append(rel.delta->RowAt(i));
        ++flushed;
      }
    }
    rel.delta->Clear();
    rel.generated = false;
  }
  return flushed;
}

void UsageLog::DiscardStaged() {
  for (auto& [name, rel] : relations_) {
    rel.delta->Clear();
    rel.generated = false;
  }
}

Status UsageLog::SaveTo(const std::string& dir) const {
  for (const auto& [name, rel] : relations_) {
    DL_RETURN_NOT_OK(SaveTable(*rel.main, dir + "/log_" + name + ".dltab"));
  }
  return Status::OK();
}

Status UsageLog::LoadFrom(const std::string& dir) {
  for (auto& [name, rel] : relations_) {
    std::string path = dir + "/log_" + name + ".dltab";
    Status st = LoadTableInto(rel.main.get(), path);
    if (st.code() == StatusCode::kNotFound) continue;  // no snapshot: empty
    DL_RETURN_NOT_OK(st);
  }
  return Status::OK();
}

UsageLog::PolicyCatalog UsageLog::MakeCatalog(const CatalogView* base,
                                              int64_t now) const {
  PolicyCatalog out;
  out.catalog = std::make_unique<OverlayCatalog>(base);
  for (const auto& [name, rel] : relations_) {
    auto view = std::make_unique<ConcatRelation>(rel.main.get(),
                                                 rel.delta.get());
    out.catalog->Add(name, view.get());
    out.owned.push_back(std::move(view));
  }
  TableSchema clock_schema;
  clock_schema.AddColumn("ts", ValueType::kInt64);
  auto clock = std::make_unique<OwnedRelation>(
      std::move(clock_schema), std::vector<Row>{{Value(now)}});
  out.catalog->Add(ClockRelationName(), clock.get());
  out.owned.push_back(std::move(clock));
  return out;
}

}  // namespace datalawyer
