#ifndef DATALAWYER_LOG_LOG_GENERATOR_H_
#define DATALAWYER_LOG_LOG_GENERATOR_H_

#include <string>
#include <vector>

#include "analysis/bound_query.h"
#include "common/result.h"
#include "log/query_context.h"
#include "sql/ast.h"
#include "storage/catalog_view.h"
#include "storage/schema.h"

namespace datalawyer {

/// Everything a log-generating function may look at: the user's query (both
/// parsed and bound against the database), the database itself, and the
/// query context. Mirrors the paper's f_i(q, D) (§3.2).
struct GenerationInput {
  const SelectStmt* query = nullptr;
  const BoundQuery* bound = nullptr;
  const CatalogView* db_catalog = nullptr;
  const QueryContext* context = nullptr;
};

/// A log-generating function f_i: computes the feature set S_i = f_i(q, D)
/// appended (with the current timestamp prefixed) to log relation R_i.
///
/// The paper's extensibility story (§6) is exactly this interface: "to add a
/// new relation Ri to the log, the systems administrator only has to write
/// the corresponding log-generating function fi(q, D)" — arbitrary code is
/// permitted.
class LogGenerator {
 public:
  virtual ~LogGenerator() = default;

  /// Name of the log relation this generator feeds (lowercase).
  virtual const std::string& relation_name() const = 0;

  /// Schema of the log relation *including* the leading ts column that the
  /// system fills in.
  virtual const TableSchema& schema() const = 0;

  /// Computes the feature rows for one query, *without* the ts column.
  virtual Result<std::vector<Row>> Generate(const GenerationInput& input) = 0;

  /// Relative generation cost; interleaved evaluation (§4.2.1) generates
  /// logs in increasing rank order ("chosen experimentally, offline" in the
  /// paper — Users < Schema < Provenance).
  virtual int cost_rank() const = 0;
};

/// f_Users: records (uid) for the issuing user.
class UsersLogGenerator : public LogGenerator {
 public:
  const std::string& relation_name() const override;
  const TableSchema& schema() const override;
  Result<std::vector<Row>> Generate(const GenerationInput& input) override;
  int cost_rank() const override { return 0; }
};

/// f_Schema: static analysis of the query producing (ocid, irid, icid, agg)
/// rows (§3.2 Example 3.3); does not touch the database instance.
class SchemaLogGenerator : public LogGenerator {
 public:
  const std::string& relation_name() const override;
  const TableSchema& schema() const override;
  Result<std::vector<Row>> Generate(const GenerationInput& input) override;
  int cost_rank() const override { return 1; }
};

/// f_Provenance: runs the query with lineage capture and emits
/// (otid, irid, itid) for every contributing input tuple of every output
/// tuple. Like the paper's Perm-style rewriting, this costs about as much
/// as the query itself.
class ProvenanceLogGenerator : public LogGenerator {
 public:
  const std::string& relation_name() const override;
  const TableSchema& schema() const override;
  Result<std::vector<Row>> Generate(const GenerationInput& input) override;
  int cost_rank() const override { return 2; }
};

/// §6 extension example: records the device type ("mobile", "desktop", ...)
/// from the query context, enabling policies like "queries from mobile
/// devices may return at most 10 tuples".
class DeviceLogGenerator : public LogGenerator {
 public:
  const std::string& relation_name() const override;
  const TableSchema& schema() const override;
  Result<std::vector<Row>> Generate(const GenerationInput& input) override;
  int cost_rank() const override { return 0; }
};

/// §6 extension example: records a system-load sample from the context,
/// enabling load-sensitive rate limits.
class SystemLoadLogGenerator : public LogGenerator {
 public:
  const std::string& relation_name() const override;
  const TableSchema& schema() const override;
  Result<std::vector<Row>> Generate(const GenerationInput& input) override;
  int cost_rank() const override { return 0; }
};

}  // namespace datalawyer

#endif  // DATALAWYER_LOG_LOG_GENERATOR_H_
