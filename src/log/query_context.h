#ifndef DATALAWYER_LOG_QUERY_CONTEXT_H_
#define DATALAWYER_LOG_QUERY_CONTEXT_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/value.h"

namespace datalawyer {

/// Who is asking, and any extra features custom log-generating functions
/// want to record (§6: device type, system load, ...).
struct QueryContext {
  int64_t uid = 0;

  /// Free-form side channel for extension log generators, e.g.
  /// extras["device"] = "mobile" or extras["system_load"] = 0.93.
  std::map<std::string, Value> extras;
};

}  // namespace datalawyer

#endif  // DATALAWYER_LOG_QUERY_CONTEXT_H_
