#ifndef DATALAWYER_LOG_USAGE_LOG_H_
#define DATALAWYER_LOG_USAGE_LOG_H_

#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "log/log_generator.h"
#include "storage/catalog_view.h"
#include "storage/table.h"

namespace datalawyer {

/// The usage log L = (R1, ..., Rm) of §3.2 plus the Eq.(1) staging
/// semantics: per query, increments f_i(q, D) are generated lazily into
/// in-memory delta tables; policies evaluate over main ∪ delta; on success
/// the deltas are flushed into the main tables (Lt = L't), on violation they
/// are discarded (Lt = Lt-1).
class UsageLog {
 public:
  UsageLog() = default;
  UsageLog(const UsageLog&) = delete;
  UsageLog& operator=(const UsageLog&) = delete;

  /// A log with the paper's three standard relations registered
  /// (Users, Schema, Provenance).
  static std::unique_ptr<UsageLog> WithStandardGenerators();

  Status RegisterGenerator(std::unique_ptr<LogGenerator> generator);

  /// Registered relation names in generation (cost-rank) order — the fixed
  /// order interleaved evaluation adds logs in (§4.2.1). Calibration
  /// overrides (SetCostRank) take precedence over the generators' built-in
  /// ranks.
  std::vector<std::string> RelationNamesInOrder() const;

  /// Overrides a relation's generation-order rank (lower = generated
  /// earlier) — set by offline calibration.
  void SetCostRank(const std::string& name, double rank);

  bool IsLogRelation(const std::string& name) const;
  const LogGenerator* generator(const std::string& name) const;

  /// Runs the generator for `name` (once per query) and stages {ts} × S_i.
  /// Returns the number of rows staged (0 if already generated).
  Result<size_t> EnsureGenerated(const std::string& name, int64_t ts,
                                 const GenerationInput& input);
  bool IsGenerated(const std::string& name) const;

  /// Marks a relation as never persisted: its increments are still staged
  /// for the current query's policy checks but dropped at commit. The
  /// time-independent optimization flags relations this way when every
  /// policy using them is time-independent (§5.3).
  void SetPersisted(const std::string& name, bool persisted);
  bool IsPersisted(const std::string& name) const;

  /// Builds equality hash indexes on every column of every log relation's
  /// main table and keeps them maintained: appends (CommitStaged, the
  /// compactor's insert phase) update them incrementally; deletions
  /// (compaction) invalidate them and RefreshIndexes rebuilds. Policy
  /// evaluation probes these through ConcatRelation for conjunctive
  /// equality predicates (`uid = $user`, `ts = $now` — the access pattern
  /// of nearly every paper policy). Deltas are never indexed: they hold one
  /// query's increment and are scanned.
  void EnableIndexes();
  bool indexes_enabled() const { return indexes_enabled_; }

  /// Drops all main-table indexes and turns index maintenance off — the
  /// inverse of EnableIndexes, used when options.enable_log_indexes is
  /// toggled off between queries.
  void DisableIndexes();

  /// Builds an ordered (sorted-run) index on the timestamp column ("ts")
  /// of every log relation's main table and keeps it maintained under the
  /// same discipline as the hash indexes: appends extend the unsorted tail
  /// (merged into the sorted run past a threshold), deletions invalidate,
  /// RefreshIndexes rebuilds. Policy evaluation answers sliding-window
  /// range predicates (`p.ts > $now - 30`, BETWEEN) through these via
  /// ConcatRelation::RangeLookup.
  void EnableOrderedIndexes();
  bool ordered_indexes_enabled() const { return ordered_indexes_enabled_; }

  /// Drops all ordered indexes and turns their maintenance off.
  void DisableOrderedIndexes();

  /// Keeps per-column statistics (row count, NDV, min/max) on every log
  /// relation's main table, folded incrementally on append and rebuilt by
  /// RefreshIndexes after compaction deletes. The planner's cost model
  /// reads these through RelationData::Stats().
  void EnableStats();
  bool stats_enabled() const { return stats_enabled_; }
  void DisableStats();

  /// Rebuilds any main-table index or statistics snapshot invalidated by a
  /// deletion. Must not run concurrently with policy evaluation; callers
  /// invoke it after the compactor's delete phase, before the next query's
  /// checks.
  void RefreshIndexes();

  /// Direct table access for the log compactor (mark/delete/insert phases).
  Table* main_table(const std::string& name);
  Table* delta_table(const std::string& name);
  const Table* main_table(const std::string& name) const;
  const Table* delta_table(const std::string& name) const;

  /// Appends surviving staged rows of persisted relations to the mains and
  /// resets per-query state. Returns total rows flushed.
  size_t CommitStaged();

  /// Drops all staged rows and resets per-query state (policy violation).
  void DiscardStaged();

  /// Per-query catalog: `base` (the database) extended with every log
  /// relation as main ∪ delta, plus Clock = {(now)}. The returned object
  /// owns the per-query relations and must outlive their use.
  struct PolicyCatalog {
    std::unique_ptr<OverlayCatalog> catalog;
    std::vector<std::unique_ptr<RelationData>> owned;
    const CatalogView* view() const { return catalog.get(); }
  };
  PolicyCatalog MakeCatalog(const CatalogView* base, int64_t now) const;

  /// Persists the committed log (main tables) as `log_<name>.dltab` files
  /// under `dir` — the paper's "flush log to disk", made restartable.
  Status SaveTo(const std::string& dir) const;

  /// Restores previously saved log relations into the (empty) main tables.
  /// Relations without a snapshot file are left empty.
  Status LoadFrom(const std::string& dir);

  /// Name of the synthesized clock relation ("clock").
  static const std::string& ClockRelationName();

 private:
  struct LogRelation {
    std::unique_ptr<LogGenerator> generator;
    std::unique_ptr<Table> main;
    std::unique_ptr<Table> delta;
    bool generated = false;
    bool persisted = true;
    /// Calibrated rank; NaN = use the generator's cost_rank().
    double rank_override = std::numeric_limits<double>::quiet_NaN();
  };

  LogRelation* Find(const std::string& name);
  const LogRelation* Find(const std::string& name) const;

  std::map<std::string, LogRelation> relations_;
  bool indexes_enabled_ = false;
  bool ordered_indexes_enabled_ = false;
  bool stats_enabled_ = false;
};

}  // namespace datalawyer

#endif  // DATALAWYER_LOG_USAGE_LOG_H_
