#ifndef DATALAWYER_SQL_PARSER_H_
#define DATALAWYER_SQL_PARSER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"
#include "sql/token.h"

namespace datalawyer {

/// Recursive-descent parser for the engine's SQL fragment:
///
///   SELECT [DISTINCT | DISTINCT ON (exprs)] items
///   FROM table [alias] | (subquery) alias , ...
///   [WHERE expr] [GROUP BY exprs] [HAVING expr]
///   [ORDER BY exprs [ASC|DESC]] [LIMIT n]
///   [UNION [ALL] select]
///
/// plus INSERT INTO ... VALUES, CREATE TABLE, DELETE FROM, DROP TABLE.
/// Operator precedence: OR < AND < NOT < comparison/IS NULL < + - < * / %
/// < unary minus.
class Parser {
 public:
  /// Parses exactly one statement (a trailing ';' is allowed).
  static Result<Statement> Parse(const std::string& sql);

  /// Parses a statement that must be a SELECT (the policy language).
  static Result<std::unique_ptr<SelectStmt>> ParseSelect(
      const std::string& sql);

  /// Parses a ';'-separated script.
  static Result<std::vector<Statement>> ParseScript(const std::string& sql);

 private:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek(size_t ahead = 0) const;
  Token Advance();
  bool MatchKeyword(const char* kw);
  bool MatchOperator(const char* op);
  bool Match(TokenType type);
  Status Expect(TokenType type, const char* what);
  Status ExpectKeyword(const char* kw);
  Status ErrorHere(const std::string& message) const;

  Result<Statement> ParseStatement();
  Result<std::unique_ptr<SelectStmt>> ParseSelectStmt();
  Result<std::unique_ptr<SelectStmt>> ParseSelectCore();
  Result<TableRef> ParseTableRef();
  Result<std::unique_ptr<InsertStmt>> ParseInsert();
  Result<std::unique_ptr<CreateTableStmt>> ParseCreateTable();
  Result<std::unique_ptr<DeleteStmt>> ParseDelete();
  Result<std::unique_ptr<DropTableStmt>> ParseDropTable();

  Result<ExprPtr> ParseExpr();        // OR level
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParseUnary();
  Result<ExprPtr> ParsePrimary();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace datalawyer

#endif  // DATALAWYER_SQL_PARSER_H_
