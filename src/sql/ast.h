#ifndef DATALAWYER_SQL_AST_H_
#define DATALAWYER_SQL_AST_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/value.h"
#include "storage/schema.h"

namespace datalawyer {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind {
  kLiteral,
  kColumnRef,
  kStar,     ///< `*` or `t.*` in a select list / COUNT(*)
  kBinary,   ///< arithmetic, comparison, AND, OR
  kUnary,    ///< NOT, unary minus
  kFuncCall, ///< aggregate call
  kIsNull,   ///< expr IS [NOT] NULL
  kInList,   ///< expr [NOT] IN (v1, v2, ...)
  kLike,     ///< expr [NOT] LIKE 'pattern'
};

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Base of all expression nodes. Nodes are owned via unique_ptr; policy
/// rewrites (§4) deep-clone with Clone() and edit the copies.
class Expr {
 public:
  explicit Expr(ExprKind kind) : kind_(kind) {}
  virtual ~Expr() = default;

  ExprKind kind() const { return kind_; }
  virtual ExprPtr Clone() const = 0;
  /// SQL text round-trip (parenthesized where needed).
  virtual std::string ToString() const = 0;

  /// Pre-order traversal over this node and all children.
  void Visit(const std::function<void(const Expr&)>& fn) const;

 private:
  ExprKind kind_;
};

class LiteralExpr : public Expr {
 public:
  explicit LiteralExpr(Value value)
      : Expr(ExprKind::kLiteral), value(std::move(value)) {}
  ExprPtr Clone() const override {
    return std::make_unique<LiteralExpr>(value);
  }
  std::string ToString() const override { return value.ToString(); }

  Value value;
};

class ColumnRefExpr : public Expr {
 public:
  ColumnRefExpr(std::string qualifier, std::string column)
      : Expr(ExprKind::kColumnRef),
        qualifier(std::move(qualifier)),
        column(std::move(column)) {}
  ExprPtr Clone() const override {
    return std::make_unique<ColumnRefExpr>(qualifier, column);
  }
  std::string ToString() const override {
    return qualifier.empty() ? column : qualifier + "." + column;
  }

  std::string qualifier;  ///< table alias; empty when unqualified
  std::string column;
};

class StarExpr : public Expr {
 public:
  explicit StarExpr(std::string qualifier = "")
      : Expr(ExprKind::kStar), qualifier(std::move(qualifier)) {}
  ExprPtr Clone() const override {
    return std::make_unique<StarExpr>(qualifier);
  }
  std::string ToString() const override {
    return qualifier.empty() ? "*" : qualifier + ".*";
  }

  std::string qualifier;  ///< empty for bare `*`
};

class BinaryExpr : public Expr {
 public:
  BinaryExpr(std::string op, ExprPtr lhs, ExprPtr rhs)
      : Expr(ExprKind::kBinary),
        op(std::move(op)),
        lhs(std::move(lhs)),
        rhs(std::move(rhs)) {}
  ExprPtr Clone() const override {
    return std::make_unique<BinaryExpr>(op, lhs->Clone(), rhs->Clone());
  }
  std::string ToString() const override;

  std::string op;  ///< "and" "or" "=" "!=" "<" "<=" ">" ">=" "+" "-" "*" "/" "%"
  ExprPtr lhs;
  ExprPtr rhs;
};

class UnaryExpr : public Expr {
 public:
  UnaryExpr(std::string op, ExprPtr operand)
      : Expr(ExprKind::kUnary), op(std::move(op)), operand(std::move(operand)) {}
  ExprPtr Clone() const override {
    return std::make_unique<UnaryExpr>(op, operand->Clone());
  }
  std::string ToString() const override {
    return "(" + op + " " + operand->ToString() + ")";
  }

  std::string op;  ///< "not" or "-"
  ExprPtr operand;
};

/// Aggregate (or future scalar) function call. COUNT(*) is represented with
/// `star = true` and empty args.
class FuncCallExpr : public Expr {
 public:
  FuncCallExpr(std::string name, bool distinct, bool star,
               std::vector<ExprPtr> args)
      : Expr(ExprKind::kFuncCall),
        name(std::move(name)),
        distinct(distinct),
        star(star),
        args(std::move(args)) {}
  ExprPtr Clone() const override;
  std::string ToString() const override;

  /// True for count/sum/avg/min/max (lowercased name).
  bool IsAggregate() const;

  std::string name;  ///< lowercased
  bool distinct;
  bool star;
  std::vector<ExprPtr> args;
};

/// `expr [NOT] IN (item, item, ...)`. BETWEEN is desugared by the parser
/// into a >= / <= conjunction instead, so join analysis sees plain
/// comparisons.
class InListExpr : public Expr {
 public:
  InListExpr(ExprPtr operand, std::vector<ExprPtr> items, bool negated)
      : Expr(ExprKind::kInList),
        operand(std::move(operand)),
        items(std::move(items)),
        negated(negated) {}
  ExprPtr Clone() const override;
  std::string ToString() const override;

  ExprPtr operand;
  std::vector<ExprPtr> items;
  bool negated;
};

/// `expr [NOT] LIKE 'pattern'` with SQL wildcards % (any sequence) and
/// _ (any single character). The pattern must be a string literal.
class LikeExpr : public Expr {
 public:
  LikeExpr(ExprPtr operand, std::string pattern, bool negated)
      : Expr(ExprKind::kLike),
        operand(std::move(operand)),
        pattern(std::move(pattern)),
        negated(negated) {}
  ExprPtr Clone() const override {
    return std::make_unique<LikeExpr>(operand->Clone(), pattern, negated);
  }
  std::string ToString() const override {
    return "(" + operand->ToString() + (negated ? " NOT LIKE '" : " LIKE '") +
           pattern + "')";
  }

  ExprPtr operand;
  std::string pattern;
  bool negated;
};

class IsNullExpr : public Expr {
 public:
  IsNullExpr(ExprPtr operand, bool negated)
      : Expr(ExprKind::kIsNull), operand(std::move(operand)), negated(negated) {}
  ExprPtr Clone() const override {
    return std::make_unique<IsNullExpr>(operand->Clone(), negated);
  }
  std::string ToString() const override {
    return "(" + operand->ToString() + (negated ? " IS NOT NULL" : " IS NULL") +
           ")";
  }

  ExprPtr operand;
  bool negated;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

struct SelectStmt;

/// One select-list item (`expr [AS alias]`).
struct SelectItem {
  ExprPtr expr;
  std::string alias;  ///< empty if none

  SelectItem Clone() const {
    return SelectItem{expr->Clone(), alias};
  }
};

/// One FROM item: either a base table or a parenthesized subquery, each with
/// an optional alias. The effective binding name is alias if present, else
/// the table name.
struct TableRef {
  std::string table_name;               ///< empty for subqueries
  std::unique_ptr<SelectStmt> subquery; ///< null for base tables
  std::string alias;

  bool IsSubquery() const { return subquery != nullptr; }
  /// Name this FROM item binds in scope.
  std::string BindingName() const {
    return alias.empty() ? table_name : alias;
  }
  TableRef Clone() const;
  std::string ToString() const;
};

/// ORDER BY element.
struct OrderByItem {
  ExprPtr expr;
  bool ascending = true;

  OrderByItem Clone() const { return OrderByItem{expr->Clone(), ascending}; }
};

/// A (possibly UNION-chained) SELECT statement covering the paper's policy
/// language (§3.1): select-from-where-groupby-having with DISTINCT /
/// DISTINCT ON, subqueries in FROM, and UNION.
struct SelectStmt {
  bool distinct = false;
  std::vector<ExprPtr> distinct_on;  ///< non-empty => DISTINCT ON (...)
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  ExprPtr where;                 ///< null if absent
  std::vector<ExprPtr> group_by;
  ExprPtr having;                ///< null if absent
  std::vector<OrderByItem> order_by;
  std::optional<int64_t> limit;

  /// Next member of a UNION chain (left-deep); null at the end.
  std::unique_ptr<SelectStmt> union_next;
  bool union_all = false;  ///< applies to the link to union_next

  std::unique_ptr<SelectStmt> Clone() const;
  std::string ToString() const;
};

/// INSERT INTO t [(cols)] VALUES (...), (...).
struct InsertStmt {
  std::string table_name;
  std::vector<std::string> columns;  ///< empty = schema order
  std::vector<std::vector<ExprPtr>> rows;
};

/// CREATE TABLE t (col TYPE, ...).
struct CreateTableStmt {
  std::string table_name;
  TableSchema schema;
};

/// DELETE FROM t [WHERE ...].
struct DeleteStmt {
  std::string table_name;
  ExprPtr where;  ///< null = delete all
};

/// DROP TABLE t.
struct DropTableStmt {
  std::string table_name;
};

/// EXPLAIN [ANALYZE] SELECT ... — renders the physical plan; with ANALYZE
/// the plan is executed once with operator profiling and annotated with the
/// observed row counts and wall times. EXPLAIN is lexed as an identifier,
/// not a reserved keyword, so tables and columns named "explain" keep
/// working.
struct ExplainStmt {
  bool analyze = false;
  std::unique_ptr<SelectStmt> select;
};

enum class StatementKind {
  kSelect,
  kInsert,
  kCreateTable,
  kDelete,
  kDropTable,
  kExplain,
};

/// Any parsed statement; exactly the member matching `kind` is set.
struct Statement {
  StatementKind kind = StatementKind::kSelect;
  std::unique_ptr<SelectStmt> select;
  std::unique_ptr<InsertStmt> insert;
  std::unique_ptr<CreateTableStmt> create_table;
  std::unique_ptr<DeleteStmt> del;
  std::unique_ptr<DropTableStmt> drop_table;
  std::unique_ptr<ExplainStmt> explain;
};

// ---------------------------------------------------------------------------
// Expression helpers shared by the analyzers and policy rewrites
// ---------------------------------------------------------------------------

/// Splits a conjunction `a AND b AND c` into [a, b, c] (clones the leaves).
std::vector<ExprPtr> SplitConjuncts(const Expr& expr);

/// Non-cloning variant: pointers into the original tree. Used by the
/// executor, whose slot bindings are keyed by node identity.
std::vector<const Expr*> ConjunctPtrs(const Expr& expr);

/// Rebuilds a conjunction from conjuncts; returns null for an empty list.
ExprPtr AndTogether(std::vector<ExprPtr> conjuncts);

/// Collects the distinct qualifiers of every column reference in `expr`
/// (lowercased; unqualified references contribute "").
std::vector<std::string> CollectQualifiers(const Expr& expr);

/// True if any column reference in `expr` has one of `qualifiers` (matched
/// case-insensitively).
bool ReferencesAnyQualifier(const Expr& expr,
                            const std::vector<std::string>& qualifiers);

/// True if the expression contains an aggregate function call.
bool ContainsAggregate(const Expr& expr);

}  // namespace datalawyer

#endif  // DATALAWYER_SQL_AST_H_
