#ifndef DATALAWYER_SQL_TOKEN_H_
#define DATALAWYER_SQL_TOKEN_H_

#include <cstdint>
#include <string>

namespace datalawyer {

enum class TokenType {
  kIdentifier,   ///< unquoted identifier or "quoted" identifier
  kKeyword,      ///< reserved word (text is lowercased)
  kIntLiteral,
  kDoubleLiteral,
  kStringLiteral,  ///< contents with quotes stripped and '' unescaped
  kOperator,       ///< = != <> < <= > >= + - * / %
  kComma,
  kDot,
  kLParen,
  kRParen,
  kSemicolon,
  kEnd,
};

/// One lexical token with its source position (for error messages).
struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;       ///< normalized text (keywords lowercased)
  int64_t int_value = 0;  ///< valid for kIntLiteral
  double double_value = 0.0;  ///< valid for kDoubleLiteral
  size_t position = 0;    ///< byte offset in the input

  bool IsKeyword(const char* kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool IsOperator(const char* op) const {
    return type == TokenType::kOperator && text == op;
  }
};

}  // namespace datalawyer

#endif  // DATALAWYER_SQL_TOKEN_H_
