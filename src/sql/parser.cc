#include "sql/parser.h"

#include "common/strings.h"
#include "common/trace.h"
#include "sql/lexer.h"

namespace datalawyer {

namespace {

/// Maps a type keyword to a ValueType; kUnsupported otherwise.
Result<ValueType> ParseTypeName(const std::string& word) {
  if (word == "int" || word == "bigint") return ValueType::kInt64;
  if (word == "double") return ValueType::kDouble;
  if (word == "text" || word == "varchar") return ValueType::kString;
  if (word == "boolean") return ValueType::kBool;
  return Status::Unsupported("unknown column type: " + word);
}

}  // namespace

Result<Statement> Parser::Parse(const std::string& sql) {
  DL_TRACE_SPAN("sql.parse", "sql");
  Lexer lexer(sql);
  DL_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  DL_ASSIGN_OR_RETURN(Statement stmt, parser.ParseStatement());
  parser.Match(TokenType::kSemicolon);
  if (parser.Peek().type != TokenType::kEnd) {
    return parser.ErrorHere("trailing input after statement");
  }
  return stmt;
}

Result<std::unique_ptr<SelectStmt>> Parser::ParseSelect(
    const std::string& sql) {
  DL_ASSIGN_OR_RETURN(Statement stmt, Parse(sql));
  if (stmt.kind != StatementKind::kSelect) {
    return Status::InvalidArgument("expected a SELECT statement");
  }
  return std::move(stmt.select);
}

Result<std::vector<Statement>> Parser::ParseScript(const std::string& sql) {
  Lexer lexer(sql);
  DL_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  std::vector<Statement> out;
  while (parser.Peek().type != TokenType::kEnd) {
    DL_ASSIGN_OR_RETURN(Statement stmt, parser.ParseStatement());
    out.push_back(std::move(stmt));
    if (!parser.Match(TokenType::kSemicolon)) break;
  }
  if (parser.Peek().type != TokenType::kEnd) {
    return parser.ErrorHere("trailing input after script");
  }
  return out;
}

const Token& Parser::Peek(size_t ahead) const {
  size_t i = pos_ + ahead;
  if (i >= tokens_.size()) i = tokens_.size() - 1;  // kEnd sentinel
  return tokens_[i];
}

Token Parser::Advance() {
  Token tok = Peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return tok;
}

bool Parser::MatchKeyword(const char* kw) {
  if (Peek().IsKeyword(kw)) {
    Advance();
    return true;
  }
  return false;
}

bool Parser::MatchOperator(const char* op) {
  if (Peek().IsOperator(op)) {
    Advance();
    return true;
  }
  return false;
}

bool Parser::Match(TokenType type) {
  if (Peek().type == type) {
    Advance();
    return true;
  }
  return false;
}

Status Parser::Expect(TokenType type, const char* what) {
  if (Peek().type != type) {
    return ErrorHere(std::string("expected ") + what);
  }
  Advance();
  return Status::OK();
}

Status Parser::ExpectKeyword(const char* kw) {
  if (!Peek().IsKeyword(kw)) {
    return ErrorHere(std::string("expected keyword '") + kw + "'");
  }
  Advance();
  return Status::OK();
}

Status Parser::ErrorHere(const std::string& message) const {
  const Token& tok = Peek();
  std::string got =
      tok.type == TokenType::kEnd ? "end of input" : "'" + tok.text + "'";
  return Status::InvalidArgument(message + ", got " + got + " at byte " +
                                 std::to_string(tok.position));
}

Result<Statement> Parser::ParseStatement() {
  Statement stmt;
  const Token& tok = Peek();
  if (tok.IsKeyword("select") || tok.type == TokenType::kLParen) {
    stmt.kind = StatementKind::kSelect;
    DL_ASSIGN_OR_RETURN(stmt.select, ParseSelectStmt());
    return stmt;
  }
  if (tok.IsKeyword("insert")) {
    stmt.kind = StatementKind::kInsert;
    DL_ASSIGN_OR_RETURN(stmt.insert, ParseInsert());
    return stmt;
  }
  if (tok.IsKeyword("create")) {
    stmt.kind = StatementKind::kCreateTable;
    DL_ASSIGN_OR_RETURN(stmt.create_table, ParseCreateTable());
    return stmt;
  }
  if (tok.IsKeyword("delete")) {
    stmt.kind = StatementKind::kDelete;
    DL_ASSIGN_OR_RETURN(stmt.del, ParseDelete());
    return stmt;
  }
  if (tok.IsKeyword("drop")) {
    stmt.kind = StatementKind::kDropTable;
    DL_ASSIGN_OR_RETURN(stmt.drop_table, ParseDropTable());
    return stmt;
  }
  // EXPLAIN [ANALYZE] SELECT ... — matched as an identifier so "explain"
  // stays usable as a table or column name everywhere else.
  if (tok.type == TokenType::kIdentifier &&
      EqualsIgnoreCase(tok.text, "explain")) {
    Advance();
    stmt.kind = StatementKind::kExplain;
    stmt.explain = std::make_unique<ExplainStmt>();
    if (Peek().type == TokenType::kIdentifier &&
        EqualsIgnoreCase(Peek().text, "analyze")) {
      Advance();
      stmt.explain->analyze = true;
    }
    DL_ASSIGN_OR_RETURN(stmt.explain->select, ParseSelectStmt());
    return stmt;
  }
  return ErrorHere("expected SELECT, INSERT, CREATE, DELETE, DROP or EXPLAIN");
}

Result<std::unique_ptr<SelectStmt>> Parser::ParseSelectStmt() {
  // A UNION chain: core (UNION [ALL] core)*
  std::unique_ptr<SelectStmt> head;
  // Parenthesized select head: "(SELECT ...) UNION ..."
  if (Peek().type == TokenType::kLParen && Peek(1).IsKeyword("select")) {
    Advance();  // (
    DL_ASSIGN_OR_RETURN(head, ParseSelectStmt());
    DL_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
  } else {
    DL_ASSIGN_OR_RETURN(head, ParseSelectCore());
  }
  SelectStmt* tail = head.get();
  while (Peek().IsKeyword("union")) {
    Advance();
    bool all = MatchKeyword("all");
    std::unique_ptr<SelectStmt> next;
    if (Peek().type == TokenType::kLParen && Peek(1).IsKeyword("select")) {
      Advance();
      DL_ASSIGN_OR_RETURN(next, ParseSelectStmt());
      DL_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
    } else {
      DL_ASSIGN_OR_RETURN(next, ParseSelectCore());
    }
    tail->union_all = all;
    tail->union_next = std::move(next);
    // Follow to the end of any chain the parenthesized select carried.
    tail = tail->union_next.get();
    while (tail->union_next) tail = tail->union_next.get();
  }
  return head;
}

Result<std::unique_ptr<SelectStmt>> Parser::ParseSelectCore() {
  DL_RETURN_NOT_OK(ExpectKeyword("select"));
  auto stmt = std::make_unique<SelectStmt>();

  if (MatchKeyword("distinct")) {
    if (MatchKeyword("on")) {
      DL_RETURN_NOT_OK(Expect(TokenType::kLParen, "'(' after DISTINCT ON"));
      do {
        DL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        stmt->distinct_on.push_back(std::move(e));
      } while (Match(TokenType::kComma));
      DL_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
      // Tolerate PostgreSQL-paper style "DISTINCT ON (x), y": an optional
      // comma between the ON list and the select list.
      Match(TokenType::kComma);
    } else {
      stmt->distinct = true;
    }
  }

  do {
    SelectItem item;
    DL_ASSIGN_OR_RETURN(item.expr, ParseExpr());
    if (MatchKeyword("as")) {
      if (Peek().type != TokenType::kIdentifier &&
          Peek().type != TokenType::kKeyword) {
        return ErrorHere("expected alias after AS");
      }
      item.alias = ToLower(Advance().text);
    } else if (Peek().type == TokenType::kIdentifier) {
      item.alias = ToLower(Advance().text);
    }
    stmt->items.push_back(std::move(item));
  } while (Match(TokenType::kComma));

  std::vector<ExprPtr> join_conditions;
  if (MatchKeyword("from")) {
    DL_ASSIGN_OR_RETURN(TableRef first, ParseTableRef());
    stmt->from.push_back(std::move(first));
    while (true) {
      if (Match(TokenType::kComma)) {
        DL_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
        stmt->from.push_back(std::move(ref));
        continue;
      }
      if (Peek().IsKeyword("left") || Peek().IsKeyword("right") ||
          Peek().IsKeyword("outer")) {
        return Status::Unsupported(
            "outer joins are not supported (inner joins only)");
      }
      bool cross = false;
      if (Peek().IsKeyword("cross") && Peek(1).IsKeyword("join")) {
        Advance();
        cross = true;
      } else if (Peek().IsKeyword("inner") && Peek(1).IsKeyword("join")) {
        Advance();
      }
      if (!MatchKeyword("join")) break;
      // `a [INNER] JOIN b ON cond` desugars to the comma join plus a WHERE
      // conjunct, so the executor/analyses see one uniform form.
      DL_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
      stmt->from.push_back(std::move(ref));
      if (cross) continue;
      DL_RETURN_NOT_OK(ExpectKeyword("on"));
      DL_ASSIGN_OR_RETURN(ExprPtr condition, ParseExpr());
      join_conditions.push_back(std::move(condition));
    }
  }

  if (MatchKeyword("where")) {
    DL_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  if (!join_conditions.empty()) {
    if (stmt->where != nullptr) {
      join_conditions.push_back(std::move(stmt->where));
    }
    stmt->where = AndTogether(std::move(join_conditions));
  }

  if (MatchKeyword("group")) {
    DL_RETURN_NOT_OK(ExpectKeyword("by"));
    do {
      DL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      stmt->group_by.push_back(std::move(e));
    } while (Match(TokenType::kComma));
  }

  if (MatchKeyword("having")) {
    DL_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
  }

  if (MatchKeyword("order")) {
    DL_RETURN_NOT_OK(ExpectKeyword("by"));
    do {
      OrderByItem item;
      DL_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("desc")) {
        item.ascending = false;
      } else {
        MatchKeyword("asc");
      }
      stmt->order_by.push_back(std::move(item));
    } while (Match(TokenType::kComma));
  }

  if (MatchKeyword("limit")) {
    if (Peek().type != TokenType::kIntLiteral) {
      return ErrorHere("expected integer after LIMIT");
    }
    stmt->limit = Advance().int_value;
  }

  return stmt;
}

Result<TableRef> Parser::ParseTableRef() {
  TableRef ref;
  if (Match(TokenType::kLParen)) {
    DL_ASSIGN_OR_RETURN(ref.subquery, ParseSelectStmt());
    DL_RETURN_NOT_OK(Expect(TokenType::kRParen, "')' after subquery"));
    MatchKeyword("as");
    if (Peek().type != TokenType::kIdentifier) {
      return ErrorHere("subquery in FROM requires an alias");
    }
    ref.alias = ToLower(Advance().text);
    return ref;
  }
  if (Peek().type != TokenType::kIdentifier) {
    return ErrorHere("expected table name");
  }
  ref.table_name = ToLower(Advance().text);
  if (MatchKeyword("as")) {
    if (Peek().type != TokenType::kIdentifier) {
      return ErrorHere("expected alias after AS");
    }
    ref.alias = ToLower(Advance().text);
  } else if (Peek().type == TokenType::kIdentifier) {
    ref.alias = ToLower(Advance().text);
  }
  if (ref.alias.empty()) ref.alias = ref.table_name;
  return ref;
}

Result<std::unique_ptr<InsertStmt>> Parser::ParseInsert() {
  DL_RETURN_NOT_OK(ExpectKeyword("insert"));
  DL_RETURN_NOT_OK(ExpectKeyword("into"));
  auto stmt = std::make_unique<InsertStmt>();
  if (Peek().type != TokenType::kIdentifier) {
    return ErrorHere("expected table name");
  }
  stmt->table_name = ToLower(Advance().text);
  if (Match(TokenType::kLParen)) {
    do {
      if (Peek().type != TokenType::kIdentifier) {
        return ErrorHere("expected column name");
      }
      stmt->columns.push_back(ToLower(Advance().text));
    } while (Match(TokenType::kComma));
    DL_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
  }
  DL_RETURN_NOT_OK(ExpectKeyword("values"));
  do {
    DL_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
    std::vector<ExprPtr> row;
    do {
      DL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      row.push_back(std::move(e));
    } while (Match(TokenType::kComma));
    DL_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
    stmt->rows.push_back(std::move(row));
  } while (Match(TokenType::kComma));
  return stmt;
}

Result<std::unique_ptr<CreateTableStmt>> Parser::ParseCreateTable() {
  DL_RETURN_NOT_OK(ExpectKeyword("create"));
  DL_RETURN_NOT_OK(ExpectKeyword("table"));
  auto stmt = std::make_unique<CreateTableStmt>();
  if (Peek().type != TokenType::kIdentifier) {
    return ErrorHere("expected table name");
  }
  stmt->table_name = ToLower(Advance().text);
  DL_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
  do {
    if (Peek().type != TokenType::kIdentifier &&
        Peek().type != TokenType::kKeyword) {
      return ErrorHere("expected column name");
    }
    std::string col = ToLower(Advance().text);
    if (Peek().type != TokenType::kKeyword &&
        Peek().type != TokenType::kIdentifier) {
      return ErrorHere("expected column type");
    }
    std::string type_word = ToLower(Advance().text);
    DL_ASSIGN_OR_RETURN(ValueType type, ParseTypeName(type_word));
    stmt->schema.AddColumn(col, type);
  } while (Match(TokenType::kComma));
  DL_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
  return stmt;
}

Result<std::unique_ptr<DeleteStmt>> Parser::ParseDelete() {
  DL_RETURN_NOT_OK(ExpectKeyword("delete"));
  DL_RETURN_NOT_OK(ExpectKeyword("from"));
  auto stmt = std::make_unique<DeleteStmt>();
  if (Peek().type != TokenType::kIdentifier) {
    return ErrorHere("expected table name");
  }
  stmt->table_name = ToLower(Advance().text);
  if (MatchKeyword("where")) {
    DL_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  return stmt;
}

Result<std::unique_ptr<DropTableStmt>> Parser::ParseDropTable() {
  DL_RETURN_NOT_OK(ExpectKeyword("drop"));
  DL_RETURN_NOT_OK(ExpectKeyword("table"));
  auto stmt = std::make_unique<DropTableStmt>();
  if (Peek().type != TokenType::kIdentifier) {
    return ErrorHere("expected table name");
  }
  stmt->table_name = ToLower(Advance().text);
  return stmt;
}

// --------------------------- expressions ----------------------------------

Result<ExprPtr> Parser::ParseExpr() {
  DL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
  while (MatchKeyword("or")) {
    DL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
    lhs = std::make_unique<BinaryExpr>("or", std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseAnd() {
  DL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
  while (MatchKeyword("and")) {
    DL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
    lhs = std::make_unique<BinaryExpr>("and", std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseNot() {
  if (MatchKeyword("not")) {
    DL_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
    return ExprPtr(std::make_unique<UnaryExpr>("not", std::move(operand)));
  }
  return ParseComparison();
}

Result<ExprPtr> Parser::ParseComparison() {
  DL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
  const Token& tok = Peek();
  if (tok.type == TokenType::kOperator &&
      (tok.text == "=" || tok.text == "!=" || tok.text == "<" ||
       tok.text == "<=" || tok.text == ">" || tok.text == ">=")) {
    std::string op = Advance().text;
    DL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
    return ExprPtr(
        std::make_unique<BinaryExpr>(op, std::move(lhs), std::move(rhs)));
  }
  if (tok.IsKeyword("is")) {
    Advance();
    bool negated = MatchKeyword("not");
    DL_RETURN_NOT_OK(ExpectKeyword("null"));
    return ExprPtr(std::make_unique<IsNullExpr>(std::move(lhs), negated));
  }

  // Postfix predicates: [NOT] IN / BETWEEN / LIKE.
  bool negated = false;
  if (tok.IsKeyword("not") &&
      (Peek(1).IsKeyword("in") || Peek(1).IsKeyword("between") ||
       Peek(1).IsKeyword("like"))) {
    Advance();
    negated = true;
  }
  if (MatchKeyword("in")) {
    DL_RETURN_NOT_OK(Expect(TokenType::kLParen, "'(' after IN"));
    std::vector<ExprPtr> items;
    do {
      DL_ASSIGN_OR_RETURN(ExprPtr item, ParseAdditive());
      items.push_back(std::move(item));
    } while (Match(TokenType::kComma));
    DL_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
    return ExprPtr(std::make_unique<InListExpr>(std::move(lhs),
                                                std::move(items), negated));
  }
  if (MatchKeyword("between")) {
    // Desugared so join/witness analysis sees plain comparisons:
    //   x BETWEEN a AND b      →  x >= a AND x <= b
    //   x NOT BETWEEN a AND b  →  NOT (x >= a AND x <= b)
    DL_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
    DL_RETURN_NOT_OK(ExpectKeyword("and"));
    DL_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
    ExprPtr lower = std::make_unique<BinaryExpr>(">=", lhs->Clone(),
                                                 std::move(lo));
    ExprPtr upper =
        std::make_unique<BinaryExpr>("<=", std::move(lhs), std::move(hi));
    ExprPtr both = std::make_unique<BinaryExpr>("and", std::move(lower),
                                                std::move(upper));
    if (negated) {
      return ExprPtr(std::make_unique<UnaryExpr>("not", std::move(both)));
    }
    return both;
  }
  if (MatchKeyword("like")) {
    if (Peek().type != TokenType::kStringLiteral) {
      return ErrorHere("LIKE requires a string-literal pattern");
    }
    std::string pattern = Advance().text;
    return ExprPtr(std::make_unique<LikeExpr>(std::move(lhs),
                                              std::move(pattern), negated));
  }
  if (negated) {
    return ErrorHere("expected IN, BETWEEN or LIKE after NOT");
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseAdditive() {
  DL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
  while (Peek().IsOperator("+") || Peek().IsOperator("-")) {
    std::string op = Advance().text;
    DL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
    lhs = std::make_unique<BinaryExpr>(op, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  DL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
  while (Peek().IsOperator("*") || Peek().IsOperator("/") ||
         Peek().IsOperator("%")) {
    std::string op = Advance().text;
    DL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
    lhs = std::make_unique<BinaryExpr>(op, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> Parser::ParseUnary() {
  if (MatchOperator("-")) {
    DL_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
    // Fold negative literals so `-5` is a literal, not an expression.
    if (operand->kind() == ExprKind::kLiteral) {
      auto& lit = static_cast<LiteralExpr&>(*operand);
      if (lit.value.is_int64()) {
        return ExprPtr(std::make_unique<LiteralExpr>(Value(-lit.value.AsInt64())));
      }
      if (lit.value.is_double()) {
        return ExprPtr(
            std::make_unique<LiteralExpr>(Value(-lit.value.AsDouble())));
      }
    }
    return ExprPtr(std::make_unique<UnaryExpr>("-", std::move(operand)));
  }
  return ParsePrimary();
}

Result<ExprPtr> Parser::ParsePrimary() {
  const Token& tok = Peek();

  switch (tok.type) {
    case TokenType::kIntLiteral: {
      int64_t v = Advance().int_value;
      return ExprPtr(std::make_unique<LiteralExpr>(Value(v)));
    }
    case TokenType::kDoubleLiteral: {
      double v = Advance().double_value;
      return ExprPtr(std::make_unique<LiteralExpr>(Value(v)));
    }
    case TokenType::kStringLiteral: {
      std::string v = Advance().text;
      return ExprPtr(std::make_unique<LiteralExpr>(Value(std::move(v))));
    }
    case TokenType::kLParen: {
      Advance();
      DL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      DL_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
      return e;
    }
    default:
      break;
  }

  if (tok.IsKeyword("null")) {
    Advance();
    return ExprPtr(std::make_unique<LiteralExpr>(Value::Null()));
  }
  if (tok.IsKeyword("true")) {
    Advance();
    return ExprPtr(std::make_unique<LiteralExpr>(Value(true)));
  }
  if (tok.IsKeyword("false")) {
    Advance();
    return ExprPtr(std::make_unique<LiteralExpr>(Value(false)));
  }

  // Aggregate functions: count/sum/avg/min/max are keywords.
  if (tok.type == TokenType::kKeyword &&
      (tok.text == "count" || tok.text == "sum" || tok.text == "avg" ||
       tok.text == "min" || tok.text == "max")) {
    std::string name = Advance().text;
    DL_RETURN_NOT_OK(Expect(TokenType::kLParen, "'(' after aggregate"));
    bool distinct = MatchKeyword("distinct");
    bool star = false;
    std::vector<ExprPtr> args;
    if (Peek().IsOperator("*")) {
      Advance();
      star = true;
    } else {
      DL_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
      args.push_back(std::move(arg));
    }
    DL_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
    return ExprPtr(std::make_unique<FuncCallExpr>(name, distinct, star,
                                                  std::move(args)));
  }

  if (tok.IsOperator("*")) {
    Advance();
    return ExprPtr(std::make_unique<StarExpr>());
  }

  if (tok.type == TokenType::kIdentifier) {
    std::string first = ToLower(Advance().text);
    // Scalar function call: ident '(' expr [, expr]* ')'.
    if (Peek().type == TokenType::kLParen) {
      Advance();
      std::vector<ExprPtr> args;
      if (Peek().type != TokenType::kRParen) {
        do {
          DL_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
          args.push_back(std::move(arg));
        } while (Match(TokenType::kComma));
      }
      DL_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
      return ExprPtr(std::make_unique<FuncCallExpr>(first, false, false,
                                                    std::move(args)));
    }
    if (Match(TokenType::kDot)) {
      if (Peek().IsOperator("*")) {
        Advance();
        return ExprPtr(std::make_unique<StarExpr>(first));
      }
      if (Peek().type != TokenType::kIdentifier &&
          Peek().type != TokenType::kKeyword) {
        return ErrorHere("expected column name after '.'");
      }
      std::string col = ToLower(Advance().text);
      return ExprPtr(std::make_unique<ColumnRefExpr>(first, std::move(col)));
    }
    return ExprPtr(std::make_unique<ColumnRefExpr>("", std::move(first)));
  }

  return ErrorHere("expected expression");
}

}  // namespace datalawyer
