#include "sql/ast.h"

#include "common/strings.h"

namespace datalawyer {

void Expr::Visit(const std::function<void(const Expr&)>& fn) const {
  fn(*this);
  switch (kind_) {
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(*this);
      b.lhs->Visit(fn);
      b.rhs->Visit(fn);
      break;
    }
    case ExprKind::kUnary:
      static_cast<const UnaryExpr&>(*this).operand->Visit(fn);
      break;
    case ExprKind::kFuncCall: {
      const auto& f = static_cast<const FuncCallExpr&>(*this);
      for (const auto& arg : f.args) arg->Visit(fn);
      break;
    }
    case ExprKind::kIsNull:
      static_cast<const IsNullExpr&>(*this).operand->Visit(fn);
      break;
    case ExprKind::kInList: {
      const auto& in = static_cast<const InListExpr&>(*this);
      in.operand->Visit(fn);
      for (const auto& item : in.items) item->Visit(fn);
      break;
    }
    case ExprKind::kLike:
      static_cast<const LikeExpr&>(*this).operand->Visit(fn);
      break;
    default:
      break;
  }
}

ExprPtr InListExpr::Clone() const {
  std::vector<ExprPtr> cloned;
  cloned.reserve(items.size());
  for (const auto& item : items) cloned.push_back(item->Clone());
  return std::make_unique<InListExpr>(operand->Clone(), std::move(cloned),
                                      negated);
}

std::string InListExpr::ToString() const {
  std::string out = "(" + operand->ToString() + (negated ? " NOT IN (" : " IN (");
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += items[i]->ToString();
  }
  out += "))";
  return out;
}

std::string BinaryExpr::ToString() const {
  // Keywords uppercased for readability; operators inline.
  std::string opstr = (op == "and" || op == "or") ? " " + ToLower(op) + " "
                                                  : " " + op + " ";
  if (op == "and" || op == "or") {
    opstr = op == "and" ? " AND " : " OR ";
  }
  return "(" + lhs->ToString() + opstr + rhs->ToString() + ")";
}

ExprPtr FuncCallExpr::Clone() const {
  std::vector<ExprPtr> cloned;
  cloned.reserve(args.size());
  for (const auto& a : args) cloned.push_back(a->Clone());
  return std::make_unique<FuncCallExpr>(name, distinct, star,
                                        std::move(cloned));
}

std::string FuncCallExpr::ToString() const {
  std::string out = name + "(";
  if (distinct) out += "DISTINCT ";
  if (star) {
    out += "*";
  } else {
    for (size_t i = 0; i < args.size(); ++i) {
      if (i > 0) out += ", ";
      out += args[i]->ToString();
    }
  }
  out += ")";
  return out;
}

bool FuncCallExpr::IsAggregate() const {
  return name == "count" || name == "sum" || name == "avg" || name == "min" ||
         name == "max";
}

TableRef TableRef::Clone() const {
  TableRef out;
  out.table_name = table_name;
  out.alias = alias;
  if (subquery) out.subquery = subquery->Clone();
  return out;
}

std::string TableRef::ToString() const {
  std::string out;
  if (IsSubquery()) {
    out = "(" + subquery->ToString() + ")";
  } else {
    out = table_name;
  }
  if (!alias.empty() && alias != table_name) out += " " + alias;
  return out;
}

std::unique_ptr<SelectStmt> SelectStmt::Clone() const {
  auto out = std::make_unique<SelectStmt>();
  out->distinct = distinct;
  for (const auto& e : distinct_on) out->distinct_on.push_back(e->Clone());
  for (const auto& item : items) out->items.push_back(item.Clone());
  for (const auto& ref : from) out->from.push_back(ref.Clone());
  if (where) out->where = where->Clone();
  for (const auto& e : group_by) out->group_by.push_back(e->Clone());
  if (having) out->having = having->Clone();
  for (const auto& o : order_by) out->order_by.push_back(o.Clone());
  out->limit = limit;
  if (union_next) out->union_next = union_next->Clone();
  out->union_all = union_all;
  return out;
}

std::string SelectStmt::ToString() const {
  std::string out = "SELECT ";
  if (!distinct_on.empty()) {
    out += "DISTINCT ON (";
    for (size_t i = 0; i < distinct_on.size(); ++i) {
      if (i > 0) out += ", ";
      out += distinct_on[i]->ToString();
    }
    out += ") ";
  } else if (distinct) {
    out += "DISTINCT ";
  }
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += items[i].expr->ToString();
    if (!items[i].alias.empty()) out += " AS " + items[i].alias;
  }
  if (!from.empty()) {
    out += " FROM ";
    for (size_t i = 0; i < from.size(); ++i) {
      if (i > 0) out += ", ";
      out += from[i].ToString();
    }
  }
  if (where) out += " WHERE " + where->ToString();
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_by[i]->ToString();
    }
  }
  if (having) out += " HAVING " + having->ToString();
  if (!order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += order_by[i].expr->ToString();
      if (!order_by[i].ascending) out += " DESC";
    }
  }
  if (limit.has_value()) out += " LIMIT " + std::to_string(*limit);
  if (union_next) {
    out += union_all ? " UNION ALL " : " UNION ";
    out += union_next->ToString();
  }
  return out;
}

std::vector<ExprPtr> SplitConjuncts(const Expr& expr) {
  std::vector<ExprPtr> out;
  if (expr.kind() == ExprKind::kBinary) {
    const auto& b = static_cast<const BinaryExpr&>(expr);
    if (b.op == "and") {
      auto left = SplitConjuncts(*b.lhs);
      auto right = SplitConjuncts(*b.rhs);
      for (auto& e : left) out.push_back(std::move(e));
      for (auto& e : right) out.push_back(std::move(e));
      return out;
    }
  }
  out.push_back(expr.Clone());
  return out;
}

std::vector<const Expr*> ConjunctPtrs(const Expr& expr) {
  std::vector<const Expr*> out;
  if (expr.kind() == ExprKind::kBinary) {
    const auto& b = static_cast<const BinaryExpr&>(expr);
    if (b.op == "and") {
      auto left = ConjunctPtrs(*b.lhs);
      auto right = ConjunctPtrs(*b.rhs);
      out.insert(out.end(), left.begin(), left.end());
      out.insert(out.end(), right.begin(), right.end());
      return out;
    }
  }
  out.push_back(&expr);
  return out;
}

ExprPtr AndTogether(std::vector<ExprPtr> conjuncts) {
  ExprPtr out;
  for (auto& c : conjuncts) {
    if (!out) {
      out = std::move(c);
    } else {
      out = std::make_unique<BinaryExpr>("and", std::move(out), std::move(c));
    }
  }
  return out;
}

std::vector<std::string> CollectQualifiers(const Expr& expr) {
  std::vector<std::string> out;
  expr.Visit([&](const Expr& e) {
    if (e.kind() == ExprKind::kColumnRef) {
      const auto& c = static_cast<const ColumnRefExpr&>(e);
      std::string q = ToLower(c.qualifier);
      bool found = false;
      for (const auto& existing : out) {
        if (existing == q) {
          found = true;
          break;
        }
      }
      if (!found) out.push_back(q);
    }
  });
  return out;
}

bool ReferencesAnyQualifier(const Expr& expr,
                            const std::vector<std::string>& qualifiers) {
  bool found = false;
  expr.Visit([&](const Expr& e) {
    if (found) return;
    if (e.kind() == ExprKind::kColumnRef) {
      const auto& c = static_cast<const ColumnRefExpr&>(e);
      for (const auto& q : qualifiers) {
        if (EqualsIgnoreCase(c.qualifier, q)) {
          found = true;
          return;
        }
      }
    }
  });
  return found;
}

bool ContainsAggregate(const Expr& expr) {
  bool found = false;
  expr.Visit([&](const Expr& e) {
    if (e.kind() == ExprKind::kFuncCall &&
        static_cast<const FuncCallExpr&>(e).IsAggregate()) {
      found = true;
    }
  });
  return found;
}

}  // namespace datalawyer
