#ifndef DATALAWYER_SQL_LEXER_H_
#define DATALAWYER_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "sql/token.h"

namespace datalawyer {

/// Tokenizes a SQL string. Supports `--` line comments and `/* */` block
/// comments, single-quoted string literals with `''` escaping, and the
/// operator set of the policy language. Keywords are recognized
/// case-insensitively and normalized to lowercase.
class Lexer {
 public:
  explicit Lexer(std::string input) : input_(std::move(input)) {}

  /// Full tokenization; the last token is always kEnd.
  Result<std::vector<Token>> Tokenize();

  /// True if `word` (lowercase) is a reserved keyword.
  static bool IsKeyword(const std::string& word);

 private:
  Result<Token> Next();
  void SkipWhitespaceAndComments();
  char Peek(size_t ahead = 0) const;
  bool AtEnd() const { return pos_ >= input_.size(); }

  std::string input_;
  size_t pos_ = 0;
};

}  // namespace datalawyer

#endif  // DATALAWYER_SQL_LEXER_H_
