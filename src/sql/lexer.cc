#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_set>

#include "common/strings.h"

namespace datalawyer {

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const auto* kKeywords = new std::unordered_set<std::string>{
      "select", "distinct", "on",     "from",   "where",  "group",
      "by",     "having",   "as",     "and",    "or",     "not",
      "count",  "sum",      "avg",    "min",    "max",    "union",
      "all",    "insert",   "into",   "values", "create", "table",
      "drop",   "delete",   "update", "set",    "null",   "true",
      "false",  "order",    "asc",    "desc",   "limit",  "is",
      "in",     "between",  "like",   "int",    "bigint", "double",
      "text",   "varchar",  "boolean", "join",  "inner",  "left",
      "right",  "outer",    "cross",
  };
  return *kKeywords;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

bool Lexer::IsKeyword(const std::string& word) {
  return Keywords().count(word) > 0;
}

char Lexer::Peek(size_t ahead) const {
  size_t i = pos_ + ahead;
  return i < input_.size() ? input_[i] : '\0';
}

void Lexer::SkipWhitespaceAndComments() {
  while (!AtEnd()) {
    char c = Peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos_;
    } else if (c == '-' && Peek(1) == '-') {
      while (!AtEnd() && Peek() != '\n') ++pos_;
    } else if (c == '/' && Peek(1) == '*') {
      pos_ += 2;
      while (!AtEnd() && !(Peek() == '*' && Peek(1) == '/')) ++pos_;
      if (!AtEnd()) pos_ += 2;
    } else {
      break;
    }
  }
}

Result<Token> Lexer::Next() {
  SkipWhitespaceAndComments();
  Token tok;
  tok.position = pos_;
  if (AtEnd()) {
    tok.type = TokenType::kEnd;
    return tok;
  }

  char c = Peek();

  if (IsIdentStart(c)) {
    size_t start = pos_;
    while (!AtEnd() && IsIdentChar(Peek())) ++pos_;
    std::string word = ToLower(input_.substr(start, pos_ - start));
    tok.text = word;
    tok.type = IsKeyword(word) ? TokenType::kKeyword : TokenType::kIdentifier;
    return tok;
  }

  if (c == '"') {
    // Quoted identifier (kept verbatim, lowercased for case-insensitivity).
    ++pos_;
    size_t start = pos_;
    while (!AtEnd() && Peek() != '"') ++pos_;
    if (AtEnd()) {
      return Status::InvalidArgument("unterminated quoted identifier at byte " +
                                     std::to_string(tok.position));
    }
    tok.text = ToLower(input_.substr(start, pos_ - start));
    tok.type = TokenType::kIdentifier;
    ++pos_;
    return tok;
  }

  if (std::isdigit(static_cast<unsigned char>(c)) ||
      (c == '.' && std::isdigit(static_cast<unsigned char>(Peek(1))))) {
    size_t start = pos_;
    bool is_double = false;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    if (Peek() == '.' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
      is_double = true;
      ++pos_;
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      size_t save = pos_;
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (std::isdigit(static_cast<unsigned char>(Peek()))) {
        is_double = true;
        while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
          ++pos_;
        }
      } else {
        pos_ = save;  // not an exponent after all
      }
    }
    tok.text = input_.substr(start, pos_ - start);
    if (is_double) {
      tok.type = TokenType::kDoubleLiteral;
      tok.double_value = std::strtod(tok.text.c_str(), nullptr);
    } else {
      tok.type = TokenType::kIntLiteral;
      tok.int_value = std::strtoll(tok.text.c_str(), nullptr, 10);
    }
    return tok;
  }

  if (c == '\'') {
    ++pos_;
    std::string contents;
    while (true) {
      if (AtEnd()) {
        return Status::InvalidArgument("unterminated string literal at byte " +
                                       std::to_string(tok.position));
      }
      char ch = Peek();
      if (ch == '\'') {
        if (Peek(1) == '\'') {  // '' escape
          contents += '\'';
          pos_ += 2;
        } else {
          ++pos_;
          break;
        }
      } else {
        contents += ch;
        ++pos_;
      }
    }
    tok.type = TokenType::kStringLiteral;
    tok.text = std::move(contents);
    return tok;
  }

  auto two = [&](const char* op) {
    tok.type = TokenType::kOperator;
    tok.text = op;
    pos_ += 2;
  };
  auto one = [&](TokenType type, char ch) {
    tok.type = type;
    tok.text = std::string(1, ch);
    ++pos_;
  };

  switch (c) {
    case '!':
      if (Peek(1) == '=') {
        two("!=");
        return tok;
      }
      return Status::InvalidArgument("unexpected '!' at byte " +
                                     std::to_string(pos_));
    case '<':
      if (Peek(1) == '=') {
        two("<=");
      } else if (Peek(1) == '>') {
        two("!=");  // normalize <> to !=
      } else {
        one(TokenType::kOperator, '<');
      }
      return tok;
    case '>':
      if (Peek(1) == '=') {
        two(">=");
      } else {
        one(TokenType::kOperator, '>');
      }
      return tok;
    case '=':
    case '+':
    case '-':
    case '*':
    case '/':
    case '%':
      one(TokenType::kOperator, c);
      return tok;
    case ',':
      one(TokenType::kComma, c);
      return tok;
    case '.':
      one(TokenType::kDot, c);
      return tok;
    case '(':
      one(TokenType::kLParen, c);
      return tok;
    case ')':
      one(TokenType::kRParen, c);
      return tok;
    case ';':
      one(TokenType::kSemicolon, c);
      return tok;
    default:
      return Status::InvalidArgument(std::string("unexpected character '") +
                                     c + "' at byte " + std::to_string(pos_));
  }
}

Result<std::vector<Token>> Lexer::Tokenize() {
  std::vector<Token> tokens;
  while (true) {
    DL_ASSIGN_OR_RETURN(Token tok, Next());
    bool done = tok.type == TokenType::kEnd;
    tokens.push_back(std::move(tok));
    if (done) break;
  }
  return tokens;
}

}  // namespace datalawyer
