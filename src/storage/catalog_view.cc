#include "storage/catalog_view.h"

#include "common/strings.h"

namespace datalawyer {

void OverlayCatalog::Add(const std::string& name, const RelationData* rel) {
  overrides_[ToLower(name)] = rel;
}

const RelationData* OverlayCatalog::Find(const std::string& name) const {
  auto it = overrides_.find(ToLower(name));
  if (it != overrides_.end()) return it->second;
  return base_ != nullptr ? base_->Find(name) : nullptr;
}

}  // namespace datalawyer
