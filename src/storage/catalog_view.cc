#include "storage/catalog_view.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace datalawyer {

ConcatRelation::ConcatRelation(const RelationData* first,
                               const RelationData* second)
    : first_(first), second_(second) {
  const TableStats* base = first_->Stats();
  if (base == nullptr) return;
  stats_ = *base;
  has_stats_ = true;
  size_t m = second_->NumRows();
  stats_.row_count += m;
  for (size_t i = 0; i < m; ++i) {
    const Row& row = second_->RowAt(i);
    for (size_t c = 0; c < stats_.columns.size() && c < row.size(); ++c) {
      const Value& v = row[c];
      ColumnStats& cs = stats_.columns[c];
      if (v.is_null()) {
        ++cs.null_count;
        continue;
      }
      ++cs.ndv;  // over-approximation: may double-count a main-part value
      if (!v.is_numeric() || !std::isfinite(v.ToDouble())) {
        cs.has_range = false;
        continue;
      }
      if (!cs.has_range && cs.ndv == 1) {
        cs.has_range = true;
        cs.min = cs.max = v.ToDouble();
      } else if (cs.has_range) {
        cs.min = std::min(cs.min, v.ToDouble());
        cs.max = std::max(cs.max, v.ToDouble());
      }
    }
  }
}

bool ConcatRelation::RangeLookup(size_t col, const Value* lo,
                                 bool lo_inclusive, const Value* hi,
                                 bool hi_inclusive,
                                 std::vector<size_t>* out) const {
  std::vector<size_t> first_hits;
  if (!first_->RangeLookup(col, lo, lo_inclusive, hi, hi_inclusive,
                           &first_hits)) {
    return false;
  }
  size_t n = first_->NumRows();
  std::vector<size_t> second_hits;
  if (!second_->RangeLookup(col, lo, lo_inclusive, hi, hi_inclusive,
                            &second_hits)) {
    second_hits.clear();
    size_t m = second_->NumRows();
    for (size_t i = 0; i < m; ++i) {
      const Value& v = second_->RowAt(i)[col];
      bool in = true;
      if (lo != nullptr) {
        auto r = Value::Compare(v, lo_inclusive ? ">=" : ">", *lo);
        if (!r.ok()) return false;
        in = !r->is_null() && r->AsBool();
      }
      if (in && hi != nullptr) {
        auto r = Value::Compare(v, hi_inclusive ? "<=" : "<", *hi);
        if (!r.ok()) return false;
        in = !r->is_null() && r->AsBool();
      }
      if (in) second_hits.push_back(i);
    }
  }
  out->insert(out->end(), first_hits.begin(), first_hits.end());
  for (size_t i : second_hits) out->push_back(n + i);
  return true;
}

void SystemCatalog::Register(const std::string& name, Provider provider) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string key = ToLower(name);
  if (providers_.find(key) == providers_.end()) names_.push_back(key);
  providers_[key] = std::move(provider);
  snapshots_.erase(key);
}

void SystemCatalog::InvalidateSnapshots() {
  if (!dirty_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(mu_);
  snapshots_.clear();
  dirty_.store(false, std::memory_order_release);
}

const RelationData* SystemCatalog::Find(const std::string& name) const {
  // Real tables shadow system relations, so an application schema that
  // happens to define a `dl_decisions` table keeps working unchanged.
  if (base_ != nullptr) {
    const RelationData* rel = base_->Find(name);
    if (rel != nullptr) return rel;
  }
  std::string key = ToLower(name);
  std::lock_guard<std::mutex> lock(mu_);
  auto snap = snapshots_.find(key);
  if (snap != snapshots_.end()) return snap->second.get();
  auto prov = providers_.find(key);
  if (prov == providers_.end()) return nullptr;
  auto rel = prov->second();
  const RelationData* raw = rel.get();
  snapshots_[key] = std::move(rel);
  dirty_.store(true, std::memory_order_release);
  return raw;
}

void OverlayCatalog::Add(const std::string& name, const RelationData* rel) {
  overrides_[ToLower(name)] = rel;
}

const RelationData* OverlayCatalog::Find(const std::string& name) const {
  auto it = overrides_.find(ToLower(name));
  if (it != overrides_.end()) return it->second;
  return base_ != nullptr ? base_->Find(name) : nullptr;
}

}  // namespace datalawyer
