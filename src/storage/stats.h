#ifndef DATALAWYER_STORAGE_STATS_H_
#define DATALAWYER_STORAGE_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/value.h"
#include "storage/schema.h"

namespace datalawyer {

class RelationData;

/// Summary statistics for one column: number of distinct non-NULL values,
/// NULL count, and (for columns whose non-NULL values are all numeric) a
/// min/max range widened to double. Strings and booleans carry NDVs but no
/// range; a column that mixes numerics with other classes drops its range.
struct ColumnStats {
  uint64_t ndv = 0;
  uint64_t null_count = 0;
  bool has_range = false;  ///< min/max below are meaningful
  double min = 0;
  double max = 0;
};

/// Summary statistics for one relation. `valid` distinguishes "statistics
/// are maintained and current" from the default "no statistics" state —
/// estimation falls back to magic selectivities when false.
struct TableStats {
  bool valid = false;
  uint64_t row_count = 0;
  std::vector<ColumnStats> columns;  ///< parallel to the schema
};

/// Full-scan computation of a relation's statistics (exact NDVs). Used by
/// the shell's `\stats <table>` and by tests; the Table class maintains the
/// same quantities incrementally.
TableStats ComputeTableStats(const RelationData& rel);

/// Renders the stats as an aligned table for the shell:
///   column  ndv  nulls  min  max
std::string RenderTableStats(const std::string& name, const TableSchema& schema,
                             const TableStats& stats);

}  // namespace datalawyer

#endif  // DATALAWYER_STORAGE_STATS_H_
