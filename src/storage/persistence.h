#ifndef DATALAWYER_STORAGE_PERSISTENCE_H_
#define DATALAWYER_STORAGE_PERSISTENCE_H_

#include <string>

#include "common/result.h"
#include "storage/database.h"

namespace datalawyer {

/// Plain-text table snapshots: one `<table>.dltab` file per table, a schema
/// header line followed by one tab-separated row per line. Typed cells
/// (`I:`, `D:`, `S:`, `B:`, `N:`) with backslash escaping keep the format
/// unambiguous and diff-friendly.
///
/// This is the "disk" behind the paper's semantics — the usage log is
/// flushed after each admitted query and both the data and the log survive
/// a restart. Row ids are not preserved across a reload; nothing in the
/// system depends on their values, only on their per-run stability.

/// Writes one table to `path`, replacing any existing file.
Status SaveTable(const Table& table, const std::string& path);

/// Appends the rows of `path` into `table` (schemas must match).
Status LoadTableInto(Table* table, const std::string& path);

/// Reads the schema header of `path` and creates an empty table shape.
Result<TableSchema> LoadSchema(const std::string& path);

/// Saves every table of `db` into `dir` (created if missing).
Status SaveDatabase(const Database& db, const std::string& dir);

/// Loads every `*.dltab` under `dir` into `db` as new tables.
Status LoadDatabase(Database* db, const std::string& dir);

}  // namespace datalawyer

#endif  // DATALAWYER_STORAGE_PERSISTENCE_H_
