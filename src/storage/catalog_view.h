#ifndef DATALAWYER_STORAGE_CATALOG_VIEW_H_
#define DATALAWYER_STORAGE_CATALOG_VIEW_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "storage/database.h"
#include "storage/stats.h"
#include "storage/table.h"

namespace datalawyer {

/// Name → RelationData resolver the binder/executor read through.
///
/// This indirection is what lets policy evaluation see `log ∪ increment`
/// without copying (the paper keeps the increment "in temporary tables in
/// memory ... while checking the policies", §4, NoOpt optimization 2), and
/// lets the system expose the synthesized Clock and Constants relations.
class CatalogView {
 public:
  virtual ~CatalogView() = default;
  /// nullptr if unknown; lookup is case-insensitive.
  virtual const RelationData* Find(const std::string& name) const = 0;
};

/// Plain view over a Database.
class DatabaseCatalog : public CatalogView {
 public:
  /// `db` must outlive this view.
  explicit DatabaseCatalog(const Database* db) : db_(db) {}
  const RelationData* Find(const std::string& name) const override {
    return db_->FindTable(name);
  }

 private:
  const Database* db_;
};

/// Concatenation of two relations with identical schemas (e.g. a persisted
/// log relation followed by its staged in-memory increment). Row ids of the
/// second part are offset so ids remain unique within the view; callers can
/// map back with IsFromSecond()/SecondRowId().
class ConcatRelation : public RelationData {
 public:
  /// Both parts must outlive this object and share column arity. When the
  /// first (persisted) part maintains statistics, the view folds the
  /// second part's rows in at construction — the increment is bounded by
  /// one query's log generation, so this stays cheap — and serves the
  /// merged snapshot through Stats(). NDVs over-approximate: a delta value
  /// already present in the main part still counts once more.
  ConcatRelation(const RelationData* first, const RelationData* second);

  const TableSchema& schema() const override { return first_->schema(); }
  size_t NumRows() const override {
    return first_->NumRows() + second_->NumRows();
  }

  /// Index probes pass through when the first (persisted, large) part can
  /// answer from its hash index; the second part — the per-query increment,
  /// bounded by one query's log generation — is probed through its own
  /// index when present and scanned otherwise. Positions are returned in
  /// concatenated coordinates. Const all the way down: safe under
  /// concurrent policy evaluation.
  bool IndexLookup(size_t col, const Value& v,
                   std::vector<size_t>* out) const override {
    if (!first_->IndexLookup(col, v, out)) return false;
    size_t n = first_->NumRows();
    std::vector<size_t> second_hits;
    if (second_->IndexLookup(col, v, &second_hits)) {
      for (size_t i : second_hits) out->push_back(n + i);
    } else {
      size_t m = second_->NumRows();
      for (size_t i = 0; i < m; ++i) {
        if (second_->RowAt(i)[col] == v) out->push_back(n + i);
      }
    }
    return true;
  }
  /// Range probes follow the same shape as IndexLookup: the first part
  /// must answer from its ordered index, the second is probed when it can
  /// and scanned (with full SQL comparison semantics) otherwise. A scan
  /// comparison that would raise — mixed types the naive path reports as a
  /// TypeError — makes the whole probe decline, so errors surface
  /// identically on both access paths.
  bool RangeLookup(size_t col, const Value* lo, bool lo_inclusive,
                   const Value* hi, bool hi_inclusive,
                   std::vector<size_t>* out) const override;

  bool HasHashIndex(size_t col) const override {
    return first_->HasHashIndex(col);
  }
  bool HasOrderedIndex(size_t col) const override {
    return first_->HasOrderedIndex(col);
  }

  const TableStats* Stats() const override {
    return has_stats_ ? &stats_ : nullptr;
  }

  const Row& RowAt(size_t i) const override {
    size_t n = first_->NumRows();
    return i < n ? first_->RowAt(i) : second_->RowAt(i - n);
  }
  int64_t RowIdAt(size_t i) const override {
    size_t n = first_->NumRows();
    return i < n ? first_->RowIdAt(i) : second_->RowIdAt(i - n) + kSecondBase;
  }

  static bool IsFromSecond(int64_t id) { return id >= kSecondBase; }
  static int64_t SecondRowId(int64_t id) { return id - kSecondBase; }

  /// Offset distinguishing increment row ids from persisted row ids.
  static constexpr int64_t kSecondBase = int64_t(1) << 40;

 private:
  const RelationData* first_;
  const RelationData* second_;
  bool has_stats_ = false;
  TableStats stats_;  ///< merged first+second snapshot, built at construction
};

/// A relation materialized on the fly (Clock's single row, Constants).
/// Carries exact statistics, computed once at construction — these
/// relations are tiny, and the clock's single-row count is what lets the
/// cost model chain cardinality estimates through the cross join and place
/// the clock early enough that window bounds become computable.
class OwnedRelation : public RelationData {
 public:
  OwnedRelation(TableSchema schema, std::vector<Row> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {
    stats_ = ComputeTableStats(*this);
  }

  const TableSchema& schema() const override { return schema_; }
  size_t NumRows() const override { return rows_.size(); }
  const Row& RowAt(size_t i) const override { return rows_[i]; }
  int64_t RowIdAt(size_t i) const override { return int64_t(i); }
  const TableStats* Stats() const override { return &stats_; }

 private:
  TableSchema schema_;
  std::vector<Row> rows_;
  TableStats stats_;
};

/// Base catalog plus lazily materialized virtual system relations
/// (`dl_decisions`, `dl_policy_stats`, `dl_slow_log`): a provider callback
/// per name builds an OwnedRelation snapshot on first lookup, and the
/// snapshot is served unchanged until InvalidateSnapshots(). Two
/// consequences the enforcement pipeline relies on:
///
///  * *Snapshot semantics* — DataLawyer invalidates at the serial head of
///    each checked query, so one query's bind, log generation, policy
///    evaluation, and execution all see the identical telemetry state, and
///    a telemetry query can never observe its own decision record (which
///    is appended after execution).
///  * *Thread safety* — materialization is mutex-guarded, so concurrent
///    policy workers resolving a dl_* name race only on "who builds the
///    snapshot first"; invalidation happens only in serial sections.
///
/// Base-catalog names win: a real table shadows a system relation.
class SystemCatalog : public CatalogView {
 public:
  using Provider = std::function<std::unique_ptr<RelationData>()>;

  /// `base` must outlive this view.
  explicit SystemCatalog(const CatalogView* base) : base_(base) {}

  /// Registers `provider` under `name` (case-insensitive).
  void Register(const std::string& name, Provider provider);

  /// Drops every materialized snapshot; the next Find re-materializes.
  void InvalidateSnapshots();

  /// Registered system-relation names, registration order.
  std::vector<std::string> Names() const { return names_; }

  const RelationData* Find(const std::string& name) const override;

 private:
  const CatalogView* base_;
  std::vector<std::string> names_;
  mutable std::mutex mu_;
  std::map<std::string, Provider> providers_;
  mutable std::map<std::string, std::unique_ptr<RelationData>> snapshots_;
  /// True while any snapshot is materialized. Lets the per-query
  /// InvalidateSnapshots() call cost one relaxed atomic load when nobody
  /// queried a system relation — the accept path must not pay for
  /// telemetry it is not using.
  mutable std::atomic<bool> dirty_{false};
};

/// Base catalog plus name → relation overrides. Overrides win.
class OverlayCatalog : public CatalogView {
 public:
  /// `base` may be nullptr (pure overlay). Overridden relations are not
  /// owned and must outlive the view.
  explicit OverlayCatalog(const CatalogView* base) : base_(base) {}

  /// Registers `rel` under `name` (case-insensitive).
  void Add(const std::string& name, const RelationData* rel);

  const RelationData* Find(const std::string& name) const override;

 private:
  const CatalogView* base_;
  std::map<std::string, const RelationData*> overrides_;
};

}  // namespace datalawyer

#endif  // DATALAWYER_STORAGE_CATALOG_VIEW_H_
