#ifndef DATALAWYER_STORAGE_SCHEMA_H_
#define DATALAWYER_STORAGE_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/value.h"

namespace datalawyer {

/// One column of a stored table or intermediate result.
struct ColumnDef {
  std::string name;  ///< Stored lowercase; SQL identifiers are case-insensitive.
  ValueType type = ValueType::kNull;
};

/// Ordered list of columns.
class TableSchema {
 public:
  TableSchema() = default;
  explicit TableSchema(std::vector<ColumnDef> columns)
      : columns_(std::move(columns)) {}

  /// Convenience builder: AddColumn("uid", ValueType::kInt64).
  TableSchema& AddColumn(const std::string& name, ValueType type);

  size_t NumColumns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Case-insensitive lookup; nullopt if absent.
  std::optional<size_t> FindColumn(const std::string& name) const;

  /// "name TYPE, name TYPE, ..."
  std::string ToString() const;

 private:
  std::vector<ColumnDef> columns_;
};

}  // namespace datalawyer

#endif  // DATALAWYER_STORAGE_SCHEMA_H_
