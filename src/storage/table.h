#ifndef DATALAWYER_STORAGE_TABLE_H_
#define DATALAWYER_STORAGE_TABLE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "common/value_hash.h"
#include "storage/schema.h"

namespace datalawyer {

/// Read-only scan interface the executor consumes. Implemented by Table and
/// by the overlay relations in catalog_view.h (log + in-memory increment,
/// the synthesized Clock row, unified-policy Constants, ...).
class RelationData {
 public:
  virtual ~RelationData() = default;
  virtual const TableSchema& schema() const = 0;
  virtual size_t NumRows() const = 0;
  virtual const Row& RowAt(size_t i) const = 0;
  /// Stable id of row i — survives deletions of other rows. Used as the
  /// provenance `itid` and by log compaction's mark phase.
  virtual int64_t RowIdAt(size_t i) const = 0;

  /// Appends to `*out` the positions of every row whose column `col` equals
  /// `v`, when a valid hash index (or an equivalent bounded probe) can
  /// answer; returns false to mean "no index — scan". Must be safe to call
  /// concurrently with other const reads: implementations may not mutate
  /// shared state.
  virtual bool IndexLookup(size_t col, const Value& v,
                           std::vector<size_t>* out) const {
    (void)col;
    (void)v;
    (void)out;
    return false;
  }
};

/// In-memory row store with stable row ids.
///
/// Deletion is by *retention*: LogCompactor computes the set of row ids that
/// form the absolute witness and calls RetainOnly() with it (§4.1.2).
class Table : public RelationData {
 public:
  explicit Table(TableSchema schema) : schema_(std::move(schema)) {}

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const TableSchema& schema() const override { return schema_; }
  size_t NumRows() const override { return rows_.size(); }
  const Row& RowAt(size_t i) const override { return rows_[i]; }
  int64_t RowIdAt(size_t i) const override { return row_ids_[i]; }

  /// Appends one row; returns its stable row id. Fails if the arity does
  /// not match the schema.
  Result<int64_t> Append(Row row);

  /// Appends many rows.
  Status AppendAll(std::vector<Row> rows);

  /// Deletes every row whose id is NOT in `keep`; returns the number of
  /// rows removed.
  size_t RetainOnly(const std::unordered_set<int64_t>& keep);

  /// Deletes every row whose id IS in `remove`; returns the number removed.
  size_t RemoveIds(const std::unordered_set<int64_t>& remove);

  void Clear();

  /// Builds a hash index on `column` for equality pushdown. Append maintains
  /// the index incrementally; deletions (RetainOnly/RemoveIds/Clear)
  /// invalidate it (silently, falling back to scans) until the next
  /// BuildIndex or RefreshIndexes call.
  Status BuildIndex(const std::string& column);

  /// Rebuilds every index invalidated by a deletion. Cheap no-op when all
  /// indexes are current. Not thread-safe: call only while no reader is
  /// scanning the table (the usage-log protocol guarantees this — indexes
  /// are refreshed after compaction, before the next query's checks).
  void RefreshIndexes();

  /// Drops every hash index (the inverse of BuildIndex). Subsequent scans
  /// fall back to full walks until indexes are built again.
  void DropIndexes() { indexes_.clear(); }

  /// True if a current (non-invalidated) index exists on `col`.
  bool HasValidIndex(size_t col) const;

  bool IndexLookup(size_t col, const Value& v,
                   std::vector<size_t>* out) const override;

 private:
  void InvalidateIndexes() { ++version_; }

  TableSchema schema_;
  std::vector<Row> rows_;
  std::vector<int64_t> row_ids_;
  int64_t next_row_id_ = 0;

  struct HashIndex {
    size_t column = 0;
    uint64_t built_at_version = 0;
    std::unordered_map<Value, std::vector<size_t>, ValueHash> positions;
  };
  std::vector<HashIndex> indexes_;
  uint64_t version_ = 0;
};

}  // namespace datalawyer

#endif  // DATALAWYER_STORAGE_TABLE_H_
