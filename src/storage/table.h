#ifndef DATALAWYER_STORAGE_TABLE_H_
#define DATALAWYER_STORAGE_TABLE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "common/value_hash.h"
#include "storage/schema.h"
#include "storage/stats.h"

namespace datalawyer {

/// Read-only scan interface the executor consumes. Implemented by Table and
/// by the overlay relations in catalog_view.h (log + in-memory increment,
/// the synthesized Clock row, unified-policy Constants, ...).
class RelationData {
 public:
  virtual ~RelationData() = default;
  virtual const TableSchema& schema() const = 0;
  virtual size_t NumRows() const = 0;
  virtual const Row& RowAt(size_t i) const = 0;
  /// Stable id of row i — survives deletions of other rows. Used as the
  /// provenance `itid` and by log compaction's mark phase.
  virtual int64_t RowIdAt(size_t i) const = 0;

  /// Appends to `*out` the positions of every row whose column `col` equals
  /// `v`, when a valid hash index (or an equivalent bounded probe) can
  /// answer; returns false to mean "no index — scan". Must be safe to call
  /// concurrently with other const reads: implementations may not mutate
  /// shared state.
  virtual bool IndexLookup(size_t col, const Value& v,
                           std::vector<size_t>* out) const {
    (void)col;
    (void)v;
    (void)out;
    return false;
  }

  /// Appends to `*out` — in ascending position order — every row whose
  /// column `col` falls within [lo, hi] (either bound may be null = open;
  /// inclusivity per flag), when a valid ordered index can answer; returns
  /// false to mean "no ordered index — scan". A NULL Value bound returns
  /// true with no hits (SQL comparisons against NULL never hold). Like
  /// IndexLookup, must be const and safe under concurrent reads.
  virtual bool RangeLookup(size_t col, const Value* lo, bool lo_inclusive,
                           const Value* hi, bool hi_inclusive,
                           std::vector<size_t>* out) const {
    (void)col;
    (void)lo;
    (void)lo_inclusive;
    (void)hi;
    (void)hi_inclusive;
    (void)out;
    return false;
  }

  /// Plan-time capability probes for the cost model: whether an equality /
  /// ordered index currently answers for `col`. The run-time Lookup calls
  /// remain authoritative (index state can change between planning and
  /// execution); these only steer cost estimates and EXPLAIN.
  virtual bool HasHashIndex(size_t col) const {
    (void)col;
    return false;
  }
  virtual bool HasOrderedIndex(size_t col) const {
    (void)col;
    return false;
  }

  /// Maintained statistics for this relation, or nullptr when none are
  /// kept. The returned snapshot is only guaranteed stable while no writer
  /// mutates the relation (same phasing discipline as index reads).
  virtual const TableStats* Stats() const { return nullptr; }
};

/// In-memory row store with stable row ids.
///
/// Deletion is by *retention*: LogCompactor computes the set of row ids that
/// form the absolute witness and calls RetainOnly() with it (§4.1.2).
class Table : public RelationData {
 public:
  explicit Table(TableSchema schema) : schema_(std::move(schema)) {}

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const TableSchema& schema() const override { return schema_; }
  size_t NumRows() const override { return rows_.size(); }
  const Row& RowAt(size_t i) const override { return rows_[i]; }
  int64_t RowIdAt(size_t i) const override { return row_ids_[i]; }

  /// Appends one row; returns its stable row id. Fails if the arity does
  /// not match the schema.
  Result<int64_t> Append(Row row);

  /// Appends many rows.
  Status AppendAll(std::vector<Row> rows);

  /// Deletes every row whose id is NOT in `keep`; returns the number of
  /// rows removed.
  size_t RetainOnly(const std::unordered_set<int64_t>& keep);

  /// Deletes every row whose id IS in `remove`; returns the number removed.
  size_t RemoveIds(const std::unordered_set<int64_t>& remove);

  void Clear();

  /// Builds a hash index on `column` for equality pushdown. Append maintains
  /// the index incrementally; deletions (RetainOnly/RemoveIds/Clear)
  /// invalidate it (silently, falling back to scans) until the next
  /// BuildIndex or RefreshIndexes call.
  Status BuildIndex(const std::string& column);

  /// Rebuilds every index invalidated by a deletion. Cheap no-op when all
  /// indexes are current. Not thread-safe: call only while no reader is
  /// scanning the table (the usage-log protocol guarantees this — indexes
  /// are refreshed after compaction, before the next query's checks).
  void RefreshIndexes();

  /// Drops every hash index (the inverse of BuildIndex). Subsequent scans
  /// fall back to full walks until indexes are built again.
  void DropIndexes() { indexes_.clear(); }

  /// True if a current (non-invalidated) index exists on `col`.
  bool HasValidIndex(size_t col) const;

  bool IndexLookup(size_t col, const Value& v,
                   std::vector<size_t>* out) const override;

  /// Builds an ordered (sorted-run) index on `column` for range pushdown.
  /// Appends accumulate in an unsorted tail that probes scan linearly until
  /// it grows past a threshold, when it is merged into the run; deletions
  /// invalidate the index (silently, falling back to scans) until the next
  /// RefreshIndexes/BuildOrderedIndex. Only homogeneously typed columns
  /// (all-numeric or all-string, NULLs aside) are servable: a mixed-type or
  /// non-finite column marks the index unusable rather than risking a
  /// comparison whose semantics differ from the executor's.
  Status BuildOrderedIndex(const std::string& column);

  /// Drops every ordered index (the inverse of BuildOrderedIndex).
  void DropOrderedIndexes() { ordered_indexes_.clear(); }

  /// True if a current (non-invalidated) ordered index exists on `col`.
  bool HasValidOrderedIndex(size_t col) const;

  bool RangeLookup(size_t col, const Value* lo, bool lo_inclusive,
                   const Value* hi, bool hi_inclusive,
                   std::vector<size_t>* out) const override;

  bool HasHashIndex(size_t col) const override { return HasValidIndex(col); }
  bool HasOrderedIndex(size_t col) const override {
    return HasValidOrderedIndex(col);
  }

  /// Turns on incremental statistics (row count, exact per-column NDVs,
  /// numeric min/max): Append folds each new row in; deletions invalidate
  /// the stats until RefreshIndexes recomputes them. Stats() is a const
  /// read of the eagerly maintained snapshot, safe under the same phasing
  /// as index probes.
  void EnableStats();
  void DisableStats();
  bool stats_enabled() const { return stats_enabled_; }

  const TableStats* Stats() const override {
    return stats_enabled_ && stats_built_at_version_ == version_ ? &stats_
                                                                 : nullptr;
  }

  /// Monotonic counter bumped by every deletion (RetainOnly / RemoveIds /
  /// Clear); appends leave it unchanged. Lets incremental-evaluation state
  /// detect in-place shrinkage that a (NumRows, suffix-fold) protocol would
  /// otherwise miss.
  uint64_t mutation_epoch() const { return version_; }

 private:
  struct OrderedIndex;

  void InvalidateIndexes() { ++version_; }
  void RebuildStats();
  void FoldRowIntoStats(const Row& row);
  void RebuildOrderedIndex(OrderedIndex* index);

  TableSchema schema_;
  std::vector<Row> rows_;
  std::vector<int64_t> row_ids_;
  int64_t next_row_id_ = 0;

  struct HashIndex {
    size_t column = 0;
    uint64_t built_at_version = 0;
    std::unordered_map<Value, std::vector<size_t>, ValueHash> positions;
  };
  std::vector<HashIndex> indexes_;

  /// Sorted-run index: `sorted` covers rows [0, indexed_rows) in value
  /// order; rows appended since the last merge form the tail and are
  /// scanned linearly by RangeLookup until Append merges them in.
  struct OrderedIndex {
    size_t column = 0;
    uint64_t built_at_version = 0;
    std::vector<std::pair<Value, size_t>> sorted;
    size_t indexed_rows = 0;
    bool usable = true;  ///< false: mixed/unorderable types, always scan
    /// Homogeneous value class of the indexed column: 0 = no non-NULL
    /// values seen yet, 1 = numeric, 2 = string.
    int value_class = 0;
  };
  /// Tail length that triggers a merge into the sorted run on Append.
  static constexpr size_t kOrderedTailMergeThreshold = 256;
  std::vector<OrderedIndex> ordered_indexes_;

  bool stats_enabled_ = false;
  TableStats stats_;
  uint64_t stats_built_at_version_ = 0;
  /// Exact distinct-value sets backing stats_.columns[i].ndv.
  std::vector<std::unordered_set<Value, ValueHash>> stats_distinct_;
  /// Per-column flag: a non-numeric or non-finite value was seen, so the
  /// min/max range is permanently dropped (until a rebuild).
  std::vector<bool> stats_range_ok_;

  uint64_t version_ = 0;
};

}  // namespace datalawyer

#endif  // DATALAWYER_STORAGE_TABLE_H_
