#include "storage/persistence.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/strings.h"
#include "common/trace.h"

namespace datalawyer {

namespace {

std::string EscapeString(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string UnescapeString(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      switch (s[i]) {
        case 't':
          out += '\t';
          break;
        case 'n':
          out += '\n';
          break;
        default:
          out += s[i];
      }
    } else {
      out += s[i];
    }
  }
  return out;
}

std::string EncodeCell(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return "N:";
    case ValueType::kInt64:
      return "I:" + std::to_string(v.AsInt64());
    case ValueType::kDouble: {
      std::ostringstream os;
      os.precision(17);
      os << v.AsDouble();
      return "D:" + os.str();
    }
    case ValueType::kString:
      return "S:" + EscapeString(v.AsString());
    case ValueType::kBool:
      return std::string("B:") + (v.AsBool() ? "1" : "0");
  }
  return "N:";
}

Result<Value> DecodeCell(const std::string& cell) {
  if (cell.size() < 2 || cell[1] != ':') {
    return Status::InvalidArgument("malformed cell: " + cell);
  }
  std::string body = cell.substr(2);
  switch (cell[0]) {
    case 'N':
      return Value::Null();
    case 'I':
      return Value(int64_t(std::strtoll(body.c_str(), nullptr, 10)));
    case 'D':
      return Value(std::strtod(body.c_str(), nullptr));
    case 'S':
      return Value(UnescapeString(body));
    case 'B':
      return Value(body == "1");
    default:
      return Status::InvalidArgument("unknown cell tag: " + cell);
  }
}

/// Splits on unescaped tabs (escapes never contain raw tabs).
std::vector<std::string> SplitCells(const std::string& line) {
  std::vector<std::string> out;
  std::string current;
  for (char c : line) {
    if (c == '\t') {
      out.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  out.push_back(std::move(current));
  return out;
}

Result<ValueType> TypeFromName(const std::string& name) {
  for (ValueType type : {ValueType::kNull, ValueType::kInt64,
                         ValueType::kDouble, ValueType::kString,
                         ValueType::kBool}) {
    if (EqualsIgnoreCase(name, ValueTypeToString(type))) return type;
  }
  return Status::InvalidArgument("unknown type name: " + name);
}

}  // namespace

Status SaveTable(const Table& table, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::InvalidArgument("cannot write " + path);

  const TableSchema& schema = table.schema();
  for (size_t i = 0; i < schema.NumColumns(); ++i) {
    if (i > 0) out << '\t';
    out << schema.column(i).name << ' '
        << ValueTypeToString(schema.column(i).type);
  }
  out << '\n';
  for (size_t r = 0; r < table.NumRows(); ++r) {
    const Row& row = table.RowAt(r);
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << '\t';
      out << EncodeCell(row[c]);
    }
    out << '\n';
  }
  out.flush();
  if (!out) return Status::Internal("write failed for " + path);
  return Status::OK();
}

Result<TableSchema> LoadSchema(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot read " + path);
  std::string header;
  if (!std::getline(in, header)) {
    return Status::InvalidArgument("empty table file: " + path);
  }
  TableSchema schema;
  for (const std::string& cell : SplitCells(header)) {
    size_t space = cell.find(' ');
    if (space == std::string::npos) {
      return Status::InvalidArgument("malformed schema header in " + path);
    }
    DL_ASSIGN_OR_RETURN(ValueType type, TypeFromName(cell.substr(space + 1)));
    schema.AddColumn(cell.substr(0, space), type);
  }
  return schema;
}

Status LoadTableInto(Table* table, const std::string& path) {
  DL_ASSIGN_OR_RETURN(TableSchema schema, LoadSchema(path));
  if (schema.NumColumns() != table->schema().NumColumns()) {
    return Status::InvalidArgument("schema mismatch loading " + path);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);  // skip header
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::vector<std::string> cells = SplitCells(line);
    if (cells.size() != schema.NumColumns()) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": wrong arity");
    }
    Row row;
    row.reserve(cells.size());
    for (const std::string& cell : cells) {
      DL_ASSIGN_OR_RETURN(Value v, DecodeCell(cell));
      row.push_back(std::move(v));
    }
    DL_RETURN_NOT_OK(table->Append(std::move(row)).status());
  }
  return Status::OK();
}

Status SaveDatabase(const Database& db, const std::string& dir) {
  DL_TRACE_SPAN("storage.save_db", "storage");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::InvalidArgument("cannot create directory " + dir);
  for (const std::string& name : db.TableNames()) {
    DL_ASSIGN_OR_RETURN(const Table* table, db.GetTable(name));
    DL_RETURN_NOT_OK(SaveTable(*table, dir + "/" + name + ".dltab"));
  }
  return Status::OK();
}

Status LoadDatabase(Database* db, const std::string& dir) {
  DL_TRACE_SPAN("storage.load_db", "storage");
  std::error_code ec;
  auto iter = std::filesystem::directory_iterator(dir, ec);
  if (ec) return Status::NotFound("cannot open directory " + dir);
  for (const auto& entry : iter) {
    if (entry.path().extension() != ".dltab") continue;
    std::string name = entry.path().stem().string();
    DL_ASSIGN_OR_RETURN(TableSchema schema, LoadSchema(entry.path().string()));
    DL_ASSIGN_OR_RETURN(Table * table,
                        db->CreateTable(name, std::move(schema)));
    DL_RETURN_NOT_OK(LoadTableInto(table, entry.path().string()));
  }
  return Status::OK();
}

}  // namespace datalawyer
