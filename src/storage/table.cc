#include "storage/table.h"

#include <algorithm>
#include <cmath>

namespace datalawyer {

namespace {

/// Strict weak order matching Value::Compare over a homogeneous column
/// class: int64 pairs compare exactly, mixed numerics widen to double,
/// strings compare lexicographically. Only called for values the index
/// already vetted as one class.
bool OrderedLess(const Value& a, const Value& b) {
  if (a.is_int64() && b.is_int64()) return a.AsInt64() < b.AsInt64();
  if (a.is_numeric() && b.is_numeric()) return a.ToDouble() < b.ToDouble();
  return a.AsString() < b.AsString();
}

/// Classifies a non-NULL value for ordered indexing: 1 = finite numeric,
/// 2 = string, 0 = not orderable (bool, non-finite double).
int OrderedClassOf(const Value& v) {
  if (v.is_numeric()) {
    return std::isfinite(v.ToDouble()) ? 1 : 0;
  }
  return v.is_string() ? 2 : 0;
}

}  // namespace

Status Table::BuildIndex(const std::string& column) {
  auto col = schema_.FindColumn(column);
  if (!col.has_value()) {
    return Status::NotFound("no column " + column + " to index");
  }
  // Replace any previous index on this column.
  for (size_t i = 0; i < indexes_.size(); ++i) {
    if (indexes_[i].column == *col) {
      indexes_.erase(indexes_.begin() + i);
      break;
    }
  }
  HashIndex index;
  index.column = *col;
  index.built_at_version = version_;
  index.positions.reserve(rows_.size());
  for (size_t i = 0; i < rows_.size(); ++i) {
    index.positions[rows_[i][*col]].push_back(i);
  }
  indexes_.push_back(std::move(index));
  return Status::OK();
}

void Table::RefreshIndexes() {
  for (HashIndex& index : indexes_) {
    if (index.built_at_version == version_) continue;
    index.positions.clear();
    index.positions.reserve(rows_.size());
    for (size_t i = 0; i < rows_.size(); ++i) {
      index.positions[rows_[i][index.column]].push_back(i);
    }
    index.built_at_version = version_;
  }
  for (OrderedIndex& index : ordered_indexes_) {
    if (index.built_at_version == version_) continue;
    RebuildOrderedIndex(&index);
  }
  if (stats_enabled_ && stats_built_at_version_ != version_) {
    RebuildStats();
  }
}

Status Table::BuildOrderedIndex(const std::string& column) {
  auto col = schema_.FindColumn(column);
  if (!col.has_value()) {
    return Status::NotFound("no column " + column + " to index");
  }
  for (size_t i = 0; i < ordered_indexes_.size(); ++i) {
    if (ordered_indexes_[i].column == *col) {
      ordered_indexes_.erase(ordered_indexes_.begin() + i);
      break;
    }
  }
  OrderedIndex index;
  index.column = *col;
  RebuildOrderedIndex(&index);
  ordered_indexes_.push_back(std::move(index));
  return Status::OK();
}

void Table::RebuildOrderedIndex(OrderedIndex* index) {
  index->sorted.clear();
  index->indexed_rows = rows_.size();
  index->built_at_version = version_;
  index->usable = true;
  index->value_class = 0;
  index->sorted.reserve(rows_.size());
  for (size_t i = 0; i < rows_.size(); ++i) {
    const Value& v = rows_[i][index->column];
    if (v.is_null()) continue;
    int cls = OrderedClassOf(v);
    if (cls == 0 || (index->value_class != 0 && cls != index->value_class)) {
      index->usable = false;
      index->sorted.clear();
      return;
    }
    index->value_class = cls;
    index->sorted.emplace_back(v, i);
  }
  std::sort(index->sorted.begin(), index->sorted.end(),
            [](const std::pair<Value, size_t>& a,
               const std::pair<Value, size_t>& b) {
              return OrderedLess(a.first, b.first);
            });
}

bool Table::HasValidOrderedIndex(size_t col) const {
  for (const OrderedIndex& index : ordered_indexes_) {
    if (index.column == col && index.built_at_version == version_ &&
        index.usable) {
      return true;
    }
  }
  return false;
}

bool Table::RangeLookup(size_t col, const Value* lo, bool lo_inclusive,
                        const Value* hi, bool hi_inclusive,
                        std::vector<size_t>* out) const {
  const OrderedIndex* index = nullptr;
  for (const OrderedIndex& oi : ordered_indexes_) {
    if (oi.column == col && oi.built_at_version == version_) {
      index = &oi;
      break;
    }
  }
  if (index == nullptr || !index->usable) return false;
  if (lo == nullptr && hi == nullptr) return false;
  // SQL comparisons against NULL never hold: an index answer of "no rows"
  // is exact (the re-applied filter would reject every row anyway).
  if ((lo != nullptr && lo->is_null()) || (hi != nullptr && hi->is_null())) {
    out->clear();
    return true;
  }
  // A bound whose class differs from the column's would need Value::Compare
  // semantics the index cannot reproduce (TypeError); fall back to a scan
  // so errors surface exactly as the naive path raises them. After this
  // loop cls_required is the one class every compared value must share.
  int cls_required = index->value_class;
  for (const Value* bound : {lo, hi}) {
    if (bound == nullptr) continue;
    int cls = OrderedClassOf(*bound);
    if (cls == 0 || (cls_required != 0 && cls != cls_required)) {
      return false;
    }
    cls_required = cls;
  }

  std::vector<size_t> hits;
  auto less_value = [](const std::pair<Value, size_t>& entry, const Value& v) {
    return OrderedLess(entry.first, v);
  };
  auto value_less = [](const Value& v, const std::pair<Value, size_t>& entry) {
    return OrderedLess(v, entry.first);
  };
  auto begin = index->sorted.begin();
  auto end = index->sorted.end();
  if (lo != nullptr) {
    begin = lo_inclusive
                ? std::lower_bound(begin, end, *lo, less_value)
                : std::upper_bound(begin, end, *lo, value_less);
  }
  if (hi != nullptr) {
    end = hi_inclusive ? std::upper_bound(begin, end, *hi, value_less)
                       : std::lower_bound(begin, end, *hi, less_value);
  }
  for (auto it = begin; it != end; ++it) hits.push_back(it->second);

  // Tail: rows appended since the last merge, scanned linearly. A tail
  // value outside the column's class means the comparison semantics are no
  // longer the index's — bail out to a full scan before emitting anything.
  auto in_range = [&](const Value& v) {
    if (lo != nullptr) {
      if (OrderedLess(v, *lo)) return false;
      if (!lo_inclusive && !OrderedLess(*lo, v)) return false;
    }
    if (hi != nullptr) {
      if (OrderedLess(*hi, v)) return false;
      if (!hi_inclusive && !OrderedLess(v, *hi)) return false;
    }
    return true;
  };
  for (size_t i = index->indexed_rows; i < rows_.size(); ++i) {
    const Value& v = rows_[i][col];
    if (v.is_null()) continue;
    if (OrderedClassOf(v) != cls_required) return false;
    if (in_range(v)) hits.push_back(i);
  }
  std::sort(hits.begin(), hits.end());
  out->insert(out->end(), hits.begin(), hits.end());
  return true;
}

bool Table::HasValidIndex(size_t col) const {
  for (const HashIndex& index : indexes_) {
    if (index.column == col && index.built_at_version == version_) return true;
  }
  return false;
}

bool Table::IndexLookup(size_t col, const Value& v,
                        std::vector<size_t>* out) const {
  for (const HashIndex& index : indexes_) {
    if (index.column == col && index.built_at_version == version_) {
      auto it = index.positions.find(v);
      if (it != index.positions.end()) {
        out->insert(out->end(), it->second.begin(), it->second.end());
      }
      return true;
    }
  }
  return false;
}

Result<int64_t> Table::Append(Row row) {
  if (row.size() != schema_.NumColumns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match schema (" +
        std::to_string(schema_.NumColumns()) + " columns)");
  }
  int64_t id = next_row_id_++;
  size_t pos = rows_.size();
  rows_.push_back(std::move(row));
  row_ids_.push_back(id);
  // Appends maintain current indexes in place; already-stale indexes stay
  // stale until RefreshIndexes/BuildIndex.
  for (HashIndex& index : indexes_) {
    if (index.built_at_version == version_) {
      index.positions[rows_[pos][index.column]].push_back(pos);
    }
  }
  // Ordered indexes absorb appends into an implicit tail (rows past
  // indexed_rows, scanned linearly by RangeLookup); once the tail grows
  // past the threshold it is sorted and merged into the run — amortized
  // O(log n) per append, and probes stay O(log n + tail).
  for (OrderedIndex& index : ordered_indexes_) {
    if (index.built_at_version != version_ || !index.usable) continue;
    if (rows_.size() - index.indexed_rows < kOrderedTailMergeThreshold) {
      continue;
    }
    size_t run = index.sorted.size();
    for (size_t i = index.indexed_rows; i < rows_.size(); ++i) {
      const Value& v = rows_[i][index.column];
      if (v.is_null()) continue;
      int cls = OrderedClassOf(v);
      if (cls == 0 || (index.value_class != 0 && cls != index.value_class)) {
        index.usable = false;
        index.sorted.clear();
        break;
      }
      index.value_class = cls;
      index.sorted.emplace_back(v, i);
    }
    if (!index.usable) continue;
    auto cmp = [](const std::pair<Value, size_t>& a,
                  const std::pair<Value, size_t>& b) {
      return OrderedLess(a.first, b.first);
    };
    std::sort(index.sorted.begin() + run, index.sorted.end(), cmp);
    std::inplace_merge(index.sorted.begin(), index.sorted.begin() + run,
                       index.sorted.end(), cmp);
    index.indexed_rows = rows_.size();
  }
  if (stats_enabled_ && stats_built_at_version_ == version_) {
    FoldRowIntoStats(rows_[pos]);
  }
  return id;
}

void Table::EnableStats() {
  stats_enabled_ = true;
  RebuildStats();
}

void Table::DisableStats() {
  stats_enabled_ = false;
  stats_ = TableStats{};
  stats_distinct_.clear();
  stats_range_ok_.clear();
}

void Table::RebuildStats() {
  stats_ = TableStats{};
  stats_.valid = true;
  stats_.columns.resize(schema_.NumColumns());
  stats_distinct_.assign(schema_.NumColumns(), {});
  stats_range_ok_.assign(schema_.NumColumns(), true);
  for (const Row& row : rows_) FoldRowIntoStats(row);
  stats_built_at_version_ = version_;
}

void Table::FoldRowIntoStats(const Row& row) {
  ++stats_.row_count;
  for (size_t c = 0; c < stats_.columns.size() && c < row.size(); ++c) {
    const Value& v = row[c];
    ColumnStats& cs = stats_.columns[c];
    if (v.is_null()) {
      ++cs.null_count;
      continue;
    }
    stats_distinct_[c].insert(v);
    cs.ndv = stats_distinct_[c].size();
    if (!v.is_numeric() || !std::isfinite(v.ToDouble())) {
      stats_range_ok_[c] = false;
      cs.has_range = false;
      continue;
    }
    if (!stats_range_ok_[c]) continue;
    double d = v.ToDouble();
    if (!cs.has_range) {
      cs.has_range = true;
      cs.min = cs.max = d;
    } else {
      cs.min = std::min(cs.min, d);
      cs.max = std::max(cs.max, d);
    }
  }
}

Status Table::AppendAll(std::vector<Row> rows) {
  for (Row& row : rows) {
    DL_RETURN_NOT_OK(Append(std::move(row)).status());
  }
  return Status::OK();
}

size_t Table::RetainOnly(const std::unordered_set<int64_t>& keep) {
  size_t out = 0;
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (keep.count(row_ids_[i])) {
      if (out != i) {
        rows_[out] = std::move(rows_[i]);
        row_ids_[out] = row_ids_[i];
      }
      ++out;
    }
  }
  size_t removed = rows_.size() - out;
  rows_.resize(out);
  row_ids_.resize(out);
  if (removed > 0) InvalidateIndexes();
  return removed;
}

size_t Table::RemoveIds(const std::unordered_set<int64_t>& remove) {
  size_t out = 0;
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (!remove.count(row_ids_[i])) {
      if (out != i) {
        rows_[out] = std::move(rows_[i]);
        row_ids_[out] = row_ids_[i];
      }
      ++out;
    }
  }
  size_t removed = rows_.size() - out;
  rows_.resize(out);
  row_ids_.resize(out);
  if (removed > 0) InvalidateIndexes();
  return removed;
}

void Table::Clear() {
  rows_.clear();
  row_ids_.clear();
  InvalidateIndexes();
}

}  // namespace datalawyer
