#include "storage/table.h"

namespace datalawyer {

Status Table::BuildIndex(const std::string& column) {
  auto col = schema_.FindColumn(column);
  if (!col.has_value()) {
    return Status::NotFound("no column " + column + " to index");
  }
  // Replace any previous index on this column.
  for (size_t i = 0; i < indexes_.size(); ++i) {
    if (indexes_[i].column == *col) {
      indexes_.erase(indexes_.begin() + i);
      break;
    }
  }
  HashIndex index;
  index.column = *col;
  index.built_at_version = version_;
  index.positions.reserve(rows_.size());
  for (size_t i = 0; i < rows_.size(); ++i) {
    index.positions[rows_[i][*col]].push_back(i);
  }
  indexes_.push_back(std::move(index));
  return Status::OK();
}

void Table::RefreshIndexes() {
  for (HashIndex& index : indexes_) {
    if (index.built_at_version == version_) continue;
    index.positions.clear();
    index.positions.reserve(rows_.size());
    for (size_t i = 0; i < rows_.size(); ++i) {
      index.positions[rows_[i][index.column]].push_back(i);
    }
    index.built_at_version = version_;
  }
}

bool Table::HasValidIndex(size_t col) const {
  for (const HashIndex& index : indexes_) {
    if (index.column == col && index.built_at_version == version_) return true;
  }
  return false;
}

bool Table::IndexLookup(size_t col, const Value& v,
                        std::vector<size_t>* out) const {
  for (const HashIndex& index : indexes_) {
    if (index.column == col && index.built_at_version == version_) {
      auto it = index.positions.find(v);
      if (it != index.positions.end()) {
        out->insert(out->end(), it->second.begin(), it->second.end());
      }
      return true;
    }
  }
  return false;
}

Result<int64_t> Table::Append(Row row) {
  if (row.size() != schema_.NumColumns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match schema (" +
        std::to_string(schema_.NumColumns()) + " columns)");
  }
  int64_t id = next_row_id_++;
  size_t pos = rows_.size();
  rows_.push_back(std::move(row));
  row_ids_.push_back(id);
  // Appends maintain current indexes in place; already-stale indexes stay
  // stale until RefreshIndexes/BuildIndex.
  for (HashIndex& index : indexes_) {
    if (index.built_at_version == version_) {
      index.positions[rows_[pos][index.column]].push_back(pos);
    }
  }
  return id;
}

Status Table::AppendAll(std::vector<Row> rows) {
  for (Row& row : rows) {
    DL_RETURN_NOT_OK(Append(std::move(row)).status());
  }
  return Status::OK();
}

size_t Table::RetainOnly(const std::unordered_set<int64_t>& keep) {
  size_t out = 0;
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (keep.count(row_ids_[i])) {
      if (out != i) {
        rows_[out] = std::move(rows_[i]);
        row_ids_[out] = row_ids_[i];
      }
      ++out;
    }
  }
  size_t removed = rows_.size() - out;
  rows_.resize(out);
  row_ids_.resize(out);
  if (removed > 0) InvalidateIndexes();
  return removed;
}

size_t Table::RemoveIds(const std::unordered_set<int64_t>& remove) {
  size_t out = 0;
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (!remove.count(row_ids_[i])) {
      if (out != i) {
        rows_[out] = std::move(rows_[i]);
        row_ids_[out] = row_ids_[i];
      }
      ++out;
    }
  }
  size_t removed = rows_.size() - out;
  rows_.resize(out);
  row_ids_.resize(out);
  if (removed > 0) InvalidateIndexes();
  return removed;
}

void Table::Clear() {
  rows_.clear();
  row_ids_.clear();
  InvalidateIndexes();
}

}  // namespace datalawyer
