#ifndef DATALAWYER_STORAGE_DATABASE_H_
#define DATALAWYER_STORAGE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace datalawyer {

/// Named collection of tables — the catalog plus the data.
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Creates an empty table; kAlreadyExists if the name is taken.
  Result<Table*> CreateTable(const std::string& name, TableSchema schema);

  /// kNotFound if absent. Lookup is case-insensitive.
  Result<Table*> GetTable(const std::string& name);
  Result<const Table*> GetTable(const std::string& name) const;

  /// nullptr if absent (non-erroring variant for resolvers).
  Table* FindTable(const std::string& name);
  const Table* FindTable(const std::string& name) const;

  bool HasTable(const std::string& name) const;
  Status DropTable(const std::string& name);

  /// Lowercased names in lexicographic order.
  std::vector<std::string> TableNames() const;

  /// Schema epoch: bumped by every CreateTable/DropTable. Cached query
  /// plans are stamped with the version they were built under and
  /// revalidated against it, so DDL invalidates them without a callback.
  uint64_t version() const { return version_; }

  /// Forces an epoch bump without a schema change — used when something a
  /// cached plan depends on but the stamp cannot see changes shape (e.g.
  /// the statistics a cost-based plan was chosen under drift past the
  /// replan threshold, or a log index is rebuilt after compaction).
  void BumpVersion() { ++version_; }

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
  uint64_t version_ = 0;
};

}  // namespace datalawyer

#endif  // DATALAWYER_STORAGE_DATABASE_H_
