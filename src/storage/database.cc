#include "storage/database.h"

#include "common/strings.h"

namespace datalawyer {

Result<Table*> Database::CreateTable(const std::string& name,
                                     TableSchema schema) {
  std::string key = ToLower(name);
  if (tables_.count(key)) {
    return Status::AlreadyExists("table already exists: " + name);
  }
  auto table = std::make_unique<Table>(std::move(schema));
  Table* raw = table.get();
  tables_.emplace(key, std::move(table));
  ++version_;
  return raw;
}

Result<Table*> Database::GetTable(const std::string& name) {
  Table* t = FindTable(name);
  if (t == nullptr) return Status::NotFound("no such table: " + name);
  return t;
}

Result<const Table*> Database::GetTable(const std::string& name) const {
  const Table* t = FindTable(name);
  if (t == nullptr) return Status::NotFound("no such table: " + name);
  return t;
}

Table* Database::FindTable(const std::string& name) {
  auto it = tables_.find(ToLower(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::FindTable(const std::string& name) const {
  auto it = tables_.find(ToLower(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

bool Database::HasTable(const std::string& name) const {
  return tables_.count(ToLower(name)) > 0;
}

Status Database::DropTable(const std::string& name) {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) return Status::NotFound("no such table: " + name);
  tables_.erase(it);
  ++version_;
  return Status::OK();
}

std::vector<std::string> Database::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

}  // namespace datalawyer
