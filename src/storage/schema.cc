#include "storage/schema.h"

#include "common/strings.h"

namespace datalawyer {

TableSchema& TableSchema::AddColumn(const std::string& name, ValueType type) {
  columns_.push_back(ColumnDef{ToLower(name), type});
  return *this;
}

std::optional<size_t> TableSchema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return i;
  }
  return std::nullopt;
}

std::string TableSchema::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += ValueTypeToString(columns_[i].type);
  }
  return out;
}

}  // namespace datalawyer
