#include "storage/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "common/value_hash.h"
#include "storage/table.h"

namespace datalawyer {

TableStats ComputeTableStats(const RelationData& rel) {
  const size_t cols = rel.schema().NumColumns();
  TableStats stats;
  stats.valid = true;
  stats.row_count = rel.NumRows();
  stats.columns.resize(cols);

  std::vector<std::unordered_set<Value, ValueHash>> distinct(cols);
  std::vector<bool> range_ok(cols, true);
  for (size_t i = 0; i < stats.row_count; ++i) {
    const Row& row = rel.RowAt(i);
    for (size_t c = 0; c < cols; ++c) {
      const Value& v = row[c];
      ColumnStats& cs = stats.columns[c];
      if (v.is_null()) {
        ++cs.null_count;
        continue;
      }
      distinct[c].insert(v);
      if (!v.is_numeric() || !std::isfinite(v.ToDouble())) {
        range_ok[c] = false;
        continue;
      }
      double d = v.ToDouble();
      if (!cs.has_range) {
        cs.has_range = true;
        cs.min = cs.max = d;
      } else {
        cs.min = std::min(cs.min, d);
        cs.max = std::max(cs.max, d);
      }
    }
  }
  for (size_t c = 0; c < cols; ++c) {
    stats.columns[c].ndv = distinct[c].size();
    if (!range_ok[c]) stats.columns[c].has_range = false;
  }
  return stats;
}

namespace {

std::string FormatBound(double d) {
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    return std::to_string(int64_t(d));
  }
  std::ostringstream out;
  out << d;
  return out.str();
}

}  // namespace

std::string RenderTableStats(const std::string& name, const TableSchema& schema,
                             const TableStats& stats) {
  std::ostringstream out;
  out << name << ": " << stats.row_count << " rows\n";
  if (!stats.valid) {
    out << "  (no statistics)\n";
    return out.str();
  }
  out << "  column            ndv     nulls  min..max\n";
  for (size_t c = 0; c < schema.NumColumns() && c < stats.columns.size(); ++c) {
    const ColumnStats& cs = stats.columns[c];
    std::string col = schema.column(c).name;
    if (col.size() < 16) col.resize(16, ' ');
    std::string ndv = std::to_string(cs.ndv);
    if (ndv.size() < 8) ndv.resize(8, ' ');
    std::string nulls = std::to_string(cs.null_count);
    if (nulls.size() < 6) nulls.resize(6, ' ');
    out << "  " << col << "  " << ndv << "  " << nulls << "  ";
    if (cs.has_range) {
      out << FormatBound(cs.min) << ".." << FormatBound(cs.max);
    } else {
      out << "-";
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace datalawyer
