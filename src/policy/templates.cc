#include "policy/templates.h"

namespace datalawyer {

namespace {

std::string N(int64_t v) { return std::to_string(v); }

/// "AND u.uid = <uid>" when scoped, with the users join already in place.
std::string UidFilter(const std::optional<int64_t>& uid) {
  return uid.has_value() ? " AND u.uid = " + N(*uid) : "";
}

/// Literal list "'a', 'b'" → "s.irid != 'a' AND s.irid != 'b'".
std::string ExcludeList(const std::string& alias,
                        const std::string& protected_relation,
                        const std::vector<std::string>& allowed) {
  std::string out =
      alias + ".irid != '" + protected_relation + "'";
  for (const std::string& partner : allowed) {
    out += " AND " + alias + ".irid != '" + partner + "'";
  }
  return out;
}

}  // namespace

std::string PolicyTemplates::JoinProhibition(
    const std::string& dataset, const std::vector<std::string>& allowed,
    std::optional<int64_t> uid) {
  std::string sql =
      "SELECT DISTINCT 'terms of use: " + dataset +
      " may not be combined with other datasets' AS errormessage "
      "FROM schema s1, schema s2";
  if (uid.has_value()) sql += ", users u";
  sql += " WHERE s1.ts = s2.ts AND s1.irid = '" + dataset + "' AND " +
         ExcludeList("s2", dataset, allowed);
  if (uid.has_value()) {
    sql += " AND u.ts = s1.ts" + UidFilter(uid);
  }
  return sql;
}

std::string PolicyTemplates::RateLimit(int64_t window, int64_t max_queries,
                                       std::optional<int64_t> uid,
                                       const std::string& relation) {
  std::string sql =
      "SELECT DISTINCT 'terms of use: rate limit of " + N(max_queries) +
      " queries per " + N(window) + " exceeded' AS errormessage "
      "FROM users u";
  if (!relation.empty()) sql += ", schema s";
  sql += ", clock c WHERE u.ts > c.ts - " + N(window);
  if (!relation.empty()) {
    sql += " AND u.ts = s.ts AND s.irid = '" + relation + "'";
  }
  sql += UidFilter(uid);
  sql += " HAVING COUNT(DISTINCT u.ts) > " + N(max_queries);
  return sql;
}

std::string PolicyTemplates::OutputRowCap(const std::string& relation,
                                          int64_t max_rows,
                                          std::optional<int64_t> uid) {
  std::string sql = "SELECT DISTINCT 'terms of use: a query may return at "
                    "most " + N(max_rows) + " tuples of " + relation +
                    "' AS errormessage FROM provenance p";
  if (uid.has_value()) sql += ", users u";
  sql += " WHERE p.irid = '" + relation + "'";
  if (uid.has_value()) sql += " AND u.ts = p.ts" + UidFilter(uid);
  sql += " GROUP BY p.ts HAVING COUNT(DISTINCT p.otid) > " + N(max_rows);
  return sql;
}

std::string PolicyTemplates::MinimumSupport(const std::string& relation,
                                            int64_t min_group_size,
                                            std::optional<int64_t> uid) {
  std::string sql =
      "SELECT DISTINCT 'terms of use: every answer over " + relation +
      " must aggregate more than " + N(min_group_size) +
      " records' AS errormessage FROM provenance p";
  if (uid.has_value()) sql += ", users u";
  sql += " WHERE p.irid = '" + relation + "'";
  if (uid.has_value()) sql += " AND u.ts = p.ts" + UidFilter(uid);
  sql += " GROUP BY p.ts, p.otid HAVING COUNT(DISTINCT p.itid) <= " +
         N(min_group_size);
  return sql;
}

std::string PolicyTemplates::AggregationBan(
    const std::string& relation, const std::vector<std::string>& exempt) {
  return "SELECT DISTINCT 'terms of use: " + relation +
         " may not be blended into aggregates with other providers' "
         "AS errormessage FROM schema s1, schema s2 "
         "WHERE s1.ts = s2.ts AND s1.irid = '" + relation +
         "' AND s1.agg = TRUE AND " + ExcludeList("s2", relation, exempt);
}

std::string PolicyTemplates::WindowedDistinctTupleCap(
    const std::string& relation, int64_t window, int64_t max_distinct,
    std::optional<int64_t> uid) {
  std::string sql =
      "SELECT DISTINCT 'terms of use: at most " + N(max_distinct) +
      " distinct tuples of " + relation + " per " + N(window) +
      "' AS errormessage FROM provenance p";
  if (uid.has_value()) sql += ", users u";
  sql += ", clock c WHERE p.irid = '" + relation + "' AND p.ts > c.ts - " +
         N(window);
  if (uid.has_value()) sql += " AND u.ts = p.ts" + UidFilter(uid);
  sql += " HAVING COUNT(DISTINCT p.itid) > " + N(max_distinct);
  return sql;
}

std::string PolicyTemplates::TupleReuseCap(const std::string& relation,
                                           int64_t window, int64_t max_uses,
                                           std::optional<int64_t> uid) {
  std::string sql =
      "SELECT DISTINCT 'terms of use: a tuple of " + relation +
      " may be used at most " + N(max_uses) + " times per " + N(window) +
      "' AS errormessage FROM provenance p";
  if (uid.has_value()) sql += ", users u";
  sql += ", clock c WHERE p.irid = '" + relation + "' AND p.ts > c.ts - " +
         N(window);
  if (uid.has_value()) sql += " AND u.ts = p.ts" + UidFilter(uid);
  sql += " GROUP BY p.itid HAVING COUNT(p.itid) > " + N(max_uses);
  return sql;
}

std::string PolicyTemplates::GroupLicense(const std::string& group,
                                          const std::string& relation,
                                          int64_t window, int64_t max_users) {
  return "SELECT DISTINCT 'terms of use: at most " + N(max_users) +
         " members of " + group + " may access " + relation + " per " +
         N(window) + "' AS errormessage "
         "FROM users u, schema s, groups g, clock c "
         "WHERE u.ts = s.ts AND s.irid = '" + relation +
         "' AND u.uid = g.uid AND g.gid = '" + group +
         "' AND u.ts > c.ts - " + N(window) +
         " HAVING COUNT(DISTINCT u.uid) > " + N(max_users);
}

}  // namespace datalawyer
