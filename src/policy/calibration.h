#ifndef DATALAWYER_POLICY_CALIBRATION_H_
#define DATALAWYER_POLICY_CALIBRATION_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "exec/engine.h"
#include "log/usage_log.h"

namespace datalawyer {

/// Measured mean generation cost per log relation, ascending.
struct CalibrationResult {
  std::vector<std::pair<std::string, double>> costs_ms;
};

/// The paper picks interleaved evaluation's log-generation order
/// "experimentally, offline, by optimizing over an existing log" (§4.2.1).
/// This routine is that offline step: it runs every registered
/// log-generating function against a sample workload, measures the mean
/// cost, installs the measured order into `log` (UsageLog::SetCostRank),
/// and returns the measurements. Nothing is persisted — all staged
/// increments are discarded.
Result<CalibrationResult> CalibrateGenerationOrder(
    UsageLog* log, Engine* engine,
    const std::vector<std::string>& sample_queries,
    const QueryContext& context);

}  // namespace datalawyer

#endif  // DATALAWYER_POLICY_CALIBRATION_H_
