#ifndef DATALAWYER_POLICY_UNIFICATION_H_
#define DATALAWYER_POLICY_UNIFICATION_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "policy/policy.h"
#include "storage/table.h"

namespace datalawyer {

/// Output of policy unification (§4.2.2): the consolidated policy set plus
/// the synthesized Constants tables the unified policies join against.
struct UnificationResult {
  /// Unified policies first, then untouched singletons. Analysis fields are
  /// not populated — run PolicyAnalyzer afterwards.
  std::vector<Policy> policies;

  /// (table name, table) pairs to expose in the policy-evaluation catalog.
  std::vector<std::pair<std::string, std::unique_ptr<Table>>> constants;

  size_t groups_unified = 0;
  size_t policies_absorbed = 0;
};

/// Consolidates policies that are structurally identical up to the literal
/// constants in their SELECT list and WHERE clause into a single policy over
/// a Constants table (one column per constant slot, one row per original
/// policy), adding the constant columns to the GROUP BY when the policy
/// aggregates — Example 4.6.
///
/// Literals in HAVING / GROUP BY / DISTINCT ON are *not* lifted: they must
/// match verbatim for two policies to unify. This keeps thresholds like
/// `COUNT(...) > 10` as literals, so the unified policy stays recognizably
/// monotone for interleaved evaluation.
Result<UnificationResult> UnifyPolicies(const std::vector<Policy>& input);

}  // namespace datalawyer

#endif  // DATALAWYER_POLICY_UNIFICATION_H_
