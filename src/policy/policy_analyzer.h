#ifndef DATALAWYER_POLICY_POLICY_ANALYZER_H_
#define DATALAWYER_POLICY_POLICY_ANALYZER_H_

#include "common/result.h"
#include "log/usage_log.h"
#include "policy/policy.h"

namespace datalawyer {

/// Static analysis over policies: log-relation footprint, monotonicity
/// (§4.2.1), time-independence and the π_ind rewrite (§4.1.1).
class PolicyAnalyzer {
 public:
  /// `log` identifies which FROM relations are usage-log relations.
  explicit PolicyAnalyzer(const UsageLog* log) : log_(log) {}

  /// Fills in the analysis fields of `policy`.
  Status Analyze(Policy* policy) const;

 private:
  /// True if the member (and its FROM subqueries) satisfies the §4.1.1
  /// syntactic criterion: (a) the ts attributes of all referenced log
  /// relations are pairwise equi-joined; (b) every aggregate groups by a
  /// column in the ts join class.
  bool MemberTimeIndependent(const SelectStmt& stmt) const;

  /// §4.2.1: SPJU with only COUNT(...) > / >= k HAVING conjuncts.
  bool MemberMonotone(const SelectStmt& stmt) const;

  /// Builds π_ind: adds a Clock FROM item and pins every log relation's ts
  /// to the current time.
  std::unique_ptr<SelectStmt> BuildTimeIndependentRewrite(
      const SelectStmt& stmt) const;

  const UsageLog* log_;
};

/// Collects log relation aliases of `stmt`'s FROM items: pairs of
/// (binding alias, log relation name), top level only.
std::vector<std::pair<std::string, std::string>> LogAliasesOf(
    const SelectStmt& stmt, const UsageLog& log);

/// Collects the distinct log relation names referenced anywhere in the
/// statement (including subqueries and UNION members).
std::vector<std::string> CollectLogRelations(const SelectStmt& stmt,
                                             const UsageLog& log);

/// Footnote 7's history restriction: clones `stmt` with an added conjunct
/// `<alias>.ts > active_from` for every top-level log relation alias in
/// every UNION member (and recursively inside FROM subqueries). Returns the
/// original clone unchanged when there is nothing to guard.
std::unique_ptr<SelectStmt> RestrictHistory(const SelectStmt& stmt,
                                            const UsageLog& log,
                                            int64_t active_from);

/// §4.3 precondition ("policies where all log-generating functions join on
/// the timestamp"): in every UNION member, the ts attributes of all top-level
/// log relations share one equi-join class, and no FROM subquery touches the
/// log. Required by the improved-partial-policies optimization.
bool TimestampsAllJoined(const SelectStmt& stmt, const UsageLog& log);

}  // namespace datalawyer

#endif  // DATALAWYER_POLICY_POLICY_ANALYZER_H_
