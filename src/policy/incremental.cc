#include "policy/incremental.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <limits>
#include <utility>

#include "analysis/eval.h"

namespace datalawyer {
namespace {

/// Work caps: folding past this poisons the state (it can no longer stay
/// current), overlay evaluation past this merely falls back for the query.
constexpr size_t kFoldStepCap = 4'000'000;
constexpr size_t kEvalStepCap = 1'000'000;

constexpr int64_t kNoEnter = std::numeric_limits<int64_t>::min();
constexpr int64_t kNoExpire = std::numeric_limits<int64_t>::max();

std::string Lower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = char(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

/// Mirrors a comparison so the column lands on the left-hand side.
const char* FlipComparison(const std::string& op) {
  if (op == "<") return ">";
  if (op == "<=") return ">=";
  if (op == ">") return "<";
  if (op == ">=") return "<=";
  return "=";
}

bool IsComparisonOp(const std::string& op) {
  return op == "=" || op == "<" || op == "<=" || op == ">" || op == ">=";
}

/// What a (sub)expression references, resolved through the binding.
struct RefScan {
  bool unknown = false;   ///< a column ref the binder did not slot
  bool clock = false;     ///< references the synthesized clock
  bool nonclock = false;  ///< references a foldable relation
  int max_level = -1;     ///< deepest referenced fold level
};

RefScan ScanRefs(const Expr& expr, const BoundQuery& bq,
                 const std::vector<bool>& is_clock_slot,
                 const std::vector<int>& slot_level) {
  RefScan out;
  expr.Visit([&](const Expr& node) {
    if (node.kind() != ExprKind::kColumnRef) return;
    auto it = bq.column_slots.find(&node);
    if (it == bq.column_slots.end()) {
      out.unknown = true;
      return;
    }
    size_t slot = it->second;
    if (slot < is_clock_slot.size() && is_clock_slot[slot]) {
      out.clock = true;
      return;
    }
    int level = slot < slot_level.size() ? slot_level[slot] : -1;
    if (level < 0) {
      out.unknown = true;
      return;
    }
    out.nonclock = true;
    out.max_level = std::max(out.max_level, level);
  });
  return out;
}

}  // namespace

bool IncrementalDisabledByEnv() {
  static const bool disabled = [] {
    const char* v = std::getenv("DL_DISABLE_INCREMENTAL");
    return v != nullptr && v[0] != '\0' && std::string(v) != "0";
  }();
  return disabled;
}

std::unique_ptr<IncrementalState> IncrementalState::Build(
    const SelectStmt& stmt, const BoundQuery& bq, const UsageLog& log,
    const CatalogView* statics) {
  // Shape gates: one SELECT, literal select items (verdict = emptiness,
  // message = the first literal), nothing that reorders or truncates.
  if (stmt.union_next != nullptr) return nullptr;
  if (!stmt.distinct_on.empty() || !stmt.order_by.empty()) return nullptr;
  if (stmt.limit.has_value()) return nullptr;
  if (stmt.items.empty() || bq.stmt != &stmt) return nullptr;
  for (const SelectItem& item : stmt.items) {
    if (item.expr == nullptr || item.expr->kind() != ExprKind::kLiteral) {
      return nullptr;
    }
  }

  std::unique_ptr<IncrementalState> st(new IncrementalState());
  st->bq_ = &bq;
  st->total_slots_ = bq.total_slots;
  const Value& lit =
      static_cast<const LiteralExpr&>(*stmt.items[0].expr).value;
  // Render exactly as the full path renders a violating row's first column.
  st->message_ = lit.is_string() ? lit.AsString() : lit.ToString();

  // Relations: log relations fold from main + overlay from delta, statics
  // fold only, the clock becomes prefilled slots. Anything else (virtual
  // dl_* snapshots, subqueries) is full-only.
  const std::string clock_name = Lower(UsageLog::ClockRelationName());
  size_t log_count = 0;
  for (size_t i = 0; i < bq.relations.size(); ++i) {
    const BoundRelation& rel = bq.relations[i];
    if (rel.subquery != nullptr) return nullptr;
    std::string name = Lower(rel.table_name);
    if (name.empty()) return nullptr;
    size_t offset = bq.slot_offsets[i];
    size_t arity = rel.schema.NumColumns();
    if (name == clock_name) {
      for (size_t s = 0; s < arity; ++s) st->clock_slots_.push_back(offset + s);
      continue;
    }
    RelationState r;
    r.name = name;
    r.slot_offset = offset;
    r.arity = arity;
    if (log.IsLogRelation(name)) {
      r.is_log = true;
      r.main = log.main_table(name);
      r.delta = log.delta_table(name);
      if (r.main == nullptr || r.delta == nullptr) return nullptr;
      ++log_count;
    } else {
      const RelationData* found =
          statics != nullptr ? statics->Find(name) : nullptr;
      r.main = dynamic_cast<const Table*>(found);
      if (r.main == nullptr) return nullptr;
    }
    st->rels_.push_back(std::move(r));
  }
  if (log_count == 0) return nullptr;
  st->level_conjuncts_.resize(st->rels_.size());
  st->overlay_conjuncts_.resize(st->rels_.size());
  st->eq_probes_.resize(st->rels_.size());
  st->window_bounds_.resize(st->rels_.size());

  std::vector<int> slot_level(bq.total_slots, -1);
  for (size_t j = 0; j < st->rels_.size(); ++j) {
    for (size_t s = 0; s < st->rels_[j].arity; ++s) {
      slot_level[st->rels_[j].slot_offset + s] = int(j);
    }
  }
  std::vector<bool> is_clock_slot(bq.total_slots, false);
  for (size_t s : st->clock_slots_) is_clock_slot[s] = true;

  // WHERE conjuncts: clock-free ones are evaluated during the fold (at
  // their deepest referenced level); clock-referencing ones must be
  // slope-one window bounds `col OP f(clock)`.
  std::vector<const Expr*> conjuncts;
  if (stmt.where != nullptr) conjuncts = ConjunctPtrs(*stmt.where);
  for (const Expr* c : conjuncts) {
    RefScan refs = ScanRefs(*c, bq, is_clock_slot, slot_level);
    if (refs.unknown) return nullptr;
    if (!refs.clock) {
      if (refs.nonclock) {
        st->level_conjuncts_[refs.max_level].push_back(c);
        st->overlay_conjuncts_[refs.max_level].push_back(c);
        // Hash-probe candidate: `col = other` where `col` lives at this
        // level and `other` is fully bound by outer levels or constants.
        if (c->kind() == ExprKind::kBinary) {
          const auto& eq = static_cast<const BinaryExpr&>(*c);
          if (eq.op == "=") {
            for (bool col_on_left : {true, false}) {
              const Expr* side = col_on_left ? eq.lhs.get() : eq.rhs.get();
              const Expr* other = col_on_left ? eq.rhs.get() : eq.lhs.get();
              if (side->kind() != ExprKind::kColumnRef) continue;
              auto sit = bq.column_slots.find(side);
              if (sit == bq.column_slots.end()) continue;
              size_t slot = sit->second;
              const RelationState& rel = st->rels_[refs.max_level];
              if (slot < rel.slot_offset ||
                  slot >= rel.slot_offset + rel.arity) {
                continue;
              }
              RefScan oref = ScanRefs(*other, bq, is_clock_slot, slot_level);
              if (oref.unknown || oref.clock ||
                  oref.max_level >= refs.max_level) {
                continue;
              }
              st->eq_probes_[refs.max_level].push_back(
                  EqProbe{slot - rel.slot_offset, other});
              break;
            }
          }
        }
      } else {
        st->constant_conjuncts_.push_back(c);
      }
      continue;
    }
    if (c->kind() != ExprKind::kBinary) return nullptr;
    const auto& bin = static_cast<const BinaryExpr&>(*c);
    if (!IsComparisonOp(bin.op)) return nullptr;
    RefScan lhs = ScanRefs(*bin.lhs, bq, is_clock_slot, slot_level);
    RefScan rhs = ScanRefs(*bin.rhs, bq, is_clock_slot, slot_level);
    if (lhs.unknown || rhs.unknown) return nullptr;
    const Expr* col = nullptr;
    const Expr* clk = nullptr;
    std::string op = bin.op;
    if (lhs.nonclock && !lhs.clock && rhs.clock && !rhs.nonclock) {
      col = bin.lhs.get();
      clk = bin.rhs.get();
    } else if (rhs.nonclock && !rhs.clock && lhs.clock && !lhs.nonclock) {
      col = bin.rhs.get();
      clk = bin.lhs.get();
      op = FlipComparison(op);
    } else {
      return nullptr;
    }
    if (col->kind() != ExprKind::kColumnRef) return nullptr;
    auto slot_it = bq.column_slots.find(col);
    if (slot_it == bq.column_slots.end()) return nullptr;

    // The clock side must be affine with slope exactly 1: evaluate it at
    // clock = 0 and clock = 1 and require integer results one apart.
    Row scratch(bq.total_slots, Value::Null());
    EvalContext ctx{&bq, &scratch, nullptr};
    for (size_t s : st->clock_slots_) scratch[s] = Value(int64_t(0));
    Result<Value> at0 = Eval(*clk, ctx);
    for (size_t s : st->clock_slots_) scratch[s] = Value(int64_t(1));
    Result<Value> at1 = Eval(*clk, ctx);
    if (!at0.ok() || !at1.ok()) return nullptr;
    if (!(*at0).is_int64() || !(*at1).is_int64()) return nullptr;
    if ((*at1).AsInt64() - (*at0).AsInt64() != 1) return nullptr;

    WindowConjunct w;
    w.expr = c;
    w.slot = slot_it->second;
    w.base = (*at0).AsInt64();
    if (op == ">") {
      w.has_expire = true;  // ts > now + b  <=>  now < ts - b
    } else if (op == ">=") {
      w.has_expire = true;
      w.expire_adj = 1;
    } else if (op == "<") {
      w.has_enter = true;
      w.enter_adj = 1;
    } else if (op == "<=") {
      w.has_enter = true;
    } else {  // "="
      w.has_enter = true;
      w.has_expire = true;
      w.expire_adj = 1;
    }
    st->windows_.push_back(w);
    int level = slot_level[w.slot];
    if (level < 0) return nullptr;
    st->overlay_conjuncts_[level].push_back(c);
    WindowBound wb;
    wb.col = w.slot - st->rels_[level].slot_offset;
    wb.base = w.base;
    wb.op = op == ">"    ? WindowOp::kGt
            : op == ">=" ? WindowOp::kGe
            : op == "<"  ? WindowOp::kLt
            : op == "<=" ? WindowOp::kLe
                         : WindowOp::kEq;
    st->window_bounds_[level].push_back(wb);
  }

  // GROUP BY: plain column references on non-clock slots.
  for (const ExprPtr& g : stmt.group_by) {
    if (g->kind() != ExprKind::kColumnRef) return nullptr;
    auto it = bq.column_slots.find(g.get());
    if (it == bq.column_slots.end()) return nullptr;
    if (is_clock_slot[it->second]) return nullptr;
    st->group_slots_.push_back(it->second);
  }

  // HAVING: every non-aggregate column reference must land on a grouped
  // slot (the synthesized representative row carries only those); the
  // aggregate call sites themselves are validated below.
  st->exists_only_ = stmt.having == nullptr;
  if (st->exists_only_) {
    if (!bq.aggregates.empty()) return nullptr;
  } else {
    if (!bq.is_grouped) return nullptr;
    std::function<bool(const Expr&)> grouped_refs_only =
        [&](const Expr& e) -> bool {
      switch (e.kind()) {
        case ExprKind::kLiteral:
          return true;
        case ExprKind::kColumnRef: {
          auto it = bq.column_slots.find(&e);
          if (it == bq.column_slots.end()) return false;
          return std::find(st->group_slots_.begin(), st->group_slots_.end(),
                           it->second) != st->group_slots_.end();
        }
        case ExprKind::kFuncCall: {
          const auto& f = static_cast<const FuncCallExpr&>(e);
          if (f.IsAggregate()) return true;  // args checked per AggSpec
          for (const ExprPtr& a : f.args) {
            if (!grouped_refs_only(*a)) return false;
          }
          return true;
        }
        case ExprKind::kBinary: {
          const auto& b = static_cast<const BinaryExpr&>(e);
          return grouped_refs_only(*b.lhs) && grouped_refs_only(*b.rhs);
        }
        case ExprKind::kUnary:
          return grouped_refs_only(
              *static_cast<const UnaryExpr&>(e).operand);
        case ExprKind::kIsNull:
          return grouped_refs_only(
              *static_cast<const IsNullExpr&>(e).operand);
        case ExprKind::kLike:
          return grouped_refs_only(
              *static_cast<const LikeExpr&>(e).operand);
        case ExprKind::kInList: {
          const auto& in = static_cast<const InListExpr&>(e);
          if (!grouped_refs_only(*in.operand)) return false;
          for (const ExprPtr& item : in.items) {
            if (!grouped_refs_only(*item)) return false;
          }
          return true;
        }
        case ExprKind::kStar:
          return false;
      }
      return false;
    };
    if (!grouped_refs_only(*stmt.having)) return nullptr;
  }

  // Aggregates: COUNT(*)/COUNT/SUM/MIN/MAX (DISTINCT included); AVG has no
  // removable accumulator that reproduces the executor's double math.
  for (const FuncCallExpr* f : bq.aggregates) {
    AggSpec spec;
    spec.site = f;
    spec.distinct = f->distinct;
    if (f->name == "count") {
      if (f->star) {
        if (f->distinct) return nullptr;
        spec.kind = AggKind::kCountStar;
      } else {
        spec.kind = AggKind::kCount;
      }
    } else if (f->name == "sum") {
      spec.kind = AggKind::kSum;
    } else if (f->name == "min") {
      spec.kind = AggKind::kMin;
    } else if (f->name == "max") {
      spec.kind = AggKind::kMax;
    } else {
      return nullptr;
    }
    if (spec.kind != AggKind::kCountStar) {
      if (f->args.size() != 1 || f->args[0] == nullptr) return nullptr;
      spec.arg = f->args[0].get();
      RefScan refs = ScanRefs(*spec.arg, bq, is_clock_slot, slot_level);
      if (refs.unknown || refs.clock) return nullptr;
    }
    st->aggs_.push_back(spec);
  }

  // Relation-free conjuncts never change value: evaluate them once. An
  // error means the shape is not safely classifiable; FALSE/NULL means the
  // statement can never produce input rows.
  {
    Row scratch(bq.total_slots, Value::Null());
    EvalContext ctx{&bq, &scratch, nullptr};
    for (const Expr* c : st->constant_conjuncts_) {
      Result<bool> r = EvalPredicate(*c, ctx);
      if (!r.ok()) return nullptr;
      if (!*r) {
        st->constant_false_ = true;
        break;
      }
    }
  }

  for (RelationState& r : st->rels_) {
    r.folded_rows = 0;
    r.folded_epoch = r.main->mutation_epoch();
  }
  return st;
}

void IncrementalState::ClearState() {
  groups_.clear();
  pending_.clear();
  active_.clear();
  total_active_ = 0;
  for (RelationState& r : rels_) {
    r.folded_rows = 0;
    r.folded_epoch = r.main->mutation_epoch();
  }
  built_ = false;
  ready_ = false;
}

void IncrementalState::Advance(int64_t now, size_t* rebuilds) {
  ++advance_count_;
  if (poisoned()) {
    ready_ = false;
    return;
  }
  bool invalid = ready_ && now < current_now_;
  for (const RelationState& r : rels_) {
    if (r.main->mutation_epoch() != r.folded_epoch ||
        r.main->NumRows() < r.folded_rows) {
      invalid = true;
      break;
    }
  }
  if (invalid) {
    ClearState();
    // Exponential-backoff cooldown: dependencies invalidated in quick
    // succession (steady-state compaction deleting rows every query) would
    // otherwise trigger a full rebuild per query — strictly worse than the
    // plain full evaluation the fallback already provides.
    if (advance_count_ - last_invalid_at_ <= 4) {
      backoff_ = std::min(backoff_ + 1, 6);
    } else {
      backoff_ = 0;
    }
    last_invalid_at_ = advance_count_;
    cooldown_until_ = advance_count_ + ((uint64_t(1) << backoff_) - 1);
  }
  if (!built_ && advance_count_ < cooldown_until_) {
    ready_ = false;
    return;
  }
  bool full_build = !built_;
  bool growth = false;
  for (const RelationState& r : rels_) {
    if (r.folded_rows < r.main->NumRows()) growth = true;
  }
  if (growth) {
    fold_steps_ = 0;
    if (!FoldGrowth(now)) {
      Poison();
      ready_ = false;
      return;
    }
    if (poisoned()) {  // an Apply hit a non-mirrorable value
      ready_ = false;
      return;
    }
  }
  for (RelationState& r : rels_) {
    r.folded_rows = r.main->NumRows();
    r.folded_epoch = r.main->mutation_epoch();
  }
  if (full_build && ever_built_ && rebuilds != nullptr) ++*rebuilds;
  built_ = true;
  ever_built_ = true;
  ActivatePending(now);
  ExpireActive(now);
  if (poisoned()) {
    ready_ = false;
    return;
  }
  current_now_ = now;
  ready_ = true;
}

bool IncrementalState::FoldGrowth(int64_t now) {
  if (constant_false_) return true;
  Row scratch(total_slots_, Value::Null());
  for (size_t t = 0; t < rels_.size(); ++t) {
    if (rels_[t].folded_rows >= rels_[t].main->NumRows()) continue;
    if (!FoldTerm(0, t, now, &scratch)) return false;
  }
  return true;
}

bool IncrementalState::ProbePositions(size_t level, bool fold_mode,
                                      int64_t now, Row* scratch,
                                      std::vector<size_t>* out) const {
  const RelationState& r = rels_[level];
  const Table* table = r.main;
  EvalContext ctx{bq_, scratch, nullptr};
  bool answered = false;
  // Hash probes first (typically the most selective). An evaluation error
  // just skips the probe: the plain scan re-raises it through the conjunct.
  for (const EqProbe& p : eq_probes_[level]) {
    Result<Value> v = Eval(*p.other, ctx);
    if (!v.ok()) continue;
    if ((*v).is_null()) {
      // `col = NULL` never holds; the conjunct rejects every row.
      out->clear();
      return true;
    }
    // The hash index equates structurally, SQL `=` coerces numerics: probe
    // every structural representation a numerically-equal stored value can
    // take, so narrowing never drops a row the conjunct would keep.
    std::vector<Value> variants;
    variants.push_back(*v);
    if ((*v).is_int64()) {
      variants.push_back(Value(double((*v).AsInt64())));
    } else if ((*v).is_double()) {
      double d = (*v).AsDouble();
      if (std::isfinite(d) && d == std::nearbyint(d) &&
          d >= -9223372036854774784.0 && d <= 9223372036854774784.0) {
        variants.push_back(Value(int64_t(d)));
      }
    }
    for (size_t k = variants.size(); k-- > 0;) {
      // Signed-zero doubles are SQL-equal but structurally distinct.
      if (variants[k].is_double() && variants[k].AsDouble() == 0.0) {
        variants.push_back(Value(-variants[k].AsDouble()));
      }
    }
    std::vector<size_t> hits;
    bool usable = true;
    for (const Value& variant : variants) {
      if (!table->IndexLookup(p.col, variant, &hits)) {
        usable = false;
        break;
      }
    }
    if (!usable) continue;
    if (!answered || hits.size() < out->size()) *out = std::move(hits);
    answered = true;
  }
  if (answered) {
    std::sort(out->begin(), out->end());
    return true;
  }
  // Window-derived range probes: at clock `now` the bound compares the
  // column against base + now. Expire-type lower bounds also hold during
  // folds — the window only moves forward, so a row below the bound can
  // never satisfy its conjunct at this or any later clock. Enter-type
  // upper bounds would drop future (pending_) rows, so eval-mode only.
  int64_t bound_val = 0;
  for (const WindowBound& w : window_bounds_[level]) {
    if (__builtin_add_overflow(now, w.base, &bound_val)) continue;
    Value bound(bound_val);
    const Value* lo = nullptr;
    bool lo_inc = false;
    const Value* hi = nullptr;
    bool hi_inc = false;
    switch (w.op) {
      case WindowOp::kGt:
        lo = &bound;
        break;
      case WindowOp::kGe:
        lo = &bound;
        lo_inc = true;
        break;
      case WindowOp::kLt:
        if (fold_mode) continue;
        hi = &bound;
        break;
      case WindowOp::kLe:
        if (fold_mode) continue;
        hi = &bound;
        hi_inc = true;
        break;
      case WindowOp::kEq:
        lo = &bound;
        lo_inc = true;
        if (!fold_mode) {
          hi = &bound;
          hi_inc = true;
        }
        break;
    }
    std::vector<size_t> hits;
    if (!table->RangeLookup(w.col, lo, lo_inc, hi, hi_inc, &hits)) continue;
    if (!answered || hits.size() < out->size()) *out = std::move(hits);
    answered = true;
  }
  return answered;
}

bool IncrementalState::FoldTerm(size_t level, size_t term, int64_t now,
                                Row* scratch) {
  if (level == rels_.size()) return EmitContribution(*scratch, now);
  const RelationState& r = rels_[level];
  // Delta-join decomposition: term t pairs relation t's new suffix with
  // old rows before it and full tables after it, so the union over terms
  // enumerates exactly the new tuples of the join, each once.
  size_t begin = 0;
  size_t end = r.main->NumRows();
  if (level < term) {
    end = r.folded_rows;
  } else if (level == term) {
    begin = r.folded_rows;
  }
  EvalContext ctx{bq_, scratch, nullptr};
  auto visit = [&](size_t i) -> bool {
    if (++fold_steps_ > kFoldStepCap) return false;
    const Row& row = r.main->RowAt(i);
    size_t arity = std::min(r.arity, row.size());
    for (size_t c = 0; c < arity; ++c) {
      (*scratch)[r.slot_offset + c] = row[c];
    }
    bool pass = true;
    for (const Expr* e : level_conjuncts_[level]) {
      Result<bool> pr = EvalPredicate(*e, ctx);
      if (!pr.ok()) return false;
      if (!*pr) {
        pass = false;
        break;
      }
    }
    if (!pass) return true;
    return FoldTerm(level + 1, term, now, scratch);
  };
  std::vector<size_t> positions;
  if (ProbePositions(level, /*fold_mode=*/true, now, scratch, &positions)) {
    for (size_t i : positions) {
      if (i < begin || i >= end) continue;
      if (!visit(i)) return false;
    }
    return true;
  }
  for (size_t i = begin; i < end; ++i) {
    if (!visit(i)) return false;
  }
  return true;
}

bool IncrementalState::EmitContribution(const Row& scratch, int64_t now) {
  int64_t enter_at = kNoEnter;
  int64_t expire_at = kNoExpire;
  for (const WindowConjunct& w : windows_) {
    const Value& v = scratch[w.slot];
    if (v.is_null()) return true;  // NULL comparisons never hold
    if (!v.is_int64()) return false;  // non-integer timestamp: poison
    int64_t ts = v.AsInt64();
    if (w.has_enter) {
      enter_at = std::max(enter_at, ts - w.base + w.enter_adj);
    }
    if (w.has_expire) {
      expire_at = std::min(expire_at, ts - w.base + w.expire_adj);
    }
  }
  if (enter_at >= expire_at) return true;  // empty window
  // Evaluation only ever happens at observed query clocks, and the clock
  // is monotonic: a window that already closed can never become active.
  if (expire_at <= now) return true;

  Contribution c;
  c.enter_at = enter_at;
  c.expire_at = expire_at;
  if (!exists_only_) {
    c.key.reserve(group_slots_.size());
    for (size_t s : group_slots_) c.key.push_back(scratch[s]);
    c.args.reserve(aggs_.size());
    EvalContext ctx{bq_, &scratch, nullptr};
    for (const AggSpec& a : aggs_) {
      if (a.kind == AggKind::kCountStar) {
        c.args.push_back(Value::Null());
        continue;
      }
      Result<Value> v = Eval(*a.arg, ctx);
      if (!v.ok()) return false;
      // SUM mixes int and double accumulation in the executor; mirror only
      // the pure-integer case and fall back on anything else.
      if (a.kind == AggKind::kSum && !(*v).is_null() && !(*v).is_int64()) {
        return false;
      }
      c.args.push_back(std::move(*v));
    }
  }
  if (enter_at > now) {
    pending_.emplace(enter_at, std::move(c));
    return true;
  }
  ApplyContribution(c);
  if (expire_at < kNoExpire) active_.emplace(expire_at, std::move(c));
  return true;
}

void IncrementalState::ApplyContribution(const Contribution& c) {
  ++total_active_;
  if (exists_only_) return;
  GroupState& g = groups_[c.key];
  if (g.aggs.size() != aggs_.size()) g.aggs.resize(aggs_.size());
  ++g.active;
  for (size_t i = 0; i < aggs_.size(); ++i) {
    if (!ApplyAgg(aggs_[i], c.args[i], &g.aggs[i])) {
      Poison();
      return;
    }
  }
}

bool IncrementalState::ApplyAgg(const AggSpec& spec, const Value& v,
                                AggState* s) {
  switch (spec.kind) {
    case AggKind::kCountStar:
      ++s->count;
      return true;
    case AggKind::kCount:
      if (v.is_null()) return true;
      if (spec.distinct) {
        ++s->distinct[v];
      } else {
        ++s->count;
      }
      return true;
    case AggKind::kSum:
      if (v.is_null()) return true;
      if (spec.distinct) {
        if (++s->distinct[v] == 1) s->sum_int += v.AsInt64();
      } else {
        ++s->count;
        s->sum_int += v.AsInt64();
      }
      return true;
    case AggKind::kMin:
    case AggKind::kMax: {
      if (v.is_null()) return true;
      if (v.is_double() && !std::isfinite(v.AsDouble())) return false;
      // The executor keeps the first-seen value among order-equal ones;
      // with deletions that choice is order-dependent, so a tie between
      // structurally different values (1 vs 1.0) is not mirrorable.
      auto range = s->ordered.equal_range(v);
      if (range.first != range.second && *range.first != v) return false;
      s->ordered.insert(v);
      return true;
    }
  }
  return false;
}

void IncrementalState::UnapplyContribution(const Contribution& c) {
  --total_active_;
  if (exists_only_) return;
  auto it = groups_.find(c.key);
  if (it == groups_.end()) {
    Poison();
    return;
  }
  GroupState& g = it->second;
  for (size_t i = 0; i < aggs_.size(); ++i) {
    const AggSpec& spec = aggs_[i];
    const Value& v = c.args[i];
    AggState& s = g.aggs[i];
    switch (spec.kind) {
      case AggKind::kCountStar:
        --s.count;
        break;
      case AggKind::kCount:
      case AggKind::kSum: {
        if (v.is_null()) break;
        if (spec.distinct) {
          auto dit = s.distinct.find(v);
          if (dit == s.distinct.end()) {
            Poison();
            return;
          }
          if (--dit->second == 0) {
            if (spec.kind == AggKind::kSum) s.sum_int -= v.AsInt64();
            s.distinct.erase(dit);
          }
        } else {
          --s.count;
          if (spec.kind == AggKind::kSum) s.sum_int -= v.AsInt64();
        }
        break;
      }
      case AggKind::kMin:
      case AggKind::kMax: {
        if (v.is_null()) break;
        auto oit = s.ordered.find(v);
        if (oit == s.ordered.end()) {
          Poison();
          return;
        }
        s.ordered.erase(oit);
        break;
      }
    }
  }
  if (--g.active == 0) groups_.erase(it);
}

void IncrementalState::ActivatePending(int64_t now) {
  while (!pending_.empty() && pending_.begin()->first <= now) {
    Contribution c = std::move(pending_.begin()->second);
    pending_.erase(pending_.begin());
    if (c.expire_at <= now) continue;  // window passed between queries
    ApplyContribution(c);
    if (poisoned()) return;
    if (c.expire_at < kNoExpire) active_.emplace(c.expire_at, std::move(c));
  }
}

void IncrementalState::ExpireActive(int64_t now) {
  while (!active_.empty() && active_.begin()->first <= now) {
    UnapplyContribution(active_.begin()->second);
    if (poisoned()) return;
    active_.erase(active_.begin());
  }
}

IncrementalState::Verdict IncrementalState::Evaluate(int64_t now) const {
  Verdict out;
  if (poisoned() || !ready_ || now != current_now_) return out;

  bool any_delta = false;
  for (const RelationState& r : rels_) {
    if (r.delta != nullptr && r.delta->NumRows() > 0) any_delta = true;
  }

  bool any_tuple = false;
  std::unordered_map<Row, OverlayGroup, RowHash> overlay;
  if (any_delta && !constant_false_) {
    Row scratch(total_slots_, Value::Null());
    for (size_t s : clock_slots_) scratch[s] = Value(now);
    size_t steps = 0;
    for (size_t t = 0; t < rels_.size(); ++t) {
      if (rels_[t].delta == nullptr || rels_[t].delta->NumRows() == 0) {
        continue;
      }
      if (!OverlayTerm(0, t, now, &scratch,
                       exists_only_ ? nullptr : &overlay, &any_tuple,
                       &steps)) {
        return out;  // cap exceeded (fallback) or error (poisoned)
      }
    }
  }

  if (exists_only_) {
    out.supported = true;
    out.violated = total_active_ > 0 || any_tuple;
    return out;
  }

  bool violated = false;
  for (const auto& [key, og] : overlay) {
    auto it = groups_.find(key);
    const GroupState* sg = it == groups_.end() ? nullptr : &it->second;
    if (!CheckGroup(key, sg, &og, &violated)) return out;
  }
  for (const auto& [key, sg] : groups_) {
    if (overlay.count(key) > 0) continue;
    if (!CheckGroup(key, &sg, nullptr, &violated)) return out;
  }
  if (groups_.empty() && overlay.empty() && bq_->stmt->group_by.empty()) {
    // ProjectGrouped synthesizes one empty global group: COUNT -> 0, the
    // other aggregates -> NULL, evaluated against an all-NULL row.
    if (!CheckGroup(Row(), nullptr, nullptr, &violated)) return out;
  }
  out.supported = true;
  out.violated = violated;
  return out;
}

bool IncrementalState::OverlayTerm(
    size_t level, size_t term, int64_t now, Row* scratch,
    std::unordered_map<Row, OverlayGroup, RowHash>* groups, bool* any_tuple,
    size_t* steps) const {
  if (level == rels_.size()) {
    if (!AccumulateOverlay(*scratch, groups, any_tuple)) {
      Poison();
      return false;
    }
    return true;
  }
  const RelationState& r = rels_[level];
  EvalContext ctx{bq_, scratch, nullptr};
  auto visit = [&](const Table* table, size_t i) -> bool {
    if (++*steps > kEvalStepCap) return false;
    const Row& row = table->RowAt(i);
    size_t arity = std::min(r.arity, row.size());
    for (size_t c = 0; c < arity; ++c) {
      (*scratch)[r.slot_offset + c] = row[c];
    }
    bool pass = true;
    for (const Expr* e : overlay_conjuncts_[level]) {
      Result<bool> pr = EvalPredicate(*e, ctx);
      if (!pr.ok()) {
        Poison();
        return false;
      }
      if (!*pr) {
        pass = false;
        break;
      }
    }
    if (!pass) return true;
    return OverlayTerm(level + 1, term, now, scratch, groups, any_tuple,
                       steps);
  };
  // The main side can answer through an index probe (all conjuncts still
  // re-apply); the delta side is the small staged increment — plain scan.
  auto scan_main = [&]() -> bool {
    std::vector<size_t> positions;
    if (ProbePositions(level, /*fold_mode=*/false, now, scratch,
                       &positions)) {
      for (size_t i : positions) {
        if (!visit(r.main, i)) return false;
      }
      return true;
    }
    size_t n = r.main->NumRows();
    for (size_t i = 0; i < n; ++i) {
      if (!visit(r.main, i)) return false;
    }
    return true;
  };
  auto scan_delta = [&]() -> bool {
    if (r.delta == nullptr) return true;
    size_t n = r.delta->NumRows();
    for (size_t i = 0; i < n; ++i) {
      if (!visit(r.delta, i)) return false;
    }
    return true;
  };
  // Same decomposition as the fold, with "old" = the committed main and
  // "new" = the staged delta: term t pairs relation t's delta with mains
  // before it and main + delta after it.
  if (level < term) return scan_main();
  if (level == term) return scan_delta();
  if (!scan_main()) return false;
  return scan_delta();
}

bool IncrementalState::AccumulateOverlay(
    const Row& scratch, std::unordered_map<Row, OverlayGroup, RowHash>* groups,
    bool* any_tuple) const {
  *any_tuple = true;
  if (groups == nullptr) return true;  // exists-only: existence suffices
  Row key;
  key.reserve(group_slots_.size());
  for (size_t s : group_slots_) key.push_back(scratch[s]);
  OverlayGroup& og = (*groups)[std::move(key)];
  if (og.aggs.size() != aggs_.size()) og.aggs.resize(aggs_.size());
  ++og.hits;
  EvalContext ctx{bq_, &scratch, nullptr};
  for (size_t i = 0; i < aggs_.size(); ++i) {
    const AggSpec& a = aggs_[i];
    OverlayAgg& s = og.aggs[i];
    if (a.kind == AggKind::kCountStar) {
      ++s.count;
      continue;
    }
    Result<Value> vr = Eval(*a.arg, ctx);
    if (!vr.ok()) return false;
    Value v = std::move(*vr);
    if (v.is_null()) continue;
    switch (a.kind) {
      case AggKind::kCount:
        if (a.distinct) {
          ++s.distinct[v];
        } else {
          ++s.count;
        }
        break;
      case AggKind::kSum:
        if (!v.is_int64()) return false;
        if (a.distinct) {
          if (++s.distinct[v] == 1) s.sum_int += v.AsInt64();
        } else {
          ++s.count;
          s.sum_int += v.AsInt64();
        }
        break;
      case AggKind::kMin:
      case AggKind::kMax: {
        if (v.is_double() && !std::isfinite(v.AsDouble())) return false;
        bool want_min = a.kind == AggKind::kMin;
        bool& has = want_min ? s.has_min : s.has_max;
        Value& cur = want_min ? s.min : s.max;
        if (!has) {
          cur = std::move(v);
          has = true;
          break;
        }
        bool better = want_min ? (v < cur) : (cur < v);
        bool worse = want_min ? (cur < v) : (v < cur);
        if (!better && !worse && cur != v) return false;  // structural tie
        if (better) cur = std::move(v);
        break;
      }
      default:
        break;
    }
  }
  return true;
}

bool IncrementalState::MergedAggValue(size_t i, const AggState* s,
                                      const OverlayAgg* o, Value* out) const {
  const AggSpec& spec = aggs_[i];
  int64_t count = (s != nullptr ? s->count : 0) + (o != nullptr ? o->count : 0);
  int64_t distinct_total = s != nullptr ? int64_t(s->distinct.size()) : 0;
  if (o != nullptr) {
    for (const auto& [k, n] : o->distinct) {
      if (s == nullptr || s->distinct.count(k) == 0) ++distinct_total;
    }
  }
  switch (spec.kind) {
    case AggKind::kCountStar:
      *out = Value(count);
      return true;
    case AggKind::kCount:
      *out = Value(spec.distinct ? distinct_total : count);
      return true;
    case AggKind::kSum: {
      bool saw_any = spec.distinct ? distinct_total > 0 : count > 0;
      if (!saw_any) {
        *out = Value::Null();
        return true;
      }
      int64_t sum = s != nullptr ? s->sum_int : 0;
      if (spec.distinct) {
        if (o != nullptr) {
          for (const auto& [k, n] : o->distinct) {
            if (s == nullptr || s->distinct.count(k) == 0) sum += k.AsInt64();
          }
        }
      } else if (o != nullptr) {
        sum += o->sum_int;
      }
      *out = Value(sum);
      return true;
    }
    case AggKind::kMin:
    case AggKind::kMax: {
      bool want_min = spec.kind == AggKind::kMin;
      bool have = false;
      Value best;
      if (s != nullptr && !s->ordered.empty()) {
        best = want_min ? *s->ordered.begin() : *s->ordered.rbegin();
        have = true;
      }
      const Value* ov = nullptr;
      if (o != nullptr) {
        if (want_min && o->has_min) ov = &o->min;
        if (!want_min && o->has_max) ov = &o->max;
      }
      if (ov != nullptr) {
        if (!have) {
          best = *ov;
          have = true;
        } else {
          bool better = want_min ? (*ov < best) : (best < *ov);
          bool worse = want_min ? (best < *ov) : (*ov < best);
          if (!better && !worse && best != *ov) return false;
          if (better) best = *ov;
        }
      }
      *out = have ? best : Value::Null();
      return true;
    }
  }
  return false;
}

bool IncrementalState::CheckGroup(const Row& key, const GroupState* s,
                                  const OverlayGroup* o,
                                  bool* violated) const {
  std::unordered_map<const Expr*, Value> agg_values;
  for (size_t i = 0; i < aggs_.size(); ++i) {
    const AggState* as =
        s != nullptr && !s->aggs.empty() ? &s->aggs[i] : nullptr;
    const OverlayAgg* oa = o != nullptr ? &o->aggs[i] : nullptr;
    Value v;
    if (!MergedAggValue(i, as, oa, &v)) {
      Poison();
      return false;
    }
    agg_values[aggs_[i].site] = std::move(v);
  }
  Row representative(total_slots_, Value::Null());
  for (size_t i = 0; i < group_slots_.size() && i < key.size(); ++i) {
    representative[group_slots_[i]] = key[i];
  }
  EvalContext ctx{bq_, &representative, &agg_values};
  Result<bool> pr = EvalPredicate(*bq_->stmt->having, ctx);
  if (!pr.ok()) {
    Poison();
    return false;
  }
  if (*pr) *violated = true;
  return true;
}

}  // namespace datalawyer
