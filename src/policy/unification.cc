#include "policy/unification.h"

#include <map>

#include "common/strings.h"
#include "common/trace.h"

namespace datalawyer {

namespace {

constexpr const char* kConstantsAlias = "dlc";

/// Replaces every literal in `expr` (in-place, left-to-right) with a
/// reference to `dlc.c<i>`, appending the displaced values to `values`.
void LiftLiterals(ExprPtr* expr, std::vector<Value>* values) {
  Expr* node = expr->get();
  switch (node->kind()) {
    case ExprKind::kLiteral: {
      auto* lit = static_cast<LiteralExpr*>(node);
      std::string column = "c" + std::to_string(values->size());
      values->push_back(lit->value);
      *expr = std::make_unique<ColumnRefExpr>(kConstantsAlias, column);
      return;
    }
    case ExprKind::kBinary: {
      auto* b = static_cast<BinaryExpr*>(node);
      LiftLiterals(&b->lhs, values);
      LiftLiterals(&b->rhs, values);
      return;
    }
    case ExprKind::kUnary:
      LiftLiterals(&static_cast<UnaryExpr*>(node)->operand, values);
      return;
    case ExprKind::kIsNull:
      LiftLiterals(&static_cast<IsNullExpr*>(node)->operand, values);
      return;
    case ExprKind::kFuncCall: {
      auto* f = static_cast<FuncCallExpr*>(node);
      for (ExprPtr& arg : f->args) LiftLiterals(&arg, values);
      return;
    }
    default:
      return;
  }
}

/// Canonicalizes one policy: lifts SELECT-list and WHERE literals across all
/// UNION members, returning the displaced values. The canonical *text* of
/// the resulting statement is the unification key.
std::vector<Value> Canonicalize(SelectStmt* stmt) {
  std::vector<Value> values;
  for (SelectStmt* member = stmt; member != nullptr;
       member = member->union_next.get()) {
    for (SelectItem& item : member->items) LiftLiterals(&item.expr, &values);
    if (member->where != nullptr) {
      ExprPtr where = std::move(member->where);
      LiftLiterals(&where, &values);
      member->where = std::move(where);
    }
  }
  return values;
}

/// True if any select item or the HAVING clause aggregates.
bool MemberAggregates(const SelectStmt& member) {
  for (const SelectItem& item : member.items) {
    if (ContainsAggregate(*item.expr)) return true;
  }
  return member.having != nullptr && ContainsAggregate(*member.having);
}

std::string TypeSignature(const std::vector<Value>& values) {
  std::string sig;
  for (const Value& v : values) {
    sig += ValueTypeToString(v.type());
    sig += ",";
  }
  return sig;
}

bool AliasTaken(const SelectStmt& stmt, const std::string& alias) {
  for (const SelectStmt* member = &stmt; member != nullptr;
       member = member->union_next.get()) {
    for (const TableRef& ref : member->from) {
      if (EqualsIgnoreCase(ref.BindingName(), alias)) return true;
    }
  }
  return false;
}

}  // namespace

Result<UnificationResult> UnifyPolicies(
    const std::vector<Policy>& input) {
  DL_TRACE_SPAN("policy.unify", "policy");
  UnificationResult result;

  struct Group {
    std::unique_ptr<SelectStmt> canonical;
    std::vector<size_t> members;             // indices into `input`
    std::vector<std::vector<Value>> values;  // per member, the lifted row
  };
  std::map<std::string, Group> groups;
  std::vector<std::string> group_order;

  for (size_t i = 0; i < input.size(); ++i) {
    if (input[i].guard != nullptr) {
      // Guarded policies keep their hand-written guard pairing.
      result.policies.push_back(input[i].Clone());
      continue;
    }
    std::unique_ptr<SelectStmt> canonical = input[i].stmt->Clone();
    std::vector<Value> values = Canonicalize(canonical.get());
    // Policies whose canonical form collides but whose constants have
    // different types go to different groups (the Constants table is typed).
    std::string key = canonical->ToString() + "|" + TypeSignature(values);
    auto it = groups.find(key);
    if (it == groups.end()) {
      Group group;
      group.canonical = std::move(canonical);
      group.members.push_back(i);
      group.values.push_back(std::move(values));
      groups.emplace(key, std::move(group));
      group_order.push_back(key);
    } else {
      it->second.members.push_back(i);
      it->second.values.push_back(std::move(values));
    }
  }

  size_t table_counter = 0;
  for (const std::string& key : group_order) {
    Group& group = groups.at(key);
    if (group.members.size() < 2 || group.values[0].empty()) {
      // Nothing to merge: pass the originals through.
      for (size_t idx : group.members) {
        result.policies.push_back(input[idx].Clone());
      }
      continue;
    }

    if (AliasTaken(*group.canonical, kConstantsAlias)) {
      // The policy already binds our reserved alias — leave the group alone.
      for (size_t idx : group.members) {
        result.policies.push_back(input[idx].Clone());
      }
      continue;
    }

    // Build the Constants table: c0..cn typed from the first member.
    std::string table_name = "dl_constants_" + std::to_string(table_counter++);
    size_t n_consts = group.values[0].size();
    TableSchema schema;
    for (size_t c = 0; c < n_consts; ++c) {
      schema.AddColumn("c" + std::to_string(c), group.values[0][c].type());
    }
    auto table = std::make_unique<Table>(std::move(schema));
    for (std::vector<Value>& row : group.values) {
      DL_RETURN_NOT_OK(table->Append(std::move(row)).status());
    }

    // Rewrite the canonical statement into the unified policy.
    for (SelectStmt* member = group.canonical.get(); member != nullptr;
         member = member->union_next.get()) {
      TableRef constants_ref;
      constants_ref.table_name = table_name;
      constants_ref.alias = kConstantsAlias;
      member->from.push_back(std::move(constants_ref));
      if (MemberAggregates(*member)) {
        // GROUP BY the constant columns so aggregates are evaluated per
        // original policy (Example 4.6: GROUP BY c.const).
        for (size_t c = 0; c < n_consts; ++c) {
          member->group_by.push_back(std::make_unique<ColumnRefExpr>(
              kConstantsAlias, "c" + std::to_string(c)));
        }
      }
    }

    Policy unified;
    unified.name = "unified:" + input[group.members[0]].name + "(+" +
                   std::to_string(group.members.size() - 1) + ")";
    unified.stmt = std::move(group.canonical);
    unified.sql = unified.stmt->ToString();
    result.policies.push_back(std::move(unified));
    result.constants.emplace_back(table_name, std::move(table));
    ++result.groups_unified;
    result.policies_absorbed += group.members.size() - 1;
  }

  return result;
}

}  // namespace datalawyer
