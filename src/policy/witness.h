#ifndef DATALAWYER_POLICY_WITNESS_H_
#define DATALAWYER_POLICY_WITNESS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "log/usage_log.h"
#include "sql/ast.h"

namespace datalawyer {

/// Absolute-witness queries for one log relation on behalf of one policy
/// (§4.1.2). The compactor retains the union of the tuples these queries
/// touch; `full_fallback` keeps the whole relation (always sound — "setting
/// Rw = Ri always gives us a correct witness").
struct RelationWitness {
  bool full_fallback = false;
  /// One query per occurrence of the relation in the policy (self-joins
  /// yield several; Example 4.4). Results are unioned.
  std::vector<std::unique_ptr<SelectStmt>> queries;
};

/// Witnesses for every log relation a policy references.
struct WitnessSet {
  std::map<std::string, RelationWitness> per_relation;

  /// Merges `other` into this set (union of queries, OR of fallbacks).
  void MergeFrom(WitnessSet other);
};

/// One usage-log row a rejecting policy matched — the counterexample shown
/// when explaining a rejection. Row ids are normalized to the relation's
/// own id space: increment rows report their staged id with
/// `from_increment` set, so a witness stays meaningful after the staged
/// increment is discarded.
struct CapturedWitness {
  std::string relation;
  int64_t row_id = 0;
  bool from_increment = false;
  int64_t ts = -1;  ///< the row's log timestamp; -1 if no ts column
  std::vector<std::string> values;  ///< rendered column values
};

struct WitnessCaptureResult {
  std::vector<CapturedWitness> rows;  ///< sorted by (relation, id-space, id)
  uint64_t truncated = 0;  ///< violating rows beyond the capture limit
};

/// Re-evaluates a rejecting policy statement over `catalog` with lineage
/// capture and returns the usage-log rows that contributed to its non-empty
/// answer — the tuples "on the strength of which" the query was rejected.
/// Must run before the staged increment is discarded (the reject path calls
/// it ahead of DiscardStaged). Deterministic: rows are deduplicated and
/// sorted, so the planned and naive (`naive` = optimizer off) evaluations
/// return byte-identical captures.
Result<WitnessCaptureResult> CaptureViolationWitnesses(
    const SelectStmt& stmt, const CatalogView* catalog, const UsageLog& log,
    size_t limit, bool naive, bool enable_stats_costing);

/// Synthesizes absolute-witness queries per Lemmas 4.1–4.3:
///
///  * the witness for log relation occurrence `a` selects `a.*` over `a`,
///    its ts-equi-join neighborhood N(a), and the database relations, with
///    the policy's predicates restricted to that FROM set;
///  * Boolean aggregate-free policies tighten `SELECT DISTINCT` to
///    `SELECT DISTINCT ON (a.X)` where X are a's join attributes (clock
///    comparison expressions count as joins);
///  * clock predicates are normalized to `c.ts op expr` form, `c.ts > expr`
///    dropped, `c.ts < expr` rewritten to `dl_now.ts + 1 < expr`,
///    `=` split into `<= AND >=`; a `!=` on the clock (or any clock use we
///    cannot normalize) falls back to the full relation;
///  * policies with HAVING are treated as full queries: GROUP BY/HAVING are
///    dropped and the plain `SELECT DISTINCT a.*` witness (Eq. 2) is used;
///  * FROM subqueries are handled separately and unioned (Algorithm 2).
///
/// The generated queries reference the synthetic one-row relation
/// `dl_now(ts)` holding the current clock value; the compactor provides it.
class WitnessBuilder {
 public:
  explicit WitnessBuilder(const UsageLog* log) : log_(log) {}

  Result<WitnessSet> Build(const SelectStmt& policy_stmt) const;

  /// Name of the synthetic current-time relation ("dl_now").
  static const std::string& NowRelationName();

 private:
  Result<WitnessSet> BuildForMember(const SelectStmt& member) const;

  const UsageLog* log_;
};

}  // namespace datalawyer

#endif  // DATALAWYER_POLICY_WITNESS_H_
