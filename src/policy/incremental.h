#ifndef DATALAWYER_POLICY_INCREMENTAL_H_
#define DATALAWYER_POLICY_INCREMENTAL_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/bound_query.h"
#include "common/value.h"
#include "common/value_hash.h"
#include "log/usage_log.h"
#include "sql/ast.h"
#include "storage/catalog_view.h"
#include "storage/table.h"

namespace datalawyer {

/// True when DL_DISABLE_INCREMENTAL is set to a non-empty value other than
/// "0" — the CI leg that proves the full-evaluation path still stands on its
/// own. Cached after the first call (getenv is not free on every query).
bool IncrementalDisabledByEnv();

/// Incrementally maintained evaluation state for one cached policy plan.
///
/// A policy is a standing query over the usage log; re-running it from
/// scratch on every checked query costs O(log size). For a classifiable
/// statement shape (see Build) this class keeps the policy's *contributions*
/// — the joined tuples that pass every non-window conjunct, tagged with the
/// [enter, expire) clock interval their window conjuncts admit — folded into
/// removable per-group aggregate accumulators. Each query then costs
/// O(delta): fold the committed growth, expire/activate window edges, and
/// overlay the staged increment at evaluation time.
///
/// Correctness contract: Evaluate() either reproduces the full evaluation's
/// verdict and violation message byte-for-byte, or declines
/// (Verdict::supported == false) and the caller falls back to the full
/// path. Any shape or value the maintenance cannot mirror exactly —
/// non-integer timestamps, SUM over doubles, MIN/MAX ties between
/// structurally different values, expression errors — poisons the state
/// permanently (until the next plan-cache warm) instead of guessing.
///
/// Threading follows the repo's phasing discipline: Build and Advance run
/// only in serial sections (plan-cache warm, the head of ExecuteChecked);
/// Evaluate is const and safe from the policy-evaluation fan-out, whose
/// only write is the relaxed poisoned flag.
class IncrementalState {
 public:
  /// Classifies `stmt` (with its cache-entry binding `bq`) and returns
  /// maintenance state when the shape is incrementalizable, nullptr when it
  /// is full-only. Supported shape: a single SELECT whose select items are
  /// all literals (the verdict is result emptiness, the message the first
  /// literal), over log relations / the clock / static tables resolvable
  /// through `statics`, where every clock-referencing conjunct is a
  /// slope-one window bound (`col OP clock_expr`), GROUP BY is plain
  /// column references, and HAVING uses only grouped columns and
  /// COUNT/SUM/MIN/MAX aggregates (AVG is full-only).
  static std::unique_ptr<IncrementalState> Build(const SelectStmt& stmt,
                                                 const BoundQuery& bq,
                                                 const UsageLog& log,
                                                 const CatalogView* statics);

  /// Serial head: brings the state up to clock `now`. Folds committed
  /// main-table growth (the delta-join of new suffixes), activates pending
  /// window entries, expires elapsed ones, and rebuilds from scratch (with
  /// exponential-backoff cooldown) when a dependency shrank or mutated in
  /// place. Increments *rebuilds per invalidation-triggered full rebuild.
  void Advance(int64_t now, size_t* rebuilds);

  struct Verdict {
    bool supported = false;  ///< false => caller runs the full evaluation
    bool violated = false;   ///< meaningful only when supported
  };

  /// Const fan-out read: the policy's verdict at `now` from maintained
  /// state plus the staged per-query increments (read directly from the
  /// delta tables, which are frozen during evaluation). Declines when the
  /// state is stale, poisoned, cooling down, or the overlay work would
  /// exceed its cap.
  Verdict Evaluate(int64_t now) const;

  /// The (single, deduplicated) violation message — the first select item's
  /// literal rendered exactly as the full path renders it.
  const std::string& message() const { return message_; }

  bool poisoned() const {
    return poisoned_.load(std::memory_order_relaxed);
  }

 private:
  /// One FROM item in fold order (clock excluded).
  struct RelationState {
    std::string name;        ///< lowercased table name
    bool is_log = false;     ///< has a per-query delta table
    size_t slot_offset = 0;  ///< first flat slot of this relation's columns
    size_t arity = 0;
    const Table* main = nullptr;   ///< log main table or static table
    const Table* delta = nullptr;  ///< log delta table; null for statics
    size_t folded_rows = 0;        ///< main rows folded into state
    uint64_t folded_epoch = 0;     ///< main mutation epoch at that fold
  };

  /// One clock window bound: contribution active iff
  /// enter_at <= now < expire_at with
  ///   enter_at  = row[slot] - base + enter_adj   (when has_enter)
  ///   expire_at = row[slot] - base + expire_adj  (when has_expire).
  struct WindowConjunct {
    const Expr* expr = nullptr;  ///< original conjunct (overlay evaluation)
    size_t slot = 0;             ///< non-clock column the bound constrains
    int64_t base = 0;            ///< clock-side affine intercept
    bool has_enter = false;
    int64_t enter_adj = 0;
    bool has_expire = false;
    int64_t expire_adj = 0;
  };

  /// Hash-probe candidate for the scan at one join level: the positions of
  /// rows with main[col] equal to the bound side's value can come from the
  /// relation's hash index (the incremental form of a hash join with a
  /// log-side delta). Like the executor's pushdown, a probe only narrows:
  /// the originating conjunct is still re-applied to every visited row.
  struct EqProbe {
    size_t col = 0;               ///< column within the relation
    const Expr* other = nullptr;  ///< side bound by outer levels / constants
  };

  enum class WindowOp { kGt, kGe, kLt, kLe, kEq };

  /// Window-derived range bound for the scan at one join level: at clock
  /// `now` the window conjunct compares the column against base + now, so
  /// an ordered index can serve the qualifying slice. Expire-type bounds
  /// (kGt/kGe/kEq lower bounds) are usable during folds too — a row outside
  /// them can never satisfy the window at the current or any later clock.
  struct WindowBound {
    size_t col = 0;
    int64_t base = 0;  ///< clock-side value at clock = 0 (slope 1)
    WindowOp op = WindowOp::kGt;
  };

  enum class AggKind { kCountStar, kCount, kSum, kMin, kMax };

  struct AggSpec {
    const FuncCallExpr* site = nullptr;  ///< bq.aggregates[i] call site
    AggKind kind = AggKind::kCountStar;
    bool distinct = false;
    const Expr* arg = nullptr;  ///< null for COUNT(*)
  };

  /// Removable accumulator for one aggregate site over one group. Mirrors
  /// AggregateAccumulator under deletions: plain counts and int sums
  /// subtract, DISTINCT keeps multiplicities, MIN/MAX keeps the multiset.
  struct AggState {
    int64_t count = 0;    ///< non-null adds (non-distinct count/sum)
    int64_t sum_int = 0;  ///< non-distinct int sum
    std::unordered_map<Value, int64_t, ValueHash> distinct;
    std::multiset<Value> ordered;  ///< min/max candidates
  };

  struct GroupState {
    int64_t active = 0;  ///< active contributions; group erased at 0
    std::vector<AggState> aggs;
  };

  /// One joined tuple that passed every non-window conjunct.
  struct Contribution {
    int64_t enter_at = 0;
    int64_t expire_at = 0;
    Row key;                  ///< group-by column values
    std::vector<Value> args;  ///< evaluated aggregate arguments
  };

  /// Per-eval additive accumulator for overlay (staged-increment) tuples.
  struct OverlayAgg {
    int64_t count = 0;
    int64_t sum_int = 0;
    std::unordered_map<Value, int64_t, ValueHash> distinct;
    bool has_min = false;
    Value min;
    bool has_max = false;
    Value max;
  };

  struct OverlayGroup {
    int64_t hits = 0;
    std::vector<OverlayAgg> aggs;
  };

  IncrementalState() = default;

  void Poison() const {
    poisoned_.store(true, std::memory_order_relaxed);
  }

  /// Resets every fold marker and container (dependency invalidation).
  void ClearState();

  /// Folds the committed growth of every relation's main table via the
  /// delta-join decomposition. Returns false (caller poisons) on an
  /// expression error, a non-integer window timestamp, or the work cap.
  bool FoldGrowth(int64_t now);
  bool FoldTerm(size_t level, size_t term, int64_t now, Row* scratch);
  bool EmitContribution(const Row& scratch, int64_t now);

  /// Tries to answer the scan of rels_[level].main through a hash or
  /// ordered-index probe; true with the (ascending) candidate positions
  /// when an index answered, false to mean "walk the table". Fold mode
  /// restricts window bounds to expire-type ones (enter-type bounds would
  /// drop rows that belong in pending_).
  bool ProbePositions(size_t level, bool fold_mode, int64_t now, Row* scratch,
                      std::vector<size_t>* out) const;

  void ApplyContribution(const Contribution& c);
  bool ApplyAgg(const AggSpec& spec, const Value& v, AggState* s);
  void UnapplyContribution(const Contribution& c);
  void ActivatePending(int64_t now);
  void ExpireActive(int64_t now);

  /// Overlay join over the staged deltas; accumulates into *groups (or
  /// just reports existence for exists-only policies). Returns false on
  /// cap/error (sets *supported_out accordingly via the caller).
  bool OverlayTerm(size_t level, size_t term, int64_t now, Row* scratch,
                   std::unordered_map<Row, OverlayGroup, RowHash>* groups,
                   bool* any_tuple, size_t* steps) const;
  bool AccumulateOverlay(const Row& scratch,
                         std::unordered_map<Row, OverlayGroup, RowHash>* g,
                         bool* any_tuple) const;

  /// Finish-equivalent merged aggregate value (state + overlay halves,
  /// either may be null). Returns false on a MIN/MAX structural tie.
  bool MergedAggValue(size_t i, const AggState* s, const OverlayAgg* o,
                      Value* out) const;

  /// Evaluates HAVING over one merged group; appends to *violated. The
  /// synthetic empty global group is the call with null state and overlay.
  bool CheckGroup(const Row& key, const GroupState* s, const OverlayGroup* o,
                  bool* violated) const;

  const BoundQuery* bq_ = nullptr;
  std::string message_;
  bool exists_only_ = false;   ///< no HAVING: verdict = any surviving tuple
  bool constant_false_ = false;  ///< a literal conjunct is not TRUE
  size_t total_slots_ = 0;

  std::vector<RelationState> rels_;
  std::vector<size_t> clock_slots_;
  std::vector<const Expr*> constant_conjuncts_;
  /// Non-window conjuncts by deepest referenced fold level.
  std::vector<std::vector<const Expr*>> level_conjuncts_;
  /// All conjuncts (windows included) by level, for overlay evaluation
  /// where the clock slots are prefilled with `now`.
  std::vector<std::vector<const Expr*>> overlay_conjuncts_;
  /// Index-probe candidates by fold level (see EqProbe / WindowBound).
  std::vector<std::vector<EqProbe>> eq_probes_;
  std::vector<std::vector<WindowBound>> window_bounds_;
  std::vector<WindowConjunct> windows_;
  std::vector<size_t> group_slots_;
  std::vector<AggSpec> aggs_;

  // --- Maintained state (serial sections only) ---
  std::unordered_map<Row, GroupState, RowHash> groups_;
  std::multimap<int64_t, Contribution> pending_;  ///< keyed by enter_at
  std::multimap<int64_t, Contribution> active_;   ///< keyed by expire_at
  int64_t total_active_ = 0;

  bool ready_ = false;       ///< Advance completed for current_now_
  bool built_ = false;       ///< state reflects the folded rows
  bool ever_built_ = false;  ///< a later full fold counts as a rebuild
  int64_t current_now_ = 0;
  uint64_t advance_count_ = 0;
  uint64_t cooldown_until_ = 0;  ///< advance_count_ gate for rebuilds
  uint64_t last_invalid_at_ = 0;
  int backoff_ = 0;
  size_t fold_steps_ = 0;

  mutable std::atomic<bool> poisoned_{false};
};

}  // namespace datalawyer

#endif  // DATALAWYER_POLICY_INCREMENTAL_H_
