#ifndef DATALAWYER_POLICY_POLICY_H_
#define DATALAWYER_POLICY_POLICY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"

namespace datalawyer {

/// One data-use policy π (§3.1): a SELECT whose non-empty answer signals a
/// violation; the first output column is the error message shown to the
/// user. Analysis fields are filled in by PolicyAnalyzer.
struct Policy {
  std::string name;
  std::string sql;
  std::unique_ptr<SelectStmt> stmt;

  // ----- facts derived by PolicyAnalyzer -----

  /// Log relations referenced anywhere in the policy (lowercase, deduped),
  /// in the usage log's generation order.
  std::vector<std::string> log_relations;

  /// §4.2.1: true for SPJU policies whose HAVING conditions are all of the
  /// monotone form COUNT([DISTINCT] x) > / >= k. Monotone policies can be
  /// dismissed early by partial evaluation.
  bool monotone = false;

  /// §4.1.1: true if the policy can be checked on the log increment alone.
  bool time_independent = false;

  /// True if the policy references the Clock relation.
  bool references_clock = false;

  /// Timestamp the policy was registered at. Footnote 7: "If a new policy
  /// is added at time t, DataLawyer restricts its history to start at time
  /// t" — the analyzer adds `ts > active_from` guards for every log alias
  /// when this is > 0, so pre-registration history can never trip it.
  int64_t active_from = 0;

  /// π_ind — the time-independent rewrite (ts pinned to the current clock);
  /// null unless time_independent.
  std::unique_ptr<SelectStmt> rewritten;

  /// Optional approximate guard (§6 future work): a cheaper query with
  /// guard ⊇ policy — an empty guard answer proves the policy satisfied,
  /// a non-empty one triggers the precise check. Soundness (the ⊇
  /// containment) is the author's responsibility.
  std::unique_ptr<SelectStmt> guard;
  std::string guard_sql;

  /// The statement DataLawyer actually evaluates.
  const SelectStmt& effective() const {
    return rewritten != nullptr ? *rewritten : *stmt;
  }

  Policy() = default;
  Policy(Policy&&) = default;
  Policy& operator=(Policy&&) = default;

  /// Deep copy (analysis fields included).
  Policy Clone() const;

  /// Parses `sql` into a policy named `name` (analysis not yet run).
  static Result<Policy> Parse(const std::string& name, const std::string& sql);
};

}  // namespace datalawyer

#endif  // DATALAWYER_POLICY_POLICY_H_
