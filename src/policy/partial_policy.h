#ifndef DATALAWYER_POLICY_PARTIAL_POLICY_H_
#define DATALAWYER_POLICY_PARTIAL_POLICY_H_

#include <memory>
#include <set>
#include <string>

#include "common/result.h"
#include "log/usage_log.h"
#include "sql/ast.h"

namespace datalawyer {

/// Builds the partial policy π_S of §4.2.1: `stmt` with every reference to a
/// log relation outside `available` removed — FROM items, the WHERE
/// conjuncts, GROUP BY / DISTINCT ON keys and select items that mention
/// them, and the HAVING clause if it does.
///
/// For a monotone policy π, π ⇒ π_S (Lemma 4.4): if π_S returns the empty
/// set, π is satisfied and can be dismissed without generating the missing
/// logs. The same superset property makes the rewrite usable for partial
/// *witness* queries (preemptive log compaction, §4.3).
///
/// Conservative rules keep the implication sound in corner cases:
///  * a FROM subquery referencing any unavailable log relation is dropped
///    whole;
///  * when anything was dropped, clauses containing *unqualified* column
///    references (unattributable without binding) are dropped as well —
///    dropping restrictions only enlarges the result.
std::unique_ptr<SelectStmt> BuildPartialPolicy(
    const SelectStmt& stmt, const UsageLog& log,
    const std::set<std::string>& available);

}  // namespace datalawyer

#endif  // DATALAWYER_POLICY_PARTIAL_POLICY_H_
