#include "policy/log_compactor.h"

#include <chrono>
#include <unordered_set>

#include "exec/executor.h"
#include "common/trace.h"

namespace datalawyer {

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

Result<std::map<std::string, std::set<int64_t>>> LogCompactor::Mark(
    const std::vector<const WitnessSet*>& witnesses, const CatalogView* base,
    int64_t now, std::set<std::string>* keep_all,
    const std::set<std::string>& skip_retention, ScanStats* scans) {
  std::map<std::string, std::set<int64_t>> keep;
  for (const std::string& name : log_->RelationNamesInOrder()) {
    keep[name];  // default: retain nothing unless a witness asks for it
  }

  // Catalog for the witness queries: base + log(∪ increment) + dl_now.
  UsageLog::PolicyCatalog catalog = log_->MakeCatalog(base, now);
  TableSchema now_schema;
  now_schema.AddColumn("ts", ValueType::kInt64);
  OwnedRelation now_rel(std::move(now_schema), {{Value(now)}});
  catalog.catalog->Add(WitnessBuilder::NowRelationName(), &now_rel);

  for (const WitnessSet* set : witnesses) {
    for (const auto& [name, witness] : set->per_relation) {
      if (!log_->IsLogRelation(name)) continue;
      if (skip_retention.count(name)) continue;
      if (witness.full_fallback) {
        keep_all->insert(name);
        continue;
      }
      for (const auto& query : witness.queries) {
        ExecOptions options;
        options.capture_lineage = true;
        Executor executor(catalog.view(), options);
        DL_ASSIGN_OR_RETURN(QueryResult result, executor.Execute(*query));
        if (scans != nullptr) {
          scans->index_probes += executor.scan_stats().index_probes;
          scans->index_hits += executor.scan_stats().index_hits;
        }
        // Map the relation name to its lineage index, if it was scanned.
        int rel_idx = -1;
        for (size_t i = 0; i < result.base_relations.size(); ++i) {
          if (result.base_relations[i] == name) rel_idx = int(i);
        }
        if (rel_idx < 0) continue;
        std::set<int64_t>& ids = keep[name];
        for (const LineageSet& lineage : result.lineage) {
          for (const LineageEntry& entry : lineage) {
            if (int(entry.rel) == rel_idx) ids.insert(entry.row_id);
          }
        }
      }
    }
  }
  return keep;
}

Result<CompactionStats> LogCompactor::CompactAndFlush(
    const std::vector<const WitnessSet*>& witnesses, const CatalogView* base,
    int64_t now, const std::set<std::string>& skip_retention) {
  CompactionStats stats;
  DL_TRACE_SPAN("compact.flush", "policy");

  // ---- mark ----
  auto t0 = std::chrono::steady_clock::now();
  std::set<std::string> keep_all;
  ScanStats scans;
  std::map<std::string, std::set<int64_t>> keep;
  {
    DL_TRACE_SPAN("compact.mark", "policy");
    DL_ASSIGN_OR_RETURN(
        keep, Mark(witnesses, base, now, &keep_all, skip_retention, &scans));
  }
  stats.mark_ms = MsSince(t0);
  stats.index_probes = scans.index_probes;
  stats.index_hits = scans.index_hits;

  // ---- delete (persisted log) ----
  t0 = std::chrono::steady_clock::now();
  {
    DL_TRACE_SPAN("compact.delete", "policy");
    for (const auto& [name, ids] : keep) {
      if (keep_all.count(name)) continue;
      Table* main = log_->main_table(name);
      std::unordered_set<int64_t> main_keep;
      for (int64_t id : ids) {
        if (!ConcatRelation::IsFromSecond(id)) main_keep.insert(id);
      }
      stats.rows_deleted += main->RetainOnly(main_keep);
    }
  }
  stats.delete_ms = MsSince(t0);

  // ---- insert (surviving increment rows) ----
  t0 = std::chrono::steady_clock::now();
  DL_TRACE_SPAN("compact.insert", "policy");
  for (const auto& [name, ids] : keep) {
    Table* main = log_->main_table(name);
    Table* delta = log_->delta_table(name);
    if (!log_->IsPersisted(name)) {
      stats.rows_dropped_from_delta += delta->NumRows();
      continue;
    }
    bool all = keep_all.count(name) > 0;
    std::unordered_set<int64_t> delta_keep;
    if (!all) {
      for (int64_t id : ids) {
        if (ConcatRelation::IsFromSecond(id)) {
          delta_keep.insert(ConcatRelation::SecondRowId(id));
        }
      }
    }
    for (size_t i = 0; i < delta->NumRows(); ++i) {
      if (all || delta_keep.count(delta->RowIdAt(i))) {
        // Schemas match by construction; Append cannot fail.
        (void)main->Append(delta->RowAt(i));
        ++stats.rows_inserted;
      } else {
        ++stats.rows_dropped_from_delta;
      }
    }
  }
  log_->DiscardStaged();  // clears deltas and per-query generation flags
  // The delete phase invalidated main-table indexes; restore them while the
  // compactor still owns the tables (no reader can be probing concurrently).
  log_->RefreshIndexes();
  stats.insert_ms = MsSince(t0);
  return stats;
}

}  // namespace datalawyer
