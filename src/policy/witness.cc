#include "policy/witness.h"

#include <map>
#include <optional>
#include <set>
#include <utility>

#include "analysis/join_graph.h"
#include "common/strings.h"
#include "common/trace.h"
#include "exec/executor.h"
#include "policy/policy_analyzer.h"
#include "storage/catalog_view.h"

namespace datalawyer {

const std::string& WitnessBuilder::NowRelationName() {
  static const std::string* kName = new std::string("dl_now");
  return *kName;
}

void WitnessSet::MergeFrom(WitnessSet other) {
  for (auto& [name, witness] : other.per_relation) {
    RelationWitness& mine = per_relation[name];
    mine.full_fallback = mine.full_fallback || witness.full_fallback;
    for (auto& q : witness.queries) mine.queries.push_back(std::move(q));
  }
}

namespace {

/// A clock comparison isolated to `clock.ts op rhs` form.
struct ClockPredicate {
  std::string op;  ///< "<", "<=", ">", ">=", "=" (after isolation)
  ExprPtr rhs;     ///< clock-free expression
};

bool MentionsAnyOf(const Expr& expr, const std::set<std::string>& aliases) {
  bool found = false;
  expr.Visit([&](const Expr& e) {
    if (e.kind() == ExprKind::kColumnRef) {
      const auto& c = static_cast<const ColumnRefExpr&>(e);
      if (aliases.count(ToLower(c.qualifier))) found = true;
    } else if (e.kind() == ExprKind::kStar) {
      const auto& s = static_cast<const StarExpr&>(e);
      if (aliases.count(ToLower(s.qualifier))) found = true;
    }
  });
  return found;
}

bool HasUnqualifiedRefs(const Expr& expr) {
  bool found = false;
  expr.Visit([&](const Expr& e) {
    if (e.kind() == ExprKind::kColumnRef &&
        static_cast<const ColumnRefExpr&>(e).qualifier.empty()) {
      found = true;
    }
  });
  return found;
}

std::string FlipOp(const std::string& op) {
  if (op == "<") return ">";
  if (op == "<=") return ">=";
  if (op == ">") return "<";
  if (op == ">=") return "<=";
  return op;  // = and != are symmetric
}

/// Isolates `conjunct` into `clock.ts op rhs`. Handles +/- constant motion
/// (e.g. `u.ts > c.ts - 5` → `c.ts < u.ts + 5`). Returns false when the
/// shape is not supported (caller falls back to the full witness).
bool IsolateClock(const Expr& conjunct, const std::set<std::string>& clock_aliases,
                  ClockPredicate* out) {
  if (conjunct.kind() != ExprKind::kBinary) return false;
  const auto& b = static_cast<const BinaryExpr&>(conjunct);
  if (b.op != "=" && b.op != "!=" && b.op != "<" && b.op != "<=" &&
      b.op != ">" && b.op != ">=") {
    return false;
  }
  bool lhs_clock = MentionsAnyOf(*b.lhs, clock_aliases);
  bool rhs_clock = MentionsAnyOf(*b.rhs, clock_aliases);
  if (lhs_clock == rhs_clock) return false;  // both or neither

  ExprPtr clock_side = (lhs_clock ? b.lhs : b.rhs)->Clone();
  ExprPtr other_side = (lhs_clock ? b.rhs : b.lhs)->Clone();
  std::string op = lhs_clock ? b.op : FlipOp(b.op);

  // Move additive terms off the clock side: (c.ts - E) op X → c.ts op X + E.
  while (clock_side->kind() == ExprKind::kBinary) {
    auto* cb = static_cast<BinaryExpr*>(clock_side.get());
    if (cb->op != "+" && cb->op != "-") return false;
    bool left_has = MentionsAnyOf(*cb->lhs, clock_aliases);
    bool right_has = MentionsAnyOf(*cb->rhs, clock_aliases);
    if (left_has == right_has) return false;
    if (left_has) {
      // (C ± E) op X  →  C op X ∓ E
      other_side = std::make_unique<BinaryExpr>(
          cb->op == "+" ? "-" : "+", std::move(other_side),
          std::move(cb->rhs));
      clock_side = std::move(cb->lhs);
    } else {
      if (cb->op == "+") {
        // (E + C) op X  →  C op X - E
        other_side = std::make_unique<BinaryExpr>("-", std::move(other_side),
                                                  std::move(cb->lhs));
        clock_side = std::move(cb->rhs);
      } else {
        // (E - C) op X  →  C flip(op) E - X
        other_side = std::make_unique<BinaryExpr>("-", std::move(cb->lhs),
                                                  std::move(other_side));
        op = FlipOp(op);
        clock_side = std::move(cb->rhs);
      }
    }
  }

  if (clock_side->kind() != ExprKind::kColumnRef) return false;
  const auto& ref = static_cast<const ColumnRefExpr&>(*clock_side);
  if (!clock_aliases.count(ToLower(ref.qualifier)) ||
      !EqualsIgnoreCase(ref.column, "ts")) {
    return false;
  }
  out->op = op;
  out->rhs = std::move(other_side);
  return true;
}

/// Columns of `alias` mentioned in `expr`.
void CollectAliasColumns(const Expr& expr, const std::string& alias,
                         std::set<std::string>* out) {
  expr.Visit([&](const Expr& e) {
    if (e.kind() == ExprKind::kColumnRef) {
      const auto& c = static_cast<const ColumnRefExpr&>(e);
      if (EqualsIgnoreCase(c.qualifier, alias)) out->insert(ToLower(c.column));
    }
  });
}

/// `dl_now.ts + 1`.
ExprPtr NowPlusOne() {
  return std::make_unique<BinaryExpr>(
      "+",
      std::make_unique<ColumnRefExpr>(WitnessBuilder::NowRelationName(), "ts"),
      std::make_unique<LiteralExpr>(Value(int64_t{1})));
}

}  // namespace

Result<WitnessSet> WitnessBuilder::Build(const SelectStmt& policy_stmt) const {
  DL_TRACE_SPAN("policy.witness_build", "policy");
  WitnessSet out;
  for (const SelectStmt* member = &policy_stmt; member != nullptr;
       member = member->union_next.get()) {
    DL_ASSIGN_OR_RETURN(WitnessSet member_set, BuildForMember(*member));
    out.MergeFrom(std::move(member_set));
  }
  return out;
}

Result<WitnessSet> WitnessBuilder::BuildForMember(
    const SelectStmt& member) const {
  WitnessSet out;

  // Algorithm 2, line 3: FROM subqueries are compacted separately.
  for (const TableRef& ref : member.from) {
    if (ref.IsSubquery()) {
      DL_ASSIGN_OR_RETURN(WitnessSet sub, Build(*ref.subquery));
      out.MergeFrom(std::move(sub));
    }
  }

  // Classify top-level FROM aliases.
  struct LogAlias {
    std::string alias;
    std::string relation;
  };
  std::vector<LogAlias> log_aliases;
  std::set<std::string> clock_aliases;
  std::set<std::string> subquery_aliases;
  std::vector<const TableRef*> db_refs;
  std::set<std::string> db_aliases;
  for (const TableRef& ref : member.from) {
    std::string alias = ToLower(ref.BindingName());
    if (ref.IsSubquery()) {
      subquery_aliases.insert(alias);
    } else if (log_->IsLogRelation(ref.table_name)) {
      log_aliases.push_back(LogAlias{alias, ToLower(ref.table_name)});
    } else if (EqualsIgnoreCase(ref.table_name,
                                UsageLog::ClockRelationName())) {
      clock_aliases.insert(alias);
    } else {
      db_refs.push_back(&ref);
      db_aliases.insert(alias);
    }
  }
  if (log_aliases.empty()) return out;

  auto mark_fallback_all = [&]() {
    for (const LogAlias& la : log_aliases) {
      out.per_relation[la.relation].full_fallback = true;
    }
  };

  // Unqualified references make alias attribution unsound — keep everything.
  {
    bool unqualified = false;
    auto scan = [&](const Expr* e) {
      if (e != nullptr && HasUnqualifiedRefs(*e)) unqualified = true;
    };
    for (const SelectItem& item : member.items) scan(item.expr.get());
    for (const ExprPtr& e : member.distinct_on) scan(e.get());
    scan(member.where.get());
    for (const ExprPtr& e : member.group_by) scan(e.get());
    scan(member.having.get());
    if (unqualified) {
      mark_fallback_all();
      return out;
    }
  }

  // Clock references outside WHERE are beyond Lemma 4.3.
  {
    bool clock_elsewhere = false;
    auto scan = [&](const Expr* e) {
      if (e != nullptr && MentionsAnyOf(*e, clock_aliases)) {
        clock_elsewhere = true;
      }
    };
    for (const SelectItem& item : member.items) scan(item.expr.get());
    for (const ExprPtr& e : member.distinct_on) scan(e.get());
    for (const ExprPtr& e : member.group_by) scan(e.get());
    scan(member.having.get());
    if (clock_elsewhere) {
      mark_fallback_all();
      return out;
    }
  }

  // Partition WHERE conjuncts.
  std::vector<ExprPtr> plain;
  std::vector<ClockPredicate> clock_preds;
  if (member.where != nullptr) {
    for (ExprPtr& conj : SplitConjuncts(*member.where)) {
      if (MentionsAnyOf(*conj, subquery_aliases)) continue;  // dropped: sound
      if (MentionsAnyOf(*conj, clock_aliases)) {
        ClockPredicate pred;
        if (!IsolateClock(*conj, clock_aliases, &pred) || pred.op == "!=") {
          // §4.1.2: no compaction for unsupported clock shapes.
          mark_fallback_all();
          return out;
        }
        if (pred.op == "=") {
          // Split equality; only the <= half survives Lemma 4.3 anyway.
          ClockPredicate le;
          le.op = "<=";
          le.rhs = pred.rhs->Clone();
          clock_preds.push_back(std::move(le));
        } else {
          clock_preds.push_back(std::move(pred));
        }
        continue;
      }
      plain.push_back(std::move(conj));
    }
  }

  const bool full_query_mode = member.having != nullptr;
  JoinGraph graph = JoinGraph::Build(member);

  for (const LogAlias& la : log_aliases) {
    // Neighborhood: log aliases whose ts equi-joins with la's ts.
    std::set<std::string> kept{la.alias};
    QualifiedColumn my_ts{la.alias, "ts"};
    for (const LogAlias& other : log_aliases) {
      if (other.alias == la.alias) continue;
      QualifiedColumn ts{other.alias, "ts"};
      if (graph.SameClass(my_ts, ts)) kept.insert(other.alias);
    }
    for (const std::string& alias : db_aliases) kept.insert(alias);

    auto references_only_kept = [&](const Expr& e) {
      bool ok = true;
      e.Visit([&](const Expr& node) {
        if (node.kind() == ExprKind::kColumnRef) {
          const auto& c = static_cast<const ColumnRefExpr&>(node);
          if (!kept.count(ToLower(c.qualifier))) ok = false;
        }
      });
      return ok;
    };

    auto query = std::make_unique<SelectStmt>();
    // FROM: the occurrence, its neighborhood, the database relations.
    bool need_now = false;
    for (const TableRef& ref : member.from) {
      std::string alias = ToLower(ref.BindingName());
      if (kept.count(alias) && !ref.IsSubquery() &&
          !clock_aliases.count(alias)) {
        query->from.push_back(ref.Clone());
      }
    }

    // WHERE: restricted predicates + transformed clock predicates.
    std::vector<ExprPtr> conjuncts;
    std::set<std::string> join_columns;  // the DISTINCT ON attributes a.X
    for (const ExprPtr& conj : plain) {
      if (!references_only_kept(*conj)) continue;
      // Track a.X: columns of `la.alias` equated with another relation.
      if (conj->kind() == ExprKind::kBinary) {
        const auto& b = static_cast<const BinaryExpr&>(*conj);
        if (b.op == "=" && b.lhs->kind() == ExprKind::kColumnRef &&
            b.rhs->kind() == ExprKind::kColumnRef) {
          const auto& l = static_cast<const ColumnRefExpr&>(*b.lhs);
          const auto& r = static_cast<const ColumnRefExpr&>(*b.rhs);
          if (EqualsIgnoreCase(l.qualifier, la.alias) &&
              !EqualsIgnoreCase(r.qualifier, la.alias)) {
            join_columns.insert(ToLower(l.column));
          } else if (EqualsIgnoreCase(r.qualifier, la.alias) &&
                     !EqualsIgnoreCase(l.qualifier, la.alias)) {
            join_columns.insert(ToLower(r.column));
          }
        }
      }
      conjuncts.push_back(conj->Clone());
    }
    for (const ClockPredicate& pred : clock_preds) {
      // Attributes in the clock expression count as join attributes
      // (Lemma 4.3), including for predicates we drop — conservative.
      CollectAliasColumns(*pred.rhs, la.alias, &join_columns);
      if (pred.op == ">" || pred.op == ">=") continue;  // dropped
      if (!references_only_kept(*pred.rhs)) continue;   // dropped: sound
      conjuncts.push_back(std::make_unique<BinaryExpr>(pred.op, NowPlusOne(),
                                                       pred.rhs->Clone()));
      need_now = true;
    }
    query->where = AndTogether(std::move(conjuncts));

    if (need_now) {
      TableRef now_ref;
      now_ref.table_name = NowRelationName();
      now_ref.alias = NowRelationName();
      query->from.push_back(std::move(now_ref));
    }

    // SELECT list per Eq. (2) / Eq. (3).
    query->items.push_back(
        SelectItem{std::make_unique<StarExpr>(la.alias), ""});
    if (full_query_mode) {
      query->distinct = true;  // Eq. (2): SELECT DISTINCT a.*
    } else {
      if (join_columns.empty()) {
        // DISTINCT ON over a constant: any single satisfying tuple.
        query->distinct_on.push_back(
            std::make_unique<LiteralExpr>(Value(int64_t{1})));
      } else {
        for (const std::string& col : join_columns) {
          query->distinct_on.push_back(
              std::make_unique<ColumnRefExpr>(la.alias, col));
        }
      }
    }

    out.per_relation[la.relation].queries.push_back(std::move(query));
  }

  return out;
}

Result<WitnessCaptureResult> CaptureViolationWitnesses(
    const SelectStmt& stmt, const CatalogView* catalog, const UsageLog& log,
    size_t limit, bool naive, bool enable_stats_costing) {
  ScopedSpan span("decision.witness", "policy");
  ExecOptions options;
  options.capture_lineage = true;
  options.enable_optimizer = !naive;
  options.enable_stats_costing = enable_stats_costing && !naive;
  Executor executor(catalog, options);
  DL_ASSIGN_OR_RETURN(QueryResult result, executor.Execute(stmt));

  // Distinct usage-log tuples across every violating output row. std::set
  // gives the deterministic (relation, row id) order — concatenated ids
  // sort main-part rows before increment rows within a relation.
  std::set<std::pair<std::string, int64_t>> ids;
  for (const LineageSet& lineage : result.lineage) {
    for (const LineageEntry& entry : lineage) {
      const std::string& rel = result.base_relations[entry.rel];
      if (log.IsLogRelation(rel)) ids.insert({rel, entry.row_id});
    }
  }

  WitnessCaptureResult capture;
  if (ids.size() > limit) capture.truncated = ids.size() - limit;

  // Resolve values one relation at a time: RelationData has no id→row
  // inverse, so build it once per relation instead of once per witness.
  std::string current_rel;
  const RelationData* rel_data = nullptr;
  std::map<int64_t, size_t> index_of;
  std::optional<size_t> ts_col;
  for (const auto& [rel, row_id] : ids) {
    if (capture.rows.size() >= limit) break;
    if (rel != current_rel || rel_data == nullptr) {
      current_rel = rel;
      rel_data = catalog->Find(rel);
      index_of.clear();
      ts_col.reset();
      if (rel_data != nullptr) {
        ts_col = rel_data->schema().FindColumn("ts");
        for (size_t i = 0, n = rel_data->NumRows(); i < n; ++i) {
          index_of[rel_data->RowIdAt(i)] = i;
        }
      }
    }
    if (rel_data == nullptr) continue;
    auto it = index_of.find(row_id);
    if (it == index_of.end()) continue;
    const Row& row = rel_data->RowAt(it->second);
    CapturedWitness w;
    w.relation = rel;
    w.from_increment = ConcatRelation::IsFromSecond(row_id);
    w.row_id =
        w.from_increment ? ConcatRelation::SecondRowId(row_id) : row_id;
    if (ts_col.has_value() && *ts_col < row.size() &&
        row[*ts_col].is_int64()) {
      w.ts = row[*ts_col].AsInt64();
    }
    w.values.reserve(row.size());
    for (const Value& v : row) w.values.push_back(v.ToString());
    capture.rows.push_back(std::move(w));
  }
  return capture;
}

}  // namespace datalawyer
