#ifndef DATALAWYER_POLICY_TEMPLATES_H_
#define DATALAWYER_POLICY_TEMPLATES_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace datalawyer {

/// Policy templates (§6: "it may be possible to come up with templates ...
/// that can be later tweaked to get the set of policies for an
/// organization"). Each method renders one of Table 1's restriction types
/// into the policy language over the standard usage log; the returned SQL is
/// a regular policy for DataLawyer::AddPolicy.
///
/// All windows are in clock ticks. Where a template takes `uid`, nullopt
/// means "all users".
class PolicyTemplates {
 public:
  /// Table 1 P1 (Navteq): `dataset` must not appear in a query together
  /// with any relation outside `allowed_partners` (the dataset itself is
  /// always allowed).
  static std::string JoinProhibition(
      const std::string& dataset,
      const std::vector<std::string>& allowed_partners = {},
      std::optional<int64_t> uid = std::nullopt);

  /// Table 1 P4 (Twitter/Foursquare): at most `max_queries` queries per
  /// `window`, optionally scoped to one user and/or to queries touching
  /// `relation`.
  static std::string RateLimit(int64_t window, int64_t max_queries,
                               std::optional<int64_t> uid = std::nullopt,
                               const std::string& relation = "");

  /// Table 1 P3 (MS Translator) as an output cap: no single query may
  /// return more than `max_rows` tuples derived from `relation`.
  static std::string OutputRowCap(const std::string& relation,
                                  int64_t max_rows,
                                  std::optional<int64_t> uid = std::nullopt);

  /// Table 1 P5 (MIMIC II): every output tuple of a query over `relation`
  /// must be supported by more than `min_group_size` distinct input tuples
  /// (k-anonymity-style disclosure limit).
  static std::string MinimumSupport(const std::string& relation,
                                    int64_t min_group_size,
                                    std::optional<int64_t> uid = std::nullopt);

  /// Table 1 P7 (Yelp): columns of `relation` must not be blended into
  /// aggregates while relations outside `exempt` are present; plain joins
  /// remain legal.
  static std::string AggregationBan(const std::string& relation,
                                    const std::vector<std::string>& exempt =
                                        {});

  /// Experiment policy P5: at most `max_distinct` distinct tuples of
  /// `relation` consumed per `window` (per user when `uid` is set).
  static std::string WindowedDistinctTupleCap(
      const std::string& relation, int64_t window, int64_t max_distinct,
      std::optional<int64_t> uid = std::nullopt);

  /// Experiment policy P6: the same tuple of `relation` may be used at most
  /// `max_uses` times per `window`.
  static std::string TupleReuseCap(const std::string& relation,
                                   int64_t window, int64_t max_uses,
                                   std::optional<int64_t> uid = std::nullopt);

  /// Table 1 P2 (Amazon Kindle, group licenses): at most `max_users`
  /// distinct members of `group` may access `relation` per `window`.
  static std::string GroupLicense(const std::string& group,
                                  const std::string& relation, int64_t window,
                                  int64_t max_users);
};

}  // namespace datalawyer

#endif  // DATALAWYER_POLICY_TEMPLATES_H_
