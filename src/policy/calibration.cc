#include "policy/calibration.h"

#include <algorithm>
#include <chrono>
#include <map>

#include "analysis/binder.h"
#include "sql/parser.h"

namespace datalawyer {

Result<CalibrationResult> CalibrateGenerationOrder(
    UsageLog* log, Engine* engine,
    const std::vector<std::string>& sample_queries,
    const QueryContext& context) {
  if (sample_queries.empty()) {
    return Status::InvalidArgument("calibration needs at least one query");
  }

  std::map<std::string, double> total_ms;
  std::map<std::string, size_t> samples;

  int64_t scratch_ts = 1;
  for (const std::string& sql : sample_queries) {
    DL_ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> stmt,
                        Parser::ParseSelect(sql));
    Binder binder(engine->db_catalog());
    DL_ASSIGN_OR_RETURN(std::unique_ptr<BoundQuery> bound,
                        binder.Bind(*stmt));
    GenerationInput input;
    input.query = stmt.get();
    input.bound = bound.get();
    input.db_catalog = engine->db_catalog();
    input.context = &context;

    for (const std::string& name : log->RelationNamesInOrder()) {
      auto t0 = std::chrono::steady_clock::now();
      DL_RETURN_NOT_OK(
          log->EnsureGenerated(name, scratch_ts, input).status());
      total_ms[name] += std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      ++samples[name];
    }
    log->DiscardStaged();
    ++scratch_ts;
  }

  CalibrationResult result;
  for (const auto& [name, total] : total_ms) {
    result.costs_ms.emplace_back(name, total / double(samples[name]));
  }
  std::sort(result.costs_ms.begin(), result.costs_ms.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });

  for (size_t i = 0; i < result.costs_ms.size(); ++i) {
    log->SetCostRank(result.costs_ms[i].first, double(i));
  }
  return result;
}

}  // namespace datalawyer
