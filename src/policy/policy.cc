#include "policy/policy.h"

#include "sql/parser.h"

namespace datalawyer {

Policy Policy::Clone() const {
  Policy out;
  out.name = name;
  out.sql = sql;
  out.stmt = stmt != nullptr ? stmt->Clone() : nullptr;
  out.log_relations = log_relations;
  out.monotone = monotone;
  out.time_independent = time_independent;
  out.references_clock = references_clock;
  out.active_from = active_from;
  out.rewritten = rewritten != nullptr ? rewritten->Clone() : nullptr;
  out.guard = guard != nullptr ? guard->Clone() : nullptr;
  out.guard_sql = guard_sql;
  return out;
}

Result<Policy> Policy::Parse(const std::string& name, const std::string& sql) {
  Policy policy;
  policy.name = name;
  policy.sql = sql;
  DL_ASSIGN_OR_RETURN(policy.stmt, Parser::ParseSelect(sql));
  if (policy.stmt->items.empty()) {
    return Status::InvalidArgument("policy must select an error message");
  }
  return policy;
}

}  // namespace datalawyer
