#include "policy/policy_analyzer.h"

#include <set>

#include "analysis/join_graph.h"
#include "common/strings.h"

namespace datalawyer {

std::vector<std::pair<std::string, std::string>> LogAliasesOf(
    const SelectStmt& stmt, const UsageLog& log) {
  std::vector<std::pair<std::string, std::string>> out;
  for (const TableRef& ref : stmt.from) {
    if (!ref.IsSubquery() && log.IsLogRelation(ref.table_name)) {
      out.emplace_back(ToLower(ref.BindingName()), ToLower(ref.table_name));
    }
  }
  return out;
}

namespace {

void CollectLogRelationsInto(const SelectStmt& stmt, const UsageLog& log,
                             std::set<std::string>* out) {
  for (const SelectStmt* member = &stmt; member != nullptr;
       member = member->union_next.get()) {
    for (const TableRef& ref : member->from) {
      if (ref.IsSubquery()) {
        CollectLogRelationsInto(*ref.subquery, log, out);
      } else if (log.IsLogRelation(ref.table_name)) {
        out->insert(ToLower(ref.table_name));
      }
    }
  }
}

bool ReferencesClock(const SelectStmt& stmt) {
  for (const SelectStmt* member = &stmt; member != nullptr;
       member = member->union_next.get()) {
    for (const TableRef& ref : member->from) {
      if (ref.IsSubquery()) {
        if (ReferencesClock(*ref.subquery)) return true;
      } else if (EqualsIgnoreCase(ref.table_name,
                                  UsageLog::ClockRelationName())) {
        return true;
      }
    }
  }
  return false;
}

/// True if `e` is COUNT([DISTINCT] ...) — the aggregate whose growth is
/// monotone under log extension.
bool IsCountAggregate(const Expr& e) {
  return e.kind() == ExprKind::kFuncCall &&
         static_cast<const FuncCallExpr&>(e).IsAggregate() &&
         static_cast<const FuncCallExpr&>(e).name == "count";
}

}  // namespace

std::vector<std::string> CollectLogRelations(const SelectStmt& stmt,
                                             const UsageLog& log) {
  std::set<std::string> set;
  CollectLogRelationsInto(stmt, log, &set);
  std::vector<std::string> ordered;
  for (const std::string& name : log.RelationNamesInOrder()) {
    if (set.count(name)) ordered.push_back(name);
  }
  return ordered;
}

std::unique_ptr<SelectStmt> RestrictHistory(const SelectStmt& stmt,
                                            const UsageLog& log,
                                            int64_t active_from) {
  std::unique_ptr<SelectStmt> out = stmt.Clone();
  for (SelectStmt* member = out.get(); member != nullptr;
       member = member->union_next.get()) {
    for (TableRef& ref : member->from) {
      if (ref.IsSubquery()) {
        ref.subquery = RestrictHistory(*ref.subquery, log, active_from);
      }
    }
    std::vector<ExprPtr> guards;
    for (const auto& [alias, _] : LogAliasesOf(*member, log)) {
      guards.push_back(std::make_unique<BinaryExpr>(
          ">", std::make_unique<ColumnRefExpr>(alias, "ts"),
          std::make_unique<LiteralExpr>(Value(active_from))));
    }
    if (guards.empty()) continue;
    if (member->where != nullptr) guards.push_back(std::move(member->where));
    member->where = AndTogether(std::move(guards));
  }
  return out;
}

bool TimestampsAllJoined(const SelectStmt& stmt, const UsageLog& log) {
  for (const SelectStmt* member = &stmt; member != nullptr;
       member = member->union_next.get()) {
    for (const TableRef& ref : member->from) {
      if (ref.IsSubquery() &&
          !CollectLogRelations(*ref.subquery, log).empty()) {
        return false;  // conservative: log access hidden inside a subquery
      }
    }
    std::vector<std::pair<std::string, std::string>> log_aliases =
        LogAliasesOf(*member, log);
    if (log_aliases.size() < 2) continue;
    JoinGraph graph = JoinGraph::Build(*member);
    QualifiedColumn first_ts{log_aliases[0].first, "ts"};
    for (size_t i = 1; i < log_aliases.size(); ++i) {
      if (!graph.SameClass(first_ts,
                           QualifiedColumn{log_aliases[i].first, "ts"})) {
        return false;
      }
    }
  }
  return true;
}

Status PolicyAnalyzer::Analyze(Policy* policy) const {
  const SelectStmt& stmt = *policy->stmt;
  policy->log_relations = CollectLogRelations(stmt, *log_);
  policy->references_clock = ReferencesClock(stmt);

  policy->monotone = true;
  policy->time_independent = true;
  for (const SelectStmt* member = &stmt; member != nullptr;
       member = member->union_next.get()) {
    policy->monotone = policy->monotone && MemberMonotone(*member);
    policy->time_independent =
        policy->time_independent && MemberTimeIndependent(*member);
  }

  if (policy->time_independent && !policy->log_relations.empty()) {
    policy->rewritten = BuildTimeIndependentRewrite(stmt);
  } else {
    policy->rewritten = nullptr;
  }
  return Status::OK();
}

bool PolicyAnalyzer::MemberTimeIndependent(const SelectStmt& stmt) const {
  // All FROM subqueries must themselves qualify.
  for (const TableRef& ref : stmt.from) {
    if (ref.IsSubquery()) {
      for (const SelectStmt* member = ref.subquery.get(); member != nullptr;
           member = member->union_next.get()) {
        if (!MemberTimeIndependent(*member)) return false;
      }
    }
  }

  std::vector<std::pair<std::string, std::string>> log_aliases =
      LogAliasesOf(stmt, *log_);
  if (log_aliases.empty()) return true;  // nothing in the log to look back at

  JoinGraph graph = JoinGraph::Build(stmt);

  // (a) all log relations' ts attributes are pairwise joined.
  QualifiedColumn first_ts{log_aliases[0].first, "ts"};
  for (size_t i = 1; i < log_aliases.size(); ++i) {
    QualifiedColumn ts{log_aliases[i].first, "ts"};
    if (!graph.SameClass(first_ts, ts)) return false;
  }

  // (b) if the member aggregates, the GROUP BY must include the timestamp
  // (any column in the ts equivalence class).
  bool has_agg = false;
  for (const SelectItem& item : stmt.items) {
    if (ContainsAggregate(*item.expr)) has_agg = true;
  }
  if (stmt.having != nullptr && ContainsAggregate(*stmt.having)) {
    has_agg = true;
  }
  if (!has_agg) return true;

  for (const ExprPtr& e : stmt.group_by) {
    if (e->kind() != ExprKind::kColumnRef) continue;
    const auto& ref = static_cast<const ColumnRefExpr&>(*e);
    QualifiedColumn col{ToLower(ref.qualifier), ToLower(ref.column)};
    for (const auto& [alias, _] : log_aliases) {
      QualifiedColumn ts{alias, "ts"};
      if (col == ts || graph.SameClass(col, ts)) return true;
    }
  }
  return false;
}

bool PolicyAnalyzer::MemberMonotone(const SelectStmt& stmt) const {
  // FROM subqueries must be monotone too.
  for (const TableRef& ref : stmt.from) {
    if (ref.IsSubquery()) {
      for (const SelectStmt* member = ref.subquery.get(); member != nullptr;
           member = member->union_next.get()) {
        if (!MemberMonotone(*member)) return false;
      }
    }
  }

  // Aggregates in the select list of a Boolean policy play no role in its
  // truth; WHERE is a selection and never breaks monotonicity. Only HAVING
  // can: every aggregate comparison must be COUNT(...) > k or COUNT(...)>=k
  // with a constant threshold (§4.2.1).
  if (stmt.having == nullptr) return true;
  for (const ExprPtr& conj : SplitConjuncts(*stmt.having)) {
    if (!ContainsAggregate(*conj)) continue;  // selection on group columns
    if (conj->kind() != ExprKind::kBinary) return false;
    const auto& b = static_cast<const BinaryExpr&>(*conj);
    const Expr* agg_side = nullptr;
    const Expr* threshold = nullptr;
    std::string op = b.op;
    if (IsCountAggregate(*b.lhs)) {
      agg_side = b.lhs.get();
      threshold = b.rhs.get();
    } else if (IsCountAggregate(*b.rhs)) {
      agg_side = b.rhs.get();
      threshold = b.lhs.get();
      // Flip: k < COUNT(...) is COUNT(...) > k.
      if (op == "<") {
        op = ">";
      } else if (op == "<=") {
        op = ">=";
      } else if (op == ">") {
        op = "<";
      } else if (op == ">=") {
        op = "<=";
      }
    } else {
      return false;
    }
    (void)agg_side;
    if (op != ">" && op != ">=") return false;
    if (threshold->kind() != ExprKind::kLiteral) return false;
  }
  return true;
}

std::unique_ptr<SelectStmt> PolicyAnalyzer::BuildTimeIndependentRewrite(
    const SelectStmt& stmt) const {
  std::unique_ptr<SelectStmt> out = stmt.Clone();
  for (SelectStmt* member = out.get(); member != nullptr;
       member = member->union_next.get()) {
    // Rewrite subqueries first.
    for (TableRef& ref : member->from) {
      if (ref.IsSubquery()) {
        ref.subquery = BuildTimeIndependentRewrite(*ref.subquery);
      }
    }
    std::vector<std::pair<std::string, std::string>> log_aliases =
        LogAliasesOf(*member, *log_);
    if (log_aliases.empty()) continue;

    // Fresh alias for the injected Clock item.
    std::string clock_alias = "dl_ti_clock";
    int suffix = 0;
    auto taken = [&](const std::string& name) {
      for (const TableRef& ref : member->from) {
        if (EqualsIgnoreCase(ref.BindingName(), name)) return true;
      }
      return false;
    };
    while (taken(clock_alias)) {
      clock_alias = "dl_ti_clock" + std::to_string(suffix++);
    }

    TableRef clock_ref;
    clock_ref.table_name = UsageLog::ClockRelationName();
    clock_ref.alias = clock_alias;
    member->from.push_back(std::move(clock_ref));

    std::vector<ExprPtr> conjuncts;
    if (member->where != nullptr) conjuncts.push_back(std::move(member->where));
    for (const auto& [alias, _] : log_aliases) {
      conjuncts.push_back(std::make_unique<BinaryExpr>(
          "=", std::make_unique<ColumnRefExpr>(alias, "ts"),
          std::make_unique<ColumnRefExpr>(clock_alias, "ts")));
    }
    member->where = AndTogether(std::move(conjuncts));
  }
  return out;
}

}  // namespace datalawyer
