#include "policy/partial_policy.h"

#include "common/strings.h"
#include "common/trace.h"
#include "policy/policy_analyzer.h"

namespace datalawyer {

namespace {

/// True if `expr` mentions an unqualified column reference.
bool HasUnqualifiedRef(const Expr& expr) {
  bool found = false;
  expr.Visit([&](const Expr& e) {
    if (e.kind() == ExprKind::kColumnRef &&
        static_cast<const ColumnRefExpr&>(e).qualifier.empty()) {
      found = true;
    }
    if (e.kind() == ExprKind::kStar &&
        static_cast<const StarExpr&>(e).qualifier.empty()) {
      found = true;
    }
  });
  return found;
}

/// True if `expr` must be dropped: it references a removed alias, or it has
/// unqualified references while something was removed.
bool MustDrop(const Expr& expr, const std::vector<std::string>& removed) {
  if (removed.empty()) return false;
  if (ReferencesAnyQualifier(expr, removed)) return true;
  bool star_removed = false;
  expr.Visit([&](const Expr& e) {
    if (e.kind() == ExprKind::kStar) {
      const auto& s = static_cast<const StarExpr&>(e);
      for (const std::string& r : removed) {
        if (EqualsIgnoreCase(s.qualifier, r)) star_removed = true;
      }
    }
  });
  if (star_removed) return true;
  return HasUnqualifiedRef(expr);
}

void RewriteMember(SelectStmt* member, const UsageLog& log,
                   const std::set<std::string>& available) {
  // Decide which FROM items go.
  std::vector<std::string> removed;
  std::vector<TableRef> kept_from;
  for (TableRef& ref : member->from) {
    bool drop = false;
    if (ref.IsSubquery()) {
      for (const std::string& rel : CollectLogRelations(*ref.subquery, log)) {
        if (!available.count(rel)) drop = true;
      }
      if (!drop) {
        // The subquery may still be fine as-is (all its logs available).
        kept_from.push_back(std::move(ref));
        continue;
      }
    } else if (log.IsLogRelation(ref.table_name) &&
               !available.count(ToLower(ref.table_name))) {
      drop = true;
    }
    if (drop) {
      removed.push_back(ToLower(ref.BindingName()));
    } else {
      kept_from.push_back(std::move(ref));
    }
  }
  member->from = std::move(kept_from);
  if (removed.empty()) return;

  // WHERE: keep only conjuncts free of removed aliases.
  if (member->where != nullptr) {
    std::vector<ExprPtr> kept;
    for (ExprPtr& conj : SplitConjuncts(*member->where)) {
      if (!MustDrop(*conj, removed)) kept.push_back(std::move(conj));
    }
    member->where = AndTogether(std::move(kept));
  }

  // HAVING goes whole if it touches a removed relation (§4.2.1).
  if (member->having != nullptr && MustDrop(*member->having, removed)) {
    member->having = nullptr;
  }

  // GROUP BY keys over removed relations vanish.
  {
    std::vector<ExprPtr> kept;
    for (ExprPtr& e : member->group_by) {
      if (!MustDrop(*e, removed)) kept.push_back(std::move(e));
    }
    member->group_by = std::move(kept);
  }

  // DISTINCT ON keys likewise; an emptied list degrades to plain DISTINCT.
  if (!member->distinct_on.empty()) {
    std::vector<ExprPtr> kept;
    for (ExprPtr& e : member->distinct_on) {
      if (!MustDrop(*e, removed)) kept.push_back(std::move(e));
    }
    member->distinct_on = std::move(kept);
    if (member->distinct_on.empty()) member->distinct = true;
  }

  // Select items referencing removed relations vanish; never select nothing.
  {
    std::vector<SelectItem> kept;
    for (SelectItem& item : member->items) {
      if (!MustDrop(*item.expr, removed)) kept.push_back(std::move(item));
    }
    member->items = std::move(kept);
    if (member->items.empty()) {
      member->items.push_back(SelectItem{
          std::make_unique<LiteralExpr>(Value(int64_t{1})), "probe"});
    }
  }

  // ORDER BY is irrelevant to policy truth; drop anything unsafe.
  {
    std::vector<OrderByItem> kept;
    for (OrderByItem& item : member->order_by) {
      if (!MustDrop(*item.expr, removed)) kept.push_back(std::move(item));
    }
    member->order_by = std::move(kept);
  }
}

}  // namespace

std::unique_ptr<SelectStmt> BuildPartialPolicy(
    const SelectStmt& stmt, const UsageLog& log,
    const std::set<std::string>& available) {
  DL_TRACE_SPAN("policy.partial_build", "policy");
  std::unique_ptr<SelectStmt> out = stmt.Clone();
  for (SelectStmt* member = out.get(); member != nullptr;
       member = member->union_next.get()) {
    // Rewrite surviving subqueries recursively first (their log relations
    // are all available or the whole item is dropped by RewriteMember).
    RewriteMember(member, log, available);
    for (TableRef& ref : member->from) {
      if (ref.IsSubquery()) {
        ref.subquery = BuildPartialPolicy(*ref.subquery, log, available);
      }
    }
  }
  return out;
}

}  // namespace datalawyer
