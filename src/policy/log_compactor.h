#ifndef DATALAWYER_POLICY_LOG_COMPACTOR_H_
#define DATALAWYER_POLICY_LOG_COMPACTOR_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "log/usage_log.h"
#include "policy/witness.h"
#include "storage/catalog_view.h"

namespace datalawyer {

struct ScanStats;  // exec/executor.h

/// Per-query timings and volumes of the three compaction phases (§5.2:
/// "marking: the log compaction queries are executed ... delete: the
/// unmarked tuples are deleted ... insert: the remaining tuples in the
/// increment are appended").
struct CompactionStats {
  double mark_ms = 0;
  double delete_ms = 0;
  double insert_ms = 0;
  size_t rows_deleted = 0;           ///< removed from the persisted log
  size_t rows_inserted = 0;          ///< increment rows appended
  size_t rows_dropped_from_delta = 0;  ///< increment rows never persisted
  size_t index_probes = 0;  ///< witness-query equality probes against indexes
  size_t index_hits = 0;    ///< witness-query scans answered by an index
};

/// Executes the absolute-witness queries of every policy over
/// log ∪ increment, retains exactly the union of the witnesses, and flushes
/// the surviving increment rows (Algorithm 2 applied at the end of each
/// successful query, §4.4 step 3-4).
///
/// Witness rows are mapped back to physical tuples through the executor's
/// lineage capture: the contributing tuples of a witness query's output are
/// precisely the log tuples the witness touches — a sound (occasionally
/// conservative) realization of the paper's mark phase.
class LogCompactor {
 public:
  /// `log` must outlive the compactor.
  explicit LogCompactor(UsageLog* log) : log_(log) {}

  /// `witnesses` are the precomputed witness sets of all active policies;
  /// `base` is the database(-plus-constants) catalog; `now` the current
  /// clock. Relations named in `skip_retention` are wiped rather than
  /// queried (the time-independent fast path: nothing needs to persist).
  Result<CompactionStats> CompactAndFlush(
      const std::vector<const WitnessSet*>& witnesses,
      const CatalogView* base, int64_t now,
      const std::set<std::string>& skip_retention = {});

  /// Mark phase only: computes, per log relation, the ids to retain.
  /// Exposed for tests. `keep_all` names relations under full fallback;
  /// `scans` (optional) accumulates the witness queries' access-path
  /// counters.
  Result<std::map<std::string, std::set<int64_t>>> Mark(
      const std::vector<const WitnessSet*>& witnesses,
      const CatalogView* base, int64_t now, std::set<std::string>* keep_all,
      const std::set<std::string>& skip_retention = {},
      ScanStats* scans = nullptr);

 private:
  UsageLog* log_;
};

}  // namespace datalawyer

#endif  // DATALAWYER_POLICY_LOG_COMPACTOR_H_
