#ifndef DATALAWYER_PLAN_STATS_H_
#define DATALAWYER_PLAN_STATS_H_

#include <cstddef>
#include <string>

#include "common/value.h"
#include "storage/stats.h"

namespace datalawyer {

/// Selectivity and cardinality estimation over the storage layer's
/// TableStats (storage/stats.h). Every function degrades to a System-R
/// style magic constant when the statistics cannot answer, so estimates
/// are always defined — the cost model never needs a "no estimate" branch,
/// only the caller's decision of whether stats were trustworthy at all.

/// Magic fallbacks, in the System R tradition.
constexpr double kDefaultEqSelectivity = 0.1;
constexpr double kDefaultRangeSelectivity = 0.25;
constexpr double kDefaultNeqSelectivity = 0.9;

/// Selectivity of `col = <value>`: 1/NDV under the uniform-distribution
/// assumption, kDefaultEqSelectivity when stats are absent.
double EstimateEqSelectivity(const TableStats* stats, size_t col);

/// Selectivity of `col OP bound` for OP in {<, <=, >, >=}: the fraction of
/// the column's [min, max] range the predicate admits, clamped to
/// [1/row_count, 1]. Falls back to kDefaultRangeSelectivity when the
/// column has no numeric range, the bound is not numeric, or `bound` is
/// nullptr (bound unknown until run time).
double EstimateRangeSelectivity(const TableStats* stats, size_t col,
                                const std::string& op, const Value* bound);

/// NDV of `col` for join-cardinality estimation (|L ⋈ R| ≈ |L|·|R| /
/// max(ndv)). When stats are absent, assumes kDefaultEqSelectivity⁻¹
/// distinct values capped by `row_count`.
double EstimateColumnNdv(const TableStats* stats, size_t col,
                         double row_count);

}  // namespace datalawyer

#endif  // DATALAWYER_PLAN_STATS_H_
