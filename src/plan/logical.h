#ifndef DATALAWYER_PLAN_LOGICAL_H_
#define DATALAWYER_PLAN_LOGICAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/bound_query.h"
#include "common/result.h"
#include "sql/ast.h"

namespace datalawyer {

/// Logical plan IR: *what* one bound SELECT computes, per UNION member,
/// before the optimizer decides access paths, join order, and join
/// algorithms. Nodes reference — never own — the bound AST; expression
/// pointers must keep their node identity because BoundQuery::column_slots
/// is keyed by pointer, so the optimizer moves conjuncts between nodes but
/// never rewrites them in place.
enum class LogicalKind {
  kScan,
  kFilter,
  kJoin,
  kProject,
  kAggregate,
  kDistinct,
  kOrder,
  kUnion,
};

struct LogicalNode {
  explicit LogicalNode(LogicalKind k) : kind(k) {}
  virtual ~LogicalNode() = default;
  LogicalNode(const LogicalNode&) = delete;
  LogicalNode& operator=(const LogicalNode&) = delete;

  const LogicalKind kind;
};
using LogicalNodePtr = std::unique_ptr<LogicalNode>;

/// Leaf: FROM item `rel_idx` of the member (base table or subquery).
/// `filters` holds the single-relation conjuncts pushed onto this scan, in
/// original WHERE order.
struct LogicalScan : LogicalNode {
  explicit LogicalScan(size_t idx)
      : LogicalNode(LogicalKind::kScan), rel_idx(idx) {}
  size_t rel_idx;
  std::vector<const Expr*> filters;
};

/// Inner join of `left` with the scan `right`. `equi` holds `l = r`
/// conjuncts with one side over the left subtree and the other over the
/// incoming scan; `residual` holds the remaining conjuncts first evaluable
/// here. Both keep original WHERE order.
struct LogicalJoin : LogicalNode {
  LogicalJoin() : LogicalNode(LogicalKind::kJoin) {}
  LogicalNodePtr left;
  std::unique_ptr<LogicalScan> right;
  std::vector<const Expr*> equi;
  std::vector<const Expr*> residual;
};

/// Conjunctive filter over its child. The builder parks the member's whole
/// WHERE clause here; the optimizer drains conjuncts downward into scans
/// and joins, leaving only conjuncts over no relation (evaluated once per
/// execution) plus a provably-empty verdict when constant folding decided
/// the member cannot produce join rows.
struct LogicalFilter : LogicalNode {
  LogicalFilter() : LogicalNode(LogicalKind::kFilter) {}
  LogicalNodePtr child;  ///< join tree; null for a FROM-less member
  std::vector<const Expr*> conjuncts;
  bool provably_empty = false;
};

/// DISTINCT ON (pre-projection, first row per key) when `on_keys`, plain
/// post-projection DISTINCT otherwise.
struct LogicalDistinct : LogicalNode {
  explicit LogicalDistinct(bool on_keys)
      : LogicalNode(LogicalKind::kDistinct), on_keys(on_keys) {}
  LogicalNodePtr child;
  bool on_keys;
};

/// GROUP BY / global aggregation with optional HAVING (from the member's
/// statement).
struct LogicalAggregate : LogicalNode {
  LogicalAggregate() : LogicalNode(LogicalKind::kAggregate) {}
  LogicalNodePtr child;
};

/// Projection onto the member's output columns.
struct LogicalProject : LogicalNode {
  LogicalProject() : LogicalNode(LogicalKind::kProject) {}
  LogicalNodePtr child;
};

/// Top-level ORDER BY / LIMIT (always present as the plan root; a no-op
/// when the statement has neither).
struct LogicalOrder : LogicalNode {
  LogicalOrder() : LogicalNode(LogicalKind::kOrder) {}
  LogicalNodePtr child;
};

/// UNION chain combining the members left-associatively (dedup on plain
/// UNION links, concatenation on UNION ALL).
struct LogicalUnion : LogicalNode {
  LogicalUnion() : LogicalNode(LogicalKind::kUnion) {}
  std::vector<LogicalNodePtr> members;
};

/// One UNION member's tree plus its binding.
struct LogicalMember {
  const BoundQuery* bq = nullptr;
  /// Project-rooted chain: [Distinct] → Project → [Aggregate] →
  /// [DistinctOn] → Filter → join tree.
  LogicalNodePtr root;
};

/// The whole statement: Order over Union over the member trees. `bound` is
/// the head of the bound UNION chain and must outlive the plan.
struct LogicalPlan {
  const BoundQuery* bound = nullptr;
  std::vector<LogicalMember> members;
};

/// Builds the canonical (unoptimized) logical plan: per member a Filter
/// holding every WHERE conjunct over a left-deep FROM-order join tree with
/// empty scan filters, then the DISTINCT ON / aggregate / project /
/// DISTINCT tail the statement asks for.
Result<LogicalPlan> BuildLogicalPlan(const BoundQuery& bound);

/// Bitmask of FROM items referenced by `expr` (via its slot bindings in
/// `bq`). Shared by the optimizer's placement rules; 0 means the
/// expression touches no relation (a constant conjunct).
uint64_t RelationMask(const Expr& expr, const BoundQuery& bq);

/// Compact indented rendering of the logical tree (debugging aid; the
/// user-facing `\plan` output renders the physical plan).
std::string RenderLogicalPlan(const LogicalPlan& plan);

}  // namespace datalawyer

#endif  // DATALAWYER_PLAN_LOGICAL_H_
