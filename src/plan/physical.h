#ifndef DATALAWYER_PLAN_PHYSICAL_H_
#define DATALAWYER_PLAN_PHYSICAL_H_

#include <memory>
#include <string>
#include <vector>

#include "analysis/bound_query.h"
#include "common/result.h"
#include "common/value.h"
#include "sql/ast.h"
#include "storage/catalog_view.h"

namespace datalawyer {

struct PhysicalPlan;

/// A `column = constant` equality the scan may answer through a hash index.
/// The optimizer records every candidate; the interpreter probes each at
/// run time (index availability is a run-time property of the resolved
/// relation) and narrows the scan with the most selective answer. All scan
/// filters are still re-applied per emitted row, so probing only changes
/// the access path, never the result.
struct PhysicalProbe {
  size_t col = 0;  ///< column within the scanned relation
  Value value;     ///< constant to probe with (owned; folded at plan time)
  const Expr* conjunct = nullptr;  ///< originating conjunct (for explain)
};

/// A `column OP bound` range conjunct (OP in {<, <=, >, >=}, normalized so
/// the column sits on the left) the scan may answer through an ordered
/// index. The bound is either a plan-time constant or an expression over
/// relations already placed to the scan's left, evaluated per execution
/// against the accumulated intermediate — usable only when every left row
/// agrees on one bound value (the single-row clock relation of the
/// sliding-window policies always does). The originating conjunct is still
/// re-applied per emitted row, so probing only narrows the access path.
struct PhysicalRangeProbe {
  size_t col = 0;  ///< column within the scanned relation
  std::string op;  ///< "<", "<=", ">", ">=" with the column on the left
  bool has_const = false;
  Value value;  ///< plan-time constant bound when has_const
  /// Bound expression over already-placed relations when !has_const.
  const Expr* bound_expr = nullptr;
  const Expr* conjunct = nullptr;  ///< originating conjunct (for explain)
};

/// Access path the cost model picked for a scan. kUnknown (costing off or
/// no statistics) keeps the adaptive behavior: probe every candidate at
/// run time and let the smallest hit set win.
enum class AccessPath {
  kUnknown,
  kSeqScan,
  kHashProbe,
  kRangeScan,
};

/// Scan of one FROM item: IndexProbe when a candidate's index answers at
/// run time, SeqScan otherwise. Base relations are *re-resolved by table
/// name* on every execution — a cached plan outlives the per-query overlay
/// catalogs (log ∪ increment) it runs against, so the bound
/// BoundRelation::relation pointer must never be dereferenced here.
struct PhysicalScan {
  size_t rel_idx = 0;  ///< FROM index in the member's BoundQuery
  std::vector<const Expr*> filters;  ///< pushed-down conjuncts, WHERE order
  std::vector<PhysicalProbe> probes;
  std::vector<PhysicalRangeProbe> range_probes;
  /// Cost-model decision; kUnknown = decide adaptively at run time.
  AccessPath chosen_path = AccessPath::kUnknown;
  /// Estimated output cardinality after pushed filters; < 0 when the plan
  /// was built without trustworthy statistics (EXPLAIN omits it then).
  double est_rows = -1;
  /// Present for subquery FROM items: the subquery's own physical plan.
  std::unique_ptr<PhysicalPlan> subplan;
};

enum class JoinAlgo {
  kHashJoin,    ///< build on the incoming relation, probe with the left side
  kNestedLoop,  ///< cross product with residual filters
};

/// One step of the left-deep join fold: joins the accumulated left side
/// with the member's scans[i + 1].
struct PhysicalJoin {
  JoinAlgo algo = JoinAlgo::kNestedLoop;
  /// Parallel key sides for kHashJoin (left over the accumulated side,
  /// right over the incoming scan), plus the originating conjuncts for
  /// rendering.
  std::vector<const Expr*> left_keys;
  std::vector<const Expr*> right_keys;
  std::vector<const Expr*> equi_conjuncts;
  std::vector<const Expr*> residual;
  /// Estimated output cardinality; < 0 when built without statistics.
  double est_rows = -1;
};

/// One UNION member: the join pipeline plus the tail stages its BoundQuery
/// prescribes (DISTINCT ON → aggregate → project → DISTINCT).
struct PhysicalMember {
  const BoundQuery* bq = nullptr;

  /// Constant folding proved a WHERE conjunct false: the join phase yields
  /// no rows (the tail still runs — a global aggregate over empty input
  /// forms one group).
  bool provably_empty = false;
  /// Constant conjuncts kept for run-time evaluation (evaluated once per
  /// execution against an all-NULL row, exactly like the pre-plan
  /// executor), in WHERE order.
  std::vector<const Expr*> runtime_constants;

  /// Scans in execution order; empty for a FROM-less member. scans[0] is
  /// the base of the fold, joins[i] consumes scans[i + 1].
  std::vector<PhysicalScan> scans;
  std::vector<PhysicalJoin> joins;  ///< size scans.size() - 1 (or 0)

  /// scan_order[j] = FROM index executed j-th. When this is not the
  /// identity (the optimizer reordered joins), the interpreter tracks
  /// per-row scan-emission positions and re-sorts the joined rows into the
  /// order the FROM-order fold would have produced, keeping results
  /// byte-identical to the unoptimized path.
  std::vector<size_t> scan_order;
  bool restore_input_order = false;
};

/// An executable physical plan for one (possibly UNION-chained) bound
/// SELECT. References the BoundQuery chain and its AST; both must outlive
/// the plan. ORDER BY / LIMIT come from bound->stmt.
struct PhysicalPlan {
  const BoundQuery* bound = nullptr;
  std::vector<PhysicalMember> members;
};

/// Renders the plan in the executor's explain vocabulary (scan / hash join /
/// nested loop join / aggregate / distinct / project / sort / limit lines).
/// Base relations are resolved by name through `catalog` for live row
/// counts and index-probe decisions; pass the catalog the plan will run
/// against. Unresolvable relations render with "?" row counts and no probe.
std::string RenderPhysicalPlan(const PhysicalPlan& plan,
                               const CatalogView* catalog);

}  // namespace datalawyer

#endif  // DATALAWYER_PLAN_PHYSICAL_H_
