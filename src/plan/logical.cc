#include "plan/logical.h"

#include "common/strings.h"

namespace datalawyer {

uint64_t RelationMask(const Expr& expr, const BoundQuery& bq) {
  uint64_t mask = 0;
  expr.Visit([&](const Expr& e) {
    if (e.kind() != ExprKind::kColumnRef) return;
    auto it = bq.column_slots.find(&e);
    if (it == bq.column_slots.end()) return;
    size_t slot = it->second;
    for (size_t i = 0; i < bq.relations.size(); ++i) {
      size_t lo = bq.slot_offsets[i];
      size_t hi = lo + bq.relations[i].schema.NumColumns();
      if (slot >= lo && slot < hi) {
        mask |= uint64_t(1) << i;
        break;
      }
    }
  });
  return mask;
}

Result<LogicalPlan> BuildLogicalPlan(const BoundQuery& bound) {
  LogicalPlan plan;
  plan.bound = &bound;
  for (const BoundQuery* bq = &bound; bq != nullptr;
       bq = bq->union_next.get()) {
    if (bq->relations.size() > 64) {
      return Status::Unsupported("more than 64 FROM items");
    }
    LogicalMember member;
    member.bq = bq;

    // FROM-order left-deep join tree with unplaced conjuncts above it.
    auto filter = std::make_unique<LogicalFilter>();
    if (bq->stmt->where != nullptr) {
      filter->conjuncts = ConjunctPtrs(*bq->stmt->where);
    }
    if (!bq->relations.empty()) {
      LogicalNodePtr tree = std::make_unique<LogicalScan>(0);
      for (size_t i = 1; i < bq->relations.size(); ++i) {
        auto join = std::make_unique<LogicalJoin>();
        join->left = std::move(tree);
        join->right = std::make_unique<LogicalScan>(i);
        tree = std::move(join);
      }
      filter->child = std::move(tree);
    }

    LogicalNodePtr node = std::move(filter);
    if (!bq->stmt->distinct_on.empty()) {
      auto d = std::make_unique<LogicalDistinct>(/*on_keys=*/true);
      d->child = std::move(node);
      node = std::move(d);
    }
    if (bq->is_grouped) {
      auto agg = std::make_unique<LogicalAggregate>();
      agg->child = std::move(node);
      node = std::move(agg);
    }
    auto project = std::make_unique<LogicalProject>();
    project->child = std::move(node);
    node = std::move(project);
    if (bq->stmt->distinct) {
      auto d = std::make_unique<LogicalDistinct>(/*on_keys=*/false);
      d->child = std::move(node);
      node = std::move(d);
    }
    member.root = std::move(node);
    plan.members.push_back(std::move(member));
  }
  return plan;
}

namespace {

void RenderNode(const LogicalNode& node, const BoundQuery& bq, int depth,
                std::string* out) {
  std::string pad(size_t(depth) * 2, ' ');
  switch (node.kind) {
    case LogicalKind::kScan: {
      const auto& scan = static_cast<const LogicalScan&>(node);
      const BoundRelation& rel = bq.relations[scan.rel_idx];
      *out += pad + "Scan " +
              (rel.table_name.empty() ? "(subquery)" : rel.table_name) +
              " as " + rel.binding_name;
      if (!scan.filters.empty()) {
        std::vector<std::string> fs;
        for (const Expr* f : scan.filters) fs.push_back(f->ToString());
        *out += " filter " + Join(fs, " AND ");
      }
      *out += "\n";
      break;
    }
    case LogicalKind::kJoin: {
      const auto& join = static_cast<const LogicalJoin&>(node);
      std::vector<std::string> keys;
      for (const Expr* e : join.equi) keys.push_back(e->ToString());
      std::vector<std::string> residual;
      for (const Expr* e : join.residual) residual.push_back(e->ToString());
      *out += pad + "Join";
      if (!keys.empty()) *out += " on " + Join(keys, " AND ");
      if (!residual.empty()) *out += " residual " + Join(residual, " AND ");
      *out += "\n";
      RenderNode(*join.left, bq, depth + 1, out);
      RenderNode(*join.right, bq, depth + 1, out);
      break;
    }
    case LogicalKind::kFilter: {
      const auto& filter = static_cast<const LogicalFilter&>(node);
      std::vector<std::string> cs;
      for (const Expr* c : filter.conjuncts) cs.push_back(c->ToString());
      *out += pad + "Filter";
      if (filter.provably_empty) *out += " [provably empty]";
      if (!cs.empty()) *out += " " + Join(cs, " AND ");
      *out += "\n";
      if (filter.child != nullptr) {
        RenderNode(*filter.child, bq, depth + 1, out);
      } else {
        *out += pad + "  ConstantRow\n";
      }
      break;
    }
    case LogicalKind::kDistinct: {
      const auto& d = static_cast<const LogicalDistinct&>(node);
      *out += pad + (d.on_keys ? "DistinctOn" : "Distinct");
      *out += "\n";
      RenderNode(*d.child, bq, depth + 1, out);
      break;
    }
    case LogicalKind::kAggregate: {
      const auto& agg = static_cast<const LogicalAggregate&>(node);
      *out += pad + "Aggregate [" +
              std::to_string(bq.stmt->group_by.size()) + " group keys, " +
              std::to_string(bq.aggregates.size()) + " aggregates]\n";
      RenderNode(*agg.child, bq, depth + 1, out);
      break;
    }
    case LogicalKind::kProject: {
      const auto& p = static_cast<const LogicalProject&>(node);
      *out += pad + "Project " + std::to_string(bq.output_columns.size()) +
              " columns\n";
      RenderNode(*p.child, bq, depth + 1, out);
      break;
    }
    case LogicalKind::kOrder:
    case LogicalKind::kUnion:
      break;  // rendered at plan level
  }
}

}  // namespace

std::string RenderLogicalPlan(const LogicalPlan& plan) {
  std::string out;
  const SelectStmt* top = plan.bound->stmt;
  if (!top->order_by.empty() || top->limit.has_value()) {
    out += "Order";
    if (!top->order_by.empty()) {
      out += " [" + std::to_string(top->order_by.size()) + " keys]";
    }
    if (top->limit.has_value()) {
      out += " limit " + std::to_string(*top->limit);
    }
    out += "\n";
  }
  const BoundQuery* prev = nullptr;
  for (const LogicalMember& member : plan.members) {
    if (prev != nullptr) {
      out += prev->stmt->union_all ? "UNION ALL\n" : "UNION\n";
    }
    RenderNode(*member.root, *member.bq, plan.members.size() > 1 ? 1 : 0,
               &out);
    prev = member.bq;
  }
  return out;
}

}  // namespace datalawyer
