#include "plan/optimizer.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>

#include "analysis/eval.h"
#include "analysis/join_graph.h"
#include "common/trace.h"
#include "plan/stats.h"

namespace datalawyer {

namespace {

/// If `conjunct` is `lhs = rhs` with one side over relations in `left_mask`
/// only and the other over `right_mask` only, returns the (left, right)
/// expression pair.
bool AsEquiJoin(const Expr& conjunct, const BoundQuery& bq, uint64_t left_mask,
                uint64_t right_mask, const Expr** left_side,
                const Expr** right_side) {
  if (conjunct.kind() != ExprKind::kBinary) return false;
  const auto& b = static_cast<const BinaryExpr&>(conjunct);
  if (b.op != "=") return false;
  uint64_t lm = RelationMask(*b.lhs, bq);
  uint64_t rm = RelationMask(*b.rhs, bq);
  if (lm != 0 && rm != 0 && (lm & ~left_mask) == 0 && (rm & ~right_mask) == 0) {
    *left_side = b.lhs.get();
    *right_side = b.rhs.get();
    return true;
  }
  if (lm != 0 && rm != 0 && (rm & ~left_mask) == 0 && (lm & ~right_mask) == 0) {
    *left_side = b.rhs.get();
    *right_side = b.lhs.get();
    return true;
  }
  return false;
}

/// True for the comparison operators an ordered index can serve.
bool IsRangeOp(const std::string& op) {
  return op == "<" || op == "<=" || op == ">" || op == ">=";
}

/// Mirrors a comparison across its operands: `c OP col` ≡ `col FLIP(OP) c`.
std::string FlipRangeOp(const std::string& op) {
  if (op == "<") return ">";
  if (op == "<=") return ">=";
  if (op == ">") return "<";
  return "<=";
}

/// If `e` is a column reference into relation `rel_idx`, returns its column
/// index within that relation's schema; -1 otherwise.
int ScanColumnOf(const Expr& e, const BoundQuery& bq, size_t rel_idx) {
  if (e.kind() != ExprKind::kColumnRef) return -1;
  auto it = bq.column_slots.find(&e);
  if (it == bq.column_slots.end()) return -1;
  size_t offset = bq.slot_offsets[rel_idx];
  size_t width = bq.relations[rel_idx].schema.NumColumns();
  if (it->second < offset || it->second >= offset + width) return -1;
  return int(it->second - offset);
}

/// Plan-time constant bound of `e`: the literal value, or — under the
/// optimizer — the folded value of a relation-free, aggregate-free
/// expression. Returns false when the bound is not a plan-time constant.
bool FoldConstBound(const Expr& e, const BoundQuery& bq, bool enable_optimizer,
                    Value* out) {
  if (e.kind() == ExprKind::kLiteral) {
    *out = static_cast<const LiteralExpr&>(e).value;
    return true;
  }
  if (!enable_optimizer || RelationMask(e, bq) != 0 || ContainsAggregate(e)) {
    return false;
  }
  Row null_row(bq.total_slots, Value::Null());
  EvalContext ctx{&bq, &null_row, nullptr};
  Result<Value> v = Eval(e, ctx);
  if (!v.ok()) return false;
  *out = std::move(v).value();
  return true;
}

/// Plan-time evaluation of a bound expression whose every referenced
/// relation holds exactly one row (the clock, Constants): fills those
/// slots from the single rows and evaluates. Used only for cardinality
/// estimation — the run-time probe re-evaluates against the live rows.
bool EvalSingleRowBound(const Expr& e, const BoundQuery& bq, Value* out) {
  uint64_t mask = RelationMask(e, bq);
  if (mask == 0 || ContainsAggregate(e)) return false;
  Row row(bq.total_slots, Value::Null());
  for (size_t i = 0; i < bq.relations.size(); ++i) {
    if ((mask & (uint64_t(1) << i)) == 0) continue;
    const RelationData* rel = bq.relations[i].relation;
    if (rel == nullptr || rel->NumRows() != 1) return false;
    const Row& src = rel->RowAt(0);
    size_t offset = bq.slot_offsets[i];
    size_t width = bq.relations[i].schema.NumColumns();
    for (size_t c = 0; c < width && c < src.size(); ++c) {
      row[offset + c] = src[c];
    }
  }
  EvalContext ctx{&bq, &row, nullptr};
  Result<Value> v = Eval(e, ctx);
  if (!v.ok()) return false;
  *out = std::move(v).value();
  return true;
}

/// Estimated selectivity of a single-relation conjunct against relation
/// `rel_idx`, from its TableStats when present and the System-R defaults
/// otherwise. Conservative: anything unrecognized estimates as a generic
/// range predicate.
double EstimateConjunctSelectivity(const Expr& conjunct, const BoundQuery& bq,
                                   size_t rel_idx, const TableStats* stats,
                                   bool enable_optimizer) {
  if (conjunct.kind() != ExprKind::kBinary) return kDefaultRangeSelectivity;
  const auto& b = static_cast<const BinaryExpr&>(conjunct);
  if (b.op == "!=" || b.op == "<>") return kDefaultNeqSelectivity;
  if (b.op != "=" && !IsRangeOp(b.op)) return kDefaultRangeSelectivity;
  for (int flip = 0; flip < 2; ++flip) {
    const Expr* col_side = flip == 0 ? b.lhs.get() : b.rhs.get();
    const Expr* val_side = flip == 0 ? b.rhs.get() : b.lhs.get();
    int col = ScanColumnOf(*col_side, bq, rel_idx);
    if (col < 0) continue;
    if (b.op == "=") return EstimateEqSelectivity(stats, size_t(col));
    std::string op = flip == 0 ? b.op : FlipRangeOp(b.op);
    Value bound;
    bool have_bound = FoldConstBound(*val_side, bq, enable_optimizer, &bound) ||
                      EvalSingleRowBound(*val_side, bq, &bound);
    return EstimateRangeSelectivity(stats, size_t(col), op,
                                    have_bound ? &bound : nullptr);
  }
  return b.op == "=" ? kDefaultEqSelectivity : kDefaultRangeSelectivity;
}

/// Descends a member's tail chain to its Filter node.
LogicalFilter* FilterOf(LogicalNode* node) {
  while (node != nullptr) {
    switch (node->kind) {
      case LogicalKind::kFilter:
        return static_cast<LogicalFilter*>(node);
      case LogicalKind::kProject:
        node = static_cast<LogicalProject*>(node)->child.get();
        break;
      case LogicalKind::kAggregate:
        node = static_cast<LogicalAggregate*>(node)->child.get();
        break;
      case LogicalKind::kDistinct:
        node = static_cast<LogicalDistinct*>(node)->child.get();
        break;
      default:
        return nullptr;
    }
  }
  return nullptr;
}

/// Flattens a left-deep join tree into execution order: scans[j] is the
/// j-th relation scanned, joins[j - 1] the join consuming scans[j].
void CollectTree(LogicalNode* node, std::vector<LogicalScan*>* scans,
                 std::vector<LogicalJoin*>* joins) {
  if (node == nullptr) return;
  if (node->kind == LogicalKind::kScan) {
    scans->push_back(static_cast<LogicalScan*>(node));
    return;
  }
  auto* join = static_cast<LogicalJoin*>(node);
  CollectTree(join->left.get(), scans, joins);
  joins->push_back(join);
  scans->push_back(join->right.get());
}

/// Greedy join order: start with the smallest relation, then repeatedly
/// take the smallest relation equi-connected (per JoinGraph) to the placed
/// set, falling back to the smallest remaining one when nothing connects.
/// "Smallest" means raw NumRows under the heuristic planner; under
/// stats-based costing it is the estimated cardinality after the
/// relation's own pushable conjuncts (selectivities from TableStats).
/// Ties break toward the original FROM position, so equal-sized relations
/// (the common case for policy plans built over an empty log) keep their
/// written order.
std::vector<size_t> ChooseJoinOrder(const BoundQuery& bq,
                                    const std::vector<const Expr*>& conjuncts,
                                    const PlannerOptions& options) {
  size_t n = bq.relations.size();
  std::vector<double> est(n);
  for (size_t i = 0; i < n; ++i) {
    est[i] = bq.relations[i].relation != nullptr
                 ? double(bq.relations[i].relation->NumRows())
                 : std::numeric_limits<double>::infinity();
  }
  if (options.enable_stats_costing) {
    for (size_t i = 0; i < n; ++i) {
      const RelationData* rel = bq.relations[i].relation;
      if (rel == nullptr) continue;
      const TableStats* stats = rel->Stats();
      uint64_t rel_bit = uint64_t(1) << i;
      for (const Expr* c : conjuncts) {
        if (RelationMask(*c, bq) != rel_bit) continue;
        est[i] *= EstimateConjunctSelectivity(*c, bq, i, stats,
                                              options.enable_optimizer);
      }
    }
  }

  std::vector<std::vector<bool>> conn(n, std::vector<bool>(n, false));
  JoinGraph graph = JoinGraph::Build(*bq.stmt);
  for (const auto& cls : graph.Classes()) {
    std::vector<size_t> rels;
    for (const QualifiedColumn& col : cls) {
      int idx = bq.FindRelation(col.qualifier);
      if (idx >= 0) rels.push_back(size_t(idx));
    }
    for (size_t a : rels) {
      for (size_t b : rels) {
        if (a != b) conn[a][b] = true;
      }
    }
  }

  std::vector<bool> placed(n, false);
  std::vector<size_t> order;
  order.reserve(n);
  auto pick = [&](bool require_connected) -> int {
    int best = -1;
    for (size_t i = 0; i < n; ++i) {
      if (placed[i]) continue;
      if (require_connected) {
        bool connected = false;
        for (size_t j : order) connected = connected || conn[i][j];
        // Under costing, an (estimated) at-most-one-row relation may jump
        // the connectivity queue: its cross join is free, and placing it
        // early can hand later scans a computable range bound — the clock
        // in every sliding-window policy is exactly this shape.
        bool tiny = options.enable_stats_costing && est[i] <= 1.5;
        if (!connected && !tiny) continue;
      }
      if (best < 0 || est[i] < est[size_t(best)]) best = int(i);
    }
    return best;
  };
  while (order.size() < n) {
    int next = order.empty() ? pick(false) : pick(true);
    if (next < 0) next = pick(false);
    placed[size_t(next)] = true;
    order.push_back(size_t(next));
  }
  return order;
}

}  // namespace

bool OptimizerDisabledByEnv() {
  static const bool disabled = [] {
    const char* v = std::getenv("DL_DISABLE_OPTIMIZER");
    return v != nullptr && v[0] != '\0' && std::string(v) != "0";
  }();
  return disabled;
}

bool StatsCostingDisabledByEnv() {
  static const bool disabled = [] {
    const char* v = std::getenv("DL_DISABLE_STATS_COSTING");
    return v != nullptr && v[0] != '\0' && std::string(v) != "0";
  }();
  return disabled;
}

Planner::Planner(PlannerOptions options) : options_(options) {
  if (OptimizerDisabledByEnv()) options_.enable_optimizer = false;
  if (StatsCostingDisabledByEnv() || !options_.enable_optimizer) {
    options_.enable_stats_costing = false;
  }
}

Result<LogicalPlan> Planner::PlanLogical(const BoundQuery& bound) const {
  DL_ASSIGN_OR_RETURN(LogicalPlan plan, BuildLogicalPlan(bound));
  for (LogicalMember& member : plan.members) {
    DL_RETURN_NOT_OK(OptimizeMember(&member));
  }
  return plan;
}

Result<PhysicalPlan> Planner::Plan(const BoundQuery& bound) const {
  DL_TRACE_SPAN("planning", "plan");
  DL_ASSIGN_OR_RETURN(LogicalPlan logical, PlanLogical(bound));
  PhysicalPlan plan;
  plan.bound = &bound;
  plan.members.reserve(logical.members.size());
  for (const LogicalMember& member : logical.members) {
    DL_ASSIGN_OR_RETURN(PhysicalMember pm, Physicalize(member));
    plan.members.push_back(std::move(pm));
  }
  return plan;
}

Status Planner::OptimizeMember(LogicalMember* member) const {
  const BoundQuery& bq = *member->bq;
  LogicalFilter* filter = FilterOf(member->root.get());
  if (filter == nullptr) return Status::Internal("member without filter node");

  // Rule 1: constant folding. Constant conjuncts (no column refs) are
  // evaluated over an all-NULL row exactly as the run-time fold would.
  // Conjuncts past a folded-FALSE one were unreachable in the original
  // executor (it returned at the first FALSE), so they are dropped without
  // evaluation.
  {
    std::vector<const Expr*> kept;
    kept.reserve(filter->conjuncts.size());
    Row null_row(bq.total_slots, Value::Null());
    EvalContext ctx{&bq, &null_row, nullptr};
    for (const Expr* c : filter->conjuncts) {
      if (RelationMask(*c, bq) != 0) {
        kept.push_back(c);
        continue;
      }
      if (!options_.enable_optimizer) {
        kept.push_back(c);
        continue;
      }
      if (filter->provably_empty) continue;  // unreachable past a FALSE
      Result<bool> keep = EvalPredicate(*c, ctx);
      if (!keep.ok()) {
        kept.push_back(c);  // defer the evaluation error to run time
      } else if (!keep.value()) {
        filter->provably_empty = true;
      }
      // TRUE: the conjunct disappears.
    }
    filter->conjuncts = std::move(kept);
  }

  // Rule 2: join reordering. The tree is still pristine (no pushdown yet),
  // so reordering rebuilds the left-deep scan spine.
  if (options_.enable_optimizer && bq.relations.size() >= 2 &&
      filter->child != nullptr) {
    std::vector<size_t> order =
        ChooseJoinOrder(bq, filter->conjuncts, options_);
    bool identity = true;
    for (size_t j = 0; j < order.size(); ++j) identity &= order[j] == j;
    if (!identity) {
      LogicalNodePtr tree = std::make_unique<LogicalScan>(order[0]);
      for (size_t j = 1; j < order.size(); ++j) {
        auto join = std::make_unique<LogicalJoin>();
        join->left = std::move(tree);
        join->right = std::make_unique<LogicalScan>(order[j]);
        tree = std::move(join);
      }
      filter->child = std::move(tree);
    }
  }

  // Rules 3 + 4: predicate pushdown and equality-conjunct extraction, over
  // the (possibly reordered) spine. Constant conjuncts stay in the filter
  // for once-per-execution evaluation.
  std::vector<LogicalScan*> scans;
  std::vector<LogicalJoin*> joins;
  CollectTree(filter->child.get(), &scans, &joins);

  std::vector<const Expr*> remaining = std::move(filter->conjuncts);
  filter->conjuncts.clear();
  std::vector<bool> applied(remaining.size(), false);
  for (size_t i = 0; i < remaining.size(); ++i) {
    if (RelationMask(*remaining[i], bq) == 0) {
      filter->conjuncts.push_back(remaining[i]);
      applied[i] = true;
    }
  }

  uint64_t placed_mask = 0;
  for (size_t j = 0; j < scans.size(); ++j) {
    LogicalScan* scan = scans[j];
    uint64_t rel_bit = uint64_t(1) << scan->rel_idx;
    for (size_t i = 0; i < remaining.size(); ++i) {
      if (!applied[i] && RelationMask(*remaining[i], bq) == rel_bit) {
        scan->filters.push_back(remaining[i]);
        applied[i] = true;
      }
    }
    if (j > 0) {
      LogicalJoin* join = joins[j - 1];
      for (size_t i = 0; i < remaining.size(); ++i) {
        if (applied[i]) continue;
        uint64_t mask = RelationMask(*remaining[i], bq);
        if ((mask & ~(placed_mask | rel_bit)) != 0) continue;  // not yet
        const Expr* ls = nullptr;
        const Expr* rs = nullptr;
        if ((mask & rel_bit) != 0 &&
            AsEquiJoin(*remaining[i], bq, placed_mask, rel_bit, &ls, &rs)) {
          join->equi.push_back(remaining[i]);
        } else {
          join->residual.push_back(remaining[i]);
        }
        applied[i] = true;
      }
    }
    placed_mask |= rel_bit;
  }
  return Status::OK();
}

Result<PhysicalMember> Planner::Physicalize(const LogicalMember& member) const {
  const BoundQuery& bq = *member.bq;
  LogicalFilter* filter = FilterOf(member.root.get());
  if (filter == nullptr) return Status::Internal("member without filter node");
  std::vector<LogicalScan*> scans;
  std::vector<LogicalJoin*> joins;
  CollectTree(filter->child.get(), &scans, &joins);

  PhysicalMember pm;
  pm.bq = &bq;
  pm.provably_empty = filter->provably_empty;
  pm.runtime_constants = filter->conjuncts;

  Row null_row(bq.total_slots, Value::Null());
  EvalContext const_ctx{&bq, &null_row, nullptr};

  uint64_t placed_mask = 0;
  double left_est = -1;  ///< estimated rows of the accumulated left side
  for (size_t j = 0; j < scans.size(); ++j) {
    const LogicalScan* scan = scans[j];
    const BoundRelation& rel = bq.relations[scan->rel_idx];
    uint64_t rel_bit = uint64_t(1) << scan->rel_idx;

    PhysicalScan ps;
    ps.rel_idx = scan->rel_idx;
    ps.filters = scan->filters;
    if (rel.subquery != nullptr) {
      DL_ASSIGN_OR_RETURN(PhysicalPlan sub, Plan(*rel.subquery));
      ps.subplan = std::make_unique<PhysicalPlan>(std::move(sub));
    } else {
      // Rule 5: index-probe candidates from the pushed-down equalities.
      // Literals always qualify; under the optimizer, any constant
      // (relation-free, aggregate-free) side is folded at plan time. A
      // fold error just skips the candidate — the conjunct remains a scan
      // filter and fails at run time exactly as before.
      size_t offset = bq.slot_offsets[scan->rel_idx];
      size_t width = rel.schema.NumColumns();
      for (const Expr* p : ps.filters) {
        if (p->kind() != ExprKind::kBinary) continue;
        const auto& b = static_cast<const BinaryExpr&>(*p);
        if (b.op != "=") continue;
        for (int flip = 0; flip < 2; ++flip) {
          const Expr* col_side = flip == 0 ? b.lhs.get() : b.rhs.get();
          const Expr* val_side = flip == 0 ? b.rhs.get() : b.lhs.get();
          if (col_side->kind() != ExprKind::kColumnRef) continue;
          auto it = bq.column_slots.find(col_side);
          if (it == bq.column_slots.end()) continue;
          if (it->second < offset || it->second >= offset + width) continue;
          PhysicalProbe probe;
          probe.col = it->second - offset;
          probe.conjunct = p;
          if (val_side->kind() == ExprKind::kLiteral) {
            probe.value = static_cast<const LiteralExpr&>(*val_side).value;
          } else if (options_.enable_optimizer &&
                     RelationMask(*val_side, bq) == 0 &&
                     !ContainsAggregate(*val_side)) {
            Result<Value> v = Eval(*val_side, const_ctx);
            if (!v.ok()) continue;
            probe.value = std::move(v).value();
          } else {
            continue;
          }
          ps.probes.push_back(std::move(probe));
          break;  // at most one candidate per conjunct
        }
      }

      // Rule 6a: range-probe candidates from pushed-down comparisons with
      // a plan-time-constant bound. Gated on the optimizer so the naive
      // baseline stays exactly the original executor (which never probed
      // ranges); the conjunct remains a re-applied scan filter either way.
      if (options_.enable_optimizer) {
        for (const Expr* p : ps.filters) {
          if (p->kind() != ExprKind::kBinary) continue;
          const auto& b = static_cast<const BinaryExpr&>(*p);
          if (!IsRangeOp(b.op)) continue;
          for (int flip = 0; flip < 2; ++flip) {
            const Expr* col_side = flip == 0 ? b.lhs.get() : b.rhs.get();
            const Expr* val_side = flip == 0 ? b.rhs.get() : b.lhs.get();
            int col = ScanColumnOf(*col_side, bq, scan->rel_idx);
            if (col < 0) continue;
            PhysicalRangeProbe probe;
            probe.col = size_t(col);
            probe.op = flip == 0 ? b.op : FlipRangeOp(b.op);
            probe.conjunct = p;
            if (!FoldConstBound(*val_side, bq, options_.enable_optimizer,
                                &probe.value)) {
              continue;
            }
            probe.has_const = true;
            ps.range_probes.push_back(std::move(probe));
            break;  // at most one candidate per conjunct
          }
        }
      }
    }

    PhysicalJoin pj;
    if (j > 0) {
      const LogicalJoin* join = joins[j - 1];
      pj.residual = join->residual;
      pj.equi_conjuncts = join->equi;
      if (!join->equi.empty()) {
        pj.algo = JoinAlgo::kHashJoin;
        for (const Expr* e : join->equi) {
          const Expr* ls = nullptr;
          const Expr* rs = nullptr;
          if (!AsEquiJoin(*e, bq, placed_mask, rel_bit, &ls, &rs)) {
            return Status::Internal("equi-join classification changed");
          }
          pj.left_keys.push_back(ls);
          pj.right_keys.push_back(rs);
        }
      }

      // Rule 6b: range-probe candidates from residual comparisons that
      // bound a column of this scan by an expression over already-placed
      // relations — the sliding-window shape `p.ts > c.ts - w` with the
      // single-row clock to the left. The bound is evaluated per execution
      // against the accumulated left side; the conjunct stays a residual
      // filter, so the probe only narrows the access path.
      if (options_.enable_optimizer && rel.subquery == nullptr) {
        for (const Expr* r : pj.residual) {
          if (r->kind() != ExprKind::kBinary) continue;
          const auto& b = static_cast<const BinaryExpr&>(*r);
          if (!IsRangeOp(b.op)) continue;
          for (int flip = 0; flip < 2; ++flip) {
            const Expr* col_side = flip == 0 ? b.lhs.get() : b.rhs.get();
            const Expr* val_side = flip == 0 ? b.rhs.get() : b.lhs.get();
            int col = ScanColumnOf(*col_side, bq, scan->rel_idx);
            if (col < 0) continue;
            uint64_t bound_mask = RelationMask(*val_side, bq);
            if (bound_mask == 0 || (bound_mask & ~placed_mask) != 0 ||
                ContainsAggregate(*val_side)) {
              continue;
            }
            PhysicalRangeProbe probe;
            probe.col = size_t(col);
            probe.op = flip == 0 ? b.op : FlipRangeOp(b.op);
            probe.bound_expr = val_side;
            probe.conjunct = r;
            ps.range_probes.push_back(std::move(probe));
            break;  // at most one candidate per conjunct
          }
        }
      }
    }

    // Rule 7: cost-based access path and cardinality estimates, only when
    // the plan-time relation carries maintained statistics (otherwise the
    // run-time adaptive probing is kept and EXPLAIN shows no estimates).
    const RelationData* rel_data =
        rel.subquery == nullptr ? rel.relation : nullptr;
    const TableStats* stats = rel_data != nullptr ? rel_data->Stats() : nullptr;
    if (options_.enable_stats_costing && stats != nullptr) {
      double base_rows = double(rel_data->NumRows());

      // Bound of a range probe as far as plan time can see it: the folded
      // constant, or the value under single-row left relations (clock).
      auto probe_bound = [&](const PhysicalRangeProbe& probe, Value* out) {
        if (probe.has_const) {
          *out = probe.value;
          return true;
        }
        return EvalSingleRowBound(*probe.bound_expr, bq, out);
      };

      double sel_all = 1.0;
      for (const Expr* f : ps.filters) {
        sel_all *= EstimateConjunctSelectivity(*f, bq, ps.rel_idx, stats,
                                               options_.enable_optimizer);
      }
      ps.est_rows = base_rows * sel_all;

      double seq_cost = base_rows;
      double hash_cost = std::numeric_limits<double>::infinity();
      for (const PhysicalProbe& probe : ps.probes) {
        if (!rel_data->HasHashIndex(probe.col)) continue;
        hash_cost = std::min(
            hash_cost,
            1.0 + base_rows * EstimateEqSelectivity(stats, probe.col));
      }
      double range_cost = std::numeric_limits<double>::infinity();
      for (const PhysicalRangeProbe& probe : ps.range_probes) {
        if (!rel_data->HasOrderedIndex(probe.col)) continue;
        // Combine every range probe on the same column (BETWEEN is two).
        double sel = 1.0;
        for (const PhysicalRangeProbe& other : ps.range_probes) {
          if (other.col != probe.col) continue;
          Value bound;
          bool have = probe_bound(other, &bound);
          sel *= EstimateRangeSelectivity(stats, other.col, other.op,
                                          have ? &bound : nullptr);
        }
        range_cost =
            std::min(range_cost, std::log2(std::max(base_rows, 2.0)) +
                                     base_rows * sel);
      }
      if (seq_cost <= hash_cost && seq_cost <= range_cost) {
        ps.chosen_path = AccessPath::kSeqScan;
      } else if (hash_cost <= range_cost) {
        ps.chosen_path = AccessPath::kHashProbe;
      } else {
        ps.chosen_path = AccessPath::kRangeScan;
      }

      // Join-output estimate: |L ⋈ R| ≈ |L|·|R| / Π ndv(right key), then
      // the residual conjuncts' selectivities (range residuals estimated
      // like pushed ranges, anything else by the default).
      if (j > 0 && left_est >= 0) {
        double est = left_est * ps.est_rows;
        for (const Expr* rs : pj.right_keys) {
          int col = ScanColumnOf(*rs, bq, ps.rel_idx);
          double ndv = col >= 0
                           ? EstimateColumnNdv(stats, size_t(col), base_rows)
                           : std::max(1.0, std::min(base_rows, 10.0));
          est /= std::max(1.0, ndv);
        }
        for (const Expr* r : pj.residual) {
          est *= EstimateConjunctSelectivity(*r, bq, ps.rel_idx, stats,
                                             options_.enable_optimizer);
        }
        pj.est_rows = est;
        left_est = est;
      } else if (j == 0) {
        left_est = ps.est_rows;
      } else {
        left_est = -1;
      }
    } else {
      left_est = -1;
    }

    if (j > 0) pm.joins.push_back(std::move(pj));
    pm.scans.push_back(std::move(ps));
    pm.scan_order.push_back(scan->rel_idx);
    placed_mask |= rel_bit;
  }

  pm.restore_input_order = false;
  for (size_t j = 0; j < pm.scan_order.size(); ++j) {
    if (pm.scan_order[j] != j) pm.restore_input_order = true;
  }
  return pm;
}

}  // namespace datalawyer
