#include "plan/optimizer.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <string>

#include "analysis/eval.h"
#include "analysis/join_graph.h"
#include "common/trace.h"

namespace datalawyer {

namespace {

/// If `conjunct` is `lhs = rhs` with one side over relations in `left_mask`
/// only and the other over `right_mask` only, returns the (left, right)
/// expression pair.
bool AsEquiJoin(const Expr& conjunct, const BoundQuery& bq, uint64_t left_mask,
                uint64_t right_mask, const Expr** left_side,
                const Expr** right_side) {
  if (conjunct.kind() != ExprKind::kBinary) return false;
  const auto& b = static_cast<const BinaryExpr&>(conjunct);
  if (b.op != "=") return false;
  uint64_t lm = RelationMask(*b.lhs, bq);
  uint64_t rm = RelationMask(*b.rhs, bq);
  if (lm != 0 && rm != 0 && (lm & ~left_mask) == 0 && (rm & ~right_mask) == 0) {
    *left_side = b.lhs.get();
    *right_side = b.rhs.get();
    return true;
  }
  if (lm != 0 && rm != 0 && (rm & ~left_mask) == 0 && (lm & ~right_mask) == 0) {
    *left_side = b.rhs.get();
    *right_side = b.lhs.get();
    return true;
  }
  return false;
}

/// Descends a member's tail chain to its Filter node.
LogicalFilter* FilterOf(LogicalNode* node) {
  while (node != nullptr) {
    switch (node->kind) {
      case LogicalKind::kFilter:
        return static_cast<LogicalFilter*>(node);
      case LogicalKind::kProject:
        node = static_cast<LogicalProject*>(node)->child.get();
        break;
      case LogicalKind::kAggregate:
        node = static_cast<LogicalAggregate*>(node)->child.get();
        break;
      case LogicalKind::kDistinct:
        node = static_cast<LogicalDistinct*>(node)->child.get();
        break;
      default:
        return nullptr;
    }
  }
  return nullptr;
}

/// Flattens a left-deep join tree into execution order: scans[j] is the
/// j-th relation scanned, joins[j - 1] the join consuming scans[j].
void CollectTree(LogicalNode* node, std::vector<LogicalScan*>* scans,
                 std::vector<LogicalJoin*>* joins) {
  if (node == nullptr) return;
  if (node->kind == LogicalKind::kScan) {
    scans->push_back(static_cast<LogicalScan*>(node));
    return;
  }
  auto* join = static_cast<LogicalJoin*>(node);
  CollectTree(join->left.get(), scans, joins);
  joins->push_back(join);
  scans->push_back(join->right.get());
}

/// Greedy join order: start with the smallest relation, then repeatedly
/// take the smallest relation equi-connected (per JoinGraph) to the placed
/// set, falling back to the smallest remaining one when nothing connects.
/// Ties break toward the original FROM position, so equal-sized relations
/// (the common case for policy plans built over an empty log) keep their
/// written order.
std::vector<size_t> ChooseJoinOrder(const BoundQuery& bq) {
  size_t n = bq.relations.size();
  std::vector<size_t> est(n);
  for (size_t i = 0; i < n; ++i) {
    est[i] = bq.relations[i].relation != nullptr
                 ? bq.relations[i].relation->NumRows()
                 : std::numeric_limits<size_t>::max();
  }

  std::vector<std::vector<bool>> conn(n, std::vector<bool>(n, false));
  JoinGraph graph = JoinGraph::Build(*bq.stmt);
  for (const auto& cls : graph.Classes()) {
    std::vector<size_t> rels;
    for (const QualifiedColumn& col : cls) {
      int idx = bq.FindRelation(col.qualifier);
      if (idx >= 0) rels.push_back(size_t(idx));
    }
    for (size_t a : rels) {
      for (size_t b : rels) {
        if (a != b) conn[a][b] = true;
      }
    }
  }

  std::vector<bool> placed(n, false);
  std::vector<size_t> order;
  order.reserve(n);
  auto pick = [&](bool require_connected) -> int {
    int best = -1;
    for (size_t i = 0; i < n; ++i) {
      if (placed[i]) continue;
      if (require_connected) {
        bool connected = false;
        for (size_t j : order) connected = connected || conn[i][j];
        if (!connected) continue;
      }
      if (best < 0 || est[i] < est[size_t(best)]) best = int(i);
    }
    return best;
  };
  while (order.size() < n) {
    int next = order.empty() ? pick(false) : pick(true);
    if (next < 0) next = pick(false);
    placed[size_t(next)] = true;
    order.push_back(size_t(next));
  }
  return order;
}

}  // namespace

bool OptimizerDisabledByEnv() {
  static const bool disabled = [] {
    const char* v = std::getenv("DL_DISABLE_OPTIMIZER");
    return v != nullptr && v[0] != '\0' && std::string(v) != "0";
  }();
  return disabled;
}

Planner::Planner(PlannerOptions options) : options_(options) {
  if (OptimizerDisabledByEnv()) options_.enable_optimizer = false;
}

Result<LogicalPlan> Planner::PlanLogical(const BoundQuery& bound) const {
  DL_ASSIGN_OR_RETURN(LogicalPlan plan, BuildLogicalPlan(bound));
  for (LogicalMember& member : plan.members) {
    DL_RETURN_NOT_OK(OptimizeMember(&member));
  }
  return plan;
}

Result<PhysicalPlan> Planner::Plan(const BoundQuery& bound) const {
  DL_TRACE_SPAN("planning", "plan");
  DL_ASSIGN_OR_RETURN(LogicalPlan logical, PlanLogical(bound));
  PhysicalPlan plan;
  plan.bound = &bound;
  plan.members.reserve(logical.members.size());
  for (const LogicalMember& member : logical.members) {
    DL_ASSIGN_OR_RETURN(PhysicalMember pm, Physicalize(member));
    plan.members.push_back(std::move(pm));
  }
  return plan;
}

Status Planner::OptimizeMember(LogicalMember* member) const {
  const BoundQuery& bq = *member->bq;
  LogicalFilter* filter = FilterOf(member->root.get());
  if (filter == nullptr) return Status::Internal("member without filter node");

  // Rule 1: constant folding. Constant conjuncts (no column refs) are
  // evaluated over an all-NULL row exactly as the run-time fold would.
  // Conjuncts past a folded-FALSE one were unreachable in the original
  // executor (it returned at the first FALSE), so they are dropped without
  // evaluation.
  {
    std::vector<const Expr*> kept;
    kept.reserve(filter->conjuncts.size());
    Row null_row(bq.total_slots, Value::Null());
    EvalContext ctx{&bq, &null_row, nullptr};
    for (const Expr* c : filter->conjuncts) {
      if (RelationMask(*c, bq) != 0) {
        kept.push_back(c);
        continue;
      }
      if (!options_.enable_optimizer) {
        kept.push_back(c);
        continue;
      }
      if (filter->provably_empty) continue;  // unreachable past a FALSE
      Result<bool> keep = EvalPredicate(*c, ctx);
      if (!keep.ok()) {
        kept.push_back(c);  // defer the evaluation error to run time
      } else if (!keep.value()) {
        filter->provably_empty = true;
      }
      // TRUE: the conjunct disappears.
    }
    filter->conjuncts = std::move(kept);
  }

  // Rule 2: join reordering. The tree is still pristine (no pushdown yet),
  // so reordering rebuilds the left-deep scan spine.
  if (options_.enable_optimizer && bq.relations.size() >= 2 &&
      filter->child != nullptr) {
    std::vector<size_t> order = ChooseJoinOrder(bq);
    bool identity = true;
    for (size_t j = 0; j < order.size(); ++j) identity &= order[j] == j;
    if (!identity) {
      LogicalNodePtr tree = std::make_unique<LogicalScan>(order[0]);
      for (size_t j = 1; j < order.size(); ++j) {
        auto join = std::make_unique<LogicalJoin>();
        join->left = std::move(tree);
        join->right = std::make_unique<LogicalScan>(order[j]);
        tree = std::move(join);
      }
      filter->child = std::move(tree);
    }
  }

  // Rules 3 + 4: predicate pushdown and equality-conjunct extraction, over
  // the (possibly reordered) spine. Constant conjuncts stay in the filter
  // for once-per-execution evaluation.
  std::vector<LogicalScan*> scans;
  std::vector<LogicalJoin*> joins;
  CollectTree(filter->child.get(), &scans, &joins);

  std::vector<const Expr*> remaining = std::move(filter->conjuncts);
  filter->conjuncts.clear();
  std::vector<bool> applied(remaining.size(), false);
  for (size_t i = 0; i < remaining.size(); ++i) {
    if (RelationMask(*remaining[i], bq) == 0) {
      filter->conjuncts.push_back(remaining[i]);
      applied[i] = true;
    }
  }

  uint64_t placed_mask = 0;
  for (size_t j = 0; j < scans.size(); ++j) {
    LogicalScan* scan = scans[j];
    uint64_t rel_bit = uint64_t(1) << scan->rel_idx;
    for (size_t i = 0; i < remaining.size(); ++i) {
      if (!applied[i] && RelationMask(*remaining[i], bq) == rel_bit) {
        scan->filters.push_back(remaining[i]);
        applied[i] = true;
      }
    }
    if (j > 0) {
      LogicalJoin* join = joins[j - 1];
      for (size_t i = 0; i < remaining.size(); ++i) {
        if (applied[i]) continue;
        uint64_t mask = RelationMask(*remaining[i], bq);
        if ((mask & ~(placed_mask | rel_bit)) != 0) continue;  // not yet
        const Expr* ls = nullptr;
        const Expr* rs = nullptr;
        if ((mask & rel_bit) != 0 &&
            AsEquiJoin(*remaining[i], bq, placed_mask, rel_bit, &ls, &rs)) {
          join->equi.push_back(remaining[i]);
        } else {
          join->residual.push_back(remaining[i]);
        }
        applied[i] = true;
      }
    }
    placed_mask |= rel_bit;
  }
  return Status::OK();
}

Result<PhysicalMember> Planner::Physicalize(const LogicalMember& member) const {
  const BoundQuery& bq = *member.bq;
  LogicalFilter* filter = FilterOf(member.root.get());
  if (filter == nullptr) return Status::Internal("member without filter node");
  std::vector<LogicalScan*> scans;
  std::vector<LogicalJoin*> joins;
  CollectTree(filter->child.get(), &scans, &joins);

  PhysicalMember pm;
  pm.bq = &bq;
  pm.provably_empty = filter->provably_empty;
  pm.runtime_constants = filter->conjuncts;

  Row null_row(bq.total_slots, Value::Null());
  EvalContext const_ctx{&bq, &null_row, nullptr};

  uint64_t placed_mask = 0;
  for (size_t j = 0; j < scans.size(); ++j) {
    const LogicalScan* scan = scans[j];
    const BoundRelation& rel = bq.relations[scan->rel_idx];
    uint64_t rel_bit = uint64_t(1) << scan->rel_idx;

    PhysicalScan ps;
    ps.rel_idx = scan->rel_idx;
    ps.filters = scan->filters;
    if (rel.subquery != nullptr) {
      DL_ASSIGN_OR_RETURN(PhysicalPlan sub, Plan(*rel.subquery));
      ps.subplan = std::make_unique<PhysicalPlan>(std::move(sub));
    } else {
      // Rule 5: index-probe candidates from the pushed-down equalities.
      // Literals always qualify; under the optimizer, any constant
      // (relation-free, aggregate-free) side is folded at plan time. A
      // fold error just skips the candidate — the conjunct remains a scan
      // filter and fails at run time exactly as before.
      size_t offset = bq.slot_offsets[scan->rel_idx];
      size_t width = rel.schema.NumColumns();
      for (const Expr* p : ps.filters) {
        if (p->kind() != ExprKind::kBinary) continue;
        const auto& b = static_cast<const BinaryExpr&>(*p);
        if (b.op != "=") continue;
        for (int flip = 0; flip < 2; ++flip) {
          const Expr* col_side = flip == 0 ? b.lhs.get() : b.rhs.get();
          const Expr* val_side = flip == 0 ? b.rhs.get() : b.lhs.get();
          if (col_side->kind() != ExprKind::kColumnRef) continue;
          auto it = bq.column_slots.find(col_side);
          if (it == bq.column_slots.end()) continue;
          if (it->second < offset || it->second >= offset + width) continue;
          PhysicalProbe probe;
          probe.col = it->second - offset;
          probe.conjunct = p;
          if (val_side->kind() == ExprKind::kLiteral) {
            probe.value = static_cast<const LiteralExpr&>(*val_side).value;
          } else if (options_.enable_optimizer &&
                     RelationMask(*val_side, bq) == 0 &&
                     !ContainsAggregate(*val_side)) {
            Result<Value> v = Eval(*val_side, const_ctx);
            if (!v.ok()) continue;
            probe.value = std::move(v).value();
          } else {
            continue;
          }
          ps.probes.push_back(std::move(probe));
          break;  // at most one candidate per conjunct
        }
      }
    }

    if (j > 0) {
      const LogicalJoin* join = joins[j - 1];
      PhysicalJoin pj;
      pj.residual = join->residual;
      pj.equi_conjuncts = join->equi;
      if (!join->equi.empty()) {
        pj.algo = JoinAlgo::kHashJoin;
        for (const Expr* e : join->equi) {
          const Expr* ls = nullptr;
          const Expr* rs = nullptr;
          if (!AsEquiJoin(*e, bq, placed_mask, rel_bit, &ls, &rs)) {
            return Status::Internal("equi-join classification changed");
          }
          pj.left_keys.push_back(ls);
          pj.right_keys.push_back(rs);
        }
      }
      pm.joins.push_back(std::move(pj));
    }
    pm.scans.push_back(std::move(ps));
    pm.scan_order.push_back(scan->rel_idx);
    placed_mask |= rel_bit;
  }

  pm.restore_input_order = false;
  for (size_t j = 0; j < pm.scan_order.size(); ++j) {
    if (pm.scan_order[j] != j) pm.restore_input_order = true;
  }
  return pm;
}

}  // namespace datalawyer
