#include "plan/physical.h"

#include "common/strings.h"

namespace datalawyer {

namespace {

void RenderMember(const PhysicalMember& pm, const CatalogView* catalog,
                  std::string* out) {
  const BoundQuery& bq = *pm.bq;

  for (size_t j = 0; j < pm.scans.size(); ++j) {
    const PhysicalScan& ps = pm.scans[j];
    const BoundRelation& rel = bq.relations[ps.rel_idx];

    // The probe decision is made against the live catalog, exactly as the
    // interpreter will make it: every candidate with an index is probed and
    // the most selective one narrows the scan.
    const RelationData* data =
        rel.table_name.empty() || catalog == nullptr
            ? nullptr
            : catalog->Find(rel.table_name);
    bool index_probe = false;
    std::string index_detail;
    if (data != nullptr) {
      size_t best_hits = 0;
      for (const PhysicalProbe& probe : ps.probes) {
        std::vector<size_t> hits;
        if (!data->IndexLookup(probe.col, probe.value, &hits)) continue;
        if (!index_probe || hits.size() < best_hits) {
          best_hits = hits.size();
          index_detail = probe.conjunct->ToString();
        }
        index_probe = true;
      }
    }

    std::string source;
    if (rel.table_name.empty()) {
      source = "subquery " + rel.binding_name;
    } else if (data != nullptr) {
      source = rel.table_name + " (" + std::to_string(data->NumRows()) +
               " rows)";
    } else {
      source = rel.table_name + " (? rows)";
    }

    std::vector<std::string> pushdown;
    for (const Expr* p : ps.filters) pushdown.push_back(p->ToString());

    if (j == 0) {
      *out += "  scan " + source + " as " + rel.binding_name;
      *out += index_probe ? " [index probe " + index_detail + "]"
                          : " [full scan]";
    } else {
      const PhysicalJoin& pj = pm.joins[j - 1];
      if (pj.algo == JoinAlgo::kHashJoin) {
        std::vector<std::string> keys;
        for (const Expr* e : pj.equi_conjuncts) keys.push_back(e->ToString());
        *out += "  hash join " + source + " as " + rel.binding_name + " on " +
                Join(keys, " AND ");
      } else {
        *out += "  nested loop join " + source + " as " + rel.binding_name;
      }
      if (index_probe) *out += " [index probe " + index_detail + "]";
      if (!pj.residual.empty()) {
        std::vector<std::string> residual;
        for (const Expr* e : pj.residual) residual.push_back(e->ToString());
        *out += " residual: " + Join(residual, " AND ");
      }
    }
    if (!pushdown.empty()) *out += " pushdown: " + Join(pushdown, " AND ");
    *out += "\n";
  }
  if (pm.scans.empty()) *out += "  constant row\n";
  if (pm.provably_empty) *out += "  [provably empty]\n";

  if (!bq.stmt->distinct_on.empty()) {
    *out += "  distinct on (" + std::to_string(bq.stmt->distinct_on.size()) +
            " keys)\n";
  }
  if (bq.is_grouped) {
    *out += "  aggregate [" + std::to_string(bq.stmt->group_by.size()) +
            " group keys, " + std::to_string(bq.aggregates.size()) +
            " aggregates]";
    if (bq.stmt->having != nullptr) {
      *out += " having " + bq.stmt->having->ToString();
    }
    *out += "\n";
  }
  *out += "  project " + std::to_string(bq.output_columns.size()) +
          " columns";
  if (bq.stmt->distinct) *out += " distinct";
  *out += "\n";
}

}  // namespace

std::string RenderPhysicalPlan(const PhysicalPlan& plan,
                               const CatalogView* catalog) {
  std::string out;
  const BoundQuery* prev = nullptr;
  for (const PhysicalMember& pm : plan.members) {
    if (prev != nullptr) {
      out += prev->stmt->union_all ? "UNION ALL\n" : "UNION\n";
    }
    RenderMember(pm, catalog, &out);
    prev = pm.bq;
  }
  const SelectStmt* top = plan.bound->stmt;
  if (!top->order_by.empty()) {
    out += "  sort " + std::to_string(top->order_by.size()) + " keys\n";
  }
  if (top->limit.has_value()) {
    out += "  limit " + std::to_string(*top->limit) + "\n";
  }
  return out;
}

}  // namespace datalawyer
