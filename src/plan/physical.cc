#include "plan/physical.h"

#include <cmath>

#include "analysis/eval.h"
#include "common/strings.h"
#include "plan/logical.h"

namespace datalawyer {

namespace {

/// Resolves a range probe's bound at render time: constants fold; bound
/// expressions evaluate when every referenced relation resolves through
/// the live catalog with exactly one row (the clock) — the same condition
/// under which the interpreter can use the probe.
bool ResolveRenderBound(const Expr& e, const BoundQuery& bq,
                        const CatalogView* catalog, Value* out) {
  uint64_t mask = RelationMask(e, bq);
  Row row(bq.total_slots, Value::Null());
  for (size_t i = 0; i < bq.relations.size(); ++i) {
    if ((mask & (uint64_t(1) << i)) == 0) continue;
    const BoundRelation& rel = bq.relations[i];
    const RelationData* data =
        rel.table_name.empty() || catalog == nullptr
            ? nullptr
            : catalog->Find(rel.table_name);
    if (data == nullptr || data->NumRows() != 1) return false;
    const Row& src = data->RowAt(0);
    size_t offset = bq.slot_offsets[i];
    size_t width = rel.schema.NumColumns();
    for (size_t c = 0; c < width && c < src.size(); ++c) {
      row[offset + c] = src[c];
    }
  }
  EvalContext ctx{&bq, &row, nullptr};
  Result<Value> v = Eval(e, ctx);
  if (!v.ok()) return false;
  *out = std::move(v).value();
  return true;
}

std::string FormatEstRows(double est) {
  return " est_rows=" + std::to_string((long long)std::llround(est));
}

void RenderMember(const PhysicalMember& pm, const CatalogView* catalog,
                  std::string* out) {
  const BoundQuery& bq = *pm.bq;

  for (size_t j = 0; j < pm.scans.size(); ++j) {
    const PhysicalScan& ps = pm.scans[j];
    const BoundRelation& rel = bq.relations[ps.rel_idx];

    // The access-path decision is re-made against the live catalog,
    // exactly as the interpreter will make it: the cost model's choice is
    // honored when its index is still available, and the kUnknown
    // (adaptive) case probes every candidate and lets the most selective
    // one narrow the scan.
    const RelationData* data =
        rel.table_name.empty() || catalog == nullptr
            ? nullptr
            : catalog->Find(rel.table_name);
    bool index_probe = false;
    bool range_probe = false;
    std::string index_detail;
    if (data != nullptr) {
      bool hash_ok = false;
      size_t hash_hits = 0;
      std::string hash_detail;
      if (ps.chosen_path != AccessPath::kSeqScan) {
        for (const PhysicalProbe& probe : ps.probes) {
          std::vector<size_t> hits;
          if (!data->IndexLookup(probe.col, probe.value, &hits)) continue;
          if (!hash_ok || hits.size() < hash_hits) {
            hash_hits = hits.size();
            hash_detail = probe.conjunct->ToString();
          }
          hash_ok = true;
        }
      }
      bool range_ok = false;
      size_t range_hits = 0;
      std::string range_detail;
      if (ps.chosen_path == AccessPath::kRangeScan ||
          ps.chosen_path == AccessPath::kUnknown) {
        for (const PhysicalRangeProbe& probe : ps.range_probes) {
          Value bound;
          if (probe.has_const) {
            bound = probe.value;
          } else if (!ResolveRenderBound(*probe.bound_expr, bq, catalog,
                                         &bound)) {
            continue;
          }
          bool is_lower = probe.op == ">" || probe.op == ">=";
          bool inclusive = probe.op == ">=" || probe.op == "<=";
          std::vector<size_t> hits;
          if (!data->RangeLookup(probe.col, is_lower ? &bound : nullptr,
                                 inclusive, is_lower ? nullptr : &bound,
                                 inclusive, &hits)) {
            continue;
          }
          if (!range_ok || hits.size() < range_hits) {
            range_hits = hits.size();
            range_detail = probe.conjunct->ToString();
          }
          range_ok = true;
        }
      }
      switch (ps.chosen_path) {
        case AccessPath::kSeqScan:
          break;
        case AccessPath::kHashProbe:
          index_probe = hash_ok;
          index_detail = hash_detail;
          break;
        case AccessPath::kRangeScan:
          if (range_ok) {
            range_probe = true;
            index_detail = range_detail;
          } else if (hash_ok) {
            index_probe = true;
            index_detail = hash_detail;
          }
          break;
        case AccessPath::kUnknown:
          if (hash_ok && (!range_ok || hash_hits <= range_hits)) {
            index_probe = true;
            index_detail = hash_detail;
          } else if (range_ok) {
            range_probe = true;
            index_detail = range_detail;
          }
          break;
      }
    }

    std::string source;
    if (rel.table_name.empty()) {
      source = "subquery " + rel.binding_name;
    } else if (data != nullptr) {
      source = rel.table_name + " (" + std::to_string(data->NumRows()) +
               " rows)";
    } else {
      source = rel.table_name + " (? rows)";
    }

    std::vector<std::string> pushdown;
    for (const Expr* p : ps.filters) pushdown.push_back(p->ToString());

    std::string access_token;
    if (range_probe) {
      access_token = " [range scan " + index_detail + "]";
    } else if (index_probe) {
      access_token = " [index probe " + index_detail + "]";
    } else {
      access_token = " [full scan]";
    }

    if (j == 0) {
      *out += "  scan " + source + " as " + rel.binding_name;
      *out += access_token;
    } else {
      const PhysicalJoin& pj = pm.joins[j - 1];
      if (pj.algo == JoinAlgo::kHashJoin) {
        std::vector<std::string> keys;
        for (const Expr* e : pj.equi_conjuncts) keys.push_back(e->ToString());
        *out += "  hash join " + source + " as " + rel.binding_name + " on " +
                Join(keys, " AND ");
      } else {
        *out += "  nested loop join " + source + " as " + rel.binding_name;
      }
      if (range_probe || index_probe) *out += access_token;
      if (!pj.residual.empty()) {
        std::vector<std::string> residual;
        for (const Expr* e : pj.residual) residual.push_back(e->ToString());
        *out += " residual: " + Join(residual, " AND ");
      }
    }
    if (!pushdown.empty()) *out += " pushdown: " + Join(pushdown, " AND ");
    if (j == 0 && ps.est_rows >= 0) {
      *out += FormatEstRows(ps.est_rows);
    } else if (j > 0 && pm.joins[j - 1].est_rows >= 0) {
      *out += FormatEstRows(pm.joins[j - 1].est_rows);
    }
    *out += "\n";
  }
  if (pm.scans.empty()) *out += "  constant row\n";
  if (pm.provably_empty) *out += "  [provably empty]\n";

  if (!bq.stmt->distinct_on.empty()) {
    *out += "  distinct on (" + std::to_string(bq.stmt->distinct_on.size()) +
            " keys)\n";
  }
  if (bq.is_grouped) {
    *out += "  aggregate [" + std::to_string(bq.stmt->group_by.size()) +
            " group keys, " + std::to_string(bq.aggregates.size()) +
            " aggregates]";
    if (bq.stmt->having != nullptr) {
      *out += " having " + bq.stmt->having->ToString();
    }
    *out += "\n";
  }
  *out += "  project " + std::to_string(bq.output_columns.size()) +
          " columns";
  if (bq.stmt->distinct) *out += " distinct";
  *out += "\n";
}

}  // namespace

std::string RenderPhysicalPlan(const PhysicalPlan& plan,
                               const CatalogView* catalog) {
  std::string out;
  const BoundQuery* prev = nullptr;
  for (const PhysicalMember& pm : plan.members) {
    if (prev != nullptr) {
      out += prev->stmt->union_all ? "UNION ALL\n" : "UNION\n";
    }
    RenderMember(pm, catalog, &out);
    prev = pm.bq;
  }
  const SelectStmt* top = plan.bound->stmt;
  if (!top->order_by.empty()) {
    out += "  sort " + std::to_string(top->order_by.size()) + " keys\n";
  }
  if (top->limit.has_value()) {
    out += "  limit " + std::to_string(*top->limit) + "\n";
  }
  return out;
}

}  // namespace datalawyer
