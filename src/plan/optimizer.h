#ifndef DATALAWYER_PLAN_OPTIMIZER_H_
#define DATALAWYER_PLAN_OPTIMIZER_H_

#include "analysis/bound_query.h"
#include "common/result.h"
#include "plan/logical.h"
#include "plan/physical.h"

namespace datalawyer {

struct PlannerOptions {
  /// Master switch for the cost-improving rules: constant folding, join
  /// reordering, and computed-constant index probes. Predicate pushdown,
  /// equality-conjunct extraction into join keys, and literal index probes
  /// are structural — they always run and reproduce the original executor's
  /// behavior exactly, so `false` is the baseline ("naive") plan. The
  /// DL_DISABLE_OPTIMIZER environment variable forces false process-wide
  /// (the CI fallback job sets it).
  bool enable_optimizer = true;
};

/// True when DL_DISABLE_OPTIMIZER is set to a non-empty value other
/// than "0". Cached after the first call.
bool OptimizerDisabledByEnv();

/// The rule-based planner: bound AST → logical plan → rules → physical
/// plan. Stateless apart from its options; const and safe to share across
/// threads.
///
/// Rules, in order:
///  1. constant folding — WHERE conjuncts over no relation are evaluated at
///     plan time; TRUE disappears, FALSE/NULL proves the join phase empty,
///     an evaluation error defers the conjunct to run time (so `1/0 = 1`
///     still fails exactly as it used to);
///  2. join reordering — greedy smallest-relation-first over the equi-join
///     connectivity of src/analysis/join_graph, ties broken by FROM
///     position (so equal-sized relations keep their written order); the
///     interpreter restores FROM-order row order afterwards, keeping
///     results byte-identical;
///  3. predicate pushdown — single-relation conjuncts move onto their scan;
///  4. equality-conjunct extraction — conjuncts equating a placed-side
///     expression with an incoming-side expression become hash-join keys,
///     the rest residual filters;
///  5. index-probe selection — `col = constant` scan filters become probe
///     candidates (literals always; folded constant expressions under the
///     optimizer), decided against RelationData::IndexLookup at run time.
class Planner {
 public:
  explicit Planner(PlannerOptions options = {});

  /// Full pipeline for a bound (possibly UNION-chained) SELECT. The
  /// returned plan references `bound` and its AST; both must outlive it.
  /// Emits a "planning" trace span (category "plan").
  Result<PhysicalPlan> Plan(const BoundQuery& bound) const;

  /// Builds and optimizes the logical plan without physicalizing it
  /// (inspection / debugging).
  Result<LogicalPlan> PlanLogical(const BoundQuery& bound) const;

  const PlannerOptions& options() const { return options_; }

 private:
  Status OptimizeMember(LogicalMember* member) const;
  Result<PhysicalMember> Physicalize(const LogicalMember& member) const;

  PlannerOptions options_;
};

}  // namespace datalawyer

#endif  // DATALAWYER_PLAN_OPTIMIZER_H_
