#ifndef DATALAWYER_PLAN_OPTIMIZER_H_
#define DATALAWYER_PLAN_OPTIMIZER_H_

#include "analysis/bound_query.h"
#include "common/result.h"
#include "plan/logical.h"
#include "plan/physical.h"

namespace datalawyer {

struct PlannerOptions {
  /// Master switch for the cost-improving rules: constant folding, join
  /// reordering, computed-constant index probes, and range-probe
  /// extraction. Predicate pushdown, equality-conjunct extraction into
  /// join keys, and literal index probes are structural — they always run
  /// and reproduce the original executor's behavior exactly, so `false` is
  /// the baseline ("naive") plan. The DL_DISABLE_OPTIMIZER environment
  /// variable forces false process-wide (the CI fallback job sets it).
  bool enable_optimizer = true;

  /// Statistics-driven cost-based planning: join order and scan cardinality
  /// are estimated from TableStats (selectivities, NDVs, ranges) and each
  /// scan's access path (seq vs. hash probe vs. range scan) is chosen by
  /// estimated cost instead of adaptively at run time. Off: join order
  /// falls back to the heuristic smallest-NumRows greedy and access paths
  /// stay adaptive — plans remain correct, only the choices change.
  /// Requires enable_optimizer; DL_DISABLE_STATS_COSTING forces false
  /// process-wide (the costing-off CI leg sets it).
  bool enable_stats_costing = true;
};

/// True when DL_DISABLE_OPTIMIZER is set to a non-empty value other
/// than "0". Cached after the first call.
bool OptimizerDisabledByEnv();

/// True when DL_DISABLE_STATS_COSTING is set to a non-empty value other
/// than "0". Cached after the first call.
bool StatsCostingDisabledByEnv();

/// The rule-based planner: bound AST → logical plan → rules → physical
/// plan. Stateless apart from its options; const and safe to share across
/// threads.
///
/// Rules, in order:
///  1. constant folding — WHERE conjuncts over no relation are evaluated at
///     plan time; TRUE disappears, FALSE/NULL proves the join phase empty,
///     an evaluation error defers the conjunct to run time (so `1/0 = 1`
///     still fails exactly as it used to);
///  2. join reordering — greedy smallest-relation-first over the equi-join
///     connectivity of src/analysis/join_graph, ties broken by FROM
///     position (so equal-sized relations keep their written order); the
///     interpreter restores FROM-order row order afterwards, keeping
///     results byte-identical;
///  3. predicate pushdown — single-relation conjuncts move onto their scan;
///  4. equality-conjunct extraction — conjuncts equating a placed-side
///     expression with an incoming-side expression become hash-join keys,
///     the rest residual filters;
///  5. index-probe selection — `col = constant` scan filters become probe
///     candidates (literals always; folded constant expressions under the
///     optimizer), decided against RelationData::IndexLookup at run time;
///  6. range-probe selection (under the optimizer) — `col OP constant`
///     scan filters and join-residual conjuncts bounding a column by an
///     expression over already-placed relations become range-probe
///     candidates served by ordered indexes (RelationData::RangeLookup);
///  7. cost-based access path and join order (under enable_stats_costing)
///     — per-scan cardinalities estimated from TableStats pick between
///     seq scan, hash probe, and range scan, and drive the greedy join
///     order in place of raw row counts.
class Planner {
 public:
  explicit Planner(PlannerOptions options = {});

  /// Full pipeline for a bound (possibly UNION-chained) SELECT. The
  /// returned plan references `bound` and its AST; both must outlive it.
  /// Emits a "planning" trace span (category "plan").
  Result<PhysicalPlan> Plan(const BoundQuery& bound) const;

  /// Builds and optimizes the logical plan without physicalizing it
  /// (inspection / debugging).
  Result<LogicalPlan> PlanLogical(const BoundQuery& bound) const;

  const PlannerOptions& options() const { return options_; }

 private:
  Status OptimizeMember(LogicalMember* member) const;
  Result<PhysicalMember> Physicalize(const LogicalMember& member) const;

  PlannerOptions options_;
};

}  // namespace datalawyer

#endif  // DATALAWYER_PLAN_OPTIMIZER_H_
