#include "plan/stats.h"

#include <algorithm>
#include <cmath>

namespace datalawyer {

namespace {

const ColumnStats* ColumnOf(const TableStats* stats, size_t col) {
  if (stats == nullptr || !stats->valid || col >= stats->columns.size()) {
    return nullptr;
  }
  return &stats->columns[col];
}

double ClampSelectivity(const TableStats* stats, double sel) {
  double floor = stats != nullptr && stats->row_count > 0
                     ? 1.0 / double(stats->row_count)
                     : 0.0;
  return std::min(1.0, std::max(floor, sel));
}

}  // namespace

double EstimateEqSelectivity(const TableStats* stats, size_t col) {
  const ColumnStats* cs = ColumnOf(stats, col);
  if (cs == nullptr || cs->ndv == 0) return kDefaultEqSelectivity;
  return ClampSelectivity(stats, 1.0 / double(cs->ndv));
}

double EstimateRangeSelectivity(const TableStats* stats, size_t col,
                                const std::string& op, const Value* bound) {
  const ColumnStats* cs = ColumnOf(stats, col);
  if (cs == nullptr || !cs->has_range || bound == nullptr ||
      !bound->is_numeric() || !std::isfinite(bound->ToDouble())) {
    return kDefaultRangeSelectivity;
  }
  double b = bound->ToDouble();
  double span = cs->max - cs->min;
  double sel;
  if (op == "<" || op == "<=") {
    if (b < cs->min) {
      sel = 0.0;
    } else if (b >= cs->max) {
      sel = 1.0;
    } else {
      sel = span > 0 ? (b - cs->min) / span : 1.0;
    }
  } else if (op == ">" || op == ">=") {
    if (b > cs->max) {
      sel = 0.0;
    } else if (b <= cs->min) {
      sel = 1.0;
    } else {
      sel = span > 0 ? (cs->max - b) / span : 1.0;
    }
  } else if (op == "!=" || op == "<>") {
    return kDefaultNeqSelectivity;
  } else {
    return kDefaultRangeSelectivity;
  }
  return ClampSelectivity(stats, sel);
}

double EstimateColumnNdv(const TableStats* stats, size_t col,
                         double row_count) {
  const ColumnStats* cs = ColumnOf(stats, col);
  if (cs != nullptr && cs->ndv > 0) return double(cs->ndv);
  return std::max(1.0, std::min(row_count, 1.0 / kDefaultEqSelectivity));
}

}  // namespace datalawyer
