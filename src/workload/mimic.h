#ifndef DATALAWYER_WORKLOAD_MIMIC_H_
#define DATALAWYER_WORKLOAD_MIMIC_H_

#include <cstdint>

#include "common/result.h"
#include "storage/database.h"

namespace datalawyer {

/// Shape parameters of the synthetic MIMIC-II-like dataset.
///
/// The real MIMIC-II (physionet.org/mimic2) is a gated clinical dataset; we
/// generate data with the same schema fragments and join structure the
/// paper's experiments exercise: `d_patients` (one row per ICU patient),
/// `chartevents` (monitoring readings, many per patient, with the paper's
/// heart-rate item id 211), `poe_order`/`poe_med` (provider order entry),
/// and a `groups` user-membership table for the group-scoped policies.
struct MimicConfig {
  uint64_t seed = 42;
  int64_t num_patients = 33000;   ///< MIMIC-II's "over 33000 patients"
  int64_t num_chartevents = 400000;
  int64_t num_orders = 20000;
  int64_t num_users = 64;         ///< rows in `groups`

  /// Every patient receives this many deterministic heart-rate (itemid 211)
  /// chartevents before the random ones, so the paper's W2–W4 group sizes
  /// are predictable.
  int64_t events_211_per_patient = 12;

  /// Build hash indexes on the equality-probed columns (subject_id), giving
  /// the W1/W2 point queries their interactive speeds.
  bool build_indexes = true;

  /// Scaled-down preset for unit tests (hundreds of rows).
  static MimicConfig Tiny() {
    MimicConfig config;
    config.num_patients = 200;
    config.num_chartevents = 2000;
    config.num_orders = 100;
    config.events_211_per_patient = 4;
    return config;
  }
};

/// Populates `db` with the synthetic dataset (tables must not yet exist).
Status LoadMimicData(Database* db, const MimicConfig& config);

}  // namespace datalawyer

#endif  // DATALAWYER_WORKLOAD_MIMIC_H_
