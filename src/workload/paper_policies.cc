#include "workload/paper_policies.h"

namespace datalawyer {

namespace {
std::string N(int64_t v) { return std::to_string(v); }
}  // namespace

std::string PaperPolicies::P1(int64_t window, const std::string& group,
                              int64_t threshold) {
  return "SELECT DISTINCT 'P1 violated: more than " + N(threshold) +
         " distinct users from group " + group + " in " + N(window) +
         "ms' AS errormessage "
         "FROM users u, groups g, clock c "
         "WHERE u.uid = g.uid AND g.gid = '" + group + "' "
         "AND u.ts > c.ts - " + N(window) + " "
         "HAVING COUNT(DISTINCT u.uid) > " + N(threshold);
}

std::string PaperPolicies::P2(int64_t uid) {
  return "SELECT DISTINCT 'P2 violated: poe_order joined with a relation "
         "other than poe_med' AS errormessage "
         "FROM users u, schema s1, schema s2 "
         "WHERE u.ts = s1.ts AND s1.ts = s2.ts AND u.uid = " + N(uid) + " "
         "AND s1.irid = 'poe_order' "
         "AND s2.irid != 'poe_order' AND s2.irid != 'poe_med'";
}

std::string PaperPolicies::P3(int64_t uid, int64_t threshold) {
  return "SELECT DISTINCT 'P3 violated: query on d_patients returned more "
         "than " + N(threshold) + " tuples' AS errormessage "
         "FROM users u, provenance p "
         "WHERE u.ts = p.ts AND u.uid = " + N(uid) + " "
         "AND p.irid = 'd_patients' "
         "GROUP BY p.ts "
         "HAVING COUNT(DISTINCT p.otid) > " + N(threshold);
}

std::string PaperPolicies::P4(int64_t uid, int64_t threshold) {
  return "SELECT DISTINCT 'P4 violated: an output tuple over chartevents "
         "has too few contributing inputs' AS errormessage "
         "FROM users u, provenance p "
         "WHERE u.ts = p.ts AND u.uid = " + N(uid) + " "
         "AND p.irid = 'chartevents' "
         "GROUP BY p.ts, p.otid "
         "HAVING COUNT(DISTINCT p.itid) <= " + N(threshold);
}

std::string PaperPolicies::P5(int64_t uid, int64_t window,
                              int64_t threshold) {
  return "SELECT DISTINCT 'P5 violated: more than " + N(threshold) +
         " distinct d_patients tuples used in " + N(window) +
         "ms' AS errormessage "
         "FROM users u, provenance p, clock c "
         "WHERE u.ts = p.ts AND u.uid = " + N(uid) + " "
         "AND p.irid = 'd_patients' AND p.ts > c.ts - " + N(window) + " "
         "HAVING COUNT(DISTINCT p.itid) > " + N(threshold);
}

std::string PaperPolicies::P6(int64_t uid, int64_t window,
                              int64_t threshold) {
  return "SELECT DISTINCT 'P6 violated: a d_patients tuple was used more "
         "than " + N(threshold) + " times in " + N(window) +
         "ms' AS errormessage "
         "FROM users u, provenance p, clock c "
         "WHERE u.ts = p.ts AND u.uid = " + N(uid) + " "
         "AND p.irid = 'd_patients' AND p.ts > c.ts - " + N(window) + " "
         "GROUP BY p.itid "
         "HAVING COUNT(p.itid) > " + N(threshold);
}

std::vector<std::pair<std::string, std::string>> PaperPolicies::All() {
  return {
      {"p1", P1()}, {"p2", P2()}, {"p3", P3()},
      {"p4", P4()}, {"p5", P5()}, {"p6", P6()},
  };
}

std::string PaperPolicies::RateLimitForUser(int64_t uid, int64_t window,
                                            int64_t threshold) {
  return "SELECT DISTINCT 'rate limit exceeded for user " + N(uid) +
         "' AS errormessage "
         "FROM users u, clock c "
         "WHERE u.uid = " + N(uid) + " AND u.ts > c.ts - " + N(window) + " "
         "HAVING COUNT(u.uid) > " + N(threshold);
}

}  // namespace datalawyer
