#ifndef DATALAWYER_WORKLOAD_PAPER_POLICIES_H_
#define DATALAWYER_WORKLOAD_PAPER_POLICIES_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace datalawyer {

/// SQL for the six experiment policies of Table 2, adapted to the synthetic
/// MIMIC-like schema. Thresholds marked "adapted" differ from the paper's
/// constants only to keep the policies satisfied on our synthetic data
/// volumes (the paper measures the satisfied-policy path; see DESIGN.md).
///
/// Time windows are in logical clock ticks, which the experiments treat as
/// milliseconds (ManualClock stepping 10 per query ≈ a 100 qps workload).
class PaperPolicies {
 public:
  /// P1: at most `threshold` distinct users from group `group` may query in
  /// any `window`. Cheapest policy: Users log only.
  static std::string P1(int64_t window = 200, const std::string& group = "X",
                        int64_t threshold = 10);

  /// P2: user `uid` must not join poe_order with anything but poe_med.
  /// Users + Schema logs; time-independent.
  static std::string P2(int64_t uid = 1);

  /// P3: user `uid` may not run a query on d_patients returning more than
  /// `threshold` tuples (paper: 100; adapted default 1000 so W4 complies).
  /// Users + Provenance; time-independent.
  static std::string P3(int64_t uid = 1, int64_t threshold = 1000);

  /// P4: no output tuple of a query over chartevents by `uid` may have <= 3
  /// contributing input tuples. Users + Provenance; time-independent;
  /// non-monotone (count <= k).
  static std::string P4(int64_t uid = 1, int64_t threshold = 3);

  /// P5: in any `window`, `uid` may not use more than `threshold` distinct
  /// d_patients tuples across all queries (paper: half the table).
  /// Users + Provenance + Clock; time-dependent.
  static std::string P5(int64_t uid = 1, int64_t window = 3000,
                        int64_t threshold = 16500);

  /// P6: in any `window`, `uid` may not use the same d_patients tuple more
  /// than `threshold` times. Users + Provenance + Clock; time-dependent.
  static std::string P6(int64_t uid = 1, int64_t window = 300,
                        int64_t threshold = 1000);

  /// All six, with default parameters: {("p1", sql), ..., ("p6", sql)}.
  static std::vector<std::pair<std::string, std::string>> All();

  /// A per-user rate-limit policy (P1-like family used in Fig. 5): user
  /// `uid` may issue at most `threshold` queries per `window`. Structurally
  /// identical across users — exactly what policy unification consolidates.
  static std::string RateLimitForUser(int64_t uid, int64_t window = 1000,
                                      int64_t threshold = 350);
};

}  // namespace datalawyer

#endif  // DATALAWYER_WORKLOAD_PAPER_POLICIES_H_
