#ifndef DATALAWYER_WORKLOAD_PAPER_QUERIES_H_
#define DATALAWYER_WORKLOAD_PAPER_QUERIES_H_

#include <string>
#include <utility>
#include <vector>

namespace datalawyer {

/// The four workload queries of Table 3, adapted to the synthetic dataset.
/// They span the paper's cost spectrum: W1 is an indexed point lookup, W2 a
/// single-patient join+aggregate, W3 a 70-patient range aggregate, W4 a
/// 650-patient range aggregate (the expensive query). HAVING thresholds are
/// adapted to the synthetic per-patient event counts (12 heart-rate events
/// per patient) so that each query returns non-empty, policy-compliant
/// results.
class PaperQueries {
 public:
  static std::string W1() {
    return "SELECT * FROM d_patients WHERE subject_id = 186";
  }

  static std::string W2() {
    return "SELECT c.subject_id, p.sex, COUNT(c.subject_id) "
           "FROM chartevents c, d_patients p "
           "WHERE c.subject_id = 489 AND p.subject_id = c.subject_id "
           "AND c.itemid = 211 "
           "GROUP BY c.subject_id, p.sex "
           "HAVING COUNT(c.subject_id) > 1";
  }

  static std::string W3() {
    return "SELECT c.subject_id, p.sex, COUNT(c.subject_id) "
           "FROM chartevents c, d_patients p "
           "WHERE c.subject_id < 1000 AND c.subject_id > 930 "
           "AND p.subject_id = c.subject_id AND c.itemid = 211 "
           "GROUP BY c.subject_id, p.sex "
           "HAVING COUNT(c.subject_id) > 10";
  }

  static std::string W4() {
    return "SELECT c.subject_id, p.sex, COUNT(c.subject_id) "
           "FROM chartevents c, d_patients p "
           "WHERE c.subject_id < 1450 AND c.subject_id > 800 "
           "AND p.subject_id = c.subject_id AND c.itemid = 211 "
           "GROUP BY c.subject_id, p.sex "
           "HAVING COUNT(c.subject_id) > 10";
  }

  /// {("W1", sql), ..., ("W4", sql)}.
  static std::vector<std::pair<std::string, std::string>> All() {
    return {{"W1", W1()}, {"W2", W2()}, {"W3", W3()}, {"W4", W4()}};
  }
};

}  // namespace datalawyer

#endif  // DATALAWYER_WORKLOAD_PAPER_QUERIES_H_
