#include "workload/mimic.h"

#include <random>
#include "common/trace.h"

namespace datalawyer {

Status LoadMimicData(Database* db, const MimicConfig& config) {
  DL_TRACE_SPAN("workload.load_mimic", "workload");
  std::mt19937_64 rng(config.seed);

  // ---- d_patients(subject_id, sex, dob) ----
  DL_ASSIGN_OR_RETURN(Table * patients,
                      db->CreateTable("d_patients",
                                      TableSchema()
                                          .AddColumn("subject_id",
                                                     ValueType::kInt64)
                                          .AddColumn("sex", ValueType::kString)
                                          .AddColumn("dob",
                                                     ValueType::kInt64)));
  std::uniform_int_distribution<int64_t> dob_dist(-2208988800LL, 946684800LL);
  for (int64_t id = 0; id < config.num_patients; ++id) {
    DL_RETURN_NOT_OK(patients
                         ->Append(Row{Value(id),
                                      Value((rng() & 1) ? "m" : "f"),
                                      Value(dob_dist(rng))})
                         .status());
  }

  // ---- chartevents(subject_id, itemid, charttime, value1) ----
  DL_ASSIGN_OR_RETURN(
      Table * chartevents,
      db->CreateTable("chartevents",
                      TableSchema()
                          .AddColumn("subject_id", ValueType::kInt64)
                          .AddColumn("itemid", ValueType::kInt64)
                          .AddColumn("charttime", ValueType::kInt64)
                          .AddColumn("value1", ValueType::kDouble)));
  std::uniform_int_distribution<int64_t> item_dist(100, 300);
  std::uniform_int_distribution<int64_t> subject_dist(
      0, config.num_patients - 1);
  std::normal_distribution<double> hr_dist(80.0, 15.0);
  int64_t charttime = 0;
  // Deterministic heart-rate series per patient (itemid 211: heart rate in
  // MIMIC-II), so the W2–W4 GROUP BY sizes are exactly
  // events_211_per_patient.
  int64_t deterministic =
      config.num_patients * config.events_211_per_patient;
  for (int64_t i = 0; i < deterministic && i < config.num_chartevents; ++i) {
    int64_t subject = i % config.num_patients;
    DL_RETURN_NOT_OK(chartevents
                         ->Append(Row{Value(subject), Value(int64_t{211}),
                                      Value(charttime++),
                                      Value(hr_dist(rng))})
                         .status());
  }
  for (int64_t i = deterministic; i < config.num_chartevents; ++i) {
    int64_t item = item_dist(rng);
    if (item == 211) item = 212;  // keep 211 counts deterministic
    DL_RETURN_NOT_OK(chartevents
                         ->Append(Row{Value(subject_dist(rng)), Value(item),
                                      Value(charttime++),
                                      Value(hr_dist(rng))})
                         .status());
  }

  // ---- poe_order(order_id, subject_id, medication) ----
  DL_ASSIGN_OR_RETURN(
      Table * poe_order,
      db->CreateTable("poe_order",
                      TableSchema()
                          .AddColumn("order_id", ValueType::kInt64)
                          .AddColumn("subject_id", ValueType::kInt64)
                          .AddColumn("medication", ValueType::kString)));
  const char* kMeds[] = {"aspirin", "heparin", "insulin", "morphine",
                         "saline"};
  for (int64_t id = 0; id < config.num_orders; ++id) {
    DL_RETURN_NOT_OK(poe_order
                         ->Append(Row{Value(id), Value(subject_dist(rng)),
                                      Value(kMeds[rng() % 5])})
                         .status());
  }

  // ---- poe_med(order_id, dose) ----
  DL_ASSIGN_OR_RETURN(
      Table * poe_med,
      db->CreateTable("poe_med", TableSchema()
                                     .AddColumn("order_id", ValueType::kInt64)
                                     .AddColumn("dose", ValueType::kDouble)));
  std::uniform_real_distribution<double> dose_dist(0.5, 50.0);
  for (int64_t id = 0; id < config.num_orders; ++id) {
    DL_RETURN_NOT_OK(
        poe_med->Append(Row{Value(id), Value(dose_dist(rng))}).status());
  }

  // ---- groups(uid, gid): user-group membership for P1-style policies ----
  // Group 'X' contains user 1 but not user 0 (Table 2's footnote), so the
  // experiments' two users exercise both the pruned and the full paths.
  DL_ASSIGN_OR_RETURN(
      Table * groups,
      db->CreateTable("groups", TableSchema()
                                    .AddColumn("uid", ValueType::kInt64)
                                    .AddColumn("gid", ValueType::kString)));
  DL_RETURN_NOT_OK(groups->Append(Row{Value(int64_t{1}), Value("X")}).status());
  const char* kGroups[] = {"student", "postdoc", "faculty", "staff"};
  for (int64_t uid = 2; uid < config.num_users; ++uid) {
    DL_RETURN_NOT_OK(
        groups->Append(Row{Value(uid), Value(kGroups[uid % 4])}).status());
  }

  if (config.build_indexes) {
    DL_RETURN_NOT_OK(patients->BuildIndex("subject_id"));
    DL_RETURN_NOT_OK(chartevents->BuildIndex("subject_id"));
    DL_RETURN_NOT_OK(poe_order->BuildIndex("order_id"));
    DL_RETURN_NOT_OK(poe_med->BuildIndex("order_id"));
  }
  return Status::OK();
}

}  // namespace datalawyer
