#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/strings.h"

namespace datalawyer {

namespace {

int BucketFor(double value) {
  if (!(value >= 1)) return 0;  // also catches NaN and negatives
  int b = int(std::floor(std::log2(value))) + 1;
  if (b < 0) b = 0;
  if (b >= Histogram::kNumBuckets) b = Histogram::kNumBuckets - 1;
  return b;
}

std::string FormatNumber(double v) {
  char buf[48];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  return buf;
}

}  // namespace

void Histogram::Observe(double value) {
  if (std::isnan(value)) return;
  if (value < 0) value = 0;
  buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  if (!seen_any_) {
    seen_any_ = true;
    min_ = max_ = value;
  } else {
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }
  sum_ += value;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double Histogram::mean() const {
  uint64_t n = count();
  return n == 0 ? 0 : sum() / double(n);
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_;
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

double Histogram::BucketUpperBound(int b) {
  return b == 0 ? 1.0 : std::ldexp(1.0, b);  // 2^b
}

double Histogram::Percentile(double q) const {
  uint64_t n = count();
  if (n == 0) return 0;
  q = std::min(1.0, std::max(0.0, q));
  if (q <= 0.0) return min();
  if (q >= 1.0) return max();
  // Rank of the target observation (1-based, nearest-rank).
  uint64_t rank = uint64_t(std::ceil(q * double(n)));
  if (rank < 1) rank = 1;
  uint64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    uint64_t c = buckets_[b].load(std::memory_order_relaxed);
    if (c == 0) continue;
    if (seen + c >= rank) {
      double lo = b == 0 ? 0.0 : std::ldexp(1.0, b - 1);
      double hi = BucketUpperBound(b);
      // Clamp to the observed range so p100 never exceeds max().
      {
        std::lock_guard<std::mutex> lock(mu_);
        lo = std::max(lo, min_);
        hi = std::min(hi, max_);
        if (hi < lo) hi = lo;
      }
      // Midpoint convention: the k-th of c observations sits at (k-0.5)/c
      // through the bucket, so a single-observation bucket reports its
      // middle instead of its upper edge.
      double frac = (double(rank - seen) - 0.5) / double(c);
      return lo + frac * (hi - lo);
    }
    seen += c;
  }
  return max();
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  seen_any_ = false;
  sum_ = min_ = max_ = 0;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(name, std::make_pair(std::make_unique<Counter>(), help))
             .first;
  }
  return it->second.first.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name,
                      std::make_pair(std::make_unique<Histogram>(), help))
             .first;
  }
  return it->second.first.get();
}

std::string MetricsRegistry::ExposeText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, entry] : counters_) {
    if (!entry.second.empty()) {
      out += "# HELP " + name + " " + entry.second + "\n";
    }
    out += "# TYPE " + name + " counter\n";
    out += name + " " + FormatNumber(double(entry.first->value())) + "\n";
  }
  for (const auto& [name, entry] : histograms_) {
    const Histogram& h = *entry.first;
    if (!entry.second.empty()) {
      out += "# HELP " + name + " " + entry.second + "\n";
    }
    out += "# TYPE " + name + " histogram\n";
    uint64_t cumulative = 0;
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      uint64_t c = h.bucket_count(b);
      cumulative += c;
      if (c == 0 && b != Histogram::kNumBuckets - 1) continue;  // sparse
      out += name + "_bucket{le=\"" +
             FormatNumber(Histogram::BucketUpperBound(b)) + "\"} " +
             FormatNumber(double(cumulative)) + "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " + FormatNumber(double(h.count())) +
           "\n";
    out += name + "_sum " + FormatNumber(h.sum()) + "\n";
    out += name + "_count " + FormatNumber(double(h.count())) + "\n";
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{";
  bool first = true;
  for (const auto& [name, entry] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) +
           "\":" + FormatNumber(double(entry.first->value()));
  }
  for (const auto& [name, entry] : histograms_) {
    const Histogram& h = *entry.first;
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) +
           "\":{\"count\":" + FormatNumber(double(h.count())) +
           ",\"mean\":" + FormatNumber(h.mean()) +
           ",\"min\":" + FormatNumber(h.min()) +
           ",\"max\":" + FormatNumber(h.max()) +
           ",\"p50\":" + FormatNumber(h.Percentile(0.50)) +
           ",\"p95\":" + FormatNumber(h.Percentile(0.95)) +
           ",\"p99\":" + FormatNumber(h.Percentile(0.99)) + "}";
  }
  out += "}";
  return out;
}

std::string MetricsRegistry::SummaryText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char buf[192];
  bool any = false;
  for (const auto& [name, entry] : histograms_) {
    const Histogram& h = *entry.first;
    if (h.count() == 0) continue;
    if (!any) {
      std::snprintf(buf, sizeof(buf), "%-28s %10s %12s %12s %12s %12s\n",
                    "histogram", "count", "mean", "p50", "p95", "p99");
      out += buf;
      any = true;
    }
    std::snprintf(buf, sizeof(buf),
                  "%-28s %10llu %12.1f %12.1f %12.1f %12.1f\n", name.c_str(),
                  (unsigned long long)h.count(), h.mean(), h.Percentile(0.50),
                  h.Percentile(0.95), h.Percentile(0.99));
    out += buf;
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : counters_) entry.first->Reset();
  for (auto& [name, entry] : histograms_) entry.first->Reset();
}

std::vector<std::string> MetricsRegistry::CounterNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  for (const auto& [name, entry] : counters_) names.push_back(name);
  return names;
}

std::vector<std::string> MetricsRegistry::HistogramNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  for (const auto& [name, entry] : histograms_) names.push_back(name);
  return names;
}

}  // namespace datalawyer
