#include "common/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "common/strings.h"

namespace datalawyer {

int LogBucketFor(double value) {
  if (!(value >= 1)) return 0;  // also catches NaN and negatives
  int b = int(std::floor(std::log2(value))) + 1;
  if (b < 0) b = 0;
  if (b >= Histogram::kNumBuckets) b = Histogram::kNumBuckets - 1;
  return b;
}

double LogBucketPercentile(const uint64_t* buckets, int num_buckets,
                           uint64_t n, double mn, double mx, double q) {
  if (n == 0) return 0;
  q = std::min(1.0, std::max(0.0, q));
  if (q <= 0.0) return mn;
  if (q >= 1.0) return mx;
  // Rank of the target observation (1-based, nearest-rank).
  uint64_t rank = uint64_t(std::ceil(q * double(n)));
  if (rank < 1) rank = 1;
  uint64_t seen = 0;
  for (int b = 0; b < num_buckets; ++b) {
    uint64_t c = buckets[b];
    if (c == 0) continue;
    if (seen + c >= rank) {
      double lo = b == 0 ? 0.0 : std::ldexp(1.0, b - 1);
      double hi = Histogram::BucketUpperBound(b);
      // Clamp to the observed range so p100 never exceeds max().
      lo = std::max(lo, mn);
      hi = std::min(hi, mx);
      if (hi < lo) hi = lo;
      // Midpoint convention: the k-th of c observations sits at (k-0.5)/c
      // through the bucket, so a single-observation bucket reports its
      // middle instead of its upper edge.
      double frac = (double(rank - seen) - 0.5) / double(c);
      return lo + frac * (hi - lo);
    }
    seen += c;
  }
  return mx;
}

namespace {

std::string FormatNumber(double v) {
  char buf[48];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  return buf;
}

}  // namespace

void Histogram::Observe(double value) {
  if (std::isnan(value)) return;
  if (value < 0) value = 0;
  buckets_[LogBucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  if (!seen_any_) {
    seen_any_ = true;
    min_ = max_ = value;
  } else {
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }
  sum_ += value;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double Histogram::mean() const {
  uint64_t n = count();
  return n == 0 ? 0 : sum() / double(n);
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return min_;
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_;
}

double Histogram::BucketUpperBound(int b) {
  return b == 0 ? 1.0 : std::ldexp(1.0, b);  // 2^b
}

double Histogram::Percentile(double q) const {
  uint64_t n = count();
  if (n == 0) return 0;
  uint64_t snapshot[kNumBuckets];
  for (int b = 0; b < kNumBuckets; ++b) {
    snapshot[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  double mn, mx;
  {
    std::lock_guard<std::mutex> lock(mu_);
    mn = min_;
    mx = max_;
  }
  return LogBucketPercentile(snapshot, kNumBuckets, n, mn, mx, q);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  seen_any_ = false;
  sum_ = min_ = max_ = 0;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(name, std::make_pair(std::make_unique<Counter>(), help))
             .first;
  }
  return it->second.first.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name,
                      std::make_pair(std::make_unique<Histogram>(), help))
             .first;
  }
  return it->second.first.get();
}

std::string MetricsRegistry::ExposeText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, entry] : counters_) {
    if (!entry.second.empty()) {
      out += "# HELP " + name + " " + entry.second + "\n";
    }
    out += "# TYPE " + name + " counter\n";
    out += name + " " + FormatNumber(double(entry.first->value())) + "\n";
  }
  for (const auto& [name, entry] : histograms_) {
    const Histogram& h = *entry.first;
    if (!entry.second.empty()) {
      out += "# HELP " + name + " " + entry.second + "\n";
    }
    out += "# TYPE " + name + " histogram\n";
    uint64_t cumulative = 0;
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      uint64_t c = h.bucket_count(b);
      cumulative += c;
      if (c == 0 && b != Histogram::kNumBuckets - 1) continue;  // sparse
      out += name + "_bucket{le=\"" +
             FormatNumber(Histogram::BucketUpperBound(b)) + "\"} " +
             FormatNumber(double(cumulative)) + "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " + FormatNumber(double(h.count())) +
           "\n";
    out += name + "_sum " + FormatNumber(h.sum()) + "\n";
    out += name + "_count " + FormatNumber(double(h.count())) + "\n";
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{";
  bool first = true;
  for (const auto& [name, entry] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) +
           "\":" + FormatNumber(double(entry.first->value()));
  }
  for (const auto& [name, entry] : histograms_) {
    const Histogram& h = *entry.first;
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) +
           "\":{\"count\":" + FormatNumber(double(h.count())) +
           ",\"mean\":" + FormatNumber(h.mean()) +
           ",\"min\":" + FormatNumber(h.min()) +
           ",\"max\":" + FormatNumber(h.max()) +
           ",\"p50\":" + FormatNumber(h.Percentile(0.50)) +
           ",\"p95\":" + FormatNumber(h.Percentile(0.95)) +
           ",\"p99\":" + FormatNumber(h.Percentile(0.99)) + "}";
  }
  out += "}";
  return out;
}

std::string MetricsRegistry::SummaryText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char buf[192];
  if (!histograms_.empty()) {
    std::snprintf(buf, sizeof(buf), "%-28s %10s %12s %12s %12s %12s\n",
                  "histogram", "count", "mean", "p50", "p95", "p99");
    out += buf;
  }
  for (const auto& [name, entry] : histograms_) {
    const Histogram& h = *entry.first;
    if (h.count() == 0) {
      // Explicit "no samples yet" row: every registered phase stays
      // visible, and 0-count is never confusable with a 0µs latency.
      std::snprintf(buf, sizeof(buf), "%-28s %10llu %12s %12s %12s %12s\n",
                    name.c_str(), 0ull, "-", "-", "-", "-");
    } else {
      std::snprintf(
          buf, sizeof(buf), "%-28s %10llu %12.1f %12.1f %12.1f %12.1f\n",
          name.c_str(), (unsigned long long)h.count(), h.mean(),
          h.Percentile(0.50), h.Percentile(0.95), h.Percentile(0.99));
    }
    out += buf;
  }
  if (!counters_.empty()) {
    if (!out.empty()) out += "\n";
    std::snprintf(buf, sizeof(buf), "%-40s %12s\n", "counter", "value");
    out += buf;
    for (const auto& [name, entry] : counters_) {
      std::snprintf(buf, sizeof(buf), "%-40s %12llu\n", name.c_str(),
                    (unsigned long long)entry.first->value());
      out += buf;
    }
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : counters_) entry.first->Reset();
  for (auto& [name, entry] : histograms_) entry.first->Reset();
}

std::vector<std::string> MetricsRegistry::CounterNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  for (const auto& [name, entry] : counters_) names.push_back(name);
  return names;
}

std::vector<std::string> MetricsRegistry::HistogramNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  for (const auto& [name, entry] : histograms_) names.push_back(name);
  return names;
}

const char* RollupRegistry::PhaseName(int phase) {
  switch (phase) {
    case kTotal:
      return "total";
    case kLogGen:
      return "log_gen";
    case kPolicyEval:
      return "policy_eval";
    case kCompaction:
      return "compaction";
    case kUserExec:
      return "user_exec";
    default:
      return "?";
  }
}

RollupRegistry& RollupRegistry::Global() {
  static RollupRegistry* registry = new RollupRegistry();
  return *registry;
}

int64_t RollupRegistry::NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void RollupRegistry::Slot::Clear(int64_t new_epoch) {
  epoch = new_epoch;
  queries = 0;
  rejected = 0;
  for (int p = 0; p < kNumPhases; ++p) {
    for (int b = 0; b < Histogram::kNumBuckets; ++b) buckets[p][b] = 0;
    min_v[p] = max_v[p] = 0;
    seen[p] = false;
  }
  sched_morsels = 0;
  sched_steals = 0;
  sched_queue_wait_us = 0;
  sched_busy_us = 0;
}

void RollupRegistry::Record(bool was_rejected,
                            const double phase_us[kNumPhases]) {
  RecordAt(NowUs(), was_rejected, phase_us);
}

void RollupRegistry::RecordAt(int64_t now_us, bool was_rejected,
                              const double phase_us[kNumPhases]) {
  int64_t epoch = now_us / 1000000;
  if (epoch < 0) epoch = 0;
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = slots_[epoch % kNumSlots];
  if (slot.epoch != epoch) slot.Clear(epoch);
  slot.queries++;
  if (was_rejected) slot.rejected++;
  for (int p = 0; p < kNumPhases; ++p) {
    double v = phase_us[p];
    if (std::isnan(v)) v = 0;
    if (v < 0) v = 0;
    slot.buckets[p][LogBucketFor(v)]++;
    if (!slot.seen[p]) {
      slot.seen[p] = true;
      slot.min_v[p] = slot.max_v[p] = v;
    } else {
      if (v < slot.min_v[p]) slot.min_v[p] = v;
      if (v > slot.max_v[p]) slot.max_v[p] = v;
    }
  }
}

void RollupRegistry::RecordSched(uint64_t morsels, uint64_t steals,
                                 uint64_t queue_wait_us, uint64_t busy_us) {
  RecordSchedAt(NowUs(), morsels, steals, queue_wait_us, busy_us);
}

void RollupRegistry::RecordSchedAt(int64_t now_us, uint64_t morsels,
                                   uint64_t steals, uint64_t queue_wait_us,
                                   uint64_t busy_us) {
  int64_t epoch = now_us / 1000000;
  if (epoch < 0) epoch = 0;
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = slots_[epoch % kNumSlots];
  if (slot.epoch != epoch) slot.Clear(epoch);
  slot.sched_morsels += morsels;
  slot.sched_steals += steals;
  slot.sched_queue_wait_us += queue_wait_us;
  slot.sched_busy_us += busy_us;
}

RollupRegistry::WindowSnapshot RollupRegistry::Snapshot(int window_s) const {
  return SnapshotAt(NowUs(), window_s);
}

RollupRegistry::WindowSnapshot RollupRegistry::SnapshotAt(
    int64_t now_us, int window_s) const {
  WindowSnapshot snap;
  snap.window_s = window_s;
  int64_t now_epoch = now_us / 1000000;
  int64_t lo_epoch = now_epoch - window_s + 1;  // inclusive
  uint64_t merged[kNumPhases][Histogram::kNumBuckets] = {};
  double mn[kNumPhases] = {};
  double mx[kNumPhases] = {};
  bool seen[kNumPhases] = {};
  std::lock_guard<std::mutex> lock(mu_);
  for (const Slot& slot : slots_) {
    if (slot.epoch < lo_epoch || slot.epoch > now_epoch) continue;
    snap.queries += slot.queries;
    snap.rejected += slot.rejected;
    snap.sched_morsels += slot.sched_morsels;
    snap.sched_steals += slot.sched_steals;
    snap.sched_queue_wait_us += slot.sched_queue_wait_us;
    snap.sched_busy_us += slot.sched_busy_us;
    for (int p = 0; p < kNumPhases; ++p) {
      if (!slot.seen[p]) continue;
      for (int b = 0; b < Histogram::kNumBuckets; ++b) {
        merged[p][b] += slot.buckets[p][b];
      }
      if (!seen[p]) {
        seen[p] = true;
        mn[p] = slot.min_v[p];
        mx[p] = slot.max_v[p];
      } else {
        mn[p] = std::min(mn[p], slot.min_v[p]);
        mx[p] = std::max(mx[p], slot.max_v[p]);
      }
    }
  }
  if (snap.queries > 0) {
    snap.rejection_rate = double(snap.rejected) / double(snap.queries);
  }
  for (int p = 0; p < kNumPhases; ++p) {
    if (!seen[p]) continue;
    snap.p50[p] = LogBucketPercentile(merged[p], Histogram::kNumBuckets,
                                        snap.queries, mn[p], mx[p], 0.50);
    snap.p95[p] = LogBucketPercentile(merged[p], Histogram::kNumBuckets,
                                        snap.queries, mn[p], mx[p], 0.95);
  }
  return snap;
}

void RollupRegistry::AppendExposition(std::string* out) const {
  int64_t now_us = NowUs();
  *out += "# TYPE dl_rollup_queries gauge\n";
  *out += "# TYPE dl_rollup_rejected gauge\n";
  *out += "# TYPE dl_rollup_rejection_rate gauge\n";
  *out += "# TYPE dl_rollup_phase_us gauge\n";
  *out += "# TYPE dl_rollup_sched_morsels gauge\n";
  *out += "# TYPE dl_rollup_sched_steals gauge\n";
  *out += "# TYPE dl_rollup_sched_queue_wait_us gauge\n";
  *out += "# TYPE dl_rollup_sched_busy_us gauge\n";
  for (int w : kWindowSeconds) {
    WindowSnapshot snap = SnapshotAt(now_us, w);
    std::string window = "{window=\"" + std::to_string(w) + "s\"";
    *out += "dl_rollup_queries" + window + "} " +
            FormatNumber(double(snap.queries)) + "\n";
    *out += "dl_rollup_rejected" + window + "} " +
            FormatNumber(double(snap.rejected)) + "\n";
    *out += "dl_rollup_rejection_rate" + window + "} " +
            FormatNumber(snap.rejection_rate) + "\n";
    *out += "dl_rollup_sched_morsels" + window + "} " +
            FormatNumber(double(snap.sched_morsels)) + "\n";
    *out += "dl_rollup_sched_steals" + window + "} " +
            FormatNumber(double(snap.sched_steals)) + "\n";
    *out += "dl_rollup_sched_queue_wait_us" + window + "} " +
            FormatNumber(double(snap.sched_queue_wait_us)) + "\n";
    *out += "dl_rollup_sched_busy_us" + window + "} " +
            FormatNumber(double(snap.sched_busy_us)) + "\n";
    for (int p = 0; p < kNumPhases; ++p) {
      std::string labels =
          window + ",phase=\"" + PhaseName(p) + "\",quantile=\"";
      *out += "dl_rollup_phase_us" + labels + "0.5\"} " +
              FormatNumber(snap.p50[p]) + "\n";
      *out += "dl_rollup_phase_us" + labels + "0.95\"} " +
              FormatNumber(snap.p95[p]) + "\n";
    }
  }
}

std::string RollupRegistry::SummaryText() const {
  int64_t now_us = NowUs();
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-8s %8s %8s %8s %12s %12s %12s %12s\n",
                "window", "queries", "reject", "rate%", "p50 total",
                "p95 total", "p50 policy", "p95 policy");
  out += buf;
  for (int w : kWindowSeconds) {
    WindowSnapshot snap = SnapshotAt(now_us, w);
    std::snprintf(buf, sizeof(buf),
                  "%-8s %8llu %8llu %8.1f %12.1f %12.1f %12.1f %12.1f\n",
                  (std::to_string(w) + "s").c_str(),
                  (unsigned long long)snap.queries,
                  (unsigned long long)snap.rejected,
                  snap.rejection_rate * 100.0, snap.p50[kTotal],
                  snap.p95[kTotal], snap.p50[kPolicyEval],
                  snap.p95[kPolicyEval]);
    out += buf;
  }
  return out;
}

void RollupRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Slot& slot : slots_) slot.Clear(-1);
}

}  // namespace datalawyer
