#ifndef DATALAWYER_COMMON_METRICS_H_
#define DATALAWYER_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace datalawyer {

/// Monotonically increasing counter. Increment is one relaxed atomic add;
/// safe from any thread, including ThreadPool workers.
class Counter {
 public:
  void Increment(uint64_t by = 1) {
    value_.fetch_add(by, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Log-scale histogram over non-negative values (canonically microseconds).
/// Bucket b counts observations in [2^(b-1), 2^b); bucket 0 counts values
/// < 1. 40 buckets cover up to ~2^39 µs ≈ 6 days — ample for any span this
/// system times. Observe() is lock-free (relaxed atomics per bucket);
/// percentile estimates interpolate linearly inside the winning bucket, so
/// they carry the usual power-of-two bucket resolution (< 50% relative
/// error, far less in practice near bucket edges).
class Histogram {
 public:
  static constexpr int kNumBuckets = 40;

  void Observe(double value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  double mean() const;
  double min() const;
  double max() const;

  /// Estimated value at quantile q in [0, 1] (0.5 = median). 0 when empty.
  double Percentile(double q) const;

  /// Upper bound of bucket b (the Prometheus `le` label).
  static double BucketUpperBound(int b);
  uint64_t bucket_count(int b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  /// Sum/min/max kept under a light mutex: doubles have no portable atomic
  /// fetch_add, and Observe is never on a disabled-path hot loop.
  mutable std::mutex mu_;
  bool seen_any_ = false;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Named counters and histograms with Prometheus text exposition.
///
/// Lookup by name takes a mutex; hot paths should resolve their handles
/// once (pointers remain valid for the registry's lifetime) and then update
/// lock-free. `MetricsRegistry::Global()` is the process-wide instance the
/// DataLawyer pipeline records into when `enable_metrics` is on; isolated
/// registries can be constructed freely (tests, benches).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  static MetricsRegistry& Global();

  /// Finds or creates. `help` is kept from the first registration.
  Counter* GetCounter(const std::string& name, const std::string& help = "");
  Histogram* GetHistogram(const std::string& name,
                          const std::string& help = "");

  /// Prometheus text exposition format: HELP/TYPE headers, cumulative
  /// `_bucket{le="..."}` lines per histogram plus `_sum`/`_count`.
  std::string ExposeText() const;

  /// Compact JSON snapshot: counters as numbers, histograms as
  /// {count,mean,min,max,p50,p95,p99}. Used by the bench harness.
  std::string ToJson() const;

  /// Human-readable latency summary: one row per histogram with count,
  /// mean, p50, p95, p99 (the shell's `\metrics` header — the Table 4
  /// phase percentiles at a glance). Empty histograms are skipped.
  std::string SummaryText() const;

  /// Resets every metric to zero (handles stay valid).
  void ResetAll();

  std::vector<std::string> CounterNames() const;
  std::vector<std::string> HistogramNames() const;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::pair<std::unique_ptr<Counter>, std::string>>
      counters_;
  std::map<std::string, std::pair<std::unique_ptr<Histogram>, std::string>>
      histograms_;
};

}  // namespace datalawyer

#endif  // DATALAWYER_COMMON_METRICS_H_
