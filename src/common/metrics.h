#ifndef DATALAWYER_COMMON_METRICS_H_
#define DATALAWYER_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace datalawyer {

/// Log2 bucket index for `value` in the shared 40-bucket layout used by
/// Histogram, the rollup slots, and the morsel timing profiles: bucket b
/// counts observations in [2^(b-1), 2^b); bucket 0 counts values < 1
/// (including NaN and negatives).
int LogBucketFor(double value);

/// Quantile estimate over a log2 bucket array (nearest-rank bucket pick,
/// midpoint convention inside it, clamped to the observed [mn, mx]). The
/// single implementation behind Histogram::Percentile, the windowed
/// rollups, and the per-operator morsel histograms, so they all agree by
/// construction.
double LogBucketPercentile(const uint64_t* buckets, int num_buckets,
                           uint64_t n, double mn, double mx, double q);

/// Monotonically increasing counter. Increment is one relaxed atomic add;
/// safe from any thread, including ThreadPool workers.
class Counter {
 public:
  void Increment(uint64_t by = 1) {
    value_.fetch_add(by, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Log-scale histogram over non-negative values (canonically microseconds).
/// Bucket b counts observations in [2^(b-1), 2^b); bucket 0 counts values
/// < 1. 40 buckets cover up to ~2^39 µs ≈ 6 days — ample for any span this
/// system times. Observe() is lock-free (relaxed atomics per bucket);
/// percentile estimates interpolate linearly inside the winning bucket, so
/// they carry the usual power-of-two bucket resolution (< 50% relative
/// error, far less in practice near bucket edges).
class Histogram {
 public:
  static constexpr int kNumBuckets = 40;

  void Observe(double value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  double mean() const;
  double min() const;
  double max() const;

  /// Estimated value at quantile q in [0, 1] (0.5 = median). 0 when empty.
  double Percentile(double q) const;

  /// Upper bound of bucket b (the Prometheus `le` label).
  static double BucketUpperBound(int b);
  uint64_t bucket_count(int b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  /// Sum/min/max kept under a light mutex: doubles have no portable atomic
  /// fetch_add, and Observe is never on a disabled-path hot loop.
  mutable std::mutex mu_;
  bool seen_any_ = false;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Named counters and histograms with Prometheus text exposition.
///
/// Lookup by name takes a mutex; hot paths should resolve their handles
/// once (pointers remain valid for the registry's lifetime) and then update
/// lock-free. `MetricsRegistry::Global()` is the process-wide instance the
/// DataLawyer pipeline records into when `enable_metrics` is on; isolated
/// registries can be constructed freely (tests, benches).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  static MetricsRegistry& Global();

  /// Finds or creates. `help` is kept from the first registration.
  Counter* GetCounter(const std::string& name, const std::string& help = "");
  Histogram* GetHistogram(const std::string& name,
                          const std::string& help = "");

  /// Prometheus text exposition format: HELP/TYPE headers, cumulative
  /// `_bucket{le="..."}` lines per histogram plus `_sum`/`_count`.
  std::string ExposeText() const;

  /// Compact JSON snapshot: counters as numbers, histograms as
  /// {count,mean,min,max,p50,p95,p99}. Used by the bench harness.
  std::string ToJson() const;

  /// Human-readable summary: one row per histogram with count, mean, p50,
  /// p95, p99 (the shell's `\metrics` header — the Table 4 phase
  /// percentiles at a glance), followed by a counter table (cache and
  /// incremental-evaluation totals). Empty histograms render explicitly
  /// with count 0 and `-` in every percentile column, so a missing phase
  /// is visibly "no samples" rather than silently absent.
  std::string SummaryText() const;

  /// Resets every metric to zero (handles stay valid).
  void ResetAll();

  std::vector<std::string> CounterNames() const;
  std::vector<std::string> HistogramNames() const;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::pair<std::unique_ptr<Counter>, std::string>>
      counters_;
  std::map<std::string, std::pair<std::unique_ptr<Histogram>, std::string>>
      histograms_;
};

/// Fixed-width time-window rollups of enforcement verdicts and per-phase
/// latency. A ring of one-second slots (each holding verdict counts plus a
/// log2 bucket array per phase, the same bucket layout as Histogram) is
/// merged on demand into 1s / 10s / 60s window snapshots with p50/p95
/// computed by the same nearest-rank-with-midpoint convention Histogram
/// uses — so a rollup percentile over a window that saw every sample agrees
/// with the cumulative `\metrics` histogram to within one bucket.
///
/// Record() takes one mutex; it runs once per checked query on the
/// enforcement (not query-execution) path, matching the discipline of the
/// audit ring. Snapshots merge at read time, so an idle system pays
/// nothing for windows sliding past.
class RollupRegistry {
 public:
  /// Phases carried per-slot. kTotal is end-to-end enforcement latency;
  /// the rest mirror the EnforcementProfile phases that dominate it.
  enum Phase {
    kTotal = 0,
    kLogGen,
    kPolicyEval,
    kCompaction,
    kUserExec,
    kNumPhases
  };
  static const char* PhaseName(int phase);

  static constexpr int kNumWindows = 3;
  static constexpr int kWindowSeconds[kNumWindows] = {1, 10, 60};

  struct WindowSnapshot {
    int window_s = 0;
    uint64_t queries = 0;
    uint64_t rejected = 0;
    double rejection_rate = 0;  ///< rejected / queries; 0 when idle
    double p50[kNumPhases] = {};
    double p95[kNumPhases] = {};
    /// Scheduler-utilization aggregates over the window (see RecordSched).
    uint64_t sched_morsels = 0;
    uint64_t sched_steals = 0;
    uint64_t sched_queue_wait_us = 0;
    uint64_t sched_busy_us = 0;
  };

  RollupRegistry() = default;
  static RollupRegistry& Global();

  /// Records one verdict with its per-phase latencies (µs, indexed by
  /// Phase) at the current steady-clock time.
  void Record(bool rejected, const double phase_us[kNumPhases]);
  /// Deterministic-clock variant for tests.
  void RecordAt(int64_t now_us, bool rejected,
                const double phase_us[kNumPhases]);

  /// Records one query's scheduler utilization — morsel tasks run, steals
  /// observed, summed submit-to-start latency, and parallel CPU time — into
  /// the current one-second slot, so the trailing windows can answer "how
  /// hard was the pool working over the last N seconds". Same locking
  /// discipline as Record(): one mutex, once per checked query.
  void RecordSched(uint64_t morsels, uint64_t steals, uint64_t queue_wait_us,
                   uint64_t busy_us);
  void RecordSchedAt(int64_t now_us, uint64_t morsels, uint64_t steals,
                     uint64_t queue_wait_us, uint64_t busy_us);

  /// Merges the slots covering the trailing `window_s` seconds.
  WindowSnapshot Snapshot(int window_s) const;
  WindowSnapshot SnapshotAt(int64_t now_us, int window_s) const;

  /// Prometheus gauges for every window: dl_rollup_queries,
  /// dl_rollup_rejected, dl_rollup_rejection_rate, and
  /// dl_rollup_phase_us{phase=...,quantile=...}.
  void AppendExposition(std::string* out) const;

  /// One table row per window: the shell's `\top` view.
  std::string SummaryText() const;

  void Reset();

  /// Steady-clock microseconds (the time base Record() stamps with).
  static int64_t NowUs();

  RollupRegistry(const RollupRegistry&) = delete;
  RollupRegistry& operator=(const RollupRegistry&) = delete;

 private:
  /// One second of observations. 64 slots > the widest 60 s window, so a
  /// slot is never overwritten while still inside any window.
  static constexpr int kNumSlots = 64;
  struct Slot {
    int64_t epoch = -1;  ///< seconds-since-clock-origin this slot covers
    uint64_t queries = 0;
    uint64_t rejected = 0;
    uint64_t buckets[kNumPhases][Histogram::kNumBuckets] = {};
    double min_v[kNumPhases] = {};
    double max_v[kNumPhases] = {};
    bool seen[kNumPhases] = {};
    uint64_t sched_morsels = 0;
    uint64_t sched_steals = 0;
    uint64_t sched_queue_wait_us = 0;
    uint64_t sched_busy_us = 0;
    void Clear(int64_t new_epoch);
  };

  mutable std::mutex mu_;
  Slot slots_[kNumSlots];
};

}  // namespace datalawyer

#endif  // DATALAWYER_COMMON_METRICS_H_
