#include "common/task_scheduler.h"

#include <algorithm>

namespace datalawyer {

namespace {
/// Identifies the scheduler worker running on this thread (if any) so
/// tasks spawned from inside a task land on the spawner's own deque front
/// — the LIFO half of the stealing discipline.
struct WorkerIdentity {
  TaskScheduler* scheduler = nullptr;
  size_t index = 0;
};
thread_local WorkerIdentity tls_worker;
}  // namespace

TaskScheduler::TaskScheduler(size_t num_threads) {
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back(std::make_unique<Worker>());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i]() { WorkerLoop(i); });
  }
}

TaskScheduler::~TaskScheduler() {
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    shutdown_ = true;
  }
  sleep_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void TaskScheduler::Enqueue(std::function<void()> task) {
  size_t target;
  bool own = tls_worker.scheduler == this;
  if (own) {
    target = tls_worker.index;
  } else {
    target = inject_cursor_.fetch_add(1, std::memory_order_relaxed) %
             workers_.size();
  }
  {
    std::lock_guard<std::mutex> lock(workers_[target]->mu);
    if (own) {
      workers_[target]->deque.push_front(std::move(task));
    } else {
      workers_[target]->deque.push_back(std::move(task));
    }
  }
  pending_.fetch_add(1, std::memory_order_release);
  {
    // Locking orders this notify against the sleep predicate: a worker
    // either already waits (and is woken) or has not yet re-checked
    // pending_ (and will see the increment).
    std::lock_guard<std::mutex> lock(sleep_mu_);
  }
  sleep_cv_.notify_one();
}

std::function<void()> TaskScheduler::NextTask(size_t self) {
  // Own deque first, from the front (most recently pushed — LIFO).
  {
    Worker& w = *workers_[self];
    std::lock_guard<std::mutex> lock(w.mu);
    if (!w.deque.empty()) {
      std::function<void()> task = std::move(w.deque.front());
      w.deque.pop_front();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return task;
    }
  }
  // Steal from the back of the first non-empty victim (oldest task — the
  // one the owner would reach last).
  for (size_t k = 1; k < workers_.size(); ++k) {
    Worker& v = *workers_[(self + k) % workers_.size()];
    std::lock_guard<std::mutex> lock(v.mu);
    if (!v.deque.empty()) {
      std::function<void()> task = std::move(v.deque.back());
      v.deque.pop_back();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      steals_.fetch_add(1, std::memory_order_relaxed);
      return task;
    }
  }
  return {};
}

void TaskScheduler::WorkerLoop(size_t index) {
  tls_worker = WorkerIdentity{this, index};
  for (;;) {
    std::function<void()> task = NextTask(index);
    if (task) {
      task();
      workers_[index]->executed.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mu_);
    sleep_cv_.wait(lock, [this]() {
      return shutdown_ || pending_.load(std::memory_order_acquire) > 0;
    });
    if (shutdown_ && pending_.load(std::memory_order_acquire) == 0) return;
  }
}

void TaskScheduler::ParallelFor(size_t n,
                                const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || workers_.empty()) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // One shared claim counter; each participant grabs the next unclaimed
  // index. The caller is a participant, so completion never depends on a
  // free worker — which is what makes nested ParallelFor (a task calling
  // ParallelFor) safe: the inner caller drains its own iterations.
  struct SharedState {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
  };
  auto state = std::make_shared<SharedState>();

  auto run = [state, n, &fn]() {
    for (;;) {
      size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      fn(i);
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        std::lock_guard<std::mutex> lock(state->mu);
        state->cv.notify_all();
      }
    }
  };

  size_t helpers = std::min(workers_.size(), n - 1);
  for (size_t i = 0; i < helpers; ++i) Enqueue(run);

  run();  // the caller works too

  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&]() {
    return state->done.load(std::memory_order_acquire) == n;
  });
}

}  // namespace datalawyer
