#include "common/task_scheduler.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/trace.h"

namespace datalawyer {

namespace {
/// Identifies the scheduler worker running on this thread (if any) so
/// tasks spawned from inside a task land on the spawner's own deque front
/// — the LIFO half of the stealing discipline.
struct WorkerIdentity {
  TaskScheduler* scheduler = nullptr;
  size_t index = 0;
};
thread_local WorkerIdentity tls_worker;

/// Attribution group for tasks enqueued by this thread. Installed by
/// ScopedTaskGroup on external threads and set/restored by WorkerLoop
/// around each task, so nested submissions inherit the spawner's group.
thread_local TaskGroupStats* tls_group = nullptr;

/// Executed-task floor below which the imbalance watchdog stays quiet: a
/// handful of tasks on a wide pool always looks imbalanced.
constexpr uint64_t kImbalanceFloor = 64;
}  // namespace

uint64_t TaskScheduler::TelemetryNowUs() {
  return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count());
}

TaskGroupStats* TaskScheduler::ExchangeCurrentGroup(TaskGroupStats* group) {
  TaskGroupStats* prev = tls_group;
  tls_group = group;
  return prev;
}

TaskScheduler::TaskScheduler(size_t num_threads) {
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back(std::make_unique<Worker>());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i]() { WorkerLoop(i); });
  }
}

TaskScheduler::~TaskScheduler() {
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    shutdown_ = true;
  }
  sleep_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void TaskScheduler::Enqueue(std::function<void()> task) {
  Task entry;
  entry.fn = std::move(task);
  entry.group = tls_group;
  if (telemetry_.load(std::memory_order_relaxed)) {
    entry.enqueue_us = TelemetryNowUs();
  }
  if (entry.group != nullptr) {
    entry.group->tasks.fetch_add(1, std::memory_order_relaxed);
  }
  size_t target;
  bool own = tls_worker.scheduler == this;
  if (own) {
    target = tls_worker.index;
  } else {
    target = inject_cursor_.fetch_add(1, std::memory_order_relaxed) %
             workers_.size();
  }
  {
    Worker& w = *workers_[target];
    std::lock_guard<std::mutex> lock(w.mu);
    if (own) {
      w.deque.push_front(std::move(entry));
    } else {
      w.deque.push_back(std::move(entry));
    }
    uint64_t depth = w.deque.size();
    w.stats.depth.store(depth, std::memory_order_relaxed);
    if (depth > w.stats.depth_hwm.load(std::memory_order_relaxed)) {
      // Monotone under w.mu: every writer to this slot holds the lock.
      w.stats.depth_hwm.store(depth, std::memory_order_relaxed);
    }
  }
  pending_.fetch_add(1, std::memory_order_release);
  {
    // Locking orders this notify against the sleep predicate: a worker
    // either already waits (and is woken) or has not yet re-checked
    // pending_ (and will see the increment).
    std::lock_guard<std::mutex> lock(sleep_mu_);
  }
  sleep_cv_.notify_one();
}

TaskScheduler::Task TaskScheduler::NextTask(size_t self) {
  // Own deque first, from the front (most recently pushed — LIFO).
  {
    Worker& w = *workers_[self];
    std::lock_guard<std::mutex> lock(w.mu);
    if (!w.deque.empty()) {
      Task task = std::move(w.deque.front());
      w.deque.pop_front();
      w.stats.depth.store(w.deque.size(), std::memory_order_relaxed);
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return task;
    }
  }
  // Steal from the back of the first non-empty victim (oldest task — the
  // one the owner would reach last).
  for (size_t k = 1; k < workers_.size(); ++k) {
    size_t victim = (self + k) % workers_.size();
    Worker& v = *workers_[victim];
    std::lock_guard<std::mutex> lock(v.mu);
    if (!v.deque.empty()) {
      Task task = std::move(v.deque.back());
      v.deque.pop_back();
      v.stats.depth.store(v.deque.size(), std::memory_order_relaxed);
      pending_.fetch_sub(1, std::memory_order_relaxed);
      workers_[self]->stats.steals_taken.fetch_add(1,
                                                   std::memory_order_relaxed);
      v.stats.steals_given.fetch_add(1, std::memory_order_relaxed);
      if (task.group != nullptr) {
        task.group->steals.fetch_add(1, std::memory_order_relaxed);
      }
      Tracer& tracer = Tracer::Global();
      if (tracer.enabled()) {
        tracer.RecordInstant("steal:w" + std::to_string(victim), "sched",
                             tracer.NowUs());
      }
      return task;
    }
  }
  return {};
}

void TaskScheduler::WorkerLoop(size_t index) {
  tls_worker = WorkerIdentity{this, index};
  Tracer::Global().SetCurrentThreadName("worker-" + std::to_string(index));
  WorkerStats& stats = workers_[index]->stats;
  for (;;) {
    Task task = NextTask(index);
    if (task) {
      uint64_t start_us =
          telemetry_.load(std::memory_order_relaxed) ? TelemetryNowUs() : 0;
      if (start_us != 0 && task.enqueue_us != 0 &&
          start_us > task.enqueue_us) {
        uint64_t wait = start_us - task.enqueue_us;
        stats.queue_waits.fetch_add(1, std::memory_order_relaxed);
        stats.queue_wait_us.fetch_add(wait, std::memory_order_relaxed);
        if (task.group != nullptr) {
          task.group->queue_wait_us.fetch_add(wait,
                                              std::memory_order_relaxed);
        }
      }
      TaskGroupStats* prev_group = tls_group;
      tls_group = task.group;
      task.fn();
      tls_group = prev_group;
      stats.executed.fetch_add(1, std::memory_order_relaxed);
      if (start_us != 0) {
        stats.busy_us.fetch_add(TelemetryNowUs() - start_us,
                                std::memory_order_relaxed);
      }
      continue;
    }
    uint64_t idle_start =
        telemetry_.load(std::memory_order_relaxed) ? TelemetryNowUs() : 0;
    {
      std::unique_lock<std::mutex> lock(sleep_mu_);
      sleep_cv_.wait(lock, [this]() {
        return shutdown_ || pending_.load(std::memory_order_acquire) > 0;
      });
      if (shutdown_ && pending_.load(std::memory_order_acquire) == 0) return;
    }
    if (idle_start != 0) {
      uint64_t idle_end = TelemetryNowUs();
      stats.idle_us.fetch_add(idle_end - idle_start,
                              std::memory_order_relaxed);
      Tracer& tracer = Tracer::Global();
      if (tracer.enabled()) {
        double end_ts = tracer.NowUs();
        double dur = double(idle_end - idle_start);
        tracer.Record("idle", "sched", end_ts - dur, dur,
                      Tracer::CurrentThreadId(), 0);
      }
    }
  }
}

uint64_t TaskScheduler::steals() const {
  uint64_t total = 0;
  for (const auto& w : workers_) {
    total += w->stats.steals_taken.load(std::memory_order_relaxed);
  }
  return total;
}

SchedulerSnapshot TaskScheduler::Snapshot() const {
  SchedulerSnapshot snap;
  snap.workers.reserve(workers_.size());
  bool telemetry = telemetry_.load(std::memory_order_relaxed);
  uint64_t now_us = telemetry ? TelemetryNowUs() : 0;
  uint64_t oldest_enqueue_us = 0;
  uint64_t max_executed = 0;
  for (size_t i = 0; i < workers_.size(); ++i) {
    Worker& w = *workers_[i];
    WorkerSnapshot ws;
    ws.index = i;
    ws.executed = w.stats.executed.load(std::memory_order_relaxed);
    ws.steals_taken = w.stats.steals_taken.load(std::memory_order_relaxed);
    ws.steals_given = w.stats.steals_given.load(std::memory_order_relaxed);
    ws.queue_waits = w.stats.queue_waits.load(std::memory_order_relaxed);
    ws.queue_wait_us = w.stats.queue_wait_us.load(std::memory_order_relaxed);
    ws.busy_us = w.stats.busy_us.load(std::memory_order_relaxed);
    ws.idle_us = w.stats.idle_us.load(std::memory_order_relaxed);
    ws.queue_depth = w.stats.depth.load(std::memory_order_relaxed);
    ws.queue_depth_hwm = w.stats.depth_hwm.load(std::memory_order_relaxed);
    if (telemetry && ws.queue_depth > 0) {
      // Age the oldest stamped task still queued. Deques stay shallow
      // (morsel fan-outs drain fast), and snapshotting is a pull-based
      // diagnostic, so a short scan under the worker's mutex is fine.
      std::lock_guard<std::mutex> lock(w.mu);
      for (const Task& t : w.deque) {
        if (t.enqueue_us == 0) continue;
        if (oldest_enqueue_us == 0 || t.enqueue_us < oldest_enqueue_us) {
          oldest_enqueue_us = t.enqueue_us;
        }
      }
    }
    snap.executed += ws.executed;
    snap.steals += ws.steals_taken;
    snap.queue_waits += ws.queue_waits;
    snap.queue_wait_us += ws.queue_wait_us;
    snap.busy_us += ws.busy_us;
    snap.idle_us += ws.idle_us;
    snap.queued += ws.queue_depth;
    max_executed = std::max(max_executed, ws.executed);
    snap.workers.push_back(ws);
  }
  if (oldest_enqueue_us != 0 && now_us > oldest_enqueue_us) {
    snap.oldest_queued_age_us = now_us - oldest_enqueue_us;
  }
  if (snap.executed > 0 && !workers_.empty()) {
    double mean = double(snap.executed) / double(workers_.size());
    snap.imbalance = double(max_executed) / mean;
  }

  // Watchdog: pull-based, evaluated on the state this snapshot observed.
  uint64_t starvation_us =
      watchdog_starvation_us_.load(std::memory_order_relaxed);
  if (starvation_us > 0 && snap.oldest_queued_age_us > starvation_us) {
    starvation_warnings_.fetch_add(1, std::memory_order_relaxed);
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "starvation: oldest queued task waiting %llu us "
                  "(threshold %llu us)",
                  (unsigned long long)snap.oldest_queued_age_us,
                  (unsigned long long)starvation_us);
    snap.warnings.push_back(buf);
  }
  double imbalance_ratio = watchdog_imbalance_.load(std::memory_order_relaxed);
  if (imbalance_ratio > 0 && snap.executed >= kImbalanceFloor &&
      snap.imbalance > imbalance_ratio) {
    imbalance_warnings_.fetch_add(1, std::memory_order_relaxed);
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "imbalance: max/mean executed %.2f (threshold %.2f)",
                  snap.imbalance, imbalance_ratio);
    snap.warnings.push_back(buf);
  }
  snap.starvation_warnings =
      starvation_warnings_.load(std::memory_order_relaxed);
  snap.imbalance_warnings = imbalance_warnings_.load(std::memory_order_relaxed);
  return snap;
}

void TaskScheduler::AppendExposition(std::string* out) const {
  SchedulerSnapshot snap = Snapshot();
  auto line = [out](const std::string& name, size_t worker, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "{worker=\"%zu\"} %.0f\n", worker, value);
    *out += name + buf;
  };
  *out += "# TYPE dl_worker_tasks_total counter\n";
  *out += "# TYPE dl_worker_steals_taken_total counter\n";
  *out += "# TYPE dl_worker_steals_given_total counter\n";
  *out += "# TYPE dl_worker_queue_wait_us_total counter\n";
  *out += "# TYPE dl_worker_busy_us_total counter\n";
  *out += "# TYPE dl_worker_idle_us_total counter\n";
  *out += "# TYPE dl_worker_queue_depth gauge\n";
  *out += "# TYPE dl_worker_queue_depth_hwm gauge\n";
  for (const WorkerSnapshot& w : snap.workers) {
    line("dl_worker_tasks_total", w.index, double(w.executed));
    line("dl_worker_steals_taken_total", w.index, double(w.steals_taken));
    line("dl_worker_steals_given_total", w.index, double(w.steals_given));
    line("dl_worker_queue_wait_us_total", w.index, double(w.queue_wait_us));
    line("dl_worker_busy_us_total", w.index, double(w.busy_us));
    line("dl_worker_idle_us_total", w.index, double(w.idle_us));
    line("dl_worker_queue_depth", w.index, double(w.queue_depth));
    line("dl_worker_queue_depth_hwm", w.index, double(w.queue_depth_hwm));
  }
  char buf[96];
  auto total = [&](const char* name, const char* type, double value) {
    *out += "# TYPE " + std::string(name) + " " + type + "\n";
    std::snprintf(buf, sizeof(buf), "%s %.0f\n", name, value);
    *out += buf;
  };
  total("dl_sched_tasks_total", "counter", double(snap.executed));
  total("dl_sched_steals_total", "counter", double(snap.steals));
  total("dl_sched_queue_wait_us_total", "counter",
        double(snap.queue_wait_us));
  total("dl_sched_busy_us_total", "counter", double(snap.busy_us));
  total("dl_sched_idle_us_total", "counter", double(snap.idle_us));
  total("dl_sched_queued", "gauge", double(snap.queued));
  total("dl_sched_oldest_queued_age_us", "gauge",
        double(snap.oldest_queued_age_us));
  *out += "# TYPE dl_sched_imbalance_ratio gauge\n";
  std::snprintf(buf, sizeof(buf), "dl_sched_imbalance_ratio %.4f\n",
                snap.imbalance);
  *out += buf;
  total("dl_sched_starvation_warnings_total", "counter",
        double(snap.starvation_warnings));
  total("dl_sched_imbalance_warnings_total", "counter",
        double(snap.imbalance_warnings));
}

void TaskScheduler::ParallelFor(size_t n,
                                const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || workers_.empty()) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // One shared claim counter; each participant grabs the next unclaimed
  // index. The caller is a participant, so completion never depends on a
  // free worker — which is what makes nested ParallelFor (a task calling
  // ParallelFor) safe: the inner caller drains its own iterations.
  struct SharedState {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
  };
  auto state = std::make_shared<SharedState>();

  auto run = [state, n, &fn]() {
    for (;;) {
      size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      fn(i);
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        std::lock_guard<std::mutex> lock(state->mu);
        state->cv.notify_all();
      }
    }
  };

  size_t helpers = std::min(workers_.size(), n - 1);
  for (size_t i = 0; i < helpers; ++i) Enqueue(run);

  run();  // the caller works too

  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&]() {
    return state->done.load(std::memory_order_acquire) == n;
  });
}

}  // namespace datalawyer
