#ifndef DATALAWYER_COMMON_TRACE_H_
#define DATALAWYER_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace datalawyer {

/// One completed span: a Chrome trace_event "complete" ("ph":"X") record.
/// Timestamps are microseconds on the process-wide steady clock, so events
/// from different threads share one timeline.
struct TraceEvent {
  std::string name;      ///< span label, e.g. "policy.eval:p6"
  const char* category;  ///< subsystem: "sql", "exec", "policy", ...
  double ts_us = 0;      ///< start, µs since tracer start
  double dur_us = 0;     ///< wall duration, µs
  int tid = 0;           ///< small dense thread id (0 = first seen)
  int depth = 0;         ///< nesting depth on its thread (0 = root)
  /// True for zero-duration marker events (steals, decisions): exported as
  /// Chrome "instant" records ("ph":"i") so they render as ticks, not
  /// invisible zero-width slices.
  bool instant = false;
};

/// Process-wide span collector behind the DL_TRACE_* macros.
///
/// Disabled (the default), a span costs one relaxed atomic load — cheap
/// enough to leave instrumentation in every pipeline phase permanently.
/// Enabled, each span takes a steady_clock read at open and a clock read
/// plus one mutex-guarded append at close; nesting is tracked with a
/// thread-local depth counter, so spans opened inside ThreadPool workers
/// nest correctly on their own thread's lane.
///
/// There is exactly one tracer per process (`Tracer::Global()`): tracing is
/// a debugging instrument, and a single timeline across every DataLawyer
/// instance, pool worker, and background compaction is the point.
class Tracer {
 public:
  static Tracer& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  /// Turns collection on/off. Enabling does not clear prior events.
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Drops every collected event and resets the timeline origin.
  void Clear();

  /// Appends one finished span. `name` is copied; `category` must be a
  /// string literal (it is kept by pointer).
  void Record(std::string name, const char* category, double ts_us,
              double dur_us, int tid, int depth);

  /// Appends a zero-duration marker on the calling thread's lane (a Chrome
  /// "instant" event) — scheduler steals, decision ids, watchdog trips.
  void RecordInstant(std::string name, const char* category, double ts_us);

  /// Names the calling thread's lane in the Chrome export (a "thread_name"
  /// metadata record): scheduler workers register as "worker-0..N-1" so
  /// traces show named lanes instead of raw dense tids. Survives Clear()
  /// — the thread is still the same thread.
  void SetCurrentThreadName(std::string name);
  /// tid -> lane name, for tests and exporters.
  std::map<int, std::string> thread_names() const;

  /// Snapshot of all events recorded so far, in completion order.
  std::vector<TraceEvent> Snapshot() const;
  size_t size() const;

  /// Chrome trace_event JSON ({"traceEvents":[...]}): open the string saved
  /// to a file directly in about:tracing / Perfetto.
  std::string ToChromeJson() const;
  Status WriteChromeJson(const std::string& path) const;

  /// µs since the tracer's timeline origin (process start or last Clear).
  double NowUs() const;

  /// Dense id of the calling thread, assigned on first use.
  static int CurrentThreadId();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

 private:
  Tracer();

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::map<int, std::string> thread_names_;  ///< guarded by mu_
  std::atomic<int64_t> origin_ns_{0};  ///< steady_clock origin of the timeline
};

/// RAII span: opens on construction, records into Tracer::Global() on
/// destruction. When tracing is disabled at construction the span is inert
/// (and stays inert even if tracing is enabled mid-span).
class ScopedSpan {
 public:
  ScopedSpan(std::string name, const char* category);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  bool active_;
  std::string name_;
  const char* category_;
  double start_us_ = 0;
  int depth_ = 0;
};

/// Span over the enclosing scope. Usage: DL_TRACE_SPAN("exec.query", "exec");
/// The variable name is derived from the line number, so one scope can hold
/// several spans.
#define DL_TRACE_CONCAT_(a, b) a##b
#define DL_TRACE_CONCAT(a, b) DL_TRACE_CONCAT_(a, b)
#define DL_TRACE_SPAN(name, category) \
  ::datalawyer::ScopedSpan DL_TRACE_CONCAT(dl_span_, __LINE__)(name, category)

}  // namespace datalawyer

#endif  // DATALAWYER_COMMON_TRACE_H_
