#ifndef DATALAWYER_COMMON_RESULT_H_
#define DATALAWYER_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace datalawyer {

/// Value-or-error carrier, mirroring arrow::Result<T>.
///
/// A Result is either a T (status().ok()) or a non-OK Status. Constructing a
/// Result from an OK Status is a programming error and is downgraded to an
/// Internal error rather than asserting, so release builds stay safe.
template <typename T>
class Result {
 public:
  /// Constructs a Result holding a value.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a Result holding an error.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// Requires ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace datalawyer

/// Evaluates an expression returning Result<T>; on error propagates the
/// Status, otherwise assigns the value to `lhs` (which may be a declaration).
#define DL_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                             \
  if (!tmp.ok()) return tmp.status();            \
  lhs = std::move(tmp).value()

#define DL_CONCAT_IMPL(a, b) a##b
#define DL_CONCAT(a, b) DL_CONCAT_IMPL(a, b)

#define DL_ASSIGN_OR_RETURN(lhs, expr) \
  DL_ASSIGN_OR_RETURN_IMPL(DL_CONCAT(_dl_result_, __LINE__), lhs, expr)

#endif  // DATALAWYER_COMMON_RESULT_H_
