#include "common/clock.h"

#include <chrono>

namespace datalawyer {

namespace {
int64_t WallMillis() {
  using namespace std::chrono;
  return duration_cast<milliseconds>(system_clock::now().time_since_epoch())
      .count();
}
}  // namespace

SystemClock::SystemClock() : last_(WallMillis()) {}

int64_t SystemClock::Now() const { return WallMillis(); }

int64_t SystemClock::Tick() {
  int64_t t = WallMillis();
  if (t <= last_) t = last_ + 1;
  last_ = t;
  return t;
}

}  // namespace datalawyer
