#ifndef DATALAWYER_COMMON_STRINGS_H_
#define DATALAWYER_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace datalawyer {

/// ASCII-lowercases a copy of `s`. SQL identifiers and keywords are
/// case-insensitive throughout the engine.
std::string ToLower(const std::string& s);

/// Case-insensitive ASCII string equality.
bool EqualsIgnoreCase(const std::string& a, const std::string& b);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Appends `s` to `*out` escaped for inclusion inside a JSON string literal
/// (quotes, backslashes, and control characters; the surrounding quotes are
/// the caller's). Shared by every JSON writer in the system — trace export,
/// metrics snapshots, the slow-enforcement log, and the bench harness — so
/// labels carrying SQL fragments or policy names can never corrupt a
/// document.
void AppendJsonEscaped(std::string* out, const std::string& s);

/// Returns `s` escaped for a JSON string literal (see AppendJsonEscaped).
std::string JsonEscape(const std::string& s);

/// Escapes `s` for one field of a tab-separated line: backslash, tab, LF
/// and CR become two-character escape sequences, so a field can carry
/// arbitrary query text without corrupting the row or the file. Shared by
/// the audit trail's TSV persistence (and any future line-oriented format).
std::string TsvEscape(const std::string& s);

/// Inverse of TsvEscape. Unknown escape sequences keep the escaped
/// character verbatim; a trailing lone backslash is preserved.
std::string TsvUnescape(const std::string& s);

/// Splits `line` on unescaped occurrences of `delim` (escape character is
/// backslash: "\\t" does not split a tab-delimited line). Fields are
/// returned still escaped; callers unescape with TsvUnescape.
std::vector<std::string> SplitEscaped(const std::string& line, char delim);

/// 64-bit FNV-1a hash of `s` — stable across runs and platforms, used for
/// compact query fingerprints in decision records.
uint64_t Fnv1a64(const std::string& s);

}  // namespace datalawyer

#endif  // DATALAWYER_COMMON_STRINGS_H_
