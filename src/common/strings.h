#ifndef DATALAWYER_COMMON_STRINGS_H_
#define DATALAWYER_COMMON_STRINGS_H_

#include <string>
#include <vector>

namespace datalawyer {

/// ASCII-lowercases a copy of `s`. SQL identifiers and keywords are
/// case-insensitive throughout the engine.
std::string ToLower(const std::string& s);

/// Case-insensitive ASCII string equality.
bool EqualsIgnoreCase(const std::string& a, const std::string& b);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Appends `s` to `*out` escaped for inclusion inside a JSON string literal
/// (quotes, backslashes, and control characters; the surrounding quotes are
/// the caller's). Shared by every JSON writer in the system — trace export,
/// metrics snapshots, the slow-enforcement log, and the bench harness — so
/// labels carrying SQL fragments or policy names can never corrupt a
/// document.
void AppendJsonEscaped(std::string* out, const std::string& s);

/// Returns `s` escaped for a JSON string literal (see AppendJsonEscaped).
std::string JsonEscape(const std::string& s);

}  // namespace datalawyer

#endif  // DATALAWYER_COMMON_STRINGS_H_
