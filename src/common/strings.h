#ifndef DATALAWYER_COMMON_STRINGS_H_
#define DATALAWYER_COMMON_STRINGS_H_

#include <string>
#include <vector>

namespace datalawyer {

/// ASCII-lowercases a copy of `s`. SQL identifiers and keywords are
/// case-insensitive throughout the engine.
std::string ToLower(const std::string& s);

/// Case-insensitive ASCII string equality.
bool EqualsIgnoreCase(const std::string& a, const std::string& b);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

}  // namespace datalawyer

#endif  // DATALAWYER_COMMON_STRINGS_H_
