#ifndef DATALAWYER_COMMON_STATUS_H_
#define DATALAWYER_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace datalawyer {

/// Machine-readable classification of an error.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Malformed input (bad SQL, bad schema, ...).
  kNotFound,          ///< Named entity (table, column, policy) does not exist.
  kAlreadyExists,     ///< Attempt to create an entity that already exists.
  kTypeError,         ///< Expression or value type mismatch.
  kPolicyViolation,   ///< A data-use policy rejected the query.
  kUnsupported,       ///< Valid SQL outside the supported fragment.
  kInternal,          ///< Invariant breakage inside the engine.
};

/// Returns a short human-readable name, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// Arrow/RocksDB-style error carrier. The library never throws; every
/// fallible operation returns a Status (or Result<T>, see result.h).
///
/// A Status is cheap to copy in the OK case (empty message).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status PolicyViolation(std::string msg) {
    return Status(StatusCode::kPolicyViolation, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsPolicyViolation() const {
    return code_ == StatusCode::kPolicyViolation;
  }

  /// "<CodeName>: <message>", or "OK".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace datalawyer

/// Propagates a non-OK Status to the caller. Usable in functions returning
/// Status or Result<T> (Result is implicitly constructible from Status).
#define DL_RETURN_NOT_OK(expr)                  \
  do {                                          \
    ::datalawyer::Status _st = (expr);          \
    if (!_st.ok()) return _st;                  \
  } while (false)

#endif  // DATALAWYER_COMMON_STATUS_H_
