#ifndef DATALAWYER_COMMON_VALUE_H_
#define DATALAWYER_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace datalawyer {

/// SQL value types supported by the engine.
enum class ValueType {
  kNull = 0,
  kInt64,
  kDouble,
  kString,
  kBool,
};

/// Returns e.g. "INT64".
const char* ValueTypeToString(ValueType type);

/// A dynamically typed SQL value. Timestamps are plain INT64 (the paper's
/// integer clock, §3.1). NULL ordering/equality follows three-valued logic
/// in expressions; for grouping and DISTINCT, NULLs compare equal (SQL
/// semantics for grouping).
class Value {
 public:
  /// NULL value.
  Value() : repr_(std::monostate{}) {}
  Value(int64_t v) : repr_(v) {}                   // NOLINT(runtime/explicit)
  Value(double v) : repr_(v) {}                    // NOLINT(runtime/explicit)
  Value(bool v) : repr_(v) {}                      // NOLINT(runtime/explicit)
  Value(std::string v) : repr_(std::move(v)) {}    // NOLINT(runtime/explicit)
  Value(const char* v) : repr_(std::string(v)) {}  // NOLINT(runtime/explicit)

  static Value Null() { return Value(); }

  ValueType type() const;

  bool is_null() const { return std::holds_alternative<std::monostate>(repr_); }
  bool is_int64() const { return std::holds_alternative<int64_t>(repr_); }
  bool is_double() const { return std::holds_alternative<double>(repr_); }
  bool is_string() const { return std::holds_alternative<std::string>(repr_); }
  bool is_bool() const { return std::holds_alternative<bool>(repr_); }
  /// True for INT64 or DOUBLE.
  bool is_numeric() const { return is_int64() || is_double(); }

  /// Require the corresponding type; undefined otherwise.
  int64_t AsInt64() const { return std::get<int64_t>(repr_); }
  double AsDouble() const { return std::get<double>(repr_); }
  const std::string& AsString() const { return std::get<std::string>(repr_); }
  bool AsBool() const { return std::get<bool>(repr_); }

  /// Numeric value widened to double. Requires is_numeric().
  double ToDouble() const { return is_int64() ? double(AsInt64()) : AsDouble(); }

  /// Structural equality: same type and same contents; NULL == NULL.
  /// This is the grouping/DISTINCT notion of equality, not SQL `=`.
  bool operator==(const Value& other) const { return repr_ == other.repr_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Total order over values for deterministic sorting: NULL < BOOL <
  /// numerics (compared as doubles across int/double) < STRING.
  bool operator<(const Value& other) const;

  /// Hash consistent with operator==, except int64/double holding the same
  /// number hash alike (so 1 and 1.0 can meet in a hash join probe).
  size_t Hash() const;

  /// SQL comparison: returns NULL if either side is NULL, a kTypeError for
  /// incomparable types, else a BOOL. `op` in {"=","!=","<","<=",">",">="}.
  static Result<Value> Compare(const Value& lhs, const std::string& op,
                               const Value& rhs);

  /// SQL arithmetic (+,-,*,/,%). NULL-in → NULL-out. Integer division by
  /// zero is a kInvalidArgument error.
  static Result<Value> Arithmetic(const Value& lhs, const std::string& op,
                                  const Value& rhs);

  /// Renders the value as it would appear in a result set ("NULL", 42,
  /// 3.5, 'text', TRUE).
  std::string ToString() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string, bool> repr_;
};

/// A tuple of values: one table/result row.
using Row = std::vector<Value>;

// Hash functors over values and rows live in common/value_hash.h (ValueHash,
// RowHash) so the hash-join, GROUP BY, DISTINCT, and index-probe call sites
// share one definition.

/// Renders "(v1, v2, ...)".
std::string RowToString(const Row& row);

}  // namespace datalawyer

#endif  // DATALAWYER_COMMON_VALUE_H_
