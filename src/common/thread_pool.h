#ifndef DATALAWYER_COMMON_THREAD_POOL_H_
#define DATALAWYER_COMMON_THREAD_POOL_H_

#include "common/task_scheduler.h"

namespace datalawyer {

/// Compatibility alias: the fixed-queue ThreadPool grew into the
/// work-stealing TaskScheduler (per-worker deques, steal-from-back,
/// steal/executed counters) when morsel-driven intra-query parallelism
/// landed. The Submit/ParallelFor surface is unchanged — callers that
/// collected results into caller-indexed slots and merged serially keep
/// their determinism guarantee, because stealing reorders only *execution*,
/// never results. See task_scheduler.h for the scheduling discipline.
using ThreadPool = TaskScheduler;

}  // namespace datalawyer

#endif  // DATALAWYER_COMMON_THREAD_POOL_H_
