#ifndef DATALAWYER_COMMON_THREAD_POOL_H_
#define DATALAWYER_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace datalawyer {

/// Fixed-size worker pool shared by policy evaluation and background log
/// compaction (§5.1's "multi-threaded systems" direction).
///
/// Design constraints, in order:
///  * Deterministic callers: the pool never reorders *results* — callers
///    collect per-task outputs into caller-indexed slots and merge serially,
///    so scheduling order is invisible.
///  * No task-to-task dependencies: a submitted task must never block on
///    another submitted task (the pool has no work stealing); ParallelFor
///    lets the calling thread participate, so it is safe to call even from
///    inside a pool task and on a pool constructed with zero threads.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 is allowed: Submit still works, tasks
  /// run inline on the submitting thread; ParallelFor runs on the caller).
  explicit ThreadPool(size_t num_threads);

  /// Drains the queue, then joins. Pending futures complete first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Enqueues `fn` and returns a future for its result. Exceptions
  /// propagate through the future.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    if (threads_.empty()) {
      (*task)();  // inline fallback: a zero-thread pool is a serial executor
      return future;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Runs fn(i) for every i in [0, n), spread over the workers; the calling
  /// thread participates, so this blocks only until all n calls return and
  /// never deadlocks on an exhausted pool. `fn` must be safe to call
  /// concurrently from different threads for different i.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  bool shutdown_ = false;
};

}  // namespace datalawyer

#endif  // DATALAWYER_COMMON_THREAD_POOL_H_
