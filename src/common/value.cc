#include "common/value.h"

#include <cmath>
#include <functional>
#include <sstream>

namespace datalawyer {

namespace {

/// Rank used by the cross-type total order.
int TypeRank(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool:
      return 1;
    case ValueType::kInt64:
    case ValueType::kDouble:
      return 2;
    case ValueType::kString:
      return 3;
  }
  return 4;
}

}  // namespace

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
    case ValueType::kBool:
      return "BOOL";
  }
  return "UNKNOWN";
}

ValueType Value::type() const {
  if (is_null()) return ValueType::kNull;
  if (is_int64()) return ValueType::kInt64;
  if (is_double()) return ValueType::kDouble;
  if (is_string()) return ValueType::kString;
  return ValueType::kBool;
}

bool Value::operator<(const Value& other) const {
  int lr = TypeRank(*this), rr = TypeRank(other);
  if (lr != rr) return lr < rr;
  switch (lr) {
    case 0:
      return false;  // NULL == NULL
    case 1:
      return AsBool() < other.AsBool();
    case 2: {
      // Mixed int/double compare numerically; same-type compares exactly.
      if (is_int64() && other.is_int64()) return AsInt64() < other.AsInt64();
      return ToDouble() < other.ToDouble();
    }
    default:
      return AsString() < other.AsString();
  }
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueType::kBool:
      return std::hash<bool>()(AsBool()) ^ 0x5bul;
    case ValueType::kInt64: {
      // Hash integral doubles and int64 alike.
      return std::hash<double>()(double(AsInt64()));
    }
    case ValueType::kDouble:
      return std::hash<double>()(AsDouble());
    case ValueType::kString:
      return std::hash<std::string>()(AsString());
  }
  return 0;
}

Result<Value> Value::Compare(const Value& lhs, const std::string& op,
                             const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return Value::Null();

  int cmp = 0;
  if (lhs.is_numeric() && rhs.is_numeric()) {
    if (lhs.is_int64() && rhs.is_int64()) {
      int64_t a = lhs.AsInt64(), b = rhs.AsInt64();
      cmp = a < b ? -1 : (a > b ? 1 : 0);
    } else {
      double a = lhs.ToDouble(), b = rhs.ToDouble();
      cmp = a < b ? -1 : (a > b ? 1 : 0);
    }
  } else if (lhs.is_string() && rhs.is_string()) {
    cmp = lhs.AsString().compare(rhs.AsString());
    cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
  } else if (lhs.is_bool() && rhs.is_bool()) {
    cmp = int(lhs.AsBool()) - int(rhs.AsBool());
  } else {
    return Status::TypeError("cannot compare " +
                             std::string(ValueTypeToString(lhs.type())) +
                             " with " + ValueTypeToString(rhs.type()));
  }

  if (op == "=") return Value(cmp == 0);
  if (op == "!=" || op == "<>") return Value(cmp != 0);
  if (op == "<") return Value(cmp < 0);
  if (op == "<=") return Value(cmp <= 0);
  if (op == ">") return Value(cmp > 0);
  if (op == ">=") return Value(cmp >= 0);
  return Status::InvalidArgument("unknown comparison operator: " + op);
}

Result<Value> Value::Arithmetic(const Value& lhs, const std::string& op,
                                const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return Value::Null();
  if (!lhs.is_numeric() || !rhs.is_numeric()) {
    return Status::TypeError("arithmetic requires numeric operands, got " +
                             std::string(ValueTypeToString(lhs.type())) +
                             " and " + ValueTypeToString(rhs.type()));
  }

  if (lhs.is_int64() && rhs.is_int64()) {
    int64_t a = lhs.AsInt64(), b = rhs.AsInt64();
    if (op == "+") return Value(a + b);
    if (op == "-") return Value(a - b);
    if (op == "*") return Value(a * b);
    if (op == "/") {
      if (b == 0) return Status::InvalidArgument("division by zero");
      return Value(a / b);
    }
    if (op == "%") {
      if (b == 0) return Status::InvalidArgument("modulo by zero");
      return Value(a % b);
    }
  } else {
    double a = lhs.ToDouble(), b = rhs.ToDouble();
    if (op == "+") return Value(a + b);
    if (op == "-") return Value(a - b);
    if (op == "*") return Value(a * b);
    if (op == "/") {
      if (b == 0.0) return Status::InvalidArgument("division by zero");
      return Value(a / b);
    }
    if (op == "%") {
      if (b == 0.0) return Status::InvalidArgument("modulo by zero");
      return Value(std::fmod(a, b));
    }
  }
  return Status::InvalidArgument("unknown arithmetic operator: " + op);
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return std::to_string(AsInt64());
    case ValueType::kDouble: {
      std::ostringstream os;
      os << AsDouble();
      return os.str();
    }
    case ValueType::kString:
      return "'" + AsString() + "'";
    case ValueType::kBool:
      return AsBool() ? "TRUE" : "FALSE";
  }
  return "?";
}

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace datalawyer
