#include "common/trace.h"

#include <chrono>
#include <cstdio>

#include "common/strings.h"

namespace datalawyer {

namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Dense per-thread ids and per-thread nesting depth. The depth counter
/// lives here (not in Tracer) so concurrent workers never contend on it.
std::atomic<int> g_next_tid{0};
thread_local int t_tid = -1;
thread_local int t_depth = 0;

}  // namespace

Tracer::Tracer() : origin_ns_(SteadyNowNs()) {}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // leaked: outlives static dtors
  return *tracer;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  origin_ns_.store(SteadyNowNs(), std::memory_order_relaxed);
}

double Tracer::NowUs() const {
  return double(SteadyNowNs() - origin_ns_.load(std::memory_order_relaxed)) /
         1000.0;
}

int Tracer::CurrentThreadId() {
  if (t_tid < 0) t_tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return t_tid;
}

void Tracer::Record(std::string name, const char* category, double ts_us,
                    double dur_us, int tid, int depth) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(
      TraceEvent{std::move(name), category, ts_us, dur_us, tid, depth});
}

void Tracer::RecordInstant(std::string name, const char* category,
                           double ts_us) {
  TraceEvent e{std::move(name), category, ts_us, 0, CurrentThreadId(), 0};
  e.instant = true;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(e));
}

void Tracer::SetCurrentThreadName(std::string name) {
  int tid = CurrentThreadId();
  std::lock_guard<std::mutex> lock(mu_);
  thread_names_[tid] = std::move(name);
}

std::map<int, std::string> Tracer::thread_names() const {
  std::lock_guard<std::mutex> lock(mu_);
  return thread_names_;
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::string Tracer::ToChromeJson() const {
  std::vector<TraceEvent> events = Snapshot();
  std::map<int, std::string> names = thread_names();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[160];
  bool first = true;
  // Thread-name metadata first: lanes registered via SetCurrentThreadName
  // (scheduler workers as "worker-0..N-1") show named in about:tracing /
  // Perfetto instead of raw dense tids.
  for (const auto& [tid, name] : names) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
           std::to_string(tid) + ",\"args\":{\"name\":\"";
    AppendJsonEscaped(&out, name);
    out += "\"}}";
  }
  for (const TraceEvent& e : events) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":\"";
    AppendJsonEscaped(&out, e.name);
    out += "\",\"cat\":\"";
    out += e.category;
    if (e.instant) {
      std::snprintf(buf, sizeof(buf),
                    "\",\"ph\":\"i\",\"ts\":%.3f,\"pid\":1,\"tid\":%d,"
                    "\"s\":\"t\"}",
                    e.ts_us, e.tid);
    } else {
      std::snprintf(buf, sizeof(buf),
                    "\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,"
                    "\"tid\":%d,\"args\":{\"depth\":%d}}",
                    e.ts_us, e.dur_us, e.tid, e.depth);
    }
    out += buf;
  }
  out += "\n]}\n";
  return out;
}

Status Tracer::WriteChromeJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot write trace file: " + path);
  }
  std::string json = ToChromeJson();
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::Internal("short write to trace file: " + path);
  }
  return Status::OK();
}

ScopedSpan::ScopedSpan(std::string name, const char* category)
    : active_(Tracer::Global().enabled()),
      name_(std::move(name)),
      category_(category) {
  if (!active_) return;
  depth_ = t_depth++;
  start_us_ = Tracer::Global().NowUs();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  double end_us = Tracer::Global().NowUs();
  --t_depth;
  Tracer::Global().Record(std::move(name_), category_, start_us_,
                          end_us - start_us_, Tracer::CurrentThreadId(),
                          depth_);
}

}  // namespace datalawyer
