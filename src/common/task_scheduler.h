#ifndef DATALAWYER_COMMON_TASK_SCHEDULER_H_
#define DATALAWYER_COMMON_TASK_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace datalawyer {

/// Work-stealing task runtime shared by policy fan-out, intra-query morsel
/// execution, and background log compaction (§5.1's "multi-threaded
/// systems" direction, extended to morsel-driven parallelism).
///
/// Scheduling model: each worker owns a deque. The owner pushes and pops
/// at the front (LIFO — hot caches, bounded depth under nesting); idle
/// workers steal from the *back* of a victim's deque (FIFO — the oldest,
/// typically largest, task migrates). External submissions are injected
/// round-robin across worker deques so no single queue becomes the
/// bottleneck.
///
/// Design constraints, in order:
///  * Deterministic callers: the scheduler never reorders *results* —
///    callers collect per-task outputs into caller-indexed slots and merge
///    serially, so scheduling (and stealing) order is invisible.
///  * No blocking dependencies between tasks: a task must never wait on
///    another task's future; ParallelFor lets the calling thread
///    participate, so it is safe to call even from inside a task and on a
///    scheduler constructed with zero threads, including nested
///    ParallelFor-within-ParallelFor.
///  * Observable: cumulative steal and per-worker execution counters feed
///    the dl_steals_total metric and per-worker trace lanes.
class TaskScheduler {
 public:
  /// Spawns `num_threads` workers (0 is allowed: Submit still works, tasks
  /// run inline on the submitting thread; ParallelFor runs on the caller).
  explicit TaskScheduler(size_t num_threads);

  /// Drains every deque, then joins. Pending futures complete first.
  ~TaskScheduler();

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues `fn` and returns a future for its result. Exceptions
  /// propagate through the future.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    if (workers_.empty()) {
      (*task)();  // inline fallback: a zero-thread scheduler runs serially
      return future;
    }
    Enqueue([task]() { (*task)(); });
    return future;
  }

  /// Runs fn(i) for every i in [0, n), spread over the workers; the calling
  /// thread participates, so this blocks only until all n calls return and
  /// never deadlocks on an exhausted scheduler. `fn` must be safe to call
  /// concurrently from different threads for different i.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Cumulative count of tasks a worker executed from another worker's
  /// deque (its own was empty). Monotonic across the scheduler's lifetime.
  uint64_t steals() const { return steals_.load(std::memory_order_relaxed); }

  /// Tasks executed by worker `w` (own deque plus steals), for per-worker
  /// load inspection. `w` must be < num_threads().
  uint64_t tasks_executed(size_t w) const {
    return workers_[w]->executed.load(std::memory_order_relaxed);
  }

 private:
  struct Worker {
    std::mutex mu;
    std::deque<std::function<void()>> deque;
    std::atomic<uint64_t> executed{0};
  };

  void WorkerLoop(size_t index);
  void Enqueue(std::function<void()> task);
  /// Pops from worker `self`'s own front, else steals from the back of the
  /// first non-empty victim. Returns an empty function when every deque is
  /// empty.
  std::function<void()> NextTask(size_t self);

  // unique_ptr keeps Worker addresses stable; Worker itself is immovable
  // (mutex/atomic members).
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::atomic<size_t> inject_cursor_{0};
  std::atomic<size_t> pending_{0};
  std::atomic<uint64_t> steals_{0};
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
  bool shutdown_ = false;  // guarded by sleep_mu_
};

}  // namespace datalawyer

#endif  // DATALAWYER_COMMON_TASK_SCHEDULER_H_
