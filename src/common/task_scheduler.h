#ifndef DATALAWYER_COMMON_TASK_SCHEDULER_H_
#define DATALAWYER_COMMON_TASK_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace datalawyer {

/// Per-task-group attribution slot: tasks enqueued while a group is
/// installed (see ScopedTaskGroup) carry a pointer to one of these, and the
/// runtime charges their scheduling events — task count, steals, queue
/// latency — to it. DataLawyer installs one group per checked query, which
/// is what makes ExecutionStats::steals an exact per-query count instead of
/// a process-wide delta: a concurrent background compaction's steals land
/// in its own (or no) group, never in the query's.
///
/// All fields are relaxed atomics: workers update them concurrently, the
/// owner reads them after the work it submitted has been joined.
struct TaskGroupStats {
  std::atomic<uint64_t> tasks{0};   ///< tasks enqueued under this group
  std::atomic<uint64_t> steals{0};  ///< group tasks executed via a steal
  /// Summed submit-to-start latency of group tasks, µs. Stays 0 unless the
  /// scheduler's telemetry clock is enabled (set_telemetry_enabled).
  std::atomic<uint64_t> queue_wait_us{0};

  void Reset() {
    tasks.store(0, std::memory_order_relaxed);
    steals.store(0, std::memory_order_relaxed);
    queue_wait_us.store(0, std::memory_order_relaxed);
  }
};

/// Point-in-time copy of one worker's stat slot.
struct WorkerSnapshot {
  size_t index = 0;
  uint64_t executed = 0;      ///< tasks run (own deque plus steals)
  uint64_t steals_taken = 0;  ///< tasks this worker took from a victim
  uint64_t steals_given = 0;  ///< tasks other workers took from this deque
  uint64_t queue_waits = 0;   ///< tasks with a measured submit-to-start wait
  uint64_t queue_wait_us = 0;  ///< summed submit-to-start latency, µs
  uint64_t busy_us = 0;        ///< wall time inside task bodies, µs
  uint64_t idle_us = 0;        ///< wall time parked on the sleep cv, µs
  uint64_t queue_depth = 0;    ///< tasks queued on this deque right now
  uint64_t queue_depth_hwm = 0;  ///< deepest this deque has ever been
};

/// Whole-scheduler snapshot: per-worker slots, their totals, and the
/// starvation/overload watchdog's verdict at snapshot time.
struct SchedulerSnapshot {
  std::vector<WorkerSnapshot> workers;
  uint64_t executed = 0;
  uint64_t steals = 0;
  uint64_t queue_waits = 0;
  uint64_t queue_wait_us = 0;
  uint64_t busy_us = 0;
  uint64_t idle_us = 0;
  uint64_t queued = 0;  ///< tasks sitting in deques right now

  /// Age of the oldest task still queued, µs; 0 when every deque is empty
  /// or the telemetry clock is off (no enqueue timestamps to age).
  uint64_t oldest_queued_age_us = 0;
  /// max(executed) / mean(executed) over the workers; 1.0 is perfectly
  /// balanced, 0 until any task has run.
  double imbalance = 0;
  /// Cumulative count of snapshots that observed each watchdog condition.
  uint64_t starvation_warnings = 0;
  uint64_t imbalance_warnings = 0;
  /// Human-readable descriptions of the conditions firing *right now*.
  std::vector<std::string> warnings;
};

/// Work-stealing task runtime shared by policy fan-out, intra-query morsel
/// execution, and background log compaction (§5.1's "multi-threaded
/// systems" direction, extended to morsel-driven parallelism).
///
/// Scheduling model: each worker owns a deque. The owner pushes and pops
/// at the front (LIFO — hot caches, bounded depth under nesting); idle
/// workers steal from the *back* of a victim's deque (FIFO — the oldest,
/// typically largest, task migrates). External submissions are injected
/// round-robin across worker deques so no single queue becomes the
/// bottleneck.
///
/// Design constraints, in order:
///  * Deterministic callers: the scheduler never reorders *results* —
///    callers collect per-task outputs into caller-indexed slots and merge
///    serially, so scheduling (and stealing) order is invisible.
///  * No blocking dependencies between tasks: a task must never wait on
///    another task's future; ParallelFor lets the calling thread
///    participate, so it is safe to call even from inside a task and on a
///    scheduler constructed with zero threads, including nested
///    ParallelFor-within-ParallelFor.
///  * Observable: every worker keeps a cache-line-padded slot of relaxed
///    atomic counters (tasks, steals taken/given, queue depth + watermark)
///    that is always on; wall-clock telemetry (queue latency, busy/idle
///    split) costs clock reads and is gated behind set_telemetry_enabled,
///    so the off cost stays one relaxed load per task. Snapshot() folds the
///    slots into a SchedulerSnapshot and runs the starvation/overload
///    watchdog; AppendExposition renders dl_worker_* / dl_sched_*
///    Prometheus lines from it.
class TaskScheduler {
 public:
  /// Spawns `num_threads` workers (0 is allowed: Submit still works, tasks
  /// run inline on the submitting thread; ParallelFor runs on the caller).
  explicit TaskScheduler(size_t num_threads);

  /// Drains every deque, then joins. Pending futures complete first.
  ~TaskScheduler();

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues `fn` and returns a future for its result. Exceptions
  /// propagate through the future.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    if (workers_.empty()) {
      (*task)();  // inline fallback: a zero-thread scheduler runs serially
      return future;
    }
    Enqueue([task]() { (*task)(); });
    return future;
  }

  /// Runs fn(i) for every i in [0, n), spread over the workers; the calling
  /// thread participates, so this blocks only until all n calls return and
  /// never deadlocks on an exhausted scheduler. `fn` must be safe to call
  /// concurrently from different threads for different i.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Cumulative count of tasks a worker executed from another worker's
  /// deque (its own was empty): the sum of the per-worker steals_taken
  /// slots. Monotonic across the scheduler's lifetime.
  uint64_t steals() const;

  /// Tasks executed by worker `w` (own deque plus steals), for per-worker
  /// load inspection. `w` must be < num_threads().
  uint64_t tasks_executed(size_t w) const {
    return workers_[w]->stats.executed.load(std::memory_order_relaxed);
  }

  /// Turns the wall-clock half of the telemetry on: enqueue timestamps
  /// (queue latency, oldest-queued-task age) and the busy/idle split. The
  /// counter half is always on. Off by default; DataLawyer enables it with
  /// enable_metrics.
  void set_telemetry_enabled(bool on) {
    telemetry_.store(on, std::memory_order_relaxed);
  }
  bool telemetry_enabled() const {
    return telemetry_.load(std::memory_order_relaxed);
  }

  /// Watchdog thresholds: a snapshot warns when the oldest queued task has
  /// waited longer than `starvation_us` (starvation — workers are not
  /// draining the queues) or when max/mean executed exceeds
  /// `imbalance_ratio` (overload imbalance — stealing is not spreading the
  /// load; only evaluated past a floor of 64 total tasks, below which the
  /// ratio is noise).
  void set_watchdog_thresholds(uint64_t starvation_us,
                               double imbalance_ratio) {
    watchdog_starvation_us_.store(starvation_us, std::memory_order_relaxed);
    watchdog_imbalance_.store(imbalance_ratio, std::memory_order_relaxed);
  }

  /// Folds every worker slot into a SchedulerSnapshot and evaluates the
  /// watchdog (pull-based: no background thread, deterministic under test).
  /// A firing condition appends a warning string and bumps the matching
  /// cumulative counter.
  SchedulerSnapshot Snapshot() const;

  /// Appends Prometheus text exposition derived from Snapshot():
  /// dl_worker_* series labeled {worker="i"} plus dl_sched_* totals and
  /// watchdog gauges. Mirrors RollupRegistry::AppendExposition so callers
  /// concatenate it onto MetricsRegistry::ExposeText().
  void AppendExposition(std::string* out) const;

  /// Installs `group` as the attribution target for tasks enqueued by the
  /// calling thread (nullptr detaches). Returns the previous group so
  /// callers can restore it; workers set/restore it automatically around
  /// each task, so nested submissions inherit the spawning task's group.
  static TaskGroupStats* ExchangeCurrentGroup(TaskGroupStats* group);

 private:
  /// One queued task: the closure plus the telemetry it was stamped with
  /// at Enqueue time.
  struct Task {
    std::function<void()> fn;
    TaskGroupStats* group = nullptr;
    uint64_t enqueue_us = 0;  ///< 0 when the telemetry clock is off

    explicit operator bool() const { return static_cast<bool>(fn); }
  };

  /// Per-worker stat slot, padded to its own cache line so relaxed updates
  /// from one worker never false-share with its neighbors.
  struct alignas(64) WorkerStats {
    std::atomic<uint64_t> executed{0};
    std::atomic<uint64_t> steals_taken{0};
    std::atomic<uint64_t> steals_given{0};
    std::atomic<uint64_t> queue_waits{0};
    std::atomic<uint64_t> queue_wait_us{0};
    std::atomic<uint64_t> busy_us{0};
    std::atomic<uint64_t> idle_us{0};
    std::atomic<uint64_t> depth{0};
    std::atomic<uint64_t> depth_hwm{0};
  };

  struct Worker {
    std::mutex mu;
    std::deque<Task> deque;
    WorkerStats stats;
  };

  void WorkerLoop(size_t index);
  void Enqueue(std::function<void()> task);
  /// Pops from worker `self`'s own front, else steals from the back of the
  /// first non-empty victim. Returns an empty task when every deque is
  /// empty.
  Task NextTask(size_t self);
  /// Steady-clock µs, read only when telemetry_ is on.
  static uint64_t TelemetryNowUs();

  // unique_ptr keeps Worker addresses stable; Worker itself is immovable
  // (mutex/atomic members).
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::atomic<size_t> inject_cursor_{0};
  std::atomic<size_t> pending_{0};
  std::atomic<bool> telemetry_{false};
  std::atomic<uint64_t> watchdog_starvation_us_{100000};  ///< 100 ms
  std::atomic<double> watchdog_imbalance_{4.0};
  /// Cumulative watchdog trips, bumped by Snapshot() when a condition is
  /// observed (mutable: snapshotting is logically const).
  mutable std::atomic<uint64_t> starvation_warnings_{0};
  mutable std::atomic<uint64_t> imbalance_warnings_{0};
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
  bool shutdown_ = false;  // guarded by sleep_mu_
};

/// RAII group installation for the calling thread: everything submitted to
/// any TaskScheduler between construction and destruction is charged to
/// `group` (including nested submissions from worker tasks it spawns).
class ScopedTaskGroup {
 public:
  explicit ScopedTaskGroup(TaskGroupStats* group)
      : prev_(TaskScheduler::ExchangeCurrentGroup(group)) {}
  ~ScopedTaskGroup() { TaskScheduler::ExchangeCurrentGroup(prev_); }

  ScopedTaskGroup(const ScopedTaskGroup&) = delete;
  ScopedTaskGroup& operator=(const ScopedTaskGroup&) = delete;

 private:
  TaskGroupStats* prev_;
};

}  // namespace datalawyer

#endif  // DATALAWYER_COMMON_TASK_SCHEDULER_H_
