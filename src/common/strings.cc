#include "common/strings.h"

#include <cctype>
#include <cstdio>

namespace datalawyer {

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = char(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  AppendJsonEscaped(&out, s);
  return out;
}

}  // namespace datalawyer
