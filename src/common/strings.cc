#include "common/strings.h"

#include <cctype>
#include <cstdio>

namespace datalawyer {

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = char(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  AppendJsonEscaped(&out, s);
  return out;
}

std::string TsvEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string TsvUnescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      switch (s[i]) {
        case 't':
          out += '\t';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case '\\':
          out += '\\';
          break;
        default:
          out += s[i];
      }
    } else {
      out += s[i];
    }
  }
  return out;
}

std::vector<std::string> SplitEscaped(const std::string& line, char delim) {
  std::vector<std::string> fields;
  std::string cur;
  for (size_t i = 0; i < line.size(); ++i) {
    if (line[i] == '\\' && i + 1 < line.size()) {
      cur += line[i];
      cur += line[i + 1];
      ++i;
    } else if (line[i] == delim) {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += line[i];
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

uint64_t Fnv1a64(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace datalawyer
