#include "common/strings.h"

#include <cctype>

namespace datalawyer {

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = char(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace datalawyer
