#ifndef DATALAWYER_COMMON_CLOCK_H_
#define DATALAWYER_COMMON_CLOCK_H_

#include <cstdint>

namespace datalawyer {

/// The paper assumes "an integer clock with sufficient granularity that each
/// query has a unique ts attribute" (§3.1). Clock abstracts where those
/// integers come from so experiments are deterministic.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current timestamp. Does not advance the clock.
  virtual int64_t Now() const = 0;

  /// Returns a fresh, strictly increasing timestamp for the next query.
  virtual int64_t Tick() = 0;
};

/// Deterministic clock advanced by a fixed inter-arrival step per query.
/// Used by all tests and benchmarks: sliding-window policies (P1, P5, P6)
/// become exactly reproducible.
class ManualClock : public Clock {
 public:
  /// Starts at `start`; each Tick() advances by `step` (>= 1) and returns
  /// the new time.
  explicit ManualClock(int64_t start = 0, int64_t step = 1)
      : now_(start), step_(step < 1 ? 1 : step) {}

  int64_t Now() const override { return now_; }
  int64_t Tick() override {
    now_ += step_;
    return now_;
  }

  void set_step(int64_t step) { step_ = step < 1 ? 1 : step; }
  /// Jumps the clock forward to `t` (no-op if `t` is in the past).
  void AdvanceTo(int64_t t) {
    if (t > now_) now_ = t;
  }

 private:
  int64_t now_;
  int64_t step_;
};

/// Wall-clock milliseconds since the UNIX epoch; uniqueness of successive
/// Tick() values is enforced by bumping collisions by 1ms.
class SystemClock : public Clock {
 public:
  SystemClock();
  int64_t Now() const override;
  int64_t Tick() override;

 private:
  mutable int64_t last_;
};

}  // namespace datalawyer

#endif  // DATALAWYER_COMMON_CLOCK_H_
