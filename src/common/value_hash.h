#ifndef DATALAWYER_COMMON_VALUE_HASH_H_
#define DATALAWYER_COMMON_VALUE_HASH_H_

#include <cstddef>

#include "common/value.h"

namespace datalawyer {

/// The one hash functor for single values, shared by every equality
/// container in the engine: the usage-log hash indexes (storage/table.h),
/// DISTINCT aggregate accumulators, and — through RowHash below — the
/// executor's hash joins, GROUP BY, and DISTINCT sets. Delegates to
/// Value::Hash(), whose contract makes int64 and double holding the same
/// number hash alike, so `1` staged by a log generator meets `1.0` computed
/// by an expression both in an index probe and in a join.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

/// Hash functor for rows (hash-join keys, DISTINCT sets, GROUP BY keys).
/// Mixes the per-value ValueHash results; keeping the mixing here — next to
/// ValueHash — pins the invariant that a single-column row hashes
/// compatibly wherever value equality is decided.
struct RowHash {
  size_t operator()(const Row& row) const {
    size_t h = 0x345678;
    for (const Value& v : row) {
      h = h * 1000003 ^ ValueHash()(v);
    }
    return h;
  }
};

}  // namespace datalawyer

#endif  // DATALAWYER_COMMON_VALUE_HASH_H_
