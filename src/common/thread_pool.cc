#include "common/thread_pool.h"

#include <atomic>

namespace datalawyer {

ThreadPool::ThreadPool(size_t num_threads) {
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || threads_.empty()) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // One shared claim counter; each participant grabs the next unclaimed
  // index. The caller is a participant, so completion never depends on a
  // free worker.
  struct SharedState {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
  };
  auto state = std::make_shared<SharedState>();

  auto run = [state, n, &fn]() {
    for (;;) {
      size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      fn(i);
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        std::lock_guard<std::mutex> lock(state->mu);
        state->cv.notify_all();
      }
    }
  };

  size_t helpers = std::min(threads_.size(), n - 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < helpers; ++i) queue_.emplace_back(run);
  }
  cv_.notify_all();

  run();  // the caller works too

  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&]() {
    return state->done.load(std::memory_order_acquire) == n;
  });
}

}  // namespace datalawyer
