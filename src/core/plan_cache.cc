#include "core/plan_cache.h"

#include "analysis/binder.h"
#include "policy/incremental.h"

namespace datalawyer {

PlanCache::Entry::Entry() = default;
PlanCache::Entry::~Entry() = default;

void PlanCache::Warm(const SelectStmt& stmt, const CatalogView* catalog,
                     const Planner& planner) {
  Binder binder(catalog);
  Result<std::unique_ptr<BoundQuery>> bound = binder.Bind(stmt);
  if (!bound.ok()) return;
  Result<PhysicalPlan> plan = planner.Plan(**bound);
  if (!plan.ok()) return;
  auto entry = std::make_unique<Entry>();
  entry->bound = std::move(*bound);
  entry->plan = std::move(*plan);
  entries_[&stmt] = std::move(entry);
}

}  // namespace datalawyer
