#ifndef DATALAWYER_CORE_DATALAWYER_H_
#define DATALAWYER_CORE_DATALAWYER_H_

#include <future>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <map>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/task_scheduler.h"
#include "common/trace.h"
#include "core/audit.h"
#include "core/decision.h"
#include "core/options.h"
#include "core/plan_cache.h"
#include "core/profile.h"
#include "core/stats.h"
#include "exec/engine.h"
#include "exec/plan_executor.h"
#include "log/usage_log.h"
#include "policy/log_compactor.h"
#include "policy/policy.h"
#include "policy/witness.h"
#include "storage/catalog_view.h"
#include "storage/database.h"

namespace datalawyer {

/// Structured account of why a query was rejected (§6's debugging
/// direction): which policy fired, its SQL, and the error messages its
/// evaluation produced.
struct ViolationReport {
  std::string policy_name;
  std::string policy_sql;
  std::vector<std::string> messages;
};

/// The DataLawyer middleware: users submit ordinary SQL; before a query
/// runs, the usage-log increments are derived and every active policy is
/// checked; a violating query is rejected with the policy's error message,
/// otherwise the log is committed and the query executes (Eq. 1, §3.3).
///
/// Typical use:
///
///   Database db;                         // load/create data
///   DataLawyer dl(&db, UsageLog::WithStandardGenerators(),
///                 std::make_unique<ManualClock>(), {});
///   dl.AddPolicy("p5b", "SELECT DISTINCT 'P5b violated' FROM ...");
///   auto result = dl.Execute("SELECT * FROM patients", {.uid = 7});
///   if (result.status().IsPolicyViolation()) { /* rejected */ }
class DataLawyer {
 public:
  /// `db` must outlive the middleware. `clock` defaults to a ManualClock
  /// stepping 1 per query; `log` defaults to the standard three relations.
  DataLawyer(Database* db, std::unique_ptr<UsageLog> log = nullptr,
             std::unique_ptr<Clock> clock = nullptr,
             DataLawyerOptions options = {});
  ~DataLawyer();

  DataLawyer(const DataLawyer&) = delete;
  DataLawyer& operator=(const DataLawyer&) = delete;

  /// Registers a policy; it takes effect immediately. The SQL must be a
  /// SELECT whose first output column is the violation message.
  ///
  /// Footnote 7: log history before the registration time can never trip a
  /// policy. `active_from` = -1 stamps the current clock; pass an earlier
  /// timestamp (e.g. 0) when re-registering a pre-existing policy after a
  /// restart so the restored history still counts.
  Status AddPolicy(const std::string& name, const std::string& sql,
                   int64_t active_from = -1);

  /// Registers a policy with an approximate *guard* (§6 future work): a
  /// cheaper over-approximation evaluated first — if the guard returns the
  /// empty set the policy is proven satisfied and the precise check is
  /// skipped. The caller must guarantee containment (policy non-empty ⇒
  /// guard non-empty); DataLawyer cannot verify it.
  Status AddPolicyWithGuard(const std::string& name, const std::string& sql,
                            const std::string& guard_sql);
  Status RemovePolicy(const std::string& name);
  size_t NumPolicies() const { return source_policies_.size(); }

  /// Runs the offline phase (§4.4): unification, per-policy analysis and
  /// rewrites, witness precomputation, partial-policy caches. Called
  /// automatically on the first Execute after a policy change.
  Status Prepare();

  /// Checks all policies, then executes `sql` (Eq. 1). Returns the query
  /// result, or a kPolicyViolation status carrying the error message(s).
  /// Non-SELECT statements (DDL/DML) bypass policy checking.
  Result<QueryResult> Execute(const std::string& sql,
                              const QueryContext& context);

  /// Dry run (the demo UI's "would this be allowed?" probe, [44]): checks
  /// every policy as Execute would, but never runs the query, never commits
  /// log increments, and does not advance the clock. OK = would be
  /// admitted; kPolicyViolation = would be rejected (last_violations() is
  /// populated); other codes = the SQL itself is invalid.
  Status WouldAllow(const std::string& sql, const QueryContext& context);

  /// Runs a read-only SELECT over the database *plus* the usage log and
  /// Clock — the view policies see. Does not tick the clock, generate log
  /// entries, or check policies. Intended for auditing and usage-based
  /// pricing (§2): e.g. "how many provenance tuples did user 7 consume
  /// this billing period".
  Result<QueryResult> QueryUsageLog(const std::string& sql);

  /// Renders the optimized physical plan for a SELECT over the same
  /// catalog policies see (database + usage log + clock). Shell `\plan`.
  Result<std::string> ExplainLogQuery(const std::string& sql);

  /// Renders policy <name>'s physical plan — the cached plan that every
  /// query's enforcement fan-out re-executes, when the plan cache holds
  /// one, else a freshly planned equivalent. Shell `\policies plan`.
  Result<std::string> ExplainPolicy(const std::string& name);

  /// EXPLAIN ANALYZE for a registered policy: runs one profiled evaluation
  /// of the cached policy plan (or a freshly planned equivalent) over the
  /// live policy catalog and renders each operator annotated with observed
  /// row counts, wall time, hash-table peaks, and index probes. Does not
  /// tick the clock, generate logs, or touch stats. Shell
  /// `\policies analyze <name>`.
  Result<std::string> ExplainAnalyzePolicy(const std::string& name);

  /// Phase timings of the most recent Execute call.
  const ExecutionStats& last_stats() const { return stats_; }

  /// Cumulative per-policy enforcement attribution (evaluations, prunes,
  /// rejections, evaluation time), active policies first in registration
  /// order, then synthetic entries ("(union)") and removed policies.
  /// Attribution accumulates across queries; ResetPolicyStats() clears it.
  /// The per-policy eval_us values sum to the cumulative policy_cpu_us.
  std::vector<PolicyStats> PolicyReport() const;
  void ResetPolicyStats() { policy_stats_.clear(); }

  /// Append-only enforcement audit trail (admit/reject decisions with query
  /// text, violated policies, and phase timings). Populated when
  /// options().enable_audit; ring-bounded by options().audit_capacity.
  const AuditLog& audit_log() const { return audit_; }
  AuditLog* mutable_audit_log() { return &audit_; }

  /// Slow-enforcement log: EnforcementProfiles of every query whose
  /// end-to-end latency met options().slow_enforcement_threshold_us.
  /// Ring-bounded by options().slow_log_capacity; empty when the threshold
  /// is 0 (the default).
  const SlowLog& slow_log() const { return slow_log_; }
  SlowLog* mutable_slow_log() { return &slow_log_; }

  /// Decision-provenance store: one structured DecisionRecord per checked
  /// query (verdict, per-policy outcome, witness rows behind rejections,
  /// phase timings). Populated when options().enable_decisions;
  /// ring-bounded by options().decision_capacity. Also queryable in SQL
  /// through the dl_decisions virtual relation.
  const DecisionStore& decision_store() const { return decisions_; }
  DecisionStore* mutable_decision_store() { return &decisions_; }

  /// The catalog user queries and policies resolve through: the database's
  /// tables plus the dl_decisions / dl_policy_stats / dl_slow_log virtual
  /// system relations (real tables shadow the virtual names).
  const CatalogView* system_catalog() const { return system_catalog_.get(); }

  /// Per-policy detail behind the most recent rejection; empty when the
  /// last query was admitted.
  const std::vector<ViolationReport>& last_violations() const {
    return last_violations_;
  }

  /// Blocks until any background compaction has finished (async_compaction
  /// mode). Call before inspecting the usage log from outside.
  Status Flush();

  /// Phase stats of the most recently *completed* compaction — with
  /// async_compaction on, the per-query ExecutionStats cannot include it.
  const CompactionStats& last_compaction_stats() const {
    return last_compaction_stats_;
  }

  /// The active (post-unification) policies. Valid after Prepare().
  const std::vector<Policy>& active_policies() const { return active_; }

  UsageLog* usage_log() { return log_.get(); }
  Clock* clock() { return clock_.get(); }
  Engine* engine() { return &engine_; }
  const DataLawyerOptions& options() const { return options_; }
  void set_options(DataLawyerOptions options);

  /// The shared work-stealing scheduler, for telemetry inspection
  /// (Snapshot / AppendExposition — the shell's \workers view). nullptr
  /// until lazily created by the first query that needs it.
  const TaskScheduler* scheduler() const { return scheduler_.get(); }

  /// Adaptive morsel-sizing feedback state (the shell's \sched view).
  /// Live regardless of whether adaptive sizing is active; suggestions
  /// only steer execution when adaptive_morsel_enabled().
  const MorselFeedback& morsel_feedback() const { return morsel_feedback_; }
  /// adaptive_morsel_size && exec_threads > 0 && no env kill switch —
  /// resolved once per options change.
  bool adaptive_morsel_enabled() const { return adaptive_enabled_; }

 private:
  struct PreparedPolicy;

  /// What one policy-statement evaluation produced — messages plus the
  /// counters that fold into ExecutionStats. Produced by the const,
  /// thread-safe evaluation core so concurrent tasks never touch `stats_`;
  /// the caller merges outputs serially, in registration order.
  struct PolicyEvalOutput {
    std::vector<std::string> messages;  ///< violation messages (empty = ok)
    bool depends_on_increment = false;
    bool plan_cache_hit = false;  ///< ran from a cached physical plan
    bool incremental_hit = false;  ///< verdict served from incremental state
    bool incremental_fallback = false;  ///< state declined; full eval ran
    size_t index_probes = 0;
    size_t index_hits = 0;
    size_t range_probes = 0;
    size_t range_hits = 0;
    size_t morsels = 0;  ///< morsels this statement's plan dispatched
    double eval_us = 0;  ///< this statement's own elapsed time
  };

  Result<QueryResult> ExecuteChecked(const SelectStmt& stmt,
                                     const QueryContext& context, int64_t ts);

  /// Thread-safe evaluation core: runs one policy statement over `catalog`
  /// (a fresh Executor per call), applying the simulated per-call
  /// overhead. Const all the way down — shared state (tables, catalog,
  /// prepared statements) is read-only during checking, which is what makes
  /// concurrent policy evaluation sound. See DESIGN.md "Concurrency model".
  /// `span_label` names the tracing span ("policy.eval:<name>"); pass an
  /// empty string when tracing is off to skip the concatenation.
  Result<PolicyEvalOutput> EvalPolicyStatement(
      const SelectStmt& stmt, const CatalogView* catalog,
      bool check_increment_dependence, const std::string& span_label) const;

  /// Serial-path wrapper: evaluates and immediately folds the output into
  /// `stats_` (attributed to `attribute_to`, or the synthetic "(union)"
  /// entry when null); returns violation messages (empty = satisfied).
  Result<std::vector<std::string>> EvaluatePolicyStmt(
      const SelectStmt& stmt, const CatalogView* catalog,
      bool check_increment_dependence, bool* depends_on_increment,
      const Policy* attribute_to);

  /// Folds one evaluation's counters into `stats_` (not its wall time —
  /// parallel regions are timed once, around the whole region) and into the
  /// per-policy attribution of `attribute_to` (null = "(union)").
  void RecordEvalCounters(const PolicyEvalOutput& out,
                          const Policy* attribute_to);

  /// Cumulative attribution slot for an active policy name.
  PolicyStats& AttributionFor(const std::string& name);

  /// Builds "policy.eval:<name>"-style span labels, skipping the string
  /// work entirely when tracing is off.
  static std::string SpanLabel(const char* prefix, const std::string& name);

  /// One-per-query observability epilogue: decision-record assembly,
  /// audit-trail append, slow-log retention, and metrics/rollup recording,
  /// driven by `stats_` and the decision `st`.
  void RecordDecision(const std::string& sql, const QueryContext& context,
                      const Status& st, bool probe);

  /// Registers the dl_decisions / dl_policy_stats / dl_slow_log providers
  /// on system_catalog_ (constructor only).
  void RegisterSystemRelations();

  /// The shared work-stealing scheduler, created lazily with
  /// max(policy_threads, exec_threads, min_threads) workers and recreated
  /// if options ask for more. One scheduler serves the per-policy fan-out,
  /// morsel-driven plan execution, and async compaction — sizing to the
  /// larger of the two thread knobs (not their sum) is what keeps nested
  /// parallelism from oversubscribing the machine: a policy task that
  /// splits its plan into morsels enqueues them onto the same workers.
  TaskScheduler* EnsureScheduler(size_t min_threads);
  Status GenerateLog(const std::string& relation, int64_t ts,
                     const GenerationInput& input);
  /// §4.3 preemptive compaction: true if relation `name`'s increment can be
  /// proven dispensable without generating it.
  Result<bool> IncrementProvablyDispensable(const std::string& name,
                                            int64_t ts);

  const CatalogView* policy_base_catalog() const;

  /// Schema/index epoch the plan cache is validated against: the database
  /// schema version plus whether log indexes are on. A cached plan built
  /// under a different stamp is not trusted.
  uint64_t CacheStamp() const;

  /// (Re)plans every prepared policy statement — full, guard, partials,
  /// and the unified UNION statement — against a fresh policy catalog, and
  /// stamps the cache. Serial sections only (Prepare, or the head of
  /// ExecuteChecked when the stamp went stale); Lookup during the parallel
  /// evaluation fan-out is read-only. When incremental evaluation is on,
  /// also classifies each full policy statement and attaches maintenance
  /// state to incrementalizable entries.
  void WarmPlanCache();

  /// Serial head of ExecuteChecked: folds committed log growth into every
  /// attached IncrementalState and rolls window edges to `ts`, before the
  /// evaluation fan-out reads the states concurrently.
  void AdvanceIncrementalStates(int64_t ts);

  Database* db_;
  std::unique_ptr<UsageLog> log_;
  std::unique_ptr<Clock> clock_;
  DataLawyerOptions options_;
  Engine engine_;

  /// Policies as registered by the user.
  std::vector<Policy> source_policies_;

  /// Active set after the offline phase (unified where possible).
  std::vector<Policy> active_;
  std::vector<PreparedPolicy> prepared_;
  /// Constants tables synthesized by unification.
  std::vector<std::pair<std::string, std::unique_ptr<Table>>> constants_;
  std::unique_ptr<OverlayCatalog> constants_catalog_;
  /// Algorithm 1 line 1 for the kUnion strategy: π_1 ∪ ... ∪ π_k, built
  /// once per Prepare (and planned into the cache) instead of per query.
  /// Null unless the strategy unions at least two eligible policies;
  /// union_member_[i] marks which active policies it absorbed.
  std::unique_ptr<SelectStmt> union_combined_;
  std::vector<bool> union_member_;

  /// Per-policy physical plans, built at Prepare and revalidated against
  /// CacheStamp(); steady-state policy evaluation does zero parse/bind/
  /// plan work.
  PlanCache plan_cache_;
  /// False until the first WarmPlanCache — the initial population does not
  /// count as an invalidation on dl_plan_cache_misses_total.
  bool plan_cache_warmed_ = false;
  /// enable_incremental_eval && enable_plan_cache && !DL_DISABLE_INCREMENTAL
  /// — resolved once per options change so the disabled path costs one
  /// plain bool read per query (no getenv, no allocation).
  bool incremental_enabled_ = false;
  /// exec_threads > 0 && !DL_DISABLE_MORSEL — same resolve-once idiom;
  /// gates handing the scheduler to plan executors.
  bool morsel_enabled_ = false;
  /// morsel_enabled_ && adaptive_morsel_size && !DL_DISABLE_ADAPTIVE_MORSEL
  /// — gates handing the feedback accumulator to plan executors.
  bool adaptive_enabled_ = false;
  /// Adaptive morsel-sizing feedback: executors Record() into it from any
  /// thread; Roll() publishes new suggestions at the serial head of each
  /// checked query (mutable: EvalPolicyStatement is const but recording
  /// observations does not mutate logical state).
  mutable MorselFeedback morsel_feedback_;
  /// Scheduler attribution slot for the query currently in the serial
  /// Execute/WouldAllow section: everything the checked pipeline submits —
  /// policy fan-out, morsel tasks, nested submissions — is charged here,
  /// while async compaction runs detached, which is what makes
  /// ExecutionStats::steals exact instead of a process-wide delta.
  TaskGroupStats query_group_;
  /// Per-active-policy classification from the last WarmPlanCache:
  /// "incremental" or "full-only". Empty when the feature is off.
  std::map<std::string, std::string> incremental_class_;
  /// Per-log-relation main-table row counts at the last WarmPlanCache.
  /// Costed plans embed cardinality-derived choices, so a large drift
  /// (table grown or shrunk 2x past a floor of 256 rows) forces a rewarm
  /// via Database::BumpVersion.
  std::map<std::string, size_t> stats_warm_rows_;

  /// Union of active policies' log footprints.
  std::set<std::string> mentioned_logs_;
  /// Log relations persisted only on behalf of time-dependent policies.
  std::set<std::string> skip_retention_;
  bool prepared_valid_ = false;

  ExecutionStats stats_;
  std::vector<ViolationReport> last_violations_;
  int64_t queries_since_compaction_ = 0;

  /// Cumulative per-policy attribution, keyed by active-policy name.
  /// Mutated only from the serial merge sections of the checking loops, so
  /// no locking is needed (see DESIGN.md "Concurrency model").
  std::map<std::string, PolicyStats> policy_stats_;

  /// Enforcement audit trail (enable_audit).
  AuditLog audit_;

  /// Slow-enforcement log (slow_enforcement_threshold_us > 0).
  SlowLog slow_log_;

  /// Decision-provenance store (enable_decisions).
  DecisionStore decisions_;

  /// Database tables + dl_* virtual system relations: the base catalog
  /// every bind/evaluation/execution in the checked pipeline reads
  /// through. Snapshots are invalidated at the serial head of each checked
  /// query, giving per-query snapshot semantics.
  std::unique_ptr<SystemCatalog> system_catalog_;

  /// Rejection-time witness scratch: filled by the reject path (before the
  /// staged increment is discarded), consumed by RecordDecision.
  std::vector<DecisionWitness> last_witnesses_;
  uint64_t last_witnesses_truncated_ = 0;

  /// policy_stats_ snapshot taken at the head of the current query when
  /// decisions are enabled; RecordDecision diffs against it to derive
  /// per-policy outcomes for the DecisionRecord.
  std::map<std::string, PolicyStats> decision_stats_base_;

  /// True while WouldAllow probes: suppresses commit/compaction/execution.
  bool probe_mode_ = false;

  /// Outstanding background compaction (async_compaction mode), routed
  /// through `scheduler_`.
  std::future<Result<CompactionStats>> pending_compaction_;
  CompactionStats last_compaction_stats_;

  /// Shared work-stealing scheduler (policy evaluation fan-out, morsel
  /// execution, async compaction). Lazily created; absent entirely when
  /// all three features are off.
  std::unique_ptr<TaskScheduler> scheduler_;
};

}  // namespace datalawyer

#endif  // DATALAWYER_CORE_DATALAWYER_H_
